package model

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// checkpoint is the gob-serialized model state.
type checkpoint struct {
	Cfg     Config
	Weights [][]float64
	Names   []string
}

// Save writes the model configuration and weights to w.
func (m *Model) Save(w io.Writer) error {
	ck := checkpoint{Cfg: m.Cfg}
	for _, p := range m.Params() {
		ck.Weights = append(ck.Weights, p.W.Data)
		ck.Names = append(ck.Names, p.Name)
	}
	return gob.NewEncoder(w).Encode(ck)
}

// Load reads a model previously written with Save.
func Load(r io.Reader) (*Model, error) {
	var ck checkpoint
	if err := gob.NewDecoder(r).Decode(&ck); err != nil {
		return nil, fmt.Errorf("model: decode checkpoint: %w", err)
	}
	if err := ck.Cfg.Validate(); err != nil {
		return nil, err
	}
	m := New(ck.Cfg, 0)
	ps := m.Params()
	if len(ps) != len(ck.Weights) {
		return nil, fmt.Errorf("model: checkpoint has %d tensors, model has %d", len(ck.Weights), len(ps))
	}
	for i, p := range ps {
		if ck.Names[i] != p.Name {
			return nil, fmt.Errorf("model: checkpoint tensor %d is %q, expected %q", i, ck.Names[i], p.Name)
		}
		if len(ck.Weights[i]) != len(p.W.Data) {
			return nil, fmt.Errorf("model: tensor %q has %d values, expected %d", p.Name, len(ck.Weights[i]), len(p.W.Data))
		}
		copy(p.W.Data, ck.Weights[i])
	}
	return m, nil
}

// SaveFile writes the model to path.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := m.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a model from path.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

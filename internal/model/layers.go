package model

import (
	"fmt"

	"repro/internal/nn"
)

// Role identifies which projection a quantizable layer implements. The
// attention roles determine which attention-aware Hessian formula APTQ
// applies (eqs. 9, 10, 12, 13); MLP roles use the GPTQ Hessian.
type Role int

// Quantizable layer roles, in per-block order.
const (
	RoleQ Role = iota
	RoleK
	RoleV
	RoleO
	RoleGate
	RoleUp
	RoleDown
)

// String returns the lowercase role name used in layer identifiers.
func (r Role) String() string {
	switch r {
	case RoleQ:
		return "q_proj"
	case RoleK:
		return "k_proj"
	case RoleV:
		return "v_proj"
	case RoleO:
		return "o_proj"
	case RoleGate:
		return "gate_proj"
	case RoleUp:
		return "up_proj"
	case RoleDown:
		return "down_proj"
	default:
		return fmt.Sprintf("role(%d)", int(r))
	}
}

// IsAttention reports whether the role belongs to the attention block.
func (r Role) IsAttention() bool { return r <= RoleO }

// LayerRef identifies one quantizable weight matrix within the model,
// together with the structures needed to build its Hessian.
type LayerRef struct {
	Block  int
	Role   Role
	Linear *nn.Linear
	// Attn is the owning attention module for attention roles, nil for MLP
	// roles.
	Attn *nn.Attention
}

// Name returns the canonical layer identifier, e.g.
// "block03.self_attn.k_proj", matching the layerName convention of
// Algorithm 1 in the paper.
func (l LayerRef) Name() string {
	group := "self_attn"
	if !l.Role.IsAttention() {
		group = "mlp"
	}
	return fmt.Sprintf("block%02d.%s.%s", l.Block, group, l.Role)
}

// NumWeights returns the number of scalar weights in the layer.
func (l LayerRef) NumWeights() int { return l.Linear.P.NumEl() }

// QuantizableLayers returns every weight matrix the quantization pipelines
// operate on, in block order with Q, K, V, O followed by the MLP layers
// within each block (gate/up/down for SwiGLU; fc1 as up_proj and fc2 as
// down_proj for GELU architectures). Embedding, head, bias and norm
// parameters stay at full precision, per the GPTQ/APTQ evaluation protocol.
func (m *Model) QuantizableLayers() []LayerRef {
	var out []LayerRef
	for i, b := range m.Blocks {
		out = append(out,
			LayerRef{Block: i, Role: RoleQ, Linear: nn.AsLinear(b.Attn.WQ), Attn: b.Attn},
			LayerRef{Block: i, Role: RoleK, Linear: nn.AsLinear(b.Attn.WK), Attn: b.Attn},
			LayerRef{Block: i, Role: RoleV, Linear: nn.AsLinear(b.Attn.WV), Attn: b.Attn},
			LayerRef{Block: i, Role: RoleO, Linear: nn.AsLinear(b.Attn.WO), Attn: b.Attn},
		)
		linears := b.MLP.Projections()
		var roles []Role
		switch len(linears) {
		case 3:
			roles = []Role{RoleGate, RoleUp, RoleDown}
		case 2:
			roles = []Role{RoleUp, RoleDown}
		default:
			panic(fmt.Sprintf("model: unsupported MLP with %d quantizable projections", len(linears)))
		}
		for j, l := range linears {
			out = append(out, LayerRef{Block: i, Role: roles[j], Linear: nn.AsLinear(l)})
		}
	}
	return out
}

// QuantizableWeightCount returns the total number of scalar weights subject
// to quantization — the denominator of the average-bits accounting in
// eq. (18).
func (m *Model) QuantizableWeightCount() int {
	n := 0
	for _, l := range m.QuantizableLayers() {
		n += l.NumWeights()
	}
	return n
}

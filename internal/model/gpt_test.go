package model

import (
	"math"
	"math/rand"
	"testing"
)

func TestGPTConfigValidates(t *testing.T) {
	for _, cfg := range []Config{TinyGPT(), NanoGPT()} {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
	}
	// GPT has no RoPE, so odd head dims are allowed.
	odd := Config{Name: "odd", Arch: ArchGPT, Vocab: 16, Dim: 9, Heads: 3, Layers: 1, FF: 12, MaxSeq: 8}
	if err := odd.Validate(); err != nil {
		t.Fatalf("odd head dim must validate for GPT: %v", err)
	}
	oddLlama := odd
	oddLlama.Arch = ArchLLaMA
	if oddLlama.Validate() == nil {
		t.Fatal("odd head dim must be rejected for LLaMA/RoPE")
	}
}

func TestGPTForwardShape(t *testing.T) {
	m := New(TinyGPT(), 1)
	if m.PosEmbed == nil {
		t.Fatal("GPT model must have a positional embedding")
	}
	logits := m.Forward([]int{1, 2, 3})
	if logits.Rows != 3 || logits.Cols != 32 {
		t.Fatalf("logits %dx%d", logits.Rows, logits.Cols)
	}
}

func TestGPTPositionSensitivity(t *testing.T) {
	// Unlike a positionless transformer, the GPT model must distinguish
	// the same token at different positions via the learned embedding.
	m := New(TinyGPT(), 2)
	a := m.Forward([]int{5, 5})
	if vecEqual(a.Row(0), a.Row(1)) {
		t.Fatal("identical tokens at different positions produced identical logits")
	}
}

func vecEqual(a, b []float64) bool {
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			return false
		}
	}
	return true
}

func TestGPTGradCheck(t *testing.T) {
	m := New(TinyGPT(), 3)
	ids := []int{1, 5, 9, 2}
	targets := []int{5, 9, 2, 7}
	m.ZeroGrad()
	m.LossAndBackward(ids, targets)

	rng := rand.New(rand.NewSource(4))
	const eps = 1e-5
	for _, p := range m.Params() {
		for trial := 0; trial < 2; trial++ {
			i := rng.Intn(len(p.W.Data))
			orig := p.W.Data[i]
			p.W.Data[i] = orig + eps
			lp := m.Loss(ids, targets)
			p.W.Data[i] = orig - eps
			lm := m.Loss(ids, targets)
			p.W.Data[i] = orig
			num := (lp - lm) / (2 * eps)
			if diff := math.Abs(num - p.Grad.Data[i]); diff > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("%s[%d]: analytic %v vs numeric %v", p.Name, i, p.Grad.Data[i], num)
			}
		}
	}
}

func TestGPTQuantizableLayers(t *testing.T) {
	m := New(TinyGPT(), 5)
	layers := m.QuantizableLayers()
	// GPT blocks contribute 6 layers each (Q,K,V,O,fc1,fc2).
	if len(layers) != 6*m.Cfg.Layers {
		t.Fatalf("%d quantizable layers, want %d", len(layers), 6*m.Cfg.Layers)
	}
	if layers[4].Role != RoleUp || layers[5].Role != RoleDown {
		t.Fatalf("GPT MLP roles: %v %v", layers[4].Role, layers[5].Role)
	}
}

func TestGPTCloneAndSaveLoad(t *testing.T) {
	m := New(TinyGPT(), 6)
	c := m.Clone()
	ids := []int{2, 4, 6}
	if !m.Forward(ids).Equal(c.Forward(ids), 1e-12) {
		t.Fatal("GPT clone differs")
	}
}

// Package model composes the nn layers into a LLaMA-architecture
// decoder-only language model and exposes the named-layer registry that the
// quantization pipelines iterate over.
//
// Two reference configurations stand in for the paper's LLaMA-7B and
// LLaMA-13B (see DESIGN.md §2 for the substitution rationale): they share
// the architecture — RMSNorm pre-norm, rotary attention, SwiGLU MLP — at
// sizes trainable on a single CPU.
package model

import (
	"fmt"
	"math/rand"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Arch selects the transformer family.
type Arch int

// Supported architectures.
const (
	// ArchLLaMA: RMSNorm, rotary attention, SwiGLU, no biases (default).
	ArchLLaMA Arch = iota
	// ArchGPT: LayerNorm, learned positional embeddings, biased
	// projections, GELU MLP — the GPT-2/OPT family the paper's
	// introduction also targets.
	ArchGPT
)

// String names the architecture.
func (a Arch) String() string {
	switch a {
	case ArchLLaMA:
		return "llama"
	case ArchGPT:
		return "gpt"
	default:
		return "unknown"
	}
}

// Config describes a model architecture.
type Config struct {
	Name     string
	Arch     Arch
	Vocab    int
	Dim      int
	Heads    int
	Layers   int
	FF       int
	MaxSeq   int
	RopeBase float64
}

// Nano7B is the LLaMA-7B stand-in: the same depth-to-width regime scaled to
// single-CPU pretraining. Six blocks keep whole-block mixed-precision
// ablations (Table 3) meaningfully granular.
func Nano7B() Config {
	return Config{Name: "nano-7B", Vocab: 128, Dim: 48, Heads: 4, Layers: 6, FF: 128, MaxSeq: 64, RopeBase: 10000}
}

// Nano13B is the LLaMA-13B stand-in: deeper and wider than Nano7B in the
// same ratio direction as 13B is to 7B.
func Nano13B() Config {
	return Config{Name: "nano-13B", Vocab: 128, Dim: 64, Heads: 4, Layers: 8, FF: 176, MaxSeq: 64, RopeBase: 10000}
}

// Tiny is a minimal configuration for fast unit tests.
func Tiny() Config {
	return Config{Name: "tiny", Vocab: 32, Dim: 16, Heads: 2, Layers: 2, FF: 24, MaxSeq: 32, RopeBase: 10000}
}

// NanoGPT is a GPT/OPT-architecture sibling of Nano7B, demonstrating that
// the quantization pipelines are architecture-agnostic.
func NanoGPT() Config {
	return Config{Name: "nano-GPT", Arch: ArchGPT, Vocab: 128, Dim: 48, Heads: 4, Layers: 6, FF: 128, MaxSeq: 64}
}

// TinyGPT is a minimal GPT-architecture configuration for fast unit tests.
func TinyGPT() Config {
	return Config{Name: "tiny-gpt", Arch: ArchGPT, Vocab: 32, Dim: 16, Heads: 2, Layers: 2, FF: 24, MaxSeq: 32}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Vocab <= 0:
		return fmt.Errorf("model: vocab %d", c.Vocab)
	case c.Dim <= 0 || c.Heads <= 0 || c.Dim%c.Heads != 0:
		return fmt.Errorf("model: dim %d not divisible by heads %d", c.Dim, c.Heads)
	case c.Arch == ArchLLaMA && (c.Dim/c.Heads)%2 != 0:
		return fmt.Errorf("model: head dim %d must be even for RoPE", c.Dim/c.Heads)
	case c.Layers <= 0 || c.FF <= 0 || c.MaxSeq <= 0:
		return fmt.Errorf("model: non-positive layers/ff/maxseq")
	}
	return nil
}

// Model is the decoder-only language model.
type Model struct {
	Cfg   Config
	Embed *nn.Embedding
	// PosEmbed is the learned positional table (ArchGPT only; nil for
	// LLaMA, which encodes positions with RoPE inside attention).
	PosEmbed *nn.Embedding
	Blocks   []*nn.Block
	Norm     nn.Norm
	Head     *nn.Linear
}

// New constructs a model with seeded random initialization.
func New(cfg Config, seed int64) *Model {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(seed))
	m := &Model{
		Cfg:   cfg,
		Embed: nn.NewEmbedding(rng, "embed", cfg.Vocab, cfg.Dim),
		Head:  nn.NewLinear(rng, "head", cfg.Dim, cfg.Vocab, false),
	}
	switch cfg.Arch {
	case ArchGPT:
		m.PosEmbed = nn.NewEmbedding(rng, "pos_embed", cfg.MaxSeq, cfg.Dim)
		m.Norm = nn.NewLayerNorm("final_norm", cfg.Dim)
		for i := 0; i < cfg.Layers; i++ {
			m.Blocks = append(m.Blocks, nn.NewGPTBlock(rng, fmt.Sprintf("block%02d", i), cfg.Dim, cfg.Heads, cfg.FF))
		}
	default:
		m.Norm = nn.NewRMSNorm("final_norm", cfg.Dim)
		for i := 0; i < cfg.Layers; i++ {
			m.Blocks = append(m.Blocks, nn.NewBlock(rng, fmt.Sprintf("block%02d", i), cfg.Dim, cfg.Heads, cfg.FF, cfg.MaxSeq, cfg.RopeBase))
		}
	}
	return m
}

// Forward computes next-token logits (n x vocab) for a token id sequence.
func (m *Model) Forward(ids []int) *tensor.Mat {
	x := m.Embed.Forward(ids)
	if m.PosEmbed != nil {
		positions := make([]int, len(ids))
		for i := range positions {
			positions[i] = i
		}
		tensor.AddInPlace(x, m.PosEmbed.Forward(positions))
	}
	for _, b := range m.Blocks {
		x = b.Forward(x)
	}
	return m.Head.Forward(m.Norm.Forward(x))
}

// EmbedChunkInto writes the embeddings of ids into dst (len(ids) x Dim),
// adding the learned positional rows for absolute positions pos0+t on
// architectures that have them (ArchGPT; RoPE models encode position
// inside attention). This is the model-level entry of the chunked prefill
// path: one gather per chunk instead of one allocation per token, and
// bit-identical to the per-token embed-and-add of the Step loop.
func (m *Model) EmbedChunkInto(dst *tensor.Mat, ids []int, pos0 int) {
	m.Embed.ForwardInto(dst, ids)
	if m.PosEmbed != nil {
		for t := range ids {
			tensor.Axpy(1, m.PosEmbed.P.W.Row(pos0+t), dst.Row(t))
		}
	}
}

// Loss runs Forward and cross-entropy against targets (targets[t] is the
// token that should follow ids[t]; -1 masks a position).
func (m *Model) Loss(ids []int, targets []int) float64 {
	loss, _ := nn.CrossEntropy(m.Forward(ids), targets)
	return loss
}

// LossAndBackward computes the loss and accumulates gradients on every
// parameter. Callers zero gradients beforehand (see ZeroGrad).
func (m *Model) LossAndBackward(ids []int, targets []int) float64 {
	logits := m.Forward(ids)
	loss, dLogits := nn.CrossEntropy(logits, targets)
	dx := m.Norm.Backward(m.Head.Backward(dLogits))
	for i := len(m.Blocks) - 1; i >= 0; i-- {
		dx = m.Blocks[i].Backward(dx)
	}
	m.Embed.Backward(dx)
	if m.PosEmbed != nil {
		m.PosEmbed.Backward(dx)
	}
	return loss
}

// Params returns every trainable parameter in a deterministic order.
func (m *Model) Params() []*nn.Param {
	ps := m.Embed.Params()
	if m.PosEmbed != nil {
		ps = append(ps, m.PosEmbed.Params()...)
	}
	for _, b := range m.Blocks {
		ps = append(ps, b.Params()...)
	}
	ps = append(ps, m.Norm.Params()...)
	ps = append(ps, m.Head.Params()...)
	return ps
}

// ZeroGrad resets all gradient accumulators.
func (m *Model) ZeroGrad() {
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
}

// NumParams returns the total scalar parameter count.
func (m *Model) NumParams() int {
	n := 0
	for _, p := range m.Params() {
		n += p.NumEl()
	}
	return n
}

// View returns a model sharing every weight tensor with m but owning all
// per-forward scratch state (attention caches, norm caches, linear input
// caches). Concurrent decoding sessions each run on their own view, so N
// sessions share one copy of the weights — the serving-memory property the
// packed deployment path depends on — without racing on forward caches.
// Views are forward-only by convention: training a view corrupts shared
// gradients nondeterministically.
func (m *Model) View() *Model {
	v := &Model{
		Cfg:   m.Cfg,
		Embed: m.Embed.View(),
		Norm:  m.Norm.View(),
		Head:  nn.AsLinear(m.Head.View()),
	}
	if m.PosEmbed != nil {
		v.PosEmbed = m.PosEmbed.View()
	}
	for _, b := range m.Blocks {
		v.Blocks = append(v.Blocks, b.View())
	}
	return v
}

// Views returns n independent forward views of m (see View). This is the
// slot-pool constructor serving uses: every decoding slot gets its own
// scratch state over the one resident weight copy, and the slots are
// recycled across requests (infer.Session.Reset) rather than re-viewed,
// so admission of a new request allocates nothing weight-shaped.
func (m *Model) Views(n int) []*Model {
	if n <= 0 {
		panic(fmt.Sprintf("model: %d views", n))
	}
	vs := make([]*Model, n)
	for i := range vs {
		vs[i] = m.View()
	}
	return vs
}

// Clone returns a deep copy of the model (weights copied, gradients
// zeroed). Deployment-time input transforms on Linear layers (InScale,
// ActQuant) are not carried over; quantizers install them on the clone they
// return.
func (m *Model) Clone() *Model {
	c := New(m.Cfg, 0)
	src := m.Params()
	dst := c.Params()
	if len(src) != len(dst) {
		// A packed (projection-swapped) model exposes fewer trainable
		// params than a freshly built float model; an index-wise copy
		// would misalign.
		panic(fmt.Sprintf("model: Clone of a packed/quantized model (%d params, float model has %d)", len(src), len(dst)))
	}
	for i := range src {
		dst[i].W.CopyFrom(src[i].W)
	}
	return c
}

package model

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestConfigValidate(t *testing.T) {
	for _, cfg := range []Config{Nano7B(), Nano13B(), Tiny()} {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
	}
	bad := Tiny()
	bad.Heads = 3 // 16 % 3 != 0
	if bad.Validate() == nil {
		t.Fatal("expected invalid config")
	}
	bad = Tiny()
	bad.Vocab = 0
	if bad.Validate() == nil {
		t.Fatal("expected invalid vocab")
	}
}

func TestForwardShape(t *testing.T) {
	m := New(Tiny(), 1)
	ids := []int{1, 2, 3, 4, 5}
	logits := m.Forward(ids)
	if logits.Rows != 5 || logits.Cols != m.Cfg.Vocab {
		t.Fatalf("logits shape %dx%d", logits.Rows, logits.Cols)
	}
}

func TestForwardDeterministic(t *testing.T) {
	m := New(Tiny(), 1)
	ids := []int{3, 1, 4, 1, 5}
	a := m.Forward(ids).Clone()
	b := m.Forward(ids)
	if !a.Equal(b, 0) {
		t.Fatal("forward must be deterministic")
	}
}

func TestSameSeedSameModel(t *testing.T) {
	a := New(Tiny(), 7)
	b := New(Tiny(), 7)
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		if !pa[i].W.Equal(pb[i].W, 0) {
			t.Fatalf("param %s differs across same-seed constructions", pa[i].Name)
		}
	}
}

func TestModelGradCheck(t *testing.T) {
	// End-to-end gradient check on a few randomly selected parameters from
	// every layer type.
	m := New(Tiny(), 2)
	ids := []int{1, 5, 9, 2}
	targets := []int{5, 9, 2, 7}
	m.ZeroGrad()
	m.LossAndBackward(ids, targets)

	rng := rand.New(rand.NewSource(3))
	const eps = 1e-5
	for _, p := range m.Params() {
		for trial := 0; trial < 3; trial++ {
			i := rng.Intn(len(p.W.Data))
			orig := p.W.Data[i]
			p.W.Data[i] = orig + eps
			lp := m.Loss(ids, targets)
			p.W.Data[i] = orig - eps
			lm := m.Loss(ids, targets)
			p.W.Data[i] = orig
			num := (lp - lm) / (2 * eps)
			if diff := math.Abs(num - p.Grad.Data[i]); diff > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("%s[%d]: analytic %v vs numeric %v", p.Name, i, p.Grad.Data[i], num)
			}
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	m := New(Tiny(), 4)
	c := m.Clone()
	ids := []int{1, 2, 3}
	if !m.Forward(ids).Equal(c.Forward(ids), 1e-12) {
		t.Fatal("clone must produce identical outputs")
	}
	nn.AsLinear(c.Blocks[0].Attn.WQ).P.W.Data[0] += 100
	if nn.AsLinear(m.Blocks[0].Attn.WQ).P.W.Data[0] == nn.AsLinear(c.Blocks[0].Attn.WQ).P.W.Data[0] {
		t.Fatal("clone must not share weight storage")
	}
}

func TestQuantizableLayers(t *testing.T) {
	m := New(Tiny(), 5)
	layers := m.QuantizableLayers()
	if len(layers) != 7*m.Cfg.Layers {
		t.Fatalf("got %d quantizable layers, want %d", len(layers), 7*m.Cfg.Layers)
	}
	if layers[0].Name() != "block00.self_attn.q_proj" {
		t.Fatalf("first layer name %q", layers[0].Name())
	}
	if layers[6].Name() != "block00.mlp.down_proj" {
		t.Fatalf("seventh layer name %q", layers[6].Name())
	}
	for _, l := range layers {
		if l.Role.IsAttention() && l.Attn == nil {
			t.Fatalf("%s: attention layer missing Attn reference", l.Name())
		}
		if !l.Role.IsAttention() && l.Attn != nil {
			t.Fatalf("%s: MLP layer has Attn reference", l.Name())
		}
	}
	// Quantizable count excludes embed/head/norm parameters.
	if m.QuantizableWeightCount() >= m.NumParams() {
		t.Fatal("quantizable weights must be a strict subset of all parameters")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m := New(Tiny(), 6)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ids := []int{2, 4, 6}
	if !m.Forward(ids).Equal(got.Forward(ids), 0) {
		t.Fatal("loaded model differs from saved model")
	}
}

func TestLoadRejectsCorrupt(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestNumParams(t *testing.T) {
	cfg := Tiny()
	m := New(cfg, 7)
	// embed + head: 2 * vocab*dim; per block: 2 norms (dim) + 4*dim² + 2*dim*ff + ff*dim; final norm: dim.
	want := 2*cfg.Vocab*cfg.Dim + cfg.Layers*(2*cfg.Dim+4*cfg.Dim*cfg.Dim+3*cfg.Dim*cfg.FF) + cfg.Dim
	if m.NumParams() != want {
		t.Fatalf("NumParams = %d, want %d", m.NumParams(), want)
	}
}

func TestLossDecreasesWithPeakedLogits(t *testing.T) {
	// Sanity: an untrained tiny model's loss is near ln(vocab).
	m := New(Tiny(), 8)
	ids := []int{1, 2, 3, 4, 5, 6, 7, 8}
	targets := []int{2, 3, 4, 5, 6, 7, 8, 9}
	loss := m.Loss(ids, targets)
	uniform := math.Log(float64(m.Cfg.Vocab))
	if math.Abs(loss-uniform) > 1.0 {
		t.Fatalf("untrained loss %v too far from uniform %v", loss, uniform)
	}
}

func TestForwardUsesAllBlocks(t *testing.T) {
	m := New(Tiny(), 9)
	ids := []int{1, 2, 3}
	before := m.Forward(ids).Clone()
	// Perturb the last block's output projection: logits must change.
	last := m.Blocks[len(m.Blocks)-1]
	tensor.AddScaled(nn.AsLinear(last.Attn.WO).P.W, 0.5, tensor.Randn(rand.New(rand.NewSource(1)), m.Cfg.Dim, m.Cfg.Dim, 1))
	after := m.Forward(ids)
	if before.Equal(after, 1e-9) {
		t.Fatal("perturbing last block did not change logits")
	}
}

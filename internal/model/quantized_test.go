package model

import (
	"math/rand"
	"testing"

	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/tensor"
)

// packAllLayers RTN-quantizes every quantizable layer of m and returns the
// packed matrices plus a float model whose projections hold the
// dequantized weights (the reference execution path).
func packAllLayers(t *testing.T, m *Model, bits, groupSize int) ([]*quant.PackedMatrix, *Model) {
	t.Helper()
	ref := m.Clone()
	refLayers := ref.QuantizableLayers()
	var packed []*quant.PackedMatrix
	for i, lr := range m.QuantizableLayers() {
		q := quant.RTN(lr.Linear.P.W, bits, groupSize, false)
		pm, err := quant.PackMatrix(q)
		if err != nil {
			t.Fatal(err)
		}
		packed = append(packed, pm)
		refLayers[i].Linear.P.W.CopyFrom(q.Dequantize())
	}
	return packed, ref
}

func TestQuantizedModelForwardBitIdentical(t *testing.T) {
	for _, cfg := range []Config{Tiny(), TinyGPT()} {
		m := New(cfg, 1)
		packed, ref := packAllLayers(t, m, 4, 8)
		qm, err := NewQuantizedModel(m, packed)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		ids := []int{1, 2, 3, 5, 7, 11}
		want := ref.Forward(ids)
		got := qm.Forward(ids)
		if !got.Equal(want, 0) {
			t.Fatalf("%s: packed model forward differs from dequantized float forward", cfg.Name)
		}
	}
}

func TestQuantizedModelLeavesSourceUntouched(t *testing.T) {
	m := New(Tiny(), 1)
	before := nn.AsLinear(m.Blocks[0].Attn.WQ).P.W.Clone()
	packed, _ := packAllLayers(t, m, 4, 8)
	if _, err := NewQuantizedModel(m, packed); err != nil {
		t.Fatal(err)
	}
	if !nn.AsLinear(m.Blocks[0].Attn.WQ).P.W.Equal(before, 0) {
		t.Fatal("NewQuantizedModel mutated the source model")
	}
	// The source still quantizes/trains: its projections are float.
	if len(m.QuantizableLayers()) == 0 {
		t.Fatal("source model lost its quantizable layers")
	}
}

func TestQuantizedModelCompression(t *testing.T) {
	// Acceptance criterion: resident packed weight bytes >= 3x smaller
	// than float64 at 4-bit.
	m := New(Nano7B(), 1)
	packed, _ := packAllLayers(t, m, 4, 16)
	qm, err := NewQuantizedModel(m, packed)
	if err != nil {
		t.Fatal(err)
	}
	if r := qm.CompressionRatio(); r < 3 {
		t.Fatalf("4-bit compression ratio %.2f < 3x (packed %d bytes, float %d bytes)",
			r, qm.PackedWeightBytes(), qm.FloatWeightBytes())
	}
}

func TestQuantizedModelRejectsMismatch(t *testing.T) {
	m := New(Tiny(), 1)
	packed, _ := packAllLayers(t, m, 4, 8)
	if _, err := NewQuantizedModel(m, packed[:len(packed)-1]); err == nil {
		t.Fatal("expected error for missing packed matrix")
	}
	rng := rand.New(rand.NewSource(9))
	wrong := quant.RTN(tensor.Randn(rng, 3, 5, 1), 4, 4, false)
	pm, err := quant.PackMatrix(wrong)
	if err != nil {
		t.Fatal(err)
	}
	packed[2] = pm
	if _, err := NewQuantizedModel(m, packed); err == nil {
		t.Fatal("expected error for wrong packed shape")
	}
}

func TestQuantizedModelRejectsInputTransforms(t *testing.T) {
	// SmoothQuant-style layers divide the input by per-channel scales at
	// runtime; the packed layer has no input-side transform, so swapping
	// one in must fail loudly rather than silently skip the division.
	m := New(Tiny(), 1)
	packed, _ := packAllLayers(t, m, 4, 8)
	l := nn.AsLinear(m.Blocks[0].Attn.WQ)
	l.InScale = make([]float64, l.In())
	for i := range l.InScale {
		l.InScale[i] = 1
	}
	if _, err := NewQuantizedModel(m, packed); err == nil {
		t.Fatal("expected error for a layer carrying deployment-time input transforms")
	}
}

func TestQuantizedModelRefusesRequantization(t *testing.T) {
	m := New(Tiny(), 1)
	packed, _ := packAllLayers(t, m, 4, 8)
	qm, err := NewQuantizedModel(m, packed)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("QuantizableLayers on a packed model must panic")
		}
	}()
	qm.QuantizableLayers()
}

func TestModelViewsPool(t *testing.T) {
	m := New(Tiny(), 1)
	ids := []int{2, 7, 1}
	want := m.Forward(ids)
	views := m.Views(3)
	if len(views) != 3 {
		t.Fatalf("Views(3) returned %d views", len(views))
	}
	for i, v := range views {
		if !v.Forward(ids).Equal(want, 0) {
			t.Fatalf("view %d forward differs from base model", i)
		}
		// Each view shares the one weight copy.
		if nn.AsLinear(v.Blocks[0].Attn.WQ).P.W != nn.AsLinear(m.Blocks[0].Attn.WQ).P.W {
			t.Fatalf("view %d does not share weight storage", i)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Views(0) must panic")
		}
	}()
	m.Views(0)
}

func TestModelViewSharesWeightsOwnsScratch(t *testing.T) {
	for _, cfg := range []Config{Tiny(), TinyGPT()} {
		m := New(cfg, 1)
		v := m.View()
		ids := []int{1, 2, 3}
		if !v.Forward(ids).Equal(m.Forward(ids), 0) {
			t.Fatalf("%s: view forward differs", cfg.Name)
		}
		// Shared storage: nudging a weight through the view is visible in
		// the original.
		nn.AsLinear(v.Blocks[0].Attn.WQ).P.W.Data[0] += 1
		if nn.AsLinear(m.Blocks[0].Attn.WQ).P.W.Data[0] != nn.AsLinear(v.Blocks[0].Attn.WQ).P.W.Data[0] {
			t.Fatalf("%s: view does not share weight storage", cfg.Name)
		}
		nn.AsLinear(v.Blocks[0].Attn.WQ).P.W.Data[0] -= 1
	}
}

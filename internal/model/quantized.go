package model

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/quant"
)

// QuantizedModel is a model whose quantizable projections execute directly
// from the packed low-bit representation: every quantizable nn.Linear is
// swapped for an nn.QuantizedLinear holding the bit-packed codes and group
// parameters, and only the embedding, norms, biases and head remain
// float64. Forward (and the KV-cached incremental decoder, which shares
// the same projection slots) therefore runs from the compressed weights —
// the execution mode the paper's edge-deployment motivation calls for,
// rather than dequantize-then-float evaluation.
//
// The embedded Model is a view of the source model: it shares the
// full-precision tensors with it but owns the projection slots, so the
// source float model is left untouched (and its float quantizable weights
// become garbage-collectable once the caller drops it).
type QuantizedModel struct {
	*Model
	// Layers holds the packed projections in QuantizableLayers order.
	Layers []*nn.QuantizedLinear
}

// NewQuantizedModel builds a packed-execution model from a float model and
// the packed form of each quantizable layer, in QuantizableLayers order
// (the order core.Result.Quantized uses). The float model m is not
// modified.
func NewQuantizedModel(m *Model, packed []*quant.PackedMatrix) (*QuantizedModel, error) {
	refs := m.QuantizableLayers()
	if len(packed) != len(refs) {
		return nil, fmt.Errorf("model: %d packed matrices for %d quantizable layers", len(packed), len(refs))
	}
	v := m.View()
	vrefs := v.QuantizableLayers()
	qm := &QuantizedModel{Model: v, Layers: make([]*nn.QuantizedLinear, len(refs))}
	for i, pm := range vrefs {
		p := packed[i]
		if p == nil {
			return nil, fmt.Errorf("model: missing packed matrix for layer %s", pm.Name())
		}
		if p.Rows != pm.Linear.Out() || p.Cols != pm.Linear.In() {
			return nil, fmt.Errorf("model: packed %dx%d for layer %s (%dx%d)",
				p.Rows, p.Cols, pm.Name(), pm.Linear.Out(), pm.Linear.In())
		}
		// Deployment-time input transforms (SmoothQuant's InScale, W·A
		// activation quantizers) have no packed equivalent yet; swapping
		// such a layer would silently skip the input-side transform.
		if pm.Linear.InScale != nil || pm.Linear.ActQuant != nil {
			return nil, fmt.Errorf("model: layer %s carries deployment-time input transforms; packed execution does not support them", pm.Name())
		}
		ql := nn.NewQuantizedLinear(pm.Name(), p, pm.Linear.Bias)
		qm.Layers[i] = ql
		block := v.Blocks[pm.Block]
		switch pm.Role {
		case RoleQ:
			block.Attn.WQ = ql
		case RoleK:
			block.Attn.WK = ql
		case RoleV:
			block.Attn.WV = ql
		case RoleO:
			block.Attn.WO = ql
		default:
			slot := -1
			for j, proj := range block.MLP.Projections() {
				if proj == nn.Projection(pm.Linear) {
					slot = j
					break
				}
			}
			if slot < 0 {
				return nil, fmt.Errorf("model: projection slot for %s not found", pm.Name())
			}
			block.MLP.SetProjection(slot, ql)
		}
	}
	return qm, nil
}

// PackedWeightBytes returns the resident bytes of all packed projections —
// streams, group parameters and row bookkeeping.
func (qm *QuantizedModel) PackedWeightBytes() int64 {
	var b int64
	for _, l := range qm.Layers {
		b += l.WeightBytes()
	}
	return b
}

// FloatWeightBytes returns the bytes the same projections occupy in
// float64 form (8 bytes per scalar weight) — the baseline the compression
// ratio is measured against.
func (qm *QuantizedModel) FloatWeightBytes() int64 {
	var b int64
	for _, l := range qm.Layers {
		b += 8 * int64(l.In()) * int64(l.Out())
	}
	return b
}

// CompressionRatio returns FloatWeightBytes / PackedWeightBytes — how many
// times smaller the resident quantizable weights are than their float64
// form.
func (qm *QuantizedModel) CompressionRatio() float64 {
	return float64(qm.FloatWeightBytes()) / float64(qm.PackedWeightBytes())
}

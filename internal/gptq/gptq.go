// Package gptq implements the GPTQ post-training quantization engine
// (Frantar et al., ICLR 2023): blocked optimal-brain-quantization with a
// Cholesky-reformulated inverse Hessian, fixed left-to-right column order,
// group-wise quantization grids, and error feedback into not-yet-quantized
// columns.
//
// The engine is deliberately agnostic about where the Hessian comes from:
// GPTQ feeds it H = 2·XᵀX of the layer input, while APTQ (internal/core)
// feeds attention-aware Hessians per eqs. (9)-(13) of the paper. Both then
// share the update rules of eqs. (16)/(17).
package gptq

import (
	"fmt"

	"repro/internal/linalg"
	"repro/internal/parallel"
	"repro/internal/quant"
	"repro/internal/tensor"
)

// Config controls one quantization run.
type Config struct {
	// Bits is the target integer width (2, 3, 4, 8).
	Bits int
	// GroupSize is the number of input-dim columns sharing one scale/zero;
	// <= 0 means one group per row.
	GroupSize int
	// BlockSize is the lazy-batch width B of Algorithm 1; error feedback is
	// applied inside a block immediately and to the trailing columns once
	// per block. <= 0 defaults to 32.
	BlockSize int
	// PercDamp is the dampening fraction λ of mean(diag(H)) added to H's
	// diagonal; GPTQ's default is 0.01.
	PercDamp float64
	// Sym selects a symmetric quantization grid.
	Sym bool
}

// DefaultConfig returns GPTQ defaults at the given bit width.
func DefaultConfig(bits int) Config {
	return Config{Bits: bits, GroupSize: 16, BlockSize: 32, PercDamp: 0.01}
}

func (c Config) withDefaults(cols int) Config {
	if c.GroupSize <= 0 || c.GroupSize > cols {
		c.GroupSize = cols
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 32
	}
	if c.PercDamp <= 0 {
		c.PercDamp = 0.01
	}
	return c
}

// Quantize runs GPTQ on the weight matrix w (out x in) against the Hessian
// h (in x in), returning the quantized representation. w itself is not
// modified; install the result with q.Dequantize().
func Quantize(w, h *tensor.Mat, cfg Config) (*quant.QuantizedMatrix, error) {
	if h.Rows != w.Cols || h.Cols != w.Cols {
		return nil, fmt.Errorf("gptq: Hessian %dx%d does not match %d input dims", h.Rows, h.Cols, w.Cols)
	}
	cfg = cfg.withDefaults(w.Cols)
	qm := newQuantizedMatrix(w, cfg)
	if err := quantizeRowsInto(qm, w, 0, h, cfg); err != nil {
		return nil, err
	}
	return qm, nil
}

// QuantizePerRowGroups runs GPTQ independently on horizontal row bands of
// w, each with its own Hessian. APTQ uses this for W_V, whose effective
// input M_h = A_h·X (eq. 11) differs per attention head, making the exact
// Levenberg-Marquardt Hessian row-band-specific.
//
// bands[i] covers rows [starts[i], starts[i+1]) with Hessian hs[i];
// starts must begin at 0 and end at w.Rows.
//
// Bands are mutually independent — each owns a disjoint row range of the
// output codes and group parameters — so they are quantized concurrently
// across the configured workers. Results are bit-identical to a serial
// band-by-band run.
func QuantizePerRowGroups(w *tensor.Mat, starts []int, hs []*tensor.Mat, cfg Config) (*quant.QuantizedMatrix, error) {
	if len(starts) != len(hs)+1 || starts[0] != 0 || starts[len(starts)-1] != w.Rows {
		return nil, fmt.Errorf("gptq: invalid row bands %v for %d rows", starts, w.Rows)
	}
	cfg = cfg.withDefaults(w.Cols)
	qm := newQuantizedMatrix(w, cfg)
	var fe parallel.FirstError
	parallel.ForEach(len(hs), func(i int) {
		lo, hi := starts[i], starts[i+1]
		if lo >= hi {
			return
		}
		band := w.SliceRows(lo, hi).Clone()
		if err := quantizeRowsInto(qm, band, lo, hs[i], cfg); err != nil {
			fe.Set(i, fmt.Errorf("gptq: band %d: %w", i, err))
		}
	})
	if err := fe.Err(); err != nil {
		return nil, err
	}
	return qm, nil
}

func newQuantizedMatrix(w *tensor.Mat, cfg Config) *quant.QuantizedMatrix {
	ng := (w.Cols + cfg.GroupSize - 1) / cfg.GroupSize
	return &quant.QuantizedMatrix{
		Rows: w.Rows, Cols: w.Cols, GroupSize: cfg.GroupSize, Bits: cfg.Bits,
		Codes:  make([]uint16, w.Rows*w.Cols),
		Params: make([]quant.GroupParams, w.Rows*ng),
	}
}

// quantizeRowsInto quantizes all rows of w (a band of the full matrix
// starting at rowOffset) against h, writing codes and group parameters into
// qm. w is cloned internally, so callers may pass views.
func quantizeRowsInto(qm *quant.QuantizedMatrix, w *tensor.Mat, rowOffset int, h *tensor.Mat, cfg Config) error {
	if h.Rows != w.Cols || h.Cols != w.Cols {
		return fmt.Errorf("gptq: Hessian %dx%d for %d columns", h.Rows, h.Cols, w.Cols)
	}
	u, err := linalg.DampedInverseUpper(h, cfg.PercDamp)
	if err != nil {
		return err
	}

	wc := w.Clone() // error-compensated working copy
	rows, cols := wc.Rows, wc.Cols
	ng := qm.NumGroups()
	// errBlock[r][j-i] holds E of eq. (16) for the current lazy block.
	errBlock := tensor.New(rows, cfg.BlockSize)
	groupParams := make([]quant.GroupParams, rows)

	for i := 0; i < cols; i += cfg.BlockSize {
		blockEnd := i + cfg.BlockSize
		if blockEnd > cols {
			blockEnd = cols
		}
		for j := i; j < blockEnd; j++ {
			if j%cfg.GroupSize == 0 {
				// Refit the quantization grid per row over the group's
				// current (error-compensated) values.
				hi := j + cfg.GroupSize
				if hi > cols {
					hi = cols
				}
				for r := 0; r < rows; r++ {
					groupParams[r] = quant.FitGroup(wc.Row(r)[j:hi], cfg.Bits, cfg.Sym)
					qm.Params[(rowOffset+r)*ng+j/cfg.GroupSize] = groupParams[r]
				}
			}
			d := u.At(j, j)
			for r := 0; r < rows; r++ {
				wrow := wc.Row(r)
				p := groupParams[r]
				code := p.Encode(wrow[j], cfg.Bits)
				qv := p.Decode(code)
				qm.Codes[(rowOffset+r)*cols+j] = uint16(code)
				// eq. (16): E = (w_q − quant(w_q)) / [H⁻¹]_qq^(1/2).
				e := (wrow[j] - qv) / d
				errBlock.Set(r, j-i, e)
				// eq. (17), inside the block: immediate feedback.
				urow := u.Row(j)
				for k := j + 1; k < blockEnd; k++ {
					wrow[k] -= e * urow[k]
				}
			}
		}
		// eq. (17), lazy batch: propagate the whole block's error to the
		// remaining columns at once.
		if blockEnd < cols {
			for r := 0; r < rows; r++ {
				wrow := wc.Row(r)
				for j := i; j < blockEnd; j++ {
					e := errBlock.At(r, j-i)
					if e == 0 {
						continue
					}
					urow := u.Row(j)
					for k := blockEnd; k < cols; k++ {
						wrow[k] -= e * urow[k]
					}
				}
			}
		}
	}
	return nil
}

// ProxyLoss computes trace((W−Ŵ)·H·(W−Ŵ)ᵀ) — the quadratic model of the
// reconstruction error ||WX − ŴX||² that GPTQ minimizes (and its
// attention-aware generalization, eq. (5), when H comes from APTQ). Tests
// and ablations use it to verify the engine beats round-to-nearest.
func ProxyLoss(w, wq, h *tensor.Mat) float64 {
	d := tensor.Sub(w, wq)
	dh := tensor.MatMul(d, h)
	s := 0.0
	for i := range d.Data {
		s += d.Data[i] * dh.Data[i]
	}
	return s
}

package gptq

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestPermHelpers(t *testing.T) {
	h := tensor.New(3, 3)
	h.Set(0, 0, 1)
	h.Set(1, 1, 5)
	h.Set(2, 2, 3)
	perm := argsortDescDiag(h)
	if perm[0] != 1 || perm[1] != 2 || perm[2] != 0 {
		t.Fatalf("perm = %v", perm)
	}
	inv := invertPerm(perm)
	for i, p := range perm {
		if inv[p] != i {
			t.Fatal("invertPerm broken")
		}
	}
}

func TestPermuteSymConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		h := correlatedHessian(rng, n+4, n)
		perm := rng.Perm(n)
		hp := permuteSym(h, perm)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if hp.At(i, j) != h.At(perm[i], perm[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestActOrderValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := tensor.Randn(rng, 8, 16, 0.5)
	h := correlatedHessian(rng, 40, 16)
	q, err := QuantizeActOrder(w, h, Config{Bits: 3, GroupSize: 8, BlockSize: 8, PercDamp: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if q.GroupSize != 1 {
		t.Fatalf("act-order output must carry per-column params, got group size %d", q.GroupSize)
	}
}

func TestActOrderNoWorseOnAverage(t *testing.T) {
	// Act-order should match or beat plain ordering on the quadratic proxy
	// across seeds (it is a strict improvement in expectation at low bits
	// under heterogeneous Hessian diagonals).
	wins, ties, losses := 0, 0, 0
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		w := tensor.Randn(rng, 10, 24, 0.7)
		h := correlatedHessian(rng, 60, 24)
		// Heterogeneous activation energy: H ← D·H·D with diagonal D, which
		// preserves symmetry and positive definiteness (this is exactly
		// what per-channel activation scales do to XᵀX).
		d := make([]float64, 24)
		for j := range d {
			d[j] = 1 + 5*float64(j%4)
		}
		for i := 0; i < 24; i++ {
			for j := 0; j < 24; j++ {
				h.Set(i, j, h.At(i, j)*d[i]*d[j])
			}
		}
		cfg := Config{Bits: 2, GroupSize: 24, BlockSize: 8, PercDamp: 0.01}
		plain, err := Quantize(w, h, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ordered, err := QuantizeActOrder(w, h, cfg)
		if err != nil {
			t.Fatal(err)
		}
		lp := ProxyLoss(w, plain.Dequantize(), h)
		lo := ProxyLoss(w, ordered.Dequantize(), h)
		switch {
		case lo < lp*0.999:
			wins++
		case lo > lp*1.001:
			losses++
		default:
			ties++
		}
	}
	if wins <= losses {
		t.Fatalf("act-order wins %d, ties %d, losses %d — expected net improvement", wins, ties, losses)
	}
}

func TestActOrderIdentityPermIsPlain(t *testing.T) {
	// With a constant Hessian diagonal the stable sort keeps the original
	// order, so act-order must reproduce plain GPTQ exactly.
	rng := rand.New(rand.NewSource(2))
	w := tensor.Randn(rng, 6, 12, 0.5)
	x := tensor.Randn(rng, 40, 12, 1)
	h := tensor.Gram(x)
	for i := 0; i < 12; i++ {
		h.Set(i, i, 7) // constant diagonal
	}
	cfg := Config{Bits: 4, GroupSize: 12, BlockSize: 4, PercDamp: 0.01}
	plain, err := Quantize(w, h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ordered, err := QuantizeActOrder(w, h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !ordered.Dequantize().Equal(plain.Dequantize(), 1e-10) {
		t.Fatal("identity permutation must reproduce plain GPTQ")
	}
}

package gptq

import (
	"sort"

	"repro/internal/quant"
	"repro/internal/tensor"
)

// Activation ordering ("act_order" / "desc_act" in the reference GPTQ
// implementation): quantize columns in order of decreasing Hessian diagonal
// instead of left-to-right. Columns with large diag(H) — large expected
// activation energy — are quantized first, while the most compensation
// freedom remains, which measurably improves low-bit accuracy.
//
// The implementation permutes the weight columns and both Hessian axes,
// runs the standard engine, and un-permutes the result. Group parameters
// are kept in permuted order internally and re-expanded to per-column
// parameters on output (matching how the reference implementation stores
// g_idx): the output QuantizedMatrix uses GroupSize 1 so that codes and
// parameters stay column-aligned after un-permutation.

// QuantizeActOrder runs GPTQ with activation ordering. The cfg.GroupSize
// still controls how many (permuted) columns share a grid fit; the returned
// matrix carries per-column parameters (GroupSize 1) to remain
// storage-order independent.
func QuantizeActOrder(w, h *tensor.Mat, cfg Config) (*quant.QuantizedMatrix, error) {
	cols := w.Cols
	cfg = cfg.withDefaults(cols)

	perm := argsortDescDiag(h)
	inv := invertPerm(perm)

	wp := permuteCols(w, perm)
	hp := permuteSym(h, perm)

	qp, err := Quantize(wp, hp, cfg)
	if err != nil {
		return nil, err
	}

	// Un-permute: column j of the result comes from permuted column
	// inv[j], carrying its code and its group's parameters.
	out := &quant.QuantizedMatrix{
		Rows: w.Rows, Cols: cols, GroupSize: 1, Bits: cfg.Bits,
		Codes:  make([]uint16, w.Rows*cols),
		Params: make([]quant.GroupParams, w.Rows*cols),
	}
	ngp := qp.NumGroups()
	for r := 0; r < w.Rows; r++ {
		for j := 0; j < cols; j++ {
			pj := inv[j]
			out.Codes[r*cols+j] = qp.Codes[r*cols+pj]
			out.Params[r*cols+j] = qp.Params[r*ngp+pj/qp.GroupSize]
		}
	}
	return out, nil
}

// argsortDescDiag returns column indices sorted by decreasing Hessian
// diagonal.
func argsortDescDiag(h *tensor.Mat) []int {
	perm := make([]int, h.Rows)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool {
		return h.At(perm[a], perm[a]) > h.At(perm[b], perm[b])
	})
	return perm
}

func invertPerm(perm []int) []int {
	inv := make([]int, len(perm))
	for i, p := range perm {
		inv[p] = i
	}
	return inv
}

// permuteCols returns w with columns reordered: out[:, i] = w[:, perm[i]].
func permuteCols(w *tensor.Mat, perm []int) *tensor.Mat {
	out := tensor.New(w.Rows, w.Cols)
	for r := 0; r < w.Rows; r++ {
		row := w.Row(r)
		orow := out.Row(r)
		for i, p := range perm {
			orow[i] = row[p]
		}
	}
	return out
}

// permuteSym returns h with both axes reordered by perm.
func permuteSym(h *tensor.Mat, perm []int) *tensor.Mat {
	out := tensor.New(h.Rows, h.Cols)
	for i, pi := range perm {
		hrow := h.Row(pi)
		orow := out.Row(i)
		for j, pj := range perm {
			orow[j] = hrow[pj]
		}
	}
	return out
}

package gptq

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/quant"
	"repro/internal/tensor"
)

// correlatedHessian builds H = 2·XᵀX from inputs with strong column
// correlations — the regime where GPTQ's error feedback matters.
func correlatedHessian(rng *rand.Rand, n, d int) *tensor.Mat {
	base := tensor.Randn(rng, n, d/2, 1)
	x := tensor.New(n, d)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		brow := base.Row(i)
		for j := 0; j < d; j++ {
			row[j] = brow[j%(d/2)] + 0.3*rng.NormFloat64()
		}
	}
	h := tensor.Gram(x)
	h.Scale(2)
	return h
}

func TestQuantizeShapeAndValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := tensor.Randn(rng, 8, 16, 0.5)
	h := correlatedHessian(rng, 40, 16)
	q, err := Quantize(w, h, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if q.Rows != 8 || q.Cols != 16 || q.Bits != 4 {
		t.Fatalf("unexpected result shape %+v", q)
	}
}

func TestQuantizeBeatsRTNOnProxyLoss(t *testing.T) {
	// The whole point of second-order quantization: under a correlated
	// Hessian, GPTQ's compensated solution must have lower quadratic error
	// than independent rounding.
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		w := tensor.Randn(rng, 12, 24, 0.7)
		h := correlatedHessian(rng, 60, 24)
		cfg := Config{Bits: 3, GroupSize: 8, BlockSize: 8, PercDamp: 0.01}
		q, err := Quantize(w, h, cfg)
		if err != nil {
			t.Fatal(err)
		}
		gptqLoss := ProxyLoss(w, q.Dequantize(), h)
		rtn := quant.RTN(w, 3, 8, false)
		rtnLoss := ProxyLoss(w, rtn.Dequantize(), h)
		if gptqLoss >= rtnLoss {
			t.Fatalf("seed %d: GPTQ proxy loss %.4f not better than RTN %.4f", seed, gptqLoss, rtnLoss)
		}
	}
}

func TestQuantizeIdentityHessianMatchesRTNError(t *testing.T) {
	// With H = I there are no cross-column interactions: GPTQ's element
	// error must match plain RTN's rounding error bound.
	rng := rand.New(rand.NewSource(2))
	w := tensor.Randn(rng, 6, 12, 1)
	h := tensor.Eye(12)
	cfg := Config{Bits: 4, GroupSize: 12, BlockSize: 4, PercDamp: 1e-9}
	q, err := Quantize(w, h, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dq := q.Dequantize()
	ng := q.NumGroups()
	for r := 0; r < 6; r++ {
		for c := 0; c < 12; c++ {
			p := q.Params[r*ng+c/12]
			if math.Abs(dq.At(r, c)-w.At(r, c)) > p.MaxQuantError()*1.5+1e-9 {
				t.Fatalf("identity-H error too large at (%d,%d)", r, c)
			}
		}
	}
}

func TestHigherBitsLowerLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := tensor.Randn(rng, 10, 16, 0.5)
	h := correlatedHessian(rng, 50, 16)
	loss := func(bits int) float64 {
		q, err := Quantize(w, h, Config{Bits: bits, GroupSize: 8, BlockSize: 8, PercDamp: 0.01})
		if err != nil {
			t.Fatal(err)
		}
		return ProxyLoss(w, q.Dequantize(), h)
	}
	l2, l4, l8 := loss(2), loss(4), loss(8)
	if !(l2 > l4 && l4 > l8) {
		t.Fatalf("loss not monotone in bits: 2→%v 4→%v 8→%v", l2, l4, l8)
	}
}

func TestBlockSizeInvariance(t *testing.T) {
	// The lazy-batch blocking is an exact reformulation of the column-wise
	// updates whenever every group boundary coincides with a block boundary
	// (groupSize % blockSize == 0): results must then be identical up to
	// round-off. (For misaligned blocks the group-grid refit sees a
	// different compensation state — the same behaviour as the reference
	// GPTQ implementation.)
	rng := rand.New(rand.NewSource(4))
	w := tensor.Randn(rng, 7, 20, 0.5)
	h := correlatedHessian(rng, 50, 20)
	var ref *tensor.Mat
	for _, bs := range []int{1, 2, 5, 10} {
		q, err := Quantize(w, h, Config{Bits: 4, GroupSize: 10, BlockSize: bs, PercDamp: 0.01})
		if err != nil {
			t.Fatal(err)
		}
		dq := q.Dequantize()
		if ref == nil {
			ref = dq
			continue
		}
		if !dq.Equal(ref, 1e-8) {
			t.Fatalf("block size %d changed the result", bs)
		}
	}
}

func TestQuantizePerRowGroups(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	w := tensor.Randn(rng, 8, 12, 0.5)
	h1 := correlatedHessian(rng, 30, 12)
	h2 := correlatedHessian(rng, 30, 12)
	q, err := QuantizePerRowGroups(w, []int{0, 4, 8}, []*tensor.Mat{h1, h2}, Config{Bits: 4, GroupSize: 6, BlockSize: 4, PercDamp: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	// Band 0 must match quantizing rows 0..4 alone with h1.
	top := w.SliceRows(0, 4).Clone()
	qTop, err := Quantize(top, h1, Config{Bits: 4, GroupSize: 6, BlockSize: 4, PercDamp: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	got := q.Dequantize().SliceRows(0, 4)
	if !got.Clone().Equal(qTop.Dequantize(), 1e-10) {
		t.Fatal("per-band result differs from standalone quantization")
	}
}

func TestQuantizePerRowGroupsValidation(t *testing.T) {
	w := tensor.New(4, 4)
	h := tensor.Eye(4)
	if _, err := QuantizePerRowGroups(w, []int{0, 2}, []*tensor.Mat{h}, DefaultConfig(4)); err == nil {
		t.Fatal("bands not covering all rows must error")
	}
	if _, err := QuantizePerRowGroups(w, []int{1, 4}, []*tensor.Mat{h}, DefaultConfig(4)); err == nil {
		t.Fatal("bands not starting at 0 must error")
	}
}

func TestQuantizeHessianShapeMismatch(t *testing.T) {
	w := tensor.New(4, 6)
	h := tensor.Eye(5)
	if _, err := Quantize(w, h, DefaultConfig(4)); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestQuantizeSingularHessianRecovered(t *testing.T) {
	// Rank-deficient H (e.g. dead input channels) must still quantize via
	// damping escalation.
	rng := rand.New(rand.NewSource(6))
	w := tensor.Randn(rng, 4, 8, 0.5)
	x := tensor.Randn(rng, 3, 8, 1) // rank 3 < 8
	h := tensor.Gram(x)
	q, err := Quantize(w, h, DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeDoesNotModifyInput(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w := tensor.Randn(rng, 5, 10, 0.5)
	orig := w.Clone()
	h := correlatedHessian(rng, 30, 10)
	if _, err := Quantize(w, h, DefaultConfig(4)); err != nil {
		t.Fatal(err)
	}
	if !w.Equal(orig, 0) {
		t.Fatal("Quantize must not modify its input")
	}
}

func TestProxyLossZeroForExactCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	w := tensor.Randn(rng, 4, 6, 1)
	h := correlatedHessian(rng, 20, 6)
	if ProxyLoss(w, w, h) != 0 {
		t.Fatal("proxy loss of identical matrices must be zero")
	}
}

func TestProxyLossPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	w := tensor.Randn(rng, 4, 6, 1)
	wq := w.Clone()
	wq.Data[3] += 0.5
	h := correlatedHessian(rng, 20, 6)
	if ProxyLoss(w, wq, h) <= 0 {
		t.Fatal("proxy loss must be positive for PSD H and nonzero delta")
	}
}

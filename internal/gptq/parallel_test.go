package gptq

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// TestQuantizePerRowGroupsParallelBitIdentical checks that concurrent
// per-band quantization (W_V's per-head path) matches the serial run
// exactly: bands own disjoint row ranges, so worker count must not change
// a single code or group parameter.
func TestQuantizePerRowGroupsParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const rows, cols, bands = 24, 16, 4
	w := tensor.Randn(rng, rows, cols, 0.5)
	starts := make([]int, bands+1)
	hs := make([]*tensor.Mat, bands)
	for i := 0; i < bands; i++ {
		starts[i+1] = (i + 1) * rows / bands
		x := tensor.Randn(rng, 64, cols, 1)
		hs[i] = tensor.Gram(x)
	}
	cfg := Config{Bits: 3, GroupSize: 8, BlockSize: 8, PercDamp: 0.01}

	parallel.SetWorkers(1)
	serial, err := QuantizePerRowGroups(w, starts, hs, cfg)
	if err != nil {
		parallel.SetWorkers(0)
		t.Fatal(err)
	}
	defer parallel.SetWorkers(0)
	for _, workers := range []int{2, 4, 16} {
		parallel.SetWorkers(workers)
		par, err := QuantizePerRowGroups(w, starts, hs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial.Codes, par.Codes) {
			t.Fatalf("codes differ at %d workers", workers)
		}
		if !reflect.DeepEqual(serial.Params, par.Params) {
			t.Fatalf("group params differ at %d workers", workers)
		}
	}
}

// TestQuantizePerRowGroupsParallelError checks deterministic error
// reporting: the lowest-index failing band wins regardless of worker count.
func TestQuantizePerRowGroupsParallelError(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const rows, cols = 8, 6
	w := tensor.Randn(rng, rows, cols, 0.5)
	starts := []int{0, 4, 8}
	bad := tensor.New(3, 3) // wrong shape for cols=6
	good := tensor.Gram(tensor.Randn(rng, 32, cols, 1))
	parallel.SetWorkers(4)
	defer parallel.SetWorkers(0)
	if _, err := QuantizePerRowGroups(w, starts, []*tensor.Mat{bad, good}, Config{Bits: 4}); err == nil {
		t.Fatal("expected band-0 shape error")
	}
}

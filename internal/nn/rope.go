package nn

import (
	"math"
	"sync"

	"repro/internal/tensor"
)

// RoPE implements rotary position embeddings (the positional encoding used
// by LLaMA). For each attention head, consecutive pairs of channels
// (2i, 2i+1) are rotated by angle pos·θ_i with θ_i = base^(−2i/headDim).
//
// RoPE is a pure rotation, so the backward pass is the inverse rotation
// applied to the gradient.
//
// One RoPE instance is shared by every view of an attention block
// (concurrent decoding sessions included), so growth of the cos/sin tables
// beyond the precomputed range is guarded by a mutex: readers take a
// snapshot of the tables, and positions already published are never
// mutated.
type RoPE struct {
	HeadDim int
	Base    float64
	// mu guards growth of the cos/sin caches (indexed [pos][pair]);
	// readers that fit in the precomputed range — every rotation in a
	// MaxSeq-bounded decode — take only the read lock.
	mu       sync.RWMutex
	cos, sin [][]float64
}

// NewRoPE precomputes rotation tables for sequences up to maxSeq.
func NewRoPE(headDim, maxSeq int, base float64) *RoPE {
	if headDim%2 != 0 {
		panic("nn: RoPE head dimension must be even")
	}
	r := &RoPE{HeadDim: headDim, Base: base}
	r.tables(maxSeq)
	return r
}

// tables returns cos/sin snapshots covering positions [0, n), growing the
// cached tables first if needed. Existing rows are never modified, so a
// returned snapshot stays valid while other goroutines grow the cache.
func (r *RoPE) tables(n int) (cos, sin [][]float64) {
	r.mu.RLock()
	if n <= len(r.cos) {
		cos, sin = r.cos, r.sin
		r.mu.RUnlock()
		return cos, sin
	}
	r.mu.RUnlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	pairs := r.HeadDim / 2
	for pos := len(r.cos); pos < n; pos++ {
		c := make([]float64, pairs)
		s := make([]float64, pairs)
		for i := 0; i < pairs; i++ {
			theta := float64(pos) * math.Pow(r.Base, -2*float64(i)/float64(r.HeadDim))
			c[i] = math.Cos(theta)
			s[i] = math.Sin(theta)
		}
		r.cos = append(r.cos, c)
		r.sin = append(r.sin, s)
	}
	return r.cos, r.sin
}

// Apply rotates x (n x dim, dim a multiple of HeadDim) in place, head by
// head, with the rotation for each row's position (row index = position).
func (r *RoPE) Apply(x *tensor.Mat) {
	r.rotate(x, 1)
}

// ApplyInverse applies the inverse rotation; this is the gradient transform
// for the backward pass.
func (r *RoPE) ApplyInverse(x *tensor.Mat) {
	r.rotate(x, -1)
}

func (r *RoPE) rotate(x *tensor.Mat, dir float64) {
	if x.Cols%r.HeadDim != 0 {
		panic("nn: RoPE input dim not a multiple of head dim")
	}
	cos, sin := r.tables(x.Rows)
	for t := 0; t < x.Rows; t++ {
		r.rotateRow(x.Row(t), cos[t], sin[t], dir)
	}
}

// ApplyAt rotates every row of x in place by the rotation of sequence
// position pos, regardless of row index. This is the incremental-decode
// entry point: a KV-cached step carries a single row that sits at position
// pos of the sequence, and rotating it directly avoids the O(pos)-sized
// padded matrix the batch Apply path would need per projection, per layer,
// per token.
func (r *RoPE) ApplyAt(x *tensor.Mat, pos int) {
	if x.Cols%r.HeadDim != 0 {
		panic("nn: RoPE input dim not a multiple of head dim")
	}
	if pos < 0 {
		panic("nn: RoPE position must be non-negative")
	}
	cos, sin := r.tables(pos + 1) //aptq:ignore noalloc trig tables are a lazy once-per-length cache; steady-state decode hits cached rows
	for t := 0; t < x.Rows; t++ {
		r.rotateRow(x.Row(t), cos[pos], sin[pos], 1)
	}
}

// ApplyFrom rotates row t of x in place by the rotation of sequence
// position pos0+t — the chunked-prefill entry point: a prompt chunk whose
// first token sits at position pos0 rotates every row with its own
// absolute position in one call, bit-identically to ApplyAt row by row.
// Apply is ApplyFrom at position 0.
func (r *RoPE) ApplyFrom(x *tensor.Mat, pos0 int) {
	if x.Cols%r.HeadDim != 0 {
		panic("nn: RoPE input dim not a multiple of head dim")
	}
	if pos0 < 0 {
		panic("nn: RoPE position must be non-negative")
	}
	cos, sin := r.tables(pos0 + x.Rows) //aptq:ignore noalloc trig tables are a lazy once-per-length cache; steady-state prefill hits cached rows
	for t := 0; t < x.Rows; t++ {
		r.rotateRow(x.Row(t), cos[pos0+t], sin[pos0+t], 1)
	}
}

// rotateRow rotates one row, head by head, with the given per-pair
// rotation tables.
func (r *RoPE) rotateRow(row, c, s []float64, dir float64) {
	heads := len(row) / r.HeadDim
	pairs := r.HeadDim / 2
	for h := 0; h < heads; h++ {
		off := h * r.HeadDim
		for i := 0; i < pairs; i++ {
			a, b := row[off+2*i], row[off+2*i+1]
			sn := dir * s[i]
			row[off+2*i] = a*c[i] - b*sn
			row[off+2*i+1] = a*sn + b*c[i]
		}
	}
}

package nn

import (
	"math"

	"repro/internal/tensor"
)

// RoPE implements rotary position embeddings (the positional encoding used
// by LLaMA). For each attention head, consecutive pairs of channels
// (2i, 2i+1) are rotated by angle pos·θ_i with θ_i = base^(−2i/headDim).
//
// RoPE is a pure rotation, so the backward pass is the inverse rotation
// applied to the gradient.
type RoPE struct {
	HeadDim int
	Base    float64
	// cos/sin caches indexed [pos][pair].
	cos, sin [][]float64
}

// NewRoPE precomputes rotation tables for sequences up to maxSeq.
func NewRoPE(headDim, maxSeq int, base float64) *RoPE {
	if headDim%2 != 0 {
		panic("nn: RoPE head dimension must be even")
	}
	r := &RoPE{HeadDim: headDim, Base: base}
	r.grow(maxSeq)
	return r
}

func (r *RoPE) grow(maxSeq int) {
	pairs := r.HeadDim / 2
	for pos := len(r.cos); pos < maxSeq; pos++ {
		c := make([]float64, pairs)
		s := make([]float64, pairs)
		for i := 0; i < pairs; i++ {
			theta := float64(pos) * math.Pow(r.Base, -2*float64(i)/float64(r.HeadDim))
			c[i] = math.Cos(theta)
			s[i] = math.Sin(theta)
		}
		r.cos = append(r.cos, c)
		r.sin = append(r.sin, s)
	}
}

// Apply rotates x (n x dim, dim a multiple of HeadDim) in place, head by
// head, with the rotation for each row's position (row index = position).
func (r *RoPE) Apply(x *tensor.Mat) {
	r.rotate(x, 1)
}

// ApplyInverse applies the inverse rotation; this is the gradient transform
// for the backward pass.
func (r *RoPE) ApplyInverse(x *tensor.Mat) {
	r.rotate(x, -1)
}

func (r *RoPE) rotate(x *tensor.Mat, dir float64) {
	if x.Cols%r.HeadDim != 0 {
		panic("nn: RoPE input dim not a multiple of head dim")
	}
	if x.Rows > len(r.cos) {
		r.grow(x.Rows)
	}
	heads := x.Cols / r.HeadDim
	pairs := r.HeadDim / 2
	for t := 0; t < x.Rows; t++ {
		row := x.Row(t)
		c, s := r.cos[t], r.sin[t]
		for h := 0; h < heads; h++ {
			off := h * r.HeadDim
			for i := 0; i < pairs; i++ {
				a, b := row[off+2*i], row[off+2*i+1]
				sn := dir * s[i]
				row[off+2*i] = a*c[i] - b*sn
				row[off+2*i+1] = a*sn + b*c[i]
			}
		}
	}
}

package nn

import (
	"math/rand"

	"repro/internal/tensor"
)

// Block is one pre-norm transformer decoder block:
// x = x + Attn(RMSNorm(x)); x = x + MLP(RMSNorm(x)).
type Block struct {
	AttnNorm Norm
	Attn     *Attention
	MLPNorm  Norm
	MLP      FeedForward
}

// NewBlock constructs a LLaMA-style decoder block (RMSNorm + rotary
// attention + SwiGLU).
func NewBlock(rng *rand.Rand, name string, dim, heads, ff, maxSeq int, ropeBase float64) *Block {
	return &Block{
		AttnNorm: NewRMSNorm(name+".attn_norm", dim),
		Attn:     NewAttention(rng, name+".attn", dim, heads, maxSeq, ropeBase),
		MLPNorm:  NewRMSNorm(name+".mlp_norm", dim),
		MLP:      NewMLP(rng, name+".mlp", dim, ff),
	}
}

// NewGPTBlock constructs a GPT/OPT-style pre-norm decoder block (LayerNorm
// + biased non-rotary attention + GELU MLP); position information comes
// from the model's learned positional embedding instead of RoPE.
func NewGPTBlock(rng *rand.Rand, name string, dim, heads, ff int) *Block {
	return &Block{
		AttnNorm: NewLayerNorm(name+".attn_norm", dim),
		Attn:     NewAttentionGPT(rng, name+".attn", dim, heads),
		MLPNorm:  NewLayerNorm(name+".mlp_norm", dim),
		MLP:      NewGELUMLP(rng, name+".mlp", dim, ff),
	}
}

// Forward runs the block over x (n x dim).
func (b *Block) Forward(x *tensor.Mat) *tensor.Mat {
	h := tensor.Add(x, b.Attn.Forward(b.AttnNorm.Forward(x)))
	return tensor.Add(h, b.MLP.Forward(b.MLPNorm.Forward(h)))
}

// Backward propagates dOut through both residual branches.
func (b *Block) Backward(dOut *tensor.Mat) *tensor.Mat {
	dh := dOut.Clone()
	tensor.AddInPlace(dh, b.MLPNorm.Backward(b.MLP.Backward(dOut)))
	dx := dh.Clone()
	tensor.AddInPlace(dx, b.AttnNorm.Backward(b.Attn.Backward(dh)))
	return dx
}

// View returns a Block sharing this one's weights but owning all forward
// scratch state (see model.Model.View).
func (b *Block) View() *Block {
	return &Block{
		AttnNorm: b.AttnNorm.View(),
		Attn:     b.Attn.View(),
		MLPNorm:  b.MLPNorm.View(),
		MLP:      b.MLP.View(),
	}
}

// Params returns all trainable parameters of the block.
func (b *Block) Params() []*Param {
	var ps []*Param
	ps = append(ps, b.AttnNorm.Params()...)
	ps = append(ps, b.Attn.Params()...)
	ps = append(ps, b.MLPNorm.Params()...)
	ps = append(ps, b.MLP.Params()...)
	return ps
}

package nn

import (
	"math/rand"
	"testing"

	"repro/internal/quant"
	"repro/internal/tensor"
)

// assertMatsIdentical fails unless a and b are bit-identical.
func assertMatsIdentical(t *testing.T, label string, got, want *tensor.Mat) {
	t.Helper()
	if !got.Equal(want, 0) {
		t.Fatalf("%s: ForwardInto not bit-identical to Forward", label)
	}
}

// TestProjectionForwardIntoMatchesForward pins every Projection
// implementation's ForwardInto to Forward bit for bit: plain and biased
// Linear, Linear with deployment-time input transforms, and the packed
// QuantizedLinear on single- and multi-row inputs.
func TestProjectionForwardIntoMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const in, out = 12, 9
	x1 := tensor.Randn(rng, 1, in, 1)
	x5 := tensor.Randn(rng, 5, in, 1)

	plain := NewLinear(rng, "plain", in, out, false)
	biased := NewLinear(rng, "biased", in, out, true)
	for i := range biased.Bias.W.Data {
		biased.Bias.W.Data[i] = rng.NormFloat64()
	}
	scaled := NewLinear(rng, "scaled", in, out, false)
	scaled.InScale = make([]float64, in)
	for i := range scaled.InScale {
		scaled.InScale[i] = 0.5 + rng.Float64()
	}
	scaled.ActQuant = &quant.ActQuantizer{Bits: 8, PerToken: true}
	pm, err := quant.PackMatrix(quant.RTN(plain.P.W, 4, 5, false))
	if err != nil {
		t.Fatal(err)
	}
	packed := NewQuantizedLinear("packed", pm, biased.Bias)

	for _, tc := range []struct {
		name string
		p    Projection
	}{
		{"linear", plain}, {"linear+bias", biased}, {"linear+transforms", scaled}, {"quantized+bias", packed},
	} {
		for _, x := range []*tensor.Mat{x1, x5} {
			want := tc.p.Forward(x)
			got := tensor.New(x.Rows, out)
			tc.p.ForwardInto(got, x)
			assertMatsIdentical(t, tc.name, got, want)
		}
	}
}

// TestNormForwardIntoMatchesForward pins RMSNorm and LayerNorm.
func TestNormForwardIntoMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	const dim = 14
	x := tensor.Randn(rng, 6, dim, 1)
	for _, tc := range []struct {
		name string
		n    Norm
	}{
		{"rmsnorm", NewRMSNorm("r", dim)}, {"layernorm", NewLayerNorm("l", dim)},
	} {
		for _, p := range tc.n.Params() {
			for i := range p.W.Data {
				p.W.Data[i] = rng.NormFloat64()
			}
		}
		want := tc.n.Forward(x)
		got := tensor.New(x.Rows, dim)
		tc.n.ForwardInto(got, x)
		assertMatsIdentical(t, tc.name, got, want)
	}
}

// TestFeedForwardForwardIntoMatchesForward pins the SwiGLU and GELU MLPs.
func TestFeedForwardForwardIntoMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const dim, ff = 10, 17
	x := tensor.Randn(rng, 4, dim, 1)
	for _, tc := range []struct {
		name string
		m    FeedForward
	}{
		{"swiglu", NewMLP(rng, "m", dim, ff)}, {"gelu", NewGELUMLP(rng, "g", dim, ff)},
	} {
		want := tc.m.Forward(x)
		got := tensor.New(x.Rows, dim)
		h1 := tensor.New(x.Rows, ff)
		h2 := tensor.New(x.Rows, ff)
		tc.m.ForwardInto(got, x, h1, h2)
		assertMatsIdentical(t, tc.name, got, want)
	}
}

// TestRoPEApplyFromMatchesApplyAt: rotating a chunk whose first row sits
// at pos0 must equal rotating each row at its own absolute position, and
// ApplyFrom at 0 must equal the batch Apply.
func TestRoPEApplyFromMatchesApplyAt(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	const headDim, dim = 8, 16
	r := NewRoPE(headDim, 4, 10000) // short table forces growth past maxSeq
	for _, pos0 := range []int{0, 1, 7, 33} {
		chunk := tensor.Randn(rng, 5, dim, 1)
		want := chunk.Clone()
		for t0 := 0; t0 < want.Rows; t0++ {
			row := want.SliceRows(t0, t0+1)
			r.ApplyAt(row, pos0+t0)
		}
		r.ApplyFrom(chunk, pos0)
		assertMatsIdentical(t, "applyfrom", chunk, want)
	}
	batch := tensor.Randn(rng, 6, dim, 1)
	want := batch.Clone()
	r.Apply(want)
	r.ApplyFrom(batch, 0)
	assertMatsIdentical(t, "applyfrom@0 vs apply", batch, want)
}

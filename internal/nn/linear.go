package nn

import (
	"math/rand"

	"repro/internal/quant"
	"repro/internal/tensor"
)

// Linear is a fully connected layer computing y = x·Wᵀ (+ bias), with W laid
// out (out x in) per the GPTQ convention so that quantizers operate on it
// directly. LLaMA-style models use no biases; bias support exists for
// completeness and is exercised in tests.
type Linear struct {
	P    *Param
	Bias *Param // nil if the layer has no bias

	// InScale, when non-nil, divides each input channel before the matmul
	// — the runtime half of SmoothQuant's per-channel smoothing transform
	// (the matching multiplication is folded into W by the quantizer).
	// Deployment-time only: Backward panics when set.
	InScale []float64
	// ActQuant, when non-nil, fake-quantizes the (scaled) input — the
	// activation side of W·A quantization schemes. Deployment-time only.
	ActQuant *quant.ActQuantizer

	// lastInput is the most recent forward input, cached for Backward and
	// harvested by internal/core as the GPTQ Hessian statistic (H = 2XᵀX).
	// With deployment transforms active it holds the transformed input.
	lastInput *tensor.Mat
}

// NewLinear constructs a Glorot-initialized linear layer.
func NewLinear(rng *rand.Rand, name string, in, out int, bias bool) *Linear {
	w := tensor.New(out, in)
	InitXavier(rng, w, in, out)
	l := &Linear{P: NewParam(name, w)}
	if bias {
		l.Bias = NewParam(name+".bias", tensor.New(1, out))
	}
	return l
}

// In returns the input dimension of the layer.
func (l *Linear) In() int { return l.P.W.Cols }

// Out returns the output dimension of the layer.
func (l *Linear) Out() int { return l.P.W.Rows }

// Forward computes y = x·Wᵀ (+ bias) for x (n x in) and caches x.
func (l *Linear) Forward(x *tensor.Mat) *tensor.Mat {
	if l.InScale != nil || l.ActQuant != nil {
		x = x.Clone()
		if l.InScale != nil {
			if len(l.InScale) != x.Cols {
				panic("nn: InScale length mismatch")
			}
			for i := 0; i < x.Rows; i++ {
				row := x.Row(i)
				for j, s := range l.InScale {
					row[j] /= s
				}
			}
		}
		if l.ActQuant != nil {
			l.ActQuant.QuantizeInPlace(x)
		}
	}
	l.lastInput = x
	y := tensor.MatMulNT(x, l.P.W)
	if l.Bias != nil {
		b := l.Bias.W.Row(0)
		for i := 0; i < y.Rows; i++ {
			row := y.Row(i)
			for j := range row {
				row[j] += b[j]
			}
		}
	}
	return y
}

// Backward accumulates dW += dyᵀ·x (and db) and returns dx = dy·W.
func (l *Linear) Backward(dy *tensor.Mat) *tensor.Mat {
	if l.InScale != nil || l.ActQuant != nil {
		panic("nn: Backward through deployment-time input transforms")
	}
	if l.lastInput == nil {
		panic("nn: Linear.Backward before Forward")
	}
	// dW (out x in) += dyᵀ (out x n) · x (n x in)
	dw := tensor.MatMulTN(dy, l.lastInput)
	tensor.AddInPlace(l.P.Grad, dw)
	if l.Bias != nil {
		g := l.Bias.Grad.Row(0)
		for i := 0; i < dy.Rows; i++ {
			row := dy.Row(i)
			for j := range row {
				g[j] += row[j]
			}
		}
	}
	return tensor.MatMul(dy, l.P.W)
}

// LastInput exposes the cached forward input for Hessian collection.
func (l *Linear) LastInput() *tensor.Mat { return l.lastInput }

// Params returns the layer's trainable parameters.
func (l *Linear) Params() []*Param {
	if l.Bias != nil {
		return []*Param{l.P, l.Bias}
	}
	return []*Param{l.P}
}

package nn

import (
	"fmt"
	"math/rand"

	"repro/internal/quant"
	"repro/internal/tensor"
)

// Projection is the contract of a y = x·Wᵀ (+ bias) projection slot in the
// transformer layers. Two implementations exist: *Linear, the trainable
// float64 layer every model starts from, and *QuantizedLinear, the packed
// low-bit deployment layer a QuantizedModel swaps in. Training-only
// operations (Backward) panic on deployment implementations.
type Projection interface {
	Forward(x *tensor.Mat) *tensor.Mat
	// ForwardInto computes y = x·Wᵀ (+ bias) into out (x.Rows x Out())
	// without touching the layer's forward caches — the allocation-free
	// inference entry point of the chunked prefill path. out must not
	// alias x; Backward after ForwardInto sees the previous Forward.
	//
	//aptq:noalloc
	ForwardInto(out, x *tensor.Mat)
	Backward(dy *tensor.Mat) *tensor.Mat
	In() int
	Out() int
	Params() []*Param
	// View returns a projection sharing this one's weights but owning any
	// forward scratch state, so concurrent decoding sessions can run over
	// shared weight storage (see model.Model.View).
	View() Projection
}

// Compile-time interface checks.
var (
	_ Projection = (*Linear)(nil)
	_ Projection = (*QuantizedLinear)(nil)
)

// AsLinear asserts that a projection slot still holds the trainable float
// implementation — the precondition of every quantization and calibration
// pipeline — and panics with a pointed message when the model has already
// been swapped to packed execution.
func AsLinear(p Projection) *Linear {
	l, ok := p.(*Linear)
	if !ok {
		panic(fmt.Sprintf("nn: projection %T is not a float Linear (already packed/quantized?)", p))
	}
	return l
}

// Linear is a fully connected layer computing y = x·Wᵀ (+ bias), with W laid
// out (out x in) per the GPTQ convention so that quantizers operate on it
// directly. LLaMA-style models use no biases; bias support exists for
// completeness and is exercised in tests.
type Linear struct {
	P    *Param
	Bias *Param // nil if the layer has no bias

	// InScale, when non-nil, divides each input channel before the matmul
	// — the runtime half of SmoothQuant's per-channel smoothing transform
	// (the matching multiplication is folded into W by the quantizer).
	// Deployment-time only: Backward panics when set.
	InScale []float64
	// ActQuant, when non-nil, fake-quantizes the (scaled) input — the
	// activation side of W·A quantization schemes. Deployment-time only.
	ActQuant *quant.ActQuantizer

	// lastInput is the most recent forward input, cached for Backward and
	// harvested by internal/core as the GPTQ Hessian statistic (H = 2XᵀX).
	// With deployment transforms active it holds the transformed input.
	lastInput *tensor.Mat
}

// NewLinear constructs a Glorot-initialized linear layer.
func NewLinear(rng *rand.Rand, name string, in, out int, bias bool) *Linear {
	w := tensor.New(out, in)
	InitXavier(rng, w, in, out)
	l := &Linear{P: NewParam(name, w)}
	if bias {
		l.Bias = NewParam(name+".bias", tensor.New(1, out))
	}
	return l
}

// In returns the input dimension of the layer.
func (l *Linear) In() int { return l.P.W.Cols }

// Out returns the output dimension of the layer.
func (l *Linear) Out() int { return l.P.W.Rows }

// transformInput applies the deployment-time input transforms (InScale,
// ActQuant) to a copy of x, or returns x unchanged when none are set.
func (l *Linear) transformInput(x *tensor.Mat) *tensor.Mat {
	if l.InScale == nil && l.ActQuant == nil {
		return x
	}
	x = x.Clone()
	if l.InScale != nil {
		if len(l.InScale) != x.Cols {
			panic("nn: InScale length mismatch")
		}
		for i := 0; i < x.Rows; i++ {
			row := x.Row(i)
			for j, s := range l.InScale {
				row[j] /= s
			}
		}
	}
	if l.ActQuant != nil {
		l.ActQuant.QuantizeInPlace(x)
	}
	return x
}

// addBias adds the bias row to every row of y (no-op for bias-free layers).
func (l *Linear) addBias(y *tensor.Mat) {
	if l.Bias == nil {
		return
	}
	b := l.Bias.W.Row(0)
	for i := 0; i < y.Rows; i++ {
		row := y.Row(i)
		for j := range row {
			row[j] += b[j]
		}
	}
}

// Forward computes y = x·Wᵀ (+ bias) for x (n x in) and caches x.
func (l *Linear) Forward(x *tensor.Mat) *tensor.Mat {
	x = l.transformInput(x)
	l.lastInput = x
	y := tensor.MatMulNT(x, l.P.W)
	l.addBias(y)
	return y
}

// ForwardInto computes y = x·Wᵀ (+ bias) into out without caching the
// input, so the chunked prefill path can reuse one scratch arena across
// chunks. Bit-identical to Forward. Deployment-time input transforms
// (InScale, ActQuant) still clone the input — the one allocating branch.
//
//aptq:noalloc
func (l *Linear) ForwardInto(out, x *tensor.Mat) {
	x = l.transformInput(x) //aptq:ignore noalloc deployment-time input transforms clone, the documented allocating branch; the float inference path takes none
	tensor.MatMulNTInto(out, x, l.P.W)
	l.addBias(out)
}

// Backward accumulates dW += dyᵀ·x (and db) and returns dx = dy·W.
func (l *Linear) Backward(dy *tensor.Mat) *tensor.Mat {
	if l.InScale != nil || l.ActQuant != nil {
		panic("nn: Backward through deployment-time input transforms")
	}
	if l.lastInput == nil {
		panic("nn: Linear.Backward before Forward")
	}
	// dW (out x in) += dyᵀ (out x n) · x (n x in)
	dw := tensor.MatMulTN(dy, l.lastInput)
	tensor.AddInPlace(l.P.Grad, dw)
	if l.Bias != nil {
		g := l.Bias.Grad.Row(0)
		for i := 0; i < dy.Rows; i++ {
			row := dy.Row(i)
			for j := range row {
				g[j] += row[j]
			}
		}
	}
	return tensor.MatMul(dy, l.P.W)
}

// LastInput exposes the cached forward input for Hessian collection.
func (l *Linear) LastInput() *tensor.Mat { return l.lastInput }

// View returns a Linear sharing this layer's parameters and deployment
// transforms but owning its forward cache, so concurrent sessions over the
// same weights never race on lastInput.
func (l *Linear) View() Projection {
	return &Linear{P: l.P, Bias: l.Bias, InScale: l.InScale, ActQuant: l.ActQuant}
}

// Params returns the layer's trainable parameters.
func (l *Linear) Params() []*Param {
	if l.Bias != nil {
		return []*Param{l.P, l.Bias}
	}
	return []*Param{l.P}
}

package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

// TestRoPEPreservesPairNorms property-checks that rotation never changes
// the norm of any (even, odd) channel pair, for random head dims and
// positions.
func TestRoPEPreservesPairNorms(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		hd := 2 * (1 + rng.Intn(6))
		heads := 1 + rng.Intn(3)
		n := 1 + rng.Intn(12)
		r := NewRoPE(hd, n, 10000)
		x := tensor.Randn(rng, n, hd*heads, 1)
		before := make([][]float64, n)
		for i := 0; i < n; i++ {
			row := x.Row(i)
			for p := 0; p < len(row); p += 2 {
				before[i] = append(before[i], math.Hypot(row[p], row[p+1]))
			}
		}
		r.Apply(x)
		for i := 0; i < n; i++ {
			row := x.Row(i)
			for pi, p := 0, 0; p < len(row); pi, p = pi+1, p+2 {
				if math.Abs(math.Hypot(row[p], row[p+1])-before[i][pi]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestLinearityOfLinear property-checks the linear layer: f(ax+by) =
// a·f(x) + b·f(y) for bias-free layers.
func TestLinearityOfLinear(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in, out, n := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(5)
		l := NewLinear(rng, "l", in, out, false)
		x := tensor.Randn(rng, n, in, 1)
		y := tensor.Randn(rng, n, in, 1)
		a, b := rng.NormFloat64(), rng.NormFloat64()

		mix := tensor.New(n, in)
		for i := range mix.Data {
			mix.Data[i] = a*x.Data[i] + b*y.Data[i]
		}
		got := l.Forward(mix)
		fx := l.Forward(x).Clone()
		fy := l.Forward(y)
		want := tensor.New(n, out)
		for i := range want.Data {
			want.Data[i] = a*fx.Data[i] + b*fy.Data[i]
		}
		return got.Equal(want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestRMSNormScaleInvariance property-checks that RMSNorm output is
// invariant to positive rescaling of its input (the defining property).
func TestRMSNormScaleInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 2 + rng.Intn(16)
		r := NewRMSNorm("n", dim)
		x := tensor.Randn(rng, 3, dim, 1)
		// Keep inputs away from zero so eps is negligible.
		for i := range x.Data {
			x.Data[i] += math.Copysign(0.5, x.Data[i])
		}
		y1 := r.Forward(x).Clone()
		scaled := x.Clone()
		scaled.Scale(1 + rng.Float64()*10)
		y2 := r.Forward(scaled)
		// Tolerance accounts for the eps term in rms(x), which breaks
		// exact invariance by O(eps/ms).
		return y1.Equal(y2, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestAttentionPermutationOfHeads property-checks that attention output is
// within-head local: zeroing one head's V columns only suppresses that
// head's contribution, leaving context columns of other heads intact.
func TestAttentionHeadLocality(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := NewAttention(rng, "a", 12, 3, 16, 10000)
	x := tensor.Randn(rng, 5, 12, 1)
	a.Forward(x)
	base := a.LastContext().Clone()

	// Zero V rows for head 1 (rows 4..8 of WV in (out x in) layout).
	for r := 4; r < 8; r++ {
		for c := 0; c < 12; c++ {
			AsLinear(a.WV).P.W.Set(r, c, 0)
		}
	}
	a.Forward(x)
	got := a.LastContext()
	for i := 0; i < 5; i++ {
		for j := 0; j < 12; j++ {
			inHead1 := j >= 4 && j < 8
			if inHead1 {
				if got.At(i, j) != 0 {
					t.Fatalf("zeroed head still produced context at (%d,%d)", i, j)
				}
			} else if math.Abs(got.At(i, j)-base.At(i, j)) > 1e-12 {
				t.Fatalf("other head context changed at (%d,%d)", i, j)
			}
		}
	}
}

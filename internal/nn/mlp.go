package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// MLP is LLaMA's SwiGLU feed-forward block:
// y = W_down · (silu(W_gate·x) ⊙ (W_up·x)).
// Per the paper, feed-forward weights are quantized with the plain GPTQ
// Hessian H = 2XᵀX of their own layer inputs.
type MLP struct {
	// The projection slots hold *Linear on trainable models and
	// *QuantizedLinear after a QuantizedModel swap-in.
	Gate, Up, Down Projection

	gateOut, upOut, hidden *tensor.Mat
}

// NewMLP constructs a SwiGLU MLP with hidden width ff.
func NewMLP(rng *rand.Rand, name string, dim, ff int) *MLP {
	return &MLP{
		Gate: NewLinear(rng, name+".gate", dim, ff, false),
		Up:   NewLinear(rng, name+".up", dim, ff, false),
		Down: NewLinear(rng, name+".down", ff, dim, false),
	}
}

// silu computes x·sigmoid(x).
func silu(x float64) float64 { return x / (1 + math.Exp(-x)) }

// siluGrad computes d silu / dx = sigmoid(x)·(1 + x·(1−sigmoid(x))).
func siluGrad(x float64) float64 {
	s := 1 / (1 + math.Exp(-x))
	return s * (1 + x*(1-s))
}

// Forward runs the SwiGLU computation for x (n x dim).
func (m *MLP) Forward(x *tensor.Mat) *tensor.Mat {
	m.gateOut = m.Gate.Forward(x)
	m.upOut = m.Up.Forward(x)
	m.hidden = tensor.New(m.gateOut.Rows, m.gateOut.Cols)
	for i := range m.hidden.Data {
		m.hidden.Data[i] = silu(m.gateOut.Data[i]) * m.upOut.Data[i]
	}
	return m.Down.Forward(m.hidden)
}

// ForwardInto computes the SwiGLU MLP into out with h1/h2 as hidden
// scratch (gate and up projections; the silu(gate)⊙up product lands in
// h1). Bit-identical to Forward.
//
//aptq:noalloc
func (m *MLP) ForwardInto(out, x, h1, h2 *tensor.Mat) {
	m.Gate.ForwardInto(h1, x)
	m.Up.ForwardInto(h2, x)
	for i, g := range h1.Data {
		h1.Data[i] = silu(g) * h2.Data[i]
	}
	m.Down.ForwardInto(out, h1)
}

// Backward propagates dOut through the block, returning dX.
func (m *MLP) Backward(dOut *tensor.Mat) *tensor.Mat {
	if m.hidden == nil {
		panic("nn: MLP.Backward before Forward")
	}
	dHidden := m.Down.Backward(dOut)
	dGate := tensor.New(dHidden.Rows, dHidden.Cols)
	dUp := tensor.New(dHidden.Rows, dHidden.Cols)
	for i := range dHidden.Data {
		g := m.gateOut.Data[i]
		dGate.Data[i] = dHidden.Data[i] * m.upOut.Data[i] * siluGrad(g)
		dUp.Data[i] = dHidden.Data[i] * silu(g)
	}
	dx := m.Gate.Backward(dGate)
	tensor.AddInPlace(dx, m.Up.Backward(dUp))
	return dx
}

// Params returns gate, up and down parameters.
func (m *MLP) Params() []*Param {
	var ps []*Param
	for _, l := range []Projection{m.Gate, m.Up, m.Down} {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Projections returns the quantizable projection slots in gate, up, down
// order.
func (m *MLP) Projections() []Projection { return []Projection{m.Gate, m.Up, m.Down} }

// SetProjection replaces slot i of Projections (the QuantizedModel
// swap-in hook).
func (m *MLP) SetProjection(i int, p Projection) {
	switch i {
	case 0:
		m.Gate = p
	case 1:
		m.Up = p
	case 2:
		m.Down = p
	default:
		panic(fmt.Sprintf("nn: MLP has no projection slot %d", i))
	}
}

// View returns an MLP sharing this block's weights but owning its forward
// caches (see Model.View).
func (m *MLP) View() FeedForward {
	return &MLP{Gate: m.Gate.View(), Up: m.Up.View(), Down: m.Down.View()}
}

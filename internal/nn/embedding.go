package nn

import (
	"math/rand"

	"repro/internal/tensor"
)

// Embedding maps token ids to d-dimensional vectors via a (vocab x dim)
// lookup table. Following common PTQ practice (and GPTQ/APTQ's evaluation
// protocol) the embedding table is left in full precision.
type Embedding struct {
	P       *Param
	lastIDs []int
}

// NewEmbedding constructs a N(0, 0.02²)-initialized embedding table.
func NewEmbedding(rng *rand.Rand, name string, vocab, dim int) *Embedding {
	w := tensor.Randn(rng, vocab, dim, 0.02)
	return &Embedding{P: NewParam(name, w)}
}

// Vocab returns the vocabulary size.
func (e *Embedding) Vocab() int { return e.P.W.Rows }

// Dim returns the embedding dimension.
func (e *Embedding) Dim() int { return e.P.W.Cols }

// Forward gathers the embedding rows for ids into an (n x dim) matrix.
func (e *Embedding) Forward(ids []int) *tensor.Mat {
	e.lastIDs = ids
	out := tensor.New(len(ids), e.Dim())
	for t, id := range ids {
		if id < 0 || id >= e.Vocab() {
			panic("nn: embedding id out of range")
		}
		copy(out.Row(t), e.P.W.Row(id))
	}
	return out
}

// ForwardInto gathers the embedding rows for ids into out (len(ids) x
// Dim) without touching the backward cache — the allocation-free gather
// of the chunked prefill path.
//
//aptq:noalloc
func (e *Embedding) ForwardInto(out *tensor.Mat, ids []int) {
	for t, id := range ids {
		if id < 0 || id >= e.Vocab() {
			panic("nn: embedding id out of range")
		}
		copy(out.Row(t), e.P.W.Row(id))
	}
}

// Backward scatters dy rows into the gradient of the looked-up ids.
func (e *Embedding) Backward(dy *tensor.Mat) {
	if e.lastIDs == nil {
		panic("nn: Embedding.Backward before Forward")
	}
	for t, id := range e.lastIDs {
		tensor.Axpy(1, dy.Row(t), e.P.Grad.Row(id))
	}
}

// Params returns the layer's trainable parameters.
func (e *Embedding) Params() []*Param { return []*Param{e.P} }

// View returns an Embedding sharing the table but owning its forward cache.
func (e *Embedding) View() *Embedding { return &Embedding{P: e.P} }

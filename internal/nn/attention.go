package nn

import (
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Attention is causal multi-head self-attention with rotary position
// embeddings — the F(W, X) = MultiHead(Q, K, V) of eq. (8). Beyond Forward
// and Backward it exposes the intermediate quantities APTQ's Hessian
// construction needs:
//
//   - LastInput: the block input X (GPTQ statistic for W_Q / W_K and the
//     probe path),
//   - HeadAttn(h): the softmax matrix A_h, whose product with X forms the
//     effective input M_h = A_h·X of eq. (11) for quantizing W_V,
//   - LastContext: Concat(head_1..H), the effective input of eq. (9) for
//     quantizing W_O.
type Attention struct {
	Dim, Heads, HeadDim int

	// The projection slots hold *Linear on trainable models and
	// *QuantizedLinear after a QuantizedModel swap-in (packed low-bit
	// execution); quantization pipelines assert the float form via
	// nn.AsLinear.
	WQ, WK, WV, WO Projection
	// Rope is nil for architectures using learned positional embeddings
	// (GPT/OPT); attention is then position-agnostic.
	Rope *RoPE

	// Forward caches.
	x, q, k, v *tensor.Mat
	attn       []*tensor.Mat // per-head softmax matrices, n x n causal
	ctx        *tensor.Mat   // concat of head outputs, input to WO
}

// NewAttention constructs an attention block with square projections
// (dim x dim) split across heads.
func NewAttention(rng *rand.Rand, name string, dim, heads, maxSeq int, ropeBase float64) *Attention {
	if dim%heads != 0 {
		panic("nn: dim must be divisible by heads")
	}
	hd := dim / heads
	return &Attention{
		Dim: dim, Heads: heads, HeadDim: hd,
		WQ:   NewLinear(rng, name+".wq", dim, dim, false),
		WK:   NewLinear(rng, name+".wk", dim, dim, false),
		WV:   NewLinear(rng, name+".wv", dim, dim, false),
		WO:   NewLinear(rng, name+".wo", dim, dim, false),
		Rope: NewRoPE(hd, maxSeq, ropeBase),
	}
}

// NewAttentionGPT constructs a GPT/OPT-style attention block: biased
// projections and no rotary embedding.
func NewAttentionGPT(rng *rand.Rand, name string, dim, heads int) *Attention {
	if dim%heads != 0 {
		panic("nn: dim must be divisible by heads")
	}
	return &Attention{
		Dim: dim, Heads: heads, HeadDim: dim / heads,
		WQ: NewLinear(rng, name+".wq", dim, dim, true),
		WK: NewLinear(rng, name+".wk", dim, dim, true),
		WV: NewLinear(rng, name+".wv", dim, dim, true),
		WO: NewLinear(rng, name+".wo", dim, dim, true),
	}
}

// Forward runs causal self-attention over x (n x dim).
func (a *Attention) Forward(x *tensor.Mat) *tensor.Mat {
	n := x.Rows
	a.x = x
	a.q = a.WQ.Forward(x)
	a.k = a.WK.Forward(x)
	a.v = a.WV.Forward(x)
	if a.Rope != nil {
		a.Rope.Apply(a.q)
		a.Rope.Apply(a.k)
	}

	a.ctx = tensor.New(n, a.Dim)
	a.attn = make([]*tensor.Mat, a.Heads)
	invSqrt := 1 / math.Sqrt(float64(a.HeadDim))
	for h := 0; h < a.Heads; h++ {
		lo := h * a.HeadDim
		hi := lo + a.HeadDim
		qh := a.q.SliceCols(lo, hi)
		kh := a.k.SliceCols(lo, hi)
		vh := a.v.SliceCols(lo, hi)

		// Causal scaled dot-product scores and row softmax.
		s := tensor.MatMulNT(qh, kh) // n x n
		s.Scale(invSqrt)
		att := tensor.New(n, n)
		for i := 0; i < n; i++ {
			srow := s.Row(i)[:i+1]
			arow := att.Row(i)[:i+1]
			tensor.Softmax(arow, srow)
		}
		a.attn[h] = att

		ctxh := tensor.MatMul(att, vh)
		a.ctx.SetSliceCols(lo, ctxh)
	}
	return a.WO.Forward(a.ctx)
}

// Backward propagates dOut (n x dim) through the attention block, returning
// dX and accumulating all projection gradients.
func (a *Attention) Backward(dOut *tensor.Mat) *tensor.Mat {
	if a.x == nil {
		panic("nn: Attention.Backward before Forward")
	}
	n := a.x.Rows
	invSqrt := 1 / math.Sqrt(float64(a.HeadDim))

	dCtx := a.WO.Backward(dOut) // n x dim
	dQ := tensor.New(n, a.Dim)
	dK := tensor.New(n, a.Dim)
	dV := tensor.New(n, a.Dim)

	for h := 0; h < a.Heads; h++ {
		lo := h * a.HeadDim
		hi := lo + a.HeadDim
		qh := a.q.SliceCols(lo, hi)
		kh := a.k.SliceCols(lo, hi)
		vh := a.v.SliceCols(lo, hi)
		att := a.attn[h]
		dCtxh := dCtx.SliceCols(lo, hi)

		// dV_h = A_hᵀ · dCtx_h ; dA = dCtx_h · V_hᵀ
		dVh := tensor.MatMulTN(att, dCtxh)
		dA := tensor.MatMulNT(dCtxh, vh)

		// Softmax backward per causal row:
		// dS_ij = A_ij · (dA_ij − Σ_k A_ik dA_ik), j <= i.
		dS := tensor.New(n, n)
		for i := 0; i < n; i++ {
			arow := att.Row(i)[:i+1]
			darow := dA.Row(i)[:i+1]
			dot := tensor.Dot(arow, darow)
			dsrow := dS.Row(i)[:i+1]
			for j := range arow {
				dsrow[j] = arow[j] * (darow[j] - dot)
			}
		}

		// dQ_h = dS·K_h·invSqrt ; dK_h = dSᵀ·Q_h·invSqrt
		dQh := tensor.MatMul(dS, kh)
		dQh.Scale(invSqrt)
		dKh := tensor.MatMulTN(dS, qh)
		dKh.Scale(invSqrt)

		dQ.SetSliceCols(lo, dQh)
		dK.SetSliceCols(lo, dKh)
		dV.SetSliceCols(lo, dVh)
	}

	// Undo the rotary embedding on the gradients.
	if a.Rope != nil {
		a.Rope.ApplyInverse(dQ)
		a.Rope.ApplyInverse(dK)
	}

	dx := a.WQ.Backward(dQ)
	tensor.AddInPlace(dx, a.WK.Backward(dK))
	tensor.AddInPlace(dx, a.WV.Backward(dV))
	return dx
}

// LastInput returns the cached block input X.
func (a *Attention) LastInput() *tensor.Mat { return a.x }

// LastContext returns the cached Concat(head_1..H) — the effective input of
// W_O per eq. (9).
func (a *Attention) LastContext() *tensor.Mat { return a.ctx }

// HeadAttn returns the cached softmax matrix A_h of head h (n x n, causal
// rows). Combined with the block input it yields eq. (11)'s M_h = A_h·X.
func (a *Attention) HeadAttn(h int) *tensor.Mat { return a.attn[h] }

// Params returns the projection parameters in Q, K, V, O order (including
// biases for biased variants).
func (a *Attention) Params() []*Param {
	var ps []*Param
	for _, l := range []Projection{a.WQ, a.WK, a.WV, a.WO} {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// View returns an Attention sharing this block's projection weights and
// rotary tables but owning its forward caches, so concurrent decoding
// sessions never race on the per-forward scratch state.
func (a *Attention) View() *Attention {
	return &Attention{
		Dim: a.Dim, Heads: a.Heads, HeadDim: a.HeadDim,
		WQ: a.WQ.View(), WK: a.WK.View(), WV: a.WV.View(), WO: a.WO.View(),
		Rope: a.Rope,
	}
}

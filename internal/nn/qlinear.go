package nn

import (
	"fmt"

	"repro/internal/quant"
	"repro/internal/tensor"
)

// QuantizedLinear is the packed low-bit counterpart of Linear: it holds
// the bit-packed code stream plus group parameters of a quantized weight
// matrix and computes y = x·Wᵀ (+ bias) with group-wise dequantization on
// the fly, honoring per-row mixed precision. The float64 weight matrix is
// never materialized, so a model running on QuantizedLinear layers keeps
// only the compressed representation resident — the memory footprint the
// paper's "Avg bit" tables promise.
//
// Forward output is bit-identical to Linear.Forward over the dequantized
// weights (property-tested in qlinear_test.go). It is a deployment-time
// layer: Backward panics, and there is no input caching, which also makes
// Forward safe for concurrent use by batched decoding sessions.
type QuantizedLinear struct {
	Name string
	W    *quant.PackedMatrix
	// Bias stays in full precision (shared with the float original); nil
	// for bias-free architectures.
	Bias *Param
}

// NewQuantizedLinear wraps a packed matrix (and optional full-precision
// bias) as a projection layer.
func NewQuantizedLinear(name string, w *quant.PackedMatrix, bias *Param) *QuantizedLinear {
	if bias != nil && bias.W.Cols != w.Rows {
		panic(fmt.Sprintf("nn: QuantizedLinear %s bias width %d for %d outputs", name, bias.W.Cols, w.Rows))
	}
	return &QuantizedLinear{Name: name, W: w, Bias: bias}
}

// In returns the input dimension of the layer.
func (l *QuantizedLinear) In() int { return l.W.Cols }

// Out returns the output dimension of the layer.
func (l *QuantizedLinear) Out() int { return l.W.Rows }

// addBias adds the bias row to every row of y (no-op for bias-free layers).
func (l *QuantizedLinear) addBias(y *tensor.Mat) {
	if l.Bias == nil {
		return
	}
	b := l.Bias.W.Row(0)
	for i := 0; i < y.Rows; i++ {
		row := y.Row(i)
		for j := range row {
			row[j] += b[j]
		}
	}
}

// Forward computes y = x·Wᵀ (+ bias) straight from the packed codes.
func (l *QuantizedLinear) Forward(x *tensor.Mat) *tensor.Mat {
	y := l.W.MatMulNT(x)
	l.addBias(y)
	return y
}

// ForwardInto computes y = x·Wᵀ (+ bias) into out straight from the
// packed codes. Multi-row inputs (the chunked prefill shape) route
// through the LUT-accelerated matmul kernel; the result is bit-identical
// to Forward either way.
//
//aptq:noalloc
func (l *QuantizedLinear) ForwardInto(out, x *tensor.Mat) {
	l.W.MatMulNTInto(out, x)
	l.addBias(out)
}

// Backward is invalid on the packed deployment layer.
func (l *QuantizedLinear) Backward(dy *tensor.Mat) *tensor.Mat {
	panic(fmt.Sprintf("nn: Backward through packed quantized projection %s", l.Name))
}

// Params returns the full-precision bias, the only trainable tensor left.
func (l *QuantizedLinear) Params() []*Param {
	if l.Bias != nil {
		return []*Param{l.Bias}
	}
	return nil
}

// View returns the layer itself: QuantizedLinear keeps no forward scratch
// state, so sessions can share one instance.
func (l *QuantizedLinear) View() Projection { return l }

// WeightBytes returns the resident bytes of the packed weight
// representation.
func (l *QuantizedLinear) WeightBytes() int64 { return l.W.SizeBytes() }

// Package nn implements the neural-network layers of a LLaMA-style
// decoder-only transformer, each with an explicit forward and backward pass.
// The backward passes serve two masters: the pretraining loop
// (internal/train) and APTQ's attention-aware Hessian construction
// (internal/core), which backpropagates probe matrices through the softmax /
// matmul path of the attention block to realize eqs. (12) and (13) of the
// paper.
//
// Layers are single-goroutine objects: Forward caches activations in the
// layer, Backward consumes them. Weight matrices follow the GPTQ (out x in)
// convention, so a linear layer computes y = x·Wᵀ + b.
package nn

import (
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Param is a named trainable tensor and its gradient accumulator.
type Param struct {
	Name string
	W    *tensor.Mat
	Grad *tensor.Mat
}

// NewParam allocates a parameter and a zeroed gradient of the same shape.
func NewParam(name string, w *tensor.Mat) *Param {
	return &Param{Name: name, W: w, Grad: tensor.New(w.Rows, w.Cols)}
}

// ZeroGrad resets the gradient accumulator.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// NumEl returns the number of scalar weights in the parameter.
func (p *Param) NumEl() int { return p.W.Rows * p.W.Cols }

// InitXavier fills w with U(-a, a), a = sqrt(6/(fanIn+fanOut)) — the
// standard Glorot initialization for linear layers.
func InitXavier(rng *rand.Rand, w *tensor.Mat, fanIn, fanOut int) {
	a := math.Sqrt(6 / float64(fanIn+fanOut))
	for i := range w.Data {
		w.Data[i] = (rng.Float64()*2 - 1) * a
	}
}

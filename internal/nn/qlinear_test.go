package nn

import (
	"math/rand"
	"testing"

	"repro/internal/parallel"
	"repro/internal/quant"
	"repro/internal/tensor"
)

// packedFromFloat RTN-quantizes w and returns both the packed layer and a
// float Linear holding the dequantized weights — the two execution paths
// the property tests compare.
func packedFromFloat(t *testing.T, w *tensor.Mat, bits, groupSize int, rowBits []int, bias *Param) (*QuantizedLinear, *Linear) {
	t.Helper()
	q := quant.RTN(w, bits, groupSize, false)
	if rowBits != nil {
		// Re-encode each row at its own width (mixed precision within the
		// matrix, as APTQ's per-row allocation produces for W_V bands).
		q.RowBits = rowBits
		ng := q.NumGroups()
		for r := 0; r < w.Rows; r++ {
			row := w.Row(r)
			for g := 0; g < ng; g++ {
				lo := g * q.GroupSize
				hi := lo + q.GroupSize
				if hi > w.Cols {
					hi = w.Cols
				}
				p := quant.FitGroup(row[lo:hi], rowBits[r], false)
				q.Params[r*ng+g] = p
				for c := lo; c < hi; c++ {
					q.Codes[r*w.Cols+c] = uint16(p.Encode(row[c], rowBits[r]))
				}
			}
		}
	}
	pm, err := quant.PackMatrix(q)
	if err != nil {
		t.Fatal(err)
	}
	ql := NewQuantizedLinear("test", pm, bias)
	fl := &Linear{P: NewParam("test", q.Dequantize()), Bias: bias}
	return ql, fl
}

// TestQuantizedLinearBitIdentical is the acceptance property of the packed
// execution path: QuantizedLinear.Forward must be exactly equal (not
// approximately) to Dequantize() + Linear.Forward on every tested shape,
// bit width, group size and mixed-precision pattern, at every worker
// count.
func TestQuantizedLinearBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	shapes := []struct{ out, in, group int }{
		{1, 1, 1}, {2, 3, 2}, {5, 7, 3}, {13, 11, 4}, {31, 17, 16}, {48, 48, 16}, {7, 23, 64},
	}
	for _, sh := range shapes {
		for bits := 1; bits <= 8; bits++ {
			for _, mixed := range []bool{false, true} {
				var rowBits []int
				if mixed {
					rowBits = make([]int, sh.out)
					for r := range rowBits {
						rowBits[r] = 1 + rng.Intn(8)
					}
				}
				w := tensor.Randn(rng, sh.out, sh.in, 1)
				ql, fl := packedFromFloat(t, w, bits, sh.group, rowBits, nil)
				x := tensor.Randn(rng, 1+rng.Intn(4), sh.in, 1)
				want := fl.Forward(x)
				for _, workers := range []int{1, 3, 8} {
					parallel.SetWorkers(workers)
					got := ql.Forward(x)
					parallel.SetWorkers(0)
					if !got.Equal(want, 0) {
						t.Fatalf("shape %+v bits=%d mixed=%v workers=%d: packed forward differs from dequantized float forward",
							sh, bits, mixed, workers)
					}
				}
			}
		}
	}
}

func TestQuantizedLinearBias(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := tensor.Randn(rng, 9, 5, 1)
	bias := NewParam("test.bias", tensor.Randn(rng, 1, 9, 1))
	ql, fl := packedFromFloat(t, w, 4, 4, nil, bias)
	x := tensor.Randn(rng, 3, 5, 1)
	if !ql.Forward(x).Equal(fl.Forward(x), 0) {
		t.Fatal("biased packed forward differs from float path")
	}
	if ql.In() != 5 || ql.Out() != 9 {
		t.Fatalf("In/Out = %d/%d", ql.In(), ql.Out())
	}
}

func TestQuantizedLinearBackwardPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ql, _ := packedFromFloat(t, tensor.Randn(rng, 4, 4, 1), 4, 4, nil, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("Backward through a packed projection must panic")
		}
	}()
	ql.Backward(tensor.New(1, 4))
}

func TestLinearViewSharesWeightsNotCache(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	l := NewLinear(rng, "l", 6, 4, true)
	v := AsLinear(l.View())
	if v.P != l.P || v.Bias != l.Bias {
		t.Fatal("view must share parameters")
	}
	x := tensor.Randn(rng, 2, 6, 1)
	l.Forward(x)
	if v.LastInput() != nil {
		t.Fatal("view must own its forward cache")
	}
	if !v.Forward(x).Equal(l.Forward(x), 0) {
		t.Fatal("view forward differs")
	}
}

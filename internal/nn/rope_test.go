package nn

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// applyRoPEAtPadded is the previous incremental-decode formulation: embed
// the row at index pos of a padded (pos+1 x cols) matrix so Apply's
// row-index-equals-position convention rotates it correctly. Kept as the
// reference for ApplyAt's equivalence test (and the before/after
// benchmark in packed_bench_test.go).
func applyRoPEAtPadded(r *RoPE, row *tensor.Mat, pos int) {
	padded := tensor.New(pos+1, row.Cols)
	copy(padded.Row(pos), row.Row(0))
	r.Apply(padded)
	copy(row.Row(0), padded.Row(pos))
}

func TestRoPEApplyAtMatchesPadded(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := NewRoPE(8, 64, 10000)
	for _, pos := range []int{0, 1, 5, 31, 63} {
		row := tensor.Randn(rng, 1, 24, 1) // 3 heads x headDim 8
		want := row.Clone()
		applyRoPEAtPadded(r, want, pos)
		got := row.Clone()
		r.ApplyAt(got, pos)
		if !got.Equal(want, 0) {
			t.Fatalf("pos %d: ApplyAt differs from padded Apply", pos)
		}
	}
}

func TestRoPEApplyAtMatchesBatchApply(t *testing.T) {
	// Rotating a full sequence row-by-row with ApplyAt must equal the
	// batch Apply pass.
	rng := rand.New(rand.NewSource(2))
	r := NewRoPE(8, 32, 10000)
	x := tensor.Randn(rng, 16, 16, 1)
	want := x.Clone()
	r.Apply(want)
	for pos := 0; pos < x.Rows; pos++ {
		row := &tensor.Mat{Rows: 1, Cols: x.Cols, Data: x.Row(pos)}
		r.ApplyAt(row, pos)
	}
	if !x.Equal(want, 0) {
		t.Fatal("row-wise ApplyAt differs from batch Apply")
	}
}

func TestRoPEApplyAtGrowsTables(t *testing.T) {
	r := NewRoPE(4, 2, 10000)
	row := tensor.New(1, 4)
	row.Data[0] = 1
	r.ApplyAt(row, 10) // beyond the precomputed range: must grow, not panic
}

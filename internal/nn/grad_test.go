package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// gradCheck verifies an analytic gradient against central finite differences.
// loss() must recompute the scalar loss from current parameter/input values.
func gradCheck(t *testing.T, name string, data []float64, grad []float64, loss func() float64, tol float64) {
	t.Helper()
	const eps = 1e-5
	for i := range data {
		orig := data[i]
		data[i] = orig + eps
		lp := loss()
		data[i] = orig - eps
		lm := loss()
		data[i] = orig
		num := (lp - lm) / (2 * eps)
		if diff := math.Abs(num - grad[i]); diff > tol*(1+math.Abs(num)) {
			t.Fatalf("%s grad[%d]: analytic %v vs numeric %v", name, i, grad[i], num)
		}
	}
}

// probeLoss builds a scalar loss L = Σ c_ij·Y_ij from a fixed random probe c,
// whose gradient w.r.t. Y is exactly c.
func probeLoss(rng *rand.Rand, rows, cols int) (c *tensor.Mat, loss func(y *tensor.Mat) float64) {
	c = tensor.Randn(rng, rows, cols, 1)
	return c, func(y *tensor.Mat) float64 {
		s := 0.0
		for i := range y.Data {
			s += c.Data[i] * y.Data[i]
		}
		return s
	}
}

func TestLinearGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(rng, "l", 4, 3, true)
	x := tensor.Randn(rng, 5, 4, 1)
	c, lossOf := probeLoss(rng, 5, 3)

	loss := func() float64 { return lossOf(l.Forward(x)) }
	l.Forward(x)
	dx := l.Backward(c)

	gradCheck(t, "linear.x", x.Data, dx.Data, loss, 1e-6)
	gradCheck(t, "linear.W", l.P.W.Data, l.P.Grad.Data, loss, 1e-6)
	gradCheck(t, "linear.b", l.Bias.W.Data, l.Bias.Grad.Data, loss, 1e-6)
}

func TestLinearBackwardAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewLinear(rng, "l", 3, 2, false)
	x := tensor.Randn(rng, 4, 3, 1)
	dy := tensor.Randn(rng, 4, 2, 1)
	l.Forward(x)
	l.Backward(dy)
	g1 := l.P.Grad.Clone()
	l.Forward(x)
	l.Backward(dy)
	g1.Scale(2)
	if !l.P.Grad.Equal(g1, 1e-12) {
		t.Fatal("gradients must accumulate across backward calls")
	}
}

func TestRMSNormGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r := NewRMSNorm("n", 6)
	// Non-trivial gain so the gain path is exercised.
	for i := range r.P.W.Data {
		r.P.W.Data[i] = 0.5 + rng.Float64()
	}
	x := tensor.Randn(rng, 4, 6, 1)
	c, lossOf := probeLoss(rng, 4, 6)

	loss := func() float64 { return lossOf(r.Forward(x)) }
	r.Forward(x)
	dx := r.Backward(c)

	gradCheck(t, "rmsnorm.x", x.Data, dx.Data, loss, 1e-5)
	gradCheck(t, "rmsnorm.g", r.P.W.Data, r.P.Grad.Data, loss, 1e-5)
}

func TestRMSNormUnitGainIdentityDirection(t *testing.T) {
	r := NewRMSNorm("n", 4)
	x := tensor.FromSlice(1, 4, []float64{2, 2, 2, 2})
	y := r.Forward(x)
	// rms = 2, so each output should be ~1.
	for _, v := range y.Data {
		if math.Abs(v-1) > 1e-5 {
			t.Fatalf("RMSNorm output %v, want ~1", v)
		}
	}
}

func TestMLPGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewMLP(rng, "m", 4, 6)
	x := tensor.Randn(rng, 3, 4, 1)
	c, lossOf := probeLoss(rng, 3, 4)

	loss := func() float64 { return lossOf(m.Forward(x)) }
	m.Forward(x)
	dx := m.Backward(c)

	gradCheck(t, "mlp.x", x.Data, dx.Data, loss, 1e-5)
	for _, p := range m.Params() {
		gradCheck(t, "mlp."+p.Name, p.W.Data, p.Grad.Data, loss, 1e-5)
	}
}

func TestAttentionGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := NewAttention(rng, "a", 8, 2, 16, 10000)
	x := tensor.Randn(rng, 5, 8, 1)
	c, lossOf := probeLoss(rng, 5, 8)

	loss := func() float64 { return lossOf(a.Forward(x)) }
	a.Forward(x)
	dx := a.Backward(c)

	gradCheck(t, "attn.x", x.Data, dx.Data, loss, 1e-4)
	for _, p := range a.Params() {
		gradCheck(t, "attn."+p.Name, p.W.Data, p.Grad.Data, loss, 1e-4)
	}
}

func TestBlockGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	b := NewBlock(rng, "b", 8, 2, 12, 16, 10000)
	x := tensor.Randn(rng, 4, 8, 1)
	c, lossOf := probeLoss(rng, 4, 8)

	loss := func() float64 { return lossOf(b.Forward(x)) }
	b.Forward(x)
	dx := b.Backward(c)

	gradCheck(t, "block.x", x.Data, dx.Data, loss, 1e-4)
	for _, p := range b.Params() {
		gradCheck(t, "block."+p.Name, p.W.Data, p.Grad.Data, loss, 1e-4)
	}
}

func TestEmbeddingGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e := NewEmbedding(rng, "e", 10, 4)
	ids := []int{3, 7, 3}
	c, lossOf := probeLoss(rng, 3, 4)

	loss := func() float64 { return lossOf(e.Forward(ids)) }
	e.Forward(ids)
	e.Backward(c)

	gradCheck(t, "embed.W", e.P.W.Data, e.P.Grad.Data, loss, 1e-6)
}

func TestCrossEntropyGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	logits := tensor.Randn(rng, 4, 6, 1)
	targets := []int{1, 0, 5, 2}

	_, dLogits := CrossEntropy(logits, targets)
	loss := func() float64 {
		l, _ := CrossEntropy(logits, targets)
		return l
	}
	gradCheck(t, "xent.logits", logits.Data, dLogits.Data, loss, 1e-5)
}

func TestCrossEntropyMasking(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	logits := tensor.Randn(rng, 3, 4, 1)
	full, _ := CrossEntropy(logits, []int{1, 2, 3})
	masked, dl := CrossEntropy(logits, []int{1, -1, 3})
	if masked == full {
		t.Fatal("masking should change the mean loss")
	}
	// Masked row must contribute zero gradient.
	for _, v := range dl.Row(1) {
		if v != 0 {
			t.Fatal("masked row gradient must be zero")
		}
	}
}

func TestCrossEntropyAllMasked(t *testing.T) {
	logits := tensor.New(2, 3)
	loss, dl := CrossEntropy(logits, []int{-1, -1})
	if loss != 0 || dl.MaxAbs() != 0 {
		t.Fatal("all-masked loss must be zero with zero gradient")
	}
}

func TestSequenceNLLMatchesCrossEntropy(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	logits := tensor.Randn(rng, 5, 7, 1)
	targets := []int{0, 3, -1, 6, 2}
	ce, _ := CrossEntropy(logits, targets)
	nll, n := SequenceNLL(logits, targets)
	if n != 4 {
		t.Fatalf("token count = %d, want 4", n)
	}
	if math.Abs(nll/float64(n)-ce) > 1e-12 {
		t.Fatalf("NLL/n = %v, CE = %v", nll/float64(n), ce)
	}
}

package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// FeedForward is the MLP contract shared by the SwiGLU block (LLaMA) and
// the GELU block (GPT/OPT).
type FeedForward interface {
	Forward(x *tensor.Mat) *tensor.Mat
	// ForwardInto computes the feed-forward output into out (n x dim)
	// using h1 and h2 as n x ff hidden scratch, without touching the
	// forward caches — the allocation-free inference entry point of the
	// chunked prefill path. Backward after ForwardInto sees the previous
	// Forward.
	//
	//aptq:noalloc
	ForwardInto(out, x, h1, h2 *tensor.Mat)
	Backward(dy *tensor.Mat) *tensor.Mat
	Params() []*Param
	// Projections returns the quantizable projection slots in a stable
	// order; SetProjection replaces slot i (the packed-execution swap-in
	// hook of model.QuantizedModel).
	Projections() []Projection
	SetProjection(i int, p Projection)
	// View returns a feed-forward block sharing this one's weights but
	// owning its forward caches (see model.Model.View).
	View() FeedForward
}

// Compile-time interface checks.
var (
	_ FeedForward = (*MLP)(nil)
	_ FeedForward = (*GELUMLP)(nil)
)

// GELUMLP is the two-layer GELU feed-forward block of GPT-2/OPT:
// y = W_fc2·gelu(W_fc1·x + b1) + b2.
type GELUMLP struct {
	// The projection slots hold *Linear on trainable models and
	// *QuantizedLinear after a QuantizedModel swap-in.
	FC1, FC2 Projection

	hiddenPre *tensor.Mat // pre-activation cache
}

// NewGELUMLP constructs a GELU MLP with hidden width ff and biases.
func NewGELUMLP(rng *rand.Rand, name string, dim, ff int) *GELUMLP {
	return &GELUMLP{
		FC1: NewLinear(rng, name+".fc1", dim, ff, true),
		FC2: NewLinear(rng, name+".fc2", ff, dim, true),
	}
}

// gelu computes the tanh approximation of the Gaussian error linear unit,
// the form used by GPT-2.
func gelu(x float64) float64 {
	return 0.5 * x * (1 + math.Tanh(math.Sqrt(2/math.Pi)*(x+0.044715*x*x*x)))
}

// geluGrad computes d gelu / dx for the tanh approximation.
func geluGrad(x float64) float64 {
	c := math.Sqrt(2 / math.Pi)
	inner := c * (x + 0.044715*x*x*x)
	t := math.Tanh(inner)
	dInner := c * (1 + 3*0.044715*x*x)
	return 0.5*(1+t) + 0.5*x*(1-t*t)*dInner
}

// Forward runs the GELU MLP for x (n x dim).
func (m *GELUMLP) Forward(x *tensor.Mat) *tensor.Mat {
	m.hiddenPre = m.FC1.Forward(x)
	h := tensor.New(m.hiddenPre.Rows, m.hiddenPre.Cols)
	for i, v := range m.hiddenPre.Data {
		h.Data[i] = gelu(v)
	}
	return m.FC2.Forward(h)
}

// ForwardInto computes the GELU MLP into out with h1 as the hidden
// scratch (h2 is unused — the block has a single hidden activation).
// Bit-identical to Forward.
//
//aptq:noalloc
func (m *GELUMLP) ForwardInto(out, x, h1, _ *tensor.Mat) {
	m.FC1.ForwardInto(h1, x)
	for i, v := range h1.Data {
		h1.Data[i] = gelu(v)
	}
	m.FC2.ForwardInto(out, h1)
}

// Backward propagates dOut through the block, returning dX.
func (m *GELUMLP) Backward(dOut *tensor.Mat) *tensor.Mat {
	if m.hiddenPre == nil {
		panic("nn: GELUMLP.Backward before Forward")
	}
	dh := m.FC2.Backward(dOut)
	for i := range dh.Data {
		dh.Data[i] *= geluGrad(m.hiddenPre.Data[i])
	}
	return m.FC1.Backward(dh)
}

// Params returns fc1 and fc2 parameters (weights and biases).
func (m *GELUMLP) Params() []*Param {
	return append(m.FC1.Params(), m.FC2.Params()...)
}

// Projections returns the quantizable projection slots: fc1, fc2.
func (m *GELUMLP) Projections() []Projection { return []Projection{m.FC1, m.FC2} }

// SetProjection replaces slot i of Projections.
func (m *GELUMLP) SetProjection(i int, p Projection) {
	switch i {
	case 0:
		m.FC1 = p
	case 1:
		m.FC2 = p
	default:
		panic(fmt.Sprintf("nn: GELUMLP has no projection slot %d", i))
	}
}

// View returns a GELUMLP sharing this block's weights but owning its
// forward caches (see Model.View).
func (m *GELUMLP) View() FeedForward {
	return &GELUMLP{FC1: m.FC1.View(), FC2: m.FC2.View()}
}

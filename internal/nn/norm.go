package nn

import (
	"math"

	"repro/internal/tensor"
)

// Norm is the normalization-layer contract shared by RMSNorm (LLaMA) and
// LayerNorm (GPT/OPT), letting Block compose either architecture.
type Norm interface {
	Forward(x *tensor.Mat) *tensor.Mat
	// ForwardInto normalizes x into out (same shape) without touching the
	// forward caches — the allocation-free inference entry point of the
	// chunked prefill path. Backward after ForwardInto sees the previous
	// Forward.
	//
	//aptq:noalloc
	ForwardInto(out, x *tensor.Mat)
	Backward(dy *tensor.Mat) *tensor.Mat
	Params() []*Param
	// View returns a norm sharing this one's parameters but owning its
	// forward caches (see model.Model.View).
	View() Norm
}

// Compile-time interface checks.
var (
	_ Norm = (*RMSNorm)(nil)
	_ Norm = (*LayerNorm)(nil)
)

// LayerNorm is the classic transformer normalization used by GPT-2/OPT:
// y_i = g_i·(x_i − mean(x))/sqrt(var(x) + eps) + b_i.
type LayerNorm struct {
	Gain *Param // (1 x dim), ones
	Bias *Param // (1 x dim), zeros
	Eps  float64

	lastInput *tensor.Mat
	lastMean  []float64
	lastInv   []float64 // 1/sqrt(var+eps) per row
}

// NewLayerNorm constructs a LayerNorm with unit gain and zero bias.
func NewLayerNorm(name string, dim int) *LayerNorm {
	g := tensor.New(1, dim)
	for i := range g.Data {
		g.Data[i] = 1
	}
	return &LayerNorm{
		Gain: NewParam(name+".gain", g),
		Bias: NewParam(name+".bias", tensor.New(1, dim)),
		Eps:  1e-5,
	}
}

// Forward normalizes each row of x.
func (l *LayerNorm) Forward(x *tensor.Mat) *tensor.Mat {
	l.lastInput = x
	l.lastMean = make([]float64, x.Rows)
	l.lastInv = make([]float64, x.Rows)
	g := l.Gain.W.Row(0)
	b := l.Bias.W.Row(0)
	out := tensor.New(x.Rows, x.Cols)
	n := float64(x.Cols)
	for t := 0; t < x.Rows; t++ {
		row := x.Row(t)
		mean := tensor.MeanVec(row)
		variance := 0.0
		for _, v := range row {
			d := v - mean
			variance += d * d
		}
		variance /= n
		inv := 1 / math.Sqrt(variance+l.Eps)
		l.lastMean[t] = mean
		l.lastInv[t] = inv
		orow := out.Row(t)
		for j, v := range row {
			orow[j] = g[j]*(v-mean)*inv + b[j]
		}
	}
	return out
}

// ForwardInto normalizes each row of x into out without caching —
// bit-identical to Forward, row by row, at any batching.
//
//aptq:noalloc
func (l *LayerNorm) ForwardInto(out, x *tensor.Mat) {
	g := l.Gain.W.Row(0)
	b := l.Bias.W.Row(0)
	n := float64(x.Cols)
	for t := 0; t < x.Rows; t++ {
		row := x.Row(t)
		mean := tensor.MeanVec(row)
		variance := 0.0
		for _, v := range row {
			d := v - mean
			variance += d * d
		}
		variance /= n
		inv := 1 / math.Sqrt(variance+l.Eps)
		orow := out.Row(t)
		for j, v := range row {
			orow[j] = g[j]*(v-mean)*inv + b[j]
		}
	}
}

// Backward computes dx and accumulates gain/bias gradients.
//
// With u_j = (x_j − μ)·inv: dg += dy ⊙ u, db += dy, and
// dx_j = inv·(dŷ_j − mean(dŷ) − u_j·mean(dŷ ⊙ u)) where dŷ = g ⊙ dy.
func (l *LayerNorm) Backward(dy *tensor.Mat) *tensor.Mat {
	if l.lastInput == nil {
		panic("nn: LayerNorm.Backward before Forward")
	}
	x := l.lastInput
	g := l.Gain.W.Row(0)
	gg := l.Gain.Grad.Row(0)
	bg := l.Bias.Grad.Row(0)
	dx := tensor.New(x.Rows, x.Cols)
	n := float64(x.Cols)
	for t := 0; t < x.Rows; t++ {
		mean, inv := l.lastMean[t], l.lastInv[t]
		xrow := x.Row(t)
		dyrow := dy.Row(t)
		dxrow := dx.Row(t)
		sumDg := 0.0
		sumDgu := 0.0
		for j := range xrow {
			u := (xrow[j] - mean) * inv
			dg := dyrow[j] * g[j]
			sumDg += dg
			sumDgu += dg * u
			gg[j] += dyrow[j] * u
			bg[j] += dyrow[j]
		}
		mDg := sumDg / n
		mDgu := sumDgu / n
		for j := range xrow {
			u := (xrow[j] - mean) * inv
			dxrow[j] = inv * (dyrow[j]*g[j] - mDg - u*mDgu)
		}
	}
	return dx
}

// Params returns gain and bias.
func (l *LayerNorm) Params() []*Param { return []*Param{l.Gain, l.Bias} }

// View returns a LayerNorm sharing gain/bias but owning its forward caches.
func (l *LayerNorm) View() Norm {
	return &LayerNorm{Gain: l.Gain, Bias: l.Bias, Eps: l.Eps}
}

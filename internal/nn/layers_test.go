package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestRoPEIsNormPreserving(t *testing.T) {
	r := NewRoPE(8, 16, 10000)
	rng := rand.New(rand.NewSource(1))
	x := tensor.Randn(rng, 10, 16, 1) // 2 heads of dim 8
	before := make([]float64, 10)
	for i := range before {
		before[i] = tensor.Norm2(x.Row(i))
	}
	r.Apply(x)
	for i := range before {
		if math.Abs(tensor.Norm2(x.Row(i))-before[i]) > 1e-9 {
			t.Fatal("RoPE must preserve per-row norms (it is a rotation)")
		}
	}
}

func TestRoPEInverseRoundTrip(t *testing.T) {
	r := NewRoPE(4, 8, 10000)
	rng := rand.New(rand.NewSource(2))
	x := tensor.Randn(rng, 6, 8, 1)
	orig := x.Clone()
	r.Apply(x)
	r.ApplyInverse(x)
	if !x.Equal(orig, 1e-10) {
		t.Fatal("ApplyInverse must undo Apply")
	}
}

func TestRoPEPositionZeroIsIdentity(t *testing.T) {
	r := NewRoPE(4, 4, 10000)
	x := tensor.FromSlice(1, 4, []float64{1, 2, 3, 4})
	orig := x.Clone()
	r.Apply(x)
	if !x.Equal(orig, 1e-12) {
		t.Fatal("position 0 must be unrotated")
	}
}

func TestRoPERelativePhase(t *testing.T) {
	// The defining property: ⟨RoPE(q,m), RoPE(k,n)⟩ depends only on m−n for
	// single-pair vectors.
	r := NewRoPE(2, 32, 10000)
	q := []float64{1, 0.5}
	k := []float64{-0.3, 0.8}
	dotAt := func(m, n int) float64 {
		qm := tensor.New(m+1, 2)
		copy(qm.Row(m), q)
		kn := tensor.New(n+1, 2)
		copy(kn.Row(n), k)
		r.Apply(qm)
		r.Apply(kn)
		return tensor.Dot(qm.Row(m), kn.Row(n))
	}
	if math.Abs(dotAt(5, 3)-dotAt(12, 10)) > 1e-9 {
		t.Fatal("RoPE dot products must depend only on relative position")
	}
}

func TestRoPEGrowsBeyondInitialSeq(t *testing.T) {
	r := NewRoPE(4, 2, 10000)
	x := tensor.New(10, 4) // longer than maxSeq=2
	r.Apply(x)             // must not panic
}

func TestRoPEOddHeadDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for odd head dim")
		}
	}()
	NewRoPE(3, 4, 10000)
}

func TestAttentionCausality(t *testing.T) {
	// Changing a future token must not change past outputs.
	rng := rand.New(rand.NewSource(3))
	a := NewAttention(rng, "a", 8, 2, 16, 10000)
	x := tensor.Randn(rng, 6, 8, 1)
	y1 := a.Forward(x).Clone()
	x2 := x.Clone()
	for j := 0; j < 8; j++ {
		x2.Set(5, j, x2.At(5, j)+1)
	}
	y2 := a.Forward(x2)
	for i := 0; i < 5; i++ {
		for j := 0; j < 8; j++ {
			if math.Abs(y1.At(i, j)-y2.At(i, j)) > 1e-10 {
				t.Fatalf("output at position %d changed after future-token edit", i)
			}
		}
	}
}

func TestAttentionRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := NewAttention(rng, "a", 8, 2, 16, 10000)
	x := tensor.Randn(rng, 5, 8, 1)
	a.Forward(x)
	for h := 0; h < 2; h++ {
		att := a.HeadAttn(h)
		for i := 0; i < 5; i++ {
			row := att.Row(i)
			sum := 0.0
			for j := 0; j <= i; j++ {
				sum += row[j]
			}
			if math.Abs(sum-1) > 1e-10 {
				t.Fatalf("head %d row %d sums to %v", h, i, sum)
			}
			for j := i + 1; j < 5; j++ {
				if row[j] != 0 {
					t.Fatalf("non-causal attention at (%d,%d)", i, j)
				}
			}
		}
	}
}

func TestAttentionCacheExposure(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := NewAttention(rng, "a", 8, 2, 16, 10000)
	x := tensor.Randn(rng, 4, 8, 1)
	out := a.Forward(x)
	if a.LastInput() != x {
		t.Fatal("LastInput must expose the forward input")
	}
	ctx := a.LastContext()
	if ctx == nil || ctx.Rows != 4 || ctx.Cols != 8 {
		t.Fatal("LastContext missing or wrong shape")
	}
	// out must equal WO applied to ctx.
	want := tensor.MatMulNT(ctx, AsLinear(a.WO).P.W)
	if !out.Equal(want, 1e-10) {
		t.Fatal("output != WO(context)")
	}
}

func TestMLPSwiGLUZeroGateIsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := NewMLP(rng, "m", 4, 8)
	AsLinear(m.Gate).P.W.Zero() // silu(0) = 0 ⇒ hidden = 0 ⇒ output = 0
	x := tensor.Randn(rng, 3, 4, 1)
	y := m.Forward(x)
	if y.MaxAbs() > 1e-12 {
		t.Fatal("zero gate must produce zero output")
	}
}

func TestSiluValues(t *testing.T) {
	if math.Abs(silu(0)) > 1e-12 {
		t.Fatal("silu(0) != 0")
	}
	if math.Abs(silu(10)-10/(1+math.Exp(-10))) > 1e-12 {
		t.Fatal("silu(10)")
	}
	// siluGrad via finite differences.
	const eps = 1e-6
	for _, x := range []float64{-2, -0.5, 0, 0.7, 3} {
		num := (silu(x+eps) - silu(x-eps)) / (2 * eps)
		if math.Abs(num-siluGrad(x)) > 1e-6 {
			t.Fatalf("siluGrad(%v) = %v, numeric %v", x, siluGrad(x), num)
		}
	}
}

func TestBlockResidualPath(t *testing.T) {
	// With zeroed attention output proj and zeroed down proj, the block must
	// be the identity.
	rng := rand.New(rand.NewSource(7))
	b := NewBlock(rng, "b", 8, 2, 12, 16, 10000)
	AsLinear(b.Attn.WO).P.W.Zero()
	AsLinear(b.MLP.(*MLP).Down).P.W.Zero()
	x := tensor.Randn(rng, 4, 8, 1)
	y := b.Forward(x)
	if !y.Equal(x, 1e-12) {
		t.Fatal("residual-only block must be identity")
	}
}

func TestEmbeddingOutOfRangePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	e := NewEmbedding(rng, "e", 4, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Forward([]int{4})
}

func TestParamCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	b := NewBlock(rng, "b", 8, 2, 12, 16, 10000)
	total := 0
	for _, p := range b.Params() {
		total += p.NumEl()
	}
	// 2 norms (8 each) + 4 attn projections (64 each) + gate/up (96 each) + down (96)
	want := 2*8 + 4*64 + 3*96
	if total != want {
		t.Fatalf("param count = %d, want %d", total, want)
	}
}

package nn

import (
	"math"

	"repro/internal/tensor"
)

// CrossEntropy computes the mean token-level negative log-likelihood of
// targets under logits (n x vocab) and the gradient dLogits =
// (softmax − onehot)/n. Targets of -1 are ignored (masked).
func CrossEntropy(logits *tensor.Mat, targets []int) (loss float64, dLogits *tensor.Mat) {
	if len(targets) != logits.Rows {
		panic("nn: CrossEntropy target length mismatch")
	}
	dLogits = tensor.New(logits.Rows, logits.Cols)
	count := 0
	for _, tgt := range targets {
		if tgt >= 0 {
			count++
		}
	}
	if count == 0 {
		return 0, dLogits
	}
	inv := 1 / float64(count)
	for t, tgt := range targets {
		if tgt < 0 {
			continue
		}
		row := logits.Row(t)
		lse := tensor.LogSumExp(row)
		loss += lse - row[tgt]
		drow := dLogits.Row(t)
		for j, v := range row {
			drow[j] = math.Exp(v-lse) * inv
		}
		drow[tgt] -= inv
	}
	return loss * inv, dLogits
}

// SequenceNLL returns the summed negative log-likelihood of targets under
// logits and the number of scored tokens, without computing gradients.
// This is the primitive the perplexity evaluator aggregates.
func SequenceNLL(logits *tensor.Mat, targets []int) (nll float64, tokens int) {
	if len(targets) != logits.Rows {
		panic("nn: SequenceNLL target length mismatch")
	}
	for t, tgt := range targets {
		if tgt < 0 {
			continue
		}
		row := logits.Row(t)
		nll += tensor.LogSumExp(row) - row[tgt]
		tokens++
	}
	return nll, tokens
}

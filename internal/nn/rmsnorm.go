package nn

import (
	"math"

	"repro/internal/tensor"
)

// RMSNorm implements LLaMA's root-mean-square layer normalization:
// y_i = g_i * x_i / rms(x), rms(x) = sqrt(mean(x²) + eps).
type RMSNorm struct {
	P   *Param // gain, shape (1 x dim), initialized to ones
	Eps float64

	lastInput *tensor.Mat
	lastInv   []float64 // cached 1/rms per row
}

// NewRMSNorm constructs an RMSNorm with unit gain.
func NewRMSNorm(name string, dim int) *RMSNorm {
	w := tensor.New(1, dim)
	for i := range w.Data {
		w.Data[i] = 1
	}
	return &RMSNorm{P: NewParam(name, w), Eps: 1e-6}
}

// Forward normalizes each row of x.
func (r *RMSNorm) Forward(x *tensor.Mat) *tensor.Mat {
	r.lastInput = x
	r.lastInv = make([]float64, x.Rows)
	g := r.P.W.Row(0)
	out := tensor.New(x.Rows, x.Cols)
	for t := 0; t < x.Rows; t++ {
		row := x.Row(t)
		ms := 0.0
		for _, v := range row {
			ms += v * v
		}
		ms = ms/float64(x.Cols) + r.Eps
		inv := 1 / math.Sqrt(ms)
		r.lastInv[t] = inv
		orow := out.Row(t)
		for j, v := range row {
			orow[j] = g[j] * v * inv
		}
	}
	return out
}

// ForwardInto normalizes each row of x into out without caching —
// bit-identical to Forward, row by row, at any batching.
//
//aptq:noalloc
func (r *RMSNorm) ForwardInto(out, x *tensor.Mat) {
	g := r.P.W.Row(0)
	for t := 0; t < x.Rows; t++ {
		row := x.Row(t)
		ms := 0.0
		for _, v := range row {
			ms += v * v
		}
		ms = ms/float64(x.Cols) + r.Eps
		inv := 1 / math.Sqrt(ms)
		orow := out.Row(t)
		for j, v := range row {
			orow[j] = g[j] * v * inv
		}
	}
}

// Backward computes dx and accumulates the gain gradient.
//
// With u = x·inv, y = g ⊙ u: dg += Σ_t dy ⊙ u and
// dx = inv · (g⊙dy − u · mean(u ⊙ g ⊙ dy) · (something)) — concretely,
// d(inv)/dx_k = −inv³·x_k/n, giving
// dx_k = inv·g_k·dy_k − inv³·x_k/n · Σ_j dy_j·g_j·x_j.
func (r *RMSNorm) Backward(dy *tensor.Mat) *tensor.Mat {
	if r.lastInput == nil {
		panic("nn: RMSNorm.Backward before Forward")
	}
	x := r.lastInput
	g := r.P.W.Row(0)
	gg := r.P.Grad.Row(0)
	dx := tensor.New(x.Rows, x.Cols)
	n := float64(x.Cols)
	for t := 0; t < x.Rows; t++ {
		inv := r.lastInv[t]
		xrow := x.Row(t)
		dyrow := dy.Row(t)
		dxrow := dx.Row(t)
		dot := 0.0
		for j := range xrow {
			dot += dyrow[j] * g[j] * xrow[j]
			gg[j] += dyrow[j] * xrow[j] * inv
		}
		c := inv * inv * inv * dot / n
		for j := range xrow {
			dxrow[j] = inv*g[j]*dyrow[j] - c*xrow[j]
		}
	}
	return dx
}

// Params returns the layer's trainable parameters.
func (r *RMSNorm) Params() []*Param { return []*Param{r.P} }

// View returns an RMSNorm sharing the gain but owning its forward caches.
func (r *RMSNorm) View() Norm {
	return &RMSNorm{P: r.P, Eps: r.Eps}
}

// Package train implements the pretraining loop that produces the "nano"
// LLaMA stand-ins: an Adam optimizer with warmup + cosine decay, gradient
// clipping, and a batched next-token training driver.
package train

import (
	"math"

	"repro/internal/nn"
)

// Adam is the Adam optimizer with decoupled weight decay (AdamW).
type Adam struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64

	params []*nn.Param
	m, v   [][]float64
	step   int
}

// NewAdam constructs an optimizer over params with standard hyperparameters.
func NewAdam(params []*nn.Param, lr float64) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, params: params}
	for _, p := range params {
		a.m = append(a.m, make([]float64, len(p.W.Data)))
		a.v = append(a.v, make([]float64, len(p.W.Data)))
	}
	return a
}

// Step applies one update from the gradients currently accumulated on the
// parameters, with bias correction.
func (a *Adam) Step() {
	a.step++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for i, p := range a.params {
		m, v := a.m[i], a.v[i]
		for j, g := range p.Grad.Data {
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*g
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*g*g
			mh := m[j] / bc1
			vh := v[j] / bc2
			upd := mh / (math.Sqrt(vh) + a.Eps)
			if a.WeightDecay > 0 {
				upd += a.WeightDecay * p.W.Data[j]
			}
			p.W.Data[j] -= a.LR * upd
		}
	}
}

// StepCount returns the number of updates applied so far.
func (a *Adam) StepCount() int { return a.step }

// ClipGradNorm scales all gradients so their global L2 norm does not exceed
// maxNorm, returning the pre-clip norm.
func ClipGradNorm(params []*nn.Param, maxNorm float64) float64 {
	total := 0.0
	for _, p := range params {
		for _, g := range p.Grad.Data {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if maxNorm > 0 && norm > maxNorm {
		scale := maxNorm / (norm + 1e-12)
		for _, p := range params {
			for j := range p.Grad.Data {
				p.Grad.Data[j] *= scale
			}
		}
	}
	return norm
}

// CosineLR returns the learning rate at a given step under linear warmup
// followed by cosine decay to 10% of the base rate.
func CosineLR(base float64, step, warmup, total int) float64 {
	if step < warmup {
		return base * float64(step+1) / float64(warmup)
	}
	if total <= warmup {
		return base
	}
	progress := float64(step-warmup) / float64(total-warmup)
	if progress > 1 {
		progress = 1
	}
	min := 0.1 * base
	return min + 0.5*(base-min)*(1+math.Cos(math.Pi*progress))
}

package train

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize ||w - target||² with gradients fed manually.
	w := tensor.FromSlice(1, 3, []float64{5, -3, 2})
	p := nn.NewParam("w", w)
	target := []float64{1, 2, 3}
	opt := NewAdam([]*nn.Param{p}, 0.1)
	for step := 0; step < 500; step++ {
		for j := range target {
			p.Grad.Data[j] = 2 * (p.W.Data[j] - target[j])
		}
		opt.Step()
		p.ZeroGrad()
	}
	for j := range target {
		if math.Abs(p.W.Data[j]-target[j]) > 1e-3 {
			t.Fatalf("w[%d] = %v, want %v", j, p.W.Data[j], target[j])
		}
	}
	if opt.StepCount() != 500 {
		t.Fatalf("step count %d", opt.StepCount())
	}
}

func TestClipGradNorm(t *testing.T) {
	p := nn.NewParam("w", tensor.New(1, 2))
	p.Grad.Data[0] = 3
	p.Grad.Data[1] = 4 // norm 5
	pre := ClipGradNorm([]*nn.Param{p}, 1.0)
	if math.Abs(pre-5) > 1e-12 {
		t.Fatalf("pre-clip norm %v", pre)
	}
	post := math.Hypot(p.Grad.Data[0], p.Grad.Data[1])
	if math.Abs(post-1) > 1e-9 {
		t.Fatalf("post-clip norm %v", post)
	}
	// Below the threshold: untouched.
	p.Grad.Data[0], p.Grad.Data[1] = 0.3, 0.4
	ClipGradNorm([]*nn.Param{p}, 1.0)
	if p.Grad.Data[0] != 0.3 {
		t.Fatal("grad below threshold must not be scaled")
	}
}

func TestCosineLRSchedule(t *testing.T) {
	base := 1e-3
	// Warmup is linear.
	if got := CosineLR(base, 0, 10, 100); math.Abs(got-base/10) > 1e-15 {
		t.Fatalf("warmup step 0: %v", got)
	}
	if got := CosineLR(base, 9, 10, 100); math.Abs(got-base) > 1e-15 {
		t.Fatalf("warmup end: %v", got)
	}
	// End of schedule decays to 10%.
	if got := CosineLR(base, 100, 10, 100); math.Abs(got-0.1*base) > 1e-12 {
		t.Fatalf("final LR: %v", got)
	}
	// Monotone decreasing after warmup.
	prev := CosineLR(base, 10, 10, 100)
	for s := 11; s <= 100; s++ {
		cur := CosineLR(base, s, 10, 100)
		if cur > prev+1e-15 {
			t.Fatalf("LR increased at step %d", s)
		}
		prev = cur
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	src := data.NewC4Like(32)
	m := model.New(model.Tiny(), 1)
	cfg := Config{Steps: 120, BatchSize: 2, SeqLen: 16, LR: 3e-3, Warmup: 10, ClipNorm: 1, Seed: 1}
	hist := Train(m, src, cfg)
	uniform := math.Log(32)
	if hist.Final >= uniform-0.3 {
		t.Fatalf("final loss %.3f did not improve on uniform %.3f", hist.Final, uniform)
	}
	if hist.Losses[0] < hist.Final {
		t.Fatalf("loss went up: %v -> %v", hist.Losses[0], hist.Final)
	}
	// Loss cannot beat the process entropy floor.
	floor := src.TransitionEntropy()
	if hist.Final < floor-0.2 {
		t.Fatalf("final loss %.3f below the entropy floor %.3f — evaluation bug", hist.Final, floor)
	}
}

func TestTrainDeterministic(t *testing.T) {
	src := data.NewC4Like(32)
	cfg := Config{Steps: 20, BatchSize: 1, SeqLen: 12, LR: 1e-3, Warmup: 5, ClipNorm: 1, Seed: 7}
	m1 := model.New(model.Tiny(), 3)
	m2 := model.New(model.Tiny(), 3)
	h1 := Train(m1, src, cfg)
	h2 := Train(m2, src, cfg)
	if h1.Final != h2.Final {
		t.Fatalf("training not deterministic: %v vs %v", h1.Final, h2.Final)
	}
	ids := src.Generate(rand.New(rand.NewSource(1)), 8)
	if !m1.Forward(ids).Equal(m2.Forward(ids), 0) {
		t.Fatal("trained weights differ across identical runs")
	}
}

package train

import (
	"math/rand"

	"repro/internal/data"
	"repro/internal/model"
)

// Config controls a pretraining run.
type Config struct {
	Steps     int
	BatchSize int
	SeqLen    int
	LR        float64
	Warmup    int
	ClipNorm  float64
	Seed      int64
	// LogEvery > 0 enables Logf progress callbacks every LogEvery steps.
	LogEvery int
	Logf     func(format string, args ...any)
}

// DefaultConfig returns the pretraining recipe used by the experiment
// harness for the nano models.
func DefaultConfig() Config {
	return Config{
		Steps:     700,
		BatchSize: 4,
		SeqLen:    48,
		LR:        3e-3,
		Warmup:    40,
		ClipNorm:  1.0,
		Seed:      1,
	}
}

// History records the smoothed training loss trajectory.
type History struct {
	Steps  []int
	Losses []float64
	Final  float64
}

// Train pretrains m on src with next-token prediction and returns the loss
// history. The model is updated in place.
func Train(m *model.Model, src data.Source, cfg Config) History {
	rng := rand.New(rand.NewSource(cfg.Seed))
	opt := NewAdam(m.Params(), cfg.LR)
	var hist History
	ema := 0.0
	for step := 0; step < cfg.Steps; step++ {
		opt.LR = CosineLR(cfg.LR, step, cfg.Warmup, cfg.Steps)
		m.ZeroGrad()
		batchLoss := 0.0
		for b := 0; b < cfg.BatchSize; b++ {
			batch := data.NextTokenBatch(src.Generate(rng, cfg.SeqLen))
			batchLoss += m.LossAndBackward(batch.IDs, batch.Targets)
		}
		batchLoss /= float64(cfg.BatchSize)
		scaleGrads(m, 1/float64(cfg.BatchSize))
		ClipGradNorm(m.Params(), cfg.ClipNorm)
		opt.Step()

		if ema == 0 {
			ema = batchLoss
		} else {
			ema = 0.95*ema + 0.05*batchLoss
		}
		if cfg.LogEvery > 0 && cfg.Logf != nil && (step%cfg.LogEvery == 0 || step == cfg.Steps-1) {
			cfg.Logf("step %4d/%d  lr %.2e  loss %.4f", step, cfg.Steps, opt.LR, ema)
		}
		if step%25 == 0 || step == cfg.Steps-1 {
			hist.Steps = append(hist.Steps, step)
			hist.Losses = append(hist.Losses, ema)
		}
	}
	hist.Final = ema
	return hist
}

func scaleGrads(m *model.Model, s float64) {
	for _, p := range m.Params() {
		for j := range p.Grad.Data {
			p.Grad.Data[j] *= s
		}
	}
}

package infer

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/parallel"
)

// TestStepSteadyStateAllocs pins the decode-arena property — the decode
// mirror of TestAppendSteadyStateAllocs: once a session has decoded one
// sequence (scratch arena sized, KV chunks and LUT tables warm), further
// decode steps on the float path allocate nothing at one worker, and the
// packed path is bounded by the pooled decode buffers' noise.
func TestStepSteadyStateAllocs(t *testing.T) {
	const steps = 16
	run := func(m *model.Model) float64 {
		parallel.SetWorkers(1)
		defer parallel.SetWorkers(0)
		sess := NewSession(m.View())
		rng := rand.New(rand.NewSource(9))
		var sp Sampler
		// Warm scratch, KV chunks, sampler buffers and (packed) LUT tables
		// past the steady-state sequence length.
		logits, err := sess.Step(1)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < steps; i++ {
			tok := sp.Sample(rng, logits.Row(0), 0.8)
			if logits, err = sess.Step(tok); err != nil {
				t.Fatal(err)
			}
		}
		return testing.AllocsPerRun(20, func() {
			sess.Reset()
			l, err := sess.Step(1)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < steps; i++ {
				tok := sp.Sample(rng, l.Row(0), 0.8)
				if l, err = sess.Step(tok); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
	if allocs := run(model.New(model.Tiny(), 3)); allocs > 0 {
		t.Fatalf("float decode allocates %v per %d-step sequence in steady state, want 0", allocs, steps+1)
	}
	// The packed path's only steady-state allocations are pooled decode
	// buffers; the race runtime deliberately drops pool puts, so only the
	// race-free build pins a tight bound.
	packedBound := 8.0
	if raceEnabled {
		packedBound = 1024
	}
	if allocs := run(packTiny(t, model.Tiny())); allocs > packedBound {
		t.Fatalf("packed decode allocates %v per %d-step sequence in steady state, want <= %v",
			allocs, steps+1, packedBound)
	}
}

// TestStepKVQuantSteadyStateAllocs: the quantized-KV decode path shares
// the arena, so it too reaches zero steady-state allocations at one
// worker (per-row dynamic grids quantize in place).
func TestStepKVQuantSteadyStateAllocs(t *testing.T) {
	parallel.SetWorkers(1)
	defer parallel.SetWorkers(0)
	m := model.New(model.Tiny(), 3)
	sess := NewSessionKVQuant(m.View(), 4)
	for i := 0; i < 12; i++ {
		if _, err := sess.Step(1 + i%7); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		sess.Reset()
		for i := 0; i < 12; i++ {
			if _, err := sess.Step(1 + i%7); err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs > 0 {
		t.Fatalf("kv-quant decode allocates %v per sequence in steady state, want 0", allocs)
	}
}

// TestSamplerMatchesSampleLogits: the scratch-reusing Sampler is
// bit-identical to the one-shot SampleLogits on the same RNG stream, for
// greedy and sampled temperatures and across vocabulary sizes (the buffer
// grow/shrink paths).
func TestSamplerMatchesSampleLogits(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var sp Sampler
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		logits := make([]float64, n)
		for i := range logits {
			logits[i] = rng.NormFloat64() * 3
		}
		if trial%7 == 3 {
			logits[rng.Intn(n)] = math.NaN()
		}
		if trial%11 == 5 {
			logits[rng.Intn(n)] = math.Inf(-1)
		}
		temp := float64(trial%4) * 0.45 // 0 (greedy), 0.45, 0.9, 1.35
		seed := int64(trial)
		want := SampleLogits(rand.New(rand.NewSource(seed)), logits, temp)
		got := sp.Sample(rand.New(rand.NewSource(seed)), logits, temp)
		if got != want {
			t.Fatalf("trial %d (n=%d temp=%v): Sampler picked %d, SampleLogits %d", trial, n, temp, got, want)
		}
	}
}

// TestStepLogitsArenaOwned documents the arena-owned return contract: the
// matrix returned by Step is overwritten by the next Step, and a clone
// taken before the overwrite preserves the values.
func TestStepLogitsArenaOwned(t *testing.T) {
	m := model.New(model.Tiny(), 3)
	sess := NewSession(m.View())
	first, err := sess.Step(3)
	if err != nil {
		t.Fatal(err)
	}
	keep := first.Clone()
	second, err := sess.Step(4)
	if err != nil {
		t.Fatal(err)
	}
	if &first.Data[0] != &second.Data[0] {
		t.Fatal("consecutive Steps must reuse the arena-owned logits buffer")
	}
	if first.Equal(keep, 0) {
		t.Fatal("second Step did not overwrite the arena (logits identical across different positions?)")
	}
}

package infer

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/parallel"
	"repro/internal/quant"
	"repro/internal/tensor"
)

// packTiny swaps every quantizable projection of a fresh Tiny-config model
// for its 4-bit packed form (RTN, group 8) and returns the packed view.
func packTiny(t *testing.T, cfg model.Config) *model.Model {
	t.Helper()
	m := model.New(cfg, 3)
	var packed []*quant.PackedMatrix
	for _, ref := range m.QuantizableLayers() {
		pm, err := quant.PackMatrix(quant.RTN(ref.Linear.P.W, 4, 8, false))
		if err != nil {
			t.Fatal(err)
		}
		packed = append(packed, pm)
	}
	qm, err := model.NewQuantizedModel(m, packed)
	if err != nil {
		t.Fatal(err)
	}
	return qm.Model
}

// prefillSessions builds a fresh pair of sessions over views of m, with
// an optional quantized KV cache.
func prefillSessions(m *model.Model, kvBits int) (ref, chunked *Session) {
	if kvBits > 0 {
		return NewSessionKVQuant(m.View(), kvBits), NewSessionKVQuant(m.View(), kvBits)
	}
	return NewSession(m.View()), NewSession(m.View())
}

// TestPrefillChunkedBitIdenticalToLoop is the defining property of the
// chunked prompt path: at every chunk size, worker count, prompt length,
// architecture (LLaMA/RoPE and GPT/learned-positional), weight form
// (float and packed) and KV-cache precision, PrefillChunked's logits are
// bit-identical to the one-token-at-a-time Step loop — and so is the
// decode that continues from the primed cache.
func TestPrefillChunkedBitIdenticalToLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	cases := []struct {
		name   string
		m      *model.Model
		kvBits int
	}{
		{"float-llama", model.New(model.Tiny(), 3), 0},
		{"float-gpt", model.New(model.TinyGPT(), 3), 0},
		{"packed-llama", packTiny(t, model.Tiny()), 0},
		{"kvquant4", model.New(model.Tiny(), 3), 4},
	}
	for _, tc := range cases {
		for _, promptLen := range []int{1, 5, 16, 31} {
			prompt := make([]int, promptLen)
			for i := range prompt {
				prompt[i] = rng.Intn(tc.m.Cfg.Vocab)
			}
			ref, _ := prefillSessions(tc.m, tc.kvBits)
			want, err := ref.PrefillLoop(prompt)
			if err != nil {
				t.Fatalf("%s len=%d: %v", tc.name, promptLen, err)
			}
			wantNext, err := ref.Step(prompt[0])
			if err != nil {
				t.Fatalf("%s len=%d: %v", tc.name, promptLen, err)
			}
			for _, chunk := range []int{1, 2, 3, 7, 16, promptLen} {
				for _, workers := range []int{1, 4} {
					parallel.SetWorkers(workers)
					_, sess := prefillSessions(tc.m, tc.kvBits)
					got, err := sess.PrefillChunked(prompt, chunk)
					if err != nil {
						parallel.SetWorkers(0)
						t.Fatalf("%s len=%d chunk=%d workers=%d: %v", tc.name, promptLen, chunk, workers, err)
					}
					if !got.Equal(want, 0) {
						parallel.SetWorkers(0)
						t.Fatalf("%s len=%d chunk=%d workers=%d: chunked logits not bit-identical to the Step loop",
							tc.name, promptLen, chunk, workers)
					}
					// The primed KV cache must continue decoding identically.
					gotNext, err := sess.Step(prompt[0])
					parallel.SetWorkers(0)
					if err != nil {
						t.Fatalf("%s len=%d chunk=%d workers=%d: %v", tc.name, promptLen, chunk, workers, err)
					}
					if !gotNext.Equal(wantNext, 0) {
						t.Fatalf("%s len=%d chunk=%d workers=%d: decode after chunked prefill diverged",
							tc.name, promptLen, chunk, workers)
					}
				}
			}
		}
	}
}

// TestAppendMidDecode: Append composes with Step at arbitrary positions —
// a session that interleaves single steps and batched appends matches the
// pure Step loop.
func TestAppendMidDecode(t *testing.T) {
	m := model.New(model.Tiny(), 3)
	tokens := []int{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	ref := NewSession(m.View())
	want, err := ref.PrefillLoop(tokens)
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(m.View())
	if _, err := sess.Step(tokens[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Append(tokens[1:7]); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Step(tokens[7]); err != nil {
		t.Fatal(err)
	}
	got, err := sess.Append(tokens[8:])
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want, 0) {
		t.Fatal("interleaved Step/Append diverged from the Step loop")
	}
}

// TestPrefillRollbackOnError is the partial-failure regression test: a
// Prefill that fails mid-prompt (context overflow after some chunks were
// already consumed) must roll the session back to its pre-call state —
// position and KV rows — so the session remains usable and decodes as if
// the failed call never happened. Previously the session was left
// half-advanced with the failed prompt's prefix poisoning the KV cache.
func TestPrefillRollbackOnError(t *testing.T) {
	m := model.New(model.Tiny(), 3)
	maxSeq := m.Cfg.MaxSeq
	tooLong := make([]int, maxSeq+5)
	for i := range tooLong {
		tooLong[i] = 1 + i%(m.Cfg.Vocab-1)
	}
	prefix := []int{3, 1, 4}
	for _, tc := range []struct {
		name    string
		prefill func(s *Session, prompt []int) (*tensor.Mat, error)
	}{
		{"chunked", func(s *Session, p []int) (*tensor.Mat, error) { return s.PrefillChunked(p, 4) }},
		{"loop", func(s *Session, p []int) (*tensor.Mat, error) { return s.PrefillLoop(p) }},
	} {
		sess := NewSession(m.View())
		if _, err := sess.Prefill(prefix); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		kvBefore := sess.KVCacheBytes()
		if _, err := tc.prefill(sess, tooLong); err == nil {
			t.Fatalf("%s: overflow prompt must fail", tc.name)
		} else if !strings.Contains(err.Error(), "exceeds MaxSeq") {
			t.Fatalf("%s: unexpected error %v", tc.name, err)
		}
		if sess.Pos() != len(prefix) {
			t.Fatalf("%s: pos = %d after rollback, want %d", tc.name, sess.Pos(), len(prefix))
		}
		if sess.KVCacheBytes() < kvBefore {
			t.Fatalf("%s: rollback freed KV capacity", tc.name)
		}
		// The session must continue exactly like one that never saw the
		// failed prompt.
		fresh := NewSession(m.View())
		if _, err := fresh.Prefill(prefix); err != nil {
			t.Fatal(err)
		}
		want, err := fresh.Step(7)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sess.Step(7)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !got.Equal(want, 0) {
			t.Fatalf("%s: decode after rollback diverged from an untouched session", tc.name)
		}
	}
}

// TestAppendValidatesBeforeTouchingState: a too-long Append fails without
// consuming anything even when the session is empty, and an empty Append
// reports ErrEmptyPrompt.
func TestAppendValidatesBeforeTouchingState(t *testing.T) {
	m := model.New(model.Tiny(), 3)
	sess := NewSession(m.View())
	if _, err := sess.Append(nil); err != ErrEmptyPrompt {
		t.Fatalf("empty Append = %v, want ErrEmptyPrompt", err)
	}
	tooLong := make([]int, m.Cfg.MaxSeq+1)
	if _, err := sess.Append(tooLong); err == nil {
		t.Fatal("overflow Append must fail")
	}
	if sess.Pos() != 0 || sess.KVCacheBytes() != 0 {
		t.Fatalf("failed Append advanced the session: pos=%d kv=%d", sess.Pos(), sess.KVCacheBytes())
	}
}

// TestAppendSteadyStateAllocs pins the scratch-arena property: once a
// session has served one request, further same-size chunks allocate
// nothing on the float path (single-worker run, where no goroutine
// dispatch happens), and only the pooled decode buffers' noise on the
// packed path.
func TestAppendSteadyStateAllocs(t *testing.T) {
	chunk := make([]int, DefaultPrefillChunk)
	for i := range chunk {
		chunk[i] = 1 + i
	}
	run := func(m *model.Model) float64 {
		parallel.SetWorkers(1)
		defer parallel.SetWorkers(0)
		sess := NewSession(m.View())
		// Warm scratch, KV chunks and (packed) LUT tables.
		if _, err := sess.Append(chunk); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(20, func() {
			sess.Reset()
			if _, err := sess.Append(chunk); err != nil {
				t.Fatal(err)
			}
			if _, err := sess.Append(chunk); err != nil {
				t.Fatal(err)
			}
		})
	}
	if allocs := run(model.New(model.Tiny(), 3)); allocs > 0 {
		t.Fatalf("float chunked prefill allocates %v per request in steady state, want 0", allocs)
	}
	// The packed path's only steady-state allocations are pooled decode
	// buffers; the race runtime deliberately drops pool puts, so only the
	// race-free build pins the bound.
	packedBound := 4.0
	if raceEnabled {
		packedBound = 64
	}
	if allocs := run(packTiny(t, model.Tiny())); allocs > packedBound {
		t.Fatalf("packed chunked prefill allocates %v per request in steady state", allocs)
	}
}

package infer

import (
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Sampler draws tokens from logits with reusable scratch buffers, so the
// temperature path of a decode loop allocates nothing per token in steady
// state — the sampling-side counterpart of the decodeScratch arena. A
// Sampler is not safe for concurrent use; decode loops that fan out across
// sequences keep one per sequence (see Batch.Generate and the serving
// scheduler's slots). The zero value is ready to use.
//
// Sample is bit-identical to SampleLogits for every input: the scratch
// reuse changes where the intermediate slices live, never a float
// operation.
type Sampler struct {
	scaled, probs []float64
}

// ensure sizes the scratch buffers for n logits, growing only when a
// wider vocabulary appears (for a fixed model, exactly once).
func (sp *Sampler) ensure(n int) {
	if cap(sp.scaled) < n {
		sp.scaled = make([]float64, n)
		sp.probs = make([]float64, n)
	}
	sp.scaled = sp.scaled[:n]
	sp.probs = sp.probs[:n]
}

// Sample draws a token from softmax(logits/temperature); a temperature of
// 0 returns the argmax. Degenerate-input behavior matches SampleLogits
// exactly (empty logits -> -1, all -Inf or all NaN -> uniform / index 0,
// NaN entries masked).
//
//aptq:noalloc
func (sp *Sampler) Sample(rng *rand.Rand, logits []float64, temperature float64) int {
	if len(logits) == 0 {
		return -1
	}
	if temperature <= 0 {
		best := -1
		for i, v := range logits {
			if math.IsNaN(v) {
				continue
			}
			if best < 0 || v > logits[best] {
				best = i
			}
		}
		if best < 0 {
			return 0 // all NaN: same deterministic fallback as all--Inf
		}
		return best
	}
	sp.ensure(len(logits)) //aptq:ignore noalloc sampler scratch grows once to vocab width, then every draw reuses it
	scaled := sp.scaled
	for i, v := range logits {
		if math.IsNaN(v) {
			scaled[i] = math.Inf(-1)
			continue
		}
		scaled[i] = v / temperature
	}
	probs := sp.probs
	tensor.Softmax(probs, scaled)
	u := rng.Float64()
	acc := 0.0
	for i, p := range probs {
		acc += p
		if u <= acc {
			return i
		}
	}
	return len(probs) - 1
}

// Chunked prefill: the batched prompt path of a decoding session. Where
// Step feeds one token through the model per call — a 1 x Dim matvec
// sweep and an O(seq) attention re-read per token — Append processes a
// T x Dim chunk of prompt tokens in a single block forward: matrix-matrix
// projections (which route packed weights through the LUT decode kernel
// and amortize each weight-row decode over the whole chunk), causal
// multi-row attention, a bulk KV-cache append, and multi-row RoPE/norms,
// all through a reusable scratch arena so the steady state allocates
// nothing per chunk. Every scalar operation runs in the same order as the
// Step loop, so the chunked path is bit-identical to it at any chunk size
// and worker count — the property the prefill tests pin down.
package infer

import (
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// DefaultPrefillChunk is the prompt chunk size Prefill uses: large enough
// to amortize dispatch and packed weight-row decode across the chunk,
// small enough that a serving scheduler admitting a long prompt
// chunk-by-chunk keeps its decode ticks responsive.
const DefaultPrefillChunk = 16

// chunkScratch is the reusable arena of the chunked prefill path: every
// T x Dim (and T x FF) intermediate of the block forward plus the per-row
// attention score/probability rows, allocated once per session and reused
// for every chunk of every request the session serves.
type chunkScratch struct {
	rows int // current view size
	cap  int // allocated rows

	// Full-capacity backing matrices.
	xb, attnInb, qb, kb, vb, ctxb, projb *tensor.Mat // cap x dim
	h1b, h2b                             *tensor.Mat // cap x ff
	scoresb, probsb                      *tensor.Mat // cap x maxSeq

	// Views of the first rows rows of the backing matrices, re-sliced only
	// when the chunk size changes (e.g. a prompt's final partial chunk).
	x, attnIn, q, k, v, ctx, proj *tensor.Mat
	h1, h2                        *tensor.Mat
	scores, probs                 *tensor.Mat
	last                          *tensor.Mat // final row of x, 1 x dim

	normed, logits *tensor.Mat // 1 x dim, 1 x vocab
}

func newChunkScratch(cfg model.Config, rows int) *chunkScratch {
	sc := &chunkScratch{
		cap:     rows,
		xb:      tensor.New(rows, cfg.Dim),
		attnInb: tensor.New(rows, cfg.Dim),
		qb:      tensor.New(rows, cfg.Dim),
		kb:      tensor.New(rows, cfg.Dim),
		vb:      tensor.New(rows, cfg.Dim),
		ctxb:    tensor.New(rows, cfg.Dim),
		projb:   tensor.New(rows, cfg.Dim),
		h1b:     tensor.New(rows, cfg.FF),
		h2b:     tensor.New(rows, cfg.FF),
		scoresb: tensor.New(rows, cfg.MaxSeq),
		probsb:  tensor.New(rows, cfg.MaxSeq),
		normed:  tensor.New(1, cfg.Dim),
		logits:  tensor.New(1, cfg.Vocab),
	}
	sc.setRows(rows)
	return sc
}

// setRows re-slices the working views to T rows. A no-op (and therefore
// allocation-free) while consecutive chunks share a size.
func (sc *chunkScratch) setRows(T int) {
	if sc.rows == T {
		return
	}
	sc.rows = T
	sc.x = sc.xb.SliceRows(0, T)
	sc.attnIn = sc.attnInb.SliceRows(0, T)
	sc.q = sc.qb.SliceRows(0, T)
	sc.k = sc.kb.SliceRows(0, T)
	sc.v = sc.vb.SliceRows(0, T)
	sc.ctx = sc.ctxb.SliceRows(0, T)
	sc.proj = sc.projb.SliceRows(0, T)
	sc.h1 = sc.h1b.SliceRows(0, T)
	sc.h2 = sc.h2b.SliceRows(0, T)
	sc.scores = sc.scoresb.SliceRows(0, T)
	sc.probs = sc.probsb.SliceRows(0, T)
	sc.last = sc.xb.SliceRows(T-1, T)
}

// ensureScratch returns the session scratch sized for a T-row chunk,
// (re)allocating only when T exceeds the current capacity.
func (s *Session) ensureScratch(T int) *chunkScratch {
	if s.scratch == nil || s.scratch.cap < T {
		capRows := T
		if capRows < DefaultPrefillChunk && s.m.Cfg.MaxSeq >= DefaultPrefillChunk {
			capRows = DefaultPrefillChunk
		}
		s.scratch = newChunkScratch(s.m.Cfg, capRows)
	}
	s.scratch.setRows(T)
	return s.scratch
}

// Append consumes tokens as one batched chunk — a single T x Dim forward
// through every block with matrix-matrix projections, causal multi-row
// attention against the KV cache and a bulk KV append — and returns the
// next-token logits after the last appended token. It is bit-identical to
// calling Step for each token in order, at any worker count.
//
// The returned matrix is owned by the session and overwritten by its next
// Append/Prefill; clone it to retain it past that. On error the session
// is unchanged: the length check and the KV reservation both run before
// any state is touched, so a failed Append never half-advances the
// sequence — an ErrPoolExhausted Append may be retried verbatim once the
// scheduler frees pages.
//
//aptq:noalloc
func (s *Session) Append(tokens []int) (*tensor.Mat, error) {
	if len(tokens) == 0 {
		return nil, ErrEmptyPrompt
	}
	if s.pos+len(tokens) > s.m.Cfg.MaxSeq {
		return nil, fmt.Errorf("infer: sequence length %d exceeds MaxSeq %d", s.pos+len(tokens), s.m.Cfg.MaxSeq) //aptq:ignore noalloc cold error path: an out-of-budget request never reaches the prefill steady state
	}
	if err := s.reserveKV(len(tokens)); err != nil {
		return nil, err
	}
	sc := s.ensureScratch(len(tokens)) //aptq:ignore noalloc prefill arena is allocated once and regrown only when a wider chunk arrives
	pos0 := s.pos
	s.m.EmbedChunkInto(sc.x, tokens, pos0)
	for bi, b := range s.m.Blocks {
		s.chunkBlock(b, s.caches[bi], sc, pos0)
	}
	s.pos += len(tokens)
	s.m.Norm.ForwardInto(sc.normed, sc.last)
	s.m.Head.ForwardInto(sc.logits, sc.normed)
	return sc.logits, nil
}

// chunkBlock runs one decoder block over a T-row chunk whose first row
// sits at sequence position pos0, with the same per-element operation
// order as stepBlock, so the residual stream is bit-identical to the Step
// loop.
func (s *Session) chunkBlock(b *nn.Block, c *kvCache, sc *chunkScratch, pos0 int) {
	b.AttnNorm.ForwardInto(sc.attnIn, sc.x)
	s.chunkAttention(b.Attn, c, sc, pos0)
	tensor.AddInPlace(sc.x, sc.proj) // x = x + attnOut
	// attnIn is free once attention ran; reuse it for the MLP norm output.
	b.MLPNorm.ForwardInto(sc.attnIn, sc.x)
	b.MLP.ForwardInto(sc.proj, sc.attnIn, sc.h1, sc.h2)
	tensor.AddInPlace(sc.x, sc.proj) // x = x + mlpOut
}

// attnRowGrain sizes the parallel chunks of the attention row fan-out so
// one chunk carries roughly 1<<15 multiply-adds (the tensor kernels'
// sizing rule).
func attnRowGrain(opsPerRow int) int {
	if opsPerRow <= 0 {
		return 1
	}
	g := (1 << 15) / opsPerRow
	if g < 1 {
		g = 1
	}
	return g
}

// chunkAttention computes causal attention for all T chunk rows against
// the cache — bulk-appending the chunk's keys and values first — and
// writes WO's projection of the context into sc.proj. Row t attends to
// cached positions [0, pos0+t]: the same horizon, score order, softmax
// and value-accumulation order as stepAttention. Rows partition across
// workers and each row owns its scores/probs scratch and its output rows,
// so the fan-out is bit-deterministic at any worker count.
func (s *Session) chunkAttention(attn *nn.Attention, c *kvCache, sc *chunkScratch, pos0 int) {
	attn.WQ.ForwardInto(sc.q, sc.attnIn)
	attn.WK.ForwardInto(sc.k, sc.attnIn)
	attn.WV.ForwardInto(sc.v, sc.attnIn)
	if attn.Rope != nil {
		attn.Rope.ApplyFrom(sc.q, pos0)
		attn.Rope.ApplyFrom(sc.k, pos0)
	}
	if s.kvQuant != nil {
		// Per-token grids: each row quantizes against its own scale, so the
		// batched form matches the per-step form row for row.
		s.kvQuant.QuantizeInPlace(sc.k)
		s.kvQuant.QuantizeInPlace(sc.v)
	}
	c.appendRows(sc.k, sc.v)

	T := sc.q.Rows
	if parallel.Workers() == 1 {
		attnRowRange(attn, c, sc, pos0, 0, T)
	} else {
		// Average attention cost per row: one dot and one axpy over every
		// cached position per head, about 2*dim*(pos0+T/2) multiply-adds.
		grain := attnRowGrain(2 * attn.Dim * (pos0 + (T+1)/2))
		parallel.For(T, grain, func(lo, hi int) {
			attnRowRange(attn, c, sc, pos0, lo, hi)
		})
	}
	attn.WO.ForwardInto(sc.proj, sc.ctx)
}

// attnRowRange computes the attention context of chunk rows [lo, hi).
func attnRowRange(attn *nn.Attention, c *kvCache, sc *chunkScratch, pos0, lo, hi int) {
	heads, hd := attn.Heads, attn.HeadDim
	invSqrt := 1 / math.Sqrt(float64(hd))
	for t := lo; t < hi; t++ {
		n := pos0 + t + 1 // causal horizon of row t
		scores := sc.scores.Row(t)[:n]
		probs := sc.probs.Row(t)[:n]
		ctxRow := sc.ctx.Row(t)
		for j := range ctxRow {
			ctxRow[j] = 0
		}
		qrow := sc.q.Row(t)
		for h := 0; h < heads; h++ {
			lo2 := h * hd
			qh := qrow[lo2 : lo2+hd]
			for u := 0; u < n; u++ {
				scores[u] = tensor.Dot(qh, c.kRow(u)[lo2:lo2+hd]) * invSqrt
			}
			tensor.Softmax(probs, scores)
			out := ctxRow[lo2 : lo2+hd]
			for u := 0; u < n; u++ {
				tensor.Axpy(probs[u], c.vRow(u)[lo2:lo2+hd], out)
			}
		}
	}
}

// Zero-allocation single-token decode: the per-step twin of the chunked
// prefill path. Where the original Step allocated every intermediate of
// the block forward — projections, norms, MLP hiddens, attention
// score/prob rows, the logits — each call (~3k allocations, ~1 MB per
// token on the serving benchmark model), the decode path below routes
// every operation through the ForwardInto entry points into a per-session
// decodeScratch arena, so the steady state of a decoding session performs
// zero heap allocations per token on the float path at one worker (a
// property pinned by TestStepSteadyStateAllocs, exactly like the prefill
// arena). Every scalar operation runs in the same order as the original
// per-token implementation, so decode output is bit-identical — the same
// contract the chunked prefill path upholds, verified by the existing
// Step-vs-batch-forward and prefill bit-identity tests.
package infer

import (
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// decodeScratch is the reusable arena of the single-token decode path:
// every 1 x Dim (and 1 x FF) intermediate of the block forward plus the
// attention score/probability rows, allocated once per session and reused
// for every Step of every request the session serves. It is deliberately
// separate from the chunked prefill arena (chunkScratch): decode and
// prefill interleave freely on a serving slot, and separate arenas keep
// both steady states view-stable (no re-slicing churn when a Step follows
// an Append or vice versa).
type decodeScratch struct {
	x, attnIn, q, k, v, ctx, proj *tensor.Mat // 1 x dim
	h1, h2                        *tensor.Mat // 1 x ff
	scores, probs                 []float64   // maxSeq
	normed                        *tensor.Mat // 1 x dim
	logits                        *tensor.Mat // 1 x vocab
	tok                           [1]int      // reusable single-token slice backing
}

func newDecodeScratch(cfg model.Config) *decodeScratch {
	return &decodeScratch{
		x:      tensor.New(1, cfg.Dim),
		attnIn: tensor.New(1, cfg.Dim),
		q:      tensor.New(1, cfg.Dim),
		k:      tensor.New(1, cfg.Dim),
		v:      tensor.New(1, cfg.Dim),
		ctx:    tensor.New(1, cfg.Dim),
		proj:   tensor.New(1, cfg.Dim),
		h1:     tensor.New(1, cfg.FF),
		h2:     tensor.New(1, cfg.FF),
		scores: make([]float64, cfg.MaxSeq),
		probs:  make([]float64, cfg.MaxSeq),
		normed: tensor.New(1, cfg.Dim),
		logits: tensor.New(1, cfg.Vocab),
	}
}

// ensureDecodeScratch returns the session's decode arena, allocating it on
// first use (and keeping it across Reset, so a recycled scheduler slot
// decodes allocation-free from its first token).
func (s *Session) ensureDecodeScratch() *decodeScratch {
	if s.dscratch == nil {
		s.dscratch = newDecodeScratch(s.m.Cfg)
	}
	return s.dscratch
}

// Step consumes one token and returns the next-token logits (1 x vocab).
//
// The returned matrix is owned by the session and overwritten by its next
// Step/Append/Prefill — the same arena-owned contract as Append; clone it
// to retain it past that. (Sampling the next token before stepping again,
// the pattern of every decode loop in this repository, needs no clone.)
//
//aptq:noalloc
func (s *Session) Step(token int) (*tensor.Mat, error) {
	if s.pos >= s.m.Cfg.MaxSeq {
		return nil, fmt.Errorf("infer: sequence length %d exceeds MaxSeq %d", s.pos+1, s.m.Cfg.MaxSeq) //aptq:ignore noalloc cold error path: an out-of-budget request never reaches the decode steady state
	}
	// Reserve this position's KV row in every block before any compute: on
	// a budgeted pool this is where ErrPoolExhausted surfaces, with the
	// session untouched so the same Step can be retried after the scheduler
	// frees pages.
	if err := s.reserveKV(1); err != nil {
		return nil, err
	}
	sc := s.ensureDecodeScratch() //aptq:ignore noalloc decode arena is allocated once per session and reused by every Step
	sc.tok[0] = token
	s.m.EmbedChunkInto(sc.x, sc.tok[:], s.pos)
	for bi, b := range s.m.Blocks {
		s.decodeBlock(b, s.caches[bi], sc)
	}
	s.pos++
	s.m.Norm.ForwardInto(sc.normed, sc.x)
	s.m.Head.ForwardInto(sc.logits, sc.normed)
	return sc.logits, nil
}

// decodeBlock runs one decoder block for a single position with KV
// caching, with the same per-element operation order as the allocating
// implementation it replaced (x + attnOut, then h + mlpOut), so the
// residual stream is bit-identical.
func (s *Session) decodeBlock(b *nn.Block, c *kvCache, sc *decodeScratch) {
	b.AttnNorm.ForwardInto(sc.attnIn, sc.x)
	s.decodeAttention(b.Attn, c, sc)
	tensor.AddInPlace(sc.x, sc.proj) // x = x + attnOut
	// attnIn is free once attention ran; reuse it for the MLP norm output.
	b.MLPNorm.ForwardInto(sc.attnIn, sc.x)
	b.MLP.ForwardInto(sc.proj, sc.attnIn, sc.h1, sc.h2)
	tensor.AddInPlace(sc.x, sc.proj) // x = x + mlpOut
}

// decodeAttention computes causal attention for the newest position
// against the cached keys/values and writes WO's projection of the context
// into sc.proj: the same score order, softmax and value-accumulation order
// as the chunked path's row loop, restricted to one row.
func (s *Session) decodeAttention(attn *nn.Attention, c *kvCache, sc *decodeScratch) {
	heads, hd := attn.Heads, attn.HeadDim

	attn.WQ.ForwardInto(sc.q, sc.attnIn)
	attn.WK.ForwardInto(sc.k, sc.attnIn)
	attn.WV.ForwardInto(sc.v, sc.attnIn)
	applyRoPEAt(attn, sc.q, s.pos)
	applyRoPEAt(attn, sc.k, s.pos)

	if s.kvQuant != nil {
		s.kvQuant.QuantizeInPlace(sc.k)
		s.kvQuant.QuantizeInPlace(sc.v)
	}
	c.grow()
	copy(c.kRow(c.len), sc.k.Row(0))
	copy(c.vRow(c.len), sc.v.Row(0))
	c.len++

	invSqrt := 1 / math.Sqrt(float64(hd))
	scores := sc.scores[:c.len]
	probs := sc.probs[:c.len]
	ctxRow := sc.ctx.Row(0)
	for j := range ctxRow {
		ctxRow[j] = 0
	}
	qrow := sc.q.Row(0)
	for h := 0; h < heads; h++ {
		lo := h * hd
		qh := qrow[lo : lo+hd]
		for t := 0; t < c.len; t++ {
			scores[t] = tensor.Dot(qh, c.kRow(t)[lo:lo+hd]) * invSqrt
		}
		tensor.Softmax(probs, scores)
		out := ctxRow[lo : lo+hd]
		for t := 0; t < c.len; t++ {
			tensor.Axpy(probs[t], c.vRow(t)[lo:lo+hd], out)
		}
	}
	attn.WO.ForwardInto(sc.proj, sc.ctx)
}

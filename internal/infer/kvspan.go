// KV snapshot export/import: the session-side mechanism under prefix
// caching. A serving scheduler that sees the same prompt prefix over and
// over (system prompts, few-shot headers) can export the KV rows that
// prefix produced once, keep them as an immutable snapshot, and import
// them into a recycled slot instead of recomputing the prefill — a memcpy
// per block instead of a matmul per token. Because prefill is
// deterministic and KV rows are append-only, an imported span is
// byte-identical to the rows the session would have computed itself, so
// decoding after an import is bit-identical to a cold prefill (the
// prefix-cache tests in internal/serve pin this end to end).
package infer

import (
	"fmt"

	"repro/internal/tensor"
)

// KVSpan is an immutable copy of the per-block key/value rows of sequence
// positions [Start, End) of one session. Spans are safe to share between
// goroutines and sessions: ImportKV only reads them.
type KVSpan struct {
	Start, End int
	k, v       []*tensor.Mat // per block, (End-Start) x dim
}

// Bytes reports the resident size of the span's row copies.
func (sp *KVSpan) Bytes() int64 {
	var n int64
	for _, m := range sp.k {
		n += int64(len(m.Data)) * 8
	}
	for _, m := range sp.v {
		n += int64(len(m.Data)) * 8
	}
	return n
}

// Tokens returns the number of sequence positions the span covers.
func (sp *KVSpan) Tokens() int { return sp.End - sp.Start }

// ExportKV copies the key/value rows of positions [lo, hi) out of every
// block's cache into an immutable span. The rows must already be consumed
// (hi <= Pos()).
func (s *Session) ExportKV(lo, hi int) *KVSpan {
	if lo < 0 || hi > s.pos || lo >= hi {
		panic(fmt.Sprintf("infer: ExportKV [%d,%d) of a session at position %d", lo, hi, s.pos))
	}
	sp := &KVSpan{Start: lo, End: hi}
	dim := s.m.Cfg.Dim
	for _, c := range s.caches {
		k := tensor.New(hi-lo, dim)
		v := tensor.New(hi-lo, dim)
		for t := lo; t < hi; t++ {
			copy(k.Row(t-lo), c.kRow(t))
			copy(v.Row(t-lo), c.vRow(t))
		}
		sp.k = append(sp.k, k)
		sp.v = append(sp.v, v)
	}
	return sp
}

// ImportKV appends the span's rows to every block's cache and advances
// the session position to span.End, as if the tokens that produced the
// span had just been prefilled. The session must sit exactly at
// span.Start (for a prefix import on a recycled slot: at 0 for the first
// span, then at each span's start for consecutive spans). The span is
// only read; warm KV chunks are reused, so importing into a recycled slot
// allocates only when the sequence outgrows the slot's previous high-water
// mark.
func (s *Session) ImportKV(sp *KVSpan) error {
	if s.pos != sp.Start {
		return fmt.Errorf("infer: ImportKV of span [%d,%d) into a session at position %d", sp.Start, sp.End, s.pos)
	}
	if len(sp.k) != len(s.caches) {
		return fmt.Errorf("infer: ImportKV span has %d blocks, session has %d", len(sp.k), len(s.caches))
	}
	if sp.End > s.m.Cfg.MaxSeq {
		return fmt.Errorf("infer: ImportKV span end %d exceeds MaxSeq %d", sp.End, s.m.Cfg.MaxSeq)
	}
	// Validate every block before touching any state, so a failed import
	// never leaves the session half-advanced (the Append contract).
	for bi, c := range s.caches {
		if sp.k[bi].Cols != c.dim {
			return fmt.Errorf("infer: ImportKV span dim %d, cache dim %d", sp.k[bi].Cols, c.dim)
		}
	}
	// Reserve the span's rows in every block before copying any: on a
	// budgeted pool ErrPoolExhausted surfaces here with the session
	// unchanged (the same retryability contract as Step/Append).
	if err := s.reserveKV(sp.Tokens()); err != nil {
		return err
	}
	for bi, c := range s.caches {
		for t := 0; t < sp.Tokens(); t++ {
			c.grow()
			copy(c.kRow(c.len), sp.k[bi].Row(t))
			copy(c.vRow(c.len), sp.v[bi].Row(t))
			c.len++
		}
	}
	s.pos = sp.End
	return nil
}

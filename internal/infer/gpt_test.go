package infer

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/train"
)

func TestGPTStepMatchesBatchForward(t *testing.T) {
	src := data.NewC4Like(32)
	m := model.New(model.TinyGPT(), 1)
	train.Train(m, src, train.Config{Steps: 40, BatchSize: 2, SeqLen: 16, LR: 3e-3, Warmup: 5, ClipNorm: 1, Seed: 1})

	ids := src.Generate(rand.New(rand.NewSource(3)), 10)
	batchLogits := m.Forward(ids)

	s := NewSession(m)
	for pos, tok := range ids {
		stepLogits, err := s.Step(tok)
		if err != nil {
			t.Fatal(err)
		}
		brow := batchLogits.Row(pos)
		srow := stepLogits.Row(0)
		for j := range brow {
			if math.Abs(brow[j]-srow[j]) > 1e-9 {
				t.Fatalf("GPT pos %d logit %d: batch %v vs step %v", pos, j, brow[j], srow[j])
			}
		}
	}
}

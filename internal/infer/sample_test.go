package infer

import (
	"math"
	"math/rand"
	"testing"
)

func TestSampleLogitsEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Empty logits used to panic inside tensor.Softmax (src[0]); the
	// defined behavior is the -1 "no valid token" sentinel on both paths.
	if got := SampleLogits(rng, nil, 0); got != -1 {
		t.Fatalf("greedy on empty logits = %d, want -1", got)
	}
	if got := SampleLogits(rng, []float64{}, 1.0); got != -1 {
		t.Fatalf("sampling on empty logits = %d, want -1", got)
	}
}

func TestSampleLogitsAllNegInf(t *testing.T) {
	negInf := math.Inf(-1)
	logits := []float64{negInf, negInf, negInf, negInf}
	// Greedy: deterministic first index.
	if got := SampleLogits(rand.New(rand.NewSource(1)), logits, 0); got != 0 {
		t.Fatalf("greedy on all--Inf = %d, want 0", got)
	}
	// Sampling: uniform over all indices, never the silent
	// always-last-token of the previous NaN cascade. With 400 draws every
	// index of 4 appears with probability 1 - (3/4)^400 ≈ 1.
	rng := rand.New(rand.NewSource(2))
	seen := map[int]int{}
	for i := 0; i < 400; i++ {
		tok := SampleLogits(rng, logits, 1.0)
		if tok < 0 || tok >= len(logits) {
			t.Fatalf("sampled out-of-range token %d", tok)
		}
		seen[tok]++
	}
	for i := range logits {
		if seen[i] == 0 {
			t.Fatalf("uniform fallback never sampled index %d (histogram %v)", i, seen)
		}
	}
}

func TestSampleLogitsNaN(t *testing.T) {
	nan := math.NaN()
	// A NaN in position 0 used to freeze the greedy scan (every
	// `v > logits[best]` comparison against NaN is false) and silently
	// return index 0; NaN is now masked, so the finite argmax wins.
	if got := SampleLogits(rand.New(rand.NewSource(1)), []float64{nan, 2, 7, 1}, 0); got != 2 {
		t.Fatalf("greedy with leading NaN = %d, want 2", got)
	}
	if got := SampleLogits(rand.New(rand.NewSource(1)), []float64{1, nan, 5}, 0); got != 2 {
		t.Fatalf("greedy with interior NaN = %d, want 2", got)
	}
	// All-NaN behaves exactly like all--Inf: deterministic index 0 on the
	// greedy path, uniform on the sampling path.
	allNaN := []float64{nan, nan, nan}
	if got := SampleLogits(rand.New(rand.NewSource(1)), allNaN, 0); got != 0 {
		t.Fatalf("greedy on all-NaN = %d, want 0", got)
	}
	rng := rand.New(rand.NewSource(2))
	seen := map[int]int{}
	for i := 0; i < 300; i++ {
		tok := SampleLogits(rng, allNaN, 1.0)
		if tok < 0 || tok >= len(allNaN) {
			t.Fatalf("sampled out-of-range token %d", tok)
		}
		seen[tok]++
	}
	for i := range allNaN {
		if seen[i] == 0 {
			t.Fatalf("all-NaN uniform fallback never sampled index %d (histogram %v)", i, seen)
		}
	}
	// On the temperature path a NaN entry is masked: never drawn.
	masked := []float64{2, nan, 1}
	rng = rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		if tok := SampleLogits(rng, masked, 0.7); tok == 1 {
			t.Fatal("sampled a NaN-masked token")
		}
	}
}

func TestSampleLogitsNormalPaths(t *testing.T) {
	logits := []float64{0, 3, -1}
	if got := SampleLogits(rand.New(rand.NewSource(1)), logits, 0); got != 1 {
		t.Fatalf("greedy argmax = %d, want 1", got)
	}
	// One -Inf among finite logits must simply never be drawn.
	masked := []float64{2, math.Inf(-1), 1}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		if tok := SampleLogits(rng, masked, 0.7); tok == 1 {
			t.Fatal("sampled a -Inf-masked token")
		}
	}
}

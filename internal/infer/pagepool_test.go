package infer

import (
	"testing"

	"repro/internal/model"
)

// pooledPair returns two sessions over one shared pool (the scheduler's
// slot arrangement), for the given weights and KV bit width.
func pooledPair(m *model.Model, kvBits int) (*KVPagePool, *Session, *Session) {
	pool := NewPagePool(m.Cfg.Dim, m.Cfg.MaxSeq)
	return pool, NewSessionPooled(m.View(), pool, kvBits), NewSessionPooled(m.View(), pool, kvBits)
}

// pagePrompt builds a deterministic prompt of n tokens.
func pagePrompt(n, vocab int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = 1 + (i*7+3)%(vocab-1)
	}
	return p
}

// TestAdoptPagesBitIdenticalToColdPrefill is the zero-copy attach
// contract: a session that adopts another session's prefix pages by
// reference, then prefills only the suffix, produces logits and decode
// steps bit-identical to a cold prefill — for float and packed weights
// and a quantized KV cache, exactly like the memcpy ImportKV path it
// shortcuts.
func TestAdoptPagesBitIdenticalToColdPrefill(t *testing.T) {
	cases := []struct {
		name   string
		m      *model.Model
		kvBits int
	}{
		{"float", model.New(model.Tiny(), 3), 0},
		{"packed", packTiny(t, model.Tiny()), 0},
		{"kvquant4", model.New(model.Tiny(), 3), 4},
	}
	for _, tc := range cases {
		pool, donor, warm := pooledPair(tc.m, tc.kvBits)
		rows := pool.Rows()
		prompt := pagePrompt(rows+3, tc.m.Cfg.Vocab) // one full page plus a tail

		cold := NewSessionPooled(tc.m.View(), pool, tc.kvBits)
		want, err := cold.Prefill(prompt)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		wantNext, err := cold.Step(prompt[0])
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}

		if _, err := donor.Prefill(prompt); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		span := donor.SharePages(0, rows)
		if span.Tokens() != rows || span.Bytes() <= 0 {
			t.Fatalf("%s: span covers %d tokens, %d bytes", tc.name, span.Tokens(), span.Bytes())
		}
		before := pool.Stats().PagesInUse
		if err := warm.AdoptPages(span); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got := pool.Stats().PagesInUse; got != before {
			t.Fatalf("%s: adoption changed pages in use %d -> %d — it must share, not copy", tc.name, before, got)
		}
		span.Release()
		if warm.Pos() != rows {
			t.Fatalf("%s: pos %d after adoption, want %d", tc.name, warm.Pos(), rows)
		}
		got, err := warm.Prefill(prompt[rows:])
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !got.Equal(want, 0) {
			t.Fatalf("%s: warm prefill logits diverged from cold prefill", tc.name)
		}
		gotNext, err := warm.Step(prompt[0])
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !gotNext.Equal(wantNext, 0) {
			t.Fatalf("%s: decode after page adoption diverged from cold session", tc.name)
		}
	}
}

// TestExportKVRoundTripsAcrossPagedRepresentation: ExportKV stays the
// compatibility oracle over the paged cache — a span exported from a
// session holding *shared* (adopted) pages carries the same bytes as one
// exported from the donor, and importing it into a fresh private-pool
// session reproduces cold-prefill output bit-identically — for float,
// packed and KV-quant representations.
func TestExportKVRoundTripsAcrossPagedRepresentation(t *testing.T) {
	cases := []struct {
		name   string
		m      *model.Model
		kvBits int
	}{
		{"float", model.New(model.Tiny(), 3), 0},
		{"packed", packTiny(t, model.Tiny()), 0},
		{"kvquant4", model.New(model.Tiny(), 3), 4},
	}
	newPrivate := func(m *model.Model, kvBits int) *Session {
		if kvBits > 0 {
			return NewSessionKVQuant(m.View(), kvBits)
		}
		return NewSession(m.View())
	}
	for _, tc := range cases {
		pool, donor, warm := pooledPair(tc.m, tc.kvBits)
		rows := pool.Rows()
		prompt := pagePrompt(rows+5, tc.m.Cfg.Vocab)

		cold := newPrivate(tc.m, tc.kvBits)
		if _, err := cold.Prefill(prompt); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}

		if _, err := donor.Prefill(prompt); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		span := donor.SharePages(0, rows)
		if err := warm.AdoptPages(span); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		span.Release()
		if _, err := warm.Prefill(prompt[rows:]); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}

		// Export from the session whose cache mixes shared pages (the
		// adopted prefix) and private pages (the prefilled suffix), import
		// into a fresh session on a different pool: the memcpy path must
		// reproduce the full state.
		exported := warm.ExportKV(0, len(prompt))
		replay := newPrivate(tc.m, tc.kvBits)
		if err := replay.ImportKV(exported); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		got, err := replay.Step(prompt[0])
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		wantStep, err := cold.Step(prompt[0])
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !got.Equal(wantStep, 0) {
			t.Fatalf("%s: Export/Import round-trip over shared pages diverged from cold session", tc.name)
		}
	}
}

// TestSharePagesValidation: misaligned or out-of-range shares panic — the
// caller contract — and AdoptPages rejects cross-pool spans, misplaced
// sessions and over-long spans without touching state.
func TestSharePagesValidation(t *testing.T) {
	m := model.New(model.Tiny(), 3)
	pool, donor, warm := pooledPair(m, 0)
	rows := pool.Rows()
	prompt := pagePrompt(rows+2, m.Cfg.Vocab)
	if _, err := donor.Prefill(prompt); err != nil {
		t.Fatal(err)
	}
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("unaligned lo", func() { donor.SharePages(1, rows) })
	mustPanic("unaligned hi", func() { donor.SharePages(0, rows+1) })
	mustPanic("past pos", func() { donor.SharePages(0, 2*rows) })

	span := donor.SharePages(0, rows)
	defer span.Release()

	// A session mid-sequence cannot adopt a span starting at 0.
	if _, err := warm.Prefill(prompt[:2]); err != nil {
		t.Fatal(err)
	}
	if err := warm.AdoptPages(span); err == nil {
		t.Fatal("adoption into a mid-sequence session must fail")
	}
	warm.Reset()

	// A span from a different pool is rejected even at the right position.
	otherPool := NewPagePool(m.Cfg.Dim, m.Cfg.MaxSeq)
	otherDonor := NewSessionPooled(m.View(), otherPool, 0)
	if _, err := otherDonor.Prefill(prompt); err != nil {
		t.Fatal(err)
	}
	foreign := otherDonor.SharePages(0, rows)
	defer foreign.Release()
	if err := warm.AdoptPages(foreign); err == nil {
		t.Fatal("adoption across pools must fail")
	}
	if warm.Pos() != 0 || warm.KVCacheBytes() != 0 {
		t.Fatalf("failed adoption advanced the session: pos=%d kv=%d", warm.Pos(), warm.KVCacheBytes())
	}

	// The valid adoption still works after the failures.
	if err := warm.AdoptPages(span); err != nil {
		t.Fatal(err)
	}
	if warm.Pos() != rows {
		t.Fatalf("pos %d after adoption, want %d", warm.Pos(), rows)
	}
}

// TestPagePoolRefcountLifecycle: shares and adoptions bump refcounts,
// releases drop them, and once every holder lets go the pool drains to
// zero pages in use with all capacity parked on the free list.
func TestPagePoolRefcountLifecycle(t *testing.T) {
	m := model.New(model.Tiny(), 3)
	pool, donor, warm := pooledPair(m, 0)
	rows := pool.Rows()
	prompt := pagePrompt(rows+1, m.Cfg.Vocab)
	if _, err := donor.Prefill(prompt); err != nil {
		t.Fatal(err)
	}
	perBlock := (rows + 1 + rows - 1) / rows // pages per block donor holds
	wantInUse := int64(len(m.Blocks) * perBlock)
	if got := pool.Stats().PagesInUse; got != wantInUse {
		t.Fatalf("donor holds %d pages, want %d", got, wantInUse)
	}

	span := donor.SharePages(0, rows)
	if err := warm.AdoptPages(span); err != nil {
		t.Fatal(err)
	}
	// Sharing adds holders, not pages.
	if got := pool.Stats().PagesInUse; got != wantInUse {
		t.Fatalf("after share+adopt %d pages in use, want %d", got, wantInUse)
	}

	// Donor resets: the shared pages survive (span + warm still hold
	// them); only the donor's private tail page frees.
	donor.Reset()
	if got := pool.Stats().PagesInUse; got != int64(len(m.Blocks)) {
		t.Fatalf("after donor reset %d pages in use, want %d", got, len(m.Blocks))
	}
	span.Release()
	if got := pool.Stats().PagesInUse; got != int64(len(m.Blocks)) {
		t.Fatalf("after span release %d pages in use, want %d (warm still holds them)", got, len(m.Blocks))
	}
	warm.Reset()
	st := pool.Stats()
	if st.PagesInUse != 0 {
		t.Fatalf("%d pages leaked after all holders released", st.PagesInUse)
	}
	if st.FreePages != wantInUse {
		t.Fatalf("free list holds %d pages, want %d recycled", st.FreePages, wantInUse)
	}
}

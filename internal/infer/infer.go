// Package infer provides an incremental-decoding path for the model: a
// KV-cached forward pass that processes one token at a time, plus sampling
// utilities. This is the code path an edge deployment of an APTQ-quantized
// model would actually run — the paper's motivating use case — and it is
// verified token-for-token against the batch forward pass.
package infer

import (
	"context"
	"errors"
	"math/rand"

	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/tensor"
)

// ErrEmptyPrompt is returned by Prefill (and everything built on it) when
// the prompt has no tokens: there are no logits to return. It replaces the
// previous (nil, nil) result, which forced every caller to pair the call
// with a nil check.
var ErrEmptyPrompt = errors.New("infer: empty prompt")

// kvCache stores the per-block key/value history of one sequence as a
// list of references to fixed-size pages leased from the session's
// KVPagePool. Pages are leased on demand and never moved while referenced,
// so a row slice handed out by kRow/vRow stays valid — the stability
// in-flight attention relies on — even as later appends grow the cache.
// Pages may be shared with other holders (prefix-cache entries, other
// sessions that adopted the same prefix): the cache only ever writes its
// tail page, and a write into a still-shared tail page copies the owned
// row prefix into a fresh exclusive page first (copy-on-write), so shared
// bytes never change underneath another reader.
type kvCache struct {
	dim   int
	rows  int // rows per page (pool granularity)
	pool  *KVPagePool
	pages []*kvPage // page i holds rows [i*rows, (i+1)*rows)
	len   int       // valid rows
}

func newKVCache(pool *KVPagePool) *kvCache {
	return &kvCache{dim: pool.dim, rows: pool.rows, pool: pool}
}

// kRow and vRow return mutable views of row t (t < len for reads; t == len
// is valid immediately after grow).
func (c *kvCache) kRow(t int) []float64 { return c.pages[t/c.rows].k.Row(t % c.rows) }
func (c *kvCache) vRow(t int) []float64 { return c.pages[t/c.rows].v.Row(t % c.rows) }

// grow makes row index c.len writable: at a page boundary past the leased
// pages it leases a fresh (exclusive) page from the pool, and when the
// write would land in a page that is still shared with another holder —
// only possible after a rollback into adopted pages — it first copies the
// rows this cache still owns into a fresh exclusive page (copy-on-write,
// tail page only), so a full, shared page is immutable for as long as
// anyone else references it.
func (c *kvCache) grow() {
	if c.len == len(c.pages)*c.rows {
		c.pages = append(c.pages, c.pool.get()) //aptq:ignore noalloc KV cache grows by fixed pages: amortized O(1/PageRows) per token and free-list recycled, pinned by the steady-state alloc tests
		return
	}
	pi := c.len / c.rows
	tail := c.pages[pi]
	if tail.refs.Load() > 1 {
		fresh := c.pool.get()
		for r := 0; r < c.len%c.rows; r++ {
			copy(fresh.k.Row(r), tail.k.Row(r))
			copy(fresh.v.Row(r), tail.v.Row(r))
		}
		c.pages[pi] = fresh
		c.pool.release(tail)
	}
}

// reserve makes rows [c.len, c.len+n) writable up front: it leases every
// page the write range needs and copy-on-writes any still-shared page in
// that range, so the grow calls issued later by the forward pass are
// guaranteed no-ops. All budget failures therefore surface here — before
// any compute runs or any row is written — which is what makes
// ErrPoolExhausted retryable: a failed reserve releases the pages it
// leased in this call and leaves the cache exactly as it found it.
//
//aptq:noalloc
func (c *kvCache) reserve(n int) error {
	if n <= 0 {
		return nil
	}
	// Copy-on-write every shared page the write range touches. Only the
	// first page can hold rows this cache still owns (c.len % rows of
	// them); later shared pages (warm capacity left by a rollback into
	// adopted pages) are replaced outright.
	first := c.len / c.rows
	last := (c.len + n - 1) / c.rows
	for pi := first; pi <= last && pi < len(c.pages); pi++ {
		pg := c.pages[pi]
		if pg.refs.Load() == 1 {
			continue
		}
		fresh, err := c.pool.lease()
		if err != nil {
			return err // already-copied pages hold identical bytes; nothing to undo
		}
		if pi == first {
			for r := 0; r < c.len%c.rows; r++ {
				copy(fresh.k.Row(r), pg.k.Row(r))
				copy(fresh.v.Row(r), pg.v.Row(r))
			}
		}
		c.pages[pi] = fresh
		c.pool.release(pg)
	}
	leased0 := len(c.pages)
	for len(c.pages)*c.rows < c.len+n {
		pg, err := c.pool.lease()
		if err != nil {
			for _, p := range c.pages[leased0:] {
				c.pool.release(p)
			}
			c.pages = c.pages[:leased0]
			return err
		}
		c.pages = append(c.pages, pg) //aptq:ignore noalloc KV cache grows by fixed pages: amortized O(1/PageRows) per token and free-list recycled, pinned by the steady-state alloc tests
	}
	return nil
}

// releaseWarm returns pages holding no valid rows (reserved or left warm
// by a rollback) to the pool — the cross-block cleanup of a reservation
// that failed in a later block, so a starved session does not sit on
// budget it cannot use.
func (c *kvCache) releaseWarm() {
	keep := (c.len + c.rows - 1) / c.rows
	for _, pg := range c.pages[keep:] {
		c.pool.release(pg)
	}
	for i := keep; i < len(c.pages); i++ {
		c.pages[i] = nil
	}
	c.pages = c.pages[:keep]
}

// appendRows bulk-appends the corresponding rows of k and v (T x dim) —
// the chunked-prefill form of the grow/copy/len++ sequence Step runs per
// token, writing the exact same bytes to the exact same rows.
func (c *kvCache) appendRows(k, v *tensor.Mat) {
	for t := 0; t < k.Rows; t++ {
		c.grow()
		copy(c.kRow(c.len), k.Row(t))
		copy(c.vRow(c.len), v.Row(t))
		c.len++
	}
}

// truncate rolls the cache back to n valid rows — the Prefill
// error-rollback path. Leased pages are kept (warm capacity; a later
// regrow that lands in a still-shared page copies on write), so rollback
// never invalidates concurrently shared pages.
func (c *kvCache) truncate(n int) {
	if n < c.len {
		c.len = n
	}
}

// releaseAll returns every page reference to the pool — the Reset path. A
// page whose last holder this was lands on the pool free list and is
// reused by later growth, so a recycled scheduler slot leases warm pages
// instead of allocating.
func (c *kvCache) releaseAll() {
	for i, pg := range c.pages {
		c.pool.release(pg)
		c.pages[i] = nil
	}
	c.pages = c.pages[:0]
	c.len = 0
}

// bytes reports the logical size of the referenced pages — what this
// sequence would occupy if every page were private. Shared pages are
// counted by every referencing cache; the pool's UniqueBytes counts them
// once.
func (c *kvCache) bytes() int {
	return len(c.pages) * int(c.pool.PageBytes())
}

// Session is an incremental decoding session over a fixed model. It is not
// safe for concurrent use.
type Session struct {
	m *model.Model
	// pool is the KV page pool the caches lease pages from. NewSession
	// gives each session a private pool; NewSessionPooled shares one pool
	// across sessions so full prefix pages can be adopted by reference
	// (SharePages/AdoptPages in pagepool.go).
	pool   *KVPagePool
	caches []*kvCache
	pos    int
	// kvQuant, when non-nil, fake-quantizes each key/value row as it
	// enters the cache — KV-cache quantization, the other large memory
	// consumer on edge devices beside the weights. Per-row (per-token,
	// per-layer) dynamic grids.
	kvQuant *quant.ActQuantizer
	// scratch is the reusable arena of the chunked prefill path, sized on
	// first use and kept across Reset so a recycled scheduler slot
	// allocates nothing per chunk in steady state.
	scratch *chunkScratch
	// dscratch is the reusable arena of the single-token decode path (see
	// decode.go), allocated on first Step and likewise kept across Reset,
	// so steady-state decode allocates nothing per token.
	dscratch *decodeScratch
}

// NewSession creates a decoding session with empty caches over a private
// page pool. Sessions that should share KV pages (the serving scheduler's
// slots and its prefix cache) use NewSessionPooled instead.
func NewSession(m *model.Model) *Session {
	return NewSessionPooled(m, NewPagePool(m.Cfg.Dim, m.Cfg.MaxSeq), 0)
}

// NewSessionPooled creates a decoding session whose KV caches lease pages
// from the given shared pool; kvBits > 0 additionally stores the KV cache
// at that bit width (see NewSessionKVQuant). All sessions over one pool
// must share the model's Dim and MaxSeq — the pool's page shape.
func NewSessionPooled(m *model.Model, pool *KVPagePool, kvBits int) *Session {
	s := &Session{m: m, pool: pool}
	for range m.Blocks {
		s.caches = append(s.caches, newKVCache(pool))
	}
	if kvBits > 0 {
		s.kvQuant = newKVQuantizer(kvBits)
	}
	return s
}

// NewSessionKVQuant creates a decoding session whose KV cache is stored at
// the given bit width (e.g. 4 for a 4-bit KV cache).
func NewSessionKVQuant(m *model.Model, kvBits int) *Session {
	s := NewSession(m)
	s.kvQuant = newKVQuantizer(kvBits)
	return s
}

// Pool returns the page pool the session's KV caches lease from.
func (s *Session) Pool() *KVPagePool { return s.pool }

// newKVQuantizer builds the per-token dynamic quantizer KV-cache
// quantization uses.
func newKVQuantizer(kvBits int) *quant.ActQuantizer {
	return &quant.ActQuantizer{Bits: kvBits, PerToken: true}
}

// Pos returns the number of tokens consumed so far.
func (s *Session) Pos() int { return s.pos }

// Reset clears the caches for a new sequence, releasing every page
// reference back to the pool. Pages this session was the last holder of
// land on the pool's free list and are leased again by later growth, so a
// recycled slot in a serving scheduler pays no re-allocation and decodes
// bit-identically to a fresh session.
func (s *Session) Reset() {
	s.pos = 0
	for _, c := range s.caches {
		c.releaseAll()
	}
}

// reserveKV reserves n more rows of KV capacity in every block's cache,
// leasing (and copy-on-writing) all pages the next n appended rows will
// touch. It is the single point where a budgeted pool's ErrPoolExhausted
// surfaces: Step, Append and ImportKV reserve before running any compute,
// so a failed call leaves the session bit-for-bit unchanged and the exact
// same call can be retried once the scheduler frees pages. On failure the
// reservations already made (including pre-existing warm capacity in
// earlier blocks) are released back to the pool, so a starved session
// never sits on budget it cannot use.
//
//aptq:noalloc
func (s *Session) reserveKV(n int) error {
	for i, c := range s.caches {
		if err := c.reserve(n); err != nil {
			for _, done := range s.caches[:i] {
				done.releaseWarm()
			}
			c.releaseWarm()
			return err
		}
	}
	return nil
}

// KVCacheBytes reports the logical KV memory of the session across all
// blocks: the bytes of every page it references, whether or not the page
// is shared with other sessions or the prefix cache. It grows in
// page-sized (PageRows-row) steps with the sequence instead of being
// MaxSeq-sized up front. For the deduplicated resident footprint across
// all sessions of a shared pool, see KVPagePool.Stats().UniqueBytes.
func (s *Session) KVCacheBytes() int {
	n := 0
	for _, c := range s.caches {
		n += c.bytes()
	}
	return n
}

// applyRoPEAt rotates a single-row matrix as if it sat at sequence
// position pos. RoPE.ApplyAt rotates the row in place with the tables of
// that position, so incremental decode costs O(dim) per projection instead
// of the O(pos·dim) padded-matrix embedding it used previously (which made
// a full decode O(seq²) in allocations and rotation work per layer).
// No-op for non-rotary architectures.
func applyRoPEAt(attn *nn.Attention, row *tensor.Mat, pos int) {
	if attn.Rope == nil {
		return
	}
	attn.Rope.ApplyAt(row, pos)
}

// Prefill consumes a prompt and returns the logits after its last token,
// processing the prompt in DefaultPrefillChunk-sized batched chunks (see
// Append) — bit-identical to feeding the prompt through Step token by
// token, but with matrix-matrix projections, LUT-accelerated packed
// decode and a reusable scratch arena, so time-to-first-token scales with
// the prompt as a handful of block forwards instead of one per token.
//
// An empty prompt returns ErrEmptyPrompt: there is no last token to
// report logits for. On any error the session is rolled back to its
// pre-call state (position and KV caches), so a failed Prefill never
// leaves a half-advanced session with a poisoned cache; previously the
// session kept the tokens consumed before the failure.
func (s *Session) Prefill(prompt []int) (*tensor.Mat, error) {
	return s.PrefillChunked(prompt, DefaultPrefillChunk)
}

// PrefillChunked is Prefill with an explicit chunk size (<= 0 selects
// DefaultPrefillChunk). Results are bit-identical at every chunk size;
// larger chunks amortize dispatch and weight decode better, smaller ones
// bound how much work one call does (the serving scheduler's admission
// knob). The rollback-on-error contract matches Prefill.
//
//aptq:noalloc
func (s *Session) PrefillChunked(prompt []int, chunk int) (*tensor.Mat, error) {
	return s.PrefillChunkedCtx(nil, prompt, chunk)
}

// PrefillChunkedCtx is PrefillChunked with a step-level cancellation
// check: ctx is consulted before each chunk's block forward, so a client
// disconnect or deadline mid-prefill aborts after at most one chunk of
// work instead of running the whole prompt. On cancellation the session
// is rolled back to its pre-call state — the same rollback contract as
// any other prefill error — and ctx.Err() is returned. A nil ctx never
// cancels.
func (s *Session) PrefillChunkedCtx(ctx context.Context, prompt []int, chunk int) (*tensor.Mat, error) {
	if len(prompt) == 0 {
		return nil, ErrEmptyPrompt
	}
	if chunk <= 0 {
		chunk = DefaultPrefillChunk
	}
	pos0 := s.pos
	var logits *tensor.Mat
	for lo := 0; lo < len(prompt); lo += chunk {
		if ctx != nil {
			if err := ctx.Err(); err != nil { //aptq:ignore noalloc Context.Err on std contexts is allocation-free; the dynamic call is opaque to the checker
				s.rewind(pos0)
				return nil, err
			}
		}
		hi := lo + chunk
		if hi > len(prompt) {
			hi = len(prompt)
		}
		l, err := s.Append(prompt[lo:hi])
		if err != nil {
			s.rewind(pos0)
			return nil, err
		}
		logits = l
	}
	// The arena-owned logits row is cloned so callers may hold it across
	// later use of the session (the contract of the pre-chunking Prefill).
	return logits.Clone(), nil //aptq:ignore noalloc documented contract: the logits row is cloned out of the arena once per prefill call
}

// PrefillLoop consumes the prompt one Step at a time — the pre-chunking
// reference implementation, kept as the bit-identity oracle of the
// chunked path and the baseline of the BenchmarkPrefill pairs. It shares
// Prefill's contract, including rollback on error and the cloned return
// (Step's logits live in the decode arena; the clone keeps them valid
// across later use of the session).
func (s *Session) PrefillLoop(prompt []int) (*tensor.Mat, error) {
	if len(prompt) == 0 {
		return nil, ErrEmptyPrompt
	}
	pos0 := s.pos
	var logits *tensor.Mat
	var err error
	for _, tok := range prompt {
		logits, err = s.Step(tok)
		if err != nil {
			s.rewind(pos0)
			return nil, err
		}
	}
	return logits.Clone(), nil
}

// rewind rolls the session back to pos consumed tokens, truncating every
// block's KV rows past it (page references are kept). Valid only for pos
// <= the current position; appended rows past pos are abandoned.
func (s *Session) rewind(pos int) {
	s.pos = pos
	for _, c := range s.caches {
		c.truncate(pos)
	}
}

// Generate samples n tokens after the prompt at the given temperature
// (0 = greedy argmax) and returns just the generated tokens.
func (s *Session) Generate(rng *rand.Rand, prompt []int, n int, temperature float64) ([]int, error) {
	logits, err := s.Prefill(prompt)
	if err != nil {
		return nil, err
	}
	out := make([]int, 0, n)
	var sp Sampler
	for len(out) < n {
		tok := sp.Sample(rng, logits.Row(0), temperature)
		out = append(out, tok)
		if len(out) == n {
			break
		}
		logits, err = s.Step(tok)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SampleLogits draws a token from softmax(logits/temperature); a
// temperature of 0 returns the argmax.
//
// Degenerate inputs have explicit behavior instead of panics or silent
// bias: an empty logits slice returns -1 (no valid token); logits that
// are all -Inf — a fully masked distribution — sample uniformly (the
// greedy path returns index 0), matching tensor.Softmax's uniform
// fallback rather than the NaN cascade that previously always yielded the
// last token; and NaN logits are treated as masked (-Inf), so a numerical
// blow-up in one vocab entry can never be selected. All-NaN logits behave
// exactly like all--Inf. Previously a NaN in position 0 made the greedy
// scan (`v > logits[best]`) never update and silently return index 0.
//
// Each call runs on fresh scratch; decode loops that sample every token
// should hold a Sampler instead, which reuses its buffers across calls
// (bit-identically) and keeps the steady state allocation-free.
func SampleLogits(rng *rand.Rand, logits []float64, temperature float64) int {
	var sp Sampler
	return sp.Sample(rng, logits, temperature)
}

// Package infer provides an incremental-decoding path for the model: a
// KV-cached forward pass that processes one token at a time, plus sampling
// utilities. This is the code path an edge deployment of an APTQ-quantized
// model would actually run — the paper's motivating use case — and it is
// verified token-for-token against the batch forward pass.
package infer

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/tensor"
)

// kvCache stores the per-block key/value history of one sequence.
type kvCache struct {
	k, v *tensor.Mat // (len x dim), rows 0..len-1 are valid
	len  int
}

func newKVCache(maxSeq, dim int) *kvCache {
	return &kvCache{k: tensor.New(maxSeq, dim), v: tensor.New(maxSeq, dim)}
}

// Session is an incremental decoding session over a fixed model. It is not
// safe for concurrent use.
type Session struct {
	m      *model.Model
	caches []*kvCache
	pos    int
	// kvQuant, when non-nil, fake-quantizes each key/value row as it
	// enters the cache — KV-cache quantization, the other large memory
	// consumer on edge devices beside the weights. Per-row (per-token,
	// per-layer) dynamic grids.
	kvQuant *quant.ActQuantizer
}

// NewSession creates a decoding session with empty caches.
func NewSession(m *model.Model) *Session {
	s := &Session{m: m}
	for range m.Blocks {
		s.caches = append(s.caches, newKVCache(m.Cfg.MaxSeq, m.Cfg.Dim))
	}
	return s
}

// NewSessionKVQuant creates a decoding session whose KV cache is stored at
// the given bit width (e.g. 4 for a 4-bit KV cache).
func NewSessionKVQuant(m *model.Model, kvBits int) *Session {
	s := NewSession(m)
	s.kvQuant = newKVQuantizer(kvBits)
	return s
}

// newKVQuantizer builds the per-token dynamic quantizer KV-cache
// quantization uses.
func newKVQuantizer(kvBits int) *quant.ActQuantizer {
	return &quant.ActQuantizer{Bits: kvBits, PerToken: true}
}

// Pos returns the number of tokens consumed so far.
func (s *Session) Pos() int { return s.pos }

// Reset clears the caches for a new sequence.
func (s *Session) Reset() {
	s.pos = 0
	for _, c := range s.caches {
		c.len = 0
	}
}

// Step consumes one token and returns the next-token logits (1 x vocab).
func (s *Session) Step(token int) (*tensor.Mat, error) {
	if s.pos >= s.m.Cfg.MaxSeq {
		return nil, fmt.Errorf("infer: sequence length %d exceeds MaxSeq %d", s.pos+1, s.m.Cfg.MaxSeq)
	}
	x := s.m.Embed.Forward([]int{token}) // 1 x dim
	if s.m.PosEmbed != nil {
		tensor.AddInPlace(x, s.m.PosEmbed.Forward([]int{s.pos}))
	}
	for bi, b := range s.m.Blocks {
		x = s.stepBlock(b, s.caches[bi], x)
	}
	s.pos++
	return s.m.Head.Forward(s.m.Norm.Forward(x)), nil
}

// stepBlock runs one decoder block for a single position with KV caching.
func (s *Session) stepBlock(b *nn.Block, c *kvCache, x *tensor.Mat) *tensor.Mat {
	attnIn := b.AttnNorm.Forward(x)
	attnOut := s.stepAttention(b, c, attnIn)
	h := tensor.Add(x, attnOut)
	return tensor.Add(h, b.MLP.Forward(b.MLPNorm.Forward(h)))
}

// stepAttention computes causal attention for the newest position against
// the cached keys/values.
func (s *Session) stepAttention(b *nn.Block, c *kvCache, x *tensor.Mat) *tensor.Mat {
	attn := b.Attn
	dim, heads, hd := attn.Dim, attn.Heads, attn.HeadDim

	q := attn.WQ.Forward(x) // 1 x dim
	k := attn.WK.Forward(x)
	v := attn.WV.Forward(x)
	applyRoPEAt(attn, q, s.pos)
	applyRoPEAt(attn, k, s.pos)

	if s.kvQuant != nil {
		s.kvQuant.QuantizeInPlace(k)
		s.kvQuant.QuantizeInPlace(v)
	}
	copy(c.k.Row(c.len), k.Row(0))
	copy(c.v.Row(c.len), v.Row(0))
	c.len++

	ctx := tensor.New(1, dim)
	invSqrt := 1 / math.Sqrt(float64(hd))
	scores := make([]float64, c.len)
	probs := make([]float64, c.len)
	for h := 0; h < heads; h++ {
		lo := h * hd
		qh := q.Row(0)[lo : lo+hd]
		for t := 0; t < c.len; t++ {
			scores[t] = tensor.Dot(qh, c.k.Row(t)[lo:lo+hd]) * invSqrt
		}
		tensor.Softmax(probs[:c.len], scores[:c.len])
		out := ctx.Row(0)[lo : lo+hd]
		for t := 0; t < c.len; t++ {
			tensor.Axpy(probs[t], c.v.Row(t)[lo:lo+hd], out)
		}
	}
	return attn.WO.Forward(ctx)
}

// applyRoPEAt rotates a single-row matrix as if it sat at sequence
// position pos. RoPE.ApplyAt rotates the row in place with the tables of
// that position, so incremental decode costs O(dim) per projection instead
// of the O(pos·dim) padded-matrix embedding it used previously (which made
// a full decode O(seq²) in allocations and rotation work per layer).
// No-op for non-rotary architectures.
func applyRoPEAt(attn *nn.Attention, row *tensor.Mat, pos int) {
	if attn.Rope == nil {
		return
	}
	attn.Rope.ApplyAt(row, pos)
}

// Prefill consumes a prompt and returns the logits after its last token.
func (s *Session) Prefill(prompt []int) (*tensor.Mat, error) {
	var logits *tensor.Mat
	var err error
	for _, tok := range prompt {
		logits, err = s.Step(tok)
		if err != nil {
			return nil, err
		}
	}
	return logits, nil
}

// Generate samples n tokens after the prompt at the given temperature
// (0 = greedy argmax) and returns just the generated tokens.
func (s *Session) Generate(rng *rand.Rand, prompt []int, n int, temperature float64) ([]int, error) {
	logits, err := s.Prefill(prompt)
	if err != nil {
		return nil, err
	}
	if logits == nil {
		return nil, fmt.Errorf("infer: empty prompt")
	}
	out := make([]int, 0, n)
	for len(out) < n {
		tok := SampleLogits(rng, logits.Row(0), temperature)
		out = append(out, tok)
		if len(out) == n {
			break
		}
		logits, err = s.Step(tok)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SampleLogits draws a token from softmax(logits/temperature); a
// temperature of 0 returns the argmax.
//
// Degenerate inputs have explicit behavior instead of panics or silent
// bias: an empty logits slice returns -1 (no valid token), and logits that
// are all -Inf — a fully masked distribution — sample uniformly (the
// greedy path returns index 0), matching tensor.Softmax's uniform
// fallback rather than the NaN cascade that previously always yielded the
// last token.
func SampleLogits(rng *rand.Rand, logits []float64, temperature float64) int {
	if len(logits) == 0 {
		return -1
	}
	if temperature <= 0 {
		best := 0
		for i, v := range logits {
			if v > logits[best] {
				best = i
			}
		}
		return best
	}
	scaled := make([]float64, len(logits))
	for i, v := range logits {
		scaled[i] = v / temperature
	}
	probs := make([]float64, len(scaled))
	tensor.Softmax(probs, scaled)
	u := rng.Float64()
	acc := 0.0
	for i, p := range probs {
		acc += p
		if u <= acc {
			return i
		}
	}
	return len(probs) - 1
}

// Package infer provides an incremental-decoding path for the model: a
// KV-cached forward pass that processes one token at a time, plus sampling
// utilities. This is the code path an edge deployment of an APTQ-quantized
// model would actually run — the paper's motivating use case — and it is
// verified token-for-token against the batch forward pass.
package infer

import (
	"context"
	"errors"
	"math/rand"

	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/tensor"
)

// ErrEmptyPrompt is returned by Prefill (and everything built on it) when
// the prompt has no tokens: there are no logits to return. It replaces the
// previous (nil, nil) result, which forced every caller to pair the call
// with a nil check.
var ErrEmptyPrompt = errors.New("infer: empty prompt")

// kvChunkRows is the allocation granularity of the KV cache: rows are
// allocated kvChunkRows positions at a time as the sequence grows, so a
// warm-but-idle session (e.g. a scheduler slot between requests) holds
// memory proportional to the longest sequence it has actually seen, not
// MaxSeq x Dim x blocks up front.
const kvChunkRows = 16

// kvCache stores the per-block key/value history of one sequence in
// fixed-size row chunks. Chunks are allocated on demand and never moved or
// freed while the cache lives (Reset keeps capacity), so a row slice
// handed out by kRow/vRow stays valid — the stability in-flight attention
// relies on — even as later appends grow the cache.
type kvCache struct {
	dim   int
	chunk int           // rows per chunk
	k, v  []*tensor.Mat // chunk i holds rows [i*chunk, (i+1)*chunk)
	len   int           // valid rows
}

func newKVCache(maxSeq, dim int) *kvCache {
	chunk := kvChunkRows
	if maxSeq < chunk {
		chunk = maxSeq
	}
	return &kvCache{dim: dim, chunk: chunk}
}

// kRow and vRow return mutable views of row t (t < len for reads; t == len
// is valid immediately after grow).
func (c *kvCache) kRow(t int) []float64 { return c.k[t/c.chunk].Row(t % c.chunk) }
func (c *kvCache) vRow(t int) []float64 { return c.v[t/c.chunk].Row(t % c.chunk) }

// grow makes row index c.len addressable, allocating a new chunk when the
// sequence crosses a chunk boundary.
func (c *kvCache) grow() {
	if c.len == len(c.k)*c.chunk {
		c.k = append(c.k, tensor.New(c.chunk, c.dim)) //aptq:ignore noalloc KV cache grows by fixed chunks: amortized O(1/chunk) per token, pinned by the steady-state alloc tests
		c.v = append(c.v, tensor.New(c.chunk, c.dim)) //aptq:ignore noalloc KV cache grows by fixed chunks: amortized O(1/chunk) per token, pinned by the steady-state alloc tests
	}
}

// appendRows bulk-appends the corresponding rows of k and v (T x dim) —
// the chunked-prefill form of the grow/copy/len++ sequence Step runs per
// token, writing the exact same bytes to the exact same rows.
func (c *kvCache) appendRows(k, v *tensor.Mat) {
	for t := 0; t < k.Rows; t++ {
		c.grow()
		copy(c.kRow(c.len), k.Row(t))
		copy(c.vRow(c.len), v.Row(t))
		c.len++
	}
}

// truncate rolls the cache back to n valid rows, keeping chunk storage —
// the Prefill error-rollback path.
func (c *kvCache) truncate(n int) {
	if n < c.len {
		c.len = n
	}
}

// bytes reports the resident size of the allocated chunks.
func (c *kvCache) bytes() int {
	return len(c.k) * 2 * c.chunk * c.dim * 8
}

// Session is an incremental decoding session over a fixed model. It is not
// safe for concurrent use.
type Session struct {
	m      *model.Model
	caches []*kvCache
	pos    int
	// kvQuant, when non-nil, fake-quantizes each key/value row as it
	// enters the cache — KV-cache quantization, the other large memory
	// consumer on edge devices beside the weights. Per-row (per-token,
	// per-layer) dynamic grids.
	kvQuant *quant.ActQuantizer
	// scratch is the reusable arena of the chunked prefill path, sized on
	// first use and kept across Reset so a recycled scheduler slot
	// allocates nothing per chunk in steady state.
	scratch *chunkScratch
	// dscratch is the reusable arena of the single-token decode path (see
	// decode.go), allocated on first Step and likewise kept across Reset,
	// so steady-state decode allocates nothing per token.
	dscratch *decodeScratch
}

// NewSession creates a decoding session with empty caches.
func NewSession(m *model.Model) *Session {
	s := &Session{m: m}
	for range m.Blocks {
		s.caches = append(s.caches, newKVCache(m.Cfg.MaxSeq, m.Cfg.Dim))
	}
	return s
}

// NewSessionKVQuant creates a decoding session whose KV cache is stored at
// the given bit width (e.g. 4 for a 4-bit KV cache).
func NewSessionKVQuant(m *model.Model, kvBits int) *Session {
	s := NewSession(m)
	s.kvQuant = newKVQuantizer(kvBits)
	return s
}

// newKVQuantizer builds the per-token dynamic quantizer KV-cache
// quantization uses.
func newKVQuantizer(kvBits int) *quant.ActQuantizer {
	return &quant.ActQuantizer{Bits: kvBits, PerToken: true}
}

// Pos returns the number of tokens consumed so far.
func (s *Session) Pos() int { return s.pos }

// Reset clears the caches for a new sequence. Allocated KV chunks are kept
// (content is overwritten as the next sequence grows into them), so a
// recycled slot in a serving scheduler pays no re-allocation and decodes
// bit-identically to a fresh session.
func (s *Session) Reset() {
	s.pos = 0
	for _, c := range s.caches {
		c.len = 0
	}
}

// KVCacheBytes reports the resident memory of the session's KV cache
// across all blocks. It grows in kvChunkRows-row chunks with the sequence
// instead of being MaxSeq-sized up front.
func (s *Session) KVCacheBytes() int {
	n := 0
	for _, c := range s.caches {
		n += c.bytes()
	}
	return n
}

// applyRoPEAt rotates a single-row matrix as if it sat at sequence
// position pos. RoPE.ApplyAt rotates the row in place with the tables of
// that position, so incremental decode costs O(dim) per projection instead
// of the O(pos·dim) padded-matrix embedding it used previously (which made
// a full decode O(seq²) in allocations and rotation work per layer).
// No-op for non-rotary architectures.
func applyRoPEAt(attn *nn.Attention, row *tensor.Mat, pos int) {
	if attn.Rope == nil {
		return
	}
	attn.Rope.ApplyAt(row, pos)
}

// Prefill consumes a prompt and returns the logits after its last token,
// processing the prompt in DefaultPrefillChunk-sized batched chunks (see
// Append) — bit-identical to feeding the prompt through Step token by
// token, but with matrix-matrix projections, LUT-accelerated packed
// decode and a reusable scratch arena, so time-to-first-token scales with
// the prompt as a handful of block forwards instead of one per token.
//
// An empty prompt returns ErrEmptyPrompt: there is no last token to
// report logits for. On any error the session is rolled back to its
// pre-call state (position and KV caches), so a failed Prefill never
// leaves a half-advanced session with a poisoned cache; previously the
// session kept the tokens consumed before the failure.
func (s *Session) Prefill(prompt []int) (*tensor.Mat, error) {
	return s.PrefillChunked(prompt, DefaultPrefillChunk)
}

// PrefillChunked is Prefill with an explicit chunk size (<= 0 selects
// DefaultPrefillChunk). Results are bit-identical at every chunk size;
// larger chunks amortize dispatch and weight decode better, smaller ones
// bound how much work one call does (the serving scheduler's admission
// knob). The rollback-on-error contract matches Prefill.
//
//aptq:noalloc
func (s *Session) PrefillChunked(prompt []int, chunk int) (*tensor.Mat, error) {
	return s.PrefillChunkedCtx(nil, prompt, chunk)
}

// PrefillChunkedCtx is PrefillChunked with a step-level cancellation
// check: ctx is consulted before each chunk's block forward, so a client
// disconnect or deadline mid-prefill aborts after at most one chunk of
// work instead of running the whole prompt. On cancellation the session
// is rolled back to its pre-call state — the same rollback contract as
// any other prefill error — and ctx.Err() is returned. A nil ctx never
// cancels.
func (s *Session) PrefillChunkedCtx(ctx context.Context, prompt []int, chunk int) (*tensor.Mat, error) {
	if len(prompt) == 0 {
		return nil, ErrEmptyPrompt
	}
	if chunk <= 0 {
		chunk = DefaultPrefillChunk
	}
	pos0 := s.pos
	var logits *tensor.Mat
	for lo := 0; lo < len(prompt); lo += chunk {
		if ctx != nil {
			if err := ctx.Err(); err != nil { //aptq:ignore noalloc Context.Err on std contexts is allocation-free; the dynamic call is opaque to the checker
				s.rewind(pos0)
				return nil, err
			}
		}
		hi := lo + chunk
		if hi > len(prompt) {
			hi = len(prompt)
		}
		l, err := s.Append(prompt[lo:hi])
		if err != nil {
			s.rewind(pos0)
			return nil, err
		}
		logits = l
	}
	// The arena-owned logits row is cloned so callers may hold it across
	// later use of the session (the contract of the pre-chunking Prefill).
	return logits.Clone(), nil //aptq:ignore noalloc documented contract: the logits row is cloned out of the arena once per prefill call
}

// PrefillLoop consumes the prompt one Step at a time — the pre-chunking
// reference implementation, kept as the bit-identity oracle of the
// chunked path and the baseline of the BenchmarkPrefill pairs. It shares
// Prefill's contract, including rollback on error and the cloned return
// (Step's logits live in the decode arena; the clone keeps them valid
// across later use of the session).
func (s *Session) PrefillLoop(prompt []int) (*tensor.Mat, error) {
	if len(prompt) == 0 {
		return nil, ErrEmptyPrompt
	}
	pos0 := s.pos
	var logits *tensor.Mat
	var err error
	for _, tok := range prompt {
		logits, err = s.Step(tok)
		if err != nil {
			s.rewind(pos0)
			return nil, err
		}
	}
	return logits.Clone(), nil
}

// rewind rolls the session back to pos consumed tokens, truncating every
// block's KV rows past it (chunk storage is kept). Valid only for pos <=
// the current position; appended rows past pos are abandoned.
func (s *Session) rewind(pos int) {
	s.pos = pos
	for _, c := range s.caches {
		c.truncate(pos)
	}
}

// Generate samples n tokens after the prompt at the given temperature
// (0 = greedy argmax) and returns just the generated tokens.
func (s *Session) Generate(rng *rand.Rand, prompt []int, n int, temperature float64) ([]int, error) {
	logits, err := s.Prefill(prompt)
	if err != nil {
		return nil, err
	}
	out := make([]int, 0, n)
	var sp Sampler
	for len(out) < n {
		tok := sp.Sample(rng, logits.Row(0), temperature)
		out = append(out, tok)
		if len(out) == n {
			break
		}
		logits, err = s.Step(tok)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SampleLogits draws a token from softmax(logits/temperature); a
// temperature of 0 returns the argmax.
//
// Degenerate inputs have explicit behavior instead of panics or silent
// bias: an empty logits slice returns -1 (no valid token); logits that
// are all -Inf — a fully masked distribution — sample uniformly (the
// greedy path returns index 0), matching tensor.Softmax's uniform
// fallback rather than the NaN cascade that previously always yielded the
// last token; and NaN logits are treated as masked (-Inf), so a numerical
// blow-up in one vocab entry can never be selected. All-NaN logits behave
// exactly like all--Inf. Previously a NaN in position 0 made the greedy
// scan (`v > logits[best]`) never update and silently return index 0.
//
// Each call runs on fresh scratch; decode loops that sample every token
// should hold a Sampler instead, which reuses its buffers across calls
// (bit-identically) and keeps the steady state allocation-free.
func SampleLogits(rng *rand.Rand, logits []float64, temperature float64) int {
	var sp Sampler
	return sp.Sample(rng, logits, temperature)
}

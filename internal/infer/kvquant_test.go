package infer

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/nn"
)

func TestKVQuant8BitNearLossless(t *testing.T) {
	m := tinyModel(t)
	src := data.NewC4Like(32)
	ids := src.Generate(rand.New(rand.NewSource(5)), 14)

	full := NewSession(m)
	kv8 := NewSessionKVQuant(m, 8)
	for _, tok := range ids {
		a, err := full.Step(tok)
		if err != nil {
			t.Fatal(err)
		}
		b, err := kv8.Step(tok)
		if err != nil {
			t.Fatal(err)
		}
		for j := range a.Row(0) {
			if math.Abs(a.At(0, j)-b.At(0, j)) > 0.05*(1+math.Abs(a.At(0, j))) {
				t.Fatalf("8-bit KV cache diverged at logit %d: %v vs %v", j, a.At(0, j), b.At(0, j))
			}
		}
	}
}

func TestKVQuantDegradesWithBits(t *testing.T) {
	// Lower KV bit widths must increase NLL of a held-out continuation.
	m := tinyModel(t)
	src := data.NewC4Like(32)
	rng := rand.New(rand.NewSource(6))

	nllAt := func(kvBits int) float64 {
		total := 0.0
		rng := rand.New(rand.NewSource(7))
		for trial := 0; trial < 10; trial++ {
			seg := src.Generate(rng, 16)
			var s *Session
			if kvBits == 0 {
				s = NewSession(m)
			} else {
				s = NewSessionKVQuant(m, kvBits)
			}
			for i := 0; i+1 < len(seg); i++ {
				logits, err := s.Step(seg[i])
				if err != nil {
					t.Fatal(err)
				}
				nll, _ := nn.SequenceNLL(logits, []int{seg[i+1]})
				total += nll
			}
		}
		return total
	}
	_ = rng
	full := nllAt(0)
	kv8 := nllAt(8)
	kv2 := nllAt(2)
	if math.Abs(kv8-full)/full > 0.02 {
		t.Fatalf("8-bit KV NLL %v too far from full %v", kv8, full)
	}
	if kv2 <= kv8 {
		t.Fatalf("2-bit KV NLL %v not worse than 8-bit %v", kv2, kv8)
	}
}

func TestKVQuantGenerationStaysValid(t *testing.T) {
	m := model.New(model.Tiny(), 1)
	s := NewSessionKVQuant(m, 4)
	out, err := s.Generate(rand.New(rand.NewSource(8)), []int{1, 2}, 10, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 10 {
		t.Fatalf("generated %d tokens", len(out))
	}
	for _, tok := range out {
		if tok < 0 || tok >= m.Cfg.Vocab {
			t.Fatalf("token %d out of range", tok)
		}
	}
}

// Paged KV storage: the shared, refcounted page pool under every
// session's KV cache. A page is a fixed PageRows x dim pair of key/value
// matrices leased from a KVPagePool; sessions hold page *references*, not
// private copies, so two sessions whose sequences share a prefix can hold
// the very same pages — attach is a pointer adoption (a refcount bump per
// page), not a memcpy per block — and resident KV scales with *unique*
// tokens instead of with slot count. A page is immutable once full: the
// only page a session ever writes is its tail page, and writing into a
// tail page that is still shared (refcount > 1) first copies the owned
// row prefix into a fresh exclusive page — copy-on-write, confined to the
// tail — so a shared page's bytes can never change under a concurrent
// reader. Pages whose refcount reaches zero return to the pool's free
// list and are reused by later growth, which keeps the decode and prefill
// steady states allocation-free exactly like the chunk-owning cache they
// replace.
//
// Bit-identity: pages store the same rows at the same positions the
// chunk-owning cache stored, kRow/vRow hand out the same row views, and
// copy-on-write copies bytes verbatim, so paged decode output is
// bit-identical to the memcpy model — ExportKV/ImportKV (kvspan.go) stay
// the compatibility oracle the tests pin this against.
package infer

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/tensor"
)

// ErrPoolExhausted is returned by page leases (surfaced through
// Session.Step / Append / ImportKV) when the pool has a byte budget, every
// budgeted page is referenced, and the reclaimer (if any) cannot free one.
// The pool never allocates past its budget: callers see this error instead
// of the replica seeing the OOM killer. The serving scheduler reacts by
// preempting a slot; the session that got the error is unchanged and may
// retry the exact same call once pages free up.
var ErrPoolExhausted = errors.New("infer: KV page pool exhausted (budget reached)")

// PageRows is the row granularity of the paged KV cache: pages hold
// PageRows sequence positions of keys and values per block, the prefix
// cache in internal/serve shares full pages at exactly this granularity,
// and the KV cache grows one page at a time. (It equals the historical
// kvChunkRows allocation granularity; the constant now lives in one
// place instead of being re-assumed by the serving layer.)
const PageRows = 16

// kvPage is one refcounted page of KV storage: PageRows (or pool.rows,
// when MaxSeq clamps it) positions of keys and values at one block. The
// refcount counts holders — session caches, prefix-cache entries, and
// in-flight PageSpans; a page is only written by a holder that can prove
// exclusivity (refs == 1), everything else copies first.
type kvPage struct {
	k, v *tensor.Mat // rows x dim
	refs atomic.Int32
}

// KVPagePool allocates and recycles KV pages for the sessions that share
// it. Pages released back to the pool (refcount zero) land on a free list
// and are handed out again by later growth, so a serving scheduler's
// steady state leases recycled pages instead of allocating. The pool is
// safe for concurrent use; page refcounts are atomic.
//
// Sessions sharing pages must share the pool (AdoptPages enforces this):
// the pool is the unit of unique-byte accounting, and a page must return
// to the free list it was leased from.
type KVPagePool struct {
	dim  int
	rows int // rows per page: PageRows clamped to MaxSeq

	mu      sync.Mutex
	free    []*kvPage
	created int64 // pages ever allocated
	// budgetPages caps created when > 0: the pool will never hold more
	// than budgetPages pages alive at once (in use + free list), so its
	// resident KV bytes never exceed budgetPages*PageBytes().
	budgetPages int64
	// highWater is the maximum pages-in-use ever observed — the number the
	// budget invariant is asserted against (highWater <= budgetPages).
	highWater int64
	// reclaim, when set, is asked to free one reclaimable page reference
	// (the prefix cache evicting an unpinned entry) when a lease finds the
	// budget exhausted. It reports whether it freed anything; it is invoked
	// WITHOUT the pool lock held, because freeing routes back through
	// release().
	reclaim func() bool
}

// NewPagePool builds a pool of maxSeq-clamped PageRows x dim pages. Every
// session of a model (and the scheduler's prefix cache) that should share
// KV pages must be constructed over the same pool.
func NewPagePool(dim, maxSeq int) *KVPagePool {
	rows := PageRows
	if maxSeq > 0 && maxSeq < rows {
		rows = maxSeq
	}
	return &KVPagePool{dim: dim, rows: rows}
}

// Rows reports the sequence positions one page covers — the sharing
// granularity of everything built on the pool.
func (p *KVPagePool) Rows() int { return p.rows }

// PageBytes reports the resident size of one page (keys plus values).
func (p *KVPagePool) PageBytes() int64 { return int64(2 * p.rows * p.dim * 8) }

// SetBudget caps the pool at floor(bytes / PageBytes()) pages; bytes <= 0
// removes the cap. With a budget in place leases fail with
// ErrPoolExhausted instead of allocating past it — the pool's resident
// bytes are a hard guarantee, not a soft target. Set the budget before
// serving traffic; it is not meant to shrink below pages already created.
func (p *KVPagePool) SetBudget(bytes int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if bytes <= 0 {
		p.budgetPages = 0
		return
	}
	p.budgetPages = bytes / p.PageBytes()
	if p.budgetPages < 1 {
		p.budgetPages = 1 // a budget below one page could never serve anything
	}
}

// BudgetPages reports the page cap (0 = unbounded).
func (p *KVPagePool) BudgetPages() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.budgetPages
}

// BudgetBytes reports the byte form of the cap (0 = unbounded).
func (p *KVPagePool) BudgetBytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.budgetPages * p.PageBytes()
}

// Budgeted reports whether the pool has a byte budget.
func (p *KVPagePool) Budgeted() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.budgetPages > 0
}

// SetReclaimer registers the sacrificial tier: a callback asked to free
// one page reference when a lease finds the budget exhausted (the serving
// scheduler registers its prefix cache's unpinned-LRU eviction). It must
// return false when it cannot free anything, or leases would spin.
func (p *KVPagePool) SetReclaimer(f func() bool) {
	p.mu.Lock()
	p.reclaim = f
	p.mu.Unlock()
}

// PoolStats is a point-in-time snapshot of pool residency.
type PoolStats struct {
	// PagesInUse counts pages currently referenced by at least one holder;
	// UniqueBytes is their resident size — the honest KV footprint, counting
	// a page shared by N holders once.
	PagesInUse  int64
	UniqueBytes int64
	// FreePages counts recycled pages parked on the free list (warm
	// capacity retained for reuse, not referenced by anyone).
	FreePages int64
	// HighWaterPages / HighWaterBytes record the maximum pages-in-use ever
	// observed; with a budget set, HighWaterBytes <= BudgetBytes is the
	// memory guarantee (test- and smoke-enforced). BudgetBytes is 0 for an
	// unbounded pool.
	HighWaterPages int64
	HighWaterBytes int64
	BudgetBytes    int64
}

// Stats snapshots the pool counters.
func (p *KVPagePool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	inUse := p.created - int64(len(p.free))
	return PoolStats{
		PagesInUse:     inUse,
		UniqueBytes:    inUse * p.PageBytes(),
		FreePages:      int64(len(p.free)),
		HighWaterPages: p.highWater,
		HighWaterBytes: p.highWater * p.PageBytes(),
		BudgetBytes:    p.budgetPages * p.PageBytes(),
	}
}

// lease hands out an exclusively owned page (refcount 1): a recycled page
// when the free list has one, a fresh allocation while the budget (if any)
// permits, and otherwise one round of reclaim (cache eviction) per retry
// until the reclaimer gives up — then ErrPoolExhausted. The reclaimer runs
// outside the pool lock: the pages it frees arrive through release().
func (p *KVPagePool) lease() (*kvPage, error) {
	for {
		p.mu.Lock()
		if n := len(p.free); n > 0 {
			pg := p.free[n-1]
			p.free[n-1] = nil
			p.free = p.free[:n-1]
			if inUse := p.created - int64(len(p.free)); inUse > p.highWater {
				p.highWater = inUse
			}
			p.mu.Unlock()
			pg.refs.Store(1)
			return pg, nil
		}
		if p.budgetPages <= 0 || p.created < p.budgetPages {
			p.created++
			if p.created > p.highWater { // free list is empty: all created pages are in use
				p.highWater = p.created
			}
			p.mu.Unlock()
			pg := &kvPage{ //aptq:ignore noalloc page allocation is amortized O(1/PageRows) per token and disappears entirely once the pool's free list is warm
				k: tensor.New(p.rows, p.dim), //aptq:ignore noalloc see above: cold-pool page allocation, recycled forever after
				v: tensor.New(p.rows, p.dim), //aptq:ignore noalloc see above: cold-pool page allocation, recycled forever after
			}
			pg.refs.Store(1)
			return pg, nil
		}
		reclaim := p.reclaim
		p.mu.Unlock()
		if reclaim == nil || !reclaim() { //aptq:ignore noalloc the reclaimer runs only on the exhausted-pool path, never in steady-state decode; eviction bookkeeping there may allocate
			return nil, ErrPoolExhausted
		}
	}
}

// get is lease for paths that reserved capacity up front (kvCache.grow)
// or run on unbounded pools: exhaustion here is a reservation-protocol bug,
// not an operational condition, so it panics instead of plumbing an error
// through the zero-alloc forward pass.
func (p *KVPagePool) get() *kvPage {
	pg, err := p.lease()
	if err != nil {
		panic("infer: page lease without reservation on a budgeted pool: " + err.Error())
	}
	return pg
}

// retain adds a reference to pg on behalf of a new holder.
func (p *KVPagePool) retain(pg *kvPage) { pg.refs.Add(1) }

// release drops one reference; the last holder's release parks the page
// on the free list for reuse.
func (p *KVPagePool) release(pg *kvPage) {
	if pg.refs.Add(-1) == 0 {
		p.mu.Lock()
		p.free = append(p.free, pg) //aptq:ignore noalloc free-list growth is amortized and bounded by the pool's high-water page count
		p.mu.Unlock()
	}
}

// PageSpan is a refcounted reference to the full KV pages covering token
// positions [Start, End) across every block of a session — the zero-copy
// counterpart of KVSpan. Holding a PageSpan keeps its pages alive (and,
// via copy-on-write, immutable); Release drops that hold. Spans are safe
// to share between goroutines: holders only read the pages.
type PageSpan struct {
	Start, End int
	pool       *KVPagePool
	pages      [][]*kvPage // per block, (End-Start)/pool.rows pages
}

// Tokens returns the number of sequence positions the span covers.
func (ps *PageSpan) Tokens() int { return ps.End - ps.Start }

// Pages returns the number of pages the span references per block.
func (ps *PageSpan) Pages() int { return (ps.End - ps.Start) / ps.pool.rows }

// Bytes reports the logical size of the referenced pages — what a
// memcpy'd snapshot of the same rows would occupy. The resident cost of a
// span is shared with every other holder of the same pages; the pool's
// UniqueBytes accounts that once.
func (ps *PageSpan) Bytes() int64 {
	return int64(len(ps.pages)*ps.Pages()) * ps.pool.PageBytes()
}

// Retain adds a reference on behalf of a new holder of the whole span.
func (ps *PageSpan) Retain() {
	for _, pgs := range ps.pages {
		for _, pg := range pgs {
			ps.pool.retain(pg)
		}
	}
}

// Release drops the holder's references. The span must not be used after
// its holder releases it.
func (ps *PageSpan) Release() {
	for _, pgs := range ps.pages {
		for _, pg := range pgs {
			ps.pool.release(pg)
		}
	}
}

// SoleHolder reports whether the span's holder owns the only reference on
// every page — i.e. releasing the span would actually return pages to the
// pool. The prefix cache uses it to pick sacrificial entries under memory
// pressure: evicting an entry whose pages are still adopted by live slots
// frees nothing. The answer is advisory under concurrency (a slot may
// adopt between the check and the release); that race only makes an
// eviction free less than hoped, never unsafe.
func (ps *PageSpan) SoleHolder() bool {
	for _, pgs := range ps.pages {
		for _, pg := range pgs {
			if pg.refs.Load() != 1 {
				return false
			}
		}
	}
	return true
}

// SharePages returns a refcounted reference to the full pages covering
// positions [lo, hi) of every block — the zero-copy form of ExportKV. lo
// and hi must be page-aligned and the rows already consumed (hi <=
// Pos()), so every referenced page is full and therefore immutable: the
// session never rewrites a full page (rollback into one copies first).
// The caller owns the returned span and must Release it (a prefix-cache
// entry holds it until eviction).
func (s *Session) SharePages(lo, hi int) *PageSpan {
	rows := s.pool.rows
	if lo < 0 || hi > s.pos || lo >= hi || lo%rows != 0 || hi%rows != 0 {
		panic(fmt.Sprintf("infer: SharePages [%d,%d) of a session at position %d (page rows %d)", lo, hi, s.pos, rows))
	}
	ps := &PageSpan{Start: lo, End: hi, pool: s.pool}
	for _, c := range s.caches {
		pgs := make([]*kvPage, 0, hi/rows-lo/rows)
		for pi := lo / rows; pi < hi/rows; pi++ {
			pg := c.pages[pi]
			s.pool.retain(pg)
			pgs = append(pgs, pg)
		}
		ps.pages = append(ps.pages, pgs)
	}
	return ps
}

// AdoptPages appends the span's pages to every block's cache by reference
// — a refcount bump per page instead of ImportKV's memcpy per block — and
// advances the session to span.End. The session must sit exactly at
// span.Start with a page-aligned cache (the recycled-slot attach path:
// position 0 after Reset, then each span's start for consecutive spans),
// and must share the span's pool — pages are leased from and return to
// one free list, and unique-byte accounting lives there. The span itself
// stays owned by the caller (the session takes its own references), so a
// prefix-cache entry can be evicted while adopted pages live on.
func (s *Session) AdoptPages(ps *PageSpan) error {
	rows := s.pool.rows
	if ps.pool != s.pool {
		return fmt.Errorf("infer: AdoptPages across pools (pages must be leased from the session's own pool)")
	}
	if s.pos != ps.Start {
		return fmt.Errorf("infer: AdoptPages of span [%d,%d) into a session at position %d", ps.Start, ps.End, s.pos)
	}
	if len(ps.pages) != len(s.caches) {
		return fmt.Errorf("infer: AdoptPages span has %d blocks, session has %d", len(ps.pages), len(s.caches))
	}
	if ps.End > s.m.Cfg.MaxSeq {
		return fmt.Errorf("infer: AdoptPages span end %d exceeds MaxSeq %d", ps.End, s.m.Cfg.MaxSeq)
	}
	// Validate every block's cache before touching any state, so a failed
	// adoption never leaves the session half-advanced (the ImportKV
	// contract).
	for _, c := range s.caches {
		if len(c.pages)*rows != ps.Start {
			return fmt.Errorf("infer: AdoptPages at position %d needs a page-aligned cache, have %d pages of %d rows",
				ps.Start, len(c.pages), rows)
		}
	}
	for bi, c := range s.caches {
		for _, pg := range ps.pages[bi] {
			s.pool.retain(pg)
			c.pages = append(c.pages, pg)
		}
		c.len = ps.End
	}
	s.pos = ps.End
	return nil
}

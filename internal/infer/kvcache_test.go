package infer

import (
	"testing"

	"repro/internal/model"
)

// pageBytes is the resident size of one KV page (keys plus values) for
// the given config — PageRows rows, clamped to MaxSeq.
func pageBytes(cfg model.Config) int {
	rows := PageRows
	if cfg.MaxSeq < rows {
		rows = cfg.MaxSeq
	}
	return 2 * rows * cfg.Dim * 8
}

// TestKVCacheLazyAllocation is the memory-footprint assertion for the
// paged KV cache: a fresh session holds no KV memory at all, and after k
// steps it holds exactly ceil(k/PageRows) pages per block — not the eager
// MaxSeq x Dim x 2 x blocks allocation a pool of warm scheduler slots
// would multiply.
func TestKVCacheLazyAllocation(t *testing.T) {
	cfg := model.Nano7B() // MaxSeq 64 >> PageRows, so laziness is visible
	m := model.New(cfg, 1)
	s := NewSession(m)
	if got := s.KVCacheBytes(); got != 0 {
		t.Fatalf("fresh session holds %d KV bytes, want 0", got)
	}
	eager := cfg.Layers * 2 * cfg.MaxSeq * cfg.Dim * 8
	for step := 1; step <= 2*PageRows; step++ {
		if _, err := s.Step(1); err != nil {
			t.Fatal(err)
		}
		pages := (step + PageRows - 1) / PageRows
		want := cfg.Layers * pages * pageBytes(cfg)
		if got := s.KVCacheBytes(); got != want {
			t.Fatalf("after %d steps: %d KV bytes, want %d", step, got, want)
		}
		if got := s.Pool().Stats().UniqueBytes; got != int64(want) {
			t.Fatalf("after %d steps: pool reports %d unique bytes, session %d — a private pool should agree", step, got, want)
		}
	}
	if got := s.KVCacheBytes(); got >= eager {
		t.Fatalf("short sequence resident KV %d bytes not below eager %d", got, eager)
	}
}

// TestKVCacheResetRecyclesPagesAndMatchesFresh: a recycled slot (Reset
// after a long sequence) returns its pages to the pool free list — its
// own logical footprint drops to zero, the pool allocates nothing new for
// the next sequence — yet decodes bit-identically to a brand-new session.
func TestKVCacheResetRecyclesPagesAndMatchesFresh(t *testing.T) {
	m := model.New(model.Tiny(), 1)
	s := NewSession(m)
	for i := 0; i < PageRows+3; i++ {
		if _, err := s.Step(1 + i%7); err != nil {
			t.Fatal(err)
		}
	}
	warm := s.Pool().Stats()
	if warm.PagesInUse == 0 {
		t.Fatal("warm session references no pages")
	}
	s.Reset()
	after := s.Pool().Stats()
	if after.PagesInUse != 0 {
		t.Fatalf("Reset leaked %d pages still in use", after.PagesInUse)
	}
	if after.FreePages != warm.PagesInUse {
		t.Fatalf("Reset parked %d pages on the free list, want %d", after.FreePages, warm.PagesInUse)
	}
	if got := s.KVCacheBytes(); got != 0 {
		t.Fatalf("session reports %d logical KV bytes after Reset, want 0", got)
	}
	created := s.Pool().Stats().PagesInUse + s.Pool().Stats().FreePages
	fresh := NewSession(m)
	for _, tok := range []int{3, 1, 4, 1, 5} {
		a, err := s.Step(tok)
		if err != nil {
			t.Fatal(err)
		}
		b, err := fresh.Step(tok)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b, 0) {
			t.Fatalf("recycled session diverged from fresh session at token %d", tok)
		}
	}
	st := s.Pool().Stats()
	if st.PagesInUse+st.FreePages != created {
		t.Fatalf("regrowth allocated new pages (%d -> %d): free list not recycled",
			created, st.PagesInUse+st.FreePages)
	}
}

// TestKVCacheRowStability: growing the cache past a page boundary must
// not move rows already handed out — referenced pages are never
// reallocated — so attention's in-flight row views stay valid.
func TestKVCacheRowStability(t *testing.T) {
	c := newKVCache(NewPagePool(8, 64))
	c.grow()
	row0 := c.kRow(0)
	row0[0] = 42
	c.len = 1
	for c.len < 3*c.rows { // cross two page boundaries
		c.grow()
		copy(c.kRow(c.len), make([]float64, c.dim))
		c.len++
	}
	if &row0[0] != &c.kRow(0)[0] {
		t.Fatal("row 0 moved when the cache grew")
	}
	if c.kRow(0)[0] != 42 {
		t.Fatal("row 0 content lost when the cache grew")
	}
}

// TestKVCacheTinyMaxSeq: a config whose MaxSeq is below PageRows clamps
// the page so no memory beyond MaxSeq rows is ever allocated.
func TestKVCacheTinyMaxSeq(t *testing.T) {
	c := newKVCache(NewPagePool(8, 4))
	if c.rows != 4 {
		t.Fatalf("page rows = %d, want clamped to MaxSeq 4", c.rows)
	}
	for i := 0; i < 4; i++ {
		c.grow()
		c.len++
	}
	if got, want := c.bytes(), 2*4*8*8; got != want {
		t.Fatalf("bytes = %d, want %d", got, want)
	}
}

// TestKVCacheCopyOnWriteTail: writing into a tail page that is still
// shared with another holder must copy the owned rows into a fresh
// exclusive page first, leaving the shared page's bytes untouched.
func TestKVCacheCopyOnWriteTail(t *testing.T) {
	pool := NewPagePool(4, 64)
	c := newKVCache(pool)
	for i := 0; i < c.rows; i++ {
		c.grow()
		c.kRow(c.len)[0] = float64(i)
		c.vRow(c.len)[0] = float64(-i)
		c.len++
	}
	shared := c.pages[0]
	pool.retain(shared) // a second holder, as a prefix-cache entry would be

	// Roll back into the shared page and overwrite its last row: the
	// cache must copy, not mutate the shared bytes.
	c.truncate(c.rows - 1)
	c.grow()
	if c.pages[0] == shared {
		t.Fatal("grow wrote into a shared page instead of copying")
	}
	c.kRow(c.len)[0] = 99
	c.len++
	if got := shared.k.Row(c.rows - 1)[0]; got != float64(c.rows-1) {
		t.Fatalf("shared page mutated: row %d = %v", c.rows-1, got)
	}
	for r := 0; r < c.rows-1; r++ {
		if c.kRow(r)[0] != float64(r) || c.vRow(r)[0] != float64(-r) {
			t.Fatalf("COW lost row %d: k=%v v=%v", r, c.kRow(r)[0], c.vRow(r)[0])
		}
	}
	if got := c.kRow(c.rows - 1)[0]; got != 99 {
		t.Fatalf("rewritten row = %v, want 99", got)
	}
	pool.release(shared)
	c.releaseAll()
	if st := pool.Stats(); st.PagesInUse != 0 {
		t.Fatalf("%d pages leaked after release", st.PagesInUse)
	}
}

// TestKVCacheExclusiveTailSkipsCopy: rolling back and regrowing a page no
// one else references must reuse the page in place — COW only triggers
// when the tail is actually shared.
func TestKVCacheExclusiveTailSkipsCopy(t *testing.T) {
	pool := NewPagePool(4, 64)
	c := newKVCache(pool)
	for i := 0; i < 3; i++ {
		c.grow()
		c.len++
	}
	tail := c.pages[0]
	c.truncate(1)
	c.grow()
	if c.pages[0] != tail {
		t.Fatal("grow copied an exclusively owned tail page")
	}
}

package infer

import (
	"testing"

	"repro/internal/model"
)

// chunkBytes is the resident size of one allocated KV chunk (keys plus
// values) for the given config.
func chunkBytes(cfg model.Config) int {
	chunk := kvChunkRows
	if cfg.MaxSeq < chunk {
		chunk = cfg.MaxSeq
	}
	return 2 * chunk * cfg.Dim * 8
}

// TestKVCacheLazyAllocation is the memory-footprint assertion for the
// chunked KV cache: a fresh session holds no KV memory at all, and after k
// steps it holds exactly ceil(k/chunk) chunks per block — not the eager
// MaxSeq x Dim x 2 x blocks allocation a pool of warm scheduler slots
// would multiply.
func TestKVCacheLazyAllocation(t *testing.T) {
	cfg := model.Nano7B() // MaxSeq 64 >> kvChunkRows, so laziness is visible
	m := model.New(cfg, 1)
	s := NewSession(m)
	if got := s.KVCacheBytes(); got != 0 {
		t.Fatalf("fresh session holds %d KV bytes, want 0", got)
	}
	eager := cfg.Layers * 2 * cfg.MaxSeq * cfg.Dim * 8
	for step := 1; step <= 2*kvChunkRows; step++ {
		if _, err := s.Step(1); err != nil {
			t.Fatal(err)
		}
		chunks := (step + kvChunkRows - 1) / kvChunkRows
		want := cfg.Layers * chunks * chunkBytes(cfg)
		if got := s.KVCacheBytes(); got != want {
			t.Fatalf("after %d steps: %d KV bytes, want %d", step, got, want)
		}
	}
	if got := s.KVCacheBytes(); got >= eager {
		t.Fatalf("short sequence resident KV %d bytes not below eager %d", got, eager)
	}
}

// TestKVCacheResetKeepsCapacityAndMatchesFresh: a recycled slot (Reset
// after a long sequence) keeps its chunks warm yet decodes bit-identically
// to a brand-new session.
func TestKVCacheResetKeepsCapacityAndMatchesFresh(t *testing.T) {
	m := model.New(model.Tiny(), 1)
	s := NewSession(m)
	for i := 0; i < kvChunkRows+3; i++ {
		if _, err := s.Step(1 + i%7); err != nil {
			t.Fatal(err)
		}
	}
	warm := s.KVCacheBytes()
	s.Reset()
	if got := s.KVCacheBytes(); got != warm {
		t.Fatalf("Reset dropped KV capacity: %d -> %d bytes", warm, got)
	}
	fresh := NewSession(m)
	for _, tok := range []int{3, 1, 4, 1, 5} {
		a, err := s.Step(tok)
		if err != nil {
			t.Fatal(err)
		}
		b, err := fresh.Step(tok)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b, 0) {
			t.Fatalf("recycled session diverged from fresh session at token %d", tok)
		}
	}
}

// TestKVCacheRowStability: growing the cache past a chunk boundary must
// not move rows already handed out — chunks are append-only, never
// reallocated — so attention's in-flight row views stay valid.
func TestKVCacheRowStability(t *testing.T) {
	c := newKVCache(64, 8)
	c.grow()
	row0 := c.kRow(0)
	row0[0] = 42
	c.len = 1
	for c.len < 3*c.chunk { // cross two chunk boundaries
		c.grow()
		copy(c.kRow(c.len), make([]float64, c.dim))
		c.len++
	}
	if &row0[0] != &c.kRow(0)[0] {
		t.Fatal("row 0 moved when the cache grew")
	}
	if c.kRow(0)[0] != 42 {
		t.Fatal("row 0 content lost when the cache grew")
	}
}

// TestKVCacheTinyMaxSeq: a config whose MaxSeq is below the chunk size
// clamps the chunk so no memory beyond MaxSeq rows is ever allocated.
func TestKVCacheTinyMaxSeq(t *testing.T) {
	c := newKVCache(4, 8)
	if c.chunk != 4 {
		t.Fatalf("chunk = %d, want clamped to MaxSeq 4", c.chunk)
	}
	for i := 0; i < 4; i++ {
		c.grow()
		c.len++
	}
	if got, want := c.bytes(), 2*4*8*8; got != want {
		t.Fatalf("bytes = %d, want %d", got, want)
	}
}

//go:build race

package infer

// raceEnabled reports whether the race detector is active; the
// steady-state allocation assertions relax under it because the runtime
// deliberately defeats sync.Pool caching to expose races.
const raceEnabled = true

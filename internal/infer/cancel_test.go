package infer

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/model"
)

// stepCancelCtx is a context whose Err flips to context.Canceled after a
// fixed number of Err calls — a deterministic way to cancel mid-prompt,
// between two specific chunks, without racing a timer.
type stepCancelCtx struct {
	remaining int
}

func (c *stepCancelCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *stepCancelCtx) Done() <-chan struct{}       { return nil }
func (c *stepCancelCtx) Value(any) any               { return nil }
func (c *stepCancelCtx) Err() error {
	if c.remaining <= 0 {
		return context.Canceled
	}
	c.remaining--
	return nil
}

// TestPrefillChunkedCtxCancelled: a cancelled context aborts the prefill
// before the first chunk, the session is left exactly where it was, and a
// retry on the same session is bit-identical to a fresh full prefill —
// the rollback contract under cancellation.
func TestPrefillChunkedCtxCancelled(t *testing.T) {
	m := model.New(model.Tiny(), 1)
	prompt := []int{3, 1, 4, 1, 5, 9, 2, 6, 5, 3}

	sess := NewSession(m.View())
	// Advance the session first so the rollback target is a non-zero
	// position.
	head, tail := prompt[:3], prompt[3:]
	if _, err := sess.Prefill(head); err != nil {
		t.Fatal(err)
	}
	pos := sess.Pos()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sess.PrefillChunkedCtx(ctx, tail, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled prefill returned %v, want context.Canceled", err)
	}
	if sess.Pos() != pos {
		t.Fatalf("session advanced to %d under cancellation, want rollback to %d", sess.Pos(), pos)
	}

	// Deadline expiry surfaces as context.DeadlineExceeded.
	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	defer cancel2()
	if _, err := sess.PrefillChunkedCtx(expired, tail, 2); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired prefill returned %v, want context.DeadlineExceeded", err)
	}

	got, err := sess.PrefillChunkedCtx(context.Background(), tail, 2)
	if err != nil {
		t.Fatal(err)
	}
	ref := NewSession(m.View())
	want, err := ref.Prefill(prompt)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range want.Row(0) {
		if got.Row(0)[i] != v {
			t.Fatalf("logit %d after cancelled-then-retried prefill = %g, want %g", i, got.Row(0)[i], v)
		}
	}
}

// TestPrefillChunkedCtxCancelMidPrompt cancels between chunks (the second
// Err check fires) and asserts the partially appended chunks are rolled
// back, so a poisoned half-advanced cache can never leak out of a
// cancelled prefill.
func TestPrefillChunkedCtxCancelMidPrompt(t *testing.T) {
	m := model.New(model.Tiny(), 1)
	prompt := []int{7, 2, 9, 4, 8, 1, 6, 3}
	sess := NewSession(m.View())
	// remaining=2: chunks 0 and 1 (4 tokens) run, the check before chunk 2
	// cancels.
	if _, err := sess.PrefillChunkedCtx(&stepCancelCtx{remaining: 2}, prompt, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-prompt cancel returned %v, want context.Canceled", err)
	}
	if sess.Pos() != 0 {
		t.Fatalf("session at pos %d after mid-prompt cancel, want full rollback to 0", sess.Pos())
	}
	got, err := sess.Prefill(prompt)
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewSession(m.View()).Prefill(prompt)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range want.Row(0) {
		if got.Row(0)[i] != v {
			t.Fatalf("logit %d after rollback+retry = %g, want %g", i, got.Row(0)[i], v)
		}
	}
}

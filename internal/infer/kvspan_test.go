package infer

import (
	"testing"

	"repro/internal/model"
)

// TestImportKVBitIdenticalToColdPrefill is the property prefix caching
// stands on: a session that imports the KV rows another session computed
// for a prompt prefix, then prefills only the suffix, produces logits and
// subsequent decode steps bit-identical to a cold prefill of the whole
// prompt — for float and packed weights and a quantized KV cache.
func TestImportKVBitIdenticalToColdPrefill(t *testing.T) {
	prompt := []int{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3}
	cases := []struct {
		name   string
		m      *model.Model
		kvBits int
	}{
		{"float", model.New(model.Tiny(), 3), 0},
		{"packed", packTiny(t, model.Tiny()), 0},
		{"kvquant4", model.New(model.Tiny(), 3), 4},
	}
	newSess := func(m *model.Model, kvBits int) *Session {
		if kvBits > 0 {
			return NewSessionKVQuant(m.View(), kvBits)
		}
		return NewSession(m.View())
	}
	for _, tc := range cases {
		cold := newSess(tc.m, tc.kvBits)
		want, err := cold.Prefill(prompt)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		wantNext, err := cold.Step(prompt[0])
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for _, cut := range []int{1, 7, 8, len(prompt) - 1} {
			donor := newSess(tc.m, tc.kvBits)
			if _, err := donor.Prefill(prompt); err != nil {
				t.Fatalf("%s cut=%d: %v", tc.name, cut, err)
			}
			span := donor.ExportKV(0, cut)
			if span.Tokens() != cut || span.Bytes() <= 0 {
				t.Fatalf("%s cut=%d: span covers %d tokens, %d bytes", tc.name, cut, span.Tokens(), span.Bytes())
			}
			warm := newSess(tc.m, tc.kvBits)
			if err := warm.ImportKV(span); err != nil {
				t.Fatalf("%s cut=%d: %v", tc.name, cut, err)
			}
			if warm.Pos() != cut {
				t.Fatalf("%s cut=%d: pos %d after import", tc.name, cut, warm.Pos())
			}
			got, err := warm.Prefill(prompt[cut:])
			if err != nil {
				t.Fatalf("%s cut=%d: %v", tc.name, cut, err)
			}
			if !got.Equal(want, 0) {
				t.Fatalf("%s cut=%d: warm prefill logits diverged from cold prefill", tc.name, cut)
			}
			gotNext, err := warm.Step(prompt[0])
			if err != nil {
				t.Fatalf("%s cut=%d: %v", tc.name, cut, err)
			}
			if !gotNext.Equal(wantNext, 0) {
				t.Fatalf("%s cut=%d: decode after KV import diverged from cold session", tc.name, cut)
			}
		}
	}
}

// TestImportKVConsecutiveSpans: a prefix split across several spans
// imports span by span (the multi-chunk cache-hit path) and matches the
// single-span import.
func TestImportKVConsecutiveSpans(t *testing.T) {
	m := model.New(model.Tiny(), 3)
	prompt := []int{2, 7, 1, 8, 2, 8, 1, 8, 2, 8, 4, 5}
	donor := NewSession(m.View())
	if _, err := donor.Prefill(prompt); err != nil {
		t.Fatal(err)
	}
	cold := NewSession(m.View())
	want, err := cold.Prefill(prompt)
	if err != nil {
		t.Fatal(err)
	}
	warm := NewSession(m.View())
	for _, cut := range [][2]int{{0, 4}, {4, 8}} {
		if err := warm.ImportKV(donor.ExportKV(cut[0], cut[1])); err != nil {
			t.Fatal(err)
		}
	}
	got, err := warm.Prefill(prompt[8:])
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want, 0) {
		t.Fatal("consecutive span imports diverged from cold prefill")
	}
}

// TestImportKVValidation: misaligned or mis-shaped imports fail without
// touching session state.
func TestImportKVValidation(t *testing.T) {
	m := model.New(model.Tiny(), 3)
	donor := NewSession(m.View())
	if _, err := donor.Prefill([]int{1, 2, 3, 4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	span := donor.ExportKV(2, 4) // starts mid-sequence
	fresh := NewSession(m.View())
	if err := fresh.ImportKV(span); err == nil {
		t.Fatal("import of a span starting at 2 into a fresh session must fail")
	}
	if fresh.Pos() != 0 || fresh.KVCacheBytes() != 0 {
		t.Fatalf("failed import advanced the session: pos=%d kv=%d", fresh.Pos(), fresh.KVCacheBytes())
	}
	other := NewSession(model.New(model.Nano7B(), 3).View())
	if err := other.ImportKV(donor.ExportKV(0, 2)); err == nil {
		t.Fatal("import into a session with a different architecture must fail")
	}
}

// Budgeted page pool tests: the memory-bound contract under the serving
// stack's graceful degradation. A pool with a byte budget must (a) never
// allocate past it — leases fail with ErrPoolExhausted instead, after one
// round of reclaim per retry; (b) keep its high-water mark at or below
// the budget at all times; and (c) surface exhaustion only through
// Session.Step/Append/ImportKV *before any state changes*, so the exact
// same call retried after pages free up produces bit-identical output to
// a never-starved run. These are the invariants the scheduler's
// preemption and admission layers are built on.
package infer

import (
	"errors"
	"testing"

	"repro/internal/model"
)

func tinyPool(budgetPages int64) *KVPagePool {
	cfg := model.Tiny()
	p := NewPagePool(cfg.Dim, cfg.MaxSeq)
	if budgetPages > 0 {
		p.SetBudget(budgetPages * p.PageBytes())
	}
	return p
}

// TestPoolBudgetLeaseExhaustion pins the hard bound: a pool budgeted at N
// pages hands out exactly N, fails the N+1st with ErrPoolExhausted, and
// recovers as soon as a page is released — with the high-water mark never
// exceeding the budget through the whole episode.
func TestPoolBudgetLeaseExhaustion(t *testing.T) {
	p := tinyPool(3)
	var pages []*kvPage
	for i := 0; i < 3; i++ {
		pg, err := p.lease()
		if err != nil {
			t.Fatalf("lease %d within budget failed: %v", i, err)
		}
		pages = append(pages, pg)
	}
	if _, err := p.lease(); !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("lease past budget: err = %v, want ErrPoolExhausted", err)
	}
	p.release(pages[0])
	pg, err := p.lease()
	if err != nil {
		t.Fatalf("lease after release failed: %v", err)
	}
	p.release(pg)
	for _, pg := range pages[1:] {
		p.release(pg)
	}
	st := p.Stats()
	if st.PagesInUse != 0 {
		t.Fatalf("PagesInUse = %d after releasing everything, want 0", st.PagesInUse)
	}
	if st.HighWaterPages != 3 || st.HighWaterBytes > st.BudgetBytes {
		t.Fatalf("high water %d pages / %d bytes exceeds budget %d bytes", st.HighWaterPages, st.HighWaterBytes, st.BudgetBytes)
	}
}

// TestPoolBudgetFloorAndUnset: a budget below one page still admits one
// page (a pool that can never lease serves nothing), and a non-positive
// budget means unbounded.
func TestPoolBudgetFloorAndUnset(t *testing.T) {
	p := tinyPool(0)
	p.SetBudget(p.PageBytes() - 1)
	if got := p.BudgetPages(); got != 1 {
		t.Fatalf("sub-page budget floored to %d pages, want 1", got)
	}
	p.SetBudget(0)
	if p.Budgeted() {
		t.Fatal("SetBudget(0) left the pool budgeted")
	}
	var pages []*kvPage
	for i := 0; i < 8; i++ {
		pg, err := p.lease()
		if err != nil {
			t.Fatalf("unbounded lease %d failed: %v", i, err)
		}
		pages = append(pages, pg)
	}
	for _, pg := range pages {
		p.release(pg)
	}
}

// TestPoolReclaimerEscalation: an exhausted lease asks the reclaimer (the
// prefix cache's sacrificial-eviction hook) to free a page, one round per
// retry, and only fails once the reclaimer reports it has nothing left.
func TestPoolReclaimerEscalation(t *testing.T) {
	p := tinyPool(2)
	held := make([]*kvPage, 0, 2)
	for i := 0; i < 2; i++ {
		pg, err := p.lease()
		if err != nil {
			t.Fatalf("lease %d: %v", i, err)
		}
		held = append(held, pg)
	}
	calls := 0
	p.SetReclaimer(func() bool {
		calls++
		if len(held) == 0 {
			return false
		}
		p.release(held[len(held)-1])
		held = held[:len(held)-1]
		return true
	})
	// Two leases succeed via reclaim; the third finds the reclaimer dry.
	for i := 0; i < 2; i++ {
		pg, err := p.lease()
		if err != nil {
			t.Fatalf("lease %d with reclaimable pages failed: %v", i, err)
		}
		defer p.release(pg)
	}
	if _, err := p.lease(); !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("lease with dry reclaimer: err = %v, want ErrPoolExhausted", err)
	}
	if calls != 3 {
		t.Fatalf("reclaimer called %d times, want 3 (two frees + one dry)", calls)
	}
	if st := p.Stats(); st.HighWaterBytes > st.BudgetBytes {
		t.Fatalf("high water %d > budget %d", st.HighWaterBytes, st.BudgetBytes)
	}
}

// TestStepExhaustionRetryBitIdentical is the preemption-resume contract at
// the session level: a Step that fails with ErrPoolExhausted leaves the
// session bit-for-bit unchanged — position, KV bytes, pool residency — and
// the exact same Step retried after the budget frees up produces logits
// identical to a session that never starved.
func TestStepExhaustionRetryBitIdentical(t *testing.T) {
	m := model.New(model.Tiny(), 1)
	prompt := []int{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3} // exactly one page
	if len(prompt) != PageRows {
		t.Fatalf("prompt must fill one page (%d rows), has %d", PageRows, len(prompt))
	}

	// Budget: exactly the pages the prompt needs (1 page x Layers blocks),
	// so the first decode Step — which needs a second page per block — hits
	// the bound.
	pool := tinyPool(int64(len(m.Blocks)))
	s := NewSessionPooled(m, pool, 0)
	if _, err := s.Prefill(prompt); err != nil {
		t.Fatalf("prefill within budget: %v", err)
	}
	pos, kvBytes := s.Pos(), s.KVCacheBytes()
	inUse := pool.Stats().PagesInUse
	const tok = 7
	if _, err := s.Step(tok); !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("Step past budget: err = %v, want ErrPoolExhausted", err)
	}
	if s.Pos() != pos || s.KVCacheBytes() != kvBytes {
		t.Fatalf("failed Step changed the session: pos %d->%d, kv %d->%d", pos, s.Pos(), kvBytes, s.KVCacheBytes())
	}
	if got := pool.Stats().PagesInUse; got != inUse {
		t.Fatalf("failed Step leaked pool pages: %d -> %d in use", inUse, got)
	}

	// Free the budget and retry the very same call.
	pool.SetBudget(2 * int64(len(m.Blocks)) * pool.PageBytes())
	logits, err := s.Step(tok)
	if err != nil {
		t.Fatalf("retried Step: %v", err)
	}

	ref := NewSession(m) // private unbounded pool, never starved
	if _, err := ref.Prefill(prompt); err != nil {
		t.Fatalf("reference prefill: %v", err)
	}
	want, err := ref.Step(tok)
	if err != nil {
		t.Fatalf("reference Step: %v", err)
	}
	for i := range want.Data {
		if logits.Data[i] != want.Data[i] {
			t.Fatalf("retried logits[%d] = %g, reference %g: retry is not bit-identical", i, logits.Data[i], want.Data[i])
		}
	}
	if st := pool.Stats(); st.HighWaterBytes > st.BudgetBytes {
		t.Fatalf("high water %d > budget %d", st.HighWaterBytes, st.BudgetBytes)
	}
}

// TestAppendReserveRollback: a multi-page reservation that fails midway —
// some blocks (and some pages of the failing block) already leased —
// releases everything it took, so the starved session holds no budget it
// cannot use and the verbatim retry is bit-identical.
func TestAppendReserveRollback(t *testing.T) {
	m := model.New(model.Tiny(), 1)
	prompt := make([]int, 20) // needs 2 pages per block = 4 pages total
	for i := range prompt {
		prompt[i] = 1 + i%(m.Cfg.Vocab-1)
	}
	pool := tinyPool(3) // one page short of the demand
	s := NewSessionPooled(m, pool, 0)
	if _, err := s.Append(prompt); !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("Append past budget: err = %v, want ErrPoolExhausted", err)
	}
	if s.Pos() != 0 {
		t.Fatalf("failed Append advanced the session to %d", s.Pos())
	}
	if st := pool.Stats(); st.PagesInUse != 0 {
		t.Fatalf("failed Append left %d pages in use, want 0 (partial reservation not rolled back)", st.PagesInUse)
	}

	pool.SetBudget(4 * pool.PageBytes())
	logits, err := s.Append(prompt)
	if err != nil {
		t.Fatalf("retried Append: %v", err)
	}
	ref := NewSession(m)
	want, err := ref.Append(prompt)
	if err != nil {
		t.Fatalf("reference Append: %v", err)
	}
	for i := range want.Data {
		if logits.Data[i] != want.Data[i] {
			t.Fatalf("retried Append logits[%d] = %g, reference %g", i, logits.Data[i], want.Data[i])
		}
	}
}

// TestImportKVExhaustionClean: an ImportKV that cannot reserve its rows
// fails with the session unchanged and zero pages leaked, and succeeds
// verbatim once the budget allows — the prefix-restore path a preempted
// slot depends on.
func TestImportKVExhaustionClean(t *testing.T) {
	m := model.New(model.Tiny(), 1)
	prompt := make([]int, 20)
	for i := range prompt {
		prompt[i] = 1 + i%(m.Cfg.Vocab-1)
	}
	donor := NewSession(m)
	if _, err := donor.Prefill(prompt); err != nil {
		t.Fatalf("donor prefill: %v", err)
	}
	span := donor.ExportKV(0, len(prompt))

	pool := tinyPool(3) // span needs 4 pages
	s := NewSessionPooled(m, pool, 0)
	if err := s.ImportKV(span); !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("ImportKV past budget: err = %v, want ErrPoolExhausted", err)
	}
	if s.Pos() != 0 {
		t.Fatalf("failed ImportKV advanced the session to %d", s.Pos())
	}
	if st := pool.Stats(); st.PagesInUse != 0 {
		t.Fatalf("failed ImportKV left %d pages in use", st.PagesInUse)
	}
	pool.SetBudget(6 * pool.PageBytes())
	if err := s.ImportKV(span); err != nil {
		t.Fatalf("retried ImportKV: %v", err)
	}
	// Decode after the import matches the donor bit for bit.
	const tok = 5
	got, err := s.Step(tok)
	if err != nil {
		t.Fatalf("Step after import: %v", err)
	}
	want, err := donor.Step(tok)
	if err != nil {
		t.Fatalf("donor Step: %v", err)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("post-import logits[%d] = %g, donor %g", i, got.Data[i], want.Data[i])
		}
	}
}

// TestAdoptPagesFailureLeavesRefcounts: every AdoptPages error path
// validates before touching refcounts, so a failed adoption leaks nothing
// — after releasing the span and resetting the sessions the pool is empty.
func TestAdoptPagesFailureLeavesRefcounts(t *testing.T) {
	m := model.New(model.Tiny(), 1)
	pool := NewPagePool(m.Cfg.Dim, m.Cfg.MaxSeq)
	src := NewSessionPooled(m, pool, 0)
	prompt := make([]int, PageRows)
	for i := range prompt {
		prompt[i] = 1 + i%(m.Cfg.Vocab-1)
	}
	if _, err := src.Prefill(prompt); err != nil {
		t.Fatalf("source prefill: %v", err)
	}
	span := src.SharePages(0, PageRows)

	// Mispositioned receiver: the session sits at 1, the span starts at 0.
	dst := NewSessionPooled(m, pool, 0)
	if _, err := dst.Prefill(prompt[:1]); err != nil {
		t.Fatalf("receiver prefill: %v", err)
	}
	before := pool.Stats().PagesInUse
	if err := dst.AdoptPages(span); err == nil {
		t.Fatal("mispositioned AdoptPages succeeded")
	}
	if got := pool.Stats().PagesInUse; got != before {
		t.Fatalf("failed AdoptPages changed pages in use %d -> %d", before, got)
	}
	// Foreign-pool receiver: same shape, different pool.
	other := NewSession(m)
	if err := other.AdoptPages(span); err == nil {
		t.Fatal("cross-pool AdoptPages succeeded")
	}
	if got := pool.Stats().PagesInUse; got != before {
		t.Fatalf("cross-pool AdoptPages changed pages in use %d -> %d", before, got)
	}

	span.Release()
	src.Reset()
	dst.Reset()
	if st := pool.Stats(); st.PagesInUse != 0 {
		t.Fatalf("pool holds %d pages after releasing every holder, want 0", st.PagesInUse)
	}
}

// TestBudgetHighWaterAcrossChurn hammers a budgeted pool with sessions
// that fill to exhaustion and reset, asserting the high-water mark never
// crosses the budget at any point — the smoke-test invariant, pinned
// deterministically.
func TestBudgetHighWaterAcrossChurn(t *testing.T) {
	m := model.New(model.Tiny(), 1)
	pool := tinyPool(5)
	prompt := make([]int, 20)
	for i := range prompt {
		prompt[i] = 1 + i%(m.Cfg.Vocab-1)
	}
	for round := 0; round < 4; round++ {
		sessions := make([]*Session, 0, 4)
		for i := 0; i < 4; i++ {
			s := NewSessionPooled(m, pool, 0)
			if _, err := s.Append(prompt); err != nil {
				if !errors.Is(err, ErrPoolExhausted) {
					t.Fatalf("round %d session %d: %v", round, i, err)
				}
				break
			}
			sessions = append(sessions, s)
		}
		if len(sessions) == 0 {
			t.Fatalf("round %d admitted nothing: budget of 5 pages fits one 4-page sequence", round)
		}
		if st := pool.Stats(); st.HighWaterBytes > st.BudgetBytes {
			t.Fatalf("round %d: high water %d > budget %d", round, st.HighWaterBytes, st.BudgetBytes)
		}
		for _, s := range sessions {
			s.Reset()
		}
	}
	if st := pool.Stats(); st.PagesInUse != 0 {
		t.Fatalf("churn left %d pages in use", st.PagesInUse)
	}
}

package infer

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/parallel"
	"repro/internal/quant"
)

func testPrompts(rng *rand.Rand, n, vocab, maxLen int) [][]int {
	prompts := make([][]int, n)
	for i := range prompts {
		prompts[i] = make([]int, 1+rng.Intn(maxLen))
		for j := range prompts[i] {
			prompts[i][j] = rng.Intn(vocab)
		}
	}
	return prompts
}

// mustGenerate runs Batch.Generate and fails the test on any batch-level
// or per-sequence error.
func mustGenerate(t *testing.T, b *Batch, seed int64, prompts [][]int, n int, temperature float64) [][]int {
	t.Helper()
	tokens, errs, err := b.Generate(seed, prompts, n, temperature)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range errs {
		if e != nil {
			t.Fatalf("sequence %d: %v", i, e)
		}
	}
	return tokens
}

// independentGenerate is the reference semantics of Batch.Generate: each
// sequence decoded by its own serial session with RNG seed+i.
func independentGenerate(t *testing.T, m *model.Model, seed int64, prompts [][]int, n int, temperature float64) [][]int {
	t.Helper()
	out := make([][]int, len(prompts))
	for i, p := range prompts {
		s := NewSession(m)
		toks, err := s.Generate(rand.New(rand.NewSource(seed+int64(i))), p, n, temperature)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = toks
	}
	return out
}

// TestBatchGenerateMatchesIndependentSessions is the batched-decode
// equality property: at every worker count, Batch.Generate must produce
// exactly the tokens of N independent sessions.
func TestBatchGenerateMatchesIndependentSessions(t *testing.T) {
	for _, cfg := range []model.Config{model.Tiny(), model.TinyGPT()} {
		m := model.New(cfg, 1)
		rng := rand.New(rand.NewSource(3))
		prompts := testPrompts(rng, 5, cfg.Vocab, 4)
		const seed, steps, temp = 42, 8, 0.9
		want := independentGenerate(t, m, seed, prompts, steps, temp)
		for _, workers := range []int{1, 2, 3, 8} {
			parallel.SetWorkers(workers)
			b := NewBatch(m, len(prompts))
			got := mustGenerate(t, b, seed, prompts, steps, temp)
			parallel.SetWorkers(0)
			for i := range want {
				for j := range want[i] {
					if got[i][j] != want[i][j] {
						t.Fatalf("%s workers=%d: sequence %d token %d = %d, want %d",
							cfg.Name, workers, i, j, got[i][j], want[i][j])
					}
				}
			}
		}
	}
}

func TestBatchGenerateGreedyPackedMatchesFloat(t *testing.T) {
	// A packed model batch must decode exactly like the float model
	// holding the dequantized weights (greedy, so sampling noise cannot
	// mask a mismatch).
	cfg := model.Tiny()
	m := model.New(cfg, 1)
	ref := m.Clone()
	refLayers := ref.QuantizableLayers()
	var packed []*quant.PackedMatrix
	for i, lr := range m.QuantizableLayers() {
		q := quant.RTN(lr.Linear.P.W, 4, 8, false)
		pm, err := quant.PackMatrix(q)
		if err != nil {
			t.Fatal(err)
		}
		packed = append(packed, pm)
		refLayers[i].Linear.P.W.CopyFrom(q.Dequantize())
	}
	qm, err := model.NewQuantizedModel(m, packed)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	prompts := testPrompts(rng, 4, cfg.Vocab, 3)
	parallel.SetWorkers(4)
	defer parallel.SetWorkers(0)
	want := mustGenerate(t, NewBatch(ref, len(prompts)), 1, prompts, 6, 0)
	got := mustGenerate(t, NewBatch(qm.Model, len(prompts)), 1, prompts, 6, 0)
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("sequence %d token %d: packed %d, float %d", i, j, got[i][j], want[i][j])
			}
		}
	}
}

func TestBatchStepAndReset(t *testing.T) {
	cfg := model.Tiny()
	m := model.New(cfg, 1)
	b := NewBatch(m, 3)
	logits, err := b.Step([]int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range logits {
		if l.Rows != 1 || l.Cols != cfg.Vocab {
			t.Fatalf("session %d logits %dx%d", i, l.Rows, l.Cols)
		}
	}
	if b.Session(0).Pos() != 1 {
		t.Fatal("step did not advance")
	}
	b.Reset()
	if b.Session(0).Pos() != 0 {
		t.Fatal("reset did not rewind")
	}
	if _, err := b.Step([]int{1}); err == nil {
		t.Fatal("expected token-count mismatch error")
	}
	if _, _, err := b.Generate(1, [][]int{{1}, {2}}, 2, 0); err == nil {
		t.Fatal("expected prompt-count mismatch error")
	}
}

// TestBatchGeneratePartialFailure is the per-sequence error contract: a
// failing sequence reports its own error while every other sequence still
// decodes to completion with exactly the tokens of an independent run.
func TestBatchGeneratePartialFailure(t *testing.T) {
	cfg := model.Tiny()
	m := model.New(cfg, 1)
	rng := rand.New(rand.NewSource(11))
	prompts := testPrompts(rng, 4, cfg.Vocab, 3)
	prompts[1] = nil // empty prompt: fails at prefill
	const seed, steps, temp = 5, 6, 0.9

	healthy := []int{0, 2, 3}
	want := make(map[int][]int)
	for _, i := range healthy {
		s := NewSession(m)
		toks, err := s.Generate(rand.New(rand.NewSource(seed+int64(i))), prompts[i], steps, temp)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = toks
	}

	tokens, errs, err := NewBatch(m, len(prompts)).Generate(seed, prompts, steps, temp)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(errs[1], ErrEmptyPrompt) {
		t.Fatalf("sequence 1 error = %v, want ErrEmptyPrompt", errs[1])
	}
	if len(tokens[1]) != 0 {
		t.Fatalf("failed sequence produced tokens %v", tokens[1])
	}
	for _, i := range healthy {
		if errs[i] != nil {
			t.Fatalf("healthy sequence %d: %v", i, errs[i])
		}
		if len(tokens[i]) != steps {
			t.Fatalf("sequence %d generated %d tokens, want %d", i, len(tokens[i]), steps)
		}
		for j := range want[i] {
			if tokens[i][j] != want[i][j] {
				t.Fatalf("sequence %d token %d = %d, want %d", i, j, tokens[i][j], want[i][j])
			}
		}
	}
}

// TestBatchGenerateMidFlightFailure: a sequence that dies mid-decode
// (MaxSeq overflow) keeps its pre-failure tokens and does not disturb the
// others.
func TestBatchGenerateMidFlightFailure(t *testing.T) {
	cfg := model.Tiny()
	m := model.New(cfg, 1)
	long := make([]int, cfg.MaxSeq-2) // room for only 2 more positions
	for i := range long {
		long[i] = 1 + i%(cfg.Vocab-1)
	}
	prompts := [][]int{{1, 2}, long}
	const steps = 6
	tokens, errs, err := NewBatch(m, len(prompts)).Generate(3, prompts, steps, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if errs[0] != nil || len(tokens[0]) != steps {
		t.Fatalf("short sequence: errs=%v tokens=%d", errs[0], len(tokens[0]))
	}
	if errs[1] == nil {
		t.Fatal("overlong sequence must report a MaxSeq error")
	}
	if len(tokens[1]) == 0 || len(tokens[1]) >= steps {
		t.Fatalf("overlong sequence kept %d tokens, want partial output", len(tokens[1]))
	}
}

func TestBatchKVQuantMatchesKVQuantSessions(t *testing.T) {
	cfg := model.Tiny()
	m := model.New(cfg, 1)
	rng := rand.New(rand.NewSource(7))
	prompts := testPrompts(rng, 3, cfg.Vocab, 3)
	want := make([][]int, len(prompts))
	for i, p := range prompts {
		s := NewSessionKVQuant(m, 4)
		toks, err := s.Generate(rand.New(rand.NewSource(9+int64(i))), p, 5, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = toks
	}
	parallel.SetWorkers(3)
	defer parallel.SetWorkers(0)
	got := mustGenerate(t, NewBatchKVQuant(m, len(prompts), 4), 9, prompts, 5, 0.8)
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("sequence %d token %d: batch %d, serial %d", i, j, got[i][j], want[i][j])
			}
		}
	}
}

package infer

import (
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/parallel"
	"repro/internal/quant"
)

func testPrompts(rng *rand.Rand, n, vocab, maxLen int) [][]int {
	prompts := make([][]int, n)
	for i := range prompts {
		prompts[i] = make([]int, 1+rng.Intn(maxLen))
		for j := range prompts[i] {
			prompts[i][j] = rng.Intn(vocab)
		}
	}
	return prompts
}

// independentGenerate is the reference semantics of Batch.Generate: each
// sequence decoded by its own serial session with RNG seed+i.
func independentGenerate(t *testing.T, m *model.Model, seed int64, prompts [][]int, n int, temperature float64) [][]int {
	t.Helper()
	out := make([][]int, len(prompts))
	for i, p := range prompts {
		s := NewSession(m)
		toks, err := s.Generate(rand.New(rand.NewSource(seed+int64(i))), p, n, temperature)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = toks
	}
	return out
}

// TestBatchGenerateMatchesIndependentSessions is the batched-decode
// equality property: at every worker count, Batch.Generate must produce
// exactly the tokens of N independent sessions.
func TestBatchGenerateMatchesIndependentSessions(t *testing.T) {
	for _, cfg := range []model.Config{model.Tiny(), model.TinyGPT()} {
		m := model.New(cfg, 1)
		rng := rand.New(rand.NewSource(3))
		prompts := testPrompts(rng, 5, cfg.Vocab, 4)
		const seed, steps, temp = 42, 8, 0.9
		want := independentGenerate(t, m, seed, prompts, steps, temp)
		for _, workers := range []int{1, 2, 3, 8} {
			parallel.SetWorkers(workers)
			b := NewBatch(m, len(prompts))
			got, err := b.Generate(seed, prompts, steps, temp)
			parallel.SetWorkers(0)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", cfg.Name, workers, err)
			}
			for i := range want {
				for j := range want[i] {
					if got[i][j] != want[i][j] {
						t.Fatalf("%s workers=%d: sequence %d token %d = %d, want %d",
							cfg.Name, workers, i, j, got[i][j], want[i][j])
					}
				}
			}
		}
	}
}

func TestBatchGenerateGreedyPackedMatchesFloat(t *testing.T) {
	// A packed model batch must decode exactly like the float model
	// holding the dequantized weights (greedy, so sampling noise cannot
	// mask a mismatch).
	cfg := model.Tiny()
	m := model.New(cfg, 1)
	ref := m.Clone()
	refLayers := ref.QuantizableLayers()
	var packed []*quant.PackedMatrix
	for i, lr := range m.QuantizableLayers() {
		q := quant.RTN(lr.Linear.P.W, 4, 8, false)
		pm, err := quant.PackMatrix(q)
		if err != nil {
			t.Fatal(err)
		}
		packed = append(packed, pm)
		refLayers[i].Linear.P.W.CopyFrom(q.Dequantize())
	}
	qm, err := model.NewQuantizedModel(m, packed)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	prompts := testPrompts(rng, 4, cfg.Vocab, 3)
	parallel.SetWorkers(4)
	defer parallel.SetWorkers(0)
	want, err := NewBatch(ref, len(prompts)).Generate(1, prompts, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewBatch(qm.Model, len(prompts)).Generate(1, prompts, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("sequence %d token %d: packed %d, float %d", i, j, got[i][j], want[i][j])
			}
		}
	}
}

func TestBatchStepAndReset(t *testing.T) {
	cfg := model.Tiny()
	m := model.New(cfg, 1)
	b := NewBatch(m, 3)
	logits, err := b.Step([]int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range logits {
		if l.Rows != 1 || l.Cols != cfg.Vocab {
			t.Fatalf("session %d logits %dx%d", i, l.Rows, l.Cols)
		}
	}
	if b.Session(0).Pos() != 1 {
		t.Fatal("step did not advance")
	}
	b.Reset()
	if b.Session(0).Pos() != 0 {
		t.Fatal("reset did not rewind")
	}
	if _, err := b.Step([]int{1}); err == nil {
		t.Fatal("expected token-count mismatch error")
	}
	if _, err := b.Generate(1, [][]int{{1}, {}, {2}}, 2, 0); err == nil {
		t.Fatal("expected empty-prompt error")
	}
}

func TestBatchKVQuantMatchesKVQuantSessions(t *testing.T) {
	cfg := model.Tiny()
	m := model.New(cfg, 1)
	rng := rand.New(rand.NewSource(7))
	prompts := testPrompts(rng, 3, cfg.Vocab, 3)
	want := make([][]int, len(prompts))
	for i, p := range prompts {
		s := NewSessionKVQuant(m, 4)
		toks, err := s.Generate(rand.New(rand.NewSource(9+int64(i))), p, 5, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = toks
	}
	parallel.SetWorkers(3)
	defer parallel.SetWorkers(0)
	got, err := NewBatchKVQuant(m, len(prompts), 4).Generate(9, prompts, 5, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("sequence %d token %d: batch %d, serial %d", i, j, got[i][j], want[i][j])
			}
		}
	}
}

package infer

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/train"
)

func tinyModel(t *testing.T) *model.Model {
	t.Helper()
	src := data.NewC4Like(32)
	m := model.New(model.Tiny(), 1)
	train.Train(m, src, train.Config{Steps: 60, BatchSize: 2, SeqLen: 16, LR: 3e-3, Warmup: 10, ClipNorm: 1, Seed: 1})
	return m
}

func TestStepMatchesBatchForward(t *testing.T) {
	// The defining correctness property of KV-cached decoding: logits at
	// every position must match the batch forward pass bit-for-bit (same
	// float64 operations up to associativity; tolerance covers reordering).
	m := tinyModel(t)
	src := data.NewC4Like(32)
	ids := src.Generate(rand.New(rand.NewSource(2)), 12)

	batchLogits := m.Forward(ids)

	s := NewSession(m)
	for pos, tok := range ids {
		stepLogits, err := s.Step(tok)
		if err != nil {
			t.Fatal(err)
		}
		brow := batchLogits.Row(pos)
		srow := stepLogits.Row(0)
		for j := range brow {
			if math.Abs(brow[j]-srow[j]) > 1e-9 {
				t.Fatalf("pos %d logit %d: batch %v vs step %v", pos, j, brow[j], srow[j])
			}
		}
	}
}

func TestResetStartsFresh(t *testing.T) {
	m := tinyModel(t)
	s := NewSession(m)
	first, err := s.Step(5)
	if err != nil {
		t.Fatal(err)
	}
	// Step's logits are arena-owned and overwritten by the next Step, so
	// retain them across the rest of the sequence explicitly.
	first = first.Clone()
	if _, err := s.Step(7); err != nil {
		t.Fatal(err)
	}
	s.Reset()
	if s.Pos() != 0 {
		t.Fatal("Reset must zero the position")
	}
	again, err := s.Step(5)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Equal(again, 0) {
		t.Fatal("post-reset step must match a fresh session")
	}
}

func TestStepRejectsOverflow(t *testing.T) {
	m := model.New(model.Tiny(), 1)
	s := NewSession(m)
	for i := 0; i < m.Cfg.MaxSeq; i++ {
		if _, err := s.Step(1); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if _, err := s.Step(1); err == nil {
		t.Fatal("expected overflow error past MaxSeq")
	}
}

func TestPrefillEquivalentToSteps(t *testing.T) {
	m := tinyModel(t)
	prompt := []int{3, 1, 4, 1, 5}
	a := NewSession(m)
	la, err := a.Prefill(prompt)
	if err != nil {
		t.Fatal(err)
	}
	b := NewSession(m)
	var lb = la
	for _, tok := range prompt {
		lb, err = b.Step(tok)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !la.Equal(lb, 0) {
		t.Fatal("Prefill must equal sequential Steps")
	}
}

func TestGenerateGreedyDeterministic(t *testing.T) {
	m := tinyModel(t)
	a := NewSession(m)
	ga, err := a.Generate(rand.New(rand.NewSource(1)), []int{2, 3}, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	b := NewSession(m)
	gb, err := b.Generate(rand.New(rand.NewSource(99)), []int{2, 3}, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ga {
		if ga[i] != gb[i] {
			t.Fatal("greedy generation must not depend on the rng")
		}
	}
	if len(ga) != 8 {
		t.Fatalf("generated %d tokens", len(ga))
	}
}

func TestGenerateEmptyPromptErrors(t *testing.T) {
	m := model.New(model.Tiny(), 1)
	s := NewSession(m)
	if _, err := s.Generate(rand.New(rand.NewSource(1)), nil, 4, 0); !errors.Is(err, ErrEmptyPrompt) {
		t.Fatalf("empty prompt error = %v, want ErrEmptyPrompt", err)
	}
	if _, err := s.Prefill([]int{}); !errors.Is(err, ErrEmptyPrompt) {
		t.Fatalf("Prefill([]) error = %v, want ErrEmptyPrompt", err)
	}
}

func TestSampleLogitsGreedy(t *testing.T) {
	if SampleLogits(rand.New(rand.NewSource(1)), []float64{0.1, 5, -3}, 0) != 1 {
		t.Fatal("greedy must pick the argmax")
	}
}

func TestSampleLogitsTemperatureDistribution(t *testing.T) {
	// At temperature 1, a logit gap of ln(9) gives a 9:1 preference.
	rng := rand.New(rand.NewSource(3))
	logits := []float64{0, math.Log(9)}
	counts := [2]int{}
	for i := 0; i < 4000; i++ {
		counts[SampleLogits(rng, logits, 1)]++
	}
	frac := float64(counts[1]) / 4000
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("sampled the 0.9-probability token %.3f of the time", frac)
	}
	// Very low temperature approaches greedy.
	cold := 0
	for i := 0; i < 200; i++ {
		if SampleLogits(rng, logits, 0.05) == 1 {
			cold++
		}
	}
	if cold < 198 {
		t.Fatalf("cold sampling picked argmax only %d/200 times", cold)
	}
}

func TestGenerationFromQuantizedModelStaysInVocab(t *testing.T) {
	m := tinyModel(t)
	s := NewSession(m)
	out, err := s.Generate(rand.New(rand.NewSource(4)), []int{1}, 20, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range out {
		if tok < 0 || tok >= m.Cfg.Vocab {
			t.Fatalf("token %d out of vocab", tok)
		}
	}
}

// Batched incremental decoding: N KV-cached sessions advancing in
// lockstep, fanned across workers at every step. Each session runs on its
// own model view (model.Model.View), so all sessions share one resident
// copy of the weights — float or packed — while owning their forward
// scratch state and KV caches. With per-sequence RNG streams the batched
// output is bit-identical to running the N sessions independently,
// regardless of the worker count (the determinism contract of
// internal/parallel).
package infer

import (
	"fmt"
	"math/rand"

	"repro/internal/model"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// Batch runs N concurrent KV-cached decoding sessions over shared model
// weights. Construct with NewBatch, feed with Prefill/Step, or use
// Generate for the full sample-and-feed loop.
type Batch struct {
	sessions []*Session
}

// NewBatch creates n decoding sessions over views of m. The weights are
// shared; each session owns its caches, so the sessions may advance
// concurrently.
func NewBatch(m *model.Model, n int) *Batch {
	if n <= 0 {
		panic(fmt.Sprintf("infer: batch of %d sessions", n))
	}
	b := &Batch{sessions: make([]*Session, n)}
	for i, v := range m.Views(n) {
		b.sessions[i] = NewSession(v)
	}
	return b
}

// NewBatchKVQuant is NewBatch with each session's KV cache stored at the
// given bit width.
func NewBatchKVQuant(m *model.Model, n, kvBits int) *Batch {
	b := NewBatch(m, n)
	for _, s := range b.sessions {
		s.kvQuant = newKVQuantizer(kvBits)
	}
	return b
}

// Size returns the number of sessions in the batch.
func (b *Batch) Size() int { return len(b.sessions) }

// Session returns the i-th underlying session (for inspection; stepping it
// directly while also using the batch APIs is the caller's responsibility).
func (b *Batch) Session(i int) *Session { return b.sessions[i] }

// Reset clears every session's cache for a new batch of sequences.
func (b *Batch) Reset() {
	for _, s := range b.sessions {
		s.Reset()
	}
}

// Prefill consumes one prompt per session concurrently and returns each
// session's last-token logits. Any failing sequence (including an empty
// prompt, ErrEmptyPrompt) fails the whole call with the lowest-index
// error; use Generate for per-sequence error reporting.
func (b *Batch) Prefill(prompts [][]int) ([]*tensor.Mat, error) {
	if len(prompts) != len(b.sessions) {
		return nil, fmt.Errorf("infer: %d prompts for a batch of %d sessions", len(prompts), len(b.sessions))
	}
	logits := make([]*tensor.Mat, len(b.sessions))
	var fe parallel.FirstError
	parallel.ForEach(len(b.sessions), func(i int) {
		l, err := b.sessions[i].Prefill(prompts[i])
		logits[i] = l
		fe.Set(i, err)
	})
	if err := fe.Err(); err != nil {
		return nil, err
	}
	return logits, nil
}

// Step consumes one token per session concurrently (the per-step fan-out)
// and returns each session's next-token logits.
func (b *Batch) Step(tokens []int) ([]*tensor.Mat, error) {
	if len(tokens) != len(b.sessions) {
		return nil, fmt.Errorf("infer: %d tokens for a batch of %d sessions", len(tokens), len(b.sessions))
	}
	logits := make([]*tensor.Mat, len(b.sessions))
	var fe parallel.FirstError
	parallel.ForEach(len(b.sessions), func(i int) {
		l, err := b.sessions[i].Step(tokens[i])
		logits[i] = l
		fe.Set(i, err)
	})
	if err := fe.Err(); err != nil {
		return nil, err
	}
	return logits, nil
}

// Generate samples n tokens per sequence after the prompts at the given
// temperature (0 = greedy), advancing all sequences in lockstep with a
// per-step fan-out across workers. Sequence i draws from its own RNG
// stream seeded seed+i, so the output is bit-identical to running
// Session.Generate independently per sequence with rand.NewSource(seed+i)
// — at any worker count.
//
// Errors are per sequence: errs[i] holds sequence i's failure (e.g.
// ErrEmptyPrompt, MaxSeq overflow) and tokens[i] the tokens it completed
// before failing, while every other sequence decodes to the end
// unaffected. The final error is reserved for batch-level misuse (prompt
// count mismatch). Previously one failing sequence discarded every other
// sequence's output.
func (b *Batch) Generate(seed int64, prompts [][]int, n int, temperature float64) (tokens [][]int, errs []error, err error) {
	if len(prompts) != len(b.sessions) {
		return nil, nil, fmt.Errorf("infer: %d prompts for a batch of %d sessions", len(prompts), len(b.sessions))
	}
	errs = make([]error, len(b.sessions))
	logits := make([]*tensor.Mat, len(b.sessions))
	parallel.ForEach(len(b.sessions), func(i int) {
		logits[i], errs[i] = b.sessions[i].Prefill(prompts[i])
	})
	rngs := make([]*rand.Rand, len(b.sessions))
	samplers := make([]*Sampler, len(b.sessions))
	for i := range rngs {
		rngs[i] = rand.New(rand.NewSource(seed + int64(i)))
		samplers[i] = &Sampler{}
	}
	live := func() int {
		alive := 0
		for _, e := range errs {
			if e == nil {
				alive++
			}
		}
		return alive
	}
	tokens = make([][]int, len(b.sessions))
	for t := 0; t < n && live() > 0; t++ {
		last := t == n-1
		parallel.ForEach(len(b.sessions), func(i int) {
			if errs[i] != nil {
				return
			}
			tok := samplers[i].Sample(rngs[i], logits[i].Row(0), temperature)
			tokens[i] = append(tokens[i], tok)
			if last {
				return
			}
			logits[i], errs[i] = b.sessions[i].Step(tok)
		})
	}
	return tokens, errs, nil
}

package harness

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/eval"
	"repro/internal/model"
)

// groupSizeFor scales the paper's group size 128 (on d_model 4096) to the
// nano models.
func groupSizeFor(cfg model.Config) int {
	gs := cfg.Dim / 3
	if gs < 8 {
		gs = 8
	}
	return roundPow2(gs)
}

func roundPow2(v int) int {
	p := 8
	for p*2 <= v {
		p *= 2
	}
	return p
}

// aptqOptions returns the standard APTQ options for a model config at
// ratio R.
func (e *Env) aptqOptions(cfg model.Config, ratio float64) core.Options {
	opts := core.DefaultOptions(ratio)
	opts.GroupSize = groupSizeFor(cfg)
	opts.BlockSize = opts.GroupSize
	return opts
}

// pplPair evaluates a model on the fixed C4-like and Wiki-like eval sets.
func (e *Env) pplPair(m *model.Model, cfg model.Config) (c4, wiki float64) {
	return eval.PerplexityOnSegments(m, e.EvalSegments(e.C4, cfg)),
		eval.PerplexityOnSegments(m, e.EvalSegments(e.Wiki, cfg))
}

// Table1 reproduces Table 1: perplexity of quantized nano-7B on the C4-like
// and WikiText-like corpora for FP, GPTQ, OWQ, LLM-QAT, PB-LLM and APTQ at
// 4.0 / 3.5 / 3.0 average bits.
func (e *Env) Table1() (*Table, error) {
	cfg := model.Nano7B()
	m := e.Model(cfg)
	calib := e.Calibration(cfg)
	gs := groupSizeFor(cfg)
	st, err := core.CollectStats(m, calib, core.CollectOptions{Probes: 4, Seed: 1})
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "table1",
		Title:   "Perplexity of quantized nano-7B on C4-like and WikiText-like corpora",
		Columns: []string{"Method", "Avg bit", "C4", "WikiText-2"},
		Notes: []string{
			"substrate: nano-7B on synthetic corpora (DESIGN.md §2); compare shapes, not absolute values",
			"PB-LLM avg bits follow this repo's accounting (16-bit salient + 1-bit binarized)",
		},
	}
	addRow := func(method string, avgBits float64, m2 *model.Model, cfg model.Config) {
		c4, wiki := e.pplPair(m2, cfg)
		t.AddRow(method, fmt.Sprintf("%.1f", avgBits), fmt.Sprintf("%.2f", c4), fmt.Sprintf("%.2f", wiki))
	}

	addRow("FP (float64)", 16, m, cfg)

	g, err := baselines.GPTQ(m, st, 4, gs)
	if err != nil {
		return nil, err
	}
	addRow(g.Method, g.AvgBits, g.Model, cfg)

	owq, err := baselines.OWQ(m, st, 4, gs, 0.01)
	if err != nil {
		return nil, err
	}
	addRow(owq.Method, owq.AvgBits, owq.Model, cfg)

	qat, err := baselines.QAT(m, e.C4, e.qatConfig(4, gs))
	if err != nil {
		return nil, err
	}
	addRow(qat.Method, qat.AvgBits, qat.Model, cfg)

	pb, err := baselines.PBLLM(m, st, 0.2, gs)
	if err != nil {
		return nil, err
	}
	addRow(pb.Method, pb.AvgBits, pb.Model, cfg)

	for _, ratio := range []float64{1.0, 0.75, 0.5} {
		res, err := core.QuantizeWithStats(m, st, calib, e.aptqOptions(cfg, ratio))
		if err != nil {
			return nil, err
		}
		name := "APTQ"
		if ratio < 1 {
			name = fmt.Sprintf("APTQ-%d%%", int(ratio*100))
		}
		addRow(name, res.AvgBits, res.Model, cfg)
	}
	return t, nil
}

func (e *Env) qatConfig(bits, gs int) baselines.QATConfig {
	qc := baselines.DefaultQATConfig(bits)
	qc.GroupSize = gs
	if e.Scale == Quick {
		qc.Steps = 30
	}
	return qc
}

// Figure2 reproduces Figure 2: APTQ perplexity on the C4-like corpus as a
// function of the 4-bit ratio R, with the FP / OWQ / GPTQ / LLM-QAT
// reference levels.
func (e *Env) Figure2() (*Table, []float64, []float64, error) {
	cfg := model.Nano7B()
	m := e.Model(cfg)
	calib := e.Calibration(cfg)
	gs := groupSizeFor(cfg)
	st, err := core.CollectStats(m, calib, core.CollectOptions{Probes: 4, Seed: 1})
	if err != nil {
		return nil, nil, nil, err
	}
	segs := e.EvalSegments(e.C4, cfg)

	t := &Table{
		ID:      "figure2",
		Title:   "APTQ perplexity vs 4-bit ratio R on C4-like corpus (nano-7B)",
		Columns: []string{"Series", "Ratio %", "Avg bit", "C4 PPL"},
	}
	var xs, ys []float64
	for _, ratio := range []float64{0.5, 0.6, 0.7, 0.75, 0.8, 0.9, 1.0} {
		res, err := core.QuantizeWithStats(m, st, calib, e.aptqOptions(cfg, ratio))
		if err != nil {
			return nil, nil, nil, err
		}
		ppl := eval.PerplexityOnSegments(res.Model, segs)
		t.AddRow("APTQ", fmt.Sprintf("%.0f", ratio*100), fmt.Sprintf("%.1f", res.AvgBits), fmt.Sprintf("%.2f", ppl))
		xs = append(xs, ratio*100)
		ys = append(ys, ppl)
	}
	t.AddRow("FP (float64)", "-", "16.0", fmt.Sprintf("%.2f", eval.PerplexityOnSegments(m, segs)))
	g, err := baselines.GPTQ(m, st, 4, gs)
	if err != nil {
		return nil, nil, nil, err
	}
	t.AddRow("GPTQ-4bit", "-", "4.0", fmt.Sprintf("%.2f", eval.PerplexityOnSegments(g.Model, segs)))
	owq, err := baselines.OWQ(m, st, 4, gs, 0.01)
	if err != nil {
		return nil, nil, nil, err
	}
	t.AddRow("OWQ-4bit", "-", fmt.Sprintf("%.1f", owq.AvgBits), fmt.Sprintf("%.2f", eval.PerplexityOnSegments(owq.Model, segs)))
	qat, err := baselines.QAT(m, e.C4, e.qatConfig(4, gs))
	if err != nil {
		return nil, nil, nil, err
	}
	t.AddRow("LLM-QAT-4bit", "-", "4.0", fmt.Sprintf("%.2f", eval.PerplexityOnSegments(qat.Model, segs)))
	return t, xs, ys, nil
}

// Table2 reproduces Table 2: zero-shot accuracy of quantized nano-7B and
// nano-13B on the five-task suite for the full method roster.
func (e *Env) Table2() (*Table, error) {
	t := &Table{
		ID:    "table2",
		Title: "Zero-shot accuracy (%) on PIQA/Hellaswag/Arc-E/Arc-C/WinoGrande stand-ins",
		Columns: []string{"Model", "Method", "Avg bit",
			"PIQA", "Hellaswag", "Arc-E", "Arc-C", "WinoGrande", "Acc%"},
		Notes: []string{"tasks are seeded synthetic multiple-choice suites scored by length-normalized log-likelihood (DESIGN.md §2)"},
	}
	for _, cfg := range []model.Config{model.Nano7B(), model.Nano13B()} {
		if err := e.table2ForModel(t, cfg); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func (e *Env) table2ForModel(t *Table, cfg model.Config) error {
	m := e.Model(cfg)
	calib := e.Calibration(cfg)
	gs := groupSizeFor(cfg)
	st, err := core.CollectStats(m, calib, core.CollectOptions{Probes: 4, Seed: 1})
	if err != nil {
		return err
	}
	tasks := e.ZeroShotSuite(cfg)

	addRow := func(method string, avgBits float64, qm *model.Model) {
		r := eval.EvaluateSuite(qm, tasks)
		cells := []string{cfg.Name, method, fmt.Sprintf("%.1f", avgBits)}
		for _, a := range r.Accuracies {
			cells = append(cells, fmt.Sprintf("%.1f", a*100))
		}
		cells = append(cells, fmt.Sprintf("%.2f", r.Mean()*100))
		t.AddRow(cells...)
	}

	addRow("FP (float64)", 16, m)
	addRow("RTN", 4, baselines.RTN(m, 4, gs).Model)

	sq, err := baselines.SmoothQuant(m, st, 4, gs, 0.5)
	if err != nil {
		return err
	}
	addRow("SmoothQuant", 4, sq.Model)

	addRow("FPQ", 4, baselines.FPQ(m, gs).Model)

	qat, err := baselines.QAT(m, e.C4, e.qatConfig(4, gs))
	if err != nil {
		return err
	}
	addRow("LLM-QAT", 4, qat.Model)

	g, err := baselines.GPTQ(m, st, 4, gs)
	if err != nil {
		return err
	}
	addRow("GPTQ", 4, g.Model)

	for _, frac := range []float64{0.3, 0.1} {
		pb, err := baselines.PBLLM(m, st, frac, gs)
		if err != nil {
			return err
		}
		addRow(pb.Method, pb.AvgBits, pb.Model)
	}

	for _, ratio := range []float64{1.0, 0.9, 0.8, 0.75, 0.7, 0.6, 0.5} {
		res, err := core.QuantizeWithStats(m, st, calib, e.aptqOptions(cfg, ratio))
		if err != nil {
			return err
		}
		name := "APTQ"
		if ratio < 1 {
			name = fmt.Sprintf("APTQ-%d%%", int(ratio*100))
		}
		addRow(name, res.AvgBits, res.Model)
	}
	return nil
}

// Table3 reproduces Table 3: the allocation ablation — APTQ's
// sensitivity-ordered mixed precision vs manual whole-block quantization at
// matched average bits.
func (e *Env) Table3() (*Table, error) {
	cfg := model.Nano7B()
	m := e.Model(cfg)
	calib := e.Calibration(cfg)
	st, err := core.CollectStats(m, calib, core.CollectOptions{Probes: 4, Seed: 1})
	if err != nil {
		return nil, err
	}
	segs := e.EvalSegments(e.C4, cfg)

	t := &Table{
		ID:      "table3",
		Title:   "Ablation: APTQ vs manual block-wise mixed precision (nano-7B, C4-like PPL)",
		Columns: []string{"Method", "Ratio of 4-bit", "Avg bit", "Perplexity"},
		Notes:   []string{"manual block-wise rounds to whole transformer blocks, so its achieved ratio is block-quantized"},
	}
	for _, ratio := range []float64{0.75, 0.5} {
		manual := e.aptqOptions(cfg, ratio)
		manual.Allocator = core.ManualBlockwise
		mres, err := core.QuantizeWithStats(m, st, calib, manual)
		if err != nil {
			return nil, err
		}
		t.AddRow("Manual Block-wise", fmt.Sprintf("%.0f%%", mres.Allocation.Ratio()*100),
			fmt.Sprintf("%.1f", mres.AvgBits),
			fmt.Sprintf("%.2f", eval.PerplexityOnSegments(mres.Model, segs)))

		ares, err := core.QuantizeWithStats(m, st, calib, e.aptqOptions(cfg, ratio))
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("APTQ-%d%%", int(ratio*100)), fmt.Sprintf("%.0f%%", ares.Allocation.Ratio()*100),
			fmt.Sprintf("%.1f", ares.AvgBits),
			fmt.Sprintf("%.2f", eval.PerplexityOnSegments(ares.Model, segs)))
	}
	return t, nil
}

// Figure1Profile reproduces the sensitivity inset of Figure 1: per-block
// average Hessian trace for attention Q, attention V and MLP weights.
func (e *Env) Figure1Profile() (*Table, error) {
	cfg := model.Nano7B()
	m := e.Model(cfg)
	calib := e.Calibration(cfg)
	st, err := core.CollectStats(m, calib, core.CollectOptions{Probes: 4, Seed: 1})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "figure1",
		Title:   "Per-block sensitivity profile (normalized avg Hessian trace x quant perturbation)",
		Columns: []string{"Block", "Attn_Q_Weight", "Attn_V_Weight", "MLP_Weight"},
	}
	sens := st.Sensitivities(core.DefaultOptions(1).Metric, 2, groupSizeFor(cfg), 1)
	norm := core.NormalizeScores(sens)
	byRole := map[string][]float64{}
	for _, s := range norm {
		byRole[s.Role] = append(byRole[s.Role], s.Score)
	}
	mlp := make([]float64, cfg.Layers)
	for _, role := range []string{"gate_proj", "up_proj", "down_proj"} {
		for b, v := range byRole[role] {
			mlp[b] += v / 3
		}
	}
	for b := 0; b < cfg.Layers; b++ {
		t.AddRow(fmt.Sprintf("%d", b),
			fmt.Sprintf("%.3f", byRole["q_proj"][b]),
			fmt.Sprintf("%.3f", byRole["v_proj"][b]),
			fmt.Sprintf("%.3f", mlp[b]))
	}
	return t, nil
}

// RunAll executes every experiment, fanned across the environment's worker
// budget, and returns the artifacts in paper order. Figure 2's chart data
// is folded into its table.
func (e *Env) RunAll() ([]*Table, error) {
	return e.RunGrid(Experiments())
}

// ensure data package stays linked for doc references.
var _ = data.StandardTasks

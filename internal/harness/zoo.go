// Package harness wires the whole reproduction together: it pretrains and
// caches the nano LLaMA stand-ins, holds the fixed evaluation sets, runs
// each of the paper's experiments (Tables 1-3, Figures 1-2, plus the
// repository's own ablations) and renders the results as text tables — the
// same rows and series the paper reports.
package harness

import (
	"math/rand"
	"sync"

	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/train"
)

// Scale selects evaluation effort. Quick keeps unit tests and -short
// benchmarks fast; Full is the publication-quality setting used by
// cmd/aptq-experiments.
type Scale int

// Scales.
const (
	Quick Scale = iota
	Full
)

// evalBudget returns (ppl segments, zero-shot items per task) for a scale.
func (s Scale) evalBudget() (segments, items int) {
	if s == Full {
		return 200, 250
	}
	return 60, 40
}

// calibBudget returns (calibration segments, segment length).
func (s Scale) calibBudget() (count, seqLen int) {
	if s == Full {
		return 32, 48
	}
	return 16, 32
}

// Env is the shared experimental environment: trained models, corpora and
// fixed evaluation sets. Construct once per process via NewEnv; models are
// trained lazily on first use and cached.
type Env struct {
	Scale Scale

	// Workers bounds how many experiments of a grid run concurrently
	// (RunAll / RunAblations / RunGrid); <= 0 uses the process default
	// from internal/parallel.
	Workers int

	C4   data.Source
	Wiki data.Source
	// TrainMix is the pretraining corpus (C4-like + Wiki-like mixture).
	TrainMix data.Source

	mu     sync.Mutex
	models map[string]*model.Model
	// parent, when non-nil, marks this Env as a Fork: model cache misses
	// delegate to the parent (which trains once, under its own lock) and
	// clone the result, so N concurrent forks never pretrain N times.
	parent *Env
}

// NewEnv constructs the environment at the given scale.
func NewEnv(scale Scale) *Env {
	vocab := 128
	c4 := data.NewC4Like(vocab)
	wiki := data.NewWikiLike(vocab)
	return &Env{
		Scale:    scale,
		C4:       c4,
		Wiki:     wiki,
		TrainMix: data.NewMixture(48, c4, wiki),
		models:   make(map[string]*model.Model),
	}
}

// trainRecipe returns the pretraining configuration for a model config at
// the environment's scale.
func (e *Env) trainRecipe(cfg model.Config) train.Config {
	tc := train.DefaultConfig()
	if e.Scale == Quick {
		tc.Steps = 300
	}
	if cfg.Name == "nano-13B" {
		// The larger stand-in gets proportionally more optimization, as
		// 13B did relative to 7B.
		tc.Steps = tc.Steps * 5 / 4
	}
	tc.SeqLen = cfg.MaxSeq * 3 / 4
	return tc
}

// Model returns the pretrained model for cfg, training it on first use.
// The returned model is shared; callers must not mutate it (quantizers
// clone internally). On a forked Env, a cache miss trains (once) in the
// parent and caches a clone locally.
func (e *Env) Model(cfg model.Config) *model.Model {
	e.mu.Lock()
	defer e.mu.Unlock()
	if m, ok := e.models[cfg.Name]; ok {
		return m
	}
	var m *model.Model
	if e.parent != nil {
		// Lock order is always fork → parent; the parent never locks a
		// fork, so this cannot deadlock.
		m = e.parent.Model(cfg).Clone()
	} else {
		m = model.New(cfg, 1)
		train.Train(m, e.TrainMix, e.trainRecipe(cfg))
	}
	e.models[cfg.Name] = m
	return m
}

// Fork returns an Env that shares e's corpora, scale and worker budget but
// owns deep clones of every model trained so far. Experiments mutate model
// forward caches (and gradients, during Fisher collection), so two
// experiments must never share a model instance; forking before each
// concurrent experiment makes the grid race-free. A model the parent has
// not trained yet is trained in the parent on first use (see Model), so
// concurrent forks requesting the same config share one pretraining run
// and end up with identical weights.
func (e *Env) Fork() *Env {
	e.mu.Lock()
	defer e.mu.Unlock()
	models := make(map[string]*model.Model, len(e.models))
	for name, m := range e.models {
		models[name] = m.Clone()
	}
	root := e
	if e.parent != nil {
		// Forks of forks delegate to the root Env, so transient forks can
		// be garbage-collected and all training funnels to one cache.
		root = e.parent
	}
	return &Env{
		Scale:    e.Scale,
		Workers:  e.Workers,
		C4:       e.C4,
		Wiki:     e.Wiki,
		TrainMix: e.TrainMix,
		models:   models,
		parent:   root,
	}
}

// SetModel injects a pre-trained model (used by cmd tools that load
// checkpoints, and by tests).
func (e *Env) SetModel(m *model.Model) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.models[m.Cfg.Name] = m
}

// Calibration returns the calibration set for a model config, sampled from
// the C4-like corpus as in the paper.
func (e *Env) Calibration(cfg model.Config) *data.CalibrationSet {
	count, seqLen := e.Scale.calibBudget()
	if seqLen > cfg.MaxSeq {
		seqLen = cfg.MaxSeq
	}
	return data.SampleCalibration(rand.New(rand.NewSource(42)), e.C4, count, seqLen)
}

// EvalSegments returns the fixed held-out evaluation segments for a source.
func (e *Env) EvalSegments(src data.Source, cfg model.Config) [][]int {
	segments, _ := e.Scale.evalBudget()
	seqLen := cfg.MaxSeq
	rng := rand.New(rand.NewSource(4242))
	out := make([][]int, segments)
	for i := range out {
		out[i] = src.Generate(rng, seqLen)
	}
	return out
}

// ZeroShotSuite returns the five fixed tasks for a model config.
func (e *Env) ZeroShotSuite(cfg model.Config) []data.Task {
	_, items := e.Scale.evalBudget()
	rng := rand.New(rand.NewSource(777))
	var tasks []data.Task
	for _, spec := range data.StandardTasks() {
		tasks = append(tasks, data.GenerateTask(rng, e.C4, spec, items))
	}
	return tasks
}

package harness

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/model"
)

// AblationProbes studies the Q/K Jacobian probe count (experiment A1):
// more probes sharpen the attention-aware Hessian estimate of eqs. (12/13).
// Reported at a low-bit operating point where Hessian quality matters.
func (e *Env) AblationProbes() (*Table, error) {
	cfg := model.Nano7B()
	m := e.Model(cfg)
	calib := e.Calibration(cfg)
	segs := e.EvalSegments(e.C4, cfg)

	t := &Table{
		ID:      "ablation-probes",
		Title:   "Probe count vs APTQ quality (nano-7B, R=50%, C4-like PPL)",
		Columns: []string{"Probes", "C4 PPL"},
	}
	for _, probes := range []int{1, 2, 4, 8, 16} {
		opts := e.aptqOptions(cfg, 0.5)
		opts.Probes = probes
		st, err := core.CollectStats(m, calib, core.CollectOptions{Probes: probes, Seed: 1})
		if err != nil {
			return nil, err
		}
		res, err := core.QuantizeWithStats(m, st, calib, opts)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", probes), fmt.Sprintf("%.3f", eval.PerplexityOnSegments(res.Model, segs)))
	}
	return t, nil
}

// AblationGroupSize sweeps the quantization group size (experiment A2):
// smaller groups adapt better but cost more scale/zero metadata.
func (e *Env) AblationGroupSize() (*Table, error) {
	cfg := model.Nano7B()
	m := e.Model(cfg)
	calib := e.Calibration(cfg)
	segs := e.EvalSegments(e.C4, cfg)
	st, err := core.CollectStats(m, calib, core.CollectOptions{Probes: 4, Seed: 1})
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "ablation-groupsize",
		Title:   "Group size vs APTQ-4bit quality and storage (nano-7B)",
		Columns: []string{"Group size", "C4 PPL", "Avg bits incl. metadata"},
	}
	for _, gs := range []int{8, 16, 32, 48} {
		opts := e.aptqOptions(cfg, 1.0)
		opts.GroupSize = gs
		opts.BlockSize = gs
		res, err := core.QuantizeWithStats(m, st, calib, opts)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", gs),
			fmt.Sprintf("%.3f", eval.PerplexityOnSegments(res.Model, segs)),
			fmt.Sprintf("%.2f", res.AvgBitsWithOverhead))
	}
	return t, nil
}

// AblationSensitivity compares mixed-precision allocation metrics
// (experiment A3): the default Fisher-weighted score, the paper's
// attention-aware trace score, the GPTQ-Hessian trace score and random
// allocation, all at R=50%.
func (e *Env) AblationSensitivity() (*Table, error) {
	cfg := model.Nano7B()
	m := e.Model(cfg)
	calib := e.Calibration(cfg)
	segs := e.EvalSegments(e.C4, cfg)
	st, err := core.CollectStats(m, calib, core.CollectOptions{Probes: 4, Seed: 1})
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "ablation-sensitivity",
		Title:   "Sensitivity metric vs mixed-precision quality (nano-7B, R=50%, C4-like PPL)",
		Columns: []string{"Metric", "C4 PPL"},
	}
	for _, metric := range []core.SensitivityMetric{
		core.MetricFisherDelta, core.MetricTraceQuantErr, core.MetricGPTQTrace, core.MetricRandom,
	} {
		opts := e.aptqOptions(cfg, 0.5)
		opts.Metric = metric
		res, err := core.QuantizeWithStats(m, st, calib, opts)
		if err != nil {
			return nil, err
		}
		t.AddRow(metric.String(), fmt.Sprintf("%.3f", eval.PerplexityOnSegments(res.Model, segs)))
	}
	return t, nil
}

// AblationSequential compares one-shot statistics against per-block
// recollection (GPTQ-style error propagation) at 4 bit and 2 bit.
func (e *Env) AblationSequential() (*Table, error) {
	cfg := model.Nano7B()
	m := e.Model(cfg)
	calib := e.Calibration(cfg)
	segs := e.EvalSegments(e.C4, cfg)

	t := &Table{
		ID:      "ablation-sequential",
		Title:   "One-shot vs per-block recollected statistics (nano-7B, C4-like PPL)",
		Columns: []string{"Mode", "Ratio", "C4 PPL"},
	}
	for _, ratio := range []float64{1.0, 0.0} {
		for _, sequential := range []bool{false, true} {
			opts := e.aptqOptions(cfg, ratio)
			opts.Sequential = sequential
			res, err := core.Quantize(m, calib, opts)
			if err != nil {
				return nil, err
			}
			mode := "one-shot"
			if sequential {
				mode = "sequential"
			}
			t.AddRow(mode, fmt.Sprintf("%.0f%%", ratio*100),
				fmt.Sprintf("%.3f", eval.PerplexityOnSegments(res.Model, segs)))
		}
	}
	return t, nil
}

// AblationActOrder compares natural column order against activation
// ordering (GPTQ's act_order flag) at low bit widths.
func (e *Env) AblationActOrder() (*Table, error) {
	cfg := model.Nano7B()
	m := e.Model(cfg)
	calib := e.Calibration(cfg)
	segs := e.EvalSegments(e.C4, cfg)
	st, err := core.CollectStats(m, calib, core.CollectOptions{Probes: 4, Seed: 1})
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "ablation-actorder",
		Title:   "Column order: natural vs activation-ordered (nano-7B, C4-like PPL)",
		Columns: []string{"Ratio", "Natural order", "Act order"},
	}
	for _, ratio := range []float64{1.0, 0.0} {
		row := []string{fmt.Sprintf("%.0f%%", ratio*100)}
		for _, actOrder := range []bool{false, true} {
			opts := e.aptqOptions(cfg, ratio)
			opts.ActOrder = actOrder
			res, err := core.QuantizeWithStats(m, st, calib, opts)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.3f", eval.PerplexityOnSegments(res.Model, segs)))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// AblationKnapsack compares the paper's 2/4-bit scheme against the
// {2,3,4}-width greedy knapsack extension at matched average-bit budgets.
func (e *Env) AblationKnapsack() (*Table, error) {
	cfg := model.Nano7B()
	m := e.Model(cfg)
	calib := e.Calibration(cfg)
	segs := e.EvalSegments(e.C4, cfg)
	st, err := core.CollectStats(m, calib, core.CollectOptions{Probes: 4, Seed: 1})
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "ablation-knapsack",
		Title:   "2/4-bit scheme vs {2,3,4} greedy knapsack at matched budgets (nano-7B)",
		Columns: []string{"Budget (avg bits)", "2/4 scheme PPL", "2/4 achieved bits", "{2,3,4} knapsack PPL", "knapsack achieved bits"},
	}
	for _, budget := range []float64{3.5, 3.0, 2.5} {
		// 2/4 scheme: the ratio hitting the same average, eq. (18)
		// inverted: R = (budget − 2) / 2.
		ratio := (budget - 2) / 2
		twoFour, err := core.QuantizeWithStats(m, st, calib, e.aptqOptions(cfg, ratio))
		if err != nil {
			return nil, err
		}
		opts := e.aptqOptions(cfg, 0)
		opts.Widths = []int{2, 3, 4}
		opts.TargetAvgBits = budget
		ladder, err := core.QuantizeWithStats(m, st, calib, opts)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.1f", budget),
			fmt.Sprintf("%.3f", eval.PerplexityOnSegments(twoFour.Model, segs)),
			fmt.Sprintf("%.2f", twoFour.AvgBits),
			fmt.Sprintf("%.3f", eval.PerplexityOnSegments(ladder.Model, segs)),
			fmt.Sprintf("%.2f", ladder.AvgBits))
	}
	return t, nil
}

// RunAblations executes the repository's own ablation studies (A1-A3 plus
// the sequential-statistics, act-order and knapsack studies), fanned across
// the environment's worker budget.
func (e *Env) RunAblations() ([]*Table, error) {
	return e.RunGrid(Ablations())
}

package harness

import (
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/model"
)

// sharedEnv is one Quick-scale environment per test process; models are
// trained once and reused across tests.
var sharedEnv = sync.OnceValue(func() *Env { return NewEnv(Quick) })

func TestTableRender(t *testing.T) {
	tbl := &Table{
		ID:      "t",
		Title:   "demo",
		Columns: []string{"a", "bb"},
		Notes:   []string{"a note"},
	}
	tbl.AddRow("1", "2")
	tbl.AddRow("333", "4")
	out := tbl.Render()
	for _, want := range []string{"T — demo", "a    bb", "333", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSVQuoting(t *testing.T) {
	tbl := &Table{ID: "t", Columns: []string{"x"}}
	tbl.AddRow(`va"l,ue`)
	csv := tbl.CSV()
	if !strings.Contains(csv, `"va""l,ue"`) {
		t.Fatalf("CSV quoting wrong: %q", csv)
	}
}

func TestTableMarkdown(t *testing.T) {
	tbl := &Table{ID: "t1", Title: "x", Columns: []string{"a", "b"}}
	tbl.AddRow("1", "2")
	md := tbl.Markdown()
	if !strings.Contains(md, "| a | b |") || !strings.Contains(md, "| 1 | 2 |") {
		t.Fatalf("markdown:\n%s", md)
	}
}

func TestAsciiChart(t *testing.T) {
	out := AsciiChart("test", []float64{0, 50, 100}, []float64{1, 2, 3}, 30, 8, "x", "y")
	if !strings.Contains(out, "*") || !strings.Contains(out, "test") {
		t.Fatalf("chart:\n%s", out)
	}
	if AsciiChart("empty", nil, nil, 10, 5, "x", "y") == "" {
		t.Fatal("empty chart must still render a header")
	}
}

func TestGroupSizeFor(t *testing.T) {
	if gs := groupSizeFor(model.Nano7B()); gs != 16 {
		t.Fatalf("nano-7B group size %d, want 16", gs)
	}
	if gs := groupSizeFor(model.Nano13B()); gs != 16 {
		t.Fatalf("nano-13B group size %d, want 16", gs)
	}
	if gs := groupSizeFor(model.Config{Dim: 8}); gs != 8 {
		t.Fatalf("minimum group size %d, want 8", gs)
	}
}

func TestEnvModelCaching(t *testing.T) {
	// An injected untrained model keeps this test cheap enough for the
	// -race -short CI job; the caching logic does not depend on training.
	e := NewEnv(Quick)
	m := model.New(model.Nano7B(), 1)
	e.SetModel(m)
	a := e.Model(model.Nano7B())
	b := e.Model(model.Nano7B())
	if a != m || a != b {
		t.Fatal("models must be cached per config")
	}
}

func TestEnvFixedEvalSets(t *testing.T) {
	e := sharedEnv()
	cfg := model.Nano7B()
	s1 := e.EvalSegments(e.C4, cfg)
	s2 := e.EvalSegments(e.C4, cfg)
	if len(s1) == 0 || len(s1) != len(s2) {
		t.Fatal("eval sets must be non-empty and stable")
	}
	for i := range s1 {
		for j := range s1[i] {
			if s1[i][j] != s2[i][j] {
				t.Fatal("eval segments must be deterministic")
			}
		}
	}
}

func TestTable3ShapeAPTQBeatsManual(t *testing.T) {
	// The key ablation claim of the paper: sensitivity-ordered allocation
	// beats whole-block allocation at matched (or fewer) bits.
	if testing.Short() {
		t.Skip("table3 takes ~1 minute")
	}
	e := sharedEnv()
	tbl, err := e.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("%d rows", len(tbl.Rows))
	}
	// Rows alternate Manual, APTQ at each ratio; compare the 50% pair
	// (equal achieved bits at whole-block granularity).
	manual50 := mustFloat(t, tbl.Rows[2][3])
	aptq50 := mustFloat(t, tbl.Rows[3][3])
	if aptq50 > manual50 {
		t.Fatalf("APTQ-50%% PPL %.3f worse than manual block-wise %.3f", aptq50, manual50)
	}
}

func TestFigure1ProfileShape(t *testing.T) {
	if testing.Short() {
		t.Skip("needs trained model")
	}
	e := sharedEnv()
	tbl, err := e.Figure1Profile()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != model.Nano7B().Layers {
		t.Fatalf("%d profile rows", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		for _, cell := range row[1:] {
			v := mustFloat(t, cell)
			if v < 0 || v > 1 {
				t.Fatalf("normalized score %v outside [0,1]", v)
			}
		}
	}
}

func mustFloat(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

package harness

import (
	"fmt"

	"repro/internal/parallel"
)

// Experiment is one named artifact generator of the evaluation grid.
type Experiment struct {
	// ID matches the artifact identifier used by cmd/aptq-experiments
	// (-only flag) and the emitted Table.ID.
	ID string
	// Run produces the artifact from an environment. It must not retain
	// the Env: grid execution hands each concurrent experiment its own
	// fork.
	Run func(*Env) (*Table, error)
}

// Experiments returns the paper's evaluation grid (experiments E1-E5 of
// DESIGN.md §5) in paper order: Table 1, Figure 2, Table 2, Table 3 and the
// Figure 1 sensitivity profile.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", (*Env).Table1},
		{"figure2", func(e *Env) (*Table, error) {
			t, _, _, err := e.Figure2()
			return t, err
		}},
		{"table2", (*Env).Table2},
		{"table3", (*Env).Table3},
		{"figure1", (*Env).Figure1Profile},
	}
}

// Ablations returns the repository's ablation grid (A1-A3 plus the
// sequential-statistics, act-order and knapsack studies).
func Ablations() []Experiment {
	return []Experiment{
		{"ablation-probes", (*Env).AblationProbes},
		{"ablation-groupsize", (*Env).AblationGroupSize},
		{"ablation-sensitivity", (*Env).AblationSensitivity},
		{"ablation-sequential", (*Env).AblationSequential},
		{"ablation-actorder", (*Env).AblationActOrder},
		{"ablation-knapsack", (*Env).AblationKnapsack},
	}
}

// RunGrid executes the given experiments, fanning them across the
// environment's worker budget. Each concurrently running experiment
// operates on its own Env fork (see Fork), so the grid is race-free, and
// every experiment is internally seeded, so results are identical to a
// serial run. Substrate models the forks need are trained once, in e.
// Tables return in input order; on failure the error of the earliest
// failing experiment is reported.
func (e *Env) RunGrid(exps []Experiment) ([]*Table, error) {
	workers := e.Workers
	if workers <= 0 {
		workers = parallel.Workers()
	}
	out := make([]*Table, len(exps))
	var fe parallel.FirstError
	parallel.ForEachWorkers(workers, len(exps), func(i int) {
		env := e
		if workers > 1 {
			env = e.Fork()
		}
		t, err := exps[i].Run(env)
		if err != nil {
			fe.Set(i, fmt.Errorf("harness: %s: %w", exps[i].ID, err))
			return
		}
		out[i] = t
	})
	if err := fe.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

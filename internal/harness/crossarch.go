package harness

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/model"
)

// CrossArch evaluates APTQ on the GPT/OPT-architecture stand-in alongside
// the LLaMA-architecture model — the paper's introduction motivates both
// families; this table shows the pipeline is architecture-agnostic.
func (e *Env) CrossArch() (*Table, error) {
	t := &Table{
		ID:      "crossarch",
		Title:   "APTQ across architectures (C4-like PPL)",
		Columns: []string{"Model", "Arch", "FP", "GPTQ-4bit", "APTQ-4bit", "APTQ-75% (3.5b)", "APTQ-50% (3.0b)"},
	}
	for _, cfg := range []model.Config{model.Nano7B(), model.NanoGPT()} {
		m := e.Model(cfg)
		calib := e.Calibration(cfg)
		segs := e.EvalSegments(e.C4, cfg)
		st, err := core.CollectStats(m, calib, core.CollectOptions{Probes: 4, Seed: 1})
		if err != nil {
			return nil, err
		}
		g, err := baselines.GPTQ(m, st, 4, groupSizeFor(cfg))
		if err != nil {
			return nil, err
		}
		row := []string{cfg.Name, cfg.Arch.String(),
			fmt.Sprintf("%.2f", eval.PerplexityOnSegments(m, segs)),
			fmt.Sprintf("%.2f", eval.PerplexityOnSegments(g.Model, segs)),
		}
		for _, ratio := range []float64{1.0, 0.75, 0.5} {
			res, err := core.QuantizeWithStats(m, st, calib, e.aptqOptions(cfg, ratio))
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.2f", eval.PerplexityOnSegments(res.Model, segs)))
		}
		t.AddRow(row...)
	}
	return t, nil
}

package harness

import (
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/model"
)

func TestRunGridPreservesOrder(t *testing.T) {
	e := NewEnv(Quick)
	e.Workers = 3
	var calls atomic.Int32
	mk := func(id string) Experiment {
		return Experiment{ID: id, Run: func(env *Env) (*Table, error) {
			calls.Add(1)
			if env == e {
				t.Error("concurrent grid must hand experiments a fork, not the shared Env")
			}
			return &Table{ID: id}, nil
		}}
	}
	tables, err := e.RunGrid([]Experiment{mk("a"), mk("b"), mk("c"), mk("d"), mk("e")})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 5 {
		t.Fatalf("%d experiments ran", calls.Load())
	}
	for i, want := range []string{"a", "b", "c", "d", "e"} {
		if tables[i].ID != want {
			t.Fatalf("table %d = %q, want %q", i, tables[i].ID, want)
		}
	}
}

func TestRunGridSerialUsesSharedEnvDirectly(t *testing.T) {
	e := NewEnv(Quick)
	e.Workers = 1
	_, err := e.RunGrid([]Experiment{{ID: "x", Run: func(env *Env) (*Table, error) {
		if env != e {
			t.Error("single-worker grid should not fork")
		}
		return &Table{ID: "x"}, nil
	}}})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunGridFirstErrorWins(t *testing.T) {
	e := NewEnv(Quick)
	e.Workers = 4
	fail := func(id string) Experiment {
		return Experiment{ID: id, Run: func(*Env) (*Table, error) {
			return nil, errTest(id)
		}}
	}
	ok := Experiment{ID: "fine", Run: func(*Env) (*Table, error) { return &Table{ID: "fine"}, nil }}
	_, err := e.RunGrid([]Experiment{ok, fail("early"), ok, fail("late")})
	if err == nil || !strings.Contains(err.Error(), "early") {
		t.Fatalf("err = %v, want the lowest-index failure (early)", err)
	}
}

type errTest string

func (e errTest) Error() string { return string(e) }

func TestGridRegistryMatchesArtifactIDs(t *testing.T) {
	wantE := []string{"table1", "figure2", "table2", "table3", "figure1"}
	exps := Experiments()
	if len(exps) != len(wantE) {
		t.Fatalf("%d experiments", len(exps))
	}
	for i, ex := range exps {
		if ex.ID != wantE[i] {
			t.Fatalf("experiment %d = %q, want %q", i, ex.ID, wantE[i])
		}
	}
	if n := len(Ablations()); n != 6 {
		t.Fatalf("%d ablations", n)
	}
}

func TestForkClonesModels(t *testing.T) {
	if testing.Short() {
		t.Skip("needs trained model")
	}
	e := sharedEnv()
	cfg := model.Nano7B()
	orig := e.Model(cfg)
	f := e.Fork()
	clone := f.Model(cfg)
	if clone == orig {
		t.Fatal("fork must deep-clone models")
	}
	ow := orig.QuantizableLayers()[0].Linear.P.W
	cw := clone.QuantizableLayers()[0].Linear.P.W
	if !reflect.DeepEqual(ow.Data, cw.Data) {
		t.Fatal("forked weights must be bitwise identical")
	}
	cw.Data[0] += 1
	if ow.Data[0] == cw.Data[0] {
		t.Fatal("fork must not share weight storage")
	}
}

// TestForkDelegatesModelMissesToParent checks the shared-pretraining path:
// a model the fork does not have is fetched from (and cached in) the
// parent, then cloned — so N forks cost one training run, not N.
func TestForkDelegatesModelMissesToParent(t *testing.T) {
	parent := NewEnv(Quick)
	f := parent.Fork()
	m := model.New(model.Nano7B(), 1) // untrained stand-in; delegation must not retrain
	parent.SetModel(m)
	got := f.Model(model.Nano7B())
	if got == m {
		t.Fatal("fork must clone the parent's model, not share it")
	}
	if !reflect.DeepEqual(m.QuantizableLayers()[0].Linear.P.W.Data, got.QuantizableLayers()[0].Linear.P.W.Data) {
		t.Fatal("fork clone must match parent weights")
	}
	if f.Model(model.Nano7B()) != got {
		t.Fatal("fork must cache the delegated clone")
	}
	// A fork of a fork delegates to the root, not the intermediate fork.
	ff := f.Fork()
	if ff.parent != parent {
		t.Fatal("fork of fork must point at the root Env")
	}
}

// TestGridParallelMatchesSerial regenerates one cheap real artifact
// (Figure 1's sensitivity profile) serially and through the concurrent
// grid, and demands identical tables — the grid-level determinism claim.
func TestGridParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("needs trained model")
	}
	e := sharedEnv()
	e.Model(model.Nano7B())

	serialEnv := e.Fork()
	serialEnv.Workers = 1
	serial, err := serialEnv.RunGrid([]Experiment{{ID: "figure1", Run: (*Env).Figure1Profile}})
	if err != nil {
		t.Fatal(err)
	}

	parEnv := e.Fork()
	parEnv.Workers = 4
	par, err := parEnv.RunGrid([]Experiment{
		{ID: "figure1", Run: (*Env).Figure1Profile},
		{ID: "figure1", Run: (*Env).Figure1Profile},
		{ID: "figure1", Run: (*Env).Figure1Profile},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range par {
		if !reflect.DeepEqual(serial[0].Rows, p.Rows) {
			t.Fatalf("parallel grid run %d differs from serial figure1", i)
		}
	}
}

package harness

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment artifact: one per paper table/figure.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	// Notes carry caveats (substitutions, granularity) that belong next to
	// the numbers.
	Notes []string
}

// AddRow appends a row of pre-formatted cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render produces an aligned, boxless text table.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", strings.ToUpper(t.ID), t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// CSV renders the table as comma-separated values (cells containing commas
// are quoted).
func (t *Table) CSV() string {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				sb.WriteString(`"` + strings.ReplaceAll(cell, `"`, `""`) + `"`)
			} else {
				sb.WriteString(cell)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// Markdown renders the table as GitHub-flavored markdown (used by
// EXPERIMENTS.md generation).
func (t *Table) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s — %s\n\n", strings.ToUpper(t.ID), t.Title)
	sb.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "\n*Note: %s*\n", n)
	}
	sb.WriteByte('\n')
	return sb.String()
}

// AsciiChart renders (x, y) series as a simple scatter line chart for
// terminal display — used for the Figure 2 perplexity-vs-ratio curve.
func AsciiChart(title string, xs, ys []float64, width, height int, xlabel, ylabel string) string {
	if len(xs) != len(ys) || len(xs) == 0 {
		return title + ": (no data)\n"
	}
	xmin, xmax := xs[0], xs[0]
	ymin, ymax := ys[0], ys[0]
	for i := range xs {
		if xs[i] < xmin {
			xmin = xs[i]
		}
		if xs[i] > xmax {
			xmax = xs[i]
		}
		if ys[i] < ymin {
			ymin = ys[i]
		}
		if ys[i] > ymax {
			ymax = ys[i]
		}
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for i := range xs {
		c := int((xs[i] - xmin) / (xmax - xmin) * float64(width-1))
		r := height - 1 - int((ys[i]-ymin)/(ymax-ymin)*float64(height-1))
		grid[r][c] = '*'
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "%8.2f ┤%s\n", ymax, string(grid[0]))
	for r := 1; r < height-1; r++ {
		fmt.Fprintf(&sb, "%8s │%s\n", "", string(grid[r]))
	}
	fmt.Fprintf(&sb, "%8.2f ┤%s\n", ymin, string(grid[height-1]))
	fmt.Fprintf(&sb, "%8s  %-*s%s\n", "", width-len(xlabel), fmt.Sprintf("%.0f", xmin), fmt.Sprintf("%.0f", xmax))
	fmt.Fprintf(&sb, "%8s  %s / %s\n", "", xlabel, ylabel)
	return sb.String()
}

package data

import (
	"math"
	"math/rand"
	"testing"
)

func TestVocabularyDeterministic(t *testing.T) {
	a := NewVocabulary(64)
	b := NewVocabulary(64)
	for i := 0; i < 64; i++ {
		if a.Word(i) != b.Word(i) {
			t.Fatal("vocabulary must be deterministic")
		}
	}
}

func TestVocabularyUniqueWords(t *testing.T) {
	v := NewVocabulary(128)
	seen := map[string]bool{}
	for i := 0; i < v.Size(); i++ {
		w := v.Word(i)
		if seen[w] {
			t.Fatalf("duplicate word %q", w)
		}
		seen[w] = true
	}
}

func TestVocabularyEncodeDecodeRoundTrip(t *testing.T) {
	v := NewVocabulary(32)
	ids := []int{0, 5, 31, 7}
	text := v.Decode(ids)
	words := []string{}
	for _, id := range ids {
		words = append(words, v.Word(id))
	}
	got, err := v.Encode(words)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ids {
		if got[i] != ids[i] {
			t.Fatalf("round trip failed: %v -> %q -> %v", ids, text, got)
		}
	}
	if _, err := v.Encode([]string{"definitely-not-a-word"}); err == nil {
		t.Fatal("expected encode error for unknown word")
	}
}

func TestMarkovGenerateInRangeAndDeterministic(t *testing.T) {
	src := NewC4Like(128)
	a := src.Generate(rand.New(rand.NewSource(1)), 500)
	b := src.Generate(rand.New(rand.NewSource(1)), 500)
	if len(a) != 500 {
		t.Fatalf("generated %d tokens", len(a))
	}
	for i, tok := range a {
		if tok < 0 || tok >= 128 {
			t.Fatalf("token %d out of range", tok)
		}
		if tok != b[i] {
			t.Fatal("generation must be deterministic for a fixed seed")
		}
	}
}

func TestMarkovStructureIsLearnable(t *testing.T) {
	// The process must have much lower entropy than uniform, otherwise the
	// model can learn nothing and quantization effects would be invisible.
	for _, src := range []*MarkovSource{NewC4Like(128), NewWikiLike(128)} {
		h := src.TransitionEntropy()
		uniform := math.Log(128)
		if h >= uniform*0.8 {
			t.Fatalf("%s: entropy %.3f too close to uniform %.3f", src.Name(), h, uniform)
		}
		if h <= 0.5 {
			t.Fatalf("%s: entropy %.3f suspiciously low", src.Name(), h)
		}
	}
}

func TestC4AndWikiDiffer(t *testing.T) {
	c4 := NewC4Like(128)
	wiki := NewWikiLike(128)
	if math.Abs(c4.TransitionEntropy()-wiki.TransitionEntropy()) < 1e-6 {
		t.Fatal("the two corpora should have different entropies")
	}
	rng := rand.New(rand.NewSource(2))
	a := c4.Generate(rng, 200)
	rng = rand.New(rand.NewSource(2))
	b := wiki.Generate(rng, 200)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("identical streams from different sources")
	}
}

func TestMarkovBigramFrequenciesMatchProcess(t *testing.T) {
	// Empirical successor frequencies of a long stream must reflect the
	// transition structure: the most frequent successor of a common token
	// should carry roughly its designed probability.
	src := NewC4Like(64)
	rng := rand.New(rand.NewSource(3))
	stream := src.Generate(rng, 200000)
	counts := map[[2]int]int{}
	first := map[int]int{}
	for i := 0; i+1 < len(stream); i++ {
		counts[[2]int{stream[i], stream[i+1]}]++
		first[stream[i]]++
	}
	// Find the most common token and its most common successor.
	bestTok, bestN := 0, 0
	for tok, n := range first {
		if n > bestN {
			bestTok, bestN = tok, n
		}
	}
	topP := 0.0
	for pair, n := range counts {
		if pair[0] == bestTok {
			if p := float64(n) / float64(bestN); p > topP {
				topP = p
			}
		}
	}
	if topP < 0.25 || topP > 0.45 {
		t.Fatalf("top successor probability %.3f outside designed band around 0.34", topP)
	}
}

func TestContinueStartsFromContext(t *testing.T) {
	src := NewWikiLike(64)
	rng := rand.New(rand.NewSource(4))
	ctx := src.Generate(rng, 10)
	cont := src.Continue(rng, ctx, 20)
	if len(cont) != 20 {
		t.Fatalf("continuation length %d", len(cont))
	}
	// Statistically, continuations should follow the transition structure:
	// regenerate with same rng state comparison is tricky; at minimum ensure
	// tokens are in range and the call is deterministic under a fixed seed.
	rng2 := rand.New(rand.NewSource(4))
	_ = src.Generate(rng2, 10)
	cont2 := src.Continue(rng2, ctx, 20)
	for i := range cont {
		if cont[i] != cont2[i] {
			t.Fatal("Continue must be deterministic")
		}
	}
}

func TestMixtureCoversSources(t *testing.T) {
	c4 := NewC4Like(32)
	wiki := NewWikiLike(32)
	mix := NewMixture(16, c4, wiki)
	if mix.Vocab() != 32 {
		t.Fatal("mixture vocab")
	}
	out := mix.Generate(rand.New(rand.NewSource(5)), 100)
	if len(out) != 100 {
		t.Fatalf("mixture generated %d tokens", len(out))
	}
}

func TestNextTokenBatch(t *testing.T) {
	b := NextTokenBatch([]int{3, 1, 4, 1})
	if len(b.IDs) != 4 || len(b.Targets) != 4 {
		t.Fatal("batch shape")
	}
	if b.Targets[0] != 1 || b.Targets[1] != 4 || b.Targets[2] != 1 {
		t.Fatalf("targets = %v", b.Targets)
	}
	if b.Targets[3] != -1 {
		t.Fatal("final target must be masked")
	}
}

func TestSampleCalibration(t *testing.T) {
	src := NewC4Like(64)
	cs := SampleCalibration(rand.New(rand.NewSource(6)), src, 8, 32)
	if len(cs.Segments) != 8 {
		t.Fatalf("%d segments", len(cs.Segments))
	}
	for _, seg := range cs.Segments {
		if len(seg) != 32 {
			t.Fatalf("segment length %d", len(seg))
		}
	}
}

func TestGenerateTaskShapes(t *testing.T) {
	src := NewC4Like(64)
	rng := rand.New(rand.NewSource(7))
	for _, spec := range StandardTasks() {
		task := GenerateTask(rng, src, spec, 20)
		if len(task.Items) != 20 {
			t.Fatalf("%s: %d items", spec.Name, len(task.Items))
		}
		for _, item := range task.Items {
			if len(item.Options) != spec.Options {
				t.Fatalf("%s: %d options", spec.Name, len(item.Options))
			}
			if item.Answer < 0 || item.Answer >= spec.Options {
				t.Fatalf("%s: answer index %d", spec.Name, item.Answer)
			}
			if len(item.Context) != spec.ContextLen {
				t.Fatalf("%s: context length %d", spec.Name, len(item.Context))
			}
			for _, opt := range item.Options {
				if len(opt) != spec.ContLen {
					t.Fatalf("%s: option length %d, want %d", spec.Name, len(opt), spec.ContLen)
				}
			}
		}
	}
}

func TestWinograndeMinimalPairs(t *testing.T) {
	src := NewC4Like(64)
	rng := rand.New(rand.NewSource(8))
	spec := StandardTasks()[4]
	if !spec.SingleToken {
		t.Fatal("expected WinoGrande spec to be single-token")
	}
	task := GenerateTask(rng, src, spec, 30)
	for _, item := range task.Items {
		correct := item.Options[item.Answer]
		for o, opt := range item.Options {
			if o == item.Answer {
				continue
			}
			diff := 0
			for j := range opt {
				if opt[j] != correct[j] {
					diff++
				}
			}
			if diff != 1 {
				t.Fatalf("minimal pair differs in %d tokens", diff)
			}
		}
	}
}

func TestTaskAnswerPositionsUniform(t *testing.T) {
	// Guard against answer-position bias, which would let a trivial
	// position-picker score above chance.
	src := NewC4Like(64)
	rng := rand.New(rand.NewSource(9))
	task := GenerateTask(rng, src, TaskSpec{Name: "t", Options: 4, ContextLen: 8, ContLen: 4}, 400)
	counts := make([]int, 4)
	for _, item := range task.Items {
		counts[item.Answer]++
	}
	for pos, n := range counts {
		if n < 50 || n > 150 {
			t.Fatalf("answer position %d chosen %d/400 times", pos, n)
		}
	}
}

package data

import (
	"fmt"
	"math/rand"
)

// MCItem is one multiple-choice zero-shot item: a context, candidate
// continuations, and the index of the correct one. Models score each option
// by length-normalized log-likelihood, exactly as lm-evaluation-harness
// does for PIQA / HellaSwag / ARC / WinoGrande.
type MCItem struct {
	Context []int
	Options [][]int
	Answer  int
}

// Task is a named collection of zero-shot items.
type Task struct {
	Name  string
	Items []MCItem
}

// TaskSpec parameterizes a synthetic multiple-choice task generator. The
// five benchmark stand-ins differ in option count, continuation length and
// distractor hardness, emulating the difficulty ordering of the real suite
// (ARC-Challenge harder than ARC-Easy, etc.).
type TaskSpec struct {
	Name       string
	Options    int
	ContextLen int
	ContLen    int
	// Hardness in [0,1]: probability that a distractor is drawn from the
	// same language process (plausible but wrong) rather than uniform
	// noise. Harder tasks have more plausible distractors.
	Hardness float64
	// SingleToken makes options differ in exactly one token
	// (WinoGrande-style minimal pairs).
	SingleToken bool
}

// StandardTasks returns the five stand-ins for the paper's zero-shot suite
// in Table 2 order: PIQA, HellaSwag, ARC-Easy, ARC-Challenge, WinoGrande.
func StandardTasks() []TaskSpec {
	return []TaskSpec{
		{Name: "PIQA", Options: 2, ContextLen: 20, ContLen: 8, Hardness: 0.55},
		{Name: "Hellaswag", Options: 4, ContextLen: 24, ContLen: 10, Hardness: 0.70},
		{Name: "Arc-E", Options: 4, ContextLen: 16, ContLen: 6, Hardness: 0.35},
		{Name: "Arc-C", Options: 4, ContextLen: 16, ContLen: 6, Hardness: 0.85},
		{Name: "WinoGrande", Options: 2, ContextLen: 18, ContLen: 5, Hardness: 0.6, SingleToken: true},
	}
}

// GenerateTask builds n items of the given spec from src. The correct
// option is the process's true continuation of the context; distractors are
// either plausible off-context continuations (hard) or uniform-noise
// continuations (easy), per spec.Hardness.
func GenerateTask(rng *rand.Rand, src Source, spec TaskSpec, n int) Task {
	if spec.Options < 2 {
		panic(fmt.Sprintf("data: task %q needs >= 2 options", spec.Name))
	}
	task := Task{Name: spec.Name, Items: make([]MCItem, n)}
	for i := 0; i < n; i++ {
		ctx := src.Generate(rng, spec.ContextLen)
		correct := src.Continue(rng, ctx, spec.ContLen)
		item := MCItem{
			Context: ctx,
			Options: make([][]int, spec.Options),
			Answer:  rng.Intn(spec.Options),
		}
		for o := range item.Options {
			if o == item.Answer {
				item.Options[o] = correct
				continue
			}
			item.Options[o] = makeDistractor(rng, src, spec, correct)
		}
		task.Items[i] = item
	}
	return task
}

func makeDistractor(rng *rand.Rand, src Source, spec TaskSpec, correct []int) []int {
	if spec.SingleToken {
		// Minimal pair: copy the correct continuation and replace one token
		// with a *plausible* alternative — a sample from the language
		// process conditioned on the preceding token — so telling the
		// options apart requires real next-token knowledge (as WinoGrande's
		// near-duplicate sentence pairs do).
		d := append([]int(nil), correct...)
		pos := 1 + rng.Intn(len(d)-1)
		repl := d[pos]
		for attempt := 0; repl == d[pos] && attempt < 8; attempt++ {
			repl = src.Continue(rng, d[:pos], 1)[0]
		}
		if repl == d[pos] {
			repl = (d[pos] + 1 + rng.Intn(src.Vocab()-1)) % src.Vocab()
		}
		d[pos] = repl
		return d
	}
	if rng.Float64() < spec.Hardness {
		// Plausible text that does not follow the context: a continuation
		// of an unrelated prefix.
		other := src.Generate(rng, 4)
		return src.Continue(rng, other, spec.ContLen)
	}
	// Uniform noise continuation.
	d := make([]int, spec.ContLen)
	for j := range d {
		d[j] = rng.Intn(src.Vocab())
	}
	return d
}

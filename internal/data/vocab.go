// Package data provides the synthetic language substrate that stands in for
// the paper's C4 / WikiText-2 corpora and the lm-evaluation-harness
// zero-shot tasks (see DESIGN.md §2). All generators are seeded Markov /
// template processes: a model pretrained on their output has genuinely
// learnable structure, so quantization-induced weight error measurably
// degrades perplexity and task accuracy — the quantities every table in the
// paper reports.
package data

import (
	"fmt"
	"math/rand"
	"strings"
)

// Vocabulary maps synthetic word strings to token ids. Tokenization is
// whitespace-based over the synthetic word list, which is deterministic for
// a given size.
type Vocabulary struct {
	words []string
	index map[string]int
}

var onsets = []string{"b", "br", "ch", "d", "dr", "f", "fl", "g", "gr", "h", "j", "k", "kl", "l", "m", "n", "p", "pr", "qu", "r", "s", "sk", "st", "t", "tr", "v", "w", "z"}
var nuclei = []string{"a", "e", "i", "o", "u", "ai", "ea", "ou"}
var codas = []string{"", "n", "r", "s", "t", "l", "m", "nd", "st"}

// NewVocabulary builds a deterministic synthetic vocabulary of the given
// size. Word forms are pronounceable CV(C) syllable pairs so rendered text
// is readable in examples.
func NewVocabulary(size int) *Vocabulary {
	if size <= 0 {
		panic("data: vocabulary size must be positive")
	}
	v := &Vocabulary{index: make(map[string]int, size)}
	rng := rand.New(rand.NewSource(1234))
	seen := make(map[string]bool)
	for len(v.words) < size {
		var sb strings.Builder
		syllables := 1 + rng.Intn(2)
		for s := 0; s < syllables; s++ {
			sb.WriteString(onsets[rng.Intn(len(onsets))])
			sb.WriteString(nuclei[rng.Intn(len(nuclei))])
			sb.WriteString(codas[rng.Intn(len(codas))])
		}
		w := sb.String()
		if seen[w] {
			continue
		}
		seen[w] = true
		v.index[w] = len(v.words)
		v.words = append(v.words, w)
	}
	return v
}

// Size returns the number of tokens in the vocabulary.
func (v *Vocabulary) Size() int { return len(v.words) }

// Word returns the surface form of token id.
func (v *Vocabulary) Word(id int) string {
	if id < 0 || id >= len(v.words) {
		panic(fmt.Sprintf("data: token id %d out of range", id))
	}
	return v.words[id]
}

// Encode maps words to token ids; unknown words are an error.
func (v *Vocabulary) Encode(words []string) ([]int, error) {
	out := make([]int, len(words))
	for i, w := range words {
		id, ok := v.index[w]
		if !ok {
			return nil, fmt.Errorf("data: unknown word %q", w)
		}
		out[i] = id
	}
	return out, nil
}

// Decode renders token ids as a space-joined string.
func (v *Vocabulary) Decode(ids []int) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = v.Word(id)
	}
	return strings.Join(parts, " ")
}

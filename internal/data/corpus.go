package data

import (
	"math"
	"math/rand"
	"sort"
)

// Source generates token streams from a fixed stochastic language process.
// Implementations must be deterministic given the rng state, so corpora are
// reproducible across runs.
type Source interface {
	// Name identifies the source ("c4like", "wikilike", ...).
	Name() string
	// Vocab returns the vocabulary size tokens are drawn from.
	Vocab() int
	// Generate appends n tokens sampled from the process to a fresh slice.
	Generate(rng *rand.Rand, n int) []int
	// Continue extends context by n tokens according to the process
	// conditioned on the context's last token.
	Continue(rng *rand.Rand, context []int, n int) []int
}

// MarkovSource is a first-order Markov token process with a structured,
// seeded transition matrix. The amount of probability mass on the top
// successors controls the entropy (and hence the achievable perplexity
// floor) of the language.
type MarkovSource struct {
	name  string
	vocab int
	// cdf[i] is the cumulative distribution over the next token given
	// current token i.
	cdf [][]float64
	// start is the cumulative distribution over the first token.
	start []float64
}

// markovSpec controls the construction of a MarkovSource.
type markovSpec struct {
	name       string
	vocab      int
	successors int       // number of preferred successors per token
	weights    []float64 // probability of each preferred successor (sums < 1)
	seed       int64     // structure seed (not the sampling seed)
}

// NewC4Like builds the stand-in for the C4 corpus: a broad, noisy webtext
// process. Each token prefers 4 successors with a Zipf-ish profile and
// keeps 12% of mass as uniform noise.
func NewC4Like(vocab int) *MarkovSource {
	return newMarkov(markovSpec{
		name: "c4like", vocab: vocab, successors: 4,
		weights: []float64{0.34, 0.25, 0.19, 0.10},
		seed:    99991,
	})
}

// NewWikiLike builds the stand-in for WikiText-2: cleaner, more templated
// prose with a different transition structure (3 successors, 10% noise).
func NewWikiLike(vocab int) *MarkovSource {
	return newMarkov(markovSpec{
		name: "wikilike", vocab: vocab, successors: 3,
		weights: []float64{0.42, 0.30, 0.18},
		seed:    77771,
	})
}

func newMarkov(spec markovSpec) *MarkovSource {
	rng := rand.New(rand.NewSource(spec.seed))
	s := &MarkovSource{name: spec.name, vocab: spec.vocab}
	structured := 0.0
	for _, w := range spec.weights {
		structured += w
	}
	noise := (1 - structured) / float64(spec.vocab)
	s.cdf = make([][]float64, spec.vocab)
	probs := make([]float64, spec.vocab)
	for i := 0; i < spec.vocab; i++ {
		for j := range probs {
			probs[j] = noise
		}
		// Pick distinct preferred successors for token i.
		perm := rng.Perm(spec.vocab)
		for k, w := range spec.weights {
			probs[perm[k]] += w
		}
		s.cdf[i] = toCDF(probs)
	}
	// Stationary-ish start distribution: uniform over vocabulary.
	for j := range probs {
		probs[j] = 1 / float64(spec.vocab)
	}
	s.start = toCDF(probs)
	return s
}

func toCDF(probs []float64) []float64 {
	cdf := make([]float64, len(probs))
	run := 0.0
	for i, p := range probs {
		run += p
		cdf[i] = run
	}
	// Guard against accumulated round-off.
	cdf[len(cdf)-1] = 1
	return cdf
}

func sampleCDF(rng *rand.Rand, cdf []float64) int {
	u := rng.Float64()
	return sort.SearchFloat64s(cdf, u)
}

// Name implements Source.
func (s *MarkovSource) Name() string { return s.name }

// Vocab implements Source.
func (s *MarkovSource) Vocab() int { return s.vocab }

// Generate implements Source.
func (s *MarkovSource) Generate(rng *rand.Rand, n int) []int {
	out := make([]int, 0, n)
	if n == 0 {
		return out
	}
	cur := sampleCDF(rng, s.start)
	out = append(out, cur)
	for len(out) < n {
		cur = sampleCDF(rng, s.cdf[cur])
		out = append(out, cur)
	}
	return out
}

// Continue implements Source.
func (s *MarkovSource) Continue(rng *rand.Rand, context []int, n int) []int {
	out := make([]int, 0, n)
	cur := sampleCDF(rng, s.start)
	if len(context) > 0 {
		cur = context[len(context)-1]
	} else if n > 0 {
		out = append(out, cur)
	}
	for len(out) < n {
		cur = sampleCDF(rng, s.cdf[cur])
		out = append(out, cur)
	}
	return out
}

// TransitionEntropy returns the mean per-token conditional entropy of the
// process in nats — the theoretical cross-entropy floor for any model, and
// therefore the floor of achievable perplexity exp(H).
func (s *MarkovSource) TransitionEntropy() float64 {
	total := 0.0
	for i := range s.cdf {
		prev := 0.0
		h := 0.0
		for _, c := range s.cdf[i] {
			p := c - prev
			prev = c
			if p > 0 {
				h -= p * math.Log(p)
			}
		}
		total += h
	}
	return total / float64(len(s.cdf))
}

// Mixture interleaves segments from several sources — the pretraining
// corpus, mirroring LLaMA's mixed webtext+wiki training data so the model
// is evaluated in-distribution on both eval sets.
type Mixture struct {
	Sources []Source
	// SegmentLen tokens are drawn from one source before switching.
	SegmentLen int
}

// NewMixture builds a mixture with the given segment length.
func NewMixture(segmentLen int, sources ...Source) *Mixture {
	if len(sources) == 0 {
		panic("data: mixture needs at least one source")
	}
	return &Mixture{Sources: sources, SegmentLen: segmentLen}
}

// Name implements Source.
func (m *Mixture) Name() string { return "mixture" }

// Vocab implements Source.
func (m *Mixture) Vocab() int { return m.Sources[0].Vocab() }

// Generate implements Source.
func (m *Mixture) Generate(rng *rand.Rand, n int) []int {
	out := make([]int, 0, n)
	for len(out) < n {
		src := m.Sources[rng.Intn(len(m.Sources))]
		take := m.SegmentLen
		if rem := n - len(out); take > rem {
			take = rem
		}
		out = append(out, src.Generate(rng, take)...)
	}
	return out
}

// Continue implements Source by delegating to a random component source.
func (m *Mixture) Continue(rng *rand.Rand, context []int, n int) []int {
	return m.Sources[rng.Intn(len(m.Sources))].Continue(rng, context, n)
}

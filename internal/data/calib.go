package data

import "math/rand"

// CalibrationSet is a batch of fixed-length token segments used to collect
// quantization statistics — the stand-in for the paper's "128 segments of
// 2048 tokens randomly sampled from C4".
type CalibrationSet struct {
	Segments [][]int
}

// SampleCalibration draws count segments of seqLen tokens from src.
func SampleCalibration(rng *rand.Rand, src Source, count, seqLen int) *CalibrationSet {
	cs := &CalibrationSet{Segments: make([][]int, count)}
	for i := range cs.Segments {
		cs.Segments[i] = src.Generate(rng, seqLen)
	}
	return cs
}

// Batch is one training example: input ids and next-token targets.
type Batch struct {
	IDs     []int
	Targets []int
}

// NextTokenBatch converts a token segment into a (inputs, shifted targets)
// training pair: targets[t] = segment[t+1], with the final position masked.
func NextTokenBatch(segment []int) Batch {
	ids := make([]int, len(segment))
	copy(ids, segment)
	targets := make([]int, len(segment))
	for t := 0; t < len(segment)-1; t++ {
		targets[t] = segment[t+1]
	}
	if len(segment) > 0 {
		targets[len(segment)-1] = -1
	}
	return Batch{IDs: ids, Targets: targets}
}

// SampleBatches draws count next-token training batches of seqLen tokens.
func SampleBatches(rng *rand.Rand, src Source, count, seqLen int) []Batch {
	out := make([]Batch, count)
	for i := range out {
		out[i] = NextTokenBatch(src.Generate(rng, seqLen))
	}
	return out
}

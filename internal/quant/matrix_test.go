package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestRTNRoundTripAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := tensor.Randn(rng, 16, 32, 0.1)
	q := RTN(w, 8, 8, false)
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	mse, maxAbs := QuantizationError(w, q)
	if mse > 1e-6 || maxAbs > 0.01 {
		t.Fatalf("8-bit RTN too lossy: mse=%v max=%v", mse, maxAbs)
	}
}

func TestRTNGroupErrorBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := tensor.Randn(rng, 4+rng.Intn(8), 8+rng.Intn(24), 1)
		gs := 4 + rng.Intn(8)
		q := RTN(w, 4, gs, false)
		dq := q.Dequantize()
		ng := q.NumGroups()
		for r := 0; r < w.Rows; r++ {
			for c := 0; c < w.Cols; c++ {
				p := q.Params[r*ng+c/gs]
				if math.Abs(w.At(r, c)-dq.At(r, c)) > p.MaxQuantError()+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRTNSmallerGroupsNeverWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := tensor.Randn(rng, 8, 64, 1)
	// Inject scale variation across the row so group adaptivity matters.
	for r := 0; r < w.Rows; r++ {
		row := w.Row(r)
		for c := range row {
			if c >= 32 {
				row[c] *= 10
			}
		}
	}
	mse := func(gs int) float64 {
		m, _ := QuantizationError(w, RTN(w, 3, gs, false))
		return m
	}
	if !(mse(64) >= mse(32) && mse(32) >= mse(16)) {
		t.Fatalf("group adaptivity violated: 64→%v 32→%v 16→%v", mse(64), mse(32), mse(16))
	}
}

func TestQuantizedMatrixSizeAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := tensor.Randn(rng, 8, 32, 1)
	q := RTN(w, 4, 16, false)
	// 8*32 codes * 4 bits + 8 rows * 2 groups * 2 params * 16 bits
	want := int64(8*32*4 + 8*2*2*16)
	if q.SizeBits() != want {
		t.Fatalf("SizeBits = %d, want %d", q.SizeBits(), want)
	}
	if math.Abs(q.AvgBits()-float64(want)/256) > 1e-12 {
		t.Fatalf("AvgBits = %v", q.AvgBits())
	}
}

func TestMixedRowBitsSize(t *testing.T) {
	q := &QuantizedMatrix{
		Rows: 4, Cols: 8, GroupSize: 8, Bits: 4,
		RowBits: []int{4, 4, 2, 2},
		Codes:   make([]uint16, 32),
		Params:  make([]GroupParams, 4),
	}
	for i := range q.Params {
		q.Params[i].Scale = 1
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	want := int64(8*4+8*4+8*2+8*2) + 4*1*2*16
	if q.SizeBits() != want {
		t.Fatalf("SizeBits = %d, want %d", q.SizeBits(), want)
	}
}

func TestValidateCatchesOutOfRangeCodes(t *testing.T) {
	q := &QuantizedMatrix{
		Rows: 1, Cols: 2, GroupSize: 2, Bits: 2,
		Codes:  []uint16{5, 0}, // 5 > 3
		Params: []GroupParams{{Scale: 1}},
	}
	if err := q.Validate(); err == nil {
		t.Fatal("expected validation error for out-of-range code")
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, bits := range []int{1, 2, 3, 4, 7, 8, 12, 16} {
			n := 1 + rng.Intn(100)
			codes := make([]uint16, n)
			max := uint16(1)<<bits - 1
			for i := range codes {
				codes[i] = uint16(rng.Intn(int(max) + 1))
			}
			packed := Pack(codes, bits)
			if len(packed) != PackedSize(n, bits) {
				return false
			}
			got := Unpack(packed, n, bits)
			for i := range codes {
				if got[i] != codes[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPackDensity(t *testing.T) {
	// 10 codes at 4 bits = 40 bits = 5 bytes exactly.
	if got := len(Pack(make([]uint16, 10), 4)); got != 5 {
		t.Fatalf("packed size = %d, want 5", got)
	}
}

func TestFP4RoundTrip(t *testing.T) {
	for code := uint16(0); code < 16; code++ {
		v := FP4Decode(code)
		got, out := FP4Quantize(v)
		if out != v {
			t.Fatalf("FP4 decode/quantize mismatch for code %d: %v vs %v", code, out, v)
		}
		// -0 and +0 share the value 0; any other code must round-trip.
		if v != 0 && got != code {
			t.Fatalf("code %d round-tripped to %d", code, got)
		}
	}
}

func TestFP4MatrixBeats2BitOnGaussians(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w := tensor.Randn(rng, 16, 64, 0.5)
	dqFP4, qm := FP4Matrix(w, 16)
	if qm.Bits != 4 {
		t.Fatal("FP4 must report 4 bits")
	}
	mseFP4 := 0.0
	for i := range w.Data {
		d := w.Data[i] - dqFP4.Data[i]
		mseFP4 += d * d
	}
	mse2, _ := QuantizationError(w, RTN(w, 2, 16, false))
	if mseFP4/float64(len(w.Data)) >= mse2 {
		t.Fatal("FP4 should beat 2-bit RTN on Gaussian weights")
	}
}

func TestBinarizePreservesSignAndScale(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	w := tensor.Randn(rng, 8, 32, 1)
	b := Binarize(w, 8)
	for i, v := range w.Data {
		if v > 0 && b.Data[i] <= 0 || v < 0 && b.Data[i] >= 0 {
			t.Fatal("binarization must preserve sign")
		}
	}
	// Group mean magnitude must equal mean |w| of the group.
	row := w.Row(0)[:8]
	want := 0.0
	for _, v := range row {
		want += math.Abs(v)
	}
	want /= 8
	if math.Abs(math.Abs(b.At(0, 0))-want) > 1e-12 {
		t.Fatalf("binarized magnitude = %v, want %v", b.At(0, 0), want)
	}
}

func TestBinarizeSelectiveKeepsMarked(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	w := tensor.Randn(rng, 4, 8, 1)
	keep := make([]bool, 32)
	keep[3] = true
	keep[17] = true
	b := BinarizeSelective(w, keep, 4)
	if b.Data[3] != w.Data[3] || b.Data[17] != w.Data[17] {
		t.Fatal("kept weights must pass through exactly")
	}
	if b.Data[0] == w.Data[0] && b.Data[1] == w.Data[1] && b.Data[2] == w.Data[2] {
		t.Fatal("non-kept weights should be binarized")
	}
}

package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestNF4LevelsSortedSymmetric(t *testing.T) {
	for i := 1; i < 16; i++ {
		if nf4Levels[i] <= nf4Levels[i-1] {
			t.Fatal("NF4 levels must be strictly increasing")
		}
	}
	if nf4Levels[0] != -1 || nf4Levels[15] != 1 || nf4Levels[7] != 0 {
		t.Fatal("NF4 endpoints/zero wrong")
	}
}

func TestNF4RoundTripAllCodes(t *testing.T) {
	for code := uint16(0); code < 16; code++ {
		v := NF4Decode(code)
		got, out := NF4Quantize(v)
		if got != code || out != v {
			t.Fatalf("code %d round-tripped to %d (%v -> %v)", code, got, v, out)
		}
	}
}

func TestNF4NearestNeighbour(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := rng.Float64()*2 - 1
		_, out := NF4Quantize(v)
		// out must be at least as close as every level.
		d := math.Abs(v - out)
		for _, lv := range nf4Levels {
			if math.Abs(v-lv) < d-1e-15 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestNF4ClampsOutOfRange(t *testing.T) {
	if c, v := NF4Quantize(5); c != 15 || v != 1 {
		t.Fatal("positive clamp")
	}
	if c, v := NF4Quantize(-5); c != 0 || v != -1 {
		t.Fatal("negative clamp")
	}
}

func TestNF4BeatsSymmetricUniformOnGaussian(t *testing.T) {
	// The design property of NF4 (QLoRA): lower MSE than a *symmetric*
	// absmax-scaled uniform int4 grid on N(0,σ²) weights — both grids
	// normalize by the same per-group absmax, NF4 just places its levels
	// on normal quantiles. (An asymmetric min-max grid is a different
	// trade and can win on small groups, which is why both exist.)
	rng := rand.New(rand.NewSource(9))
	w := tensor.Randn(rng, 32, 64, 0.3)
	dqNF4, _ := NF4Matrix(w, 16)
	sym := RTN(w, 4, 16, true)
	dqS := sym.Dequantize()
	mse := func(dq *tensor.Mat) float64 {
		s := 0.0
		for i := range w.Data {
			d := w.Data[i] - dq.Data[i]
			s += d * d
		}
		return s
	}
	if mse(dqNF4) >= mse(dqS) {
		t.Fatalf("NF4 MSE %v not better than symmetric uniform %v on Gaussian weights", mse(dqNF4), mse(dqS))
	}
}

func TestNF4MatrixValid(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	w := tensor.Randn(rng, 8, 24, 1)
	dq, q := NF4Matrix(w, 8)
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if dq.Rows != 8 || dq.Cols != 24 {
		t.Fatal("shape")
	}
	// Every dequantized value must be scale * a valid level.
	ng := q.NumGroups()
	for r := 0; r < 8; r++ {
		for c := 0; c < 24; c++ {
			scale := q.Params[r*ng+c/8].Scale
			v := dq.At(r, c) / scale
			ok := false
			for _, lv := range nf4Levels {
				if math.Abs(v-lv) < 1e-12 {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("value at (%d,%d) not on the NF4 grid", r, c)
			}
		}
	}
}

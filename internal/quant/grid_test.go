package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFitGroupAsymmetricRange(t *testing.T) {
	vals := []float64{-1, 0, 0.5, 1}
	p := FitGroup(vals, 4, false)
	// Grid must cover [min, max]: extremes quantize within scale/2.
	for _, v := range vals {
		q := p.Quantize(v, 4)
		if math.Abs(q-v) > p.Scale/2+1e-12 {
			t.Fatalf("quant(%v) = %v, err > scale/2", v, q)
		}
	}
}

func TestFitGroupSymmetricZeroExact(t *testing.T) {
	// Symmetric grid with even code count around midpoint: zero must map to
	// (nearly) zero.
	p := FitGroup([]float64{-2, -1, 1, 2}, 4, true)
	if got := p.Quantize(0, 4); math.Abs(got) > p.Scale/2 {
		t.Fatalf("quant(0) = %v on symmetric grid", got)
	}
}

func TestQuantizeIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64()
		}
		for _, bits := range []int{2, 3, 4, 8} {
			p := FitGroup(vals, bits, false)
			for _, v := range vals {
				q1 := p.Quantize(v, bits)
				q2 := p.Quantize(q1, bits)
				if math.Abs(q1-q2) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantErrorBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64() * 3
		}
		for _, bits := range []int{2, 4} {
			p := FitGroup(vals, bits, false)
			for _, v := range vals {
				if math.Abs(p.Quantize(v, bits)-v) > p.MaxQuantError()+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeClamps(t *testing.T) {
	p := GroupParams{Scale: 1, Zero: 0}
	if p.Encode(1000, 4) != 15 {
		t.Fatal("Encode must clamp high")
	}
	if p.Encode(-1000, 4) != 0 {
		t.Fatal("Encode must clamp low")
	}
}

func TestMoreBitsNeverWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vals := make([]float64, 64)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	mse := func(bits int) float64 {
		p := FitGroup(vals, bits, false)
		s := 0.0
		for _, v := range vals {
			d := p.Quantize(v, bits) - v
			s += d * d
		}
		return s
	}
	if !(mse(2) >= mse(3) && mse(3) >= mse(4) && mse(4) >= mse(8)) {
		t.Fatalf("MSE not monotone in bits: 2→%v 3→%v 4→%v 8→%v", mse(2), mse(3), mse(4), mse(8))
	}
}

func TestQuantizeSliceAliasable(t *testing.T) {
	v := []float64{0.1, -0.7, 0.3}
	orig := append([]float64(nil), v...)
	p := QuantizeSlice(v, v, 4, false)
	for i := range v {
		if math.Abs(v[i]-orig[i]) > p.MaxQuantError()+1e-9 {
			t.Fatal("in-place quantization exceeded error bound")
		}
	}
}

func TestFitGroupEmptyAndConstant(t *testing.T) {
	p := FitGroup(nil, 4, false)
	if p.Scale == 0 {
		t.Fatal("empty group must not produce zero scale")
	}
	p = FitGroup([]float64{0, 0, 0}, 4, true)
	if got := p.Quantize(0, 4); math.Abs(got) > 1e-9 {
		t.Fatalf("all-zero group: quant(0) = %v", got)
	}
}

func TestFitGroupBadBitsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bits=0")
		}
	}()
	FitGroup([]float64{1}, 0, false)
}

package quant

import (
	"math"
	"sort"

	"repro/internal/tensor"
)

// nf4Levels are the 16 levels of the NF4 (4-bit NormalFloat) data type
// introduced by QLoRA: the quantiles of a standard normal distribution,
// normalized to [-1, 1], with an exact zero. Gaussian-distributed weights
// incur lower expected rounding error on this grid than on a uniform one,
// which is why NF4 is the default in several deployment stacks; it is
// included here as an alternative weight grid and an ablation point.
var nf4Levels = [16]float64{
	-1.0, -0.6961928009986877, -0.5250730514526367, -0.39491748809814453,
	-0.28444138169288635, -0.18477343022823334, -0.09105003625154495, 0.0,
	0.07958029955625534, 0.16093020141124725, 0.24611230194568634, 0.33791524171829224,
	0.44070982933044434, 0.5626170039176941, 0.7229568362236023, 1.0,
}

// NF4Quantize rounds v (assumed pre-scaled to [-1, 1]) to the nearest NF4
// level, returning the 4-bit code and the decoded value.
func NF4Quantize(v float64) (code uint16, out float64) {
	// Levels are sorted: binary search for the insertion point, then pick
	// the nearer neighbour.
	i := sort.SearchFloat64s(nf4Levels[:], v)
	if i == 0 {
		return 0, nf4Levels[0]
	}
	if i >= len(nf4Levels) {
		return 15, nf4Levels[15]
	}
	if v-nf4Levels[i-1] <= nf4Levels[i]-v {
		return uint16(i - 1), nf4Levels[i-1]
	}
	return uint16(i), nf4Levels[i]
}

// NF4Decode maps a 4-bit NF4 code to its real value.
func NF4Decode(code uint16) float64 { return nf4Levels[code&15] }

// NF4Matrix quantizes w (out x in) to NF4 with one absmax scale per
// (row, group), returning the dequantized matrix and its code
// representation (Bits = 4; Params.Zero unused).
func NF4Matrix(w *tensor.Mat, groupSize int) (*tensor.Mat, *QuantizedMatrix) {
	if groupSize <= 0 || groupSize > w.Cols {
		groupSize = w.Cols
	}
	ng := (w.Cols + groupSize - 1) / groupSize
	q := &QuantizedMatrix{
		Rows: w.Rows, Cols: w.Cols, GroupSize: groupSize, Bits: 4,
		Codes:  make([]uint16, w.Rows*w.Cols),
		Params: make([]GroupParams, w.Rows*ng),
	}
	dq := tensor.New(w.Rows, w.Cols)
	for r := 0; r < w.Rows; r++ {
		row := w.Row(r)
		drow := dq.Row(r)
		for g := 0; g < ng; g++ {
			lo := g * groupSize
			hi := lo + groupSize
			if hi > w.Cols {
				hi = w.Cols
			}
			absmax := 0.0
			for _, v := range row[lo:hi] {
				if a := math.Abs(v); a > absmax {
					absmax = a
				}
			}
			if absmax == 0 {
				absmax = 1e-12
			}
			q.Params[r*ng+g] = GroupParams{Scale: absmax}
			for c := lo; c < hi; c++ {
				code, val := NF4Quantize(row[c] / absmax)
				q.Codes[r*w.Cols+c] = code
				drow[c] = val * absmax
			}
		}
	}
	return dq, q
}

package quant

import (
	"math"

	"repro/internal/tensor"
)

// Binarize performs 1-bit sign-mean quantization of w per (row, group):
// ŵ = sign(w) · mean(|w| over the group). This is the binarized portion of
// PB-LLM (Partially Binarized LLMs), which keeps a "salient" fraction of
// weights in high precision and binarizes the rest; see
// internal/baselines.PBLLM for the full method.
//
// The returned mask reports which entries were binarized (all of them here;
// PB-LLM composes this with a saliency mask).
func Binarize(w *tensor.Mat, groupSize int) *tensor.Mat {
	if groupSize <= 0 || groupSize > w.Cols {
		groupSize = w.Cols
	}
	out := tensor.New(w.Rows, w.Cols)
	ng := (w.Cols + groupSize - 1) / groupSize
	for r := 0; r < w.Rows; r++ {
		row := w.Row(r)
		orow := out.Row(r)
		for g := 0; g < ng; g++ {
			lo := g * groupSize
			hi := lo + groupSize
			if hi > w.Cols {
				hi = w.Cols
			}
			mean := 0.0
			for _, v := range row[lo:hi] {
				mean += math.Abs(v)
			}
			mean /= float64(hi - lo)
			for c := lo; c < hi; c++ {
				if row[c] >= 0 {
					orow[c] = mean
				} else {
					orow[c] = -mean
				}
			}
		}
	}
	return out
}

// BinarizeSelective binarizes only the entries where keep[i] is false,
// copying kept entries through at full precision. keep is row-major with
// len == Rows*Cols. The per-group |w| mean is computed over the binarized
// entries only, matching PB-LLM's treatment.
func BinarizeSelective(w *tensor.Mat, keep []bool, groupSize int) *tensor.Mat {
	if len(keep) != w.Rows*w.Cols {
		panic("quant: BinarizeSelective mask length mismatch")
	}
	if groupSize <= 0 || groupSize > w.Cols {
		groupSize = w.Cols
	}
	out := tensor.New(w.Rows, w.Cols)
	ng := (w.Cols + groupSize - 1) / groupSize
	for r := 0; r < w.Rows; r++ {
		row := w.Row(r)
		orow := out.Row(r)
		for g := 0; g < ng; g++ {
			lo := g * groupSize
			hi := lo + groupSize
			if hi > w.Cols {
				hi = w.Cols
			}
			mean, n := 0.0, 0
			for c := lo; c < hi; c++ {
				if !keep[r*w.Cols+c] {
					mean += math.Abs(row[c])
					n++
				}
			}
			if n > 0 {
				mean /= float64(n)
			}
			for c := lo; c < hi; c++ {
				if keep[r*w.Cols+c] {
					orow[c] = row[c]
				} else if row[c] >= 0 {
					orow[c] = mean
				} else {
					orow[c] = -mean
				}
			}
		}
	}
	return out
}

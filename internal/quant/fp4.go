package quant

import (
	"math"

	"repro/internal/tensor"
)

// fp4Levels are the non-negative magnitudes of the e2m1 FP4 format
// (1 sign bit, 2 exponent bits, 1 mantissa bit): {0, .5, 1, 1.5, 2, 3, 4, 6}.
// LLM-FP4 ("FPQ" in the paper's Table 2) quantizes weights onto this grid
// with a per-group scale; this file is its documented stand-in.
var fp4Levels = [8]float64{0, 0.5, 1, 1.5, 2, 3, 4, 6}

// FP4Quantize rounds v (assumed pre-scaled so |v| <= 6) to the nearest FP4
// value and returns the 4-bit code (sign in bit 3) and the decoded value.
func FP4Quantize(v float64) (code uint16, out float64) {
	sign := uint16(0)
	a := v
	if a < 0 {
		sign = 8
		a = -a
	}
	best, bestDist := 0, math.Inf(1)
	for i, lv := range fp4Levels {
		if d := math.Abs(a - lv); d < bestDist {
			best, bestDist = i, d
		}
	}
	out = fp4Levels[best]
	if sign != 0 {
		out = -out
	}
	return sign | uint16(best), out
}

// FP4Decode maps a 4-bit e2m1 code back to its real value.
func FP4Decode(code uint16) float64 {
	v := fp4Levels[code&7]
	if code&8 != 0 {
		v = -v
	}
	return v
}

// FP4Matrix quantizes w (out x in) to FP4 with one scale per (row, group):
// scale = absmax/6 so the largest magnitude maps to the top FP4 level.
// The result reuses QuantizedMatrix with Bits=4; Params.Zero is unused (0)
// and Decode semantics are FP4-specific, so the matrix is returned already
// dequantized alongside its size accounting.
func FP4Matrix(w *tensor.Mat, groupSize int) (*tensor.Mat, *QuantizedMatrix) {
	if groupSize <= 0 || groupSize > w.Cols {
		groupSize = w.Cols
	}
	ng := (w.Cols + groupSize - 1) / groupSize
	q := &QuantizedMatrix{
		Rows: w.Rows, Cols: w.Cols, GroupSize: groupSize, Bits: 4,
		Codes:  make([]uint16, w.Rows*w.Cols),
		Params: make([]GroupParams, w.Rows*ng),
	}
	dq := tensor.New(w.Rows, w.Cols)
	for r := 0; r < w.Rows; r++ {
		row := w.Row(r)
		drow := dq.Row(r)
		for g := 0; g < ng; g++ {
			lo := g * groupSize
			hi := lo + groupSize
			if hi > w.Cols {
				hi = w.Cols
			}
			absmax := 0.0
			for _, v := range row[lo:hi] {
				if a := math.Abs(v); a > absmax {
					absmax = a
				}
			}
			scale := absmax / 6
			if scale == 0 {
				scale = 1e-12
			}
			q.Params[r*ng+g] = GroupParams{Scale: scale}
			for c := lo; c < hi; c++ {
				code, val := FP4Quantize(row[c] / scale)
				q.Codes[r*w.Cols+c] = code
				drow[c] = val * scale
			}
		}
	}
	return dq, q
}

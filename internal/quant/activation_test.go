package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestActQuantizerPerTokenErrorBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := tensor.Randn(rng, 1+rng.Intn(8), 2+rng.Intn(16), 2)
		a := &ActQuantizer{Bits: 8, PerToken: true}
		q := a.Quantize(x)
		for i := 0; i < x.Rows; i++ {
			row := x.Row(i)
			min, max := tensor.MinMax(row)
			if min > 0 {
				min = 0
			}
			if max < 0 {
				max = 0
			}
			scale := (max - min) / 255
			for j := range row {
				if math.Abs(q.At(i, j)-row[j]) > scale/2+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestActQuantizerDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.Randn(rng, 4, 8, 1)
	orig := x.Clone()
	(&ActQuantizer{Bits: 4, PerToken: true}).Quantize(x)
	if !x.Equal(orig, 0) {
		t.Fatal("Quantize must not mutate its input")
	}
}

func TestActQuantizerPerTensorVsPerToken(t *testing.T) {
	// A tensor with one huge-magnitude token: per-token quantization must
	// preserve the small tokens far better than per-tensor.
	x := tensor.New(2, 4)
	copy(x.Row(0), []float64{100, -100, 50, -50})
	copy(x.Row(1), []float64{0.1, -0.1, 0.05, -0.05})
	perToken := (&ActQuantizer{Bits: 4, PerToken: true}).Quantize(x)
	perTensor := (&ActQuantizer{Bits: 4, PerToken: false}).Quantize(x)
	errTok, errTen := 0.0, 0.0
	for j, v := range x.Row(1) {
		errTok += math.Abs(perToken.At(1, j) - v)
		errTen += math.Abs(perTensor.At(1, j) - v)
	}
	if errTok >= errTen {
		t.Fatalf("per-token error %v not better than per-tensor %v on outlier-dominated batch", errTok, errTen)
	}
}

func TestActQuantizerInPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := tensor.Randn(rng, 3, 6, 1)
	want := (&ActQuantizer{Bits: 6, PerToken: true}).Quantize(x)
	(&ActQuantizer{Bits: 6, PerToken: true}).QuantizeInPlace(x)
	if !x.Equal(want, 0) {
		t.Fatal("QuantizeInPlace differs from Quantize")
	}
}

func TestActQuantizerIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := tensor.Randn(rng, 3, 6, 1)
	a := &ActQuantizer{Bits: 5, PerToken: true}
	once := a.Quantize(x)
	twice := a.Quantize(once)
	if !once.Equal(twice, 1e-12) {
		t.Fatal("activation quantization must be idempotent")
	}
}

package quant

import (
	"fmt"
	"sync"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// PackedMatrix is the executable form of a quantized weight matrix: the
// dense bit-packed code stream of every row plus the per-(row, group)
// affine parameters, with nothing materialized to float64. It is what an
// edge deployment keeps resident — QuantizedMatrix is the manipulation
// format, PackedMatrix the serving format — and its matmul kernel
// dequantizes group-by-group on the fly, honoring per-row mixed precision.
//
// Each row's stream starts at a byte boundary (RowOff), so rows with
// different bit widths decode independently at the cost of at most 7
// padding bits per row.
type PackedMatrix struct {
	Rows, Cols int
	// GroupSize is the number of consecutive input-dimension (column)
	// entries sharing one scale/zero pair.
	GroupSize int
	// Bits is the uniform code width; RowBits, when non-nil, overrides it
	// per row (mixed precision within a matrix).
	Bits    int
	RowBits []int
	// RowOff[r] is the byte offset of row r's stream in Data;
	// RowOff[Rows] == len(Data).
	RowOff []int
	// Data holds the concatenated per-row packed code streams.
	Data []byte
	// Params holds one GroupParams per (row, group), row-major:
	// Params[r*numGroups + g].
	Params []GroupParams

	// lutOnce/lut lazily hold the per-(row, group) dequantization tables
	// of the LUT decode path (see EnsureLUT); pool recycles the per-worker
	// row-decode buffers of the matmul kernel so steady-state matrix
	// products allocate nothing.
	lutOnce sync.Once
	lut     *dequantLUT
	pool    sync.Pool
}

// bitsForRow returns the bit width used by row r.
func (p *PackedMatrix) bitsForRow(r int) int {
	if p.RowBits != nil {
		return p.RowBits[r]
	}
	return p.Bits
}

// NumGroups returns the number of column groups per row.
func (p *PackedMatrix) NumGroups() int {
	return (p.Cols + p.GroupSize - 1) / p.GroupSize
}

// rowOffsets computes the per-row byte offsets of a packed stream holding
// cols codes per row at the given (possibly per-row) bit widths.
func rowOffsets(rows, cols, bits int, rowBits []int) []int {
	off := make([]int, rows+1)
	for r := 0; r < rows; r++ {
		b := bits
		if rowBits != nil {
			b = rowBits[r]
		}
		off[r+1] = off[r] + PackedSize(cols, b)
	}
	return off
}

// PackMatrix converts a QuantizedMatrix into its packed executable form.
// It validates the input first, so a code out of range for its row's bit
// width is reported (by Validate) rather than silently truncated.
func PackMatrix(q *QuantizedMatrix) (*PackedMatrix, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	p := &PackedMatrix{
		Rows: q.Rows, Cols: q.Cols, GroupSize: q.GroupSize, Bits: q.Bits,
		RowOff: rowOffsets(q.Rows, q.Cols, q.Bits, q.RowBits),
		Params: append([]GroupParams(nil), q.Params...),
	}
	if q.RowBits != nil {
		p.RowBits = append([]int(nil), q.RowBits...)
	}
	p.Data = make([]byte, 0, p.RowOff[q.Rows])
	for r := 0; r < q.Rows; r++ {
		p.Data = append(p.Data, Pack(q.Codes[r*q.Cols:(r+1)*q.Cols], p.bitsForRow(r))...)
	}
	return p, nil
}

// NewPackedFromStream reassembles a PackedMatrix from its serialized parts
// (the compressed-checkpoint load path), validating stream and parameter
// lengths.
func NewPackedFromStream(rows, cols, groupSize, bits int, rowBits []int, data []byte, params []GroupParams) (*PackedMatrix, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("quant: invalid packed shape %dx%d", rows, cols)
	}
	if groupSize <= 0 {
		return nil, fmt.Errorf("quant: invalid packed group size %d", groupSize)
	}
	if rowBits != nil && len(rowBits) != rows {
		return nil, fmt.Errorf("quant: %d row bit widths for %d rows", len(rowBits), rows)
	}
	for r := 0; r < rows; r++ {
		b := bits
		if rowBits != nil {
			b = rowBits[r]
		}
		if b < 1 || b > 16 {
			return nil, fmt.Errorf("quant: row %d has invalid bit width %d", r, b)
		}
	}
	p := &PackedMatrix{
		Rows: rows, Cols: cols, GroupSize: groupSize, Bits: bits,
		RowBits: rowBits,
		RowOff:  rowOffsets(rows, cols, bits, rowBits),
		Data:    data,
		Params:  params,
	}
	if len(data) != p.RowOff[rows] {
		return nil, fmt.Errorf("quant: packed stream has %d bytes, want %d", len(data), p.RowOff[rows])
	}
	if want := rows * p.NumGroups(); len(params) != want {
		return nil, fmt.Errorf("quant: packed matrix has %d group params, want %d", len(params), want)
	}
	return p, nil
}

// DecodeRowInto dequantizes row r of the weight matrix into dst
// (len >= Cols), group by group straight from the bit stream. The decoded
// values are bit-identical to Dequantize() of the source QuantizedMatrix.
func (p *PackedMatrix) DecodeRowInto(dst []float64, r int) {
	bits := p.bitsForRow(r)
	data := p.Data[p.RowOff[r]:p.RowOff[r+1]]
	ng := p.NumGroups()
	mask := uint64(1)<<bits - 1
	var acc uint64
	nacc := 0
	idx := 0
	c := 0
	for g := 0; g < ng; g++ {
		gp := p.Params[r*ng+g]
		scale, zero := gp.Scale, gp.Zero
		hi := c + p.GroupSize
		if hi > p.Cols {
			hi = p.Cols
		}
		for ; c < hi; c++ {
			if nacc < bits {
				// Refill the accumulator to capacity so most codes extract
				// with just a mask and shift.
				for nacc <= 56 && idx < len(data) {
					acc |= uint64(data[idx]) << nacc
					idx++
					nacc += 8
				}
			}
			dst[c] = (float64(acc&mask) - zero) * scale
			acc >>= bits
			nacc -= bits
		}
	}
}

// DecodeRowsInto dequantizes weight rows [lo, lo+dst.Rows) into dst
// (dst.Cols == Cols), building the dequantization tables on first use —
// the multi-column decode entry of the chunked prefill path (weight rows
// are output columns of x·Wᵀ). The decoded values are bit-identical to
// DecodeRowInto row by row.
func (p *PackedMatrix) DecodeRowsInto(dst *tensor.Mat, lo int) {
	if dst.Cols != p.Cols || lo < 0 || lo+dst.Rows > p.Rows {
		panic(fmt.Sprintf("quant: DecodeRowsInto rows [%d,%d) of %dx%d into %dx%d",
			lo, lo+dst.Rows, p.Rows, p.Cols, dst.Rows, dst.Cols))
	}
	p.EnsureLUT() //aptq:ignore noalloc LUT build runs once per matrix behind sync.Once; steady state reads the cached tables
	p.decodeRows(dst.Data, lo, dst.Rows, p.lut)
}

// Unpack reverses PackMatrix, reconstructing the manipulation-format
// QuantizedMatrix (codes and parameters are copied).
func (p *PackedMatrix) Unpack() *QuantizedMatrix {
	q := &QuantizedMatrix{
		Rows: p.Rows, Cols: p.Cols, GroupSize: p.GroupSize, Bits: p.Bits,
		Codes:  make([]uint16, p.Rows*p.Cols),
		Params: append([]GroupParams(nil), p.Params...),
	}
	if p.RowBits != nil {
		q.RowBits = append([]int(nil), p.RowBits...)
	}
	for r := 0; r < p.Rows; r++ {
		UnpackInto(q.Codes[r*p.Cols:(r+1)*p.Cols], p.Data[p.RowOff[r]:p.RowOff[r+1]], p.bitsForRow(r))
	}
	return q
}

// Dequantize materializes the full float64 weight matrix (test/debug path;
// the matmul kernels never call it).
func (p *PackedMatrix) Dequantize() *tensor.Mat {
	m := tensor.New(p.Rows, p.Cols)
	for r := 0; r < p.Rows; r++ {
		p.DecodeRowInto(m.Row(r), r)
	}
	return m
}

// decodeBlockRows is the number of weight rows each matmul worker decodes
// together before running the inner products: enough that a multi-row x
// reuses every decoded block from cache, small enough that the per-worker
// scratch stays a few KiB.
const decodeBlockRows = 8

// getDecodeBuf returns a pooled decodeBlockRows x Cols scratch buffer.
func (p *PackedMatrix) getDecodeBuf() *[]float64 {
	if v, ok := p.pool.Get().(*[]float64); ok {
		return v
	}
	b := make([]float64, decodeBlockRows*p.Cols) //aptq:ignore noalloc pool-miss path: the buffer enters the pool and the steady state reuses it
	return &b
}

// MatMulNTInto computes out = x·Wᵀ for x (n x Cols) against the packed
// weight matrix W (Rows x Cols), dequantizing W a block of rows at a time
// into a pooled per-worker scratch buffer. Every shape decodes through
// the LUT tables (EnsureLUT, built lazily on the first product) — 4-bit
// byte-aligned rows through the specialized two-codes-per-byte decoder —
// so each code costs a table load instead of the affine arithmetic;
// previously only matrix-matrix prefill products (x.Rows > 1) took the
// tables, leaving the single-row matvec of per-token decode, the hot loop
// of a serving deployment, on the slow path. Weight rows (output columns)
// partition across workers; each output element accumulates its k-terms
// in ascending order from a zero accumulator — the exact inner-loop order
// of tensor.MatMulNTInto — so the result is bit-identical to
// MatMulNT(x, W.Dequantize()) at any worker count, with or without LUT.
func (p *PackedMatrix) MatMulNTInto(out, x *tensor.Mat) {
	if x.Cols != p.Cols || out.Rows != x.Rows || out.Cols != p.Rows {
		panic(fmt.Sprintf("quant: packed MatMulNT shape mismatch %dx%d · (%dx%d)ᵀ -> %dx%d",
			x.Rows, x.Cols, p.Rows, p.Cols, out.Rows, out.Cols))
	}
	p.EnsureLUT() //aptq:ignore noalloc LUT build runs once per matrix behind sync.Once; steady state reads the cached tables
	lut := p.lut
	if parallel.Workers() == 1 {
		p.matMulNTRange(out, x, lut, 0, p.Rows)
		return
	}
	parallel.For(p.Rows, rowGrainPacked(x.Rows*p.Cols), func(lo, hi int) {
		p.matMulNTRange(out, x, lut, lo, hi)
	})
}

// matMulNTRange computes output columns [lo, hi) of out = x·Wᵀ, decoding
// the owned weight rows block by block through a pooled scratch buffer.
// Four rows of x run together against each decoded weight row — four
// independent accumulator chains sharing the streamed row, the same
// latency-hiding blocking as tensor's kernel — while every output element
// keeps its ascending-k accumulation order, so the result stays
// bit-identical to the dequantized float matmul.
func (p *PackedMatrix) matMulNTRange(out, x *tensor.Mat, lut *dequantLUT, lo, hi int) {
	n := out.Cols
	buf := p.getDecodeBuf()
	w := *buf
	for j0 := lo; j0 < hi; j0 += decodeBlockRows {
		j1 := j0 + decodeBlockRows
		if j1 > hi {
			j1 = hi
		}
		p.decodeRows(w, j0, j1-j0, lut)
		i := 0
		for ; i+3 < x.Rows; i += 4 {
			x0, x1, x2, x3 := x.Row(i), x.Row(i+1), x.Row(i+2), x.Row(i+3)
			for j := j0; j < j1; j++ {
				wrow := w[(j-j0)*p.Cols : (j-j0+1)*p.Cols]
				var s0, s1, s2, s3 float64
				for k, wv := range wrow {
					s0 += x0[k] * wv
					s1 += x1[k] * wv
					s2 += x2[k] * wv
					s3 += x3[k] * wv
				}
				out.Data[i*n+j] = s0
				out.Data[(i+1)*n+j] = s1
				out.Data[(i+2)*n+j] = s2
				out.Data[(i+3)*n+j] = s3
			}
		}
		for ; i < x.Rows; i++ {
			xrow := x.Row(i)
			for j := j0; j < j1; j++ {
				wrow := w[(j-j0)*p.Cols : (j-j0+1)*p.Cols]
				s := 0.0
				for k, xv := range xrow {
					s += xv * wrow[k]
				}
				out.Data[i*n+j] = s
			}
		}
	}
	p.pool.Put(buf)
}

// MatMulNT returns x·Wᵀ (see MatMulNTInto).
func (p *PackedMatrix) MatMulNT(x *tensor.Mat) *tensor.Mat {
	out := tensor.New(x.Rows, p.Rows)
	p.MatMulNTInto(out, x)
	return out
}

// rowGrainPacked mirrors tensor's chunk sizing: enough weight rows per
// chunk that one chunk carries roughly 1<<15 multiply-adds (plus the row
// decode, which is linear in Cols and amortized by the same constant).
func rowGrainPacked(opsPerRow int) int {
	if opsPerRow <= 0 {
		return 1
	}
	g := (1 << 15) / opsPerRow
	if g < 1 {
		g = 1
	}
	return g
}

// SizeBytes returns the resident memory footprint of the packed form: the
// bit streams, the float64 group parameters, and the per-row offset/width
// bookkeeping. This is the number the serving-memory comparisons report
// against 8 bytes per float64 weight.
func (p *PackedMatrix) SizeBytes() int64 {
	b := int64(len(p.Data)) + int64(len(p.Params))*16 + int64(len(p.RowOff))*8
	if p.RowBits != nil {
		b += int64(len(p.RowBits)) * 8
	}
	return b
}

// AvgBits returns the average resident bits per weight including all
// metadata (cf. QuantizedMatrix.AvgBits, which uses the paper's fp16
// metadata convention instead of the actual in-memory float64 params).
func (p *PackedMatrix) AvgBits() float64 {
	return float64(p.SizeBytes()*8) / float64(p.Rows*p.Cols)
}

package quant

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// QuantizedMatrix is the storage format of a quantized weight matrix: packed
// integer codes plus per-(row, group) affine parameters. It is the artifact
// every quantization method in this repository produces, and its SizeBits
// accounting is what the "Avg bit" columns of the paper's tables measure.
type QuantizedMatrix struct {
	Rows, Cols int
	// GroupSize is the number of consecutive input-dimension (column)
	// entries sharing one scale/zero pair.
	GroupSize int
	// Bits per code. For mixed-precision matrices built row-by-row, see
	// RowBits; when RowBits is nil all rows use Bits.
	Bits int
	// RowBits optionally overrides Bits per row (mixed-precision within a
	// matrix). len(RowBits) == Rows when non-nil.
	RowBits []int
	// Codes holds one integer code per weight, row-major, unpacked for
	// simplicity of manipulation; Pack() produces the bit-exact packed form.
	Codes []uint16
	// Params holds one GroupParams per (row, group), row-major:
	// Params[r*numGroups + g].
	Params []GroupParams
}

// NumGroups returns the number of column groups per row.
func (q *QuantizedMatrix) NumGroups() int {
	return (q.Cols + q.GroupSize - 1) / q.GroupSize
}

// bitsForRow returns the bit width used by row r.
func (q *QuantizedMatrix) bitsForRow(r int) int {
	if q.RowBits != nil {
		return q.RowBits[r]
	}
	return q.Bits
}

// Dequantize materializes the full real-valued weight matrix.
func (q *QuantizedMatrix) Dequantize() *tensor.Mat {
	m := tensor.New(q.Rows, q.Cols)
	ng := q.NumGroups()
	for r := 0; r < q.Rows; r++ {
		row := m.Row(r)
		for c := 0; c < q.Cols; c++ {
			p := q.Params[r*ng+c/q.GroupSize]
			row[c] = p.Decode(int(q.Codes[r*q.Cols+c]))
		}
	}
	return m
}

// SizeBits returns the total storage footprint in bits: packed codes plus
// 16-bit scale and zero-point per group (the fp16 metadata convention used
// in GPTQ-style size accounting).
func (q *QuantizedMatrix) SizeBits() int64 {
	ng := q.NumGroups()
	var bits int64
	for r := 0; r < q.Rows; r++ {
		bits += int64(q.Cols * q.bitsForRow(r))
	}
	bits += int64(q.Rows * ng * 2 * 16)
	return bits
}

// AvgBits returns the average bits per weight including group metadata.
func (q *QuantizedMatrix) AvgBits() float64 {
	return float64(q.SizeBits()) / float64(q.Rows*q.Cols)
}

// Validate checks internal consistency of the quantized representation.
func (q *QuantizedMatrix) Validate() error {
	if q.Rows <= 0 || q.Cols <= 0 {
		return fmt.Errorf("quant: invalid shape %dx%d", q.Rows, q.Cols)
	}
	if q.GroupSize <= 0 {
		return fmt.Errorf("quant: invalid group size %d", q.GroupSize)
	}
	if len(q.Codes) != q.Rows*q.Cols {
		return fmt.Errorf("quant: %d codes for %dx%d matrix", len(q.Codes), q.Rows, q.Cols)
	}
	if want := q.Rows * q.NumGroups(); len(q.Params) != want {
		return fmt.Errorf("quant: %d params, want %d", len(q.Params), want)
	}
	if q.RowBits != nil && len(q.RowBits) != q.Rows {
		return fmt.Errorf("quant: %d row bit widths for %d rows", len(q.RowBits), q.Rows)
	}
	for r := 0; r < q.Rows; r++ {
		b := q.bitsForRow(r)
		if b < 1 || b > 16 {
			return fmt.Errorf("quant: row %d has invalid bit width %d", r, b)
		}
		qmax := uint16(1)<<b - 1
		for c := 0; c < q.Cols; c++ {
			if q.Codes[r*q.Cols+c] > qmax {
				return fmt.Errorf("quant: code %d exceeds %d-bit range at (%d,%d)", q.Codes[r*q.Cols+c], b, r, c)
			}
		}
	}
	return nil
}

// RTN quantizes w (out x in) with plain round-to-nearest group quantization —
// the "RTN" baseline row of Table 2. groupSize <= 0 means one group spanning
// the whole row.
func RTN(w *tensor.Mat, bits, groupSize int, sym bool) *QuantizedMatrix {
	if groupSize <= 0 || groupSize > w.Cols {
		groupSize = w.Cols
	}
	q := &QuantizedMatrix{
		Rows:      w.Rows,
		Cols:      w.Cols,
		GroupSize: groupSize,
		Bits:      bits,
		Codes:     make([]uint16, w.Rows*w.Cols),
		Params:    make([]GroupParams, w.Rows*((w.Cols+groupSize-1)/groupSize)),
	}
	ng := q.NumGroups()
	for r := 0; r < w.Rows; r++ {
		row := w.Row(r)
		for g := 0; g < ng; g++ {
			lo := g * groupSize
			hi := lo + groupSize
			if hi > w.Cols {
				hi = w.Cols
			}
			p := FitGroup(row[lo:hi], bits, sym)
			q.Params[r*ng+g] = p
			for c := lo; c < hi; c++ {
				q.Codes[r*w.Cols+c] = uint16(p.Encode(row[c], bits))
			}
		}
	}
	return q
}

// QuantizationError returns mean squared error and max absolute error
// between w and its quantized form.
func QuantizationError(w *tensor.Mat, q *QuantizedMatrix) (mse, maxAbs float64) {
	dq := q.Dequantize()
	n := float64(len(w.Data))
	for i, v := range w.Data {
		d := v - dq.Data[i]
		mse += d * d
		if a := math.Abs(d); a > maxAbs {
			maxAbs = a
		}
	}
	return mse / n, maxAbs
}

package quant

import "repro/internal/tensor"

// ActQuantizer performs dynamic fake quantization of activations — the
// runtime half of weight+activation schemes like SmoothQuant's W8A8.
// Quantization is "fake" in the simulation sense: values are rounded to the
// integer grid and immediately dequantized, so downstream float math sees
// exactly the precision an integer kernel would.
type ActQuantizer struct {
	// Bits of the activation grid (8 for W8A8).
	Bits int
	// PerToken fits one scale/zero per row (token); otherwise one pair per
	// tensor. Per-token is the standard choice for LLM activations because
	// token magnitudes vary widely.
	PerToken bool
	// Sym selects a symmetric grid.
	Sym bool
}

// Quantize returns the fake-quantized copy of x.
func (a *ActQuantizer) Quantize(x *tensor.Mat) *tensor.Mat {
	out := x.Clone()
	a.QuantizeInPlace(out)
	return out
}

// QuantizeInPlace fake-quantizes x in place.
func (a *ActQuantizer) QuantizeInPlace(x *tensor.Mat) {
	if a.PerToken {
		for i := 0; i < x.Rows; i++ {
			row := x.Row(i)
			QuantizeSlice(row, row, a.Bits, a.Sym)
		}
		return
	}
	QuantizeSlice(x.Data, x.Data, a.Bits, a.Sym)
}

package quant

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

func mustPanic(t *testing.T, contains string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q", contains)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, contains) {
			t.Fatalf("panic %v does not contain %q", r, contains)
		}
	}()
	fn()
}

func TestPackRejectsOutOfRangeCode(t *testing.T) {
	// A code >= 2^bits used to have its high bits silently dropped,
	// corrupting the round-trip; Pack must now report the offending index.
	codes := []uint16{1, 2, 3, 9, 0}
	mustPanic(t, "index 3", func() { Pack(codes, 3) })
	mustPanic(t, "exceeds 2-bit", func() { Pack([]uint16{4}, 2) })
	// Boundary values still pack.
	Pack([]uint16{7}, 3)
	Pack([]uint16{0xffff}, 16)
}

func TestUnpackRejectsShortData(t *testing.T) {
	data := Pack([]uint16{1, 2, 3}, 5)
	mustPanic(t, "Unpack needs", func() { Unpack(data, 4, 5) })
	mustPanic(t, "Unpack needs", func() { Unpack(data[:len(data)-1], 3, 5) })
}

func TestPackUnpackRoundTripAllWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for bits := 1; bits <= 16; bits++ {
		for _, n := range []int{0, 1, 3, 7, 8, 17, 64, 129} {
			codes := make([]uint16, n)
			limit := 1 << bits
			for i := range codes {
				codes[i] = uint16(rng.Intn(limit))
			}
			got := Unpack(Pack(codes, bits), n, bits)
			for i := range codes {
				if got[i] != codes[i] {
					t.Fatalf("bits=%d n=%d: code %d round-tripped %d -> %d", bits, n, i, codes[i], got[i])
				}
			}
		}
	}
}

// randomQuantized builds a random QuantizedMatrix; when rowBits is non-nil
// it is used as the per-row widths.
func randomQuantized(rng *rand.Rand, rows, cols, groupSize, bits int, rowBits []int) *QuantizedMatrix {
	q := &QuantizedMatrix{
		Rows: rows, Cols: cols, GroupSize: groupSize, Bits: bits,
		RowBits: rowBits,
		Codes:   make([]uint16, rows*cols),
		Params:  make([]GroupParams, rows*((cols+groupSize-1)/groupSize)),
	}
	for r := 0; r < rows; r++ {
		b := bits
		if rowBits != nil {
			b = rowBits[r]
		}
		for c := 0; c < cols; c++ {
			q.Codes[r*cols+c] = uint16(rng.Intn(1 << b))
		}
	}
	for i := range q.Params {
		q.Params[i] = GroupParams{Scale: 0.01 + rng.Float64(), Zero: float64(rng.Intn(8))}
	}
	return q
}

func TestPackMatrixRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	shapes := []struct{ rows, cols, group int }{
		{1, 1, 1}, {3, 5, 2}, {7, 13, 4}, {17, 31, 16}, {8, 24, 24}, {5, 9, 100},
	}
	for _, sh := range shapes {
		for bits := 1; bits <= 8; bits++ {
			var rowBits []int
			if sh.rows > 2 {
				rowBits = make([]int, sh.rows)
				for r := range rowBits {
					rowBits[r] = 1 + rng.Intn(8)
				}
			}
			q := randomQuantized(rng, sh.rows, sh.cols, sh.group, bits, rowBits)
			p, err := PackMatrix(q)
			if err != nil {
				t.Fatalf("%+v bits=%d: %v", sh, bits, err)
			}
			back := p.Unpack()
			for i := range q.Codes {
				if back.Codes[i] != q.Codes[i] {
					t.Fatalf("%+v bits=%d rowBits=%v: code %d round-tripped %d -> %d",
						sh, bits, rowBits, i, q.Codes[i], back.Codes[i])
				}
			}
			want := q.Dequantize()
			got := p.Dequantize()
			for i := range want.Data {
				if want.Data[i] != got.Data[i] {
					t.Fatalf("%+v bits=%d: dequantize mismatch at %d", sh, bits, i)
				}
			}
		}
	}
}

func TestPackMatrixRejectsInvalid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	q := randomQuantized(rng, 4, 6, 3, 3, nil)
	q.Codes[5] = 8 // out of 3-bit range
	if _, err := PackMatrix(q); err == nil {
		t.Fatal("expected validation error for out-of-range code")
	}
}

func TestNewPackedFromStreamValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	q := randomQuantized(rng, 4, 6, 3, 3, nil)
	p, err := PackMatrix(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPackedFromStream(p.Rows, p.Cols, p.GroupSize, p.Bits, nil, p.Data[:len(p.Data)-1], p.Params); err == nil {
		t.Fatal("expected stream length error")
	}
	if _, err := NewPackedFromStream(p.Rows, p.Cols, p.GroupSize, p.Bits, nil, p.Data, p.Params[:1]); err == nil {
		t.Fatal("expected params length error")
	}
	re, err := NewPackedFromStream(p.Rows, p.Cols, p.GroupSize, p.Bits, nil, p.Data, p.Params)
	if err != nil {
		t.Fatal(err)
	}
	if !re.Dequantize().Equal(q.Dequantize(), 0) {
		t.Fatal("reassembled stream decodes differently")
	}
}

func TestPackedMatMulNTBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	shapes := []struct{ rows, cols, group, xrows int }{
		{1, 1, 1, 1}, {3, 5, 2, 2}, {13, 7, 4, 3}, {31, 17, 16, 5}, {16, 48, 16, 1},
	}
	for _, sh := range shapes {
		for bits := 1; bits <= 8; bits++ {
			rowBits := make([]int, sh.rows)
			for r := range rowBits {
				rowBits[r] = 1 + rng.Intn(bits)
			}
			q := randomQuantized(rng, sh.rows, sh.cols, sh.group, bits, rowBits)
			p, err := PackMatrix(q)
			if err != nil {
				t.Fatal(err)
			}
			x := tensor.Randn(rng, sh.xrows, sh.cols, 1)
			x.Data[0] = 0 // exact zeros must not perturb the shared accumulation order
			want := tensor.MatMulNT(x, q.Dequantize())
			for _, workers := range []int{1, 2, 3, 8} {
				parallel.SetWorkers(workers)
				got := p.MatMulNT(x)
				parallel.SetWorkers(0)
				if !got.Equal(want, 0) {
					t.Fatalf("%+v bits=%d workers=%d: packed matmul not bit-identical", sh, bits, workers)
				}
			}
		}
	}
}

func TestPackedSizeBytesCompression(t *testing.T) {
	// The acceptance bar of the packed path: at 4-bit with the repo's
	// default group size, the resident packed bytes must be >= 3x smaller
	// than the float64 weights they replace.
	rng := rand.New(rand.NewSource(6))
	w := tensor.Randn(rng, 48, 48, 1)
	q := RTN(w, 4, 16, false)
	p, err := PackMatrix(q)
	if err != nil {
		t.Fatal(err)
	}
	floatBytes := int64(8 * w.Rows * w.Cols)
	if 3*p.SizeBytes() > floatBytes {
		t.Fatalf("packed %d bytes vs float64 %d bytes: less than 3x compression", p.SizeBytes(), floatBytes)
	}
}

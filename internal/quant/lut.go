package quant

// lutMaxBits bounds the code widths that get a dequantization table. A
// (1<<bits)-entry float64 table per (row, group) is tiny at deployment
// widths (<= 8 bits: at most 2 KiB per group) but would be 512 KiB per
// group at 16 bits, so wider rows keep the arithmetic decode path. Both
// paths produce bit-identical values.
const lutMaxBits = 8

// dequantLUT holds the per-(row, group) dequantization tables of a packed
// matrix: entry c of group (r, g)'s table is the decoded value
// (float64(c) - zero) * scale, precomputed once so the hot decode loop
// replaces the int-to-float convert, subtract and multiply of every code
// with a single table load. Entries are bit-identical to the arithmetic
// decode because they are computed by the exact same float64 expression.
type dequantLUT struct {
	// off[r*numGroups+g] is the start of group (r, g)'s table in tab, or
	// -1 when row r is wider than lutMaxBits and decodes arithmetically.
	off []int
	tab []float64
}

// EnsureLUT builds the dequantization tables. It is idempotent and safe
// for concurrent use — the packed matmul calls it lazily on the first
// product of any shape, single-row decode matvecs included — and rows
// wider than lutMaxBits are skipped (they keep the arithmetic decode).
// The tables are an acceleration structure, excluded from SizeBytes (see
// LUTBytes for their resident cost).
func (p *PackedMatrix) EnsureLUT() {
	p.lutOnce.Do(func() {
		ng := p.NumGroups()
		l := &dequantLUT{off: make([]int, p.Rows*ng)}
		size := 0
		for r := 0; r < p.Rows; r++ {
			bits := p.bitsForRow(r)
			for g := 0; g < ng; g++ {
				if bits > lutMaxBits {
					l.off[r*ng+g] = -1
					continue
				}
				l.off[r*ng+g] = size
				size += 1 << bits
			}
		}
		l.tab = make([]float64, size)
		for r := 0; r < p.Rows; r++ {
			bits := p.bitsForRow(r)
			if bits > lutMaxBits {
				continue
			}
			for g := 0; g < ng; g++ {
				gp := p.Params[r*ng+g]
				t := l.tab[l.off[r*ng+g]:][:1<<bits]
				for c := range t {
					t[c] = (float64(c) - gp.Zero) * gp.Scale
				}
			}
		}
		p.lut = l
	})
}

// LUTBytes reports the resident size of the dequantization tables (0
// until EnsureLUT runs). The tables are an acceleration structure of the
// prefill path, not part of the serialized packed form, so SizeBytes —
// the footprint the compression-ratio comparisons use — excludes them.
func (p *PackedMatrix) LUTBytes() int64 {
	if p.lut == nil {
		return 0
	}
	return int64(len(p.lut.tab))*8 + int64(len(p.lut.off))*8
}

// decodeRowLUT dequantizes row r into dst via the tables: the same
// streaming bit-accumulator as DecodeRowInto, with the affine arithmetic
// replaced by one table load per code. The caller guarantees the row is
// table-eligible (bits <= lutMaxBits).
//
//aptq:noalloc
func (p *PackedMatrix) decodeRowLUT(dst []float64, r int, lut *dequantLUT) {
	bits := p.bitsForRow(r)
	data := p.Data[p.RowOff[r]:p.RowOff[r+1]]
	ng := p.NumGroups()
	mask := uint64(1)<<bits - 1
	var acc uint64
	nacc := 0
	idx := 0
	c := 0
	for g := 0; g < ng; g++ {
		tab := lut.tab[lut.off[r*ng+g]:]
		hi := c + p.GroupSize
		if hi > p.Cols {
			hi = p.Cols
		}
		for ; c < hi; c++ {
			if nacc < bits {
				for nacc <= 56 && idx < len(data) {
					acc |= uint64(data[idx]) << nacc
					idx++
					nacc += 8
				}
			}
			dst[c] = tab[acc&mask]
			acc >>= bits
			nacc -= bits
		}
	}
}

// decodeRowLUT4 is the specialized decoder for the headline deployment
// width: 4-bit rows whose groups are byte-aligned (even GroupSize), i.e.
// exactly two codes per stream byte. It replaces the general streaming
// bit-accumulator — a serial refill/shift dependency chain per code —
// with one byte load and two table lookups, which is what makes the
// packed decode matvec competitive per token. The decoded values are the
// same table entries the general path loads, so the result is
// bit-identical.
//
//aptq:noalloc
func (p *PackedMatrix) decodeRowLUT4(dst []float64, r int, lut *dequantLUT) {
	data := p.Data[p.RowOff[r]:p.RowOff[r+1]]
	ng := p.NumGroups()
	idx, c := 0, 0
	for g := 0; g < ng; g++ {
		tab := lut.tab[lut.off[r*ng+g]:]
		hi := c + p.GroupSize
		if hi > p.Cols {
			hi = p.Cols
		}
		for ; c+1 < hi; c += 2 {
			b := data[idx]
			idx++
			dst[c] = tab[b&15]
			dst[c+1] = tab[b>>4]
		}
		if c < hi {
			// Odd tail: only the final (partial) group of an odd-Cols row;
			// the byte's high nibble is padding.
			dst[c] = tab[data[idx]&15]
			idx++
			c++
		}
	}
}

// decodeRows decodes weight rows [lo, lo+rows) into buf (rows*Cols,
// row-major). When lut is non-nil, table-eligible rows take the LUT path
// (4-bit byte-aligned rows the specialized two-codes-per-byte decoder);
// everything else (and every row when lut is nil) uses the arithmetic
// DecodeRowInto. All paths are bit-identical.
func (p *PackedMatrix) decodeRows(buf []float64, lo, rows int, lut *dequantLUT) {
	aligned4 := p.GroupSize%2 == 0
	for i := 0; i < rows; i++ {
		dst := buf[i*p.Cols : (i+1)*p.Cols]
		r := lo + i
		bits := p.bitsForRow(r)
		switch {
		case lut != nil && bits == 4 && aligned4:
			p.decodeRowLUT4(dst, r, lut)
		case lut != nil && bits <= lutMaxBits:
			p.decodeRowLUT(dst, r, lut)
		default:
			p.DecodeRowInto(dst, r)
		}
	}
}

package quant

import "fmt"

// Pack serializes integer codes into a dense bit stream, bits per code,
// little-endian within bytes. This is the on-device storage format; edge
// deployment size numbers come from len(Pack(...)).
func Pack(codes []uint16, bits int) []byte {
	if bits < 1 || bits > 16 {
		panic(fmt.Sprintf("quant: Pack with bit width %d", bits))
	}
	out := make([]byte, (len(codes)*bits+7)/8)
	bitPos := 0
	for _, c := range codes {
		v := uint32(c)
		for b := 0; b < bits; b++ {
			if v&(1<<b) != 0 {
				out[bitPos/8] |= 1 << (bitPos % 8)
			}
			bitPos++
		}
	}
	return out
}

// Unpack reverses Pack, reading n codes of the given bit width.
func Unpack(data []byte, n, bits int) []uint16 {
	if bits < 1 || bits > 16 {
		panic(fmt.Sprintf("quant: Unpack with bit width %d", bits))
	}
	out := make([]uint16, n)
	bitPos := 0
	for i := 0; i < n; i++ {
		var v uint16
		for b := 0; b < bits; b++ {
			if bitPos/8 >= len(data) {
				panic("quant: Unpack ran out of data")
			}
			if data[bitPos/8]&(1<<(bitPos%8)) != 0 {
				v |= 1 << b
			}
			bitPos++
		}
		out[i] = v
	}
	return out
}

// PackedSize returns the number of bytes Pack would produce for n codes.
func PackedSize(n, bits int) int { return (n*bits + 7) / 8 }

package quant

import "fmt"

// Pack serializes integer codes into a dense bit stream, bits per code,
// little-endian within bytes. This is the on-device storage format; edge
// deployment size numbers come from len(Pack(...)).
//
// Every code must fit in the given bit width: a code >= 2^bits would have
// its high bits silently dropped and corrupt the round-trip, so Pack
// validates and panics with the offending index instead.
func Pack(codes []uint16, bits int) []byte {
	if bits < 1 || bits > 16 {
		panic(fmt.Sprintf("quant: Pack with bit width %d", bits))
	}
	if bits < 16 {
		limit := uint16(1) << bits
		for i, c := range codes {
			if c >= limit {
				panic(fmt.Sprintf("quant: Pack: code %d at index %d exceeds %d-bit range", c, i, bits))
			}
		}
	}
	out := make([]byte, PackedSize(len(codes), bits))
	bitPos := 0
	for _, c := range codes {
		acc := uint32(c) << (bitPos % 8)
		idx := bitPos / 8
		out[idx] |= byte(acc)
		if acc > 0xff {
			out[idx+1] |= byte(acc >> 8)
			if acc > 0xffff {
				out[idx+2] |= byte(acc >> 16)
			}
		}
		bitPos += bits
	}
	return out
}

// Unpack reverses Pack, reading n codes of the given bit width. The length
// check is hoisted out of the decode loop: data must hold at least
// PackedSize(n, bits) bytes or Unpack panics up front, and the hot loop
// then streams codes through a 64-bit accumulator with no per-bit checks.
func Unpack(data []byte, n, bits int) []uint16 {
	if bits < 1 || bits > 16 {
		panic(fmt.Sprintf("quant: Unpack with bit width %d", bits))
	}
	if need := PackedSize(n, bits); len(data) < need {
		panic(fmt.Sprintf("quant: Unpack needs %d bytes for %d %d-bit codes, have %d", need, n, bits, len(data)))
	}
	out := make([]uint16, n)
	UnpackInto(out, data, bits)
	return out
}

// UnpackInto decodes len(dst) codes of the given bit width from data into
// dst. The caller guarantees data holds at least PackedSize(len(dst), bits)
// bytes; this is the allocation-free hot path shared by Unpack and the
// packed matrix row decoder.
func UnpackInto(dst []uint16, data []byte, bits int) {
	mask := uint64(1)<<bits - 1
	var acc uint64
	nacc := 0
	idx := 0
	for i := range dst {
		for nacc < bits {
			acc |= uint64(data[idx]) << nacc
			idx++
			nacc += 8
		}
		dst[i] = uint16(acc & mask)
		acc >>= bits
		nacc -= bits
	}
}

// PackedSize returns the number of bytes Pack would produce for n codes.
func PackedSize(n, bits int) int { return (n*bits + 7) / 8 }

// Package quant implements the quantization primitives shared by every
// method in this repository: uniform integer grids with group-wise affine
// (scale / zero-point) parameters, bit packing, round-to-nearest (RTN)
// matrix quantization, an FP4 (e2m1) grid for the FPQ baseline, and 1-bit
// sign-mean binarization for the PB-LLM baseline.
//
// Conventions follow GPTQ: weight matrices are (out x in); quantization
// groups run along the *input* dimension, so each (row, group-of-columns)
// pair has its own scale and zero-point. The paper uses group size 128 on
// LLaMA (d_model 4096); nano-scale experiments use proportionally smaller
// groups.
package quant

import (
	"fmt"
	"math"
)

// GroupParams holds the affine quantization parameters of one group:
// dequant(q) = (q - Zero) * Scale.
type GroupParams struct {
	Scale float64
	Zero  float64
}

// FitGroup computes min/max affine parameters for quantizing values to the
// given bit width. With sym=true the grid is symmetric around zero (zero
// point fixed at the grid midpoint and scale set from the absolute maximum);
// otherwise the full asymmetric min-max range is used, matching the
// GPTQ/AWQ convention for weight quantization.
func FitGroup(values []float64, bits int, sym bool) GroupParams {
	if bits < 1 || bits > 16 {
		panic(fmt.Sprintf("quant: unsupported bit width %d", bits))
	}
	if len(values) == 0 {
		return GroupParams{Scale: 1}
	}
	qmax := float64(int(1)<<bits - 1)
	min, max := values[0], values[0]
	for _, v := range values[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if sym {
		absmax := math.Max(math.Abs(min), math.Abs(max))
		if absmax == 0 {
			absmax = 1e-12
		}
		// Symmetric: codes 0..qmax, zero at the midpoint.
		scale := 2 * absmax / qmax
		return GroupParams{Scale: scale, Zero: math.Round(qmax / 2)}
	}
	if min > 0 {
		min = 0
	}
	if max < 0 {
		max = 0
	}
	scale := (max - min) / qmax
	if scale == 0 {
		scale = 1e-12
	}
	zero := math.Round(-min / scale)
	return GroupParams{Scale: scale, Zero: zero}
}

// Encode maps w to its nearest integer code on the grid, clamped to
// [0, 2^bits-1].
func (p GroupParams) Encode(w float64, bits int) int {
	qmax := int(1)<<bits - 1
	q := int(math.Round(w/p.Scale + p.Zero))
	if q < 0 {
		q = 0
	}
	if q > qmax {
		q = qmax
	}
	return q
}

// Decode maps an integer code back to its real value.
func (p GroupParams) Decode(q int) float64 {
	return (float64(q) - p.Zero) * p.Scale
}

// Quantize rounds w to the nearest representable value on the grid. This is
// the quant(w) function of eqs. (2) and (16).
func (p GroupParams) Quantize(w float64, bits int) float64 {
	return p.Decode(p.Encode(w, bits))
}

// QuantizeSlice writes the quantized (dequantized real) values of src into
// dst using a single parameter fit over all of src, returning the fitted
// parameters. dst may alias src.
func QuantizeSlice(dst, src []float64, bits int, sym bool) GroupParams {
	p := FitGroup(src, bits, sym)
	for i, v := range src {
		dst[i] = p.Quantize(v, bits)
	}
	return p
}

// MaxQuantError returns the worst-case rounding error of the grid, Scale/2.
// Useful as a tolerance bound in tests and error analyses.
func (p GroupParams) MaxQuantError() float64 { return p.Scale / 2 }

package quant

import (
	"math/rand"
	"testing"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// TestDecodeRowsIntoMatchesDecodeRowInto drives the LUT block decoder
// through the accumulator-refill edge cases: group sizes that do not
// divide the column count, single-column matrices, and per-row bit widths
// spanning the whole 1..16 range (16-bit rows exceed lutMaxBits and take
// the arithmetic fallback inside the same call). Every decoded block must
// equal the arithmetic per-row decode bit for bit.
func TestDecodeRowsIntoMatchesDecodeRowInto(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	shapes := []struct{ rows, cols, group int }{
		{1, 1, 1},    // single element
		{9, 1, 1},    // single-column: every code triggers a refill path
		{9, 1, 4},    // single-column with group larger than the row
		{7, 13, 5},   // group size does not divide cols
		{12, 31, 7},  // ragged tail group
		{5, 24, 100}, // one group spanning the whole row
	}
	widths := [][]int{
		nil,                    // uniform Bits
		{1, 16, 4, 8, 3, 2, 7}, // mixed, including the 1-bit and 16-bit extremes
	}
	for _, sh := range shapes {
		for _, w := range widths {
			var rowBits []int
			if w != nil {
				rowBits = make([]int, sh.rows)
				for r := range rowBits {
					rowBits[r] = w[r%len(w)]
				}
			}
			q := randomQuantized(rng, sh.rows, sh.cols, sh.group, 6, rowBits)
			p, err := PackMatrix(q)
			if err != nil {
				t.Fatalf("%+v rowBits=%v: %v", sh, rowBits, err)
			}
			want := tensor.New(sh.rows, sh.cols)
			for r := 0; r < sh.rows; r++ {
				p.DecodeRowInto(want.Row(r), r)
			}
			// Block decodes at several block sizes and offsets, LUT built.
			for _, block := range []int{1, 2, 3, sh.rows} {
				for lo := 0; lo+block <= sh.rows; lo += block {
					dst := tensor.New(block, sh.cols)
					p.DecodeRowsInto(dst, lo)
					for i := 0; i < block; i++ {
						for j := 0; j < sh.cols; j++ {
							if dst.At(i, j) != want.At(lo+i, j) {
								t.Fatalf("%+v rowBits=%v block=%d: row %d col %d decoded %v, want %v",
									sh, rowBits, block, lo+i, j, dst.At(i, j), want.At(lo+i, j))
							}
						}
					}
				}
			}
			if !p.Dequantize().Equal(q.Dequantize(), 0) {
				t.Fatalf("%+v rowBits=%v: Dequantize drifted from the quantized source", sh, rowBits)
			}
		}
	}
}

// TestDecodeRowLUT4AlignedMatchesGeneral pins the specialized
// two-codes-per-byte 4-bit decoder against the arithmetic reference on
// the shapes that stress its byte handling: odd column counts (a padded
// high nibble in the last group), partial tail groups, single columns,
// and the single-row matvec product that dispatches through it.
func TestDecodeRowLUT4AlignedMatchesGeneral(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	shapes := []struct{ rows, cols, group int }{
		{3, 1, 2},   // single column: immediate odd tail
		{6, 27, 4},  // odd cols, ragged tail group
		{5, 15, 2},  // odd cols, minimal even group
		{8, 32, 16}, // fully aligned
		{4, 9, 100}, // one group spanning an odd row
	}
	for _, sh := range shapes {
		q := randomQuantized(rng, sh.rows, sh.cols, sh.group, 4, nil) // uniform 4-bit
		p, err := PackMatrix(q)
		if err != nil {
			t.Fatal(err)
		}
		want := q.Dequantize()
		dst := tensor.New(sh.rows, sh.cols)
		p.DecodeRowsInto(dst, 0) // builds the LUT, takes the fast4 path
		if !dst.Equal(want, 0) {
			t.Fatalf("%+v: fast 4-bit decode drifted from the reference", sh)
		}
		x := tensor.Randn(rng, 1, sh.cols, 1)
		if !p.MatMulNT(x).Equal(tensor.MatMulNT(x, want), 0) {
			t.Fatalf("%+v: fast 4-bit matvec not bit-identical", sh)
		}
	}
}

// TestLUTSkipsWideRowsAndReportsBytes: rows wider than lutMaxBits get no
// table (their off entries are -1) but still decode identically, and
// LUTBytes is zero before the first build.
func TestLUTSkipsWideRowsAndReportsBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	rowBits := []int{4, 16, 9, 8, 1}
	q := randomQuantized(rng, len(rowBits), 10, 4, 8, rowBits)
	p, err := PackMatrix(q)
	if err != nil {
		t.Fatal(err)
	}
	if p.LUTBytes() != 0 {
		t.Fatalf("LUTBytes = %d before EnsureLUT", p.LUTBytes())
	}
	p.EnsureLUT()
	if p.LUTBytes() == 0 {
		t.Fatal("LUTBytes = 0 after EnsureLUT")
	}
	ng := p.NumGroups()
	for r, bits := range rowBits {
		for g := 0; g < ng; g++ {
			off := p.lut.off[r*ng+g]
			if bits > lutMaxBits && off != -1 {
				t.Fatalf("row %d (%d bits) has a table at offset %d", r, bits, off)
			}
			if bits <= lutMaxBits && off < 0 {
				t.Fatalf("row %d (%d bits) has no table", r, bits)
			}
		}
	}
	dst := tensor.New(p.Rows, p.Cols)
	p.DecodeRowsInto(dst, 0)
	if !dst.Equal(q.Dequantize(), 0) {
		t.Fatal("mixed LUT/arithmetic decode drifted from the reference")
	}
}

// TestPackedMatMulNTMultiRowBitIdentical pins the LUT-accelerated
// matrix-matrix path (x.Rows > 1 builds the tables) to the dequantized
// float reference at every worker count, on the same edge-case shapes as
// the decoder test.
func TestPackedMatMulNTMultiRowBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	shapes := []struct{ rows, cols, group, xrows int }{
		{1, 1, 1, 4},
		{9, 1, 1, 3},
		{7, 13, 5, 2},
		{31, 17, 16, 16},
		{16, 48, 16, 9},
	}
	for _, sh := range shapes {
		rowBits := make([]int, sh.rows)
		for r := range rowBits {
			rowBits[r] = []int{1, 16, 4, 8, 3}[r%5]
		}
		q := randomQuantized(rng, sh.rows, sh.cols, sh.group, 6, rowBits)
		p, err := PackMatrix(q)
		if err != nil {
			t.Fatal(err)
		}
		x := tensor.Randn(rng, sh.xrows, sh.cols, 1)
		x.Data[0] = 0 // exact zeros must not perturb the shared accumulation order
		want := tensor.MatMulNT(x, q.Dequantize())
		for _, workers := range []int{1, 2, 3, 8} {
			parallel.SetWorkers(workers)
			got := p.MatMulNT(x)
			parallel.SetWorkers(0)
			if !got.Equal(want, 0) {
				t.Fatalf("%+v workers=%d: multi-row packed matmul not bit-identical", sh, workers)
			}
		}
	}
}

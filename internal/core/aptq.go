package core

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/gptq"
	"repro/internal/model"
	"repro/internal/parallel"
	"repro/internal/quant"
)

// Options configures an APTQ quantization run (Algorithm 1).
type Options struct {
	// Ratio is R, the fraction of quantizable weights held at HighBits;
	// 1.0 reproduces uniform 4-bit APTQ, 0.75 the paper's APTQ-75%, etc.
	Ratio float64
	// HighBits / LowBits define the mixed-precision pair (4/2 in the
	// paper).
	HighBits, LowBits int
	// GroupSize / BlockSize / PercDamp / Sym configure the shared OBQ
	// engine (see gptq.Config).
	GroupSize, BlockSize int
	PercDamp             float64
	Sym                  bool
	// Probes per calibration segment for the Q/K Jacobian estimator.
	Probes int
	// ActOrder quantizes columns in decreasing Hessian-diagonal order (the
	// reference GPTQ implementation's act_order / desc_act flag), which
	// improves low-bit accuracy under heterogeneous activation energy.
	// Applied to single-Hessian layers; W_V's per-head bands keep natural
	// order.
	ActOrder bool
	// Metric selects the sensitivity score for Step 2.
	Metric SensitivityMetric
	// Allocator overrides the sensitivity-ordered allocation; the Table 3
	// ablation passes ManualBlockwise. Nil selects Allocate.
	Allocator func(sens []Sensitivity, ratio float64, highBits, lowBits int) (*Allocation, error)
	// Widths, when non-empty, switches allocation to the multi-width
	// greedy knapsack (AllocateKnapsack) over this ladder (e.g. {2,3,4})
	// under the TargetAvgBits budget; Ratio/HighBits/LowBits are ignored.
	Widths        []int
	TargetAvgBits float64
	// Sequential re-collects calibration statistics after each block is
	// quantized, so later blocks see the error-injected activations of
	// earlier quantized blocks (the propagation scheme of the reference
	// GPTQ implementation). Costs one extra calibration pass per block.
	Sequential bool
	// Seed drives probe sampling (and MetricRandom).
	Seed int64
}

// DefaultOptions returns the configuration used for the paper-reproduction
// experiments at the given 4-bit ratio.
func DefaultOptions(ratio float64) Options {
	return Options{
		Ratio:    ratio,
		HighBits: 4, LowBits: 2,
		GroupSize: 16, BlockSize: 16,
		PercDamp: 0.01,
		Probes:   4,
		Metric:   MetricFisherDelta,
		Seed:     1,
	}
}

// LayerReport records the outcome of quantizing one layer.
type LayerReport struct {
	Name      string
	Bits      int
	AvgTrace  float64
	ProxyLoss float64
	SizeBits  int64
	Weights   int
}

// Result is the outcome of an APTQ run.
type Result struct {
	// Model is the quantized copy; the input model is never modified.
	Model      *model.Model
	Allocation *Allocation
	Layers     []LayerReport
	// Quantized holds the integer-code representation of every quantizable
	// layer (parallel to Layers); WriteCompressed serializes it.
	Quantized []*quant.QuantizedMatrix
	// AvgBits is eq. (18)'s code-only average; AvgBitsWithOverhead adds
	// group scale/zero metadata.
	AvgBits             float64
	AvgBitsWithOverhead float64
}

// Quantize runs the full APTQ pipeline: collect attention-aware statistics,
// score sensitivities, allocate 2/4-bit precision under Ratio, and quantize
// every layer with the OBQ engine against its attention-aware Hessian.
func Quantize(m *model.Model, calib *data.CalibrationSet, opts Options) (*Result, error) {
	stats, err := CollectStats(m, calib, CollectOptions{Probes: opts.Probes, Seed: opts.Seed})
	if err != nil {
		return nil, err
	}
	return QuantizeWithStats(m, stats, calib, opts)
}

// QuantizeWithStats runs APTQ from pre-collected statistics (reused across
// ratio sweeps, where the expensive calibration pass is shared).
func QuantizeWithStats(m *model.Model, stats *Stats, calib *data.CalibrationSet, opts Options) (*Result, error) {
	if opts.HighBits == 0 {
		return nil, fmt.Errorf("core: zero HighBits; use DefaultOptions as a base")
	}
	sens := stats.Sensitivities(opts.Metric, opts.LowBits, opts.GroupSize, opts.Seed)
	var alloc *Allocation
	var err error
	if len(opts.Widths) > 0 {
		alloc, err = stats.AllocateKnapsack(opts.Metric, opts.TargetAvgBits, opts.Widths, opts.GroupSize, opts.Seed)
	} else {
		allocator := opts.Allocator
		if allocator == nil {
			allocator = Allocate
		}
		alloc, err = allocator(sens, opts.Ratio, opts.HighBits, opts.LowBits)
	}
	if err != nil {
		return nil, err
	}

	clone := m.Clone()
	res := &Result{Model: clone, Allocation: alloc}
	cloneLayers := clone.QuantizableLayers()

	sensByName := make(map[string]float64, len(sens))
	for _, s := range sens {
		sensByName[s.Name] = s.AvgTrace
	}

	// quantizeOne quantizes layer i of the clone against stats st and fills
	// slot i of the result. Layers are mutually independent: each touches
	// only its own cloned weights and its own (read-only) statistics, so
	// the non-sequential path fans the loop across workers. Result slots
	// are indexed, keeping res.Layers/res.Quantized in deterministic layer
	// order regardless of completion order.
	res.Quantized = make([]*quant.QuantizedMatrix, len(cloneLayers))
	res.Layers = make([]LayerReport, len(cloneLayers))
	quantizeOne := func(st *Stats, i int) error {
		ref := cloneLayers[i]
		ls := &st.Layers[i]
		name := ref.Name()
		bits, ok := alloc.Bits[name]
		if !ok {
			return fmt.Errorf("core: no allocation for layer %s", name)
		}
		cfg := gptq.Config{Bits: bits, GroupSize: opts.GroupSize, BlockSize: opts.BlockSize, PercDamp: opts.PercDamp, Sym: opts.Sym}
		qm, err := quantizeLayer(ref, ls, cfg, opts.ActOrder)
		if err != nil {
			return fmt.Errorf("core: quantize %s: %w", name, err)
		}
		dq := qm.Dequantize()
		proxy := gptq.ProxyLoss(ref.Linear.P.W, dq, ls.Hessian())
		ref.Linear.P.W.CopyFrom(dq)
		res.Quantized[i] = qm
		res.Layers[i] = LayerReport{
			Name: name, Bits: bits,
			AvgTrace:  sensByName[name],
			ProxyLoss: proxy,
			SizeBits:  qm.SizeBits(),
			Weights:   ref.NumWeights(),
		}
		return nil
	}

	if opts.Sequential && calib != nil {
		// Sequential mode is inherently serial: each block's statistics are
		// re-collected from the partially quantized model.
		curStats := stats
		lastBlock := -1
		for i := range curStats.Layers {
			ref := cloneLayers[i]
			if ref.Block != lastBlock && ref.Block > 0 {
				// Re-collect statistics so this block's Hessians reflect
				// the already-quantized earlier blocks.
				curStats, err = CollectStats(clone, calib, CollectOptions{Probes: opts.Probes, Seed: opts.Seed + int64(ref.Block)})
				if err != nil {
					return nil, fmt.Errorf("core: recollect for block %d: %w", ref.Block, err)
				}
			}
			lastBlock = ref.Block
			if err := quantizeOne(curStats, i); err != nil {
				return nil, err
			}
		}
	} else {
		var fe parallel.FirstError
		parallel.ForEach(len(cloneLayers), func(i int) {
			fe.Set(i, quantizeOne(stats, i))
		})
		if err := fe.Err(); err != nil {
			return nil, err
		}
	}

	var totalCodeBits, totalWeights int64
	var totalSizeBits int64
	for i := range res.Layers {
		lr := &res.Layers[i]
		w := int64(lr.Weights)
		totalCodeBits += w * int64(lr.Bits)
		totalWeights += w
		totalSizeBits += lr.SizeBits
	}
	res.AvgBits = float64(totalCodeBits) / float64(totalWeights)
	res.AvgBitsWithOverhead = float64(totalSizeBits) / float64(totalWeights)
	return res, nil
}

// quantizeLayer dispatches to the role-appropriate Hessian: per-head bands
// for W_V, single attention-aware H for Q/K/O, GPTQ H for MLP layers.
func quantizeLayer(ref model.LayerRef, ls *LayerStats, cfg gptq.Config, actOrder bool) (*quant.QuantizedMatrix, error) {
	if ref.Role == model.RoleV {
		heads := ref.Attn.Heads
		hd := ref.Attn.HeadDim
		starts := make([]int, heads+1)
		for h := 0; h <= heads; h++ {
			starts[h] = h * hd
		}
		return gptq.QuantizePerRowGroups(ref.Linear.P.W, starts, ls.HeadHessians(), cfg)
	}
	if actOrder {
		return gptq.QuantizeActOrder(ref.Linear.P.W, ls.Hessian(), cfg)
	}
	return gptq.Quantize(ref.Linear.P.W, ls.Hessian(), cfg)
}

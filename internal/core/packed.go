package core

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/quant"
)

// PackedModel converts the quantization result into a packed-execution
// model: every quantizable projection is swapped for an nn.QuantizedLinear
// holding the bit-packed codes of res.Quantized, so forward passes (batch
// and KV-cached incremental) compute straight from the compressed
// representation. The result's float model is left untouched and keeps
// producing identical outputs — the packed forward is bit-exact against
// the dequantized weights, which is what res.Model already holds.
func (r *Result) PackedModel() (*model.QuantizedModel, error) {
	packed := make([]*quant.PackedMatrix, len(r.Quantized))
	for i, qm := range r.Quantized {
		pm, err := quant.PackMatrix(qm)
		if err != nil {
			return nil, fmt.Errorf("core: pack layer %s: %w", r.Layers[i].Name, err)
		}
		packed[i] = pm
	}
	return model.NewQuantizedModel(r.Model, packed)
}

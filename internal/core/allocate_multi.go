package core

import (
	"fmt"
	"sort"

	"repro/internal/quant"
)

// Multi-width allocation extends the paper's 2/4-bit scheme to an arbitrary
// width ladder (e.g. {2,3,4}) under an average-bits budget, in the spirit
// of HAWQ-V3's integer-programming formulation. A greedy marginal-benefit
// knapsack is provably near-optimal here because layer upgrade benefits are
// independent and the budget is one-dimensional:
//
//  1. every layer starts at the smallest width;
//  2. candidate upgrades (layer, next width) are ranked by
//     Δscore / (weights·Δbits) — loss reduction per bit of budget;
//  3. upgrades are applied while the average-bits budget allows.
//
// Scores are the same second-order estimates as the 2/4-bit allocator:
// for MetricFisherDelta, Σ_i F_ii·δ_i(b)² at each candidate width b.

// AllocateKnapsack allocates widths to layers so that the weighted average
// bit width does not exceed targetAvgBits.
func (st *Stats) AllocateKnapsack(metric SensitivityMetric, targetAvgBits float64, widths []int, groupSize int, seed int64) (*Allocation, error) {
	if len(widths) < 2 {
		return nil, fmt.Errorf("core: knapsack needs >= 2 widths, got %v", widths)
	}
	ws := append([]int(nil), widths...)
	sort.Ints(ws)
	for i := 1; i < len(ws); i++ {
		if ws[i] == ws[i-1] {
			return nil, fmt.Errorf("core: duplicate width %d", ws[i])
		}
	}
	lo, hi := ws[0], ws[len(ws)-1]
	if targetAvgBits < float64(lo) || targetAvgBits > float64(hi) {
		return nil, fmt.Errorf("core: target %.2f bits outside [%d,%d]", targetAvgBits, lo, hi)
	}

	// scores[l][k]: estimated loss increase of layer l at width ws[k].
	n := len(st.Layers)
	scores := make([][]float64, n)
	for l := range st.Layers {
		ls := &st.Layers[l]
		scores[l] = make([]float64, len(ws))
		for k, b := range ws {
			switch metric {
			case MetricFisherDelta:
				scores[l][k] = fisherDelta(ls, b, groupSize)
			case MetricGPTQTrace:
				scores[l][k] = ls.XtX.MeanDiag() * quantPerturbation(ls.Ref.Linear.P.W, b, groupSize)
			default:
				scores[l][k] = ls.Hessian().MeanDiag() * quantPerturbation(ls.Ref.Linear.P.W, b, groupSize)
			}
		}
	}

	level := make([]int, n) // index into ws per layer
	totalWeights := 0
	for l := range st.Layers {
		totalWeights += st.Layers[l].Ref.NumWeights()
	}
	budgetBits := targetAvgBits * float64(totalWeights)
	usedBits := float64(lo * totalWeights)

	type upgrade struct {
		layer   int
		benefit float64 // Δscore per bit of budget
	}
	nextBenefit := func(l int) (upgrade, bool) {
		k := level[l]
		if k+1 >= len(ws) {
			return upgrade{}, false
		}
		w := float64(st.Layers[l].Ref.NumWeights())
		dBits := float64(ws[k+1]-ws[k]) * w
		dScore := scores[l][k] - scores[l][k+1]
		if dScore < 0 {
			dScore = 0
		}
		return upgrade{layer: l, benefit: dScore / dBits}, true
	}

	for {
		best, ok := upgrade{layer: -1}, false
		for l := range level {
			if u, has := nextBenefit(l); has {
				w := float64(st.Layers[l].Ref.NumWeights())
				cost := float64(ws[level[l]+1]-ws[level[l]]) * w
				if usedBits+cost <= budgetBits+1e-9 && (!ok || u.benefit > best.benefit) {
					best, ok = u, true
				}
			}
		}
		if !ok {
			break
		}
		l := best.layer
		w := float64(st.Layers[l].Ref.NumWeights())
		usedBits += float64(ws[level[l]+1]-ws[level[l]]) * w
		level[l]++
	}

	alloc := &Allocation{
		Bits:         make(map[string]int, n),
		TotalWeights: totalWeights,
		HighBits:     hi,
		LowBits:      lo,
	}
	var weightedBits float64
	for l := range st.Layers {
		b := ws[level[l]]
		alloc.Bits[st.Layers[l].Ref.Name()] = b
		w := st.Layers[l].Ref.NumWeights()
		weightedBits += float64(b * w)
		if b == hi {
			alloc.FourBitWeights += w
		}
	}
	alloc.weightedAvgBits = weightedBits / float64(totalWeights)
	return alloc, nil
}

// quantErrAtWidth is a test seam exposing the RTN perturbation used by the
// knapsack scores.
func quantErrAtWidth(ls *LayerStats, bits, groupSize int) float64 {
	w := ls.Ref.Linear.P.W
	q := quant.RTN(w, bits, groupSize, false)
	mse, _ := quant.QuantizationError(w, q)
	return mse * float64(w.Rows*w.Cols)
}

package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/eval"
)

func TestKnapsackRespectsBudget(t *testing.T) {
	st := collectTestStats(t)
	for _, target := range []float64{2.0, 2.5, 3.0, 3.5, 4.0} {
		alloc, err := st.AllocateKnapsack(MetricFisherDelta, target, []int{2, 3, 4}, 8, 1)
		if err != nil {
			t.Fatal(err)
		}
		if alloc.AverageBits() > target+1e-9 {
			t.Fatalf("target %.2f: achieved %.4f bits over budget", target, alloc.AverageBits())
		}
		for name, b := range alloc.Bits {
			if b != 2 && b != 3 && b != 4 {
				t.Fatalf("layer %s got width %d outside ladder", name, b)
			}
		}
	}
}

func TestKnapsackSaturatesAtExtremes(t *testing.T) {
	st := collectTestStats(t)
	low, err := st.AllocateKnapsack(MetricFisherDelta, 2.0, []int{2, 4}, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	for name, b := range low.Bits {
		if b != 2 {
			t.Fatalf("target 2.0: layer %s at %d bits", name, b)
		}
	}
	high, err := st.AllocateKnapsack(MetricFisherDelta, 4.0, []int{2, 4}, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	for name, b := range high.Bits {
		if b != 4 {
			t.Fatalf("target 4.0: layer %s at %d bits", name, b)
		}
	}
}

func TestKnapsackValidation(t *testing.T) {
	st := collectTestStats(t)
	if _, err := st.AllocateKnapsack(MetricFisherDelta, 3, []int{4}, 8, 1); err == nil {
		t.Fatal("single width must error")
	}
	if _, err := st.AllocateKnapsack(MetricFisherDelta, 3, []int{4, 4}, 8, 1); err == nil {
		t.Fatal("duplicate widths must error")
	}
	if _, err := st.AllocateKnapsack(MetricFisherDelta, 5, []int{2, 4}, 8, 1); err == nil {
		t.Fatal("target above max width must error")
	}
	if _, err := st.AllocateKnapsack(MetricFisherDelta, 1, []int{2, 4}, 8, 1); err == nil {
		t.Fatal("target below min width must error")
	}
}

func TestKnapsackBudgetUsedEffectively(t *testing.T) {
	// At a 3.0-bit budget on a {2,3,4} ladder, the allocator should spend
	// most of the budget: achieved average within 0.5 bits of the target.
	st := collectTestStats(t)
	alloc, err := st.AllocateKnapsack(MetricFisherDelta, 3.0, []int{2, 3, 4}, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if alloc.AverageBits() < 2.5 {
		t.Fatalf("achieved only %.3f bits of a 3.0 budget", alloc.AverageBits())
	}
}

func TestKnapsackEndToEndMatchesOrBeats24(t *testing.T) {
	// With a {2,3,4} ladder the allocator has strictly more freedom than
	// the 2/4 scheme at the same 3.0-bit budget; the resulting PPL should
	// be comparable or better (allow a small noise band).
	m := testModel()
	calib := testCalib(6)
	st, err := CollectStats(m, calib, CollectOptions{Probes: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	src := data.NewC4Like(32)
	rng := rand.New(rand.NewSource(11))
	segs := make([][]int, 30)
	for i := range segs {
		segs[i] = src.Generate(rng, 16)
	}

	twoFour, err := QuantizeWithStats(m, st, calib, DefaultOptions(0.5))
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(0)
	opts.Widths = []int{2, 3, 4}
	opts.TargetAvgBits = 3.0
	ladder, err := QuantizeWithStats(m, st, calib, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ladder.AvgBits > 3.0+1e-9 {
		t.Fatalf("ladder run exceeded budget: %.3f bits", ladder.AvgBits)
	}
	p24 := eval.PerplexityOnSegments(twoFour.Model, segs)
	pl := eval.PerplexityOnSegments(ladder.Model, segs)
	if pl > p24*1.10 {
		t.Fatalf("{2,3,4} ladder PPL %.3f much worse than 2/4 scheme %.3f", pl, p24)
	}
}

func TestQuantErrAtWidthMonotone(t *testing.T) {
	st := collectTestStats(t)
	ls := &st.Layers[0]
	e2 := quantErrAtWidth(ls, 2, 8)
	e3 := quantErrAtWidth(ls, 3, 8)
	e4 := quantErrAtWidth(ls, 4, 8)
	if !(e2 > e3 && e3 > e4) {
		t.Fatalf("perturbation not monotone: %v %v %v", e2, e3, e4)
	}
	if math.IsNaN(e2) || e4 <= 0 {
		t.Fatal("invalid perturbation values")
	}
}

package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/eval"
	"repro/internal/model"
)

func TestSensitivityScoresPositive(t *testing.T) {
	st := collectTestStats(t)
	for _, metric := range []SensitivityMetric{MetricTrace, MetricTraceQuantErr, MetricGPTQTrace} {
		sens := st.Sensitivities(metric, 2, 8, 1)
		if len(sens) != len(st.Layers) {
			t.Fatalf("%v: %d scores", metric, len(sens))
		}
		for _, s := range sens {
			if s.Score <= 0 || math.IsNaN(s.Score) {
				t.Fatalf("%v: layer %s score %v", metric, s.Name, s.Score)
			}
			if s.Weights <= 0 {
				t.Fatalf("layer %s has %d weights", s.Name, s.Weights)
			}
		}
	}
}

func TestSensitivityMetricsDiffer(t *testing.T) {
	st := collectTestStats(t)
	a := st.Sensitivities(MetricTraceQuantErr, 2, 8, 1)
	b := st.Sensitivities(MetricRandom, 2, 8, 1)
	same := true
	for i := range a {
		ra := rankOf(a, a[i].Name)
		rb := rankOf(b, b[i].Name)
		if ra != rb {
			same = false
			break
		}
	}
	if same {
		t.Fatal("random metric produced identical ordering to structured metric")
	}
}

func rankOf(ss []Sensitivity, name string) int {
	better := 0
	var self float64
	for _, s := range ss {
		if s.Name == name {
			self = s.Score
		}
	}
	for _, s := range ss {
		if s.Score > self {
			better++
		}
	}
	return better
}

func TestNormalizeScores(t *testing.T) {
	ss := []Sensitivity{{Name: "a", Score: 4}, {Name: "b", Score: 2}}
	n := NormalizeScores(ss)
	if n[0].Score != 1 || n[1].Score != 0.5 {
		t.Fatalf("normalized scores %v", n)
	}
	if ss[0].Score != 4 {
		t.Fatal("NormalizeScores must not mutate input")
	}
}

func TestAllocateExtremes(t *testing.T) {
	sens := []Sensitivity{
		{Name: "a", Score: 3, Weights: 100},
		{Name: "b", Score: 2, Weights: 100},
		{Name: "c", Score: 1, Weights: 100},
	}
	all4, err := Allocate(sens, 1.0, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for name, bits := range all4.Bits {
		if bits != 4 {
			t.Fatalf("ratio 1.0: layer %s got %d bits", name, bits)
		}
	}
	if all4.AverageBits() != 4 {
		t.Fatalf("avg bits %v", all4.AverageBits())
	}
	all2, err := Allocate(sens, 0, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for name, bits := range all2.Bits {
		if bits != 2 {
			t.Fatalf("ratio 0: layer %s got %d bits", name, bits)
		}
	}
	if all2.AverageBits() != 2 {
		t.Fatalf("avg bits %v", all2.AverageBits())
	}
}

func TestAllocatePrefersHighScores(t *testing.T) {
	sens := []Sensitivity{
		{Name: "low", Score: 1, Weights: 100},
		{Name: "high", Score: 10, Weights: 100},
		{Name: "mid", Score: 5, Weights: 100},
	}
	a, err := Allocate(sens, 0.34, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Bits["high"] != 4 {
		t.Fatal("highest-score layer must stay at 4 bits")
	}
	if a.Bits["low"] != 2 {
		t.Fatal("lowest-score layer must drop to 2 bits")
	}
	// eq. (18) check: R ≈ 1/3 at whole-layer granularity → achieved after
	// covering the first layer that crosses the budget.
	wantAvg := 4*a.Ratio() + 2*(1-a.Ratio())
	if math.Abs(a.AverageBits()-wantAvg) > 1e-12 {
		t.Fatalf("eq 18 violated: %v vs %v", a.AverageBits(), wantAvg)
	}
}

func TestAllocateValidation(t *testing.T) {
	if _, err := Allocate(nil, -0.1, 4, 2); err == nil {
		t.Fatal("negative ratio must error")
	}
	if _, err := Allocate(nil, 0.5, 2, 4); err == nil {
		t.Fatal("highBits <= lowBits must error")
	}
}

func TestManualBlockwiseFrontFirst(t *testing.T) {
	sens := []Sensitivity{
		{Name: "b0.x", Block: 0, Score: 1, Weights: 100},
		{Name: "b1.x", Block: 1, Score: 100, Weights: 100},
		{Name: "b2.x", Block: 2, Score: 50, Weights: 100},
	}
	a, err := ManualBlockwise(sens, 0.3, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Front block gets 4 bits regardless of (high) score elsewhere.
	if a.Bits["b0.x"] != 4 || a.Bits["b1.x"] != 2 || a.Bits["b2.x"] != 2 {
		t.Fatalf("blockwise allocation %v", a.Bits)
	}
}

func TestManualBlockwiseWholeBlocks(t *testing.T) {
	// A block must not be split: once open it stays at high bits even past
	// the budget.
	sens := []Sensitivity{
		{Name: "b0.x", Block: 0, Weights: 60},
		{Name: "b0.y", Block: 0, Weights: 60},
		{Name: "b1.x", Block: 1, Weights: 60},
	}
	a, err := ManualBlockwise(sens, 0.4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Bits["b0.x"] != 4 || a.Bits["b0.y"] != 4 {
		t.Fatal("block 0 must be uniformly 4-bit")
	}
	if a.Bits["b1.x"] != 2 {
		t.Fatal("block 1 must be 2-bit")
	}
}

func TestQuantizeEndToEnd(t *testing.T) {
	m := testModel()
	calib := testCalib(6)
	res, err := Quantize(m, calib, DefaultOptions(1.0))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Layers) != len(m.QuantizableLayers()) {
		t.Fatalf("%d layer reports", len(res.Layers))
	}
	if math.Abs(res.AvgBits-4) > 1e-9 {
		t.Fatalf("uniform 4-bit run reports %v avg bits", res.AvgBits)
	}
	if res.AvgBitsWithOverhead <= res.AvgBits {
		t.Fatal("overhead accounting must exceed code bits")
	}
	// The original model must be untouched.
	src := data.NewC4Like(32)
	ids := src.Generate(rand.New(rand.NewSource(1)), 12)
	if m.Forward(ids).Equal(res.Model.Forward(ids), 1e-12) {
		t.Fatal("quantized model output identical to FP — nothing was quantized?")
	}
}

func TestQuantizePreservesQuality4Bit(t *testing.T) {
	m := testModel()
	calib := testCalib(6)
	res, err := Quantize(m, calib, DefaultOptions(1.0))
	if err != nil {
		t.Fatal(err)
	}
	src := data.NewC4Like(32)
	rng := rand.New(rand.NewSource(7))
	segs := make([][]int, 25)
	for i := range segs {
		segs[i] = src.Generate(rng, 16)
	}
	fp := eval.PerplexityOnSegments(m, segs)
	q4 := eval.PerplexityOnSegments(res.Model, segs)
	if q4 < fp*0.98 {
		t.Fatalf("4-bit PPL %v suspiciously below FP %v", q4, fp)
	}
	if q4 > fp*1.5 {
		t.Fatalf("4-bit PPL %v degraded too much from FP %v", q4, fp)
	}
}

func TestQuantizeMixedPrecisionDegradesGracefully(t *testing.T) {
	m := testModel()
	calib := testCalib(6)
	src := data.NewC4Like(32)
	rng := rand.New(rand.NewSource(8))
	segs := make([][]int, 25)
	for i := range segs {
		segs[i] = src.Generate(rng, 16)
	}
	ppl := func(ratio float64) float64 {
		res, err := Quantize(m, calib, DefaultOptions(ratio))
		if err != nil {
			t.Fatal(err)
		}
		want := 4*res.Allocation.Ratio() + 2*(1-res.Allocation.Ratio())
		if math.Abs(res.AvgBits-want) > 1e-9 {
			t.Fatalf("ratio %v: avg bits %v != eq18 %v", ratio, res.AvgBits, want)
		}
		return eval.PerplexityOnSegments(res.Model, segs)
	}
	p100, p0 := ppl(1.0), ppl(0.0)
	if p0 <= p100 {
		t.Fatalf("all-2-bit PPL %v not worse than all-4-bit %v", p0, p100)
	}
}

func TestQuantizeWithManualAllocator(t *testing.T) {
	m := testModel()
	calib := testCalib(4)
	opts := DefaultOptions(0.5)
	opts.Allocator = ManualBlockwise
	res, err := Quantize(m, calib, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Front blocks 4-bit, back blocks 2-bit.
	bitsOfBlock := map[string]int{}
	for _, lr := range res.Layers {
		bitsOfBlock[lr.Name[:7]] = lr.Bits // "blockNN"
	}
	if bitsOfBlock["block00"] != 4 {
		t.Fatal("block 0 should be 4-bit under front-first manual allocation")
	}
	last := len(testModel().Blocks) - 1
	if bitsOfBlock[fmt.Sprintf("block%02d", last)] != 2 {
		t.Fatal("last block should be 2-bit under front-first manual allocation")
	}
}

func TestQuantizeSequentialMode(t *testing.T) {
	m := testModel()
	calib := testCalib(4)
	opts := DefaultOptions(1.0)
	opts.Sequential = true
	res, err := Quantize(m, calib, opts)
	if err != nil {
		t.Fatal(err)
	}
	src := data.NewC4Like(32)
	rng := rand.New(rand.NewSource(9))
	segs := make([][]int, 15)
	for i := range segs {
		segs[i] = src.Generate(rng, 16)
	}
	fp := eval.PerplexityOnSegments(m, segs)
	q := eval.PerplexityOnSegments(res.Model, segs)
	if q > fp*1.6 {
		t.Fatalf("sequential 4-bit PPL %v too far above FP %v", q, fp)
	}
}

func TestQuantizeRejectsZeroOptions(t *testing.T) {
	m := testModel()
	st := collectTestStats(t)
	if _, err := QuantizeWithStats(m, st, nil, Options{}); err == nil {
		t.Fatal("zero options must be rejected")
	}
}

func TestEntropyOfScoresHelper(t *testing.T) {
	uniform := []Sensitivity{{Score: 1}, {Score: 1}}
	peaked := []Sensitivity{{Score: 100}, {Score: 0.0001}}
	if entropyOfScores(uniform) <= entropyOfScores(peaked) {
		t.Fatal("uniform scores must have higher entropy")
	}
	if entropyOfScores(nil) != 0 {
		t.Fatal("empty scores entropy must be 0")
	}
}

func TestTinyModelHelpers(t *testing.T) {
	// Guard the index assumptions used in other tests (block0 order).
	layers := testModel().QuantizableLayers()
	if layers[2].Role != model.RoleV || layers[4].Role != model.RoleGate {
		t.Fatal("layer ordering assumption violated")
	}
}

package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestAllocateInvariants property-checks the mixed-precision allocator on
// random sensitivity profiles: every layer gets exactly one of {low, high}
// bits, the high-bit weight mass meets the requested ratio (or saturates),
// and eq. (18) holds for the achieved ratio.
func TestAllocateInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		sens := make([]Sensitivity, n)
		total := 0
		for i := range sens {
			w := 1 + rng.Intn(500)
			total += w
			sens[i] = Sensitivity{
				Name:    string(rune('a'+i%26)) + string(rune('0'+i/26)),
				Weights: w,
				Score:   rng.Float64() * 100,
			}
		}
		ratio := rng.Float64()
		a, err := Allocate(sens, ratio, 4, 2)
		if err != nil {
			return false
		}
		covered := 0
		for _, s := range sens {
			bits, ok := a.Bits[s.Name]
			if !ok || (bits != 2 && bits != 4) {
				return false
			}
			if bits == 4 {
				covered += s.Weights
			}
		}
		if covered != a.FourBitWeights || a.TotalWeights != total {
			return false
		}
		// Budget: covered mass must be >= floor(ratio*total) unless every
		// layer is already at 4 bits.
		budget := int(ratio * float64(total))
		if covered < budget && covered != total {
			return false
		}
		// eq. (18) for the achieved ratio.
		r := a.Ratio()
		want := 4*r + 2*(1-r)
		return abs(a.AverageBits()-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestAllocateMonotoneInRatio property-checks that raising the ratio never
// removes 4-bit status from a layer (the allocation order is fixed by
// scores).
func TestAllocateMonotoneInRatio(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		sens := make([]Sensitivity, n)
		for i := range sens {
			sens[i] = Sensitivity{
				Name:    string(rune('a' + i)),
				Weights: 1 + rng.Intn(100),
				Score:   rng.Float64(),
			}
		}
		r1 := rng.Float64() * 0.5
		r2 := r1 + rng.Float64()*(1-r1)
		a1, err1 := Allocate(sens, r1, 4, 2)
		a2, err2 := Allocate(sens, r2, 4, 2)
		if err1 != nil || err2 != nil {
			return false
		}
		for name, bits := range a1.Bits {
			if bits == 4 && a2.Bits[name] != 4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestManualBlockwiseUniformWithinBlock property-checks the Table 3
// baseline: all layers of one block share one bit width.
func TestManualBlockwiseUniformWithinBlock(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		blocks := 1 + rng.Intn(8)
		perBlock := 1 + rng.Intn(7)
		var sens []Sensitivity
		for b := 0; b < blocks; b++ {
			for l := 0; l < perBlock; l++ {
				sens = append(sens, Sensitivity{
					Name:    string(rune('a'+b)) + string(rune('0'+l)),
					Block:   b,
					Weights: 1 + rng.Intn(50),
					Score:   rng.Float64(),
				})
			}
		}
		a, err := ManualBlockwise(sens, rng.Float64(), 4, 2)
		if err != nil {
			return false
		}
		blockBits := map[int]int{}
		for _, s := range sens {
			bits := a.Bits[s.Name]
			if prev, ok := blockBits[s.Block]; ok && prev != bits {
				return false
			}
			blockBits[s.Block] = bits
		}
		// Blocks at 4 bits must be a prefix: no 4-bit block after a 2-bit
		// one.
		seen2 := false
		for b := 0; b < blocks; b++ {
			if blockBits[b] == 2 {
				seen2 = true
			} else if seen2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

package core

import (
	"bytes"
	"math"
	"testing"
)

func TestCompressedRoundTrip(t *testing.T) {
	m := testModel()
	calib := testCalib(6)
	res, err := Quantize(m, calib, DefaultOptions(0.75))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteCompressed(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCompressed(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruction matches the quantized model to float32 precision.
	want := res.Model.Params()
	have := got.Params()
	for i := range want {
		for j := range want[i].W.Data {
			a, b := want[i].W.Data[j], have[i].W.Data[j]
			if math.Abs(a-b) > 1e-4*(1+math.Abs(a)) {
				t.Fatalf("%s[%d]: %v vs %v", want[i].Name, j, a, b)
			}
		}
	}
}

func TestCompressedSmallerThanFP(t *testing.T) {
	m := testModel()
	calib := testCalib(6)
	res, err := Quantize(m, calib, DefaultOptions(1.0))
	if err != nil {
		t.Fatal(err)
	}
	var compressed, full bytes.Buffer
	if err := res.WriteCompressed(&compressed); err != nil {
		t.Fatal(err)
	}
	if err := m.Save(&full); err != nil {
		t.Fatal(err)
	}
	ratio := float64(full.Len()) / float64(compressed.Len())
	// float64 → 4-bit codes + fp32 metadata: at least 4x smaller even at
	// tiny-model group overhead.
	if ratio < 4 {
		t.Fatalf("compression ratio only %.2fx (%d -> %d bytes)", ratio, full.Len(), compressed.Len())
	}
}

func TestCompressed2BitSmallerThan4Bit(t *testing.T) {
	m := testModel()
	calib := testCalib(6)
	size := func(ratio float64) int {
		res, err := Quantize(m, calib, DefaultOptions(ratio))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteCompressed(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Len()
	}
	if s2, s4 := size(0.0), size(1.0); s2 >= s4 {
		t.Fatalf("2-bit checkpoint (%d bytes) not smaller than 4-bit (%d bytes)", s2, s4)
	}
}

func TestReadCompressedRejectsGarbage(t *testing.T) {
	if _, err := ReadCompressed(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestCompressedQuantizedForwardMatches(t *testing.T) {
	m := testModel()
	calib := testCalib(6)
	res, err := Quantize(m, calib, DefaultOptions(1.0))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteCompressed(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCompressed(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ids := []int{1, 2, 3, 4, 5, 6, 7, 8}
	a := res.Model.Forward(ids)
	b := got.Forward(ids)
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > 1e-3 {
			t.Fatalf("logit %d: %v vs %v", i, a.Data[i], b.Data[i])
		}
	}
}

package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/train"
)

// testModel trains one shared tiny model for the core tests.
var testModel = sync.OnceValue(func() *model.Model {
	src := data.NewC4Like(32)
	m := model.New(model.Tiny(), 1)
	train.Train(m, src, train.Config{Steps: 250, BatchSize: 2, SeqLen: 16, LR: 3e-3, Warmup: 15, ClipNorm: 1, Seed: 1})
	return m
})

func testCalib(n int) *data.CalibrationSet {
	src := data.NewC4Like(32)
	return data.SampleCalibration(rand.New(rand.NewSource(42)), src, n, 16)
}

func collectTestStats(t *testing.T) *Stats {
	t.Helper()
	st, err := CollectStats(testModel(), testCalib(6), CollectOptions{Probes: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestCollectStatsShapes(t *testing.T) {
	m := testModel()
	st := collectTestStats(t)
	layers := m.QuantizableLayers()
	if len(st.Layers) != len(layers) {
		t.Fatalf("%d stats for %d layers", len(st.Layers), len(layers))
	}
	for i, ls := range st.Layers {
		in := layers[i].Linear.In()
		if ls.XtX.Rows != in || ls.XtX.Cols != in {
			t.Fatalf("%s: XtX shape %dx%d, want %d", ls.Ref.Name(), ls.XtX.Rows, ls.XtX.Cols, in)
		}
		switch layers[i].Role {
		case model.RoleQ, model.RoleK, model.RoleO:
			if ls.AttnH == nil || ls.AttnH.Rows != in {
				t.Fatalf("%s: missing attention Hessian", ls.Ref.Name())
			}
		case model.RoleV:
			if len(ls.HeadH) != layers[i].Attn.Heads {
				t.Fatalf("%s: %d head Hessians", ls.Ref.Name(), len(ls.HeadH))
			}
		default:
			if ls.AttnH != nil || ls.HeadH != nil {
				t.Fatalf("%s: MLP layer has attention Hessians", ls.Ref.Name())
			}
		}
	}
	if st.Tokens != 6*16 {
		t.Fatalf("tokens = %d", st.Tokens)
	}
}

func TestHessiansSymmetricPSD(t *testing.T) {
	st := collectTestStats(t)
	rng := rand.New(rand.NewSource(2))
	for i := range st.Layers {
		ls := &st.Layers[i]
		mats := []*tensor.Mat{ls.XtX, ls.Hessian()}
		mats = append(mats, ls.HeadHessians()...)
		for _, h := range mats {
			if h == nil {
				continue
			}
			if !h.Equal(h.T(), 1e-8) {
				t.Fatalf("%s: Hessian not symmetric", ls.Ref.Name())
			}
			z := make([]float64, h.Rows)
			for trial := 0; trial < 5; trial++ {
				for j := range z {
					z[j] = rng.NormFloat64()
				}
				if tensor.Dot(z, h.MulVec(z)) < -1e-8 {
					t.Fatalf("%s: Hessian not PSD", ls.Ref.Name())
				}
			}
		}
	}
}

func TestProbeEstimatorMatchesAnalyticOnWO(t *testing.T) {
	// For W_O the attention output is linear in the weights, so the probe
	// estimator E[GᵀG]/(P·out) must converge to the analytic effective
	// input Gram ctxᵀ·ctx. This validates the probe machinery used for
	// W_Q / W_K, whose analytic form is unavailable.
	m := testModel()
	attn := m.Blocks[0].Attn
	src := data.NewC4Like(32)
	rng := rand.New(rand.NewSource(3))
	seg := src.Generate(rng, 16)
	m.Forward(seg)

	ctx := attn.LastContext()
	analytic := tensor.Gram(ctx)

	probeH := tensor.New(m.Cfg.Dim, m.Cfg.Dim)
	const probes = 600
	prng := rand.New(rand.NewSource(4))
	for p := 0; p < probes; p++ {
		r := rademacher(prng, len(seg), m.Cfg.Dim)
		nn.AsLinear(attn.WO).P.ZeroGrad()
		nn.AsLinear(attn.WQ).P.ZeroGrad()
		nn.AsLinear(attn.WK).P.ZeroGrad()
		nn.AsLinear(attn.WV).P.ZeroGrad()
		attn.Backward(r)
		g := nn.AsLinear(attn.WO).P.Grad
		tensor.AddInPlace(probeH, tensor.MatMulTN(g, g))
	}
	probeH.Scale(1 / float64(probes) / float64(m.Cfg.Dim))

	// Compare in relative Frobenius norm.
	diff := tensor.Sub(probeH, analytic)
	rel := diff.FrobeniusNorm() / analytic.FrobeniusNorm()
	if rel > 0.25 {
		t.Fatalf("probe estimator relative error %.3f vs analytic Gram", rel)
	}
}

func TestVHessianIsAttentionMixedGram(t *testing.T) {
	// Direct check of eq. (11): the V-layer head Hessian equals
	// 2/tokens · Σ_seg (A_h·X)ᵀ(A_h·X).
	m := testModel()
	calib := testCalib(3)
	st, err := CollectStats(m, calib, CollectOptions{Probes: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	attn := m.Blocks[0].Attn
	want := tensor.New(m.Cfg.Dim, m.Cfg.Dim)
	tokens := 0
	for _, seg := range calib.Segments {
		m.Forward(seg)
		tokens += len(seg)
		mh := tensor.MatMul(attn.HeadAttn(0), attn.LastInput())
		tensor.AccumGram(want, mh)
	}
	want.Scale(2 / float64(tokens))
	got := st.Layers[2].HeadHessians()[0] // block0 V is index 2
	if !got.Equal(want, 1e-8) {
		t.Fatal("V head Hessian does not match analytic recomputation")
	}
}

func TestStatsDeterministic(t *testing.T) {
	a, err := CollectStats(testModel(), testCalib(4), CollectOptions{Probes: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := CollectStats(testModel(), testCalib(4), CollectOptions{Probes: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Layers {
		if !a.Layers[i].Hessian().Equal(b.Layers[i].Hessian(), 0) {
			t.Fatalf("stats not deterministic at layer %d", i)
		}
	}
}

func TestCollectStatsEmptyCalibration(t *testing.T) {
	if _, err := CollectStats(testModel(), &data.CalibrationSet{}, CollectOptions{}); err == nil {
		t.Fatal("expected error for empty calibration set")
	}
}

func TestMLPHessianMatchesInputGram(t *testing.T) {
	// MLP layers must carry exactly the GPTQ statistic 2XᵀX/tokens of
	// their own inputs.
	m := testModel()
	calib := testCalib(2)
	st, err := CollectStats(m, calib, CollectOptions{Probes: 1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	gate := nn.AsLinear(m.Blocks[0].MLP.(*nn.MLP).Gate)
	want := tensor.New(gate.In(), gate.In())
	tokens := 0
	for _, seg := range calib.Segments {
		m.Forward(seg)
		tokens += len(seg)
		tensor.AccumGram(want, gate.LastInput())
	}
	want.Scale(2 / float64(tokens))
	got := st.Layers[4].Hessian() // block0 order: q,k,v,o,gate
	if !got.Equal(want, 1e-8) {
		t.Fatal("MLP Hessian != 2XᵀX/tokens")
	}
}

func TestTraceProfile(t *testing.T) {
	m := testModel()
	st := collectTestStats(t)
	prof := st.TraceProfile("q_proj")
	if len(prof) != m.Cfg.Layers {
		t.Fatalf("profile length %d, want %d", len(prof), m.Cfg.Layers)
	}
	for _, v := range prof {
		if v <= 0 || math.IsNaN(v) {
			t.Fatalf("non-positive trace %v", v)
		}
	}
}

// Package core implements APTQ — Attention-aware Post-Training
// Mixed-Precision Quantization (Guan et al., DAC 2024). It contains the
// three pieces the paper contributes on top of GPTQ:
//
//  1. attention-aware Hessian construction (eqs. 5-13): the quantization
//     objective is ||F(W) − F(Ŵ)||² with F the attention-block output, and
//     the Levenberg-Marquardt Hessian H = 2·F′(Ŵ)F′(Ŵ)ᵀ is assembled from
//     the Jacobians of F with respect to each projection (stats.go),
//  2. Hessian-trace-based layer sensitivity (sensitivity.go), and
//  3. mixed 2/4-bit precision allocation under a 4-bit-ratio budget R with
//     avg bits = 4R + 2(1−R), eq. (18) (allocate.go),
//
// glued together by the Algorithm-1 pipeline in aptq.go, with the shared
// OBQ/Cholesky update rules (eqs. 16/17) provided by internal/gptq.
package core

import (
	"fmt"
	"math/rand"

	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// LayerStats holds the calibration statistics of one quantizable layer.
type LayerStats struct {
	Ref model.LayerRef

	// XtX accumulates Σ XᵀX of the layer's own input — the GPTQ statistic,
	// collected for every layer (it is both the MLP Hessian and the
	// baseline for ablations).
	XtX *tensor.Mat

	// AttnH is the attention-aware Hessian accumulator for W_Q, W_K
	// (probe-based Jacobians, eqs. 12/13) and W_O (analytic effective
	// input Concat(heads), eq. 9). Nil for W_V and MLP layers.
	AttnH *tensor.Mat

	// HeadH are the per-head attention-aware Hessian accumulators for W_V:
	// head h's effective input is M_h = A_h·X (eqs. 10/11), so rows of W_V
	// belonging to head h get Hessian 2·M_hᵀM_h. Nil for other roles.
	HeadH []*tensor.Mat

	// FisherDiag accumulates the diagonal empirical Fisher of the LM loss,
	// Σ_seg (∂L/∂W)², per weight. This is the loss-Hessian trace statistic
	// in the HAWQ-V2 sense (the work the paper builds its trace metric on):
	// unlike the layer-local attention-output trace, it sees how much a
	// layer's error is amplified by everything downstream, which dominates
	// true layer importance in deep stacks. It drives the default
	// mixed-precision sensitivity metric (MetricFisherDelta).
	FisherDiag *tensor.Mat
}

// Stats is the full calibration statistics set for a model.
type Stats struct {
	Layers []LayerStats
	// Tokens is the total number of calibration tokens processed.
	Tokens int
	// Probes is the number of Rademacher probes per segment used for the
	// W_Q / W_K Jacobian estimates.
	Probes int
	// finalized guards against double normalization.
	finalized bool
}

// CollectOptions controls calibration statistics collection.
type CollectOptions struct {
	// Probes per calibration segment for the Q/K Jacobian estimator
	// (default 4).
	Probes int
	// Seed drives the Rademacher probe sampling.
	Seed int64
}

// CollectStats runs the model over the calibration set and accumulates all
// Hessian statistics in one pass per segment:
//
//   - every linear layer's input Gram XᵀX,
//   - W_O's effective-input Gram Concat(heads)ᵀConcat(heads),
//   - W_V's per-head effective-input Grams (A_h·X)ᵀ(A_h·X),
//   - W_Q/W_K probe Jacobian Grams: for Rademacher probes R over the
//     attention output F, backpropagate s = ⟨R, F⟩ through the softmax and
//     matmuls (eqs. 12/13) to get G = ∂s/∂W and accumulate GᵀG.
//
// After the pass, accumulators are normalized to Hessians:
// H = 2·Σ(stat)/tokens, with the probe statistic additionally divided by
// (probes · d_out) so that for a *linear* layer it converges to the same
// 2·XᵀX/tokens scale as the analytic statistic (E[GᵀG] = d_out·XᵀX for
// Rademacher probes). This keeps traces comparable across layer roles,
// which the mixed-precision allocator requires.
func CollectStats(m *model.Model, calib *data.CalibrationSet, opts CollectOptions) (*Stats, error) {
	if len(calib.Segments) == 0 {
		return nil, fmt.Errorf("core: empty calibration set")
	}
	if opts.Probes <= 0 {
		opts.Probes = 4
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	layers := m.QuantizableLayers()
	st := &Stats{Probes: opts.Probes}
	for _, ref := range layers {
		ls := LayerStats{
			Ref:        ref,
			XtX:        tensor.New(ref.Linear.In(), ref.Linear.In()),
			FisherDiag: tensor.New(ref.Linear.Out(), ref.Linear.In()),
		}
		switch ref.Role {
		case model.RoleQ, model.RoleK, model.RoleO:
			ls.AttnH = tensor.New(ref.Linear.In(), ref.Linear.In())
		case model.RoleV:
			ls.HeadH = make([]*tensor.Mat, ref.Attn.Heads)
			for h := range ls.HeadH {
				ls.HeadH[h] = tensor.New(ref.Linear.In(), ref.Linear.In())
			}
		}
		st.Layers = append(st.Layers, ls)
	}

	for _, seg := range calib.Segments {
		m.Forward(seg)
		st.Tokens += len(seg)
		for i := range st.Layers {
			ls := &st.Layers[i]
			// GPTQ statistic for every layer.
			tensor.AccumGram(ls.XtX, ls.Ref.Linear.LastInput())
			switch ls.Ref.Role {
			case model.RoleO:
				// eq. (9): effective input of W_O is Concat(head_1..H).
				tensor.AccumGram(ls.AttnH, ls.Ref.Attn.LastContext())
			case model.RoleV:
				// eqs. (10)/(11): per-head effective input M_h = A_h·X.
				x := ls.Ref.Attn.LastInput()
				for h := 0; h < ls.Ref.Attn.Heads; h++ {
					mh := tensor.MatMul(ls.Ref.Attn.HeadAttn(h), x)
					tensor.AccumGram(ls.HeadH[h], mh)
				}
			}
		}
		// Probe backprop for W_Q / W_K of every block, reusing this
		// segment's forward caches.
		accumProbeGrams(m, st, rng, opts.Probes, len(seg))

		// Diagonal empirical Fisher of the LM loss on this segment (runs
		// its own forward, so it comes after all cache consumers).
		batch := data.NextTokenBatch(seg)
		m.ZeroGrad()
		m.LossAndBackward(batch.IDs, batch.Targets)
		for i := range st.Layers {
			ls := &st.Layers[i]
			g := ls.Ref.Linear.P.Grad
			for j, gv := range g.Data {
				ls.FisherDiag.Data[j] += gv * gv
			}
		}
	}
	m.ZeroGrad()

	st.finalize(m)
	return st, nil
}

// accumProbeGrams implements the probe-based Jacobian path of eqs. (12)/(13):
// sample R with iid ±1 entries over the attention output, compute
// G = ∂⟨R,F⟩/∂W via the attention backward pass, and accumulate GᵀG.
func accumProbeGrams(m *model.Model, st *Stats, rng *rand.Rand, probes, seqLen int) {
	// Locate each block's Q and K stat entries by role (blocks have 7
	// quantizable layers in the LLaMA architecture, 6 in GPT).
	qIdx := make([]int, len(m.Blocks))
	kIdx := make([]int, len(m.Blocks))
	for i := range st.Layers {
		switch st.Layers[i].Ref.Role {
		case model.RoleQ:
			qIdx[st.Layers[i].Ref.Block] = i
		case model.RoleK:
			kIdx[st.Layers[i].Ref.Block] = i
		}
	}
	for p := 0; p < probes; p++ {
		// One probe drives all blocks simultaneously (independent
		// Rademacher draws per block).
		for bi, b := range m.Blocks {
			attn := b.Attn
			wq, wk := nn.AsLinear(attn.WQ), nn.AsLinear(attn.WK)
			r := rademacher(rng, seqLen, m.Cfg.Dim)
			wq.P.ZeroGrad()
			wk.P.ZeroGrad()
			nn.AsLinear(attn.WV).P.ZeroGrad()
			nn.AsLinear(attn.WO).P.ZeroGrad()
			attn.Backward(r)
			gq := wq.P.Grad
			gk := wk.P.Grad
			tensor.AddInPlace(st.Layers[qIdx[bi]].AttnH, tensor.MatMulTN(gq, gq))
			tensor.AddInPlace(st.Layers[kIdx[bi]].AttnH, tensor.MatMulTN(gk, gk))
		}
	}
}

func rademacher(rng *rand.Rand, rows, cols int) *tensor.Mat {
	r := tensor.New(rows, cols)
	for i := range r.Data {
		if rng.Intn(2) == 0 {
			r.Data[i] = 1
		} else {
			r.Data[i] = -1
		}
	}
	return r
}

// finalize converts raw accumulators into Hessians with a common scale.
func (st *Stats) finalize(m *model.Model) {
	if st.finalized {
		return
	}
	st.finalized = true
	invTok := 1 / float64(st.Tokens)
	for i := range st.Layers {
		ls := &st.Layers[i]
		ls.XtX.Scale(2 * invTok)
		switch ls.Ref.Role {
		case model.RoleQ, model.RoleK:
			// Probe estimator: E[GᵀG] = d_out·XᵀX for linear layers, so
			// divide by probes·d_out to land on the 2·XᵀX/tokens scale.
			ls.AttnH.Scale(2 * invTok / float64(st.Probes) / float64(ls.Ref.Linear.Out()))
		case model.RoleO:
			ls.AttnH.Scale(2 * invTok)
		case model.RoleV:
			for _, h := range ls.HeadH {
				h.Scale(2 * invTok)
			}
		}
	}
}

// Hessian returns the attention-aware Hessian for single-Hessian roles
// (Q, K, O) and the GPTQ Hessian 2XᵀX for MLP roles. For W_V (per-head
// Hessians) use HeadHessians; calling Hessian on a V layer returns the
// head-averaged matrix, which sensitivity scoring uses.
func (ls *LayerStats) Hessian() *tensor.Mat {
	switch {
	case ls.AttnH != nil:
		return ls.AttnH
	case ls.HeadH != nil:
		avg := tensor.New(ls.HeadH[0].Rows, ls.HeadH[0].Cols)
		for _, h := range ls.HeadH {
			tensor.AddInPlace(avg, h)
		}
		avg.Scale(1 / float64(len(ls.HeadH)))
		return avg
	default:
		return ls.XtX
	}
}

// HeadHessians returns the per-head Hessians for a V-role layer, nil
// otherwise.
func (ls *LayerStats) HeadHessians() []*tensor.Mat { return ls.HeadH }

// GPTQHessian returns the plain 2XᵀX statistic regardless of role, used by
// the GPTQ baseline and the sensitivity-metric ablation.
func (ls *LayerStats) GPTQHessian() *tensor.Mat { return ls.XtX }

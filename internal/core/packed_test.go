package core

import (
	"bytes"
	"testing"
)

// TestPackedModelForwardBitIdentical is the end-to-end acceptance property
// of the packed execution path: a full APTQ run (mixed 2/4-bit allocation,
// per-head W_V bands) converted with Result.PackedModel must produce
// exactly the logits of the dequantized float model.
func TestPackedModelForwardBitIdentical(t *testing.T) {
	m := testModel()
	calib := testCalib(6)
	res, err := Quantize(m, calib, DefaultOptions(0.75))
	if err != nil {
		t.Fatal(err)
	}
	qm, err := res.PackedModel()
	if err != nil {
		t.Fatal(err)
	}
	ids := []int{1, 2, 3, 4, 5, 6, 7, 8}
	want := res.Model.Forward(ids)
	got := qm.Forward(ids)
	if !got.Equal(want, 0) {
		t.Fatal("packed model logits differ from dequantized float logits")
	}
	if r := qm.CompressionRatio(); r < 3 {
		t.Fatalf("compression ratio %.2f < 3x", r)
	}
}

// TestReadCompressedPackedMatchesFloatRead verifies the two load paths of
// a compressed checkpoint agree exactly: serving from the packed streams
// computes the same logits as dequantizing into a float model, because
// both decode the same codes with the same float32-derived parameters.
func TestReadCompressedPackedMatchesFloatRead(t *testing.T) {
	m := testModel()
	calib := testCalib(6)
	res, err := Quantize(m, calib, DefaultOptions(0.75))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteCompressed(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	floatModel, err := ReadCompressed(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	packedModel, err := ReadCompressedPacked(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	ids := []int{3, 1, 4, 1, 5, 9, 2, 6}
	want := floatModel.Forward(ids)
	got := packedModel.Forward(ids)
	if !got.Equal(want, 0) {
		t.Fatal("packed load path logits differ from dequantized load path")
	}
}

// TestCompressedRowBitsRoundTrip pins the mixed-precision serialization
// fix: a matrix whose rows use different bit widths must round-trip the
// checkpoint losslessly. The previous single-stream writer packed every
// code at the uniform width and silently truncated wider rows.
func TestCompressedRowBitsRoundTrip(t *testing.T) {
	m := testModel()
	calib := testCalib(6)
	res, err := Quantize(m, calib, DefaultOptions(1.0))
	if err != nil {
		t.Fatal(err)
	}
	// Widen half the rows of layer 0 to 6-bit codes, beyond the uniform
	// 4-bit width.
	q0 := res.Quantized[0]
	q0.RowBits = make([]int, q0.Rows)
	for r := range q0.RowBits {
		if r%2 == 0 {
			q0.RowBits[r] = 6
			for c := 0; c < q0.Cols; c++ {
				q0.Codes[r*q0.Cols+c] = uint16(c % 64)
			}
		} else {
			q0.RowBits[r] = q0.Bits
		}
	}
	var buf bytes.Buffer
	if err := res.WriteCompressed(&buf); err != nil {
		t.Fatal(err)
	}
	qm, err := ReadCompressedPacked(&buf)
	if err != nil {
		t.Fatal(err)
	}
	back := qm.Layers[0].W.Unpack()
	for i := range q0.Codes {
		if back.Codes[i] != q0.Codes[i] {
			t.Fatalf("code %d round-tripped %d -> %d", i, q0.Codes[i], back.Codes[i])
		}
	}
}

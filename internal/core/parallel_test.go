package core

import (
	"reflect"
	"testing"

	"repro/internal/parallel"
)

// TestQuantizeParallelBitIdentical proves the tentpole determinism claim at
// the pipeline level: running the full APTQ per-layer loop across many
// workers produces exactly the serial result — same codes, same group
// parameters, same dequantized weights, same reports — because layers are
// independent and each partition keeps a fixed reduction order.
func TestQuantizeParallelBitIdentical(t *testing.T) {
	m := testModel()
	st := collectTestStats(t)
	calib := testCalib(6)
	for _, ratio := range []float64{1.0, 0.5} {
		opts := DefaultOptions(ratio)
		opts.GroupSize = 8
		opts.BlockSize = 8

		parallel.SetWorkers(1)
		serial, err := QuantizeWithStats(m, st, calib, opts)
		if err != nil {
			parallel.SetWorkers(0)
			t.Fatal(err)
		}
		parallel.SetWorkers(5)
		par, err := QuantizeWithStats(m, st, calib, opts)
		parallel.SetWorkers(0)
		if err != nil {
			t.Fatal(err)
		}

		if !reflect.DeepEqual(serial.Layers, par.Layers) {
			t.Fatalf("ratio %.2f: layer reports differ between serial and parallel", ratio)
		}
		if len(serial.Quantized) != len(par.Quantized) {
			t.Fatalf("ratio %.2f: %d vs %d quantized layers", ratio, len(serial.Quantized), len(par.Quantized))
		}
		for i := range serial.Quantized {
			sq, pq := serial.Quantized[i], par.Quantized[i]
			if !reflect.DeepEqual(sq.Codes, pq.Codes) || !reflect.DeepEqual(sq.Params, pq.Params) {
				t.Fatalf("ratio %.2f: layer %s codes/params differ", ratio, serial.Layers[i].Name)
			}
		}
		sw := serial.Model.QuantizableLayers()
		pw := par.Model.QuantizableLayers()
		for i := range sw {
			a, b := sw[i].Linear.P.W, pw[i].Linear.P.W
			for j := range a.Data {
				if a.Data[j] != b.Data[j] {
					t.Fatalf("ratio %.2f: layer %s weight %d differs bitwise", ratio, sw[i].Name(), j)
				}
			}
		}
		if serial.AvgBits != par.AvgBits || serial.AvgBitsWithOverhead != par.AvgBitsWithOverhead {
			t.Fatalf("ratio %.2f: avg bits differ: %v vs %v", ratio, serial.AvgBits, par.AvgBits)
		}
	}
}

// TestQuantizeParallelRace exercises the concurrent per-layer path with
// more workers than layers under -race (the CI race job runs this).
func TestQuantizeParallelRace(t *testing.T) {
	m := testModel()
	st := collectTestStats(t)
	parallel.SetWorkers(8)
	defer parallel.SetWorkers(0)
	opts := DefaultOptions(0.75)
	opts.GroupSize = 8
	opts.BlockSize = 8
	if _, err := QuantizeWithStats(m, st, testCalib(6), opts); err != nil {
		t.Fatal(err)
	}
}

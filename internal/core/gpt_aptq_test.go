package core

import (
	"bytes"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/data"
	"repro/internal/eval"
	"repro/internal/model"
	"repro/internal/train"
)

// gptModel trains one shared tiny GPT-architecture model, verifying the
// whole pipeline is architecture-agnostic.
var gptModel = sync.OnceValue(func() *model.Model {
	src := data.NewC4Like(32)
	m := model.New(model.TinyGPT(), 1)
	train.Train(m, src, train.Config{Steps: 250, BatchSize: 2, SeqLen: 16, LR: 3e-3, Warmup: 15, ClipNorm: 1, Seed: 1})
	return m
})

func TestGPTTrainingLearns(t *testing.T) {
	m := gptModel()
	src := data.NewC4Like(32)
	ppl := eval.Perplexity(m, src, rand.New(rand.NewSource(1)), 30, 16)
	if ppl > 25 {
		t.Fatalf("trained GPT model PPL %v did not improve on uniform 32", ppl)
	}
}

func TestGPTCollectStats(t *testing.T) {
	m := gptModel()
	st, err := CollectStats(m, testCalib(6), CollectOptions{Probes: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Layers) != len(m.QuantizableLayers()) {
		t.Fatalf("%d stats", len(st.Layers))
	}
	for i := range st.Layers {
		ls := &st.Layers[i]
		if ls.Hessian().MeanDiag() <= 0 {
			t.Fatalf("%s: non-positive Hessian trace", ls.Ref.Name())
		}
		if math.IsNaN(ls.FisherDiag.MaxAbs()) {
			t.Fatalf("%s: NaN Fisher", ls.Ref.Name())
		}
	}
}

func TestGPTAPTQEndToEnd(t *testing.T) {
	m := gptModel()
	calib := testCalib(6)
	res, err := Quantize(m, calib, DefaultOptions(0.75))
	if err != nil {
		t.Fatal(err)
	}
	src := data.NewC4Like(32)
	rng := rand.New(rand.NewSource(12))
	segs := make([][]int, 25)
	for i := range segs {
		segs[i] = src.Generate(rng, 16)
	}
	fp := eval.PerplexityOnSegments(m, segs)
	q := eval.PerplexityOnSegments(res.Model, segs)
	if q > fp*1.5 {
		t.Fatalf("APTQ-3.5bit on GPT arch: PPL %v vs FP %v", q, fp)
	}
	if math.Abs(res.AvgBits-res.Allocation.AverageBits()) > 1e-9 {
		t.Fatal("avg bits accounting inconsistent")
	}
}

func TestGPTCompressedRoundTrip(t *testing.T) {
	m := gptModel()
	calib := testCalib(6)
	res, err := Quantize(m, calib, DefaultOptions(1.0))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteCompressed(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCompressed(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ids := []int{1, 2, 3, 4}
	a := res.Model.Forward(ids)
	b := got.Forward(ids)
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > 1e-3 {
			t.Fatalf("logit %d differs: %v vs %v", i, a.Data[i], b.Data[i])
		}
	}
}

package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"repro/internal/model"
	"repro/internal/quant"
)

// The compressed checkpoint is the on-disk artifact an edge deployment
// would ship: quantizable layers are stored as bit-packed integer codes
// plus float32 group parameters, and the remaining full-precision tensors
// (embedding, norms, head) as float32. For a 4-bit model this is ~14x
// smaller than the float64 training checkpoint; 2/4-bit mixed models shrink
// further.
//
// Codes are packed per row at byte-aligned offsets (quant.PackedMatrix's
// stream layout), so mixed-precision RowBits matrices serialize losslessly
// — a single uniform-width stream would silently truncate the wider rows —
// and the packed load path can adopt the stream without re-packing.

// compressedLayer is the serialized form of one quantized weight matrix.
type compressedLayer struct {
	Name      string
	Rows      int
	Cols      int
	GroupSize int
	Bits      int
	// RowBits overrides Bits per row for mixed-precision matrices (nil for
	// uniform width).
	RowBits []int
	// Packed holds the concatenated per-row byte-aligned code streams.
	Packed []byte
	Scales []float32
	Zeros  []float32
}

// compressedFile is the gob payload of a compressed checkpoint.
type compressedFile struct {
	Cfg    model.Config
	Layers []compressedLayer
	// FPNames/FPTensors carry the non-quantized parameters as float32.
	FPNames   []string
	FPTensors [][]float32
}

// WriteCompressed serializes the quantized model in packed form.
func (r *Result) WriteCompressed(w io.Writer) error {
	if len(r.Quantized) != len(r.Layers) {
		return fmt.Errorf("core: result has %d quantized matrices for %d layers", len(r.Quantized), len(r.Layers))
	}
	cf := compressedFile{Cfg: r.Model.Cfg}
	for i, qm := range r.Quantized {
		pm, err := quant.PackMatrix(qm)
		if err != nil {
			return fmt.Errorf("core: pack layer %s: %w", r.Layers[i].Name, err)
		}
		cl := compressedLayer{
			Name: r.Layers[i].Name, Rows: qm.Rows, Cols: qm.Cols,
			GroupSize: qm.GroupSize, Bits: qm.Bits, RowBits: pm.RowBits,
			Packed: pm.Data,
		}
		for _, p := range qm.Params {
			cl.Scales = append(cl.Scales, float32(p.Scale))
			cl.Zeros = append(cl.Zeros, float32(p.Zero))
		}
		cf.Layers = append(cf.Layers, cl)
	}
	quantizable := map[string]bool{}
	for _, ref := range r.Model.QuantizableLayers() {
		quantizable[ref.Linear.P.Name] = true
	}
	for _, p := range r.Model.Params() {
		if quantizable[p.Name] {
			continue
		}
		t := make([]float32, len(p.W.Data))
		for j, v := range p.W.Data {
			t[j] = float32(v)
		}
		cf.FPNames = append(cf.FPNames, p.Name)
		cf.FPTensors = append(cf.FPTensors, t)
	}
	return gob.NewEncoder(w).Encode(cf)
}

// WriteCompressedFile writes the compressed checkpoint to path.
func (r *Result) WriteCompressedFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := r.WriteCompressed(f); err != nil {
		return err
	}
	return f.Close()
}

// readCompressedParts decodes a compressed checkpoint into a model whose
// full-precision tensors are loaded (quantizable projections left at their
// construction values) plus the packed form of every quantizable layer, in
// QuantizableLayers order. Both read paths build on it.
func readCompressedParts(rd io.Reader) (*model.Model, []*quant.PackedMatrix, error) {
	var cf compressedFile
	if err := gob.NewDecoder(rd).Decode(&cf); err != nil {
		return nil, nil, fmt.Errorf("core: decode compressed checkpoint: %w", err)
	}
	if err := cf.Cfg.Validate(); err != nil {
		return nil, nil, err
	}
	m := model.New(cf.Cfg, 0)

	layers := m.QuantizableLayers()
	if len(layers) != len(cf.Layers) {
		return nil, nil, fmt.Errorf("core: checkpoint has %d quantized layers, model has %d", len(cf.Layers), len(layers))
	}
	packed := make([]*quant.PackedMatrix, len(cf.Layers))
	for i, cl := range cf.Layers {
		ref := layers[i]
		if ref.Name() != cl.Name {
			return nil, nil, fmt.Errorf("core: layer %d is %q, expected %q", i, cl.Name, ref.Name())
		}
		if cl.Rows != ref.Linear.Out() || cl.Cols != ref.Linear.In() {
			return nil, nil, fmt.Errorf("core: layer %q shape %dx%d, expected %dx%d", cl.Name, cl.Rows, cl.Cols, ref.Linear.Out(), ref.Linear.In())
		}
		if len(cl.Scales) != len(cl.Zeros) {
			return nil, nil, fmt.Errorf("core: layer %q has %d scales, %d zeros", cl.Name, len(cl.Scales), len(cl.Zeros))
		}
		params := make([]quant.GroupParams, len(cl.Scales))
		for g := range cl.Scales {
			params[g] = quant.GroupParams{Scale: float64(cl.Scales[g]), Zero: float64(cl.Zeros[g])}
		}
		pm, err := quant.NewPackedFromStream(cl.Rows, cl.Cols, cl.GroupSize, cl.Bits, cl.RowBits, cl.Packed, params)
		if err != nil {
			return nil, nil, fmt.Errorf("core: layer %q: %w", cl.Name, err)
		}
		packed[i] = pm
	}

	fp := map[string][]float32{}
	for i, name := range cf.FPNames {
		fp[name] = cf.FPTensors[i]
	}
	quantizable := map[string]bool{}
	for _, ref := range layers {
		quantizable[ref.Linear.P.Name] = true
	}
	for _, p := range m.Params() {
		if quantizable[p.Name] {
			continue
		}
		t, ok := fp[p.Name]
		if !ok {
			return nil, nil, fmt.Errorf("core: checkpoint missing tensor %q", p.Name)
		}
		if len(t) != len(p.W.Data) {
			return nil, nil, fmt.Errorf("core: tensor %q has %d values, expected %d", p.Name, len(t), len(p.W.Data))
		}
		for j, v := range t {
			p.W.Data[j] = float64(v)
		}
	}
	return m, packed, nil
}

// ReadCompressed reconstructs a runnable float model from a compressed
// checkpoint. Weights are dequantized into float64 on load (group
// parameters were stored as float32, so reconstruction matches the
// quantized model to float32 precision — verified in tests). For serving
// from the compressed form without materializing float weights, use
// ReadCompressedPacked.
func ReadCompressed(rd io.Reader) (*model.Model, error) {
	m, packed, err := readCompressedParts(rd)
	if err != nil {
		return nil, err
	}
	layers := m.QuantizableLayers()
	for i, pm := range packed {
		layers[i].Linear.P.W.CopyFrom(pm.Dequantize())
	}
	return m, nil
}

// ReadCompressedFile reads a compressed checkpoint from path.
func ReadCompressedFile(path string) (*model.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCompressed(f)
}

// LoadModelFile resolves a checkpoint path the way the serving-side
// commands (aptq-eval, aptq-serve) do: with packed set, the file must be a
// compressed checkpoint and is loaded for packed execution (qm non-nil,
// m = qm.Model); otherwise a float checkpoint is tried first and the
// compressed (dequantize-on-load) format is the fallback. One shared
// helper keeps the two commands' resolution logic and error wording from
// drifting.
func LoadModelFile(path string, packed bool) (m *model.Model, qm *model.QuantizedModel, err error) {
	if packed {
		qm, err = ReadCompressedPackedFile(path)
		if err != nil {
			return nil, nil, fmt.Errorf("load packed: %w", err)
		}
		return qm.Model, qm, nil
	}
	m, err = model.LoadFile(path)
	if err != nil {
		var cerr error
		if m, cerr = ReadCompressedFile(path); cerr != nil {
			return nil, nil, fmt.Errorf("load: %v (as compressed checkpoint: %v)", err, cerr)
		}
	}
	return m, nil, nil
}

// ReadCompressedPacked reconstructs a packed-execution model from a
// compressed checkpoint: quantizable projections adopt the checkpoint's
// bit streams directly and compute with dequant-on-the-fly, so the
// quantized weights are never dequantized into resident float64 matrices.
// (Model construction transiently allocates the float skeleton of the
// quantizable projections before the swap discards it; steady-state
// residency is the packed streams plus the full-precision remainder.)
// This is the serving load path of the paper's edge-deployment story.
func ReadCompressedPacked(rd io.Reader) (*model.QuantizedModel, error) {
	m, packed, err := readCompressedParts(rd)
	if err != nil {
		return nil, err
	}
	return model.NewQuantizedModel(m, packed)
}

// ReadCompressedPackedFile reads a packed-execution model from path.
func ReadCompressedPackedFile(path string) (*model.QuantizedModel, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCompressedPacked(f)
}

package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"repro/internal/model"
	"repro/internal/quant"
)

// The compressed checkpoint is the on-disk artifact an edge deployment
// would ship: quantizable layers are stored as bit-packed integer codes
// plus float32 group parameters, and the remaining full-precision tensors
// (embedding, norms, head) as float32. For a 4-bit model this is ~14x
// smaller than the float64 training checkpoint; 2/4-bit mixed models shrink
// further.

// compressedLayer is the serialized form of one quantized weight matrix.
type compressedLayer struct {
	Name      string
	Rows      int
	Cols      int
	GroupSize int
	Bits      int
	Packed    []byte
	Scales    []float32
	Zeros     []float32
}

// compressedFile is the gob payload of a compressed checkpoint.
type compressedFile struct {
	Cfg    model.Config
	Layers []compressedLayer
	// FPNames/FPTensors carry the non-quantized parameters as float32.
	FPNames   []string
	FPTensors [][]float32
}

// WriteCompressed serializes the quantized model in packed form.
func (r *Result) WriteCompressed(w io.Writer) error {
	if len(r.Quantized) != len(r.Layers) {
		return fmt.Errorf("core: result has %d quantized matrices for %d layers", len(r.Quantized), len(r.Layers))
	}
	cf := compressedFile{Cfg: r.Model.Cfg}
	for i, qm := range r.Quantized {
		cl := compressedLayer{
			Name: r.Layers[i].Name, Rows: qm.Rows, Cols: qm.Cols,
			GroupSize: qm.GroupSize, Bits: qm.Bits,
			Packed: quant.Pack(qm.Codes, qm.Bits),
		}
		for _, p := range qm.Params {
			cl.Scales = append(cl.Scales, float32(p.Scale))
			cl.Zeros = append(cl.Zeros, float32(p.Zero))
		}
		cf.Layers = append(cf.Layers, cl)
	}
	quantizable := map[string]bool{}
	for _, ref := range r.Model.QuantizableLayers() {
		quantizable[ref.Linear.P.Name] = true
	}
	for _, p := range r.Model.Params() {
		if quantizable[p.Name] {
			continue
		}
		t := make([]float32, len(p.W.Data))
		for j, v := range p.W.Data {
			t[j] = float32(v)
		}
		cf.FPNames = append(cf.FPNames, p.Name)
		cf.FPTensors = append(cf.FPTensors, t)
	}
	return gob.NewEncoder(w).Encode(cf)
}

// WriteCompressedFile writes the compressed checkpoint to path.
func (r *Result) WriteCompressedFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := r.WriteCompressed(f); err != nil {
		return err
	}
	return f.Close()
}

// ReadCompressed reconstructs a runnable model from a compressed
// checkpoint. Weights are dequantized into float64 on load (group
// parameters were stored as float32, so reconstruction matches the
// quantized model to float32 precision — verified in tests).
func ReadCompressed(rd io.Reader) (*model.Model, error) {
	var cf compressedFile
	if err := gob.NewDecoder(rd).Decode(&cf); err != nil {
		return nil, fmt.Errorf("core: decode compressed checkpoint: %w", err)
	}
	if err := cf.Cfg.Validate(); err != nil {
		return nil, err
	}
	m := model.New(cf.Cfg, 0)

	layers := m.QuantizableLayers()
	if len(layers) != len(cf.Layers) {
		return nil, fmt.Errorf("core: checkpoint has %d quantized layers, model has %d", len(cf.Layers), len(layers))
	}
	for i, cl := range cf.Layers {
		ref := layers[i]
		if ref.Name() != cl.Name {
			return nil, fmt.Errorf("core: layer %d is %q, expected %q", i, cl.Name, ref.Name())
		}
		if cl.Rows != ref.Linear.Out() || cl.Cols != ref.Linear.In() {
			return nil, fmt.Errorf("core: layer %q shape %dx%d, expected %dx%d", cl.Name, cl.Rows, cl.Cols, ref.Linear.Out(), ref.Linear.In())
		}
		qm := &quant.QuantizedMatrix{
			Rows: cl.Rows, Cols: cl.Cols, GroupSize: cl.GroupSize, Bits: cl.Bits,
			Codes: quant.Unpack(cl.Packed, cl.Rows*cl.Cols, cl.Bits),
		}
		for g := range cl.Scales {
			qm.Params = append(qm.Params, quant.GroupParams{Scale: float64(cl.Scales[g]), Zero: float64(cl.Zeros[g])})
		}
		if err := qm.Validate(); err != nil {
			return nil, fmt.Errorf("core: layer %q: %w", cl.Name, err)
		}
		ref.Linear.P.W.CopyFrom(qm.Dequantize())
	}

	fp := map[string][]float32{}
	for i, name := range cf.FPNames {
		fp[name] = cf.FPTensors[i]
	}
	quantizable := map[string]bool{}
	for _, ref := range layers {
		quantizable[ref.Linear.P.Name] = true
	}
	for _, p := range m.Params() {
		if quantizable[p.Name] {
			continue
		}
		t, ok := fp[p.Name]
		if !ok {
			return nil, fmt.Errorf("core: checkpoint missing tensor %q", p.Name)
		}
		if len(t) != len(p.W.Data) {
			return nil, fmt.Errorf("core: tensor %q has %d values, expected %d", p.Name, len(t), len(p.W.Data))
		}
		for j, v := range t {
			p.W.Data[j] = float64(v)
		}
	}
	return m, nil
}

// ReadCompressedFile reads a compressed checkpoint from path.
func ReadCompressedFile(path string) (*model.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCompressed(f)
}

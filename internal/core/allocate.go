package core

import (
	"fmt"
	"sort"
)

// Allocation maps each quantizable layer to a bit width under the 2/4-bit
// mixed-precision scheme of Section 3.3 (or a multi-width ladder when
// produced by AllocateKnapsack).
type Allocation struct {
	// Bits[layerName] is the assigned width.
	Bits map[string]int
	// FourBitWeights / TotalWeights give the achieved ratio R (weights at
	// the highest width over all weights).
	FourBitWeights int
	TotalWeights   int
	HighBits       int
	LowBits        int
	// weightedAvgBits, when set (multi-width allocations), is the exact
	// Σ w_l·b_l / Σ w_l; otherwise AverageBits uses eq. (18).
	weightedAvgBits float64
}

// Ratio returns the achieved fraction of weights at the high bit width —
// the R of eq. (18).
func (a *Allocation) Ratio() float64 {
	if a.TotalWeights == 0 {
		return 0
	}
	return float64(a.FourBitWeights) / float64(a.TotalWeights)
}

// AverageBits evaluates eq. (18): avg = high·R + low·(1−R). For
// multi-width allocations it returns the exact weighted average.
func (a *Allocation) AverageBits() float64 {
	if a.weightedAvgBits != 0 {
		return a.weightedAvgBits
	}
	r := a.Ratio()
	return float64(a.HighBits)*r + float64(a.LowBits)*(1-r)
}

// Allocate implements Step 2 of Algorithm 1: order layers by sensitivity
// (highest first) and keep assigning the high bit width until at least
// ratio·totalWeights scalar weights are covered; every remaining layer
// drops to the low width. Allocation is by whole layers, mirroring the
// paper's per-layer precision assignment; because layer sizes are discrete
// the achieved ratio is the closest reachable value >= the request (or all
// layers, whichever is first).
func Allocate(sens []Sensitivity, ratio float64, highBits, lowBits int) (*Allocation, error) {
	if ratio < 0 || ratio > 1 {
		return nil, fmt.Errorf("core: 4-bit ratio %v outside [0,1]", ratio)
	}
	if highBits <= lowBits {
		return nil, fmt.Errorf("core: highBits %d must exceed lowBits %d", highBits, lowBits)
	}
	order := make([]Sensitivity, len(sens))
	copy(order, sens)
	sort.SliceStable(order, func(i, j int) bool { return order[i].Score > order[j].Score })

	total := 0
	for _, s := range order {
		total += s.Weights
	}
	alloc := &Allocation{
		Bits:         make(map[string]int, len(order)),
		TotalWeights: total,
		HighBits:     highBits,
		LowBits:      lowBits,
	}
	budget := int(ratio * float64(total))
	covered := 0
	for _, s := range order {
		if covered < budget {
			alloc.Bits[s.Name] = highBits
			covered += s.Weights
		} else {
			alloc.Bits[s.Name] = lowBits
		}
	}
	alloc.FourBitWeights = covered
	return alloc, nil
}

// ManualBlockwise is the ablation baseline of Table 3: instead of
// sensitivity ordering, whole transformer blocks are kept at the high width
// front-to-back until the ratio budget is met. It mirrors the "most
// intuitive mixed-precision strategy" the paper compares against.
func ManualBlockwise(sens []Sensitivity, ratio float64, highBits, lowBits int) (*Allocation, error) {
	if ratio < 0 || ratio > 1 {
		return nil, fmt.Errorf("core: 4-bit ratio %v outside [0,1]", ratio)
	}
	order := make([]Sensitivity, len(sens))
	copy(order, sens)
	// Stable order by (block, original index): front blocks first.
	sort.SliceStable(order, func(i, j int) bool { return order[i].Block < order[j].Block })

	total := 0
	for _, s := range order {
		total += s.Weights
	}
	alloc := &Allocation{
		Bits:         make(map[string]int, len(order)),
		TotalWeights: total,
		HighBits:     highBits,
		LowBits:      lowBits,
	}
	budget := int(ratio * float64(total))
	covered := 0
	currentBlock := -1
	blockOpen := false
	for _, s := range order {
		if s.Block != currentBlock {
			currentBlock = s.Block
			blockOpen = covered < budget
		}
		if blockOpen {
			alloc.Bits[s.Name] = highBits
			covered += s.Weights
		} else {
			alloc.Bits[s.Name] = lowBits
		}
	}
	alloc.FourBitWeights = covered
	return alloc, nil
}

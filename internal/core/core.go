package core

import (
	"math"
	"math/rand"

	"repro/internal/quant"
	"repro/internal/tensor"
)

// SensitivityMetric selects how per-layer sensitivity scores are computed
// from the calibration statistics. The paper orders layers by Hessian trace
// (Section 3.3); the default metric follows HAWQ-V2 in weighting the trace
// by the layer's expected low-bit quantization perturbation, which makes
// scores comparable across layers of different shapes. The remaining
// metrics exist for the sensitivity ablation (experiment A3 in DESIGN.md).
type SensitivityMetric int

const (
	// MetricFisherDelta scores Ω = Σ_i F_ii·δ_i², the diagonal empirical
	// Fisher of the LM loss dotted with the squared low-bit quantization
	// perturbation — the second-order Taylor estimate of the loss increase
	// from down-allocating the layer, in the HAWQ-V2 loss-Hessian-trace
	// lineage the paper builds on. Default: in leave-one-out calibration
	// it predicts true layer importance (Spearman ≈ 0.82 on nano-7B)
	// markedly better than layer-local traces because it captures
	// downstream error amplification.
	MetricFisherDelta SensitivityMetric = iota
	// MetricTraceQuantErr scores Ω = (tr(H)/d) · Σ(w − quant_low(w))² —
	// average attention-aware Hessian trace times the realized low-bit
	// perturbation.
	MetricTraceQuantErr
	// MetricTrace scores Ω = tr(H)/d, the paper's raw average Hessian
	// trace.
	MetricTrace
	// MetricGPTQTrace scores Ω like MetricTraceQuantErr but with the plain
	// GPTQ Hessian 2XᵀX — isolates the value of attention-awareness.
	MetricGPTQTrace
	// MetricRandom assigns random scores (lower-bound ablation).
	MetricRandom
)

// String names the metric for reports.
func (m SensitivityMetric) String() string {
	switch m {
	case MetricFisherDelta:
		return "fisher_diag*quant_err"
	case MetricTraceQuantErr:
		return "trace*quant_err(attention-aware)"
	case MetricTrace:
		return "avg_trace(attention-aware)"
	case MetricGPTQTrace:
		return "trace*quant_err(gptq)"
	case MetricRandom:
		return "random"
	default:
		return "unknown"
	}
}

// Sensitivity is one layer's mixed-precision score.
type Sensitivity struct {
	Name     string
	Role     string
	Block    int
	Weights  int
	AvgTrace float64 // tr(H)/d of the layer's (attention-aware) Hessian
	Score    float64 // metric-dependent allocation score
}

// Sensitivities computes per-layer scores under the given metric. lowBits
// is the bit width candidate for down-allocation (2 in the paper's 2/4
// scheme) and is used by the perturbation-weighted metrics; groupSize
// matches the quantizer configuration.
func (st *Stats) Sensitivities(metric SensitivityMetric, lowBits, groupSize int, seed int64) []Sensitivity {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Sensitivity, 0, len(st.Layers))
	for i := range st.Layers {
		ls := &st.Layers[i]
		h := ls.Hessian()
		avgTrace := h.MeanDiag()
		s := Sensitivity{
			Name:     ls.Ref.Name(),
			Role:     ls.Ref.Role.String(),
			Block:    ls.Ref.Block,
			Weights:  ls.Ref.NumWeights(),
			AvgTrace: avgTrace,
		}
		switch metric {
		case MetricFisherDelta:
			s.Score = fisherDelta(ls, lowBits, groupSize)
		case MetricTrace:
			s.Score = avgTrace
		case MetricTraceQuantErr:
			s.Score = avgTrace * quantPerturbation(ls.Ref.Linear.P.W, lowBits, groupSize)
		case MetricGPTQTrace:
			s.Score = ls.XtX.MeanDiag() * quantPerturbation(ls.Ref.Linear.P.W, lowBits, groupSize)
		case MetricRandom:
			s.Score = rng.Float64()
		}
		out = append(out, s)
	}
	return out
}

// quantPerturbation returns Σ(w − quant(w))² for a low-bit RTN pass — the
// ||ΔW||² factor of the HAWQ-V2 sensitivity Ω = tr(H)/d · ||ΔW||².
func quantPerturbation(w *tensor.Mat, bits, groupSize int) float64 {
	q := quant.RTN(w, bits, groupSize, false)
	mse, _ := quant.QuantizationError(w, q)
	return mse * float64(w.Rows*w.Cols)
}

// fisherDelta returns Σ_i F_ii·δ_i² — the diagonal-Fisher-weighted squared
// low-bit perturbation of the layer.
func fisherDelta(ls *LayerStats, bits, groupSize int) float64 {
	w := ls.Ref.Linear.P.W
	q := quant.RTN(w, bits, groupSize, false)
	dq := q.Dequantize()
	s := 0.0
	for i := range w.Data {
		d := w.Data[i] - dq.Data[i]
		s += ls.FisherDiag.Data[i] * d * d
	}
	return s
}

// TraceProfile returns the per-block average Hessian trace of a given role
// — the data behind the paper's Figure 1 (right) sensitivity plot
// ("Attn_Q_Weight", "Attn_V_Weight", "MLP_Weight" curves over block index).
func (st *Stats) TraceProfile(roleName string) []float64 {
	var out []float64
	for i := range st.Layers {
		ls := &st.Layers[i]
		if ls.Ref.Role.String() == roleName {
			out = append(out, ls.Hessian().MeanDiag())
		}
	}
	return out
}

// NormalizeScores rescales scores to [0, 1] for rendering; it does not
// change the ordering.
func NormalizeScores(ss []Sensitivity) []Sensitivity {
	max := 0.0
	for _, s := range ss {
		if s.Score > max {
			max = s.Score
		}
	}
	if max == 0 {
		return ss
	}
	out := make([]Sensitivity, len(ss))
	copy(out, ss)
	for i := range out {
		out[i].Score /= max
	}
	return out
}

// entropyOfScores is used in tests to verify random scores differ from
// structured ones; exported logic stays minimal.
func entropyOfScores(ss []Sensitivity) float64 {
	total := 0.0
	for _, s := range ss {
		total += s.Score
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, s := range ss {
		p := s.Score / total
		if p > 0 {
			h -= p * math.Log(p)
		}
	}
	return h
}

package tensor

import (
	"math/rand"
	"testing"

	"repro/internal/parallel"
)

// The reference kernels below reproduce the pre-parallel serial loop nests
// exactly (t-outer AccumGram, k-outer MatMulTN, including the zero-skips).
// The parallel kernels must match them bit-for-bit at every worker count —
// not approximately — which is what keeps quantization runs reproducible
// regardless of -workers.

func refMatMul(out, a, b *Mat) {
	out.Zero()
	n := b.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*n : (k+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

func refMatMulNT(out, a, b *Mat) {
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			s := 0.0
			for k, av := range arow {
				s += av * brow[k]
			}
			orow[j] = s
		}
	}
}

func refMatMulTN(out, a, b *Mat) {
	out.Zero()
	n := b.Cols
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Data[k*n : (k+1)*n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Data[i*n : (i+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

func refAccumGram(out, x *Mat) {
	d := x.Cols
	for t := 0; t < x.Rows; t++ {
		row := x.Row(t)
		for i, vi := range row {
			if vi == 0 {
				continue
			}
			orow := out.Data[i*d : (i+1)*d]
			for j := i; j < d; j++ {
				orow[j] += vi * row[j]
			}
		}
	}
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			out.Data[j*d+i] = out.Data[i*d+j]
		}
	}
}

// withWorkers runs fn at each of several worker counts, restoring the
// process default afterwards. Counts deliberately include 1 (inline), more
// workers than rows, and non-powers of two.
func withWorkers(t *testing.T, fn func(t *testing.T, workers int)) {
	t.Helper()
	defer parallel.SetWorkers(0)
	for _, w := range []int{1, 2, 3, 4, 7, 16} {
		parallel.SetWorkers(w)
		fn(t, w)
	}
}

// sparsify zeroes a fraction of entries so the kernels' zero-skip paths are
// exercised.
func sparsify(rng *rand.Rand, m *Mat) {
	for i := range m.Data {
		if rng.Intn(4) == 0 {
			m.Data[i] = 0
		}
	}
}

func bitEqual(a, b *Mat) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i, v := range a.Data {
		if v != b.Data[i] {
			return false
		}
	}
	return true
}

// matmulShapes covers rows < workers, zero-size, prime and odd dims.
var matmulShapes = []struct{ r, k, c int }{
	{0, 0, 0}, {1, 1, 1}, {0, 5, 3}, {3, 0, 5}, {5, 3, 0},
	{1, 64, 64}, {2, 7, 13}, {7, 7, 7}, {13, 31, 17}, {31, 13, 41},
	{64, 48, 96}, {97, 101, 89},
}

func TestMatMulParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, sh := range matmulShapes {
		a := Randn(rng, sh.r, sh.k, 1)
		b := Randn(rng, sh.k, sh.c, 1)
		sparsify(rng, a)
		want := New(sh.r, sh.c)
		refMatMul(want, a, b)
		withWorkers(t, func(t *testing.T, w int) {
			got := New(sh.r, sh.c)
			MatMulInto(got, a, b)
			if !bitEqual(got, want) {
				t.Fatalf("MatMulInto %dx%d·%dx%d differs from serial at %d workers", sh.r, sh.k, sh.k, sh.c, w)
			}
		})
	}
}

func TestMatMulNTParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, sh := range matmulShapes {
		a := Randn(rng, sh.r, sh.k, 1)
		b := Randn(rng, sh.c, sh.k, 1)
		want := New(sh.r, sh.c)
		refMatMulNT(want, a, b)
		withWorkers(t, func(t *testing.T, w int) {
			got := New(sh.r, sh.c)
			MatMulNTInto(got, a, b)
			if !bitEqual(got, want) {
				t.Fatalf("MatMulNTInto %dx%d·(%dx%d)ᵀ differs from serial at %d workers", sh.r, sh.k, sh.c, sh.k, w)
			}
		})
	}
}

func TestMatMulTNParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, sh := range matmulShapes {
		a := Randn(rng, sh.k, sh.r, 1)
		b := Randn(rng, sh.k, sh.c, 1)
		sparsify(rng, a)
		want := New(sh.r, sh.c)
		refMatMulTN(want, a, b)
		withWorkers(t, func(t *testing.T, w int) {
			got := New(sh.r, sh.c)
			MatMulTNInto(got, a, b)
			if !bitEqual(got, want) {
				t.Fatalf("MatMulTNInto (%dx%d)ᵀ·%dx%d differs from serial at %d workers", sh.k, sh.r, sh.k, sh.c, w)
			}
		})
	}
}

func TestAccumGramParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, sh := range []struct{ n, d int }{
		{0, 0}, {0, 5}, {1, 1}, {1, 7}, {3, 2}, {7, 13}, {31, 17}, {64, 48}, {256, 97},
	} {
		x := Randn(rng, sh.n, sh.d, 1)
		sparsify(rng, x)
		// Non-zero accumulator: AccumGram adds into out.
		seed := Randn(rng, sh.d, sh.d, 1)
		want := seed.Clone()
		refAccumGram(want, x)
		withWorkers(t, func(t *testing.T, w int) {
			got := seed.Clone()
			AccumGram(got, x)
			if !bitEqual(got, want) {
				t.Fatalf("AccumGram %dx%d differs from serial at %d workers", sh.n, sh.d, w)
			}
		})
	}
}

// TestParallelKernelsShared exercises concurrent kernel calls sharing
// read-only inputs under the race detector.
func TestParallelKernelsShared(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := Randn(rng, 63, 47, 1)
	b := Randn(rng, 47, 53, 1)
	parallel.SetWorkers(4)
	defer parallel.SetWorkers(0)
	want := New(63, 53)
	refMatMul(want, a, b)
	parallel.ForEach(8, func(i int) {
		out := New(63, 53)
		MatMulInto(out, a, b)
		if !bitEqual(out, want) {
			t.Errorf("concurrent MatMulInto %d differs", i)
		}
	})
}

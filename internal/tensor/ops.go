package tensor

import (
	"fmt"

	"repro/internal/parallel"
)

// chunkOps is the approximate number of scalar multiply-adds each parallel
// chunk should carry. Below roughly two chunks' worth of work the kernels
// run serially on the calling goroutine, so small matrices never pay
// goroutine dispatch overhead.
const chunkOps = 1 << 15

// rowGrain returns the number of output rows per parallel chunk so that one
// chunk carries about chunkOps multiply-adds.
func rowGrain(opsPerRow int) int {
	if opsPerRow <= 0 {
		return 1
	}
	g := chunkOps / opsPerRow
	if g < 1 {
		g = 1
	}
	return g
}

// MatMul returns a·b for a (r x k) and b (k x c).
func MatMul(a, b *Mat) *Mat {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes out = a·b, reusing out's storage. out must be
// a.Rows x b.Cols and must not alias a or b.
//
// Rows of out are partitioned across workers; each output row is produced
// by exactly one goroutine with the same inner-loop order as a serial run,
// so the result is bit-identical for any worker count. Single-worker runs
// skip the fork-join machinery entirely (no closure, no dispatch), which
// keeps the chunked-prefill steady state allocation-free.
func MatMulInto(out, a, b *Mat) {
	if a.Cols != b.Rows || out.Rows != a.Rows || out.Cols != b.Cols {
		panic("tensor: MatMulInto shape mismatch")
	}
	if parallel.Workers() == 1 {
		matMulRange(out, a, b, 0, a.Rows)
		return
	}
	parallel.For(a.Rows, rowGrain(a.Cols*b.Cols), func(lo, hi int) {
		matMulRange(out, a, b, lo, hi)
	})
}

// matMulRange computes output rows [lo, hi) of out = a·b.
func matMulRange(out, a, b *Mat, lo, hi int) {
	n := b.Cols
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := range orow {
			orow[j] = 0
		}
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*n : (k+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatMulNT returns a·bᵀ for a (r x k) and b (c x k).
func MatMulNT(a, b *Mat) *Mat {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulNT shape mismatch %dx%d · (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Rows)
	MatMulNTInto(out, a, b)
	return out
}

// MatMulNTInto computes out = a·bᵀ, reusing out's storage. Rows of out are
// partitioned across workers (see MatMulInto's determinism and
// single-worker notes).
func MatMulNTInto(out, a, b *Mat) {
	if a.Cols != b.Cols || out.Rows != a.Rows || out.Cols != b.Rows {
		panic("tensor: MatMulNTInto shape mismatch")
	}
	if parallel.Workers() == 1 {
		matMulNTRange(out, a, b, 0, a.Rows)
		return
	}
	parallel.For(a.Rows, rowGrain(a.Cols*b.Rows), func(lo, hi int) {
		matMulNTRange(out, a, b, lo, hi)
	})
}

// matMulNTRange computes output rows [lo, hi) of out = a·bᵀ, four rows of
// a at a time: the four dot products share each streamed b-row and run on
// four independent accumulator chains, hiding the floating-point add
// latency a single-row matvec is bound by (the reason batched prefill
// beats the token loop even on one core). Every output element still
// accumulates its own k-terms in ascending order from a zero accumulator,
// so the result is bit-identical to the plain row-at-a-time kernel.
func matMulNTRange(out, a, b *Mat, lo, hi int) {
	i := lo
	for ; i+3 < hi; i += 4 {
		a0, a1, a2, a3 := a.Row(i), a.Row(i+1), a.Row(i+2), a.Row(i+3)
		o0, o1, o2, o3 := out.Row(i), out.Row(i+1), out.Row(i+2), out.Row(i+3)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			var s0, s1, s2, s3 float64
			for k, bv := range brow {
				s0 += a0[k] * bv
				s1 += a1[k] * bv
				s2 += a2[k] * bv
				s3 += a3[k] * bv
			}
			o0[j], o1[j], o2[j], o3[j] = s0, s1, s2, s3
		}
	}
	for ; i < hi; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			s := 0.0
			for k, av := range arow {
				s += av * brow[k]
			}
			orow[j] = s
		}
	}
}

// MatMulTN returns aᵀ·b for a (k x r) and b (k x c).
func MatMulTN(a, b *Mat) *Mat {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTN shape mismatch (%dx%d)ᵀ · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Cols, b.Cols)
	MatMulTNInto(out, a, b)
	return out
}

// MatMulTNInto computes out = aᵀ·b, reusing out's storage.
//
// The loop nest is arranged with the output row outermost so rows of out
// partition across workers. Each element still accumulates its k-terms in
// ascending order with the same zero-skips as before, so results are
// bit-identical to the serial k-outer formulation.
func MatMulTNInto(out, a, b *Mat) {
	if a.Rows != b.Rows || out.Rows != a.Cols || out.Cols != b.Cols {
		panic("tensor: MatMulTNInto shape mismatch")
	}
	n := b.Cols
	d := a.Cols
	parallel.For(d, rowGrain(a.Rows*n), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			orow := out.Data[i*n : (i+1)*n]
			for j := range orow {
				orow[j] = 0
			}
			for k := 0; k < a.Rows; k++ {
				av := a.Data[k*d+i]
				if av == 0 {
					continue
				}
				brow := b.Data[k*n : (k+1)*n]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
}

// Gram returns xᵀ·x for x (n x d), a d x d symmetric positive semidefinite
// matrix. It exploits symmetry to halve the work.
func Gram(x *Mat) *Mat {
	d := x.Cols
	out := New(d, d)
	AccumGram(out, x)
	return out
}

// AccumGram adds xᵀ·x into out (out must be d x d where d = x.Cols). It is
// the streaming building block for Hessian accumulation over calibration
// batches.
// The accumulation is partitioned by output row: each worker owns a block
// of rows of the upper triangle and sums its t-terms in ascending order —
// the same per-element order as the serial t-outer formulation, so the
// result is bit-identical for any worker count. Upper-triangle rows get
// cheaper as i grows; the chunked scheduler in internal/parallel lets idle
// workers steal small row blocks, which keeps the triangle balanced.
func AccumGram(out, x *Mat) {
	d := x.Cols
	if out.Rows != d || out.Cols != d {
		panic("tensor: AccumGram shape mismatch")
	}
	// Average upper-triangle row cost is x.Rows * d/2 multiply-adds.
	grain := rowGrain(x.Rows * (d + 1) / 2)
	parallel.For(d, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			orow := out.Data[i*d : (i+1)*d]
			for t := 0; t < x.Rows; t++ {
				vi := x.Data[t*d+i]
				if vi == 0 {
					continue
				}
				row := x.Data[t*d : (t+1)*d]
				for j := i; j < d; j++ {
					orow[j] += vi * row[j]
				}
			}
		}
	})
	// Mirror the upper triangle into the lower triangle, partitioned by
	// destination row (reads are to already-final upper rows).
	parallel.For(d, rowGrain(d/2+1), func(lo, hi int) {
		for j := lo; j < hi; j++ {
			orow := out.Data[j*d : (j+1)*d]
			for i := 0; i < j; i++ {
				orow[i] = out.Data[i*d+j]
			}
		}
	})
}

// Add returns a + b element-wise.
func Add(a, b *Mat) *Mat {
	checkSameShape("Add", a, b)
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// Sub returns a - b element-wise.
func Sub(a, b *Mat) *Mat {
	checkSameShape("Sub", a, b)
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// AddInPlace adds b into a element-wise.
func AddInPlace(a, b *Mat) {
	checkSameShape("AddInPlace", a, b)
	for i := range a.Data {
		a.Data[i] += b.Data[i]
	}
}

// AddScaled adds s*b into a element-wise.
func AddScaled(a *Mat, s float64, b *Mat) {
	checkSameShape("AddScaled", a, b)
	for i := range a.Data {
		a.Data[i] += s * b.Data[i]
	}
}

// Scale multiplies every element of m by s in place.
func (m *Mat) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AddDiag adds v to every diagonal element of a square matrix in place.
func (m *Mat) AddDiag(v float64) {
	if m.Rows != m.Cols {
		panic("tensor: AddDiag of non-square matrix")
	}
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+i] += v
	}
}

// MulVec returns m·v for v of length m.Cols.
func (m *Mat) MulVec(v []float64) []float64 {
	if len(v) != m.Cols {
		panic("tensor: MulVec length mismatch")
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		s := 0.0
		for j, rv := range row {
			s += rv * v[j]
		}
		out[i] = s
	}
	return out
}

// MulVecT returns mᵀ·v for v of length m.Rows.
func (m *Mat) MulVecT(v []float64) []float64 {
	if len(v) != m.Rows {
		panic("tensor: MulVecT length mismatch")
	}
	out := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		vi := v[i]
		if vi == 0 {
			continue
		}
		for j, rv := range row {
			out[j] += vi * rv
		}
	}
	return out
}

// SliceCols returns a copy of columns [lo, hi) of m.
func (m *Mat) SliceCols(lo, hi int) *Mat {
	if lo < 0 || hi > m.Cols || lo > hi {
		panic(fmt.Sprintf("tensor: SliceCols [%d,%d) out of range for %d cols", lo, hi, m.Cols))
	}
	out := New(m.Rows, hi-lo)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i), m.Row(i)[lo:hi])
	}
	return out
}

// SliceRows returns a view (not a copy) of rows [lo, hi) of m. The view
// shares storage with m.
func (m *Mat) SliceRows(lo, hi int) *Mat {
	if lo < 0 || hi > m.Rows || lo > hi {
		panic(fmt.Sprintf("tensor: SliceRows [%d,%d) out of range for %d rows", lo, hi, m.Rows))
	}
	return &Mat{Rows: hi - lo, Cols: m.Cols, Data: m.Data[lo*m.Cols : hi*m.Cols]}
}

// SetSliceCols writes src into columns [lo, lo+src.Cols) of m.
func (m *Mat) SetSliceCols(lo int, src *Mat) {
	if src.Rows != m.Rows || lo+src.Cols > m.Cols {
		panic("tensor: SetSliceCols shape mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		copy(m.Row(i)[lo:lo+src.Cols], src.Row(i))
	}
}

func checkSameShape(op string, a, b *Mat) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

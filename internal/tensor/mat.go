// Package tensor provides the dense float64 matrix type and the matrix /
// vector primitives that every other package in this repository builds on.
//
// Matrices are row-major and sized at construction. All operations are
// deterministic, allocation patterns are explicit, and there is no global
// state; the package is safe for concurrent use as long as callers do not
// share a destination matrix between goroutines.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Mat is a dense row-major matrix of float64 values.
type Mat struct {
	Rows, Cols int
	// Data holds Rows*Cols values; element (i,j) lives at Data[i*Cols+j].
	Data []float64
}

// New returns a zeroed Rows x Cols matrix.
func New(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (length rows*cols, row-major) in a Mat without copying.
func FromSlice(rows, cols int, data []float64) *Mat {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice got %d values for %dx%d", len(data), rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: data}
}

// Randn returns a rows x cols matrix with N(0, std²) entries drawn from rng.
func Randn(rng *rand.Rand, rows, cols int, std float64) *Mat {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * std
	}
	return m
}

// Eye returns the n x n identity matrix.
func Eye(n int) *Mat {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a mutable slice view of row i.
func (m *Mat) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Col copies column j into a new slice.
func (m *Mat) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Data[i*m.Cols+j]
	}
	return out
}

// SetCol overwrites column j with v (length Rows).
func (m *Mat) SetCol(j int, v []float64) {
	if len(v) != m.Rows {
		panic("tensor: SetCol length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+j] = v[i]
	}
}

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// CopyFrom overwrites m with the contents of src (same shape required).
func (m *Mat) CopyFrom(src *Mat) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("tensor: CopyFrom shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	copy(m.Data, src.Data)
}

// Zero sets every element of m to zero.
func (m *Mat) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// T returns a newly allocated transpose of m.
func (m *Mat) T() *Mat {
	t := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// Equal reports whether m and b have the same shape and all elements within
// tol of each other.
func (m *Mat) Equal(b *Mat, tol float64) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(v-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// MaxAbs returns the largest absolute element of m (0 for empty matrices).
func (m *Mat) MaxAbs() float64 {
	max := 0.0
	for _, v := range m.Data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Mat) FrobeniusNorm() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Trace returns the sum of diagonal elements of a square matrix.
func (m *Mat) Trace() float64 {
	if m.Rows != m.Cols {
		panic("tensor: Trace of non-square matrix")
	}
	s := 0.0
	for i := 0; i < m.Rows; i++ {
		s += m.Data[i*m.Cols+i]
	}
	return s
}

// MeanDiag returns the mean of diagonal elements of a square matrix.
func (m *Mat) MeanDiag() float64 {
	if m.Rows == 0 {
		return 0
	}
	return m.Trace() / float64(m.Rows)
}

// String renders a compact, shape-prefixed representation for debugging.
func (m *Mat) String() string {
	if m.Rows*m.Cols <= 64 {
		return fmt.Sprintf("Mat(%dx%d)%v", m.Rows, m.Cols, m.Data)
	}
	return fmt.Sprintf("Mat(%dx%d)[...%d values]", m.Rows, m.Cols, len(m.Data))
}

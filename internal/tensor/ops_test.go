package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatMulKnown(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got := MatMul(a, b)
	want := FromSlice(2, 2, []float64{58, 64, 139, 154})
	if !got.Equal(want, 1e-12) {
		t.Fatalf("MatMul = %v, want %v", got, want)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := Randn(rng, 5, 5, 1)
	if !MatMul(a, Eye(5)).Equal(a, 1e-12) {
		t.Fatal("A·I != A")
	}
	if !MatMul(Eye(5), a).Equal(a, 1e-12) {
		t.Fatal("I·A != A")
	}
}

// naiveMul is the reference O(n³) triple loop used to validate the faster
// kernels.
func naiveMul(a, b *Mat) *Mat {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			s := 0.0
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func TestMatMulVariantsAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, k, c := 1+rng.Intn(7), 1+rng.Intn(7), 1+rng.Intn(7)
		a := Randn(rng, r, k, 1)
		b := Randn(rng, k, c, 1)
		want := naiveMul(a, b)
		if !MatMul(a, b).Equal(want, 1e-10) {
			return false
		}
		if !MatMulNT(a, b.T()).Equal(want, 1e-10) {
			return false
		}
		if !MatMulTN(a.T(), b).Equal(want, 1e-10) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGramMatchesTransposeMul(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := Randn(rng, 2+rng.Intn(8), 1+rng.Intn(6), 1)
		return Gram(x).Equal(MatMulTN(x, x), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGramSymmetricPSD(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := Randn(rng, 12, 6, 1)
	g := Gram(x)
	if !g.Equal(g.T(), 1e-12) {
		t.Fatal("Gram not symmetric")
	}
	// zᵀGz = ||Xz||² ≥ 0 for arbitrary z.
	for trial := 0; trial < 10; trial++ {
		z := make([]float64, 6)
		for i := range z {
			z[i] = rng.NormFloat64()
		}
		if Dot(z, g.MulVec(z)) < -1e-10 {
			t.Fatal("Gram not PSD")
		}
	}
}

func TestAccumGramAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x1 := Randn(rng, 4, 3, 1)
	x2 := Randn(rng, 5, 3, 1)
	acc := New(3, 3)
	AccumGram(acc, x1)
	AccumGram(acc, x2)
	want := Add(Gram(x1), Gram(x2))
	if !acc.Equal(want, 1e-10) {
		t.Fatal("AccumGram sum mismatch")
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromSlice(1, 3, []float64{1, 2, 3})
	b := FromSlice(1, 3, []float64{4, 5, 6})
	if !Add(a, b).Equal(FromSlice(1, 3, []float64{5, 7, 9}), 0) {
		t.Fatal("Add")
	}
	if !Sub(b, a).Equal(FromSlice(1, 3, []float64{3, 3, 3}), 0) {
		t.Fatal("Sub")
	}
	c := a.Clone()
	c.Scale(2)
	if !c.Equal(FromSlice(1, 3, []float64{2, 4, 6}), 0) {
		t.Fatal("Scale")
	}
	AddScaled(c, -2, a)
	if !c.Equal(New(1, 3), 1e-12) {
		t.Fatal("AddScaled")
	}
}

func TestAddDiag(t *testing.T) {
	m := New(3, 3)
	m.AddDiag(2.5)
	e := Eye(3)
	e.Scale(2.5)
	if !m.Equal(e, 0) {
		t.Fatal("AddDiag")
	}
}

func TestMulVecAndMulVecT(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	got := m.MulVec([]float64{1, 0, -1})
	if got[0] != -2 || got[1] != -2 {
		t.Fatalf("MulVec = %v", got)
	}
	gt := m.MulVecT([]float64{1, -1})
	if gt[0] != -3 || gt[1] != -3 || gt[2] != -3 {
		t.Fatalf("MulVecT = %v", gt)
	}
}

func TestSliceColsAndSetSliceCols(t *testing.T) {
	m := FromSlice(2, 4, []float64{1, 2, 3, 4, 5, 6, 7, 8})
	s := m.SliceCols(1, 3)
	want := FromSlice(2, 2, []float64{2, 3, 6, 7})
	if !s.Equal(want, 0) {
		t.Fatalf("SliceCols = %v", s)
	}
	s.Scale(0) // must not affect m: SliceCols copies
	if m.At(0, 1) != 2 {
		t.Fatal("SliceCols must copy")
	}
	m.SetSliceCols(2, FromSlice(2, 2, []float64{-1, -2, -3, -4}))
	if m.At(0, 2) != -1 || m.At(1, 3) != -4 {
		t.Fatalf("SetSliceCols failed: %v", m)
	}
}

func TestSliceRowsIsView(t *testing.T) {
	m := FromSlice(3, 2, []float64{1, 2, 3, 4, 5, 6})
	v := m.SliceRows(1, 3)
	v.Set(0, 0, 99)
	if m.At(1, 0) != 99 {
		t.Fatal("SliceRows must be a view")
	}
}

func TestSoftmaxProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		src := make([]float64, n)
		for i := range src {
			src[i] = rng.NormFloat64() * 10
		}
		dst := make([]float64, n)
		Softmax(dst, src)
		sum := 0.0
		for _, v := range dst {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	src := []float64{1, 2, 3}
	a := make([]float64, 3)
	b := make([]float64, 3)
	Softmax(a, src)
	shifted := []float64{101, 102, 103}
	Softmax(b, shifted)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatal("softmax must be shift invariant")
		}
	}
}

func TestSoftmaxExtremeValues(t *testing.T) {
	dst := make([]float64, 2)
	Softmax(dst, []float64{1000, -1000})
	if dst[0] < 0.999999 || math.IsNaN(dst[1]) {
		t.Fatalf("softmax unstable: %v", dst)
	}
}

func TestSoftmaxEmptyIsNoOp(t *testing.T) {
	// Used to panic on src[0]; defined as a no-op.
	Softmax(nil, nil)
	Softmax([]float64{}, []float64{})
}

func TestSoftmaxAllNegInfUniform(t *testing.T) {
	negInf := math.Inf(-1)
	dst := make([]float64, 4)
	Softmax(dst, []float64{negInf, negInf, negInf, negInf})
	for i, v := range dst {
		if v != 0.25 {
			t.Fatalf("all--Inf softmax[%d] = %v, want uniform 0.25", i, v)
		}
	}
	// A single finite entry among -Inf still wins everything.
	Softmax(dst, []float64{negInf, 3, negInf, negInf})
	if dst[1] != 1 || dst[0] != 0 || dst[2] != 0 || dst[3] != 0 {
		t.Fatalf("masked softmax = %v, want one-hot at 1", dst)
	}
}

func TestLogSumExp(t *testing.T) {
	v := []float64{0, 0}
	if math.Abs(LogSumExp(v)-math.Log(2)) > 1e-12 {
		t.Fatalf("LogSumExp = %v", LogSumExp(v))
	}
	// Stability at large magnitude.
	if got := LogSumExp([]float64{1000, 1000}); math.Abs(got-(1000+math.Log(2))) > 1e-9 {
		t.Fatalf("LogSumExp large = %v", got)
	}
}

func TestDotAxpy(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if Dot(a, b) != 32 {
		t.Fatalf("Dot = %v", Dot(a, b))
	}
	y := []float64{0, 0, 0}
	Axpy(2, a, y)
	if y[2] != 6 {
		t.Fatalf("Axpy = %v", y)
	}
}

func TestMinMaxNorm(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 2})
	if min != -1 || max != 3 {
		t.Fatalf("MinMax = %v %v", min, max)
	}
	if math.Abs(Norm2([]float64{3, 4})-5) > 1e-12 {
		t.Fatal("Norm2")
	}
	if MaxAbsVec([]float64{-7, 2}) != 7 {
		t.Fatal("MaxAbsVec")
	}
	if MeanVec([]float64{1, 3}) != 2 {
		t.Fatal("MeanVec")
	}
	if MeanVec(nil) != 0 {
		t.Fatal("MeanVec empty")
	}
}

func TestMatMulShapePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"MatMul":   func() { MatMul(New(2, 3), New(2, 3)) },
		"MatMulNT": func() { MatMulNT(New(2, 3), New(2, 4)) },
		"MatMulTN": func() { MatMulTN(New(2, 3), New(3, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

package tensor

import "math"

// Dot returns the inner product of a and b (equal lengths required).
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("tensor: Dot length mismatch")
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Axpy computes y += alpha*x element-wise.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("tensor: Axpy length mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// ScaleVec multiplies every element of v by s in place.
func ScaleVec(v []float64, s float64) {
	for i := range v {
		v[i] *= s
	}
}

// SumVec returns the sum of the elements of v.
func SumVec(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// MeanVec returns the arithmetic mean of v (0 for empty input).
func MeanVec(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	return SumVec(v) / float64(len(v))
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// MaxAbsVec returns the largest absolute element of v (0 for empty input).
func MaxAbsVec(v []float64) float64 {
	max := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > max {
			max = a
		}
	}
	return max
}

// MinMax returns the minimum and maximum of v. It panics on empty input.
func MinMax(v []float64) (min, max float64) {
	if len(v) == 0 {
		panic("tensor: MinMax of empty slice")
	}
	min, max = v[0], v[0]
	for _, x := range v[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Softmax writes the softmax of src into dst (same length) using the
// max-subtraction trick for numerical stability. dst may alias src.
//
// Degenerate inputs are defined explicitly: an empty src is a no-op, and
// an all--Inf src (a fully masked score row) yields the uniform
// distribution instead of the NaNs that exp(-Inf − -Inf) would produce.
func Softmax(dst, src []float64) {
	if len(dst) != len(src) {
		panic("tensor: Softmax length mismatch")
	}
	if len(src) == 0 {
		return
	}
	max := src[0]
	for _, v := range src[1:] {
		if v > max {
			max = v
		}
	}
	if math.IsInf(max, -1) {
		u := 1 / float64(len(dst))
		for i := range dst {
			dst[i] = u
		}
		return
	}
	sum := 0.0
	for i, v := range src {
		e := math.Exp(v - max)
		dst[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range dst {
		dst[i] *= inv
	}
}

// LogSumExp returns log(Σ exp(v_i)) computed stably.
func LogSumExp(v []float64) float64 {
	max := v[0]
	for _, x := range v[1:] {
		if x > max {
			max = x
		}
	}
	s := 0.0
	for _, x := range v {
		s += math.Exp(x - max)
	}
	return max + math.Log(s)
}

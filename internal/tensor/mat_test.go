package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndAt(t *testing.T) {
	m := New(2, 3)
	if m.Rows != 2 || m.Cols != 3 || len(m.Data) != 6 {
		t.Fatalf("New(2,3) = %v", m)
	}
	m.Set(1, 2, 4.5)
	if m.At(1, 2) != 4.5 {
		t.Fatalf("At(1,2) = %v, want 4.5", m.At(1, 2))
	}
	if m.At(0, 0) != 0 {
		t.Fatalf("zero value not zero")
	}
}

func TestFromSliceNoCopy(t *testing.T) {
	d := []float64{1, 2, 3, 4}
	m := FromSlice(2, 2, d)
	d[3] = 9
	if m.At(1, 1) != 9 {
		t.Fatal("FromSlice must wrap, not copy")
	}
}

func TestFromSlicePanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice(2, 2, []float64{1, 2, 3})
}

func TestRowIsView(t *testing.T) {
	m := New(3, 2)
	m.Row(1)[0] = 7
	if m.At(1, 0) != 7 {
		t.Fatal("Row must be a mutable view")
	}
}

func TestColAndSetCol(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	c := m.Col(1)
	if c[0] != 2 || c[1] != 5 {
		t.Fatalf("Col(1) = %v", c)
	}
	m.SetCol(2, []float64{9, 8})
	if m.At(0, 2) != 9 || m.At(1, 2) != 8 {
		t.Fatalf("SetCol failed: %v", m)
	}
}

func TestCloneIndependent(t *testing.T) {
	m := FromSlice(1, 2, []float64{1, 2})
	c := m.Clone()
	c.Data[0] = 100
	if m.Data[0] != 1 {
		t.Fatal("Clone must deep-copy")
	}
}

func TestTranspose(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tr := m.T()
	want := FromSlice(3, 2, []float64{1, 4, 2, 5, 3, 6})
	if !tr.Equal(want, 0) {
		t.Fatalf("T() = %v", tr)
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := Randn(rng, 1+rng.Intn(6), 1+rng.Intn(6), 1)
		return m.T().T().Equal(m, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEye(t *testing.T) {
	e := Eye(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if e.At(i, j) != want {
				t.Fatalf("Eye(3)[%d,%d] = %v", i, j, e.At(i, j))
			}
		}
	}
}

func TestTraceAndMeanDiag(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, 5, 5, 3})
	if m.Trace() != 4 {
		t.Fatalf("Trace = %v", m.Trace())
	}
	if m.MeanDiag() != 2 {
		t.Fatalf("MeanDiag = %v", m.MeanDiag())
	}
}

func TestMaxAbsAndFrobenius(t *testing.T) {
	m := FromSlice(1, 3, []float64{-3, 2, 1})
	if m.MaxAbs() != 3 {
		t.Fatalf("MaxAbs = %v", m.MaxAbs())
	}
	if math.Abs(m.FrobeniusNorm()-math.Sqrt(14)) > 1e-12 {
		t.Fatalf("FrobeniusNorm = %v", m.FrobeniusNorm())
	}
}

func TestCopyFromShapeCheck(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	New(2, 2).CopyFrom(New(2, 3))
}

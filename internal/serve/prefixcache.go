// Prefix/KV cache: the scheduler-level store that eliminates repeated
// prefill work for shared prompt prefixes (system prompts, few-shot
// headers — the steady-state cost of real serving traffic). The cache
// holds immutable infer.KVSpan snapshots at admission-chunk granularity:
// entry k of a prompt covers token positions [k*chunk, (k+1)*chunk) and is
// keyed by the *entire* prefix up to its end, so two prompts share cached
// chunks exactly as far as their tokens agree. A request whose prompt
// starts with cached chunks imports their KV rows (a memcpy per block)
// instead of recomputing the prefill, which collapses time-to-first-token
// on repeat prefixes to near zero while remaining bit-identical to a cold
// prefill — prefill is deterministic and KV rows are position-addressed,
// so imported bytes equal recomputed bytes (pinned by the prefix-cache
// tests at the scheduler level).
//
// Entries are refcounted: a lookup pins the entries it returns until the
// importing slot releases them, and eviction — least-recently-used by a
// byte budget — skips pinned entries, so an admission can never observe a
// span being dropped mid-attach. Keys store the full prefix tokens, not
// just a hash: lookups verify token equality, so a hash collision costs a
// miss, never a wrong prefill.
package serve

import (
	"slices"
	"sync"

	"repro/internal/infer"
)

// prefixEntry is one cached chunk of a prompt prefix.
type prefixEntry struct {
	prefix []int // full token prefix [0, span.End) — collision guard
	span   *infer.KVSpan
	bytes  int64
	refs   int // pinned by in-flight attaches; >0 blocks eviction

	// LRU list links (most recent at head).
	prev, next *prefixEntry
}

// prefixCacheStats is the counter snapshot the scheduler folds into Stats.
type prefixCacheStats struct {
	// Hits / Misses count lookups (a lookup matching >= 1 chunk is a hit).
	Hits, Misses int64
	// HitTokens counts prompt tokens whose prefill was skipped.
	HitTokens int64
	// Evictions counts entries dropped under byte pressure.
	Evictions int64
	// Bytes / Entries describe the current residency.
	Bytes   int64
	Entries int
}

// prefixCache is a byte-budgeted LRU of KV snapshots keyed by token
// prefix. Safe for concurrent use (slot workers insert mid-prefill while
// the scheduler loop looks up admissions).
type prefixCache struct {
	chunk  int   // token granularity of cached spans
	budget int64 // byte budget; inserts evict LRU entries past it

	mu         sync.Mutex
	entries    map[uint64][]*prefixEntry // hash of full prefix -> entries (collision list)
	head, tail *prefixEntry              // LRU list, head = most recent
	stats      prefixCacheStats
}

func newPrefixCache(chunk int, budget int64) *prefixCache {
	return &prefixCache{chunk: chunk, budget: budget, entries: make(map[uint64][]*prefixEntry)}
}

// fnvOffset is the FNV-1a 64-bit offset basis.
const fnvOffset = uint64(14695981039346656037)

// hashExtend mixes tokens into a running FNV-1a hash, so consecutive
// prefix hashes — prompt[:chunk], prompt[:2*chunk], ... — are computed
// incrementally instead of rehashing from the start (lookup walks the
// chunks of one prompt this way, keeping admission linear in the prompt).
func hashExtend(h uint64, tokens []int) uint64 {
	for _, t := range tokens {
		v := uint64(t)
		for b := 0; b < 8; b++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	return h
}

// hashPrefix is FNV-1a over the token values.
func hashPrefix(tokens []int) uint64 { return hashExtend(fnvOffset, tokens) }

// unlink removes e from the LRU list. Caller holds mu.
func (pc *prefixCache) unlink(e *prefixEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		pc.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		pc.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// pushFront links a currently unlinked entry at the head of the LRU
// list. Caller holds mu.
func (pc *prefixCache) pushFront(e *prefixEntry) {
	e.next = pc.head
	if pc.head != nil {
		pc.head.prev = e
	}
	pc.head = e
	if pc.tail == nil {
		pc.tail = e
	}
}

// touch moves an already linked entry to the head of the LRU list.
// Caller holds mu.
func (pc *prefixCache) touch(e *prefixEntry) {
	if pc.head == e {
		return
	}
	pc.unlink(e)
	pc.pushFront(e)
}

// find returns the entry whose full prefix equals tokens (h =
// hashPrefix(tokens), precomputed by callers that carry it
// incrementally), or nil. Caller holds mu.
func (pc *prefixCache) find(h uint64, tokens []int) *prefixEntry {
	for _, e := range pc.entries[h] {
		if slices.Equal(e.prefix, tokens) { //aptq:ignore noalloc slices.Equal is allocation-free; no stdlib facts are exported for package slices
			return e
		}
	}
	return nil
}

// lookup returns the spans of the longest run of cached chunks that
// prefix the prompt, covering at most limit tokens (the caller passes
// len(prompt)-1 so at least one token is always left to prefill — the
// logits of the last prompt token must be computed, not remembered). The
// returned entries are pinned; the caller must pass them to release once
// the spans are imported. A lookup matching at least one chunk counts as
// a hit, anything else as a miss.
func (pc *prefixCache) lookup(prompt []int, limit int) (spans []*infer.KVSpan, pinned []*prefixEntry, matched int) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	h := fnvOffset
	for (matched+1)*pc.chunk <= limit {
		h = hashExtend(h, prompt[matched*pc.chunk:(matched+1)*pc.chunk])
		e := pc.find(h, prompt[:(matched+1)*pc.chunk])
		if e == nil {
			break
		}
		e.refs++
		pc.touch(e)
		spans = append(spans, e.span)
		pinned = append(pinned, e)
		matched++
	}
	matched *= pc.chunk
	if matched > 0 {
		pc.stats.Hits++
		pc.stats.HitTokens += int64(matched)
	} else {
		pc.stats.Misses++
	}
	return spans, pinned, matched
}

// release unpins entries returned by lookup, then re-runs eviction: a
// pinned entry can carry residency past the budget while inserts skip it,
// and without this pass the overshoot would persist until the next insert
// (which cache-hit-only traffic might never issue).
func (pc *prefixCache) release(pinned []*prefixEntry) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	for _, e := range pinned {
		e.refs--
	}
	pc.evictLocked()
}

// contains reports whether the exact prefix is cached — the cheap
// pre-check a slot runs before paying for an ExportKV copy.
func (pc *prefixCache) contains(prefix []int) bool {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.find(hashPrefix(prefix), prefix) != nil
}

// insert stores span as the cached chunk whose full prefix is prefix
// (len(prefix) == span.End). Re-inserting an existing prefix is a no-op
// (the first snapshot wins; both are byte-identical by determinism). A
// span wider than the whole budget is dropped. Inserting evicts
// least-recently-used unpinned entries until the budget holds.
func (pc *prefixCache) insert(prefix []int, span *infer.KVSpan) {
	bytes := span.Bytes() + int64(len(prefix))*8
	if bytes > pc.budget {
		return
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	h := hashPrefix(prefix)
	if pc.find(h, prefix) != nil {
		return
	}
	e := &prefixEntry{prefix: append([]int(nil), prefix...), span: span, bytes: bytes}
	pc.entries[h] = append(pc.entries[h], e)
	pc.stats.Bytes += bytes
	pc.stats.Entries++
	pc.pushFront(e)
	pc.evictLocked()
}

// evictLocked drops LRU-tail unpinned entries until the budget holds.
// Caller holds mu.
func (pc *prefixCache) evictLocked() {
	for e := pc.tail; e != nil && pc.stats.Bytes > pc.budget; {
		victim := e
		e = e.prev
		if victim.refs > 0 {
			continue
		}
		pc.unlink(victim)
		h := hashPrefix(victim.prefix)
		list := pc.entries[h]
		for i, le := range list {
			if le == victim {
				pc.entries[h] = append(list[:i], list[i+1:]...)
				break
			}
		}
		if len(pc.entries[h]) == 0 {
			delete(pc.entries, h)
		}
		pc.stats.Bytes -= victim.bytes
		pc.stats.Entries--
		pc.stats.Evictions++
	}
}

// snapshot returns the current counters.
func (pc *prefixCache) snapshot() prefixCacheStats {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.stats
}

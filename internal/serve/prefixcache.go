// Prefix/KV cache: the scheduler-level store that eliminates repeated
// prefill work for shared prompt prefixes (system prompts, few-shot
// headers — the steady-state cost of real serving traffic). The cache
// holds refcounted page references (infer.PageSpan) at the page pool's
// row granularity: entry k of a prompt covers token positions [k*rows,
// (k+1)*rows) and is keyed by the *entire* prefix up to its end, so two
// prompts share cached pages exactly as far as their tokens agree. A
// request whose prompt starts with cached pages adopts them by reference
// (a refcount bump per page — no memcpy, no extra resident bytes) instead
// of recomputing the prefill, which collapses both time-to-first-token
// and resident KV on repeat prefixes while remaining bit-identical to a
// cold prefill — prefill is deterministic and KV rows are
// position-addressed, so adopted bytes equal recomputed bytes (pinned by
// the prefix-cache tests at the scheduler level, with ExportKV/ImportKV
// as the memcpy oracle).
//
// Eviction is least-recently-used by a byte budget over the cache's
// logical bytes. Dropping an entry only releases the *cache's* page
// references: pages still referenced by a live slot stay resident until
// that slot resets (the page refcount is the pin — there is no separate
// entry pinning to get wrong), so eviction can never free bytes out from
// under an attached sequence. Keys store the full prefix tokens, not just
// a hash: lookups verify token equality, so a hash collision costs a
// miss, never a wrong prefill.
package serve

import (
	"slices"
	"sync"

	"repro/internal/infer"
	"repro/internal/prefixkey"
)

// prefixEntry is one cached page of a prompt prefix. The entry holds its
// own page references (taken at insert, dropped at eviction).
type prefixEntry struct {
	prefix []int // full token prefix [0, span.End) — collision guard
	span   *infer.PageSpan
	bytes  int64

	// LRU list links (most recent at head).
	prev, next *prefixEntry
}

// prefixCacheStats is the counter snapshot the scheduler folds into Stats.
type prefixCacheStats struct {
	// Hits / Misses count lookups (a lookup matching >= 1 page is a hit).
	Hits, Misses int64
	// HitTokens counts prompt tokens whose prefill was skipped.
	HitTokens int64
	// Evictions counts entries dropped under byte pressure.
	Evictions int64
	// Bytes / Entries describe the current residency. Bytes is logical:
	// what the cached pages would occupy if private. Pages shared with
	// live slots are counted once in the pool's unique bytes.
	Bytes   int64
	Entries int
}

// prefixCache is a byte-budgeted LRU of KV page references keyed by token
// prefix. Safe for concurrent use (slot workers insert mid-prefill while
// the scheduler loop looks up admissions).
type prefixCache struct {
	rows   int   // token granularity of cached spans: the pool's page rows
	budget int64 // byte budget; inserts evict LRU entries past it

	mu         sync.Mutex
	entries    map[uint64][]*prefixEntry // hash of full prefix -> entries (collision list)
	head, tail *prefixEntry              // LRU list, head = most recent
	stats      prefixCacheStats
}

func newPrefixCache(rows int, budget int64) *prefixCache {
	return &prefixCache{rows: rows, budget: budget, entries: make(map[uint64][]*prefixEntry)}
}

// The prefix hash is the shared internal/prefixkey FNV-1a: the router's
// consistent-hash ring keys on the very same function over the very same
// page-aligned spans, which is what lets prefix-affinity routing land a
// request on the replica whose cache already holds its pages. Consecutive
// prefix hashes — prompt[:rows], prompt[:2*rows], ... — are computed
// incrementally with prefixkey.Extend instead of rehashing from the start
// (lookup walks the pages of one prompt this way, keeping admission
// linear in the prompt).

// unlink removes e from the LRU list. Caller holds mu.
func (pc *prefixCache) unlink(e *prefixEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		pc.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		pc.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// pushFront links a currently unlinked entry at the head of the LRU
// list. Caller holds mu.
func (pc *prefixCache) pushFront(e *prefixEntry) {
	e.next = pc.head
	if pc.head != nil {
		pc.head.prev = e
	}
	pc.head = e
	if pc.tail == nil {
		pc.tail = e
	}
}

// touch moves an already linked entry to the head of the LRU list.
// Caller holds mu.
func (pc *prefixCache) touch(e *prefixEntry) {
	if pc.head == e {
		return
	}
	pc.unlink(e)
	pc.pushFront(e)
}

// find returns the entry whose full prefix equals tokens (h =
// prefixkey.Hash(tokens), precomputed by callers that carry it
// incrementally), or nil. Caller holds mu.
func (pc *prefixCache) find(h uint64, tokens []int) *prefixEntry {
	for _, e := range pc.entries[h] {
		if slices.Equal(e.prefix, tokens) { //aptq:ignore noalloc slices.Equal is allocation-free; no stdlib facts are exported for package slices
			return e
		}
	}
	return nil
}

// lookup returns the page spans of the longest run of cached pages that
// prefix the prompt, covering at most limit tokens (the caller passes
// len(prompt)-1 so at least one token is always left to prefill — the
// logits of the last prompt token must be computed, not remembered). Each
// returned span is retained on the caller's behalf — the pages cannot be
// freed even if the entries are evicted mid-attach — and the caller must
// Release every span once adopted. A lookup matching at least one page
// counts as a hit, anything else as a miss.
func (pc *prefixCache) lookup(prompt []int, limit int) (spans []*infer.PageSpan, matched int) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	h := prefixkey.Offset
	for (matched+1)*pc.rows <= limit {
		h = prefixkey.Extend(h, prompt[matched*pc.rows:(matched+1)*pc.rows])
		e := pc.find(h, prompt[:(matched+1)*pc.rows])
		if e == nil {
			break
		}
		e.span.Retain()
		pc.touch(e)
		spans = append(spans, e.span)
		matched++
	}
	matched *= pc.rows
	if matched > 0 {
		pc.stats.Hits++
		pc.stats.HitTokens += int64(matched)
	} else {
		pc.stats.Misses++
	}
	return spans, matched
}

// contains reports whether the exact prefix is cached — the cheap
// pre-check a slot runs before paying for a SharePages refcount walk.
func (pc *prefixCache) contains(prefix []int) bool {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.find(prefixkey.Hash(prefix), prefix) != nil
}

// insert stores span as the cached page whose full prefix is prefix
// (len(prefix) == span.End). The cache takes ownership of the span's page
// references: they are dropped when the entry is evicted (or immediately,
// when the prefix is already cached — the first snapshot wins; both are
// byte-identical by determinism — or the span alone exceeds the whole
// budget). Inserting evicts least-recently-used entries until the budget
// holds; eviction is always safe because any slot still using the pages
// holds its own references.
func (pc *prefixCache) insert(prefix []int, span *infer.PageSpan) {
	bytes := span.Bytes() + int64(len(prefix))*8
	if bytes > pc.budget {
		span.Release()
		return
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	h := prefixkey.Hash(prefix)
	if pc.find(h, prefix) != nil {
		span.Release()
		return
	}
	e := &prefixEntry{prefix: append([]int(nil), prefix...), span: span, bytes: bytes}
	pc.entries[h] = append(pc.entries[h], e)
	pc.stats.Bytes += bytes
	pc.stats.Entries++
	pc.pushFront(e)
	pc.evictLocked()
}

// removeLocked unlinks victim from the LRU list and the hash map and
// releases its page references. Caller holds mu.
func (pc *prefixCache) removeLocked(victim *prefixEntry) {
	pc.unlink(victim)
	h := prefixkey.Hash(victim.prefix)
	list := pc.entries[h]
	for i, le := range list {
		if le == victim {
			pc.entries[h] = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(pc.entries[h]) == 0 {
		delete(pc.entries, h)
	}
	victim.span.Release()
	pc.stats.Bytes -= victim.bytes
	pc.stats.Entries--
	pc.stats.Evictions++
}

// evictLocked drops LRU-tail entries until the budget holds, releasing
// each victim's page references. Caller holds mu.
func (pc *prefixCache) evictLocked() {
	for pc.tail != nil && pc.stats.Bytes > pc.budget {
		pc.removeLocked(pc.tail)
	}
}

// reclaimOne is the page pool's sacrificial-tier hook (registered via
// infer.KVPagePool.SetReclaimer): under budget pressure it evicts the
// least-recently-used entry whose pages nothing else references — evicting
// a pinned entry would free no memory — and reports whether it freed one.
// A false return tells the pool the cache has nothing left to give, so the
// lease fails and the scheduler escalates to preemption. Called without
// the pool lock held (release routes back into the pool), and safe against
// concurrent slot inserts: both take pc.mu before any pool-lock work, the
// repo-wide lock order.
func (pc *prefixCache) reclaimOne() bool {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	for e := pc.tail; e != nil; e = e.prev {
		if e.span.SoleHolder() {
			pc.removeLocked(e)
			return true
		}
	}
	return false
}

// reclaimableBytes reports the page bytes admission may count as
// evictable headroom: entries whose pages nothing else references.
// Pinned entries — pages adopted by a live slot — would free nothing if
// evicted, so counting them overstates headroom; under sustained
// pressure that phantom headroom re-admits every preempted request into
// a still-full pool and the scheduler thrashes preemption instead of
// deferring. Sole-holdership reads the pages' atomic refcounts, so no
// pool lock is needed (lock order: pc.mu before any pool work).
func (pc *prefixCache) reclaimableBytes() int64 {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	var total int64
	for e := pc.head; e != nil; e = e.next {
		if e.span.SoleHolder() {
			total += e.span.Bytes()
		}
	}
	return total
}

// purge drops every entry and releases its pages — the scheduler Close
// path, after which the shared pool must report zero pages in use (the
// refcount-leak check the tests pin).
func (pc *prefixCache) purge() {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	for e := pc.head; e != nil; e = e.next {
		e.span.Release()
		pc.stats.Bytes -= e.bytes
		pc.stats.Entries--
	}
	pc.head, pc.tail = nil, nil
	pc.entries = make(map[uint64][]*prefixEntry)
}

// snapshot returns the current counters.
func (pc *prefixCache) snapshot() prefixCacheStats {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.stats
}

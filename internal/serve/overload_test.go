package serve_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/serve"
)

// TestQueueFullRejectsAndPriorityAdmission is the overload-admission
// contract: with MaxQueue bounding the queue, an overflowing Submit is
// rejected with ErrQueueFull (the HTTP layer's 429), and when a slot
// frees, the highest-priority queued request is admitted first — without
// changing either request's output.
func TestQueueFullRejectsAndPriorityAdmission(t *testing.T) {
	m := bigModel()
	opts := serve.DefaultOptions()
	opts.Slots = 1
	opts.MaxQueue = 2
	s := serve.New(m, opts)
	defer s.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tHold, err := s.Submit(serve.Request{ID: "hold", Prompt: []int{1}, MaxTokens: 2000, Seed: 1, Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	// First token: the holder occupies the slot and the queue is empty.
	if _, ok := <-tHold.Tokens(); !ok {
		t.Fatal("holder emitted no token")
	}

	low := serve.Request{ID: "low", Prompt: []int{2, 3}, MaxTokens: 300, Seed: 2, Priority: 0}
	high := serve.Request{ID: "high", Prompt: []int{4, 5}, MaxTokens: 300, Seed: 3, Priority: 5}
	tLow, err := s.Submit(low)
	if err != nil {
		t.Fatal(err)
	}
	tHigh, err := s.Submit(high)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(serve.Request{ID: "overflow", Prompt: []int{6}, MaxTokens: 4, Seed: 4}); !errors.Is(err, serve.ErrQueueFull) {
		t.Fatalf("overflowing Submit = %v, want ErrQueueFull", err)
	}
	if st := s.Stats(); st.Rejected != 1 || st.MaxQueue != 2 {
		t.Fatalf("stats rejected=%d maxqueue=%d, want 1 and 2", st.Rejected, st.MaxQueue)
	}

	cancel() // free the slot; admission must pick "high" over the older "low"
	if res := tHold.Wait(); res.FinishReason != serve.FinishCancelled {
		t.Fatalf("holder finished with %s, want cancelled", res.FinishReason)
	}
	// Deterministic admission-order check: with one slot, "low" only starts
	// decoding after the slot frees again, so by the time its first token
	// streams, "high" must already have finished — its token stream closed.
	// (The loop goroutine closes high's stream before emitting low's first
	// token, so the close is visible here; no wall-clock involved.)
	if _, ok := <-tLow.Tokens(); !ok {
		t.Fatal("low-priority stream closed before its first token")
	}
	for highClosed := false; !highClosed; {
		select {
		case _, open := <-tHigh.Tokens():
			highClosed = !open
		default:
			t.Fatal("low-priority request started while the high-priority one was still decoding")
		}
	}
	resHigh := tHigh.Wait()
	resLow := tLow.Wait()
	if resHigh.FinishReason != serve.FinishLength || resLow.FinishReason != serve.FinishLength {
		t.Fatalf("finishes: high=%s low=%s, want length for both", resHigh.FinishReason, resLow.FinishReason)
	}
	// Priority reorders admission only; outputs stay bit-identical.
	assertResultsEqual(t, "high", resHigh, serve.Sequential(m, high, serve.DefaultOptions()))
	assertResultsEqual(t, "low", resLow, serve.Sequential(m, low, serve.DefaultOptions()))
}

// TestSchedulerDrain: Drain blocks until every queued and in-flight
// request has resolved, rejects later Submits with ErrDraining, is
// idempotent, and leaves Close working as before.
func TestSchedulerDrain(t *testing.T) {
	m := testModel()
	opts := serve.DefaultOptions()
	opts.Slots = 2
	s := serve.New(m, opts)
	reqs := mixedRequests(m.Cfg.Vocab, 6)
	tickets := make([]*serve.Ticket, len(reqs))
	for i, r := range reqs {
		ticket, err := s.Submit(r)
		if err != nil {
			t.Fatal(err)
		}
		tickets[i] = ticket
	}
	s.Drain()
	for i, ticket := range tickets {
		select {
		case res := <-ticket.Done():
			if res.FinishReason == "" {
				t.Fatalf("ticket %d resolved without a finish reason", i)
			}
		default:
			t.Fatalf("ticket %d unresolved after Drain returned", i)
		}
	}
	if _, err := s.Submit(reqs[0]); !errors.Is(err, serve.ErrDraining) {
		t.Fatalf("Submit after Drain = %v, want ErrDraining", err)
	}
	st := s.Stats()
	if !st.Draining || st.Active != 0 || st.Queued != 0 {
		t.Fatalf("post-drain stats: draining=%v active=%d queued=%d", st.Draining, st.Active, st.Queued)
	}
	if st.Completed != int64(len(reqs)) {
		t.Fatalf("drained scheduler completed %d of %d", st.Completed, len(reqs))
	}
	s.Drain() // idempotent, returns immediately on an idle scheduler
	s.Close()
	if _, err := s.Submit(reqs[0]); !errors.Is(err, serve.ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
}

// TestDrainIdleReturnsImmediately: draining a scheduler with no work is a
// no-op that must not deadlock against the idle decode loop.
func TestDrainIdleReturnsImmediately(t *testing.T) {
	s := serve.New(testModel(), serve.DefaultOptions())
	defer s.Close()
	s.Drain()
}

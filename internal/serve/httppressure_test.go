// HTTP surface of the memory-pressure ladder: shed responses carry a
// Retry-After hint, over-budget demand maps to 429, and the stats
// endpoint exposes the pressure counters.
package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/infer"
	"repro/internal/model"
)

// TestOverBudgetRequestGets429RetryAfter: a request whose worst-case KV
// demand exceeds the whole budget is shed deterministically with 429 and
// a Retry-After hint (the header the router relays fleet-wide).
func TestOverBudgetRequestGets429RetryAfter(t *testing.T) {
	m := model.New(model.Tiny(), 1)
	opts := DefaultOptions()
	opts.KVBudgetBytes = 2 * 2 * 16 * 16 * 8 // 2 pages: one per block
	srv := NewServer(m, opts)
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/generate", "application/json",
		strings.NewReader(`{"tokens":[1,2,3,4],"max_tokens":20,"seed":1}`))
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget request answered %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("429 Retry-After = %q, want \"1\"", got)
	}

	// A request that fits the budget still serves, and the stats surface
	// carries the pressure keys.
	ok, err := http.Post(ts.URL+"/v1/generate", "application/json",
		strings.NewReader(`{"tokens":[1,2],"max_tokens":8,"seed":2}`))
	if err != nil {
		t.Fatalf("in-budget generate: %v", err)
	}
	defer ok.Body.Close()
	if ok.StatusCode != http.StatusOK {
		t.Fatalf("in-budget request answered %d, want 200", ok.StatusCode)
	}
	st := fetchStats(t, ts.URL)
	if st["kv_budget_bytes"] <= 0 {
		t.Fatalf("kv_budget_bytes = %v, want > 0", st["kv_budget_bytes"])
	}
	if st["kv_high_water_bytes"] <= 0 || st["kv_high_water_bytes"] > st["kv_budget_bytes"] {
		t.Fatalf("kv_high_water_bytes = %v outside (0, budget=%v]", st["kv_high_water_bytes"], st["kv_budget_bytes"])
	}
	for _, key := range []string{"preemptions", "admission_deferred", "panics"} {
		if _, present := st[key]; !present {
			t.Fatalf("stats missing %q", key)
		}
	}
}

// TestDrainingCarriesRetryAfter: both the health probe and a shed
// generate carry the back-off hint while draining.
func TestDrainingCarriesRetryAfter(t *testing.T) {
	m := model.New(model.Tiny(), 1)
	srv := NewServer(m, DefaultOptions())
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	srv.SetDraining(true)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("draining healthz: code=%d Retry-After=%q, want 503 with \"1\"", resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	srv.Scheduler().Drain()
	gen, err := http.Post(ts.URL+"/v1/generate", "application/json",
		strings.NewReader(`{"tokens":[1],"max_tokens":2,"seed":1}`))
	if err != nil {
		t.Fatalf("generate while draining: %v", err)
	}
	gen.Body.Close()
	if gen.StatusCode != http.StatusServiceUnavailable || gen.Header.Get("Retry-After") != "1" {
		t.Fatalf("draining generate: code=%d Retry-After=%q, want 503 with \"1\"", gen.StatusCode, gen.Header.Get("Retry-After"))
	}
}

func fetchStats(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	defer resp.Body.Close()
	var st map[string]float64
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	return st
}

// TestReclaimOneEvictsOnlySoleHeldLRU pins the sacrificial tier's
// selection rule: reclaimOne frees the least-recently-used entry whose
// pages nothing else references, skips entries pinned by live adoptions,
// and reports false when everything left is pinned.
func TestReclaimOneEvictsOnlySoleHeldLRU(t *testing.T) {
	m := model.New(model.Tiny(), 1)
	pool := infer.NewPagePool(m.Cfg.Dim, m.Cfg.MaxSeq)
	pc := newPrefixCache(pool.Rows(), 1<<20)

	makeEntry := func(first int) (*infer.Session, []int) {
		prompt := make([]int, pool.Rows())
		for i := range prompt {
			prompt[i] = (first + i) % m.Cfg.Vocab
		}
		sess := infer.NewSessionPooled(m, pool, 0)
		if _, err := sess.Prefill(prompt); err != nil {
			t.Fatalf("prefill: %v", err)
		}
		pc.insert(prompt, sess.SharePages(0, pool.Rows()))
		return sess, prompt
	}

	// Entry A (older, will be sole-held once its session resets), entry B
	// (newer, stays pinned by its live session).
	sessA, _ := makeEntry(1)
	_, promptB := makeEntry(9)
	sessA.Reset() // A's pages now referenced only by the cache

	if !pc.reclaimOne() {
		t.Fatal("reclaimOne found nothing with a sole-held entry present")
	}
	snap := pc.snapshot()
	if snap.Entries != 1 || snap.Evictions != 1 {
		t.Fatalf("after reclaim: %d entries, %d evictions, want 1 and 1", snap.Entries, snap.Evictions)
	}
	if !pc.contains(promptB) {
		t.Fatal("reclaimOne evicted the pinned entry instead of the sole-held one")
	}
	// Everything remaining is pinned: the reclaimer must report dry so the
	// pool escalates to preemption instead of spinning.
	if pc.reclaimOne() {
		t.Fatal("reclaimOne claimed to free a pinned entry")
	}
}

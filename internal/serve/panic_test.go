// Panic-isolation tests: a panic anywhere in per-request work — a slot's
// tick or an HTTP handler — must be confined to that one request: it
// finishes with FinishError (or a 500), the panics counter moves, and
// every other request, the scheduler loop, and the listener keep working.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/model"
)

// TestSlotPanicIsolatedToRequest injects a panic into one request's tick
// work and asserts the blast radius: that request errors, its neighbors
// are bit-identical to an undisturbed run, the panics counter reads 1,
// and no page leaks survive Close.
func TestSlotPanicIsolatedToRequest(t *testing.T) {
	m := model.New(model.Tiny(), 1)
	opts := DefaultOptions()
	opts.Slots = 3
	reqs := make([]Request, 6)
	for i := range reqs {
		reqs[i] = Request{
			ID:          fmt.Sprintf("r-%d", i),
			Prompt:      []int{1 + i%(m.Cfg.Vocab-1), 2, 3},
			MaxTokens:   8,
			Temperature: 0.7,
			Seed:        int64(10 + i),
		}
	}
	want := make([]Result, len(reqs))
	for i, r := range reqs {
		want[i] = Sequential(m, r, opts)
	}

	s := New(m, opts)
	defer s.Close()
	s.panicHook = func(r Request) bool { return r.ID == "r-3" }
	got, err := s.GenerateAll(reqs)
	if err != nil {
		t.Fatalf("GenerateAll: %v", err)
	}
	for i, r := range reqs {
		if r.ID == "r-3" {
			if got[i].FinishReason != FinishError || got[i].Err == nil {
				t.Fatalf("panicked request finished (%s, err=%v), want (%s, non-nil)", got[i].FinishReason, got[i].Err, FinishError)
			}
			if !strings.Contains(got[i].Err.Error(), "panicked") {
				t.Fatalf("panicked request error %q does not say so", got[i].Err)
			}
			continue
		}
		assertPanicNeighbors(t, r.ID, got[i], want[i])
	}
	if st := s.Stats(); st.Panics != 1 {
		t.Fatalf("Panics = %d, want 1", st.Panics)
	}

	// The scheduler still serves after the panic.
	s.panicHook = nil
	ticket, err := s.Submit(reqs[0])
	if err != nil {
		t.Fatalf("Submit after panic: %v", err)
	}
	res := ticket.Wait()
	assertPanicNeighbors(t, "post-panic", res, want[0])

	s.Drain()
	s.Close()
	if ps := s.PoolStats(); ps.PagesInUse != 0 {
		t.Fatalf("%d pages in use after a panicked request and Close, want 0", ps.PagesInUse)
	}
}

func assertPanicNeighbors(t *testing.T, label string, got, want Result) {
	t.Helper()
	if got.FinishReason != want.FinishReason || len(got.Tokens) != len(want.Tokens) {
		t.Fatalf("%s: (%s, %d tokens), want (%s, %d)", label, got.FinishReason, len(got.Tokens), want.FinishReason, len(want.Tokens))
	}
	for j := range want.Tokens {
		if got.Tokens[j] != want.Tokens[j] {
			t.Fatalf("%s: token %d = %d, want %d", label, j, got.Tokens[j], want.Tokens[j])
		}
	}
}

// TestHandlerPanicRecovered: the HTTP middleware converts a handler panic
// into a 500 for that request, counts it, and keeps the server answering.
func TestHandlerPanicRecovered(t *testing.T) {
	m := model.New(model.Tiny(), 1)
	srv := NewServer(m, DefaultOptions())
	defer srv.Close()

	boom := srv.recovered(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	}))
	rec := httptest.NewRecorder()
	boom.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/generate", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler answered %d, want 500", rec.Code)
	}
	if body := rec.Body.String(); !strings.Contains(body, "kaboom") {
		t.Fatalf("500 body %q does not carry the panic value", body)
	}
	if got := srv.panics.Load(); got != 1 {
		t.Fatalf("handler panics counter = %d, want 1", got)
	}

	// The real mux still serves, and /v1/stats folds the handler panic into
	// the panics key.
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("stats after panic: %v", err)
	}
	defer resp.Body.Close()
	var st map[string]float64
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if st["panics"] != 1 {
		t.Fatalf("stats panics = %v, want 1", st["panics"])
	}
}

package serve

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/infer"
	"repro/internal/model"
	"repro/internal/parallel"
	"repro/internal/prefixkey"
)

// cacheTestPool builds a pool with 4-row pages so the cache unit tests
// stay small (the scheduler uses infer.PageRows; the cache logic is
// granularity-agnostic).
func cacheTestPool(m *model.Model) *infer.KVPagePool {
	return infer.NewPagePool(m.Cfg.Dim, 4)
}

// cacheTestSpan builds a real page span for prefix[lo:hi] by prefilling a
// throwaway session over pool. The session is reset afterwards: the span
// holds its own page references, so the pages survive the recycle.
func cacheTestSpan(t *testing.T, pool *infer.KVPagePool, m *model.Model, prefix []int, lo, hi int) *infer.PageSpan {
	t.Helper()
	sess := infer.NewSessionPooled(m.View(), pool, 0)
	if _, err := sess.Prefill(prefix[:hi]); err != nil {
		t.Fatal(err)
	}
	ps := sess.SharePages(lo, hi)
	sess.Reset()
	return ps
}

// releaseAll drops the caller-side references a lookup returned.
func releaseAll(spans []*infer.PageSpan) {
	for _, sp := range spans {
		sp.Release()
	}
}

// TestPrefixCacheLookupGranularity: lookups match whole cached pages in
// prefix order, stop at the first uncached page, honor the limit (at
// least one token is always left to prefill), and verify tokens — a
// prompt differing inside a page misses even when hashes were primed
// with a sibling.
func TestPrefixCacheLookupGranularity(t *testing.T) {
	m := model.New(model.Tiny(), 1)
	pool := cacheTestPool(m)
	prompt := []int{5, 6, 7, 8, 9, 10, 11, 12, 13}
	pc := newPrefixCache(4, 1<<20)
	pc.insert(prompt[:4], cacheTestSpan(t, pool, m, prompt, 0, 4))
	pc.insert(prompt[:8], cacheTestSpan(t, pool, m, prompt, 4, 8))

	spans, matched := pc.lookup(prompt, len(prompt)-1)
	if matched != 8 || len(spans) != 2 {
		t.Fatalf("matched %d tokens over %d spans, want 8 over 2", matched, len(spans))
	}
	if spans[0].Start != 0 || spans[0].End != 4 || spans[1].Start != 4 || spans[1].End != 8 {
		t.Fatalf("span ranges [%d,%d) [%d,%d)", spans[0].Start, spans[0].End, spans[1].Start, spans[1].End)
	}
	releaseAll(spans)

	// A prompt of exactly 8 tokens may adopt at most 7: the final token's
	// logits must be computed, so only the first page matches.
	spans, matched = pc.lookup(prompt[:8], 7)
	if matched != 4 {
		t.Fatalf("limit 7 matched %d tokens, want 4", matched)
	}
	releaseAll(spans)

	// Same first page, different second page: only the shared part hits.
	diverged := append(append([]int(nil), prompt[:4]...), 30, 31, 30, 31, 30)
	spans, matched = pc.lookup(diverged, len(diverged)-1)
	if matched != 4 {
		t.Fatalf("diverged prompt matched %d tokens, want 4", matched)
	}
	releaseAll(spans)

	// A prompt shorter than one page never matches and counts as a miss.
	spans, matched = pc.lookup(prompt[:3], 2)
	if matched != 0 {
		t.Fatalf("short prompt matched %d tokens", matched)
	}
	releaseAll(spans)

	st := pc.snapshot()
	if st.Hits != 3 || st.Misses != 1 || st.HitTokens != 16 {
		t.Fatalf("stats hits=%d misses=%d hitTokens=%d, want 3/1/16", st.Hits, st.Misses, st.HitTokens)
	}
	if st.Entries != 2 || st.Bytes <= 0 {
		t.Fatalf("stats entries=%d bytes=%d", st.Entries, st.Bytes)
	}

	// Cache entries are the only remaining holders; purging must return
	// every page to the pool (the refcount-leak invariant).
	pc.purge()
	if ps := pool.Stats(); ps.PagesInUse != 0 {
		t.Fatalf("%d pages still in use after purge", ps.PagesInUse)
	}
}

// TestPrefixCacheEvictionLRUAndRefcounts: inserts past the byte budget
// evict least-recently-used entries; eviction only drops the cache's page
// references, so spans handed to an in-flight attach stay valid — the
// page refcount is the pin — and the pages free only when the last holder
// releases.
func TestPrefixCacheEvictionLRUAndRefcounts(t *testing.T) {
	m := model.New(model.Tiny(), 1)
	pool := cacheTestPool(m)
	mkPrompt := func(seed int) []int {
		p := make([]int, 8)
		for i := range p {
			p[i] = 1 + (seed+i)%(m.Cfg.Vocab-1)
		}
		return p
	}
	one := cacheTestSpan(t, pool, m, mkPrompt(0), 0, 4)
	perEntry := one.Bytes() + 4*8
	one.Release()
	pc := newPrefixCache(4, 2*perEntry) // room for two entries

	a, b, c := mkPrompt(0), mkPrompt(5), mkPrompt(11)
	pc.insert(a[:4], cacheTestSpan(t, pool, m, a, 0, 4))
	pc.insert(b[:4], cacheTestSpan(t, pool, m, b, 0, 4))
	// Touch a so b is the LRU tail, then overflow with c.
	spans, matched := pc.lookup(a, len(a)-1)
	if matched != 4 {
		t.Fatalf("warm lookup matched %d", matched)
	}
	releaseAll(spans)
	pc.insert(c[:4], cacheTestSpan(t, pool, m, c, 0, 4))

	st := pc.snapshot()
	if st.Entries != 2 || st.Evictions != 1 || st.Bytes > 2*perEntry {
		t.Fatalf("after overflow: entries=%d evictions=%d bytes=%d budget=%d",
			st.Entries, st.Evictions, st.Bytes, 2*perEntry)
	}
	if spans, mB := pc.lookup(b, len(b)-1); mB != 0 {
		t.Fatal("LRU entry b survived eviction")
	} else {
		releaseAll(spans)
	}
	for _, keep := range [][]int{a, c} {
		if spans, mk := pc.lookup(keep, len(keep)-1); mk != 4 {
			t.Fatalf("recently used entry evicted (matched %d)", mk)
		} else {
			releaseAll(spans)
		}
	}

	// Hold a's span as an in-flight attach would, then evict a under
	// pressure: the entry may go, but the held span's pages must survive
	// until the holder releases them.
	heldSpans, mA := pc.lookup(a, len(a)-1)
	if mA != 4 {
		t.Fatal("a not cached before pressure")
	}
	d, e := mkPrompt(17), mkPrompt(23)
	pc.insert(d[:4], cacheTestSpan(t, pool, m, d, 0, 4))
	pc.insert(e[:4], cacheTestSpan(t, pool, m, e, 0, 4))
	if st := pc.snapshot(); st.Bytes > 2*perEntry {
		t.Fatalf("pressure exceeded the byte budget: bytes=%d budget=%d", st.Bytes, 2*perEntry)
	}
	// The held pages are alive regardless of what eviction did to the
	// entry: in-use pages must cover at least the held span.
	if got := pool.Stats().PagesInUse; got < int64(heldSpans[0].Pages()) {
		t.Fatalf("held span's pages freed under eviction pressure (in use: %d)", got)
	}
	releaseAll(heldSpans)

	// After purging the cache nothing holds pages: the pool must drain.
	pc.purge()
	if ps := pool.Stats(); ps.PagesInUse != 0 {
		t.Fatalf("%d pages leaked after purge", ps.PagesInUse)
	}

	// A span wider than the whole budget is never admitted, and insert
	// releases it — no leak.
	tiny := newPrefixCache(4, 1)
	tiny.insert(a[:4], cacheTestSpan(t, pool, m, a, 0, 4))
	if st := tiny.snapshot(); st.Entries != 0 {
		t.Fatalf("over-budget span admitted (%d entries)", st.Entries)
	}
	if ps := pool.Stats(); ps.PagesInUse != 0 {
		t.Fatalf("over-budget insert leaked %d pages", ps.PagesInUse)
	}
}

// prefixRequests builds a workload where every request shares one of two
// page-sized (infer.PageRows-token) system-prompt prefixes, followed by a
// per-request tail. Prompt plus generation stays within Tiny's MaxSeq.
func prefixRequests(vocab, n int) []Request {
	sysA := make([]int, infer.PageRows)
	sysB := make([]int, infer.PageRows)
	for i := range sysA {
		sysA[i] = 1 + i%7
		sysB[i] = 9 + i%4
	}
	rng := rand.New(rand.NewSource(23))
	reqs := make([]Request, n)
	for i := range reqs {
		sys := sysA
		if i%3 == 2 {
			sys = sysB
		}
		prompt := append([]int(nil), sys...)
		for j := 0; j < 1+rng.Intn(4); j++ {
			prompt = append(prompt, rng.Intn(vocab))
		}
		temp := 0.9
		if i%4 == 0 {
			temp = 0
		}
		reqs[i] = Request{
			ID:          fmt.Sprintf("px-%d", i),
			Prompt:      prompt,
			MaxTokens:   1 + (i*3)%7,
			Temperature: temp,
			Seed:        int64(300 + i),
		}
	}
	return reqs
}

func assertSameResult(t *testing.T, label string, got, want Result) {
	t.Helper()
	if got.ID != want.ID || got.FinishReason != want.FinishReason || len(got.Tokens) != len(want.Tokens) {
		t.Fatalf("%s: got (%s,%s,%d tokens), want (%s,%s,%d tokens)",
			label, got.ID, got.FinishReason, len(got.Tokens), want.ID, want.FinishReason, len(want.Tokens))
	}
	for j := range want.Tokens {
		if got.Tokens[j] != want.Tokens[j] {
			t.Fatalf("%s: token %d = %d, want %d", label, j, got.Tokens[j], want.Tokens[j])
		}
	}
}

// TestSchedulerPrefixCacheBitIdentical is the end-to-end hit/miss
// bit-identity contract: with the prefix cache on, every request —
// including the second pass, where every shared prefix hits — matches the
// cache-less Sequential reference at every worker count, and the second
// pass produces byte-identical results to the first.
func TestSchedulerPrefixCacheBitIdentical(t *testing.T) {
	m := model.New(model.Tiny(), 1)
	reqs := prefixRequests(m.Cfg.Vocab, 10)
	seqOpts := DefaultOptions()
	want := make([]Result, len(reqs))
	for i, r := range reqs {
		want[i] = Sequential(m, r, seqOpts)
	}
	for _, workers := range []int{1, 4} {
		parallel.SetWorkers(workers)
		opts := DefaultOptions()
		opts.Slots = 3
		opts.PrefillChunk = 4
		opts.PrefixCacheBytes = 1 << 20
		s := New(m, opts)
		first, err := s.GenerateAll(reqs)
		if err != nil {
			s.Close()
			parallel.SetWorkers(0)
			t.Fatal(err)
		}
		second, err := s.GenerateAll(reqs)
		st := s.Stats()
		s.Close()
		parallel.SetWorkers(0)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			assertSameResult(t, fmt.Sprintf("workers=%d first pass req %d", workers, i), first[i], want[i])
			assertSameResult(t, fmt.Sprintf("workers=%d second pass req %d", workers, i), second[i], want[i])
		}
		if st.PrefixCacheHits == 0 || st.PrefixCacheHitTokens == 0 {
			t.Fatalf("workers=%d: no cache hits recorded (%+v)", workers, st)
		}
		if st.PrefixCacheBytes <= 0 || st.PrefixCacheEntries <= 0 {
			t.Fatalf("workers=%d: cache reports no residency (%+v)", workers, st)
		}
		if hr := st.PrefixCacheHitRate(); hr <= 0 || hr > 1 {
			t.Fatalf("workers=%d: hit rate %v", workers, hr)
		}
	}
}

// TestSchedulerPrefixCacheKVQuant: the identity holds with a quantized KV
// cache too (pages carry the quantized rows).
func TestSchedulerPrefixCacheKVQuant(t *testing.T) {
	m := model.New(model.Tiny(), 1)
	reqs := prefixRequests(m.Cfg.Vocab, 6)
	opts := DefaultOptions()
	opts.Slots = 2
	opts.PrefillChunk = 4
	opts.KVQuantBits = 4
	opts.PrefixCacheBytes = 1 << 20
	s := New(m, opts)
	defer s.Close()
	if _, err := s.GenerateAll(reqs); err != nil { // prime the cache
		t.Fatal(err)
	}
	got, err := s.GenerateAll(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range reqs {
		assertSameResult(t, fmt.Sprintf("req %d", i), got[i], Sequential(m, r, opts))
	}
	if st := s.Stats(); st.PrefixCacheHits == 0 {
		t.Fatalf("no hits on the warmed cache (%+v)", st)
	}
}

// TestSchedulerPrefixCacheEvictionPressure: a budget that holds only a
// couple of pages keeps evicting mid-traffic; results stay correct and
// the residency never exceeds the budget (eviction is always safe — live
// slots hold their own page references).
func TestSchedulerPrefixCacheEvictionPressure(t *testing.T) {
	m := model.New(model.Tiny(), 1)
	reqs := prefixRequests(m.Cfg.Vocab, 12)
	opts := DefaultOptions()
	opts.Slots = 3
	opts.PrefillChunk = 4
	// One page costs blocks * 2 * PageRows * dim * 8 bytes plus key
	// overhead; budget exactly one entry, so the workload's two distinct
	// prefix pages keep evicting each other.
	pageBytes := int64(len(m.Blocks) * 2 * infer.PageRows * m.Cfg.Dim * 8)
	opts.PrefixCacheBytes = pageBytes + 512
	s := New(m, opts)
	defer s.Close()
	want := make([]Result, len(reqs))
	for i, r := range reqs {
		want[i] = Sequential(m, r, DefaultOptions())
	}
	for pass := 0; pass < 3; pass++ {
		got, err := s.GenerateAll(reqs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			assertSameResult(t, fmt.Sprintf("pass %d req %d", pass, i), got[i], want[i])
		}
	}
	st := s.Stats()
	if st.PrefixCacheEvictions == 0 {
		t.Fatalf("no evictions under a %d-byte budget (%+v)", opts.PrefixCacheBytes, st)
	}
	if st.PrefixCacheBytes > opts.PrefixCacheBytes {
		t.Fatalf("resident %d bytes exceeds budget %d", st.PrefixCacheBytes, opts.PrefixCacheBytes)
	}
}

// TestSchedulerKVAccountingAndPageRelease: unique KV bytes count shared
// pages once (logical > unique under shared-prefix traffic), and after
// Drain + Close every page reference — slots and prefix-cache entries —
// returns to the pool: the refcount-leak invariant.
func TestSchedulerKVAccountingAndPageRelease(t *testing.T) {
	m := model.New(model.Tiny(), 1)
	reqs := prefixRequests(m.Cfg.Vocab, 12)
	opts := DefaultOptions()
	opts.Slots = 4
	opts.PrefixCacheBytes = 1 << 20
	s := New(m, opts)
	if _, err := s.GenerateAll(reqs); err != nil { // prime the cache
		s.Close()
		t.Fatal(err)
	}
	if _, err := s.GenerateAll(reqs); err != nil { // hit it
		s.Close()
		t.Fatal(err)
	}
	st := s.Stats()
	if st.KVUniqueBytes <= 0 || st.KVPages <= 0 {
		t.Fatalf("no unique KV residency reported: %+v", st)
	}
	if st.KVLogicalBytes <= st.KVUniqueBytes {
		t.Fatalf("shared-prefix traffic shows no sharing: logical %d <= unique %d",
			st.KVLogicalBytes, st.KVUniqueBytes)
	}
	if r := st.KVSharingRatio(); r <= 1 {
		t.Fatalf("sharing ratio %v, want > 1", r)
	}
	if st.KVUniqueBytes != st.KVPages*s.pool.PageBytes() {
		t.Fatalf("unique bytes %d != %d pages x %d page bytes",
			st.KVUniqueBytes, st.KVPages, s.pool.PageBytes())
	}
	s.Drain()
	s.Close()
	if ps := s.pool.Stats(); ps.PagesInUse != 0 {
		t.Fatalf("%d pages still referenced after Close — refcount leak", ps.PagesInUse)
	}
}

// TestSchedulerPrefixCacheEvictionRace: concurrent submitters against a
// one-entry cache budget force attach, decode and eviction to race on the
// page pool; under -race this is the COW/refcount synchronization stress,
// and every result must still match its sequential reference. The pool
// must drain after Close.
func TestSchedulerPrefixCacheEvictionRace(t *testing.T) {
	m := model.New(model.Tiny(), 1)
	reqs := prefixRequests(m.Cfg.Vocab, 24)
	want := make([]Result, len(reqs))
	var refWG sync.WaitGroup
	for i, r := range reqs {
		refWG.Add(1)
		go func(i int, r Request) {
			defer refWG.Done()
			want[i] = Sequential(m, r, DefaultOptions())
		}(i, r)
	}
	refWG.Wait()
	opts := DefaultOptions()
	opts.Slots = 4
	opts.PrefillChunk = 4
	// Room for one entry: the two shared prefixes keep evicting each other
	// while slots still hold the evicted entries' pages.
	opts.PrefixCacheBytes = int64(len(m.Blocks)*2*infer.PageRows*m.Cfg.Dim*8) + 512
	s := New(m, opts)
	results := make([]Result, len(reqs))
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(reqs); i += 6 {
				ticket, err := s.Submit(reqs[i])
				if err != nil {
					t.Error(err)
					return
				}
				results[i] = ticket.Wait()
			}
		}(g)
	}
	wg.Wait()
	st := s.Stats()
	s.Close()
	for i := range want {
		assertSameResult(t, fmt.Sprintf("req %d", i), results[i], want[i])
	}
	if st.PrefixCacheEvictions == 0 {
		t.Fatalf("no evictions under the one-entry budget (%+v)", st)
	}
	if ps := s.pool.Stats(); ps.PagesInUse != 0 {
		t.Fatalf("%d pages leaked through the eviction race", ps.PagesInUse)
	}
}

// TestSchedulerPrefixCacheConcurrentAdmissions hammers a cached scheduler
// from concurrent submitters (mid-flight admissions, shared prefixes,
// inserts racing lookups); under -race this exercises the attach/detach
// synchronization, and every result must still match its sequential
// reference.
func TestSchedulerPrefixCacheConcurrentAdmissions(t *testing.T) {
	m := model.New(model.Tiny(), 1)
	reqs := prefixRequests(m.Cfg.Vocab, 16)
	want := make([]Result, len(reqs))
	var refWG sync.WaitGroup
	for i, r := range reqs {
		refWG.Add(1)
		go func(i int, r Request) {
			defer refWG.Done()
			want[i] = Sequential(m, r, DefaultOptions())
		}(i, r)
	}
	refWG.Wait()
	opts := DefaultOptions()
	opts.Slots = 3
	opts.PrefillChunk = 4
	opts.PrefixCacheBytes = 1 << 18
	s := New(m, opts)
	defer s.Close()
	results := make([]Result, len(reqs))
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(reqs); i += 4 {
				ticket, err := s.Submit(reqs[i])
				if err != nil {
					t.Error(err)
					return
				}
				results[i] = ticket.Wait()
			}
		}(g)
	}
	wg.Wait()
	for i := range want {
		assertSameResult(t, fmt.Sprintf("req %d", i), results[i], want[i])
	}
}

// TestPrefixCacheHashCollisionIsMiss: a forged entry occupying the probe
// prefix's hash bucket with *different* tokens must never match — the
// token-equality guard in find turns hash collisions into misses, never
// wrong prefills. The forged entry carries a nil span, so a guard
// regression fails loudly (nil-span Retain) instead of silently serving
// the wrong KV pages.
func TestPrefixCacheHashCollisionIsMiss(t *testing.T) {
	pc := newPrefixCache(4, 1<<20)
	probe := []int{1, 2, 3, 4, 5}
	imposter := []int{9, 9, 9, 9}
	h := prefixkey.Hash(probe[:4])
	pc.entries[h] = append(pc.entries[h], &prefixEntry{prefix: imposter})

	spans, matched := pc.lookup(probe, len(probe)-1)
	if matched != 0 || len(spans) != 0 {
		t.Fatalf("collision matched %d tokens over %d spans, want 0", matched, len(spans))
	}
	if pc.contains(probe[:4]) {
		t.Fatal("contains matched a colliding entry with different tokens")
	}
	if st := pc.snapshot(); st.Hits != 0 || st.Misses != 1 {
		t.Fatalf("collision counted as a hit: %+v", st)
	}
}

package serve

import (
	"context"
	"testing"
	"time"

	"repro/internal/infer"
	"repro/internal/model"
)

// TestAdmissionChunkBoundsPerTickWork is the white-box half of the
// chunked-admission contract: a slot prefilling a long prompt consumes at
// most PrefillChunk tokens per advance call, so a single tick — the unit
// co-scheduled slots wait on — never carries more than one chunk of
// prompt work, and the prompt takes exactly ceil(len/chunk) ticks to
// admit.
func TestAdmissionChunkBoundsPerTickWork(t *testing.T) {
	m := model.New(model.Tiny(), 1)
	const chunk = 4
	long := make([]int, 19)
	for i := range long {
		long[i] = 1 + i%(m.Cfg.Vocab-1)
	}
	sl := newSlot(infer.NewSession(m.View()), m.Cfg.MaxSeq, chunk, nil)
	sl.start(Request{ID: "long", Prompt: long, MaxTokens: 2, Seed: 1}, nil, time.Now(), nil)
	ticks := 0
	for !sl.prefilled {
		before := sl.sess.Pos()
		sl.advance(-1)
		if sl.done {
			t.Fatalf("prefill finished with %v after %d ticks", sl.err, ticks)
		}
		if got := sl.sess.Pos() - before; got > chunk {
			t.Fatalf("tick %d consumed %d prompt tokens, chunk is %d", ticks, got, chunk)
		}
		ticks++
		if ticks > len(long) {
			t.Fatalf("prefill not done after %d ticks", ticks)
		}
	}
	if want := (len(long) + chunk - 1) / chunk; ticks != want {
		t.Fatalf("prompt of %d admitted in %d ticks, want %d", len(long), ticks, want)
	}
	if sl.ttft <= 0 || !sl.ttftPending {
		t.Fatalf("prefill completion must stage a TTFT sample (ttft=%v pending=%v)", sl.ttft, sl.ttftPending)
	}
	// Decoding proceeds normally after the staged admission.
	for !sl.done {
		sl.advance(-1)
	}
	if sl.reason != FinishLength || len(sl.tokens) != 2 {
		t.Fatalf("post-admission decode finished (%s, %d tokens)", sl.reason, len(sl.tokens))
	}
}

// TestSlotCancelStopsTicks is the deterministic core of the cancellation
// contract: a slot whose request context is cancelled finishes with
// FinishCancelled on the very next advance call and performs no further
// decode work — token count frozen at the moment of cancellation, session
// position untouched afterwards.
func TestSlotCancelStopsTicks(t *testing.T) {
	m := model.New(model.Tiny(), 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sl := newSlot(infer.NewSession(m.View()), m.Cfg.MaxSeq, 4, nil)
	sl.start(Request{ID: "c", Prompt: []int{3, 1}, MaxTokens: 20, Seed: 2, Ctx: ctx}, nil, time.Now(), nil)
	for len(sl.tokens) < 3 {
		sl.advance(-1)
		if sl.done {
			t.Fatalf("finished (%s) before cancellation with %d tokens", sl.reason, len(sl.tokens))
		}
	}
	cancel()
	pos := sl.sess.Pos()
	sl.advance(-1)
	if !sl.done || sl.reason != FinishCancelled || sl.err != nil {
		t.Fatalf("post-cancel advance: done=%v reason=%s err=%v", sl.done, sl.reason, sl.err)
	}
	if len(sl.tokens) != 3 {
		t.Fatalf("cancelled slot holds %d tokens, want the 3 generated before cancellation", len(sl.tokens))
	}
	if sl.sess.Pos() != pos {
		t.Fatalf("cancelled advance moved the session %d -> %d: it must consume no decode tick", pos, sl.sess.Pos())
	}
	// Further advances are no-ops on a finished slot.
	sl.advance(-1)
	if len(sl.tokens) != 3 || sl.sess.Pos() != pos {
		t.Fatalf("finished slot kept decoding: %d tokens, pos %d", len(sl.tokens), sl.sess.Pos())
	}
}

// TestSlotDeadlineReason: an expired deadline maps to FinishDeadline, a
// plain cancellation to FinishCancelled, both before any prefill work.
func TestSlotDeadlineReason(t *testing.T) {
	m := model.New(model.Tiny(), 1)
	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	sl := newSlot(infer.NewSession(m.View()), m.Cfg.MaxSeq, 4, nil)
	sl.start(Request{ID: "d", Prompt: []int{1}, MaxTokens: 4, Ctx: expired}, nil, time.Now(), nil)
	sl.advance(-1)
	if !sl.done || sl.reason != FinishDeadline {
		t.Fatalf("expired-deadline slot: done=%v reason=%s, want %s", sl.done, sl.reason, FinishDeadline)
	}
	if sl.sess.Pos() != 0 {
		t.Fatalf("expired request prefilled %d tokens, want 0", sl.sess.Pos())
	}
}

// TestPercentileNearestRank pins the percentile helper on small windows.
func TestPercentileNearestRank(t *testing.T) {
	samples := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(samples, 50); got != 5 {
		t.Fatalf("p50 = %v, want 5", got)
	}
	if got := percentile(samples, 99); got != 10 {
		t.Fatalf("p99 = %v, want 10", got)
	}
	if got := percentile(samples[:1], 99); got != 1 {
		t.Fatalf("p99 of singleton = %v, want 1", got)
	}
}

// Memory-pressure tests: the scheduler's graceful-degradation ladder
// under a hard KV budget, exercised through the public API. The
// acceptance bar is behavioral, not statistical — preemption must
// actually fire, and every preempted request's output must be
// bit-identical to a sequential never-preempted run; the pool's
// high-water mark must never cross the budget; and a preemption storm
// followed by Drain and Close must return every page.
package serve_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/parallel"
	"repro/internal/serve"
)

// pressureRequests builds a workload sized to overflow small page budgets
// on the Tiny model: 4-token prompts with ~20-token outputs need 2 pages
// per block (4 pages total) each, so co-resident slots contend as soon as
// the budget is below slots*4 pages. Sampled temperatures are load-bearing:
// they pin the RNG-stream continuity of preemption resume.
func pressureRequests(vocab, n int) []serve.Request {
	reqs := make([]serve.Request, n)
	for i := range reqs {
		prompt := []int{1 + i%(vocab-1), 2, 3, 4}
		temp := 0.9
		if i%3 == 0 {
			temp = 0 // greedy lanes mixed in
		}
		reqs[i] = serve.Request{
			ID:          fmt.Sprintf("p-%d", i),
			Prompt:      prompt,
			MaxTokens:   18 + i%5,
			Temperature: temp,
			Seed:        int64(900 + i),
			Priority:    i % 3,
		}
	}
	return reqs
}

// budgetOpts returns scheduler options bounded to `pages` KV pages. The
// Tiny model's page is 2*16*16*8 bytes; Layers=2 blocks mean a full
// request (4 prompt + ~20 generated = up to 32 rows) wants 4 pages.
func budgetOpts(slots int, pages int64) serve.Options {
	opts := serve.DefaultOptions()
	opts.Slots = slots
	opts.KVBudgetBytes = pages * 2 * 16 * 16 * 8
	return opts
}

// TestPreemptionBitIdenticalToSequential is the tentpole contract: under
// a budget tight enough to force preemption, every request — including
// the preempted ones — finishes with output bit-identical to a
// sequential, never-preempted run, and the pool's high-water mark stays
// within the budget.
func TestPreemptionBitIdenticalToSequential(t *testing.T) {
	m := testModel()
	reqs := pressureRequests(m.Cfg.Vocab, 10)
	ref := serve.DefaultOptions()
	want := make([]serve.Result, len(reqs))
	for i, r := range reqs {
		want[i] = serve.Sequential(m, r, ref)
	}
	for _, workers := range []int{1, 4} {
		parallel.SetWorkers(workers)
		// 6 pages: two slots admit (2 pages resident each at first), then
		// both outgrow their first pages and contend for the remaining 2.
		s := serve.New(m, budgetOpts(4, 6))
		got, err := s.GenerateAll(reqs)
		if err != nil {
			t.Fatalf("workers=%d: GenerateAll: %v", workers, err)
		}
		st := s.Stats()
		ps := s.PoolStats()
		s.Close()
		if st.Preemptions == 0 {
			t.Fatalf("workers=%d: no preemptions under a 6-page budget — the pressure path was not exercised", workers)
		}
		if ps.BudgetBytes <= 0 || ps.HighWaterBytes > ps.BudgetBytes {
			t.Fatalf("workers=%d: high water %d bytes exceeds budget %d", workers, ps.HighWaterBytes, ps.BudgetBytes)
		}
		for i := range reqs {
			assertResultsEqual(t, fmt.Sprintf("workers=%d req %s (preemptions=%d)", workers, reqs[i].ID, st.Preemptions), got[i], want[i])
		}
	}
}

// TestAdmissionDeferredUnderPressure: with headroom for roughly one
// request at a time, the admission loop defers queued requests instead of
// admitting them into certain starvation — and still completes everything.
func TestAdmissionDeferredUnderPressure(t *testing.T) {
	m := testModel()
	reqs := pressureRequests(m.Cfg.Vocab, 6)
	s := serve.New(m, budgetOpts(4, 4))
	defer s.Close()
	got, err := s.GenerateAll(reqs)
	if err != nil {
		t.Fatalf("GenerateAll: %v", err)
	}
	st := s.Stats()
	if st.AdmissionDeferred == 0 {
		t.Fatal("no admissions deferred under a 4-page budget with 6 queued requests")
	}
	ref := serve.DefaultOptions()
	for i, r := range reqs {
		assertResultsEqual(t, fmt.Sprintf("deferred run req %s", r.ID), got[i], serve.Sequential(m, r, ref))
	}
}

// TestSubmitRejectsOverBudgetDemand: a request whose worst-case page
// demand exceeds the entire budget can never be admitted — Submit refuses
// it up front with ErrOverBudget instead of letting it starve forever.
func TestSubmitRejectsOverBudgetDemand(t *testing.T) {
	m := testModel()
	s := serve.New(m, budgetOpts(2, 2)) // 2 pages: one page per block max
	defer s.Close()
	_, err := s.Submit(serve.Request{ID: "huge", Prompt: []int{1, 2, 3, 4}, MaxTokens: 20, Seed: 1})
	if !errors.Is(err, serve.ErrOverBudget) {
		t.Fatalf("over-budget Submit: err = %v, want ErrOverBudget", err)
	}
	if st := s.Stats(); st.Rejected != 1 {
		t.Fatalf("Rejected = %d after an over-budget Submit, want 1", st.Rejected)
	}
	// A request that fits the whole budget still serves.
	res := mustResult(t, s, serve.Request{ID: "fits", Prompt: []int{1, 2}, MaxTokens: 8, Seed: 2})
	if res.Err != nil || len(res.Tokens) == 0 {
		t.Fatalf("within-budget request after rejection: err=%v tokens=%d", res.Err, len(res.Tokens))
	}
}

func mustResult(t *testing.T, s *serve.Scheduler, req serve.Request) serve.Result {
	t.Helper()
	ticket, err := s.Submit(req)
	if err != nil {
		t.Fatalf("Submit %s: %v", req.ID, err)
	}
	return ticket.Wait()
}

// TestPreemptionStormReleasesAllPages: waves of over-committed traffic —
// enough to preempt repeatedly — followed by Drain and Close leave the
// pool with zero pages in use and the high-water mark within budget: no
// refcount leaks anywhere on the preempt/requeue/restore path.
func TestPreemptionStormReleasesAllPages(t *testing.T) {
	m := testModel()
	s := serve.New(m, budgetOpts(4, 6))
	var preemptions int64
	for wave := 0; wave < 3; wave++ {
		reqs := pressureRequests(m.Cfg.Vocab, 8)
		if _, err := s.GenerateAll(reqs); err != nil {
			t.Fatalf("wave %d: %v", wave, err)
		}
		preemptions = s.Stats().Preemptions
	}
	if preemptions == 0 {
		t.Fatal("storm produced no preemptions; the leak check proved nothing")
	}
	s.Drain()
	ps := s.PoolStats()
	if ps.HighWaterBytes > ps.BudgetBytes {
		t.Fatalf("high water %d > budget %d", ps.HighWaterBytes, ps.BudgetBytes)
	}
	s.Close()
	if ps = s.PoolStats(); ps.PagesInUse != 0 {
		t.Fatalf("%d pages still in use after storm + Drain + Close, want 0", ps.PagesInUse)
	}
}

// TestPrefixCacheSacrificialUnderBudget: with the prefix cache enabled
// inside the same budget, cache entries give way to slot demand (the
// reclaimer evicts them) instead of wedging the scheduler — traffic that
// would overflow the budget with the cache full still completes, outputs
// bit-identical, pages fully returned.
func TestPrefixCacheSacrificialUnderBudget(t *testing.T) {
	m := testModel()
	opts := budgetOpts(4, 6)
	opts.PrefixCacheBytes = 1 << 20 // far above the pool budget: the pool is the binding constraint
	s := serve.New(m, opts)
	shared := []int{7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22} // one full page: cacheable
	var reqs []serve.Request
	for i := 0; i < 8; i++ {
		reqs = append(reqs, serve.Request{
			ID:          fmt.Sprintf("pc-%d", i),
			Prompt:      append(append([]int{}, shared...), 1+i%(m.Cfg.Vocab-1)),
			MaxTokens:   10,
			Temperature: 0.8,
			Seed:        int64(50 + i),
		})
	}
	got, err := s.GenerateAll(reqs)
	if err != nil {
		t.Fatalf("GenerateAll: %v", err)
	}
	ps := s.PoolStats()
	if ps.HighWaterBytes > ps.BudgetBytes {
		t.Fatalf("high water %d > budget %d with prefix cache sharing the pool", ps.HighWaterBytes, ps.BudgetBytes)
	}
	ref := serve.DefaultOptions()
	for i, r := range reqs {
		assertResultsEqual(t, fmt.Sprintf("sacrificial-cache req %s", r.ID), got[i], serve.Sequential(m, r, ref))
	}
	s.Close()
	if ps = s.PoolStats(); ps.PagesInUse != 0 {
		t.Fatalf("%d pages in use after Close, want 0", ps.PagesInUse)
	}
}

package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/model"
)

// demoModel is the deterministic nano config aptq-serve serves when no
// checkpoint is given — the model every HTTP-level test and smoke script
// runs against.
func demoModel() *model.Model {
	cfg := model.Config{Name: "serve-demo", Vocab: 64, Dim: 32, Heads: 4, Layers: 3, FF: 64, MaxSeq: 64, RopeBase: 10000}
	return model.New(cfg, 1)
}

func testHTTPServer(t *testing.T) (*Server, *httptest.Server) {
	return testHTTPServerOpts(t, func(*Options) {})
}

func testHTTPServerOpts(t *testing.T, mod func(*Options)) (*Server, *httptest.Server) {
	t.Helper()
	opts := DefaultOptions()
	opts.Slots = 2
	mod(&opts)
	srv := NewServer(demoModel(), opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func post(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestGenerateEndToEndDeterministic is the serving determinism contract at
// the HTTP boundary: the same request body yields byte-identical replies,
// also under concurrent traffic.
func TestGenerateEndToEndDeterministic(t *testing.T) {
	_, ts := testHTTPServer(t)
	body := `{"tokens":[1,2,3],"max_tokens":8,"temperature":0.8,"seed":7}`
	code, first := post(t, ts.URL+"/v1/generate", body)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, first)
	}
	var reply GenerateResponse
	if err := json.Unmarshal(first, &reply); err != nil {
		t.Fatal(err)
	}
	if len(reply.Tokens) != 8 || reply.FinishReason != "length" || reply.Text == "" {
		t.Fatalf("unexpected reply: %s", first)
	}
	// Co-scheduled noise traffic with different seeds must not perturb the
	// repeat of the original request.
	for i := 0; i < 3; i++ {
		if code, b := post(t, ts.URL+"/v1/generate", `{"tokens":[5],"max_tokens":4,"temperature":1.0,"seed":99}`); code != http.StatusOK {
			t.Fatalf("noise status %d: %s", code, b)
		}
	}
	if _, again := post(t, ts.URL+"/v1/generate", body); !bytes.Equal(first, again) {
		t.Fatalf("same request, different replies:\n%s\n%s", first, again)
	}
}

// TestGenerateTextPrompt exercises the word-level prompt path and the
// stop-token plumbing.
func TestGenerateTextPrompt(t *testing.T) {
	srv, ts := testHTTPServer(t)
	prompt := srv.vocab.Word(3) + " " + srv.vocab.Word(9)
	body, _ := json.Marshal(map[string]any{"prompt": prompt, "max_tokens": 5, "seed": 1})
	code, b := post(t, ts.URL+"/v1/generate", string(body))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, b)
	}
	var reply GenerateResponse
	if err := json.Unmarshal(b, &reply); err != nil {
		t.Fatal(err)
	}
	if len(reply.Tokens) != 5 {
		t.Fatalf("generated %d tokens: %s", len(reply.Tokens), b)
	}
	// Repeating the request with the first generated token as a stop token
	// must end generation immediately.
	body, _ = json.Marshal(map[string]any{"prompt": prompt, "max_tokens": 5, "seed": 1, "stop": []int{reply.Tokens[0]}})
	code, b = post(t, ts.URL+"/v1/generate", string(body))
	if code != http.StatusOK {
		t.Fatalf("stop status %d: %s", code, b)
	}
	if err := json.Unmarshal(b, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.FinishReason != "stop" || len(reply.Tokens) != 0 {
		t.Fatalf("stop run: %s", b)
	}
}

func TestGenerateRejectsBadRequests(t *testing.T) {
	_, ts := testHTTPServer(t)
	for _, tc := range []struct {
		name, body string
	}{
		{"empty", `{}`},
		{"bad json", `{"tokens":`},
		{"both prompt and tokens", `{"prompt":"a","tokens":[1]}`},
		{"unknown word", `{"prompt":"notaword!"}`},
		{"token out of vocab", `{"tokens":[99999]}`},
		{"stop out of vocab", `{"tokens":[1],"stop":[-2]}`},
	} {
		if code, b := post(t, ts.URL+"/v1/generate", tc.body); code != http.StatusBadRequest {
			t.Fatalf("%s: status %d (%s), want 400", tc.name, code, b)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/generate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET generate: status %d, want 405", resp.StatusCode)
	}
}

func TestHealthAndStats(t *testing.T) {
	_, ts := testHTTPServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["status"] != "ok" || health["model"] != "serve-demo" {
		t.Fatalf("health: %v", health)
	}
	if code, b := post(t, ts.URL+"/v1/generate", `{"tokens":[1],"max_tokens":3,"seed":2}`); code != http.StatusOK {
		t.Fatalf("generate status %d: %s", code, b)
	}
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]float64
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats["completed"] < 1 || stats["generated_tokens"] < 3 || stats["slots"] != 2 {
		t.Fatalf("stats: %v", stats)
	}
	// The prefill-latency surface: one completed request means one TTFT
	// sample and non-negative percentiles.
	if stats["ttft_count"] < 1 || stats["ttft_p50_ms"] <= 0 || stats["ttft_p99_ms"] < stats["ttft_p50_ms"] {
		t.Fatalf("ttft stats: %v", stats)
	}
	if stats["prefill_chunk"] <= 0 {
		t.Fatalf("prefill_chunk missing: %v", stats)
	}
	if v, ok := stats["drain_timeouts"]; !ok || v != 0 {
		t.Fatalf("drain_timeouts = %v, want present and 0: %v", v, stats)
	}
}

// TestGenerateStreaming: the SSE variant emits one event per token and a
// final event byte-identical to the non-streaming reply body — streaming
// is a transport change, never a semantic one.
func TestGenerateStreaming(t *testing.T) {
	_, ts := testHTTPServer(t)
	body := `{"tokens":[1,2,3],"max_tokens":8,"temperature":0.8,"seed":7}`
	code, plain := post(t, ts.URL+"/v1/generate", body)
	if code != http.StatusOK {
		t.Fatalf("plain status %d: %s", code, plain)
	}
	plain = bytes.TrimRight(plain, "\n") // Encoder appends a newline SSE events lack

	resp, err := http.Post(ts.URL+"/v1/generate?stream=1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}
	var events []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if data, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
			events = append(events, data)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) != 9 { // 8 token events + the final response event
		t.Fatalf("got %d events, want 9: %v", len(events), events)
	}
	final := events[len(events)-1]
	if final != string(plain) {
		t.Fatalf("final stream event differs from the plain reply:\n%s\n%s", final, plain)
	}
	var reply GenerateResponse
	if err := json.Unmarshal([]byte(final), &reply); err != nil {
		t.Fatal(err)
	}
	for i, ev := range events[:len(events)-1] {
		var tokEv StreamEvent
		if err := json.Unmarshal([]byte(ev), &tokEv); err != nil {
			t.Fatalf("event %d: %v (%s)", i, err, ev)
		}
		if tokEv.Index != i || tokEv.Token != reply.Tokens[i] {
			t.Fatalf("event %d = %+v, want token %d", i, tokEv, reply.Tokens[i])
		}
	}
	// The "stream":true body form is equivalent to ?stream=1.
	resp2, err := http.Post(ts.URL+"/v1/generate", "application/json",
		strings.NewReader(`{"tokens":[1,2,3],"max_tokens":8,"temperature":0.8,"seed":7,"stream":true}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if ct := resp2.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("body-form stream content type %q", ct)
	}
	b, _ := io.ReadAll(resp2.Body)
	if !strings.Contains(string(b), final) {
		t.Fatalf("body-form stream missing the final event:\n%s", b)
	}
}

// TestLatencyAndAdmissionStats: the /v1/stats latency surface carries the
// inter-token percentiles and admission-control counters.
func TestLatencyAndAdmissionStats(t *testing.T) {
	_, ts := testHTTPServerOpts(t, func(o *Options) { o.MaxQueue = 7 })
	if code, b := post(t, ts.URL+"/v1/generate", `{"tokens":[1],"max_tokens":6,"seed":2}`); code != http.StatusOK {
		t.Fatalf("generate status %d: %s", code, b)
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]float64
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// 6 generated tokens -> 6 inter-token samples (the first measures from
	// prefill completion), positive percentiles, ordered p50 <= p99.
	if stats["itl_count"] < 1 || stats["itl_p50_ms"] <= 0 || stats["itl_p99_ms"] < stats["itl_p50_ms"] {
		t.Fatalf("itl stats: %v", stats)
	}
	if stats["max_queue"] != 7 || stats["draining"] != 0 {
		t.Fatalf("admission stats: %v", stats)
	}
	for _, k := range []string{"cancelled", "deadline_exceeded", "rejected"} {
		if v, ok := stats[k]; !ok || v != 0 {
			t.Fatalf("counter %s = %v, want present and 0: %v", k, v, stats)
		}
	}
}

// TestHealthDraining: a draining server reports 503 on /healthz so load
// balancers stop routing to it during a graceful redeploy.
func TestHealthDraining(t *testing.T) {
	srv, ts := testHTTPServer(t)
	srv.SetDraining(true)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status %d, want 503", resp.StatusCode)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "draining" {
		t.Fatalf("draining healthz: %v", health)
	}
}

// TestPrefixCacheEndToEnd: with -prefix-cache enabled, a repeated prompt
// prefix yields byte-identical replies (the bit-identity contract across
// cold and cached prefills) and the stats surface reports the hits.
func TestPrefixCacheEndToEnd(t *testing.T) {
	_, ts := testHTTPServerOpts(t, func(o *Options) {
		o.PrefillChunk = 4
		o.PrefixCacheBytes = 1 << 20
	})
	// A 17-token prompt spans one full 16-row KV page plus a tail token,
	// so the repeat adopts the cached page and still prefills the tail.
	body := `{"tokens":[1,2,3,4,5,6,7,8,9,1,2,3,4,5,6,7,8],"max_tokens":6,"temperature":0.7,"seed":11}`
	code, first := post(t, ts.URL+"/v1/generate", body)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, first)
	}
	_, again := post(t, ts.URL+"/v1/generate", body)
	if !bytes.Equal(first, again) {
		t.Fatalf("cached prefill changed the reply:\n%s\n%s", first, again)
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]float64
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats["prefix_cache_hits"] < 1 || stats["prefix_cache_hit_tokens"] < 16 {
		t.Fatalf("prefix cache saw no hits: %v", stats)
	}
	if stats["prefix_cache_bytes"] <= 0 || stats["prefix_cache_entries"] <= 0 {
		t.Fatalf("prefix cache reports no residency: %v", stats)
	}
	if hr := stats["prefix_cache_hit_rate"]; hr <= 0 || hr > 1 {
		t.Fatalf("prefix_cache_hit_rate = %v", hr)
	}
	if stats["kv_unique_bytes"] <= 0 || stats["kv_pages"] <= 0 {
		t.Fatalf("paged KV reports no unique residency: %v", stats)
	}
	if stats["kv_logical_bytes"] < stats["kv_unique_bytes"] {
		t.Fatalf("logical KV bytes %v below unique %v", stats["kv_logical_bytes"], stats["kv_unique_bytes"])
	}
	if stats["kv_sharing_ratio"] <= 1 {
		t.Fatalf("cached slot + attached page show no sharing: ratio %v", stats["kv_sharing_ratio"])
	}
}

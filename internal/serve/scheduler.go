// Package serve provides the continuous-batching scheduler that turns the
// repository's KV-cached decode path into a serving engine. A Scheduler
// owns a fixed pool of decoding slots — one infer.Session per slot, each on
// its own model.Model view of one shared (float or packed) weight copy —
// and an admission queue of Requests. Every tick advances all live slots by
// one token with a parallel fan-out; the moment a sequence finishes (EOS,
// stop token, max-tokens, or the model's context limit) its slot is
// recycled and the next queued request is prefilled, so throughput tracks
// the number of live sequences instead of the slowest member of a lockstep
// batch (infer.Batch's regime).
//
// Determinism contract: a request's output depends only on the model and
// the request itself (prompt, seed, temperature, stop set) — never on the
// slot it lands in, the worker count, or what traffic is co-scheduled.
// Scheduler output is bit-identical to Sequential on a fresh session,
// which tests enforce across slot and worker counts.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/infer"
	"repro/internal/model"
	"repro/internal/parallel"
)

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("serve: scheduler closed")

// ErrDraining is returned by Submit after Drain: the scheduler is
// completing queued and in-flight work ahead of a shutdown and admits
// nothing new.
var ErrDraining = errors.New("serve: scheduler draining")

// ErrQueueFull is returned by Submit when Options.MaxQueue bounds the
// admission queue and it is at capacity — the overload signal the HTTP
// front-end maps to 429 instead of queueing without bound.
var ErrQueueFull = errors.New("serve: admission queue full")

// ErrDrainTimeout is the error carried by requests force-closed when a
// bounded drain (DrainFor) expires before the scheduler empties: the
// shutdown deadline won, not the request.
var ErrDrainTimeout = errors.New("serve: drain timeout expired")

// ErrOverBudget is returned by Submit when Options.KVBudgetBytes is set
// and the request's worst-case KV demand (prompt + MaxTokens across every
// block) exceeds the entire budget: the request could never run to
// completion on this replica, so it is refused up front (429 at the HTTP
// layer) instead of being admitted into guaranteed starvation.
var ErrOverBudget = errors.New("serve: request's worst-case KV demand exceeds the memory budget")

// FinishReason tells why a request stopped decoding.
type FinishReason string

// Finish reasons.
const (
	// FinishEOS: the model sampled the configured end-of-sequence token
	// (not emitted).
	FinishEOS FinishReason = "eos"
	// FinishStop: the model sampled one of the request's stop tokens (not
	// emitted).
	FinishStop FinishReason = "stop"
	// FinishLength: the request's MaxTokens budget is exhausted.
	FinishLength FinishReason = "length"
	// FinishContext: the model's MaxSeq context is full; the last sampled
	// token is emitted but cannot be fed back.
	FinishContext FinishReason = "context"
	// FinishError: decoding failed; Result.Err holds the cause.
	FinishError FinishReason = "error"
	// FinishCancelled: the request's context was cancelled (typically a
	// client disconnect). Generation stops at the next tick — a queued
	// request resolves without ever occupying a slot — and the slot is
	// recycled; Tokens holds whatever was generated before cancellation.
	FinishCancelled FinishReason = "cancelled"
	// FinishDeadline: the request's context deadline expired mid-flight.
	// Like FinishCancelled, the slot is freed on the next tick and the
	// tokens generated so far are delivered.
	FinishDeadline FinishReason = "deadline_exceeded"
)

// ctxFinishReason maps a request context's state to the finish reason it
// implies; "" when the context is nil or still live.
func ctxFinishReason(ctx context.Context) FinishReason {
	if ctx == nil {
		return ""
	}
	switch ctx.Err() { //aptq:ignore noalloc Context.Err on std contexts is allocation-free; the dynamic call is opaque to the checker
	case nil:
		return ""
	case context.DeadlineExceeded:
		return FinishDeadline
	default:
		return FinishCancelled
	}
}

// Request is one generation job.
type Request struct {
	// ID is an opaque caller tag echoed in the Result.
	ID string
	// Prompt is the token sequence to prefill. Empty prompts fail with
	// infer.ErrEmptyPrompt.
	Prompt []int
	// MaxTokens bounds the generated tokens (<= 0 generates nothing and
	// finishes with FinishLength).
	MaxTokens int
	// Temperature is the sampling temperature (0 = greedy argmax).
	Temperature float64
	// Seed seeds this request's private RNG stream, making its output
	// reproducible independent of co-scheduled traffic.
	Seed int64
	// Stop lists tokens that end generation without being emitted.
	Stop []int
	// Ctx, when non-nil, bounds the request's lifetime: the moment it is
	// cancelled or its deadline expires, the request finishes with
	// FinishCancelled / FinishDeadline at the next scheduler tick and its
	// slot is recycled — an abandoned request stops consuming decode ticks
	// instead of running to its token budget. A nil Ctx never cancels. A
	// request that runs to completion is unaffected: cancellation can only
	// truncate output, never change the tokens that were generated.
	Ctx context.Context
	// Priority orders admission under contention: a freed slot admits the
	// highest-priority queued request first (FIFO within a priority
	// class). It affects only when a request runs, never its output.
	Priority int
}

// Result is the outcome of one Request.
type Result struct {
	ID           string
	Tokens       []int
	FinishReason FinishReason
	// Err is non-nil only when FinishReason is FinishError; Tokens then
	// holds whatever was generated before the failure.
	Err error
}

// Ticket is the handle returned by Submit; the Result is delivered exactly
// once, and generated tokens stream on Tokens as they are decoded.
type Ticket struct {
	ch     chan Result
	tokens chan int
}

// Done returns a channel that receives the request's Result.
func (t *Ticket) Done() <-chan Result { return t.ch }

// Wait blocks until the Result is available.
func (t *Ticket) Wait() Result { return <-t.ch }

// Tokens returns the per-token stream: each generated token is sent the
// tick it is decoded, and the channel is closed when the request finishes
// (the Result is then available on Done). The channel is buffered to the
// request's full token budget, so the scheduler never blocks on a slow or
// absent consumer — reading it is optional, and the stream's contents
// always equal Result.Tokens exactly.
func (t *Ticket) Tokens() <-chan int { return t.tokens }

// deliver closes the token stream and resolves the ticket. Called exactly
// once per ticket, from the scheduler loop.
func (t *Ticket) deliver(res Result) {
	if t.tokens != nil {
		close(t.tokens)
	}
	t.ch <- res
}

// Options configures a Scheduler. The zero value is NOT useful for EOS:
// use DefaultOptions (EOS -1 = disabled) and override fields.
type Options struct {
	// Slots is the number of concurrently decoding sequences (default 4).
	Slots int
	// EOS is the end-of-sequence token id; negative disables EOS
	// detection.
	EOS int
	// KVQuantBits, when non-zero, stores every slot's KV cache at that
	// bit width (see infer.NewSessionKVQuant).
	KVQuantBits int
	// PrefillChunk bounds the prompt tokens a slot admits per decode tick
	// (<= 0 selects infer.DefaultPrefillChunk). A long prompt is consumed
	// across consecutive ticks chunk by chunk, so its admission delays
	// co-scheduled slots' ticks by at most one chunk's worth of work
	// instead of a whole-prompt stall. Output is unaffected: chunked
	// prefill is bit-identical to the token loop at every chunk size.
	PrefillChunk int
	// PrefixCacheBytes, when positive, enables the shared prefix/KV cache
	// with that byte budget: completed prefill pages are published at
	// infer.PageRows granularity, and a request whose prompt starts with
	// cached pages adopts them by reference — a refcount bump per page, no
	// memcpy, no extra resident bytes — instead of recomputing the prefill:
	// near-zero time-to-first-token on repeat system prompts, and resident
	// KV that scales with unique tokens instead of slot count. Output is
	// unaffected: an adopted prefix references the very bytes a recomputed
	// one would produce (prefill is deterministic), so scheduled output
	// stays bit-identical to Sequential with or without the cache. 0
	// disables caching.
	PrefixCacheBytes int64
	// MaxQueue bounds the admission queue depth: Submit returns
	// ErrQueueFull once MaxQueue requests are waiting, so overload sheds
	// load with an explicit signal (429 at the HTTP layer) instead of
	// queueing without bound and blowing every request's latency. <= 0
	// leaves the queue unbounded.
	MaxQueue int
	// KVBudgetBytes, when positive, caps the shared KV page pool — slots
	// and the prefix cache together — at that many resident bytes (rounded
	// down to whole pages). The budget is a hard guarantee, not a target:
	// the pool never allocates past it (PoolStats.HighWaterBytes <=
	// BudgetBytes always). Under pressure the scheduler degrades in order:
	// unpinned prefix-cache entries are evicted first (the sacrificial
	// tier), then admission of new requests is deferred until worst-case
	// headroom exists, and as a last resort a decoding slot is preempted —
	// its request re-queued carrying the tokens generated so far and
	// restored later by re-prefilling prompt+generated, which by the
	// determinism contract yields output bit-identical to an uninterrupted
	// run. 0 disables the budget (pages allocate on demand, the pre-budget
	// behavior).
	KVBudgetBytes int64
}

// DefaultOptions returns the baseline scheduler configuration: 4 slots, no
// EOS token, float KV cache, default prefill chunking.
func DefaultOptions() Options {
	return Options{Slots: 4, EOS: -1, PrefillChunk: infer.DefaultPrefillChunk}
}

// Stats is a point-in-time snapshot of scheduler counters.
type Stats struct {
	// Slots is the pool size; Active the slots currently decoding; Queued
	// the requests awaiting admission.
	Slots, Active, Queued int
	// Submitted / Completed count requests over the scheduler's lifetime.
	Submitted, Completed int64
	// PromptTokens / GeneratedTokens count tokens over the scheduler's
	// lifetime (completed requests only).
	PromptTokens, GeneratedTokens int64
	// KVCacheBytes is the resident KV memory of the shared page pool:
	// every allocated page — referenced by slots and/or the prefix cache,
	// plus warm free-list capacity — counted exactly once.
	KVCacheBytes int64
	// KVUniqueBytes is the resident size of the pages currently referenced
	// by at least one holder (slot or prefix-cache entry), each counted
	// once regardless of how many holders share it. KVLogicalBytes is what
	// the same references would occupy without sharing — every slot's and
	// cache entry's pages counted per holder, the pre-paging memcpy memory
	// model. KVLogicalBytes / KVUniqueBytes is the sharing ratio; KVPages
	// counts the unique in-use pages.
	KVUniqueBytes  int64
	KVLogicalBytes int64
	KVPages        int64
	// PrefillChunk is the admission chunk size in effect.
	PrefillChunk int
	// TTFTSamples counts completed prefills; TTFTp50/TTFTp99 are
	// percentiles of time-to-first-token — submission to last prompt
	// token prefilled — over the most recent ttftWindow requests.
	TTFTSamples      int64
	TTFTp50, TTFTp99 time.Duration
	// ITLSamples counts recorded inter-token gaps; ITLp50/ITLp99 are
	// percentiles of the latency between consecutively emitted tokens of
	// a request (the streaming cadence a client observes), over the most
	// recent itlWindow samples.
	ITLSamples     int64
	ITLp50, ITLp99 time.Duration
	// Cancelled / DeadlineExceeded count requests finished by context
	// cancellation or deadline expiry; Rejected counts Submit calls
	// refused with ErrQueueFull under the MaxQueue bound.
	Cancelled, DeadlineExceeded, Rejected int64
	// DrainTimeouts counts bounded drains (DrainFor) that expired before
	// the scheduler emptied and force-closed the remaining work — a
	// non-zero value means some SIGTERM hit the shutdown deadline instead
	// of finishing gracefully.
	DrainTimeouts int64
	// Preemptions counts slots evicted under KV memory pressure: their
	// requests were re-queued with their generated-so-far tokens and later
	// restored bit-identically (the KVBudgetBytes degradation ladder).
	Preemptions int64
	// AdmissionDeferred counts admission opportunities skipped because a
	// queued request's worst-case KV demand exceeded the pool headroom —
	// one count per queued request per tick with a free slot, so it grows
	// while memory-aware admission is actively holding work back.
	AdmissionDeferred int64
	// Panics counts requests whose per-slot tick work panicked; each was
	// isolated to a FinishError for that request (the slot recovered and
	// kept serving). The HTTP layer adds its own handler-recover count on
	// top in /v1/stats.
	Panics int64
	// KVBudgetBytes echoes Options.KVBudgetBytes rounded to whole pages (0
	// = unbounded); KVHighWaterBytes is the maximum resident KV the pool
	// ever held — with a budget set, KVHighWaterBytes <= KVBudgetBytes is
	// the enforced invariant.
	KVBudgetBytes    int64
	KVHighWaterBytes int64
	// MaxQueue echoes Options.MaxQueue; Draining reports a scheduler
	// between Drain and Close.
	MaxQueue int
	Draining bool
	// Prefix-cache counters (all zero when Options.PrefixCacheBytes is 0).
	// PrefixCacheHits / PrefixCacheMisses count admissions whose prompt
	// did / did not start with at least one cached chunk;
	// PrefixCacheHitTokens counts prompt tokens whose prefill was skipped
	// by importing cached KV rows; PrefixCacheBytes / PrefixCacheEntries
	// describe current residency and PrefixCacheEvictions the entries
	// dropped under byte pressure.
	PrefixCacheHits, PrefixCacheMisses int64
	PrefixCacheHitTokens               int64
	PrefixCacheEvictions               int64
	PrefixCacheBytes                   int64
	PrefixCacheEntries                 int
}

// PrefixCacheHitRate returns the fraction of admissions served at least
// partially from the prefix cache (0 when no lookups happened).
func (st Stats) PrefixCacheHitRate() float64 {
	total := st.PrefixCacheHits + st.PrefixCacheMisses
	if total == 0 {
		return 0
	}
	return float64(st.PrefixCacheHits) / float64(total)
}

// KVSharingRatio returns logical over unique KV bytes — how many times
// over the resident pages are referenced. 1 means no sharing; N slots
// fully sharing one prefix approach N. 0 when no pages are in use.
func (st Stats) KVSharingRatio() float64 {
	if st.KVUniqueBytes == 0 {
		return 0
	}
	return float64(st.KVLogicalBytes) / float64(st.KVUniqueBytes)
}

// ttftWindow is the number of recent time-to-first-token samples the
// percentile stats are computed over.
const ttftWindow = 512

// itlWindow is the number of recent inter-token latency samples the
// percentile stats are computed over. Wider than ttftWindow because every
// generated token contributes a sample, not every request.
const itlWindow = 2048

// resumeState carries what a preempted request needs to continue exactly
// where it stopped: the tokens already generated (and already streamed to
// the client — restore must not re-emit them) and the request's private
// RNG object, whose stream position reflects every sample drawn so far.
// Restoring re-prefills prompt+tokens — deterministic prefill reproduces
// the KV rows bit-for-bit — and then decoding continues with the carried
// RNG, so the final output is bit-identical to a run that was never
// preempted (the property TestPreemption* pins against Sequential).
type resumeState struct {
	tokens []int
	rng    *rand.Rand
}

// pending is a queued request with its delivery ticket. resume is non-nil
// only for a preempted request awaiting re-admission.
type pending struct {
	req       Request
	ticket    *Ticket
	submitted time.Time
	resume    *resumeState
}

// slot is one decoding lane. All fields are owned by the scheduler loop
// goroutine (or, inside a tick, by exactly one parallel worker); cache is
// internally synchronized.
type slot struct {
	sess     *infer.Session
	maxSeq   int
	chunk    int          // prompt tokens admitted per tick
	pageRows int          // KV page granularity (the session pool's rows)
	cache    *prefixCache // nil when prefix caching is disabled
	sampler  infer.Sampler

	active       bool
	prefilled    bool
	promptPos    int // effective-prompt tokens consumed so far
	published    int // prompt pages offered to the prefix cache so far
	req          Request
	ticket       *Ticket
	rng          *rand.Rand
	logits       []float64
	tokens       []int
	done         bool
	reason       FinishReason
	err          error
	submitted    time.Time
	resume       *resumeState // non-nil while restoring a preempted request
	effPrompt    []int        // req.Prompt plus resume tokens: what prefill consumes
	starved      bool         // last tick hit ErrPoolExhausted; retrying
	retryPending bool         // a sampled token awaits its Step retry
	retryTok     int
	panicked     bool // this tick's work panicked (isolated to FinishError)
	ttft         time.Duration
	ttftPending  bool // a fresh TTFT sample awaits collection
	lastEmit     time.Time
	itl          time.Duration
	itlPending   bool // a fresh inter-token latency sample awaits collection
}

// newSlot wraps a session as an idle slot.
func newSlot(sess *infer.Session, maxSeq, chunk int, cache *prefixCache) *slot {
	return &slot{sess: sess, maxSeq: maxSeq, chunk: chunk, pageRows: sess.Pool().Rows(), cache: cache}
}

// start admits a request into an idle slot. The session is recycled with
// Reset — its page references return to the shared pool and the
// decode/prefill scratch arenas are kept — which decodes bit-identically
// to a fresh session. With prefix caching enabled, the longest run of
// cached pages prefixing the prompt is adopted by reference into the
// recycled KV cache (a refcount bump per page, no copy) and prefill
// resumes after it; at least the final prompt token is always prefilled
// for real, because its logits must be computed.
//
// A non-nil resume restores a preempted request: prefill consumes
// prompt+generated (deterministic prefill reproduces the evicted KV rows
// bit-for-bit), the already-streamed tokens are NOT re-emitted, the
// carried RNG continues its stream where preemption stopped it, and no
// second TTFT sample is recorded — the client-visible behavior is exactly
// an uninterrupted (if slower) request.
func (sl *slot) start(req Request, ticket *Ticket, submitted time.Time, resume *resumeState) {
	sl.sess.Reset()
	sl.active = true
	sl.prefilled = false
	sl.promptPos = 0
	sl.published = 0
	sl.resume = resume
	sl.effPrompt = req.Prompt
	if resume != nil {
		eff := make([]int, 0, len(req.Prompt)+len(resume.tokens))
		eff = append(eff, req.Prompt...)
		eff = append(eff, resume.tokens...)
		sl.effPrompt = eff
	}
	if sl.cache != nil && len(req.Prompt) > 0 {
		// Cache lookup stays over the original prompt (generated tokens are
		// per-request, never shared), capped so at least the effective
		// prompt's final token is prefilled for real.
		spans, _ := sl.cache.lookup(req.Prompt, len(sl.effPrompt)-1)
		for _, sp := range spans {
			if err := sl.sess.AdoptPages(sp); err != nil {
				// Stop adopting (ErrPoolExhausted from the reservation, or a
				// misaligned span — impossible by construction) and prefill
				// the rest from the last good position.
				break
			}
		}
		// The lookup retained each span for this attach; the session now
		// holds its own page references, so drop the lookup's.
		for _, sp := range spans {
			sp.Release()
		}
		sl.promptPos = sl.sess.Pos()
		sl.published = sl.promptPos / sl.pageRows
	}
	sl.req = req
	sl.ticket = ticket
	if resume != nil {
		sl.rng = resume.rng
		sl.tokens = resume.tokens
	} else {
		sl.rng = rand.New(rand.NewSource(req.Seed))
		sl.tokens = nil
	}
	sl.logits = nil
	sl.done = false
	sl.reason = ""
	sl.err = nil
	sl.submitted = submitted
	sl.ttft = 0
	sl.ttftPending = false
	sl.lastEmit = time.Time{}
	sl.itl = 0
	sl.itlPending = false
	sl.starved = false
	sl.retryPending = false
	sl.retryTok = 0
	sl.panicked = false
}

// emit appends one generated token, streams it to the ticket (nil for
// Sequential; the channel is buffered to the full token budget, so the
// send never blocks), and stages an inter-token latency sample — the gap
// since the previous emission (or since prefill completion for the first
// token).
//
//aptq:wallclock
func (sl *slot) emit(tok int) {
	sl.tokens = append(sl.tokens, tok) //aptq:ignore noalloc per-request token accumulation: growth is amortized and the buffer is handed off in Result
	if sl.ticket != nil && sl.ticket.tokens != nil {
		sl.ticket.tokens <- tok
	}
	now := time.Now()
	if !sl.lastEmit.IsZero() {
		sl.itl = now.Sub(sl.lastEmit)
		sl.itlPending = true
	}
	sl.lastEmit = now
}

// finish marks the slot's request complete.
func (sl *slot) finish(reason FinishReason, err error) {
	sl.done = true
	sl.reason = reason
	sl.err = err
}

// result snapshots the finished slot's outcome.
func (sl *slot) result() Result {
	return Result{ID: sl.req.ID, Tokens: sl.tokens, FinishReason: sl.reason, Err: sl.err}
}

// advance runs one scheduler tick for this slot: at most one prompt chunk
// per tick until the prompt is consumed, then one sample (+feed) per tick.
// Chunked admission bounds the work a long prompt adds to any single tick
// — co-scheduled decoding slots wait for one chunk of block forwards, not
// a whole prompt — while chunked prefill's bit-identity to the token loop
// keeps the output independent of the chunk size. This single function is
// the whole per-request decode semantics: Sequential loops it to
// completion on one fresh session, and the scheduler fans it out across
// live slots, so scheduled and sequential decoding are bit-identical by
// construction.
//
// The latency stamps it takes (wallclock) never reach decoded output, and
// its steady-state decode step is a zero-alloc root: the tick is the
// serving hot path.
//
//aptq:noalloc
//aptq:wallclock
func (sl *slot) advance(eos int) {
	if sl.done {
		return
	}
	// Cancellation check, once per tick: a dead context frees the slot at
	// the next tick boundary, whether the request is mid-prefill or
	// mid-decode. Tokens generated so far are delivered with the result.
	if r := ctxFinishReason(sl.req.Ctx); r != "" {
		sl.finish(r, nil)
		return
	}
	// A token sampled (and already emitted) whose feed-back Step starved on
	// the KV budget last tick: retry just the Step — the RNG already
	// advanced, so re-sampling would corrupt the stream. ErrPoolExhausted
	// leaves the session unchanged, so the retry is exact.
	if sl.retryPending {
		logits, err := sl.sess.Step(sl.retryTok)
		if err != nil {
			if errors.Is(err, infer.ErrPoolExhausted) { //aptq:ignore noalloc errors.Is walks a static chain; cold pressure path, no allocation on the decode steady state
				sl.starved = true
				return
			}
			sl.finish(FinishError, err)
			return
		}
		sl.retryPending = false
		sl.starved = false
		sl.logits = logits.Row(0)
		return
	}
	if !sl.prefilled {
		if len(sl.req.Prompt) == 0 {
			sl.finish(FinishError, infer.ErrEmptyPrompt)
			return
		}
		// Prefill consumes the effective prompt: the request's prompt, plus
		// — when restoring a preempted request — the tokens generated before
		// preemption, whose KV rows deterministic prefill reproduces
		// bit-for-bit.
		n := sl.chunk
		if rem := len(sl.effPrompt) - sl.promptPos; n > rem {
			n = rem
		}
		lo := sl.promptPos
		logits, err := sl.sess.Append(sl.effPrompt[lo : lo+n])
		if err != nil {
			if errors.Is(err, infer.ErrPoolExhausted) { //aptq:ignore noalloc errors.Is walks a static chain; cold pressure path, no allocation on the decode steady state
				sl.starved = true // same chunk retries next tick; scheduler frees pages meanwhile
				return
			}
			sl.finish(FinishError, err)
			return
		}
		sl.starved = false
		sl.promptPos += n
		// Publish every newly completed prompt page into the cache so the
		// next request sharing the prefix adopts it by reference. Publishing
		// is decoupled from the admission chunk size: the published cursor
		// walks full pages regardless of how prefill ticks chop the prompt.
		// SharePages bumps refcounts on the pages already resident in this
		// slot — no bytes are copied; insert de-duplicates and evicts LRU
		// entries past the byte budget. Only pages fully inside the original
		// prompt are published: generated tokens are per-request, never a
		// shareable prefix.
		if sl.cache != nil {
			for (sl.published+1)*sl.pageRows <= sl.promptPos && (sl.published+1)*sl.pageRows <= len(sl.req.Prompt) {
				hi := (sl.published + 1) * sl.pageRows
				if !sl.cache.contains(sl.req.Prompt[:hi]) {
					sl.cache.insert(sl.req.Prompt[:hi], sl.sess.SharePages(sl.published*sl.pageRows, hi)) //aptq:ignore noalloc prefix-cache publication runs per prompt page during prefill, never on the decode steady state
				}
				sl.published++
			}
		}
		if sl.promptPos < len(sl.effPrompt) {
			return // rest of the prompt admits on later ticks
		}
		sl.prefilled = true
		if sl.resume == nil {
			// First prefill of this request: stamp TTFT. A restore records no
			// second sample — the client saw its first token long ago.
			sl.ttft = time.Since(sl.submitted)
			sl.ttftPending = true
		}
		sl.lastEmit = time.Now() // first token's inter-token gap starts here
		sl.logits = logits.Row(0)
		if sl.req.MaxTokens <= 0 {
			sl.finish(FinishLength, nil)
		}
		return
	}
	tok := sl.sampler.Sample(sl.rng, sl.logits, sl.req.Temperature)
	if eos >= 0 && tok == eos {
		sl.finish(FinishEOS, nil)
		return
	}
	for _, st := range sl.req.Stop {
		if tok == st {
			sl.finish(FinishStop, nil)
			return
		}
	}
	sl.emit(tok)
	if len(sl.tokens) >= sl.req.MaxTokens {
		sl.finish(FinishLength, nil)
		return
	}
	if sl.sess.Pos() >= sl.maxSeq {
		sl.finish(FinishContext, nil)
		return
	}
	logits, err := sl.sess.Step(tok)
	if err != nil {
		if errors.Is(err, infer.ErrPoolExhausted) { //aptq:ignore noalloc errors.Is walks a static chain; cold pressure path, no allocation on the decode steady state
			sl.starved = true
			sl.retryPending = true
			sl.retryTok = tok
			return
		}
		sl.finish(FinishError, err)
		return
	}
	sl.logits = logits.Row(0)
}

// Scheduler is the continuous-batching engine. Construct with New; Submit
// is safe for concurrent use; Close drains and joins the decode loop.
type Scheduler struct {
	eos      int
	maxSeq   int
	maxQueue int
	slots    []*slot
	pool     *infer.KVPagePool // shared by every slot session and the prefix cache
	prefix   *prefixCache      // nil when Options.PrefixCacheBytes is 0
	released sync.Once         // Close's one-time page teardown

	blocks      int   // model depth: pages-per-sequence multiplier in demand estimates
	budgetPages int64 // pool page budget (0 = unbounded), cached from the pool
	// panicHook, when set (tests only, before any Submit), forces a panic
	// in the tick of any slot whose request it matches — the injection
	// point for the panic-isolation tests.
	panicHook func(Request) bool

	mu         sync.Mutex
	cond       *sync.Cond
	queue      []pending
	closed     bool
	draining   bool
	forceDrain bool // expired DrainFor: fail queued + in-flight at the next tick
	stats      Stats
	// ttft is a ring of the most recent time-to-first-token samples
	// (capacity ttftWindow); ttftNext is the ring write cursor. itl is the
	// analogous ring of inter-token latency samples.
	ttft     []time.Duration
	ttftNext int
	itl      []time.Duration
	itlNext  int

	loopDone chan struct{}
}

// New builds a scheduler over m and starts its decode loop. Every slot
// decodes on its own model view, so the weights — float or packed — stay
// resident exactly once.
func New(m *model.Model, opts Options) *Scheduler {
	if opts.Slots <= 0 {
		opts.Slots = DefaultOptions().Slots
	}
	if opts.PrefillChunk <= 0 {
		opts.PrefillChunk = infer.DefaultPrefillChunk
	}
	s := &Scheduler{eos: opts.EOS, maxSeq: m.Cfg.MaxSeq, maxQueue: opts.MaxQueue, loopDone: make(chan struct{})}
	s.cond = sync.NewCond(&s.mu)
	// One page pool spans every slot and the prefix cache: pages published
	// by one slot are adopted by reference in any other, and pool stats
	// give the deduplicated resident KV footprint of the whole scheduler.
	s.pool = infer.NewPagePool(m.Cfg.Dim, m.Cfg.MaxSeq)
	if opts.KVBudgetBytes > 0 {
		s.pool.SetBudget(opts.KVBudgetBytes)
		s.budgetPages = s.pool.BudgetPages()
	}
	if opts.PrefixCacheBytes > 0 {
		s.prefix = newPrefixCache(s.pool.Rows(), opts.PrefixCacheBytes)
		// The cache is the budget's sacrificial tier: a starved page lease
		// evicts unpinned cache entries (LRU-first) before giving up.
		s.pool.SetReclaimer(s.prefix.reclaimOne)
	}
	s.blocks = len(m.Blocks)
	for _, v := range m.Views(opts.Slots) {
		s.slots = append(s.slots, newSlot(infer.NewSessionPooled(v, s.pool, opts.KVQuantBits), m.Cfg.MaxSeq, opts.PrefillChunk, s.prefix))
	}
	s.stats.Slots = opts.Slots
	s.stats.PrefillChunk = opts.PrefillChunk
	s.stats.MaxQueue = opts.MaxQueue
	s.stats.KVBudgetBytes = s.pool.BudgetBytes()
	go s.loop() //aptq:ignore detlint the scheduler loop is the one sanctioned goroutine: requests only observe it through Ticket channels, and decode order is pinned by the admission queue, not the schedule
	return s
}

// tokenStreamCap bounds the buffer of a ticket's token channel: large
// enough that the scheduler can never block on it (a request emits at most
// min(MaxTokens, MaxSeq) tokens), small enough that an absurd MaxTokens
// doesn't allocate an absurd buffer.
func (s *Scheduler) tokenStreamCap(maxTokens int) int {
	n := maxTokens
	if n > s.maxSeq {
		n = s.maxSeq
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Submit enqueues a request and returns its ticket. It never blocks on
// decoding; admission happens the moment a slot frees up, highest
// Priority first. With Options.MaxQueue set, a full queue rejects with
// ErrQueueFull instead of growing without bound; after Drain / Close,
// Submit reports ErrDraining / ErrClosed.
//
//aptq:wallclock
func (s *Scheduler) Submit(req Request) (*Ticket, error) {
	t := &Ticket{ch: make(chan Result, 1), tokens: make(chan int, s.tokenStreamCap(req.MaxTokens))}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if s.draining {
		return nil, ErrDraining
	}
	if s.maxQueue > 0 && len(s.queue) >= s.maxQueue {
		s.stats.Rejected++
		return nil, ErrQueueFull
	}
	if s.budgetPages > 0 && s.demandPages(req) > s.budgetPages {
		s.stats.Rejected++
		return nil, ErrOverBudget
	}
	s.queue = append(s.queue, pending{req: req, ticket: t, submitted: time.Now()})
	s.stats.Submitted++
	s.stats.Queued = len(s.queue)
	s.cond.Signal()
	return t, nil
}

// GenerateAll submits every request and waits for all results, returned in
// request order. A convenience for batch-style callers (benchmarks, demos).
func (s *Scheduler) GenerateAll(reqs []Request) ([]Result, error) {
	tickets := make([]*Ticket, len(reqs))
	for i, r := range reqs {
		t, err := s.Submit(r)
		if err != nil {
			return nil, err
		}
		tickets[i] = t
	}
	out := make([]Result, len(reqs))
	for i, t := range tickets {
		out[i] = t.Wait()
	}
	return out, nil
}

// Stats returns a snapshot of the scheduler counters, including
// time-to-first-token percentiles over the recent sample window.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	if len(s.ttft) > 0 {
		sorted := append([]time.Duration(nil), s.ttft...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		st.TTFTp50 = percentile(sorted, 50)
		st.TTFTp99 = percentile(sorted, 99)
	}
	if len(s.itl) > 0 {
		sorted := append([]time.Duration(nil), s.itl...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		st.ITLp50 = percentile(sorted, 50)
		st.ITLp99 = percentile(sorted, 99)
	}
	st.Draining = s.draining
	ps := s.pool.Stats()
	st.KVBudgetBytes = ps.BudgetBytes
	st.KVHighWaterBytes = ps.HighWaterBytes
	if s.prefix != nil {
		pc := s.prefix.snapshot()
		st.PrefixCacheHits = pc.Hits
		st.PrefixCacheMisses = pc.Misses
		st.PrefixCacheHitTokens = pc.HitTokens
		st.PrefixCacheEvictions = pc.Evictions
		st.PrefixCacheBytes = pc.Bytes
		st.PrefixCacheEntries = pc.Entries
	}
	return st
}

// percentile returns the nearest-rank p-th percentile of a sorted sample.
func percentile(sorted []time.Duration, p int) time.Duration {
	idx := (p*len(sorted) + 99) / 100 // ceil(p*n/100), 1-based nearest rank
	if idx < 1 {
		idx = 1
	}
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}

// recordTTFT appends one time-to-first-token sample to the ring. Caller
// holds mu.
func (s *Scheduler) recordTTFT(d time.Duration) {
	s.stats.TTFTSamples++
	if len(s.ttft) < ttftWindow {
		s.ttft = append(s.ttft, d)
		return
	}
	s.ttft[s.ttftNext] = d
	s.ttftNext = (s.ttftNext + 1) % ttftWindow
}

// recordITL appends one inter-token latency sample to the ring. Caller
// holds mu.
func (s *Scheduler) recordITL(d time.Duration) {
	s.stats.ITLSamples++
	if len(s.itl) < itlWindow {
		s.itl = append(s.itl, d)
		return
	}
	s.itl[s.itlNext] = d
	s.itlNext = (s.itlNext + 1) % itlWindow
}

// countFinish bumps the cancellation counters for context-terminated
// requests. Caller holds mu.
func (s *Scheduler) countFinish(r FinishReason) {
	switch r {
	case FinishCancelled:
		s.stats.Cancelled++
	case FinishDeadline:
		s.stats.DeadlineExceeded++
	}
}

// demandPages estimates a request's worst-case KV page demand across all
// blocks: the prompt plus every generated token except the last (which is
// emitted but never fed back), clamped to the context limit, rounded up to
// whole pages. Memory-aware admission compares this against pool headroom,
// and Submit rejects requests whose demand exceeds the entire budget.
func (s *Scheduler) demandPages(req Request) int64 {
	rows := len(req.Prompt)
	if req.MaxTokens > 0 {
		rows += req.MaxTokens - 1
	}
	if rows > s.maxSeq {
		rows = s.maxSeq
	}
	pageRows := s.pool.Rows()
	pages := (rows + pageRows - 1) / pageRows
	return int64(pages) * int64(s.blocks)
}

// tickSlot advances one slot inside a recover barrier: a panic anywhere in
// the per-request tick work — forward pass, sampling, cache publication —
// is isolated to a FinishError for that request; the slot delivers the
// error and keeps serving (its session is recycled with a full Reset on
// the next admission, and immediately under a budget). Without this, one
// poisoned request would kill the decode loop and with it every request on
// the replica.
func (s *Scheduler) tickSlot(sl *slot) {
	defer func() {
		if r := recover(); r != nil {
			sl.finish(FinishError, fmt.Errorf("serve: request panicked: %v", r))
			sl.panicked = true
		}
	}()
	if s.panicHook != nil && s.panicHook(sl.req) {
		panic("serve: injected test panic")
	}
	sl.advance(s.eos)
}

// weaker orders slots for victim selection: lower priority first, then the
// youngest (latest-submitted) of a class, then the higher slot index —
// a total deterministic order, so a preemption storm converges instead of
// thrashing, and the oldest surviving request always makes progress.
func weaker(a, b *slot) bool {
	if a.req.Priority != b.req.Priority {
		return a.req.Priority < b.req.Priority
	}
	if !a.submitted.Equal(b.submitted) {
		return a.submitted.After(b.submitted)
	}
	return false // equal keys: keep the earlier-indexed candidate
}

// preemptLocked evicts victim under KV pressure: its pages return to the
// pool (Reset), and its request re-queues at the front carrying the tokens
// generated so far plus its RNG, to be restored by start() on re-admission
// bit-identically to a run that was never preempted. Caller holds mu; the
// caller decrements nActive.
func (s *Scheduler) preemptLocked(victim *slot) {
	p := pending{req: victim.req, ticket: victim.ticket, submitted: victim.submitted, resume: victim.resume}
	if len(victim.tokens) > 0 {
		p.resume = &resumeState{tokens: victim.tokens, rng: victim.rng}
	}
	victim.sess.Reset()
	victim.active = false
	victim.ticket = nil
	victim.resume = nil
	victim.effPrompt = nil
	victim.starved = false
	victim.retryPending = false
	s.queue = append(s.queue, pending{})
	copy(s.queue[1:], s.queue)
	s.queue[0] = p
	s.stats.Preemptions++
}

// PoolStats exposes the shared KV page pool's residency counters — unique
// bytes, free pages, and the high-watermark the budget invariant
// (HighWaterBytes <= BudgetBytes) is asserted against.
func (s *Scheduler) PoolStats() infer.PoolStats { return s.pool.Stats() }

// Drain stops admission and blocks until every queued and in-flight
// request has finished — the graceful-redeploy half of shutdown: a load
// balancer stops routing here (Submit reports ErrDraining, the HTTP layer
// turns /healthz unhealthy) while accepted work runs to completion. The
// decode loop and Stats stay alive until Close. Idempotent and safe for
// concurrent use.
func (s *Scheduler) Drain() { s.DrainFor(0) }

// DrainFor is Drain with a shutdown deadline: admission stops immediately,
// and queued + in-flight requests get up to timeout to finish on their
// own. If the scheduler empties in time it returns true — byte-for-byte
// the graceful Drain. Past the deadline it force-closes: every queued
// request resolves immediately and every in-flight request finishes at its
// next tick boundary, all with FinishError and ErrDrainTimeout (their
// tickets still resolve — no client is left hanging on a wedged shutdown),
// Stats.DrainTimeouts is bumped, and DrainFor returns false once the last
// forced request has been delivered. timeout <= 0 means no deadline. The
// force path fires at a tick boundary, so it bounds scheduling delay
// (slots that never free, a queue that never empties), not the duration of
// a single mid-flight kernel call.
//
//aptq:wallclock
func (s *Scheduler) DrainFor(timeout time.Duration) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.draining = true
	if timeout <= 0 {
		for s.stats.Active > 0 || len(s.queue) > 0 {
			s.cond.Wait()
		}
		return true
	}
	// The loop only broadcasts when it goes idle, so arm a one-shot waker
	// to bound the cond wait at the deadline.
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer timer.Stop()
	for (s.stats.Active > 0 || len(s.queue) > 0) && time.Now().Before(deadline) {
		s.cond.Wait()
	}
	if s.stats.Active == 0 && len(s.queue) == 0 {
		return true
	}
	// Deadline expired with work still in flight: force-close. The decode
	// loop applies forceDrain at its next tick top (it is ticking, not
	// waiting — Active > 0), then the idle broadcast below releases us.
	s.stats.DrainTimeouts++
	s.forceDrain = true
	s.cond.Broadcast()
	for s.stats.Active > 0 || len(s.queue) > 0 {
		s.cond.Wait()
	}
	return false
}

// Close stops admission, drains every queued and in-flight request (their
// tickets still resolve), joins the decode loop, and releases every KV
// page reference — slot sessions and prefix-cache entries both — back to
// the shared pool, after which the pool reports zero pages in use (the
// refcount-leak invariant the tests pin). Idempotent.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		s.cond.Broadcast()
	}
	s.mu.Unlock()
	<-s.loopDone
	s.released.Do(func() {
		if s.prefix != nil {
			s.prefix.purge()
		}
		for _, sl := range s.slots {
			sl.sess.Reset()
		}
	})
}

// loop is the decode loop: admit into free slots, advance all live slots
// one token with a parallel fan-out, deliver finished results, repeat. A
// freed slot is refilled at the top of the very next tick, so no slot
// idles while requests queue.
func (s *Scheduler) loop() {
	defer close(s.loopDone)
	nActive := 0
	live := make([]*slot, 0, len(s.slots))
	for {
		s.mu.Lock()
		for !s.closed && len(s.queue) == 0 && nActive == 0 {
			s.cond.Wait()
		}
		// Resolve queued requests whose context died before admission: they
		// finish with FinishCancelled / FinishDeadline without ever
		// occupying a slot or consuming a decode tick.
		if len(s.queue) > 0 {
			kept := s.queue[:0]
			for _, p := range s.queue {
				if r := ctxFinishReason(p.req.Ctx); r != "" {
					res := Result{ID: p.req.ID, FinishReason: r}
					if p.resume != nil {
						res.Tokens = p.resume.tokens // preempted mid-flight: deliver what was generated
					}
					p.ticket.deliver(res)
					s.countFinish(r)
					s.stats.Completed++
					continue
				}
				kept = append(kept, p)
			}
			for i := len(kept); i < len(s.queue); i++ {
				s.queue[i] = pending{} // drop ticket references past the kept run
			}
			s.queue = kept
		}
		// An expired bounded drain (DrainFor) force-closes at the tick
		// boundary: queued requests resolve immediately, in-flight slots are
		// marked finished and delivered by this tick's post-advance sweep.
		if s.forceDrain {
			for i, p := range s.queue {
				res := Result{ID: p.req.ID, FinishReason: FinishError, Err: ErrDrainTimeout}
				if p.resume != nil {
					res.Tokens = p.resume.tokens
				}
				p.ticket.deliver(res)
				s.stats.Completed++
				s.queue[i] = pending{}
			}
			s.queue = s.queue[:0]
			for _, sl := range s.slots {
				if sl.active && !sl.done {
					sl.finish(FinishError, ErrDrainTimeout)
				}
			}
		}
		// Memory-aware admission: with a budget, a request is only admitted
		// while the pool has worst-case headroom for it — budget minus pages
		// in use, plus what evicting the reclaimable (sole-held) part of the
		// prefix cache could free: it is the sacrificial tier, but entries
		// pinned by live slots free nothing, and crediting them would
		// re-admit preempted requests into a still-full pool and thrash.
		// Headroom is a point-in-time estimate, not a reservation:
		// already-admitted slots keep growing after the check, which is
		// exactly what preemption backstops.
		headroom := int64(-1) // sentinel: unbudgeted, everything admits
		if s.budgetPages > 0 {
			ps := s.pool.Stats()
			headroom = s.budgetPages - ps.PagesInUse
			if s.prefix != nil {
				headroom += s.prefix.reclaimableBytes() / s.pool.PageBytes()
			}
		}
		for _, sl := range s.slots {
			if sl.active || len(s.queue) == 0 {
				continue
			}
			// Admit the highest-priority queued request that fits the
			// headroom; the queue is in arrival order, so the first maximum
			// is the oldest of its class.
			best := -1
			for i := range s.queue {
				if headroom >= 0 && s.demandPages(s.queue[i].req) > headroom {
					s.stats.AdmissionDeferred++
					continue
				}
				if best < 0 || s.queue[i].req.Priority > s.queue[best].req.Priority {
					best = i
				}
			}
			if best < 0 {
				// Every queued request was deferred on memory. If nothing is
				// running, defer no further — admit the best candidate anyway
				// (reclaim and preemption bound its actual usage) so the
				// scheduler always makes progress.
				if nActive > 0 {
					break
				}
				best = 0
				for i := 1; i < len(s.queue); i++ {
					if s.queue[i].req.Priority > s.queue[best].req.Priority {
						best = i
					}
				}
			}
			p := s.queue[best]
			copy(s.queue[best:], s.queue[best+1:])
			s.queue[len(s.queue)-1] = pending{}
			s.queue = s.queue[:len(s.queue)-1]
			if headroom >= 0 {
				headroom -= s.demandPages(p.req) // may go negative on a forced admission
			}
			sl.start(p.req, p.ticket, p.submitted, p.resume)
			nActive++
		}
		s.stats.Queued = len(s.queue)
		s.stats.Active = nActive
		if nActive == 0 && len(s.queue) == 0 {
			s.cond.Broadcast() // wake Drain waiters: the scheduler is idle
		}
		drained := s.closed && len(s.queue) == 0
		s.mu.Unlock()

		if nActive == 0 {
			if drained {
				return
			}
			continue
		}

		live = live[:0]
		for _, sl := range s.slots {
			if sl.active {
				live = append(live, sl)
			}
		}
		// The per-tick fan-out: each live slot advances exactly one token,
		// touching only its own state, so the tick is bit-deterministic at
		// any worker count (the internal/parallel contract). tickSlot wraps
		// the advance in a recover barrier: a panicking request finishes
		// with FinishError and frees its slot instead of killing the loop.
		parallel.ForEach(len(live), func(i int) { s.tickSlot(live[i]) })

		// KV accounting, shared pages counted once: logical bytes sum every
		// holder's references (slots here; the prefix cache's own logical
		// bytes are added under the lock below), unique bytes come from the
		// pool, which sees each page exactly once however many holders
		// share it.
		var logicalBytes int64
		for _, sl := range s.slots {
			logicalBytes += int64(sl.sess.KVCacheBytes())
		}
		ps := s.pool.Stats()
		s.mu.Lock()
		for _, sl := range live {
			if sl.panicked {
				s.stats.Panics++
				sl.panicked = false
			}
			if sl.ttftPending {
				s.recordTTFT(sl.ttft)
				sl.ttftPending = false
			}
			if sl.itlPending {
				s.recordITL(sl.itl)
				sl.itlPending = false
			}
			if !sl.done {
				continue
			}
			sl.ticket.deliver(sl.result())
			s.countFinish(sl.reason)
			s.stats.Completed++
			s.stats.PromptTokens += int64(len(sl.req.Prompt))
			s.stats.GeneratedTokens += int64(len(sl.tokens))
			sl.active = false
			sl.ticket = nil
			nActive--
			if s.budgetPages > 0 {
				// Under a budget, a finished slot's pages return to the pool
				// now instead of lazily on its next admission: idle slots must
				// not hoard budget other slots are starving for.
				sl.sess.Reset()
			}
		}
		// Preemption, the budget's last resort: a slot that could not lease
		// a page this tick (reclaim included) frees memory by evicting the
		// weakest active slot — lowest priority, then youngest — whose
		// request re-queues at the front carrying its generated tokens, to
		// be restored bit-identically later. One victim per tick: freeing
		// one slot's pages typically unstarves several, and survivors retry
		// next tick. If the starved slot is the only one running, there is
		// nothing left to preempt or reclaim — it fails with the pool error
		// (unreachable when admission is on: Submit rejects any request
		// whose worst case exceeds the whole budget).
		if s.budgetPages > 0 {
			var starved *slot
			for _, sl := range s.slots {
				if sl.active && sl.starved {
					starved = sl
					break
				}
			}
			if starved != nil {
				var victim *slot
				actives := 0
				for _, sl := range s.slots {
					if !sl.active {
						continue
					}
					actives++
					if victim == nil || weaker(sl, victim) {
						victim = sl
					}
				}
				if actives <= 1 {
					starved.finish(FinishError, infer.ErrPoolExhausted) // delivered next tick
				} else {
					s.preemptLocked(victim)
					nActive--
				}
			}
		}
		s.stats.Active = nActive
		s.stats.Queued = len(s.queue)
		if s.prefix != nil {
			logicalBytes += s.prefix.snapshot().Bytes
		}
		s.stats.KVCacheBytes = ps.UniqueBytes + ps.FreePages*s.pool.PageBytes()
		s.stats.KVUniqueBytes = ps.UniqueBytes
		s.stats.KVLogicalBytes = logicalBytes
		s.stats.KVPages = ps.PagesInUse
		if nActive == 0 && len(s.queue) == 0 {
			s.cond.Broadcast() // wake Drain waiters: the scheduler is idle
		}
		s.mu.Unlock()
	}
}

// Sequential decodes one request on a fresh single-slot session over m —
// the reference semantics the Scheduler reproduces bit-identically for
// every request regardless of slot count, worker count, or co-scheduled
// traffic. opts supplies the EOS token and KV quantization; Slots is
// ignored. The session runs on its own view of m, so concurrent
// Sequential calls (and a live Scheduler on the same model) never race on
// forward scratch state.
//
//aptq:wallclock
func Sequential(m *model.Model, req Request, opts Options) Result {
	v := m.View()
	var sess *infer.Session
	if opts.KVQuantBits > 0 {
		sess = infer.NewSessionKVQuant(v, opts.KVQuantBits)
	} else {
		sess = infer.NewSession(v)
	}
	chunk := opts.PrefillChunk
	if chunk <= 0 {
		chunk = infer.DefaultPrefillChunk
	}
	sl := newSlot(sess, m.Cfg.MaxSeq, chunk, nil)
	sl.start(req, nil, time.Now(), nil)
	for !sl.done {
		sl.advance(opts.EOS)
	}
	return sl.result()
}

package serve_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/serve"
)

// bigModel is a Tiny-architecture model with a long context, so a request
// can be given a token budget of hundreds of ticks — long enough that a
// test can cancel it mid-decode without racing its natural completion.
func bigModel() *model.Model {
	cfg := model.Tiny()
	cfg.MaxSeq = 2048
	return model.New(cfg, 1)
}

// TestTicketStreamMatchesResult: for every request, the tokens received on
// Ticket.Tokens() are exactly Result.Tokens in order, the stream closes at
// completion, and streaming changes nothing about the output (still
// bit-identical to Sequential).
func TestTicketStreamMatchesResult(t *testing.T) {
	m := testModel()
	opts := serve.DefaultOptions()
	opts.Slots = 3
	s := serve.New(m, opts)
	defer s.Close()
	reqs := mixedRequests(m.Cfg.Vocab, 9)
	type outcome struct {
		streamed []int
		res      serve.Result
	}
	outs := make([]outcome, len(reqs))
	tickets := make([]*serve.Ticket, len(reqs))
	for i, r := range reqs {
		ticket, err := s.Submit(r)
		if err != nil {
			t.Fatal(err)
		}
		tickets[i] = ticket
	}
	for i, ticket := range tickets {
		for tok := range ticket.Tokens() {
			outs[i].streamed = append(outs[i].streamed, tok)
		}
		outs[i].res = ticket.Wait()
	}
	for i, o := range outs {
		if len(o.streamed) != len(o.res.Tokens) {
			t.Fatalf("req %d: streamed %d tokens, result has %d", i, len(o.streamed), len(o.res.Tokens))
		}
		for j, tok := range o.res.Tokens {
			if o.streamed[j] != tok {
				t.Fatalf("req %d: streamed token %d = %d, result has %d", i, j, o.streamed[j], tok)
			}
		}
		assertResultsEqual(t, fmt.Sprintf("req %d vs sequential", i), o.res, serve.Sequential(m, reqs[i], serve.DefaultOptions()))
	}
}

// TestSchedulerCancelMidDecode is the client-disconnect scenario under
// co-scheduled traffic: cancelling a long request's context mid-decode
// finishes it with FinishCancelled well short of its budget (it stops
// consuming decode ticks), frees the slot for a follow-up request, and
// leaves the co-scheduled request's output bit-identical to Sequential.
// Run under -race this also exercises cancel-vs-tick synchronization.
func TestSchedulerCancelMidDecode(t *testing.T) {
	m := bigModel()
	opts := serve.DefaultOptions()
	opts.Slots = 2
	s := serve.New(m, opts)
	defer s.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	long := serve.Request{ID: "victim", Prompt: []int{1, 2}, MaxTokens: 2000, Seed: 3, Ctx: ctx}
	co := serve.Request{ID: "co", Prompt: []int{4, 5, 6}, MaxTokens: 12, Temperature: 0.8, Seed: 7}

	tLong, err := s.Submit(long)
	if err != nil {
		t.Fatal(err)
	}
	tCo, err := s.Submit(co)
	if err != nil {
		t.Fatal(err)
	}
	// First streamed token guarantees the victim is decoding, not queued.
	if _, ok := <-tLong.Tokens(); !ok {
		t.Fatal("victim stream closed before first token")
	}
	cancel()
	res := tLong.Wait()
	if res.FinishReason != serve.FinishCancelled {
		t.Fatalf("cancelled request finished with %s (%d tokens), want %s", res.FinishReason, len(res.Tokens), serve.FinishCancelled)
	}
	if len(res.Tokens) >= long.MaxTokens {
		t.Fatalf("cancelled request decoded its full %d-token budget", long.MaxTokens)
	}
	// Its generated prefix is still the Sequential prefix — cancellation
	// truncates, never perturbs.
	want := serve.Sequential(m, serve.Request{ID: "victim", Prompt: []int{1, 2}, MaxTokens: len(res.Tokens), Seed: 3}, serve.DefaultOptions())
	assertResultsEqual(t, "cancelled prefix", serve.Result{ID: "victim", Tokens: res.Tokens, FinishReason: serve.FinishLength}, want)

	assertResultsEqual(t, "co-scheduled", tCo.Wait(), serve.Sequential(m, co, serve.DefaultOptions()))

	// The freed slot admits and completes a fresh request (slot recycle).
	after := serve.Request{ID: "after", Prompt: []int{9, 8}, MaxTokens: 6, Seed: 11}
	tAfter, err := s.Submit(after)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, "post-cancel admission", tAfter.Wait(), serve.Sequential(m, after, serve.DefaultOptions()))

	st := s.Stats()
	if st.Cancelled != 1 {
		t.Fatalf("stats.Cancelled = %d, want 1", st.Cancelled)
	}
	if st.ITLSamples < 1 {
		t.Fatalf("stats.ITLSamples = %d, want >= 1", st.ITLSamples)
	}
}

// TestSchedulerQueuedCancelResolvesWithoutSlot: a queued request whose
// context dies is resolved from the queue — FinishCancelled, zero tokens —
// without ever occupying a slot, while the running request is undisturbed.
func TestSchedulerQueuedCancelResolvesWithoutSlot(t *testing.T) {
	m := bigModel()
	opts := serve.DefaultOptions()
	opts.Slots = 1
	s := serve.New(m, opts)
	defer s.Close()

	runCtx, cancelRun := context.WithCancel(context.Background())
	defer cancelRun()
	tRun, err := s.Submit(serve.Request{ID: "run", Prompt: []int{1}, MaxTokens: 2000, Seed: 1, Ctx: runCtx})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := <-tRun.Tokens(); !ok {
		t.Fatal("running request emitted no token")
	}

	dead, cancelDead := context.WithCancel(context.Background())
	cancelDead()
	tDead, err := s.Submit(serve.Request{ID: "dead", Prompt: []int{2, 3}, MaxTokens: 8, Seed: 2, Ctx: dead})
	if err != nil {
		t.Fatal(err)
	}
	res := tDead.Wait() // resolves while the slot is still busy
	if res.FinishReason != serve.FinishCancelled || len(res.Tokens) != 0 {
		t.Fatalf("queued-cancelled request: reason=%s tokens=%d", res.FinishReason, len(res.Tokens))
	}

	expired, cancelExp := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	defer cancelExp()
	tExp, err := s.Submit(serve.Request{ID: "late", Prompt: []int{4}, MaxTokens: 8, Seed: 3, Ctx: expired})
	if err != nil {
		t.Fatal(err)
	}
	if res := tExp.Wait(); res.FinishReason != serve.FinishDeadline {
		t.Fatalf("expired queued request finished with %s, want %s", res.FinishReason, serve.FinishDeadline)
	}

	cancelRun()
	tRun.Wait()
	st := s.Stats()
	if st.Cancelled != 2 || st.DeadlineExceeded != 1 {
		t.Fatalf("stats cancelled=%d deadline=%d, want 2 and 1", st.Cancelled, st.DeadlineExceeded)
	}
}

package serve_test

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/infer"
	"repro/internal/model"
	"repro/internal/parallel"
	"repro/internal/serve"
)

func testModel() *model.Model { return model.New(model.Tiny(), 1) }

// mixedRequests builds a deterministic skewed workload: prompt lengths
// 1..4, token budgets 1..13, greedy and sampled temperatures, and a stop
// token on every third request.
func mixedRequests(vocab, n int) []serve.Request {
	rng := rand.New(rand.NewSource(17))
	reqs := make([]serve.Request, n)
	for i := range reqs {
		prompt := make([]int, 1+rng.Intn(4))
		for j := range prompt {
			prompt[j] = rng.Intn(vocab)
		}
		temp := 0.9
		if i%4 == 0 {
			temp = 0 // greedy lanes mixed in with sampled lanes
		}
		reqs[i] = serve.Request{
			ID:          fmt.Sprintf("req-%d", i),
			Prompt:      prompt,
			MaxTokens:   1 + (i*5)%13,
			Temperature: temp,
			Seed:        int64(100 + i),
		}
		if i%3 == 2 {
			reqs[i].Stop = []int{rng.Intn(vocab)}
		}
	}
	return reqs
}

func assertResultsEqual(t *testing.T, label string, got, want serve.Result) {
	t.Helper()
	if got.ID != want.ID || got.FinishReason != want.FinishReason {
		t.Fatalf("%s: got (%s, %s), want (%s, %s)", label, got.ID, got.FinishReason, want.ID, want.FinishReason)
	}
	if len(got.Tokens) != len(want.Tokens) {
		t.Fatalf("%s: %d tokens, want %d", label, len(got.Tokens), len(want.Tokens))
	}
	for j := range want.Tokens {
		if got.Tokens[j] != want.Tokens[j] {
			t.Fatalf("%s: token %d = %d, want %d", label, j, got.Tokens[j], want.Tokens[j])
		}
	}
}

// TestSchedulerMatchesSequential is the determinism contract: at every
// slot count and worker count, each request's scheduled output is
// bit-identical to a sequential run on a fresh single session — admission
// order, slot assignment and co-scheduled traffic must not matter.
func TestSchedulerMatchesSequential(t *testing.T) {
	m := testModel()
	reqs := mixedRequests(m.Cfg.Vocab, 11)
	opts := serve.DefaultOptions()
	want := make([]serve.Result, len(reqs))
	for i, r := range reqs {
		want[i] = serve.Sequential(m, r, opts)
	}
	for _, slots := range []int{1, 2, 3, 8} {
		for _, workers := range []int{1, 4} {
			parallel.SetWorkers(workers)
			opts.Slots = slots
			s := serve.New(m, opts)
			got, err := s.GenerateAll(reqs)
			s.Close()
			parallel.SetWorkers(0)
			if err != nil {
				t.Fatalf("slots=%d workers=%d: %v", slots, workers, err)
			}
			for i := range want {
				assertResultsEqual(t, fmt.Sprintf("slots=%d workers=%d req %d", slots, workers, i), got[i], want[i])
			}
		}
	}
}

// TestSchedulerMidFlightAdmission drives the scheduler from concurrent
// submitters while long requests are in flight, so admissions land
// mid-decode; every request must still match its sequential reference.
// Run with -race this also exercises the Submit/loop synchronization.
func TestSchedulerMidFlightAdmission(t *testing.T) {
	m := testModel()
	opts := serve.DefaultOptions()
	opts.Slots = 2
	reqs := mixedRequests(m.Cfg.Vocab, 12)
	for i := range reqs {
		// Long budgets keep slots busy so later submissions are admitted
		// mid-flight.
		reqs[i].MaxTokens = 8 + i%9
	}
	// Compute the references with concurrent Sequential calls: each runs
	// on its own model view, so this is race-free by contract.
	want := make([]serve.Result, len(reqs))
	var refWG sync.WaitGroup
	for i, r := range reqs {
		refWG.Add(1)
		go func(i int, r serve.Request) {
			defer refWG.Done()
			want[i] = serve.Sequential(m, r, opts)
		}(i, r)
	}
	refWG.Wait()
	s := serve.New(m, opts)
	defer s.Close()
	results := make([]serve.Result, len(reqs))
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(reqs); i += 4 {
				ticket, err := s.Submit(reqs[i])
				if err != nil {
					t.Error(err)
					return
				}
				results[i] = ticket.Wait()
			}
		}(g)
	}
	wg.Wait()
	for i := range want {
		assertResultsEqual(t, fmt.Sprintf("req %d", i), results[i], want[i])
	}
}

// TestSchedulerPrefillChunkMatchesSequential: the admission chunk size is
// a scheduling knob, not a semantic one — requests with prompts longer
// than several chunks decode bit-identically at every chunk size, worker
// count and slot count, including against a Sequential reference using a
// different chunk size.
func TestSchedulerPrefillChunkMatchesSequential(t *testing.T) {
	m := testModel()
	rng := rand.New(rand.NewSource(29))
	reqs := make([]serve.Request, 8)
	for i := range reqs {
		// Long prompts (up to 20 tokens on a 32-token context) so small
		// chunks take many ticks to admit while other slots decode.
		prompt := make([]int, 9+rng.Intn(12))
		for j := range prompt {
			prompt[j] = rng.Intn(m.Cfg.Vocab)
		}
		reqs[i] = serve.Request{
			ID:          fmt.Sprintf("req-%d", i),
			Prompt:      prompt,
			MaxTokens:   1 + i%5,
			Temperature: float64(i%2) * 0.8,
			Seed:        int64(40 + i),
		}
	}
	want := make([]serve.Result, len(reqs))
	for i, r := range reqs {
		want[i] = serve.Sequential(m, r, serve.DefaultOptions())
	}
	for _, chunk := range []int{1, 3, 16} {
		for _, workers := range []int{1, 4} {
			parallel.SetWorkers(workers)
			opts := serve.DefaultOptions()
			opts.Slots = 3
			opts.PrefillChunk = chunk
			s := serve.New(m, opts)
			got, err := s.GenerateAll(reqs)
			s.Close()
			parallel.SetWorkers(0)
			if err != nil {
				t.Fatalf("chunk=%d workers=%d: %v", chunk, workers, err)
			}
			for i := range want {
				assertResultsEqual(t, fmt.Sprintf("chunk=%d workers=%d req %d", chunk, workers, i), got[i], want[i])
			}
		}
	}
}

// TestSchedulerTTFTStats: completed prefills populate the
// time-to-first-token percentiles, and a failed prefill (empty prompt)
// contributes no sample.
func TestSchedulerTTFTStats(t *testing.T) {
	m := testModel()
	s := serve.New(m, serve.DefaultOptions())
	defer s.Close()
	reqs := mixedRequests(m.Cfg.Vocab, 5)
	reqs = append(reqs, serve.Request{ID: "empty", MaxTokens: 2, Seed: 1})
	if _, err := s.GenerateAll(reqs); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.TTFTSamples != 5 {
		t.Fatalf("TTFTSamples = %d, want 5 (failed prefill must not count)", st.TTFTSamples)
	}
	if st.TTFTp50 <= 0 || st.TTFTp99 < st.TTFTp50 {
		t.Fatalf("TTFT percentiles p50=%v p99=%v", st.TTFTp50, st.TTFTp99)
	}
	if st.PrefillChunk <= 0 {
		t.Fatalf("PrefillChunk = %d", st.PrefillChunk)
	}
}

// TestSchedulerStopToken: generation halts at the stop token, which is not
// emitted.
func TestSchedulerStopToken(t *testing.T) {
	m := testModel()
	opts := serve.DefaultOptions()
	base := serve.Request{ID: "s", Prompt: []int{3, 1}, MaxTokens: 10, Seed: 5}
	free := serve.Sequential(m, base, opts)
	if len(free.Tokens) != 10 {
		t.Fatalf("unrestricted run generated %d tokens", len(free.Tokens))
	}
	stopAt := 3
	stopped := base
	stopped.Stop = []int{free.Tokens[stopAt]}
	// The chosen stop token must not appear earlier in the stream, or the
	// prefix assertion below would be vacuous.
	for _, tok := range free.Tokens[:stopAt] {
		if tok == stopped.Stop[0] {
			t.Skip("stop token repeats earlier in the greedy stream")
		}
	}
	s := serve.New(m, opts)
	defer s.Close()
	got, err := s.GenerateAll([]serve.Request{stopped})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].FinishReason != serve.FinishStop {
		t.Fatalf("finish = %s, want stop", got[0].FinishReason)
	}
	if len(got[0].Tokens) != stopAt {
		t.Fatalf("stopped after %d tokens, want %d", len(got[0].Tokens), stopAt)
	}
	for j, tok := range got[0].Tokens {
		if tok != free.Tokens[j] {
			t.Fatalf("token %d = %d, want %d", j, tok, free.Tokens[j])
		}
	}
}

// TestSchedulerEOS: the configured EOS token ends the request with
// FinishEOS and is not emitted.
func TestSchedulerEOS(t *testing.T) {
	m := testModel()
	opts := serve.DefaultOptions()
	base := serve.Request{ID: "e", Prompt: []int{2, 7}, MaxTokens: 12, Seed: 9}
	free := serve.Sequential(m, base, opts)
	cut := 2
	opts.EOS = free.Tokens[cut]
	for _, tok := range free.Tokens[:cut] {
		if tok == opts.EOS {
			t.Skip("eos token repeats earlier in the greedy stream")
		}
	}
	got := serve.Sequential(m, base, opts)
	if got.FinishReason != serve.FinishEOS {
		t.Fatalf("finish = %s, want eos", got.FinishReason)
	}
	if len(got.Tokens) != cut {
		t.Fatalf("generated %d tokens before EOS, want %d", len(got.Tokens), cut)
	}
	s := serve.New(m, opts)
	defer s.Close()
	sched, err := s.GenerateAll([]serve.Request{base})
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, "eos", sched[0], got)
}

// TestSchedulerEmptyPromptAndContext: an empty prompt surfaces
// infer.ErrEmptyPrompt as a per-request error result; a prompt that nearly
// fills the context window finishes with FinishContext after the last
// position is consumed — neither disturbs a co-scheduled healthy request.
func TestSchedulerEmptyPromptAndContext(t *testing.T) {
	m := testModel()
	maxSeq := m.Cfg.MaxSeq
	long := make([]int, maxSeq-2)
	for i := range long {
		long[i] = 1 + i%(m.Cfg.Vocab-1)
	}
	reqs := []serve.Request{
		{ID: "empty", MaxTokens: 4, Seed: 1},
		{ID: "long", Prompt: long, MaxTokens: maxSeq, Seed: 2},
		{ID: "ok", Prompt: []int{1, 2}, MaxTokens: 4, Seed: 3},
	}
	opts := serve.DefaultOptions()
	opts.Slots = 3
	s := serve.New(m, opts)
	defer s.Close()
	got, err := s.GenerateAll(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].FinishReason != serve.FinishError || !errors.Is(got[0].Err, infer.ErrEmptyPrompt) {
		t.Fatalf("empty prompt: finish=%s err=%v", got[0].FinishReason, got[0].Err)
	}
	if got[1].FinishReason != serve.FinishContext {
		t.Fatalf("long prompt: finish=%s, want context", got[1].FinishReason)
	}
	// Prefill leaves pos = maxSeq-2; tokens are emitted until the feed
	// position is exhausted: maxSeq - len(prompt) + 1 of them.
	if want := maxSeq - len(long) + 1; len(got[1].Tokens) != want {
		t.Fatalf("long prompt emitted %d tokens, want %d", len(got[1].Tokens), want)
	}
	assertResultsEqual(t, "healthy co-scheduled request", got[2], serve.Sequential(m, reqs[2], serve.DefaultOptions()))
}

// TestSchedulerKVQuantMatchesSequential: the determinism contract holds
// with a quantized KV cache too.
func TestSchedulerKVQuantMatchesSequential(t *testing.T) {
	m := testModel()
	opts := serve.DefaultOptions()
	opts.Slots = 2
	opts.KVQuantBits = 4
	reqs := mixedRequests(m.Cfg.Vocab, 6)
	s := serve.New(m, opts)
	defer s.Close()
	got, err := s.GenerateAll(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range reqs {
		assertResultsEqual(t, fmt.Sprintf("req %d", i), got[i], serve.Sequential(m, r, opts))
	}
}

// TestSchedulerCloseDrainsAndRejects: Close resolves every outstanding
// ticket before returning and Submit afterwards reports ErrClosed.
func TestSchedulerCloseDrainsAndRejects(t *testing.T) {
	m := testModel()
	opts := serve.DefaultOptions()
	opts.Slots = 2
	s := serve.New(m, opts)
	reqs := mixedRequests(m.Cfg.Vocab, 7)
	tickets := make([]*serve.Ticket, len(reqs))
	for i, r := range reqs {
		ticket, err := s.Submit(r)
		if err != nil {
			t.Fatal(err)
		}
		tickets[i] = ticket
	}
	s.Close()
	for i, ticket := range tickets {
		select {
		case res := <-ticket.Done():
			if res.FinishReason == "" {
				t.Fatalf("ticket %d resolved without a finish reason", i)
			}
		default:
			t.Fatalf("ticket %d not resolved after Close", i)
		}
	}
	if _, err := s.Submit(reqs[0]); !errors.Is(err, serve.ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	s.Close() // idempotent
	st := s.Stats()
	if st.Submitted != int64(len(reqs)) || st.Completed != int64(len(reqs)) {
		t.Fatalf("stats submitted=%d completed=%d, want %d each", st.Submitted, st.Completed, len(reqs))
	}
	if st.Active != 0 || st.Queued != 0 {
		t.Fatalf("drained scheduler reports active=%d queued=%d", st.Active, st.Queued)
	}
	if st.GeneratedTokens <= 0 || st.KVCacheBytes <= 0 {
		t.Fatalf("stats tokens=%d kvbytes=%d, want positive", st.GeneratedTokens, st.KVCacheBytes)
	}
}

// HTTP surface of the serving stack: the request/response wire types and
// the handler that binds a Scheduler to POST /v1/generate, GET /v1/stats
// and GET /healthz. Extracted from cmd/aptq-serve so the multi-replica
// router (internal/router) and the in-process multi-replica tests can run
// real replica servers without forking processes: a replica is exactly
// this handler over its own Scheduler, whether it lives behind
// aptq-serve's listener or an httptest server.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/data"
	"repro/internal/model"
)

// GenerateRequest is the JSON body of POST /v1/generate. Exactly one of
// Prompt (whitespace-tokenized words of the synthetic vocabulary) or
// Tokens (raw ids) supplies the prompt.
type GenerateRequest struct {
	ID          string  `json:"id,omitempty"`
	Prompt      string  `json:"prompt,omitempty"`
	Tokens      []int   `json:"tokens,omitempty"`
	MaxTokens   int     `json:"max_tokens"`
	Temperature float64 `json:"temperature"`
	Seed        int64   `json:"seed"`
	Stop        []int   `json:"stop,omitempty"`
	// Stream switches the reply to Server-Sent Events (same as ?stream=1):
	// one event per generated token, then a final event with the complete
	// response. Streaming never changes the generated tokens.
	Stream bool `json:"stream,omitempty"`
	// Priority orders admission under contention (higher first); it never
	// affects the reply's content.
	Priority int `json:"priority,omitempty"`
	// DeadlineMs bounds the request's total latency: past the deadline the
	// scheduler stops decoding, frees the slot, and the reply carries
	// finish_reason "deadline_exceeded" with the tokens generated so far.
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
}

// GenerateResponse is the JSON reply of POST /v1/generate (and the payload
// of a stream's final event).
type GenerateResponse struct {
	ID           string `json:"id,omitempty"`
	Tokens       []int  `json:"tokens"`
	Text         string `json:"text"`
	FinishReason string `json:"finish_reason"`
	Error        string `json:"error,omitempty"`
}

// StreamEvent is one per-token SSE event of a streaming generate. Index is
// the token's position in the generated sequence — the field the router's
// failover resume dedups on when it replays a broken stream on another
// replica.
type StreamEvent struct {
	Token int    `json:"token"`
	Text  string `json:"text"`
	Index int    `json:"index"`
}

// Server binds a Scheduler to the HTTP surface. Construct with NewServer;
// Handler returns the mux aptq-serve (or an httptest replica) listens on.
type Server struct {
	m        *model.Model
	vocab    *data.Vocabulary
	sched    *Scheduler
	draining atomic.Bool  // set before Drain; /healthz reports 503
	panics   atomic.Int64 // handler panics caught by the recover middleware
}

// NewServer builds a Server over a fresh Scheduler on m.
func NewServer(m *model.Model, opts Options) *Server {
	return &Server{m: m, vocab: data.NewVocabulary(m.Cfg.Vocab), sched: New(m, opts)}
}

// Scheduler exposes the underlying scheduler (stats, drain, close).
func (s *Server) Scheduler() *Scheduler { return s.sched }

// Model returns the served model.
func (s *Server) Model() *model.Model { return s.m }

// Vocab returns the synthetic vocabulary the text-prompt path encodes
// with.
func (s *Server) Vocab() *data.Vocabulary { return s.vocab }

// SetDraining flips the /healthz readiness signal: a draining server
// reports 503 so load balancers (and the router's health prober) stop
// routing to it ahead of a graceful shutdown. It does not by itself stop
// the scheduler — callers pair it with Scheduler().Drain / DrainFor.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Draining reports the /healthz readiness state.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close drains and closes the underlying scheduler.
func (s *Server) Close() { s.sched.Close() }

// Handler returns the HTTP mux: POST /v1/generate, GET /v1/stats,
// GET /healthz. Every route runs under the panic-isolation middleware:
// a handler panic is confined to its own request — 500 to that client,
// the `panics` stat bumped — and never takes down the listener or any
// concurrent request.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/generate", s.handleGenerate)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealth)
	return s.recovered(mux)
}

// recovered wraps h so a panic in any handler is caught, counted, and
// answered with a 500 instead of crashing the process. If the handler
// already wrote its status line (e.g. a panic mid-stream), the recovery
// can only close the connection — net/http does that when the handler
// returns after a partial write without Content-Length.
func (s *Server) recovered(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.panics.Add(1)
				httpError(w, http.StatusInternalServerError, "internal error: %v", rec)
			}
		}()
		h.ServeHTTP(w, r)
	})
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req GenerateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad json: %v", err)
		return
	}
	prompt := req.Tokens
	if req.Prompt != "" {
		if len(prompt) != 0 {
			httpError(w, http.StatusBadRequest, "give either prompt or tokens, not both")
			return
		}
		ids, err := s.vocab.Encode(strings.Fields(req.Prompt))
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		prompt = ids
	}
	if len(prompt) == 0 {
		httpError(w, http.StatusBadRequest, "empty prompt")
		return
	}
	for _, tok := range append(append([]int{}, prompt...), req.Stop...) {
		if tok < 0 || tok >= s.m.Cfg.Vocab {
			httpError(w, http.StatusBadRequest, "token %d outside vocabulary [0,%d)", tok, s.m.Cfg.Vocab)
			return
		}
	}
	if len(prompt) > s.m.Cfg.MaxSeq {
		httpError(w, http.StatusBadRequest, "prompt of %d tokens exceeds context %d", len(prompt), s.m.Cfg.MaxSeq)
		return
	}
	maxTokens := req.MaxTokens
	if maxTokens <= 0 {
		maxTokens = 16
	}
	// The request context carries both cancellation signals: the client
	// disconnecting (r.Context) and the optional per-request deadline.
	// Either one cancels decoding at the next scheduler tick, freeing the
	// slot instead of decoding the abandoned request to its budget.
	ctx := r.Context()
	if req.DeadlineMs > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineMs)*time.Millisecond)
		defer cancel()
	}
	ticket, err := s.sched.Submit(Request{
		ID:          req.ID,
		Prompt:      prompt,
		MaxTokens:   maxTokens,
		Temperature: req.Temperature,
		Seed:        req.Seed,
		Stop:        req.Stop,
		Ctx:         ctx,
		Priority:    req.Priority,
	})
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrOverBudget):
		// Shed load with an explicit retry hint: a full queue drains within
		// about a tick's worth of completions, so "1" second is an honest
		// earliest-retry for well-behaved clients (the router relays it).
		// An over-budget request can never be admitted, but the same hint
		// keeps the shed path uniform for clients that resubmit smaller.
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "%v", err)
		return
	case err != nil:
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	if req.Stream || r.URL.Query().Get("stream") == "1" {
		s.streamGenerate(w, ticket)
		return
	}
	// The ticket always resolves — on completion, or within one tick of the
	// context dying — so a plain wait cannot leak the handler.
	res := ticket.Wait()
	if res.Err != nil {
		httpError(w, http.StatusInternalServerError, "%v", res.Err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.response(res))
}

// response renders a scheduler result as the generate reply body.
func (s *Server) response(res Result) GenerateResponse {
	tokens := res.Tokens
	if tokens == nil {
		tokens = []int{}
	}
	out := GenerateResponse{
		ID:           res.ID,
		Tokens:       tokens,
		Text:         s.vocab.Decode(tokens),
		FinishReason: string(res.FinishReason),
	}
	if res.Err != nil {
		out.Error = res.Err.Error()
	}
	return out
}

// streamGenerate writes the SSE form of a generate reply: one `data:`
// event per token as the scheduler decodes it, then a final `data:` event
// whose payload is byte-identical to the non-streaming response body —
// so a client (or the CI smoke test) can assemble the stream and check it
// against the plain reply.
func (s *Server) streamGenerate(w http.ResponseWriter, ticket *Ticket) {
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	flusher, _ := w.(http.Flusher)
	i := 0
	for tok := range ticket.Tokens() {
		b, _ := json.Marshal(StreamEvent{Token: tok, Text: s.vocab.Word(tok), Index: i})
		fmt.Fprintf(w, "data: %s\n\n", b)
		if flusher != nil {
			flusher.Flush()
		}
		i++
	}
	res := ticket.Wait()
	b, _ := json.Marshal(s.response(res))
	fmt.Fprintf(w, "data: %s\n\n", b)
	if flusher != nil {
		flusher.Flush()
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.sched.Stats()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"slots":            st.Slots,
		"active":           st.Active,
		"queued":           st.Queued,
		"submitted":        st.Submitted,
		"completed":        st.Completed,
		"prompt_tokens":    st.PromptTokens,
		"generated_tokens": st.GeneratedTokens,
		"kv_cache_bytes":   st.KVCacheBytes,
		// Paged-KV accounting: unique bytes count every in-use page once
		// however many slots and cache entries share it; logical bytes are
		// what the same references would cost without sharing (the memcpy
		// memory model); sharing_ratio = logical/unique; pages the unique
		// in-use page count.
		"kv_unique_bytes":  st.KVUniqueBytes,
		"kv_logical_bytes": st.KVLogicalBytes,
		"kv_pages":         st.KVPages,
		"kv_sharing_ratio": st.KVSharingRatio(),
		"prefill_chunk":    st.PrefillChunk,
		"ttft_count":       st.TTFTSamples,
		"ttft_p50_ms":      float64(st.TTFTp50) / float64(time.Millisecond),
		"ttft_p99_ms":      float64(st.TTFTp99) / float64(time.Millisecond),
		// Inter-token latency: the gap between consecutively streamed
		// tokens of a request — the cadence an interactive client sees.
		"itl_count":  st.ITLSamples,
		"itl_p50_ms": float64(st.ITLp50) / float64(time.Millisecond),
		"itl_p99_ms": float64(st.ITLp99) / float64(time.Millisecond),
		// Admission-control counters: requests finished by context
		// cancellation / deadline expiry, Submits shed with 429 under the
		// -max-queue bound, drains that expired their timeout, and whether
		// the scheduler is draining (1/0).
		"cancelled":         st.Cancelled,
		"deadline_exceeded": st.DeadlineExceeded,
		"rejected":          st.Rejected,
		"drain_timeouts":    st.DrainTimeouts,
		"max_queue":         st.MaxQueue,
		"draining":          boolToInt(st.Draining),
		// Prefix/KV cache counters (all zero unless -prefix-cache is set):
		// hits/misses count admissions whose prompt did/did not start with a
		// cached chunk, hit_rate their ratio, hit_tokens the prompt tokens
		// whose prefill was skipped, bytes/entries the current residency and
		// evictions the entries dropped under byte pressure.
		"prefix_cache_hits":       st.PrefixCacheHits,
		"prefix_cache_misses":     st.PrefixCacheMisses,
		"prefix_cache_hit_rate":   st.PrefixCacheHitRate(),
		"prefix_cache_hit_tokens": st.PrefixCacheHitTokens,
		"prefix_cache_bytes":      st.PrefixCacheBytes,
		"prefix_cache_entries":    st.PrefixCacheEntries,
		"prefix_cache_evictions":  st.PrefixCacheEvictions,
		// Memory-pressure counters (all zero unless -kv-budget-mb bounds the
		// pool): preemptions is slots evicted mid-decode to unstarve others,
		// admission_deferred is queue entries skipped for lack of page
		// headroom, kv_budget_bytes the configured bound (0 = unbounded) and
		// kv_high_water_bytes the pool's peak residency — never above the
		// budget, the invariant the pressure tests pin. panics counts
		// recovered per-request panics (scheduler slots + HTTP handlers).
		"preemptions":         st.Preemptions,
		"admission_deferred":  st.AdmissionDeferred,
		"panics":              st.Panics + s.panics.Load(),
		"kv_budget_bytes":     st.KVBudgetBytes,
		"kv_high_water_bytes": st.KVHighWaterBytes,
	})
}

// boolToInt renders a flag as 0/1 so /v1/stats stays a flat numeric map
// (clients decode it into map[string]float64).
func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	status, code := "ok", http.StatusOK
	if s.draining.Load() {
		// Unhealthy while draining, so load balancers stop routing here
		// during a graceful redeploy. Retry-After tells pollers when to
		// probe again.
		status, code = "draining", http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status": status,
		"model":  s.m.Cfg.Name,
		"vocab":  s.m.Cfg.Vocab,
		"maxseq": s.m.Cfg.MaxSeq,
	})
}

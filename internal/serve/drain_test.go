package serve_test

import (
	"errors"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/serve"
)

// TestDrainForGraceful: with room in the timeout, DrainFor behaves exactly
// like Drain — everything finishes on its own, no force-closures, no
// DrainTimeouts counted.
func TestDrainForGraceful(t *testing.T) {
	m := model.New(model.Tiny(), 1)
	opts := serve.DefaultOptions()
	opts.Slots = 2
	s := serve.New(m, opts)
	defer s.Close()

	tickets := make([]*serve.Ticket, 4)
	for i := range tickets {
		tk, err := s.Submit(serve.Request{ID: "g", Prompt: []int{1, 2}, MaxTokens: 4, Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		tickets[i] = tk
	}
	if !s.DrainFor(30 * time.Second) {
		t.Fatal("graceful drain reported a timeout")
	}
	for _, tk := range tickets {
		if res := tk.Wait(); res.FinishReason != serve.FinishLength {
			t.Fatalf("drained request finished %q (%v), want length", res.FinishReason, res.Err)
		}
	}
	if st := s.Stats(); st.DrainTimeouts != 0 || !st.Draining {
		t.Fatalf("after graceful drain: timeouts=%d draining=%v", st.DrainTimeouts, st.Draining)
	}
	// Draining schedulers admit nothing new.
	if _, err := s.Submit(serve.Request{Prompt: []int{1}, MaxTokens: 1}); !errors.Is(err, serve.ErrDraining) {
		t.Fatalf("post-drain Submit: %v, want ErrDraining", err)
	}
}

// TestDrainForTimeoutForceCloses: a drain whose deadline expires with work
// still queued and in flight force-closes everything — every ticket still
// resolves (with FinishError / ErrDrainTimeout), the scheduler empties,
// and Stats reports the expired drain. A wedged or oversubscribed shutdown
// is bounded by the timeout instead of hanging SIGTERM forever.
func TestDrainForTimeoutForceCloses(t *testing.T) {
	m := model.New(model.Tiny(), 1)
	opts := serve.DefaultOptions()
	opts.Slots = 1 // one slot + deep queue: the drain cannot finish in time
	s := serve.New(m, opts)
	defer s.Close()

	// Enough long requests that the grace period cannot possibly complete
	// them all: a nanosecond is spent acquiring the scheduler lock alone,
	// while the queued work is hundreds of microseconds of decode.
	tickets := make([]*serve.Ticket, 8)
	for i := range tickets {
		tk, err := s.Submit(serve.Request{ID: "f", Prompt: []int{1, 2, 3}, MaxTokens: m.Cfg.MaxSeq - 4, Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		tickets[i] = tk
	}
	if s.DrainFor(time.Nanosecond) {
		t.Fatal("overloaded drain reported graceful completion")
	}
	forced := 0
	for _, tk := range tickets {
		res := tk.Wait()
		if res.FinishReason == serve.FinishError {
			if !errors.Is(res.Err, serve.ErrDrainTimeout) {
				t.Fatalf("force-closed request carries %v, want ErrDrainTimeout", res.Err)
			}
			forced++
		}
	}
	if forced == 0 {
		t.Fatal("no request was force-closed by the expired drain")
	}
	st := s.Stats()
	if st.DrainTimeouts != 1 {
		t.Fatalf("DrainTimeouts = %d, want 1", st.DrainTimeouts)
	}
	if st.Active != 0 || st.Queued != 0 {
		t.Fatalf("scheduler not empty after forced drain: active=%d queued=%d", st.Active, st.Queued)
	}
}

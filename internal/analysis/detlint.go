package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DetLint flags nondeterminism sources inside the bit-identity packages.
//
// The serving stack's north-star invariant is that output is bit-identical
// to Sequential at any slot/worker count; that dies the moment a value on
// the forward/decode path depends on map iteration order, the wall clock,
// the global RNG, or a goroutine raced outside the parallel substrate.
// The checks:
//
//  1. `range` over a map whose body's effects escape the loop (writes to
//     outer state, returns, sends) — unless the loop only collects keys or
//     values into a slice that is sorted before use (the sanctioned
//     collect-then-sort idiom).
//  2. Wall-clock reads (time.Now/Since/Until/After/Tick/NewTimer/
//     NewTicker/AfterFunc) outside functions annotated //aptq:wallclock —
//     the scheduler's TTFT/ITL stamps are the legitimate allowlist.
//  3. Calls to math/rand's (and math/rand/v2's) package-level functions,
//     which draw from the shared, randomly-seeded global source. Seeded
//     streams (rand.New(rand.NewSource(seed)) and *rand.Rand methods) are
//     deterministic and pass.
//  4. `go` statements: goroutines belong in internal/parallel, whose
//     fork-join shape is what keeps the fan-out schedule-independent.
//
// Only packages whose import path contains one of the bit-identity
// segments (tensor, quant, nn, model, infer, serve, router) are checked, and
// internal/parallel itself is exempt from the goroutine rule. Test files
// are skipped: tests may freely race goroutines and read clocks.
var DetLint = &Analyzer{
	Name: "detlint",
	Doc:  "flag nondeterminism sources (map-range effects, wall clock, global RNG, goroutines) in bit-identity packages",
	Run:  runDetLint,
}

// detPackages are the path segments naming the packages under the
// bit-identity contract.
var detPackages = map[string]bool{
	"tensor": true,
	"quant":  true,
	"nn":     true,
	"model":  true,
	"infer":  true,
	"serve":  true,
	// The router is upstream of the bit-identity contract rather than
	// inside it, but its failover correctness *rests* on it — and its own
	// reply bytes must not depend on probe timing or unseeded randomness,
	// so it (and its chaos fault injector) submit to the same checks.
	"router": true,
}

// wallClockFuncs are the time-package functions that read the wall clock
// (or schedule against it).
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

func detLintApplies(path string) bool {
	if hasPathSuffix(path, "internal/parallel") {
		return false
	}
	for _, seg := range pathSegments(path) {
		if detPackages[seg] {
			return true
		}
	}
	return false
}

func runDetLint(pass *Pass) error {
	if !detLintApplies(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		d := &detLinter{pass: pass}
		ast.Inspect(f, d.visit)
	}
	return nil
}

type detLinter struct {
	pass *Pass
}

func (d *detLinter) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.BlockStmt:
		d.checkStmtList(n.List)
	case *ast.CaseClause:
		d.checkStmtList(n.Body)
	case *ast.CommClause:
		d.checkStmtList(n.Body)
	case *ast.GoStmt:
		d.pass.Reportf(n.Pos(),
			"go statement in a bit-identity package: goroutines belong in internal/parallel, whose fork-join fan-out keeps output schedule-independent")
	case *ast.CallExpr:
		d.checkCall(n)
	}
	return true
}

// checkCall flags wall-clock reads and global-RNG draws.
func (d *detLinter) checkCall(call *ast.CallExpr) {
	fn := calleeFunc(d.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	// Methods (e.g. (*rand.Rand).Float64, (time.Time).Sub) operate on an
	// explicitly owned value and are deterministic given it; only
	// package-level functions reach shared nondeterministic state.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClockFuncs[fn.Name()] && !d.inWallclockFunc(call.Pos()) {
			d.pass.Reportf(call.Pos(),
				"time.%s reads the wall clock in a bit-identity package; annotate the enclosing function //aptq:wallclock if the timestamp never reaches decoded output", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		// Constructing a seeded stream is deterministic; drawing from the
		// package-level (randomly seeded, shared) source is not.
		if fn.Name() == "New" || fn.Name() == "NewSource" || fn.Name() == "NewPCG" || fn.Name() == "NewChaCha8" || fn.Name() == "NewZipf" {
			return
		}
		d.pass.Reportf(call.Pos(),
			"%s.%s draws from the global RNG; use an explicitly seeded *rand.Rand so the stream is reproducible", fn.Pkg().Path(), fn.Name())
	}
}

// inWallclockFunc reports whether pos sits inside a function whose doc
// carries //aptq:wallclock.
func (d *detLinter) inWallclockFunc(pos token.Pos) bool {
	fd := enclosingFuncDecl(d.pass.Files, pos)
	return fd != nil && hasDirective(fd.Doc, directiveWallclock)
}

// checkStmtList looks for map-range loops in a statement list, keeping the
// trailing statements so the collect-then-sort idiom can be recognized.
func (d *detLinter) checkStmtList(list []ast.Stmt) {
	for i, st := range list {
		if lab, ok := st.(*ast.LabeledStmt); ok {
			st = lab.Stmt
		}
		rs, ok := st.(*ast.RangeStmt)
		if !ok {
			continue
		}
		t := d.pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			continue
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			continue
		}
		d.checkMapRange(rs, list[i+1:])
	}
}

// outerEffect is one way a map-range body's effects escape the loop.
type outerEffect struct {
	pos  token.Pos
	desc string
	// collectVar is non-nil when the effect is exactly `v = append(v, …)`
	// on a loop-outer slice v — the candidate collect-then-sort pattern.
	collectVar *types.Var
}

func (d *detLinter) checkMapRange(rs *ast.RangeStmt, after []ast.Stmt) {
	effects := d.bodyEffects(rs)
	if len(effects) == 0 {
		return
	}
	// The collect-then-sort idiom: every escaping effect appends to a
	// slice that a later statement in the same block sorts.
	allCollected := true
	for _, e := range effects {
		if e.collectVar == nil || !sortedAfter(d.pass.TypesInfo, after, e.collectVar) {
			allCollected = false
			break
		}
	}
	if allCollected {
		return
	}
	first := effects[0]
	for _, e := range effects {
		if e.collectVar == nil {
			first = e
			break
		}
	}
	d.pass.Reportf(rs.Pos(),
		"map iteration order is nondeterministic and this loop's effects escape it (%s); iterate sorted keys, or collect into a slice and sort it", first.desc)
}

// bodyEffects walks a map-range body collecting the effects that escape
// the loop.
func (d *detLinter) bodyEffects(rs *ast.RangeStmt) []outerEffect {
	info := d.pass.TypesInfo
	var effects []outerEffect
	isOuter := func(e ast.Expr) *types.Var {
		id := rootIdent(e)
		if id == nil {
			return nil
		}
		obj, _ := info.Uses[id].(*types.Var)
		if obj == nil {
			if def, ok := info.Defs[id].(*types.Var); ok {
				obj = def
			}
		}
		if obj == nil {
			return nil
		}
		if obj.Pos() >= rs.Pos() && obj.Pos() <= rs.End() {
			return nil // declared by / inside the loop
		}
		return obj
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for li, lhs := range n.Lhs {
				v := isOuter(lhs)
				if v == nil {
					continue
				}
				e := outerEffect{pos: n.Pos(), desc: fmt.Sprintf("writes %s declared outside the loop", v.Name())}
				if id, ok := lhs.(*ast.Ident); ok && li < len(n.Rhs) {
					if cv := collectAppend(info, id, n.Rhs[li]); cv != nil {
						e.collectVar = cv
					}
				}
				effects = append(effects, e)
			}
		case *ast.IncDecStmt:
			if v := isOuter(n.X); v != nil {
				effects = append(effects, outerEffect{pos: n.Pos(), desc: fmt.Sprintf("updates %s declared outside the loop", v.Name())})
			}
		case *ast.SendStmt:
			effects = append(effects, outerEffect{pos: n.Pos(), desc: "sends on a channel in map order"})
		case *ast.ReturnStmt:
			effects = append(effects, outerEffect{pos: n.Pos(), desc: "returns from inside the iteration"})
		case *ast.CallExpr:
			// delete(m, k) / copy(dst, …) mutate their first argument.
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && len(n.Args) > 0 {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && (id.Name == "delete" || id.Name == "copy") {
					if v := isOuter(n.Args[0]); v != nil {
						effects = append(effects, outerEffect{pos: n.Pos(), desc: fmt.Sprintf("%ss into %s in map order", id.Name, v.Name())})
					}
				}
			}
		}
		return true
	})
	return effects
}

// collectAppend recognizes `v = append(v, …)` and returns v's object.
func collectAppend(info *types.Info, lhs *ast.Ident, rhs ast.Expr) *types.Var {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fn.Name != "append" {
		return nil
	}
	if _, isBuiltin := info.Uses[fn].(*types.Builtin); !isBuiltin {
		return nil
	}
	arg0, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok || arg0.Name != lhs.Name {
		return nil
	}
	v, _ := info.Uses[lhs].(*types.Var)
	return v
}

// sortedAfter reports whether any statement after the loop (in the same
// block) calls into package sort or slices with v among the call's
// arguments — the "then sort it" half of collect-then-sort.
func sortedAfter(info *types.Info, after []ast.Stmt, v *types.Var) bool {
	found := false
	for _, st := range after {
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
				return true
			}
			for _, arg := range call.Args {
				if id := rootIdent(arg); id != nil && info.Uses[id] == v {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// rootIdent returns the leftmost identifier of an lvalue-ish expression
// (x, x.f, x[i], *x, x.f[i].g → x).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

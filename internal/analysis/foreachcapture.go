package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ForEachCapture inspects the closures handed to internal/parallel's
// fork-join entry points (For, ForWorkers, ForEach, ForEachWorkers) for
// writes to captured state that are not index-disjoint.
//
// The substrate runs the closure concurrently from several goroutines, so
// the only writes that are safe by construction are ones whose destination
// is partitioned by the loop index: dst[i] = …, copy(dst[lo:hi], …), or
// anything addressed through a variable derived from the closure's own
// parameters. Everything else — a captured scalar accumulator, an
// unindexed captured slice, an append that moves the backing array, any
// map write — is a data race that -race only catches when the schedule
// cooperates, and a determinism hole even when it doesn't tear.
//
// The rule: a write inside the closure whose destination roots at a
// variable declared outside the closure is flagged unless the write is an
// element write whose index (or slice bounds) mentions at least one
// variable declared inside the closure — the parameters, or a loop
// variable derived from them. Map writes are flagged unconditionally:
// concurrent map writes fault regardless of key disjointness.
//
// Deliberate exceptions (a reduction into disjoint per-worker cells
// indexed by something the checker cannot see through) use
// //aptq:ignore foreachcapture <reason>.
var ForEachCapture = &Analyzer{
	Name: "foreachcapture",
	Doc:  "flag non-index-disjoint writes to captured variables in closures passed to internal/parallel",
	Run:  runForEachCapture,
}

// parallelForFuncs are the internal/parallel entry points that run their
// closure argument concurrently with an index-partitioned domain.
var parallelForFuncs = map[string]bool{
	"For":            true,
	"ForWorkers":     true,
	"ForEach":        true,
	"ForEachWorkers": true,
}

func runForEachCapture(pass *Pass) error {
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if !hasPathSuffix(fn.Pkg().Path(), "internal/parallel") || !parallelForFuncs[fn.Name()] {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					checkParallelClosure(pass, fn.Name(), lit)
				}
			}
			return true
		})
	}
	return nil
}

// checkParallelClosure walks one closure body flagging writes to captured
// destinations that are not partitioned by the closure's index domain.
func checkParallelClosure(pass *Pass, funcName string, lit *ast.FuncLit) {
	c := &captureChecker{pass: pass, funcName: funcName, lit: lit}
	ast.Inspect(lit.Body, c.visit)
}

type captureChecker struct {
	pass     *Pass
	funcName string
	lit      *ast.FuncLit
}

func (c *captureChecker) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			c.checkWrite(lhs)
		}
	case *ast.IncDecStmt:
		c.checkWrite(n.X)
	case *ast.CallExpr:
		// copy(dst, …) writes through its first argument.
		if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && len(n.Args) > 0 {
			if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && id.Name == "copy" {
				c.checkWrite(n.Args[0])
			}
		}
	}
	return true
}

// checkWrite classifies one write destination.
func (c *captureChecker) checkWrite(dst ast.Expr) {
	dst = ast.Unparen(dst)
	root := rootIdent(dst)
	if root == nil {
		return
	}
	v := c.objectOf(root)
	if v == nil || c.declaredInside(v) {
		return // blank, closure-local, or not a variable at all
	}
	// The destination roots at captured (or global) state.
	if ix, ok := dst.(*ast.IndexExpr); ok {
		if t := c.pass.TypesInfo.TypeOf(ix.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				c.pass.Reportf(dst.Pos(),
					"closure passed to parallel.%s writes captured map %s: concurrent map writes fault regardless of key disjointness",
					c.funcName, root.Name)
				return
			}
		}
		if c.mentionsLocal(ix.Index) {
			return // dst[i] with i derived from the closure's index domain
		}
		c.pass.Reportf(dst.Pos(),
			"closure passed to parallel.%s writes %s at an index that does not depend on the loop index: concurrent iterations race on the same element",
			c.funcName, root.Name)
		return
	}
	if se, ok := dst.(*ast.SliceExpr); ok {
		// copy(dst[lo:hi], …): disjoint when a bound tracks the domain.
		if (se.Low != nil && c.mentionsLocal(se.Low)) || (se.High != nil && c.mentionsLocal(se.High)) {
			return
		}
	}
	c.pass.Reportf(dst.Pos(),
		"closure passed to parallel.%s writes captured variable %s without index-disjoint access: concurrent iterations race",
		c.funcName, root.Name)
}

// objectOf resolves an identifier to its variable object.
func (c *captureChecker) objectOf(id *ast.Ident) *types.Var {
	if id.Name == "_" {
		return nil
	}
	if v, ok := c.pass.TypesInfo.Uses[id].(*types.Var); ok {
		return v
	}
	if v, ok := c.pass.TypesInfo.Defs[id].(*types.Var); ok {
		return v
	}
	return nil
}

// declaredInside reports whether the variable is declared within the
// closure (parameters included) — writes to those are private to one
// invocation.
func (c *captureChecker) declaredInside(v *types.Var) bool {
	return v.Pos() >= c.lit.Pos() && v.Pos() <= c.lit.End()
}

// mentionsLocal reports whether the expression references any variable
// declared inside the closure — the parameters (lo, hi, i) or anything
// derived from them, such as a for-loop variable. An index that mentions
// only captured state cannot partition the domain.
func (c *captureChecker) mentionsLocal(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		if v := c.objectOf(id); v != nil && c.declaredInside(v) {
			found = true
		}
		return true
	})
	return found
}

package analysis

import (
	"crypto/sha256"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
)

// unitConfig mirrors the JSON config cmd/go writes for a vet tool run on
// one package (the `-vettool=` protocol; the same schema x/tools
// unitchecker consumes). Unknown fields are ignored, so the decoder
// tolerates schema growth across Go releases.
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetxPayload is what one aptq-vet run persists for dependents: each
// analyzer's opaque fact blob for the analyzed package.
type vetxPayload struct {
	Facts map[string][]byte // analyzer name -> blob
}

// RunUnitchecker executes every registered analyzer on the single package
// described by the cfg file cmd/go passes, reading dependency facts from
// the vetx files of already-analyzed packages and writing this package's
// facts for dependents. It terminates the process: exit 0 when clean,
// 2 when diagnostics were reported (go vet surfaces stderr and fails the
// build), 1 on operational errors.
func RunUnitchecker(cfgPath string) {
	code, err := unitcheck(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aptq-vet: %v\n", err)
		os.Exit(1)
	}
	os.Exit(code)
}

func unitcheck(cfgPath string) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 0, err
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("parsing %s: %v", cfgPath, err)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	files, err = parseUnitFiles(fset, cfg.GoFiles)
	if err != nil {
		return 0, err
	}

	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		f, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(f)
	})
	info := newTypesInfo()
	conf := types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		GoVersion: cfg.GoVersion,
		Error:     func(error) {},
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			// Std-library packages with assembly/cgo shims may not
			// source-check; cmd/go asks us to treat that as success.
			if cfg.VetxOutput != "" {
				_ = writeVetx(cfg.VetxOutput, vetxPayload{Facts: map[string][]byte{}})
			}
			return 0, nil
		}
		return 0, fmt.Errorf("type-checking %s: %v", cfg.ImportPath, err)
	}

	depFacts := loadDepFacts(cfg.PackageVetx)
	payload := vetxPayload{Facts: make(map[string][]byte)}
	var diags []Diagnostic
	directives := parseDirectives(fset, files)
	for _, a := range All() {
		a := a
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			ReadFacts: func(dep string) []byte {
				if mapped, ok := cfg.ImportMap[dep]; ok {
					dep = mapped
				}
				if p, ok := depFacts[dep]; ok {
					return p.Facts[a.Name]
				}
				return nil
			},
			ReadAllFacts: func() [][]byte {
				var blobs [][]byte
				for _, p := range depFacts {
					if blob, ok := p.Facts[a.Name]; ok {
						blobs = append(blobs, blob)
					}
				}
				return blobs
			},
			ExportFacts: func(blob []byte) {
				payload.Facts[a.Name] = blob
			},
			directives: directives,
			diags:      &diags,
		}
		pass.reportMalformedIgnores()
		if err := a.Run(pass); err != nil {
			return 0, fmt.Errorf("%s: %s: %v", a.Name, cfg.ImportPath, err)
		}
	}

	if cfg.VetxOutput != "" {
		if err := writeVetx(cfg.VetxOutput, payload); err != nil {
			return 0, err
		}
	}
	if cfg.VetxOnly || len(diags) == 0 {
		return 0, nil
	}
	sortDiagnostics(diags)
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", d.Pos, d.Analyzer, d.Message)
	}
	return 2, nil
}

// loadDepFacts reads the vetx fact files of every dependency; missing or
// unreadable files degrade to "no facts" (the analyzers' conservative
// fallbacks take over) instead of failing the run.
func loadDepFacts(vetx map[string]string) map[string]*vetxPayload {
	out := make(map[string]*vetxPayload, len(vetx))
	for path, file := range vetx {
		f, err := os.Open(file)
		if err != nil {
			continue
		}
		var p vetxPayload
		err = gob.NewDecoder(f).Decode(&p)
		f.Close()
		if err != nil {
			continue
		}
		out[path] = &p
	}
	return out
}

func writeVetx(path string, p vetxPayload) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(f).Encode(p); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func parseUnitFiles(fset *token.FileSet, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// PrintVersion implements the -V=full handshake cmd/go uses to fingerprint
// a vet tool for its build cache: the reported line must change when the
// binary changes, so the executable's own hash is the version.
func PrintVersion(progname string) {
	data, err := os.ReadFile(exePath())
	if err != nil {
		fmt.Printf("%s version devel\n", progname)
		return
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, sha256.Sum256(data))
}

func exePath() string {
	p, err := os.Executable()
	if err != nil {
		return os.Args[0]
	}
	return p
}

// PrintFlags implements the -flags handshake: cmd/go asks the tool which
// flags it supports before forwarding any. aptq-vet keeps no tool flags —
// every analyzer always runs — so the set is empty.
func PrintFlags() {
	fmt.Println("[]")
}

package analysis

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// NoAlloc turns the hot paths' zero-allocation property — pinned at a
// handful of configurations by testing.AllocsPerRun tests — into a
// whole-call-graph static contract. A function annotated //aptq:noalloc is
// a hot-path root: every allocation-forcing construct in its body, and in
// everything it (transitively) calls, is a diagnostic. The constructs:
//
//   - make / new / append (append may grow the backing array)
//   - slice and map composite literals, and &T{…} (escapes to heap)
//   - map assignment (may grow buckets)
//   - any call into package fmt
//   - string ⇄ []byte/[]rune conversions and string concatenation
//   - concrete-to-interface conversions (boxing) at calls, assignments
//     and returns
//   - capturing closures that outlive the statement, go statements
//   - dynamic calls (function values, or interface methods without a
//     //aptq:noalloc contract)
//
// Cross-package coverage comes from modular facts: each analyzed package
// exports a may-allocate summary per function, folded transitively, so a
// root in internal/serve sees through internal/infer into internal/tensor.
// When no fact exists (a dependency analyzed without facts available) a
// small allowlist of known-clean std packages applies and anything else is
// conservatively flagged.
//
// Two escape hatches keep the contract honest rather than noisy:
// //aptq:ignore noalloc <reason> accepts an intentional allocation (e.g.
// amortized scratch growth), and calls into internal/parallel plus the
// closures handed to it are exempt — the zero-alloc property is pinned at
// Workers()==1, where the substrate runs inline without spawning, and the
// dispatch cost at higher worker counts is the documented trade.
//
// On an interface method, //aptq:noalloc is a contract: dynamic calls
// through the method are trusted, and every implementation must carry its
// own //aptq:noalloc (enforced for implementations declared in any
// analyzed package).
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "enforce //aptq:noalloc zero-allocation contracts across the whole call graph",
	Run:  runNoAlloc,
}

// FuncFact is the exported per-function summary.
type FuncFact struct {
	MayAlloc bool
	Why      string // first allocation reason, with transitive call chain
	Noalloc  bool   // declared //aptq:noalloc (trusted by callers)
	Contract bool   // an annotated interface method (dynamic calls trusted)
}

// noallocStdClean lists std packages whose exported call surface the
// checker trusts not to allocate when no facts are available for them
// (pure math, atomic ops, monotonic clock reads, context queries).
var noallocStdClean = map[string]bool{
	"math":        true,
	"math/bits":   true,
	"sync/atomic": true,
	"time":        true,
	"context":     true,
	// Mutex/RWMutex/Once/WaitGroup steady-state operations are
	// allocation-free; sync.Pool boxing is caught at the caller by the
	// interface-conversion check on call arguments.
	"sync": true,
	// Draws from an explicitly seeded *rand.Rand (the only form detlint
	// admits in bit-identity packages) are allocation-free; constructing
	// one (rand.New) is a setup-time operation.
	"math/rand": true,
	"errors":    false, // errors.New allocates; never trust blindly
}

// allocSite is one allocation-forcing construct.
type allocSite struct {
	pos  token.Pos
	what string
}

type callSite struct {
	pos token.Pos
	fn  *types.Func
}

// funcSummary is the per-function result of the body walk.
type funcSummary struct {
	fn      *types.Func
	decl    *ast.FuncDecl
	noalloc bool
	direct  []allocSite // unsuppressed allocation constructs in the body
	calls   []callSite  // static call sites
	dynamic []allocSite // unresolvable dynamic calls
}

type noallocChecker struct {
	pass      *Pass
	summaries map[*types.Func]*funcSummary
	contracts map[string]bool // funcID of annotated interface methods (local + imported)
	// imported is the union of every dependency fact blob, keyed by
	// funcID. Each package re-exports this union merged with its own
	// facts, so transitive reach survives `go vet` shipping vetx files
	// for direct imports only.
	imported map[string]FuncFact
	memo     map[*types.Func]*resolved
}

type resolved struct {
	mayAlloc bool
	why      string
	visiting bool
}

func runNoAlloc(pass *Pass) error {
	nc := &noallocChecker{
		pass:      pass,
		summaries: make(map[*types.Func]*funcSummary),
		contracts: make(map[string]bool),
		imported:  mergeDepFacts(pass.ReadAllFacts()),
		memo:      make(map[*types.Func]*resolved),
	}
	nc.collectContracts()
	nc.collectSummaries()
	nc.report()
	nc.exportFacts()
	return nil
}

// ---- contracts -------------------------------------------------------

// collectContracts finds //aptq:noalloc-annotated interface methods in
// this package's syntax; imported contracts surface lazily via facts.
func (nc *noallocChecker) collectContracts() {
	for _, f := range nc.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			it, ok := n.(*ast.InterfaceType)
			if !ok {
				return true
			}
			for _, field := range it.Methods.List {
				if !hasDirective(field.Doc, directiveNoalloc) && !hasDirective(field.Comment, directiveNoalloc) {
					continue
				}
				for _, name := range field.Names {
					if fn, ok := nc.pass.TypesInfo.Defs[name].(*types.Func); ok {
						nc.contracts[funcID(fn)] = true
					}
				}
			}
			return true
		})
	}
}

// isContract reports whether the interface method carries a //aptq:noalloc
// contract, locally or via an imported fact.
func (nc *noallocChecker) isContract(fn *types.Func) bool {
	if nc.contracts[funcID(fn)] {
		return true
	}
	if fact, ok := nc.imported[funcID(fn)]; ok && fact.Contract {
		return true
	}
	return false
}

// ---- summaries -------------------------------------------------------

func (nc *noallocChecker) collectSummaries() {
	for _, f := range nc.pass.Files {
		if strings.HasSuffix(nc.pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := nc.pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			s := &funcSummary{fn: fn, decl: fd, noalloc: hasDirective(fd.Doc, directiveNoalloc)}
			w := &allocWalker{nc: nc, sum: s}
			w.sigs = append(w.sigs, fn.Type().(*types.Signature))
			w.walkBody(fd.Body)
			nc.summaries[fn] = s
		}
	}
}

// allocWalker scans one function body for allocation-forcing constructs.
type allocWalker struct {
	nc   *noallocChecker
	sum  *funcSummary
	sigs []*types.Signature // signature stack (function, nested literals)
	// parallelLits marks closure literals passed directly to
	// internal/parallel entry points: their closure value is exempt.
	parallelLits map[*ast.FuncLit]bool
}

func (w *allocWalker) info() *types.Info { return w.nc.pass.TypesInfo }

// add records an allocation site unless an //aptq:ignore noalloc directive
// covers its line.
func (w *allocWalker) add(pos token.Pos, what string) {
	if w.nc.pass.Ignored(pos) {
		return
	}
	w.sum.direct = append(w.sum.direct, allocSite{pos: pos, what: what})
}

func (w *allocWalker) addDynamic(pos token.Pos, what string) {
	if w.nc.pass.Ignored(pos) {
		return
	}
	w.sum.dynamic = append(w.sum.dynamic, allocSite{pos: pos, what: what})
}

func (w *allocWalker) walkBody(body *ast.BlockStmt) {
	ast.Inspect(body, w.visit)
}

func (w *allocWalker) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.CallExpr:
		return w.visitCall(n)
	case *ast.CompositeLit:
		switch w.info().TypeOf(n).Underlying().(type) {
		case *types.Slice:
			w.add(n.Pos(), "slice literal allocates")
		case *types.Map:
			w.add(n.Pos(), "map literal allocates")
		}
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				w.add(n.Pos(), "&composite literal escapes to the heap")
			}
		}
	case *ast.FuncLit:
		if sig, ok := w.info().TypeOf(n).(*types.Signature); ok {
			w.sigs = append(w.sigs, sig)
			defer func() { w.sigs = w.sigs[:len(w.sigs)-1] }()
		}
		if !w.parallelLits[n] && capturesLocals(w.info(), n) {
			w.add(n.Pos(), "closure captures variables and escapes")
		}
		ast.Inspect(n.Body, w.visit)
		return false
	case *ast.GoStmt:
		w.add(n.Pos(), "go statement allocates a goroutine")
	case *ast.BinaryExpr:
		if n.Op == token.ADD {
			if t := w.info().TypeOf(n); t != nil && isString(t) {
				w.add(n.Pos(), "string concatenation allocates")
			}
		}
	case *ast.AssignStmt:
		w.visitAssign(n)
	case *ast.ReturnStmt:
		w.visitReturn(n)
	}
	return true
}

func (w *allocWalker) visitCall(call *ast.CallExpr) bool {
	info := w.info()
	// panic arguments are terminal; allocation there is irrelevant.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "panic":
				return false
			case "make":
				w.add(call.Pos(), "make allocates")
			case "new":
				w.add(call.Pos(), "new allocates")
			case "append":
				w.add(call.Pos(), "append may grow the backing array")
			}
			return true
		}
	}
	// Conversions: string ⇄ bytes/runes materialize, concrete→interface box.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		w.visitConversion(call, tv.Type)
		return true
	}
	if isInterfaceMethodCall(info, call) {
		sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if mfn, ok := info.Selections[sel].Obj().(*types.Func); ok && w.nc.isContract(mfn) {
			w.checkCallBoxing(call)
			return true // trusted //aptq:noalloc interface contract
		}
		w.addDynamic(call.Pos(), fmt.Sprintf("dynamic call through interface method %s (no //aptq:noalloc contract)", callName(call)))
		return true
	}
	if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil {
		switch {
		case fn.Pkg().Path() == "fmt":
			w.add(call.Pos(), fmt.Sprintf("fmt.%s allocates", fn.Name()))
		case hasPathSuffix(fn.Pkg().Path(), "internal/parallel"):
			// The sanctioned fan-out: exempt, including its closure args
			// (inline at Workers()==1; dispatch is the multi-worker trade).
			w.markParallelLits(call)
		default:
			// An //aptq:ignore noalloc on the call line detaches the whole
			// callee subgraph — suppression composes at any depth, not just
			// inside annotated roots.
			if !w.nc.pass.Ignored(call.Pos()) {
				w.sum.calls = append(w.sum.calls, callSite{pos: call.Pos(), fn: fn})
				w.checkCallBoxing(call)
			}
		}
		return true
	}
	// A call of a function-typed value: unresolvable statically.
	if _, ok := info.TypeOf(call.Fun).Underlying().(*types.Signature); ok {
		w.addDynamic(call.Pos(), "call through a function value")
	}
	return true
}

func (w *allocWalker) markParallelLits(call *ast.CallExpr) {
	if w.parallelLits == nil {
		w.parallelLits = make(map[*ast.FuncLit]bool)
	}
	for _, arg := range call.Args {
		if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
			w.parallelLits[lit] = true
		}
	}
}

func (w *allocWalker) visitConversion(call *ast.CallExpr, target types.Type) {
	if len(call.Args) != 1 {
		return
	}
	src := w.info().TypeOf(call.Args[0])
	if src == nil {
		return
	}
	switch {
	case isString(target) && !isString(src):
		w.add(call.Pos(), "conversion to string allocates")
	case isByteOrRuneSlice(target) && isString(src):
		w.add(call.Pos(), "string-to-slice conversion allocates")
	case w.boxes(call.Args[0], target):
		w.add(call.Pos(), "conversion to interface boxes the value")
	}
}

// checkCallBoxing flags concrete arguments passed to interface parameters.
func (w *allocWalker) checkCallBoxing(call *ast.CallExpr) {
	sig, ok := w.info().TypeOf(call.Fun).Underlying().(*types.Signature)
	if !ok || sig.Params() == nil {
		return
	}
	n := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= n-1:
			if call.Ellipsis != token.NoPos {
				continue // s... passes the slice itself
			}
			pt = sig.Params().At(n - 1).Type().(*types.Slice).Elem()
		case i < n:
			pt = sig.Params().At(i).Type()
		}
		if w.boxes(arg, pt) {
			w.add(arg.Pos(), "interface conversion at call argument boxes the value")
		}
	}
}

func (w *allocWalker) visitAssign(as *ast.AssignStmt) {
	info := w.info()
	for _, lhs := range as.Lhs {
		if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			if t := info.TypeOf(ix.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					w.add(as.Pos(), "map assignment may grow buckets")
				}
			}
		}
	}
	if as.Tok != token.ASSIGN {
		return // := takes the rhs type; no interface target possible
	}
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break // x, y = f() — tuple boxing is out of scope
		}
		if w.boxes(as.Rhs[i], info.TypeOf(lhs)) {
			w.add(as.Rhs[i].Pos(), "assignment to interface boxes the value")
		}
	}
}

func (w *allocWalker) visitReturn(ret *ast.ReturnStmt) {
	sig := w.sigs[len(w.sigs)-1]
	if sig.Results() == nil || len(ret.Results) != sig.Results().Len() {
		return
	}
	for i, res := range ret.Results {
		if w.boxes(res, sig.Results().At(i).Type()) {
			w.add(res.Pos(), "return value boxed into interface")
		}
	}
}

// boxes reports whether assigning expr to a target of type t converts a
// concrete value into an interface (a potential heap allocation).
func (w *allocWalker) boxes(expr ast.Expr, t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Interface); !ok {
		return false
	}
	tv, ok := w.info().Types[expr]
	if !ok || tv.Type == nil || tv.IsNil() {
		return false
	}
	if types.IsInterface(tv.Type) {
		return false
	}
	// Pointer-shaped values (pointers, channels, maps, funcs, unsafe
	// pointers) are stored in the interface word directly — no allocation.
	switch u := tv.Type.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		if u.Kind() == types.UnsafePointer {
			return false
		}
	}
	return true
}

// capturesLocals reports whether the closure references variables declared
// outside it but inside the enclosing function (package-level references
// are direct, not captured).
func capturesLocals(info *types.Info, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captured {
			return !captured
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.Parent() == nil {
			return true
		}
		if v.Parent() == v.Pkg().Scope() {
			return true // package-level
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = true
		}
		return true
	})
	return captured
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func callName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return "(call)"
}

// ---- resolution ------------------------------------------------------

// mergeDepFacts folds every dependency blob into one funcID-keyed map.
func mergeDepFacts(blobs [][]byte) map[string]FuncFact {
	merged := make(map[string]FuncFact)
	for _, blob := range blobs {
		for key, fact := range decodeFacts(blob) {
			merged[key] = fact
		}
	}
	return merged
}

// mayAlloc resolves whether calling fn may allocate, folding local
// summaries, imported facts and the conservative fallbacks.
func (nc *noallocChecker) mayAlloc(fn *types.Func) (bool, string) {
	if r, ok := nc.memo[fn]; ok {
		if r.visiting {
			return false, "" // optimistic on recursion cycles
		}
		return r.mayAlloc, r.why
	}
	r := &resolved{visiting: true}
	nc.memo[fn] = r
	defer func() { r.visiting = false }()

	if sum, ok := nc.summaries[fn]; ok {
		if sum.noalloc {
			// Trusted: the annotated callee carries its own obligations.
			r.mayAlloc = false
			return false, ""
		}
		r.mayAlloc, r.why = nc.summaryAllocs(sum)
		return r.mayAlloc, r.why
	}
	if fn.Pkg() == nil || fn.Pkg() == nc.pass.Pkg {
		// Bodyless local declaration (assembly stub): assume clean.
		r.mayAlloc = false
		return false, ""
	}
	path := fn.Pkg().Path()
	// The hand-audited allowlist outranks derived facts: summarizing std
	// internals conservatively (dynamic calls, cold init paths) would
	// otherwise flag steady-state-clean surfaces like (*rand.Rand).Float64
	// or (*sync.Mutex).Lock.
	if hasPathSuffix(path, "internal/parallel") || noallocStdClean[path] {
		r.mayAlloc = false
		return false, ""
	}
	if fact, ok := nc.imported[funcID(fn)]; ok {
		if fact.Noalloc {
			r.mayAlloc = false
			return false, ""
		}
		r.mayAlloc, r.why = fact.MayAlloc, fact.Why
		return r.mayAlloc, r.why
	}
	if path == "fmt" {
		r.mayAlloc, r.why = true, "fmt allocates"
	} else {
		r.mayAlloc, r.why = true, fmt.Sprintf("no allocation facts for %s", path)
	}
	return r.mayAlloc, r.why
}

// summaryAllocs folds a summary's direct sites, dynamic calls and callee
// resolutions into one may-allocate verdict.
func (nc *noallocChecker) summaryAllocs(sum *funcSummary) (bool, string) {
	if len(sum.direct) > 0 {
		p := nc.pass.Fset.Position(sum.direct[0].pos)
		return true, fmt.Sprintf("%s at %s:%d", sum.direct[0].what, shortFile(p.Filename), p.Line)
	}
	if len(sum.dynamic) > 0 {
		p := nc.pass.Fset.Position(sum.dynamic[0].pos)
		return true, fmt.Sprintf("%s at %s:%d", sum.dynamic[0].what, shortFile(p.Filename), p.Line)
	}
	for _, c := range sum.calls {
		if alloc, why := nc.mayAlloc(c.fn); alloc {
			return true, chainWhy(c.fn, why)
		}
	}
	return false, ""
}

// chainWhy prefixes a callee's reason with its name, keeping chains short.
func chainWhy(fn *types.Func, why string) string {
	s := fmt.Sprintf("calls %s (%s)", fn.FullName(), why)
	if len(s) > 220 {
		s = s[:217] + "..."
	}
	return s
}

func shortFile(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// ---- reporting -------------------------------------------------------

func (nc *noallocChecker) report() {
	// Deterministic order over the annotated roots.
	var roots []*funcSummary
	for _, sum := range nc.summaries {
		if sum.noalloc {
			roots = append(roots, sum)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].decl.Pos() < roots[j].decl.Pos() })
	for _, sum := range roots {
		name := sum.fn.Name()
		for _, site := range sum.direct {
			nc.pass.Reportf(site.pos, "%s in //aptq:noalloc function %s", site.what, name)
		}
		for _, site := range sum.dynamic {
			nc.pass.Reportf(site.pos, "%s in //aptq:noalloc function %s", site.what, name)
		}
		for _, c := range sum.calls {
			if alloc, why := nc.mayAlloc(c.fn); alloc {
				nc.pass.Reportf(c.pos, "call from //aptq:noalloc function %s may allocate: %s", name, chainWhy(c.fn, why))
			}
		}
	}
	nc.reportUnannotatedImpls()
}

// reportUnannotatedImpls enforces the interface half of the contract:
// every locally-declared implementation of a //aptq:noalloc interface
// method must itself be annotated.
func (nc *noallocChecker) reportUnannotatedImpls() {
	contracts := nc.visibleContracts()
	if len(contracts) == 0 {
		return
	}
	for _, sum := range nc.summaries {
		if sum.noalloc || sum.decl.Recv == nil {
			continue
		}
		sig := sum.fn.Type().(*types.Signature)
		if sig.Recv() == nil {
			continue
		}
		recv := sig.Recv().Type()
		for _, c := range contracts {
			if c.method != sum.fn.Name() {
				continue
			}
			if types.Implements(recv, c.iface) || implementsPtr(recv, c.iface) {
				nc.pass.Reportf(sum.decl.Pos(),
					"%s implements %s.%s, a //aptq:noalloc contract, but is not annotated //aptq:noalloc",
					sum.fn.Name(), c.ifaceName, c.method)
			}
		}
	}
}

func implementsPtr(recv types.Type, iface *types.Interface) bool {
	if _, isPtr := recv.(*types.Pointer); isPtr {
		return false
	}
	return types.Implements(types.NewPointer(recv), iface)
}

type contractIface struct {
	iface     *types.Interface
	ifaceName string
	method    string
}

// visibleContracts materializes the annotated interface methods this
// package can see: its own, plus those named in imported facts.
func (nc *noallocChecker) visibleContracts() []contractIface {
	keys := make(map[string]bool, len(nc.contracts))
	for k := range nc.contracts {
		keys[k] = true
	}
	for k, fact := range nc.imported {
		if fact.Contract {
			keys[k] = true
		}
	}
	var out []contractIface
	for key := range keys {
		if c, ok := nc.resolveContractKey(key); ok {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].ifaceName+out[i].method < out[j].ifaceName+out[j].method
	})
	return out
}

// resolveContractKey turns a fact key "(pkg/path.Iface).Method" back into
// the interface type, looking in this package and its direct imports.
func (nc *noallocChecker) resolveContractKey(key string) (contractIface, bool) {
	if !strings.HasPrefix(key, "(") {
		return contractIface{}, false
	}
	close := strings.IndexByte(key, ')')
	if close < 0 || close+2 > len(key) {
		return contractIface{}, false
	}
	qualified := key[1:close] // pkg/path.Iface
	method := key[close+2:]   // skip ")."
	dot := strings.LastIndexByte(qualified, '.')
	if dot < 0 {
		return contractIface{}, false
	}
	pkgPath, typeName := qualified[:dot], qualified[dot+1:]
	var scope *types.Scope
	if pkgPath == nc.pass.Pkg.Path() {
		scope = nc.pass.Pkg.Scope()
	} else {
		for _, imp := range nc.pass.Pkg.Imports() {
			if imp.Path() == pkgPath {
				scope = imp.Scope()
				break
			}
		}
	}
	if scope == nil {
		return contractIface{}, false
	}
	obj := scope.Lookup(typeName)
	if obj == nil {
		return contractIface{}, false
	}
	iface, ok := obj.Type().Underlying().(*types.Interface)
	if !ok {
		return contractIface{}, false
	}
	return contractIface{iface: iface, ifaceName: typeName, method: method}, true
}

// ---- facts -----------------------------------------------------------

func (nc *noallocChecker) exportFacts() {
	// Re-export the dependency union: dependents only receive vetx files
	// for their direct imports, so transitive facts ride along here.
	facts := make(map[string]FuncFact, len(nc.imported)+len(nc.summaries)+len(nc.contracts))
	for key, fact := range nc.imported {
		facts[key] = fact
	}
	for fn, sum := range nc.summaries {
		alloc, why := nc.mayAlloc(fn)
		facts[funcID(fn)] = FuncFact{MayAlloc: alloc, Why: why, Noalloc: sum.noalloc}
	}
	for key := range nc.contracts {
		f := facts[key]
		f.Contract = true
		f.Noalloc = true
		facts[key] = f
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(facts); err == nil {
		nc.pass.ExportFacts(buf.Bytes())
	}
}

func decodeFacts(blob []byte) map[string]FuncFact {
	if blob == nil {
		return nil
	}
	var facts map[string]FuncFact
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&facts); err != nil {
		return nil
	}
	return facts
}

package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
)

// A Package is one source-loaded, type-checked package of the standalone
// driver (the in-process counterpart of a unit-checker invocation).
type Package struct {
	Path    string
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
	Imports []string // direct dependency import paths
}

// listPackage mirrors the `go list -json` fields the loader consumes.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Export     string
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// goList runs `go list` with the given extra flags and patterns in dir and
// decodes the JSON package stream.
func goList(dir string, extra []string, patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-e", "-json"}, extra...)
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("go list %v: decoding output: %v", patterns, err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// Load type-checks the packages matching patterns (interpreted relative to
// dir) from source, resolving every dependency through the compiler export
// data `go list -export` produces — no network, no GOPATH assumptions, and
// testdata fixture directories work when named explicitly. The returned
// packages are in dependency order: a package always follows the loaded
// packages it imports, so a driver running analyzers in slice order can
// flow facts forward.
func Load(dir string, patterns []string) ([]*Package, *token.FileSet, error) {
	roots, err := goList(dir, nil, patterns)
	if err != nil {
		return nil, nil, err
	}
	rootSet := make(map[string]bool, len(roots))
	for _, r := range roots {
		if r.Error != nil {
			return nil, nil, fmt.Errorf("go list %s: %s", r.ImportPath, r.Error.Err)
		}
		rootSet[r.ImportPath] = true
	}

	// One -deps -export pass supplies export data for every dependency of
	// every root (stdlib included) plus the roots' own file lists.
	all, err := goList(dir, []string{"-export", "-deps"}, patterns)
	if err != nil {
		return nil, nil, err
	}
	exports := make(map[string]string, len(all))
	byPath := make(map[string]*listPackage, len(all))
	for _, p := range all {
		byPath[p.ImportPath] = p
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	// Topologically order the roots among themselves so facts flow from
	// dependency to dependent.
	order := topoOrder(roots, byPath, rootSet)

	var out []*Package
	for _, lp := range order {
		pkg, err := typeCheck(fset, lp, imp)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, pkg)
	}
	return out, fset, nil
}

// topoOrder sorts the root packages in dependency order (dependencies
// first), restricted to edges between roots.
func topoOrder(roots []*listPackage, byPath map[string]*listPackage, rootSet map[string]bool) []*listPackage {
	sort.Slice(roots, func(i, j int) bool { return roots[i].ImportPath < roots[j].ImportPath })
	var order []*listPackage
	state := make(map[string]int, len(roots)) // 0 unvisited, 1 visiting, 2 done
	var visit func(path string)
	visit = func(path string) {
		if !rootSet[path] || state[path] != 0 {
			return
		}
		state[path] = 1
		lp := byPath[path]
		deps := append([]string(nil), lp.Imports...)
		sort.Strings(deps)
		for _, dep := range deps {
			visit(resolveImport(lp, dep))
		}
		state[path] = 2
		order = append(order, lp)
	}
	for _, r := range roots {
		visit(r.ImportPath)
	}
	return order
}

// resolveImport applies the package's ImportMap (vendoring / test-variant
// renames) to a source-level import path.
func resolveImport(lp *listPackage, path string) string {
	if lp.ImportMap != nil {
		if mapped, ok := lp.ImportMap[path]; ok {
			return mapped
		}
	}
	return path
}

// typeCheck parses and type-checks one listed package from source.
func typeCheck(fset *token.FileSet, lp *listPackage, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newTypesInfo()
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(error) {}, // collect via the returned error; keep going
	}
	pkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
	}
	var imports []string
	for _, dep := range lp.Imports {
		imports = append(imports, resolveImport(lp, dep))
	}
	return &Package{Path: lp.ImportPath, Files: files, Pkg: pkg, Info: info, Imports: imports}, nil
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Package parallel is a sequential stub of the real fork-join substrate.
// The analyzer matches entry points by import-path suffix, so closures
// passed to this stub are checked exactly like production call sites.
package parallel

// For splits [0, n) into grain-sized chunks and applies fn to each.
func For(n, grain int, fn func(lo, hi int)) {
	for lo := 0; lo < n; lo += grain {
		hi := lo + grain
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	}
}

// ForEach applies fn to every index in [0, n).
func ForEach(n int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

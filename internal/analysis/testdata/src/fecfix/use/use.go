// Package use exercises foreachcapture against the stub substrate: the
// index-disjoint shapes that must stay silent, the racing ones that must
// not, and both suppression shapes.
package use

import "repro/internal/analysis/testdata/src/fecfix/internal/parallel"

// Scale writes disjoint elements through the loop index: clean.
func Scale(dst, src []float64, c float64) {
	parallel.ForEach(len(dst), func(i int) {
		dst[i] = src[i] * c
	})
}

// Sum races on a captured accumulator. True positive.
func Sum(xs []float64) float64 {
	total := 0.0
	parallel.ForEach(len(xs), func(i int) {
		total += xs[i] // want foreachcapture:`captured variable total`
	})
	return total
}

// Fill writes each chunk through a variable derived from the closure's
// domain parameters: clean.
func Fill(dst []int, v int) {
	parallel.For(len(dst), 64, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			dst[j] = v
		}
	})
}

// Collide writes one shared element from every iteration. True positive.
func Collide(dst []int) {
	parallel.ForEach(len(dst), func(i int) {
		dst[0] = i // want foreachcapture:`does not depend on the loop index`
	})
}

// Tally writes a captured map; concurrent map writes fault regardless of
// key disjointness. True positive.
func Tally(xs []int, counts map[int]int) {
	parallel.ForEach(len(xs), func(i int) {
		counts[xs[i]]++ // want foreachcapture:`captured map counts`
	})
}

// Chunked copies into a bounds-disjoint window: clean.
func Chunked(dst, src []byte) {
	parallel.For(len(dst), 128, func(lo, hi int) {
		copy(dst[lo:hi], src[lo:hi])
	})
}

// Clobber copies over the whole captured slice from every chunk. True
// positive.
func Clobber(dst, src []byte) {
	parallel.For(len(dst), 128, func(lo, hi int) {
		copy(dst, src[lo:hi]) // want foreachcapture:`captured variable dst`
	})
}

// Reduce is a deliberate sharded reduction the checker cannot see
// through; the ignore carries its justification, so it stays clean.
func Reduce(xs, cells []float64, w int) {
	parallel.ForEach(len(xs), func(i int) {
		//aptq:ignore foreachcapture cells is sharded per worker by the caller
		cells[w] += xs[i]
	})
}

// Hoard's ignore lacks the reason: the directive is flagged and the
// racing append still reported.
func Hoard(xs []int) []int {
	var out []int
	parallel.ForEach(len(xs), func(i int) {
		//aptq:ignore foreachcapture
		out = append(out, xs[i]) // want -1 foreachcapture:`needs a reason` foreachcapture:`captured variable out`
	})
	return out
}

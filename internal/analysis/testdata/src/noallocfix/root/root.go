// Package root holds the //aptq:noalloc roots of the noalloc fixture: one
// violation per construct class, the trusted paths that must stay silent,
// and both suppression shapes.
package root

import (
	"fmt"

	"repro/internal/analysis/testdata/src/noallocfix/dep"
)

// Formatter is a non-contract interface: dynamic calls through it are
// opaque to the checker.
type Formatter interface {
	Format(x int) int
}

// HotScale is a zero-alloc root with one violation per construct class.
//
//aptq:noalloc
func HotScale(dst []int, f Formatter, s dep.Sink, n int) int {
	buf := make([]int, n)       // want noalloc:`make allocates`
	dst = append(dst, n)        // want noalloc:`append may grow`
	msg := fmt.Sprintf("%d", n) // want noalloc:`fmt.Sprintf allocates`
	_ = dep.Dirty(n)            // want noalloc:`may allocate`
	total := dep.Clean(n)
	total += f.Format(n) // want noalloc:`dynamic call through interface method Format`
	s.Put(total)
	_ = buf
	_ = msg
	return total + len(dst)
}

// HotGrow shows the sanctioned escape hatch: amortized growth accepted
// with a reason keeps the root clean.
//
//aptq:noalloc
func HotGrow(buf []byte, b byte) []byte {
	//aptq:ignore noalloc amortized growth, pinned by the AllocsPerRun tests at steady state
	buf = append(buf, b)
	return buf
}

// HotBox boxes a concrete value into an interface. True positive.
//
//aptq:noalloc
func HotBox(x int) interface{} {
	return x // want noalloc:`boxed into interface`
}

// warm is not annotated; its allocation only matters to callers.
func warm(n int) string {
	return string(rune(n))
}

// HotCallsWarm inherits warm's allocation transitively.
//
//aptq:noalloc
func HotCallsWarm(n int) int {
	return len(warm(n)) // want noalloc:`may allocate`
}

// HotMissingReason's ignore lacks a reason: the directive is flagged and
// the allocation still reported.
//
//aptq:noalloc
func HotMissingReason(n int) []int {
	//aptq:ignore noalloc
	return make([]int, n) // want -1 noalloc:`needs a reason` noalloc:`make allocates`
}

// Package dep exercises noalloc's cross-package machinery: Clean and
// Dirty export may-allocate facts, Sink.Put is an annotated interface
// contract, and BadSink shows the unannotated-implementation diagnostic.
package dep

// Clean is allocation-free; dependents see that through the exported fact.
func Clean(x int) int { return x * 2 }

// Dirty allocates; roots calling it inherit the reason transitively.
func Dirty(n int) []int { return make([]int, n) }

// Sink consumes values on the hot path; Put is a zero-alloc contract.
type Sink interface {
	//aptq:noalloc
	Put(x int)
}

// GoodSink honors the contract.
type GoodSink struct{ last int }

// Put stores the value in place.
//
//aptq:noalloc
func (s *GoodSink) Put(x int) { s.last = x }

// BadSink implements Sink but never declares the contract.
type BadSink struct{ vals []int }

// Put appends, and is missing its //aptq:noalloc.
func (s *BadSink) Put(x int) { s.vals = append(s.vals, x) } // want noalloc:`implements Sink.Put`

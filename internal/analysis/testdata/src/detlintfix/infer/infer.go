// Package infer is the detlint analysistest fixture. Its import path ends
// in an "infer" segment, so it sits under the bit-identity rules exactly
// like the production inference package.
package infer

import (
	"math/rand"
	"sort"
	"time"
)

// SumWeights folds a map into an accumulator in iteration order: the fold
// order — and for floats the result — follows map order. True positive.
func SumWeights(w map[string]float64) float64 {
	total := 0.0
	for _, v := range w { // want detlint:`map iteration order`
		total += v
	}
	return total
}

// Keys uses the sanctioned collect-then-sort idiom: clean.
func Keys(w map[string]float64) []string {
	keys := make([]string, 0, len(w))
	for k := range w {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Stamp reads the wall clock without the annotation. True positive.
func Stamp() int64 {
	return time.Now().UnixNano() // want detlint:`reads the wall clock`
}

// StampAllowed is an allowlisted wall-clock site, like the scheduler's
// TTFT/ITL stamps.
//
//aptq:wallclock
func StampAllowed() int64 {
	return time.Now().UnixNano()
}

// Jitter draws from the global, randomly seeded source. True positive.
func Jitter() float64 {
	return rand.Float64() // want detlint:`global RNG`
}

// Seeded draws from an explicitly seeded stream: deterministic, clean.
func Seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// Race spawns a goroutine outside internal/parallel. True positive.
func Race(done chan struct{}) {
	go func() { // want detlint:`goroutines belong in internal/parallel`
		close(done)
	}()
}

// Suppressed carries a justified ignore: no diagnostic.
func Suppressed() int64 {
	return time.Now().UnixNano() //aptq:ignore detlint fixture exercises justified suppression
}

// MissingReason's ignore lacks the mandatory reason: the directive itself
// is a diagnostic and suppresses nothing.
func MissingReason() int64 {
	//aptq:ignore detlint
	return time.Now().UnixNano() // want -1 detlint:`needs a reason` detlint:`reads the wall clock`
}

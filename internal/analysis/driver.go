package analysis

import (
	"fmt"
	"go/token"
)

// RunPackages executes the given analyzers over already-loaded packages in
// slice order (Load returns dependency order), carrying facts in memory:
// the blob a package exports is visible to every later package that could
// import it. This is the whole-program driver behind the standalone CLI
// mode and the analysistest fixture runner; `go vet -vettool=` instead
// runs one package per process with facts in vetx files (unitchecker.go),
// through the exact same Analyzer.Run entry points.
func RunPackages(analyzers []*Analyzer, pkgs []*Package, fset *token.FileSet) ([]Diagnostic, error) {
	var diags []Diagnostic
	// facts[analyzer][pkgpath] — blobs exported so far.
	facts := make(map[string]map[string][]byte, len(analyzers))
	for _, a := range analyzers {
		facts[a.Name] = make(map[string][]byte)
	}
	for _, pkg := range pkgs {
		directives := parseDirectives(fset, pkg.Files)
		for _, a := range analyzers {
			a := a
			path := pkg.Path
			pass := &Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Pkg,
				TypesInfo: pkg.Info,
				ReadFacts: func(dep string) []byte {
					return facts[a.Name][dep]
				},
				ReadAllFacts: func() [][]byte {
					var blobs [][]byte
					for _, dep := range pkg.Imports {
						if blob, ok := facts[a.Name][dep]; ok {
							blobs = append(blobs, blob)
						}
					}
					return blobs
				},
				ExportFacts: func(blob []byte) {
					facts[a.Name][path] = blob
				},
				directives: directives,
				diags:      &diags,
			}
			pass.reportMalformedIgnores()
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.Path, err)
			}
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}

// RunStandalone loads the packages matching patterns (relative to dir) and
// runs every registered analyzer over them — the whole-program mode of the
// aptq-vet CLI (`aptq-vet ./...`).
func RunStandalone(dir string, patterns []string) ([]Diagnostic, error) {
	pkgs, fset, err := Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	return RunPackages(All(), pkgs, fset)
}

// Package analysis is the repository's static-analysis suite: a small,
// dependency-free re-implementation of the golang.org/x/tools go/analysis
// vocabulary (Analyzer, Pass, Diagnostic, modular facts) plus the three
// checkers that turn the codebase's runtime-enforced invariants into
// build-time contracts:
//
//   - detlint flags nondeterminism sources — map-range iteration with
//     order-dependent effects, wall-clock and global-RNG reads, raw go
//     statements — inside the bit-identity packages (tensor, quant, nn,
//     model, infer, serve), whose output must be bit-identical to
//     Sequential at any slot/worker count.
//   - noalloc reads //aptq:noalloc annotations on hot-path roots
//     (Session.Step, Append, the ForwardInto impls, decodeRowLUT*,
//     Sampler.Sample, the scheduler tick) and walks the call graph
//     flagging allocation-forcing constructs, turning the point checks of
//     the testing.AllocsPerRun tests into whole-call-graph coverage.
//   - foreachcapture inspects closures handed to parallel.For/ForEach for
//     writes to captured state that are not index-disjoint — the
//     race-by-construction patterns -race only catches when the schedule
//     cooperates.
//
// The suite runs two ways: cmd/aptq-vet speaks the `go vet -vettool=`
// unit-checker protocol (per-package, facts carried across packages in
// vetx files — see unitchecker.go), and the in-process driver loads whole
// programs for the standalone CLI mode and the analysistest fixtures (see
// load.go and driver.go). The x/tools module is deliberately not imported:
// the build must work from a bare toolchain with no module downloads.
//
// # Annotations
//
// Three comment directives carry the contracts:
//
//	//aptq:noalloc
//	    On a function or method declaration: the function is a zero-alloc
//	    hot-path root; noalloc checks it and everything it calls. On an
//	    interface method: a contract — every implementation must carry its
//	    own //aptq:noalloc, and dynamic calls through the method are
//	    trusted.
//	//aptq:wallclock
//	    On a function declaration: the function legitimately reads the
//	    wall clock (the scheduler's TTFT/ITL timestamps); detlint's
//	    time.Now/time.Since checks skip it.
//	//aptq:ignore <analyzer> <reason>
//	    On (or on the line above) an offending line: suppress that
//	    analyzer's diagnostics there. The reason is mandatory; an ignore
//	    without one is itself a diagnostic.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check. Run inspects a single type-checked
// package through its Pass and reports diagnostics; cross-package state
// travels as opaque fact blobs (see Pass.ReadFacts / Pass.ExportFacts).
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// ReadFacts returns the fact blob this analyzer exported for the
	// given dependency package path, or nil when the dependency was not
	// analyzed (stdlib without vetx, or outside the load set).
	ReadFacts func(path string) []byte
	// ReadAllFacts returns every available dependency fact blob for this
	// analyzer. Under `go vet` only direct imports ship vetx files, so
	// analyzers that need transitive reach fold dependency facts into
	// their own export and consume the union here.
	ReadAllFacts func() [][]byte
	// ExportFacts records this package's fact blob for dependents.
	ExportFacts func(blob []byte)

	directives []directive
	diags      *[]Diagnostic
}

// Reportf records a diagnostic unless an //aptq:ignore directive for this
// analyzer covers pos's line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	if p.ignoredAt(position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Ignored reports whether an //aptq:ignore directive for this analyzer
// covers pos's line — for analyzers (noalloc) that must honor suppression
// while summarizing code they would not otherwise report on.
func (p *Pass) Ignored(pos token.Pos) bool {
	return p.ignoredAt(p.Fset.Position(pos))
}

func (p *Pass) ignoredAt(pos token.Position) bool {
	for _, d := range p.directives {
		if d.kind != directiveIgnore || d.analyzer != p.Analyzer.Name || d.reason == "" {
			continue
		}
		if d.pos.Filename != pos.Filename {
			continue
		}
		// A directive suppresses its own line (trailing comment) and the
		// line directly below it (comment on its own line above the code).
		if d.pos.Line == pos.Line || d.pos.Line == pos.Line-1 {
			return true
		}
	}
	return false
}

// Directive kinds.
const (
	directiveIgnore    = "ignore"
	directiveNoalloc   = "noalloc"
	directiveWallclock = "wallclock"
)

// directivePrefix introduces every annotation comment.
const directivePrefix = "//aptq:"

type directive struct {
	kind     string // ignore | noalloc | wallclock
	analyzer string // ignore only: which analyzer is suppressed
	reason   string // ignore only: mandatory justification
	pos      token.Position
}

// parseDirectives scans every comment of every file for //aptq: directives.
func parseDirectives(fset *token.FileSet, files []*ast.File) []directive {
	var out []directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if d, ok := parseDirective(fset, c); ok {
					out = append(out, d)
				}
			}
		}
	}
	return out
}

func parseDirective(fset *token.FileSet, c *ast.Comment) (directive, bool) {
	text := c.Text
	if !strings.HasPrefix(text, directivePrefix) {
		return directive{}, false
	}
	rest := strings.TrimPrefix(text, directivePrefix)
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return directive{}, false
	}
	d := directive{kind: fields[0], pos: fset.Position(c.Pos())}
	if d.kind == directiveIgnore {
		if len(fields) > 1 {
			d.analyzer = fields[1]
		}
		if len(fields) > 2 {
			d.reason = strings.Join(fields[2:], " ")
		}
	}
	return d, true
}

// reportMalformedIgnores emits a diagnostic for every //aptq:ignore that
// names this pass's analyzer but lacks the mandatory reason, and for every
// ignore that names no analyzer at all. Such directives never suppress
// anything, so a typo cannot silently waive a contract.
func (p *Pass) reportMalformedIgnores() {
	for _, d := range p.directives {
		if d.kind != directiveIgnore {
			continue
		}
		switch {
		case d.analyzer == "":
			*p.diags = append(*p.diags, Diagnostic{
				Analyzer: p.Analyzer.Name,
				Pos:      d.pos,
				Message:  "//aptq:ignore needs an analyzer name and a reason: //aptq:ignore <analyzer> <why>",
			})
		case d.analyzer == p.Analyzer.Name && d.reason == "":
			*p.diags = append(*p.diags, Diagnostic{
				Analyzer: p.Analyzer.Name,
				Pos:      d.pos,
				Message: fmt.Sprintf("//aptq:ignore %s needs a reason: //aptq:ignore %s <why>",
					d.analyzer, d.analyzer),
			})
		}
	}
}

// hasDirective reports whether the comment group carries the given
// //aptq: directive kind (e.g. a //aptq:noalloc line in a func doc).
func hasDirective(doc *ast.CommentGroup, kind string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, directivePrefix+kind) {
			rest := strings.TrimPrefix(c.Text, directivePrefix+kind)
			if rest == "" || rest[0] == ' ' || rest[0] == '\t' {
				return true
			}
		}
	}
	return false
}

// All returns the registered analyzers, in the fixed order cmd/aptq-vet
// runs them.
func All() []*Analyzer {
	return []*Analyzer{DetLint, NoAlloc, ForEachCapture}
}

// byName resolves an analyzer by its registered name.
func byName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// sortDiagnostics orders findings by file, line, column, analyzer —
// stable output for tests and CI logs.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// pathSegments splits an import path into its slash-separated segments.
func pathSegments(path string) []string { return strings.Split(path, "/") }

// hasPathSuffix reports whether the import path equals suffix or ends with
// "/"+suffix — the package-identity test the analyzers use so testdata
// fixtures (repro/internal/analysis/testdata/src/.../internal/parallel)
// match the same rules as the real tree (repro/internal/parallel).
func hasPathSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// enclosingFuncDecl returns the top-level function declaration whose span
// contains pos, or nil.
func enclosingFuncDecl(files []*ast.File, pos token.Pos) *ast.FuncDecl {
	for _, f := range files {
		if pos < f.Pos() || pos > f.End() {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
				return fd
			}
		}
	}
	return nil
}

// funcID is the stable cross-package key of a function or method: the
// *types.Func full name, e.g. "repro/internal/infer.SampleLogits" or
// "(*repro/internal/infer.Session).Step".
func funcID(fn *types.Func) string { return fn.FullName() }

// calleeFunc resolves a call expression to the static *types.Func it
// invokes, looking through parenthesization. Returns nil for builtins,
// conversions, and calls of function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Package-qualified call: pkg.Func.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isInterfaceMethodCall reports whether the call dispatches dynamically
// through an interface method value.
func isInterfaceMethodCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	recv := s.Recv()
	_, isIface := recv.Underlying().(*types.Interface)
	return isIface
}

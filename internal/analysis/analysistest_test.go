package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// parseTestSource parses one in-memory file for the directive unit tests.
func parseTestSource(t *testing.T, src string) ([]*ast.File, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing test source: %v", err)
	}
	return []*ast.File{f}, fset
}

// The fixture expectation syntax, analysistest-style: a `// want` comment
// carries one or more items of the form
//
//	[±N] analyzer:`substring`
//
// Each item expects one diagnostic from that analyzer whose message
// contains the substring, on the comment's own line shifted by the
// optional ±N offset (for diagnostics that anchor to a directive on a
// nearby line). Every diagnostic must match exactly one expectation and
// every expectation exactly one diagnostic.
var wantItemRe = regexp.MustCompile("(?:([+-][0-9]+)[ \t]+)?([a-z]+):`([^`]*)`")

type expectation struct {
	file     string
	line     int
	analyzer string
	substr   string
	matched  bool
}

// runFixtureTest loads the fixture packages, runs every registered
// analyzer over them through the in-process driver, and reconciles the
// diagnostics against the fixtures' want comments.
func runFixtureTest(t *testing.T, patterns ...string) {
	t.Helper()
	pkgs, fset, err := Load(".", patterns)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	diags, err := RunPackages(All(), pkgs, fset)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}

	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					const marker = "// want "
					if !strings.HasPrefix(c.Text, marker) {
						continue
					}
					pos := fset.Position(c.Pos())
					items := wantItemRe.FindAllStringSubmatch(c.Text[len(marker):], -1)
					if len(items) == 0 {
						t.Errorf("%s:%d: malformed want comment: %s", pos.Filename, pos.Line, c.Text)
						continue
					}
					for _, m := range items {
						offset := 0
						if m[1] != "" {
							offset, _ = strconv.Atoi(m[1])
						}
						wants = append(wants, &expectation{
							file:     pos.Filename,
							line:     pos.Line + offset,
							analyzer: m[2],
							substr:   m[3],
						})
					}
				}
			}
		}
	}

	for _, d := range diags {
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line &&
				w.analyzer == d.Analyzer && strings.Contains(d.Message, w.substr) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("missing diagnostic: %s:%d: %s: %q", w.file, w.line, w.analyzer, w.substr)
		}
	}
}

func TestDetLintFixture(t *testing.T) {
	runFixtureTest(t, "./testdata/src/detlintfix/infer")
}

func TestNoAllocFixture(t *testing.T) {
	runFixtureTest(t,
		"./testdata/src/noallocfix/dep",
		"./testdata/src/noallocfix/root")
}

func TestForEachCaptureFixture(t *testing.T) {
	runFixtureTest(t,
		"./testdata/src/fecfix/internal/parallel",
		"./testdata/src/fecfix/use")
}

func TestDirectiveParsing(t *testing.T) {
	cases := []struct {
		text               string
		kind, analyzer, rs string
	}{
		{"//aptq:noalloc", directiveNoalloc, "", ""},
		{"//aptq:wallclock", directiveWallclock, "", ""},
		{"//aptq:ignore detlint the reason text", directiveIgnore, "detlint", "the reason text"},
		{"//aptq:ignore detlint", directiveIgnore, "detlint", ""},
		{"//aptq:ignore", directiveIgnore, "", ""},
	}
	for _, c := range cases {
		src := "package p\n\n" + c.text + "\nvar X int\n"
		pkgs, fset := parseTestSource(t, src)
		ds := parseDirectives(fset, pkgs)
		if len(ds) != 1 {
			t.Errorf("%q: got %d directives, want 1", c.text, len(ds))
			continue
		}
		d := ds[0]
		if d.kind != c.kind || d.analyzer != c.analyzer || d.reason != c.rs {
			t.Errorf("%q: got (%q, %q, %q), want (%q, %q, %q)",
				c.text, d.kind, d.analyzer, d.reason, c.kind, c.analyzer, c.rs)
		}
	}
}

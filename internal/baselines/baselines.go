// Package baselines implements the comparison methods of the paper's
// Tables 1 and 2: round-to-nearest (RTN), GPTQ, SmoothQuant, OWQ, PB-LLM,
// LLM-QAT and FPQ (LLM-FP4). Each quantizes a copy of the model and reports
// the achieved average bit width so rows are comparable with APTQ's.
//
// Where a method's full system is out of scope for a weight-only CPU
// reproduction (activation quantization in SmoothQuant, fp16 kernels in
// OWQ/PB-LLM), the implementation keeps the method's *weight-side decision
// procedure* — the part that differentiates the methods on the paper's
// metrics — and documents the substitution (DESIGN.md §2).
package baselines

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/gptq"
	"repro/internal/model"
	"repro/internal/quant"
	"repro/internal/tensor"
)

// Report is the outcome of one baseline quantization.
type Report struct {
	Method string
	Model  *model.Model
	// AvgBits counts code bits per quantizable weight (16 for weights kept
	// in full precision), excluding group metadata.
	AvgBits float64
}

// bitAccounting accumulates the average-bits numerator/denominator.
type bitAccounting struct {
	bits    float64
	weights float64
}

func (b *bitAccounting) add(numWeights int, avgBits float64) {
	b.bits += float64(numWeights) * avgBits
	b.weights += float64(numWeights)
}

func (b *bitAccounting) avg() float64 {
	if b.weights == 0 {
		return 0
	}
	return b.bits / b.weights
}

// RTN quantizes every layer with plain round-to-nearest group quantization —
// the "RTN" row of Table 2.
func RTN(m *model.Model, bits, groupSize int) *Report {
	clone := m.Clone()
	var acct bitAccounting
	for _, ref := range clone.QuantizableLayers() {
		q := quant.RTN(ref.Linear.P.W, bits, groupSize, false)
		ref.Linear.P.W.CopyFrom(q.Dequantize())
		acct.add(ref.NumWeights(), float64(bits))
	}
	return &Report{Method: fmt.Sprintf("RTN-%dbit", bits), Model: clone, AvgBits: acct.avg()}
}

// GPTQ quantizes every layer with the OBQ engine against the plain input
// Hessian 2XᵀX — the method APTQ extends. Statistics come from a
// core.CollectStats pass (the GPTQHessian field).
func GPTQ(m *model.Model, st *core.Stats, bits, groupSize int) (*Report, error) {
	clone := m.Clone()
	layers := clone.QuantizableLayers()
	var acct bitAccounting
	for i, ref := range layers {
		cfg := gptq.Config{Bits: bits, GroupSize: groupSize, BlockSize: groupSize, PercDamp: 0.01}
		q, err := gptq.Quantize(ref.Linear.P.W, st.Layers[i].GPTQHessian(), cfg)
		if err != nil {
			return nil, fmt.Errorf("baselines: gptq %s: %w", ref.Name(), err)
		}
		ref.Linear.P.W.CopyFrom(q.Dequantize())
		acct.add(ref.NumWeights(), float64(bits))
	}
	return &Report{Method: fmt.Sprintf("GPTQ-%dbit", bits), Model: clone, AvgBits: acct.avg()}, nil
}

// SmoothQuant applies per-input-channel magnitude smoothing
// s_j = max(|X_j|)^α / max(|W_:,j|)^(1−α) before round-to-nearest
// quantization (Xiao et al., ICML 2023). In the full system the activation
// is divided by s and quantized too; in this weight-only reproduction the
// smoothing is applied and folded back after quantization, preserving the
// method's weight-grid redistribution. Channel activation magnitudes come
// from the calibration statistics (sqrt of diag XᵀX).
func SmoothQuant(m *model.Model, st *core.Stats, bits, groupSize int, alpha float64) (*Report, error) {
	if alpha < 0 || alpha > 1 {
		return nil, fmt.Errorf("baselines: smoothquant alpha %v outside [0,1]", alpha)
	}
	clone := m.Clone()
	layers := clone.QuantizableLayers()
	var acct bitAccounting
	for i, ref := range layers {
		w := ref.Linear.P.W
		h := st.Layers[i].GPTQHessian()
		scales := make([]float64, w.Cols)
		for j := range scales {
			actMag := math.Sqrt(math.Abs(h.At(j, j)))
			wMag := 0.0
			for r := 0; r < w.Rows; r++ {
				if a := math.Abs(w.At(r, j)); a > wMag {
					wMag = a
				}
			}
			if actMag == 0 || wMag == 0 {
				scales[j] = 1
				continue
			}
			scales[j] = math.Pow(actMag, alpha) / math.Pow(wMag, 1-alpha)
			if scales[j] < 1e-6 {
				scales[j] = 1e-6
			}
		}
		smoothed := w.Clone()
		for r := 0; r < w.Rows; r++ {
			row := smoothed.Row(r)
			for j := range row {
				row[j] *= scales[j]
			}
		}
		q := quant.RTN(smoothed, bits, groupSize, false)
		dq := q.Dequantize()
		for r := 0; r < w.Rows; r++ {
			row := dq.Row(r)
			for j := range row {
				row[j] /= scales[j]
			}
		}
		w.CopyFrom(dq)
		acct.add(ref.NumWeights(), float64(bits))
	}
	return &Report{Method: fmt.Sprintf("SmoothQuant-%dbit", bits), Model: clone, AvgBits: acct.avg()}, nil
}

// OWQ implements outlier-aware weight quantization (Lee et al. 2023): input
// channels whose activation-scaled saliency diag(H)_j·||W_:,j||² is largest
// stay in full precision; the rest are GPTQ-quantized with those columns
// frozen (their Hessian columns removed from the compensation problem by
// quantizing the reduced matrix). outlierFrac is the fraction of input
// channels kept at 16 bits.
func OWQ(m *model.Model, st *core.Stats, bits, groupSize int, outlierFrac float64) (*Report, error) {
	if outlierFrac < 0 || outlierFrac >= 1 {
		return nil, fmt.Errorf("baselines: owq outlier fraction %v outside [0,1)", outlierFrac)
	}
	clone := m.Clone()
	layers := clone.QuantizableLayers()
	var acct bitAccounting
	for i, ref := range layers {
		w := ref.Linear.P.W
		h := st.Layers[i].GPTQHessian()
		nOut := int(outlierFrac * float64(w.Cols))
		keep := topSaliencyColumns(w, h, nOut)

		// Quantize the non-outlier columns with GPTQ on the reduced
		// problem; outlier columns pass through at full precision.
		rest := make([]int, 0, w.Cols-len(keep))
		inKeep := make(map[int]bool, len(keep))
		for _, c := range keep {
			inKeep[c] = true
		}
		for c := 0; c < w.Cols; c++ {
			if !inKeep[c] {
				rest = append(rest, c)
			}
		}
		sub := tensor.New(w.Rows, len(rest))
		for r := 0; r < w.Rows; r++ {
			for k, c := range rest {
				sub.Set(r, k, w.At(r, c))
			}
		}
		subH := tensor.New(len(rest), len(rest))
		for a, ca := range rest {
			for b, cb := range rest {
				subH.Set(a, b, h.At(ca, cb))
			}
		}
		gs := groupSize
		if gs > len(rest) {
			gs = len(rest)
		}
		q, err := gptq.Quantize(sub, subH, gptq.Config{Bits: bits, GroupSize: gs, BlockSize: gs, PercDamp: 0.01})
		if err != nil {
			return nil, fmt.Errorf("baselines: owq %s: %w", ref.Name(), err)
		}
		dq := q.Dequantize()
		for r := 0; r < w.Rows; r++ {
			for k, c := range rest {
				w.Set(r, c, dq.At(r, k))
			}
		}
		nW := ref.NumWeights()
		fpWeights := w.Rows * len(keep)
		acct.add(nW-fpWeights, float64(bits))
		acct.add(fpWeights, 16)
	}
	return &Report{Method: fmt.Sprintf("OWQ-%dbit", bits), Model: clone, AvgBits: acct.avg()}, nil
}

// topSaliencyColumns returns the indices of the n columns with the largest
// diag(H)_j · ||W_:,j||² saliency.
func topSaliencyColumns(w, h *tensor.Mat, n int) []int {
	type cs struct {
		col int
		s   float64
	}
	scores := make([]cs, w.Cols)
	for j := 0; j < w.Cols; j++ {
		colNorm := 0.0
		for r := 0; r < w.Rows; r++ {
			v := w.At(r, j)
			colNorm += v * v
		}
		scores[j] = cs{col: j, s: h.At(j, j) * colNorm}
	}
	// Partial selection sort for the top n (n is small).
	out := make([]int, 0, n)
	for k := 0; k < n && k < len(scores); k++ {
		best := k
		for i := k + 1; i < len(scores); i++ {
			if scores[i].s > scores[best].s {
				best = i
			}
		}
		scores[k], scores[best] = scores[best], scores[k]
		out = append(out, scores[k].col)
	}
	return out
}

// PBLLM implements partial binarization (Shang et al. 2023): the keepFrac
// most salient weights (by Hessian-diagonal-weighted magnitude, the paper's
// Hessian criterion) stay at 16 bits, the rest are binarized to 1 bit with
// per-group sign-mean scaling. The paper's rows "PB-LLM 30%" / "PB-LLM 10%"
// correspond to keepFrac 0.3 / 0.1.
func PBLLM(m *model.Model, st *core.Stats, keepFrac float64, groupSize int) (*Report, error) {
	if keepFrac < 0 || keepFrac >= 1 {
		return nil, fmt.Errorf("baselines: pb-llm keep fraction %v outside [0,1)", keepFrac)
	}
	clone := m.Clone()
	layers := clone.QuantizableLayers()
	var acct bitAccounting
	for i, ref := range layers {
		w := ref.Linear.P.W
		h := st.Layers[i].GPTQHessian()
		keep := saliencyMask(w, h, keepFrac)
		b := quant.BinarizeSelective(w, keep, groupSize)
		w.CopyFrom(b)
		nW := ref.NumWeights()
		kept := 0
		for _, k := range keep {
			if k {
				kept++
			}
		}
		acct.add(kept, 16)
		acct.add(nW-kept, 1)
	}
	return &Report{Method: fmt.Sprintf("PB-LLM-%d%%", int(keepFrac*100)), Model: clone, AvgBits: acct.avg()}, nil
}

// saliencyMask marks the top keepFrac weights by |w|·sqrt(diag(H)) within
// each layer.
func saliencyMask(w, h *tensor.Mat, keepFrac float64) []bool {
	n := w.Rows * w.Cols
	type ws struct {
		idx int
		s   float64
	}
	scores := make([]ws, n)
	for r := 0; r < w.Rows; r++ {
		for c := 0; c < w.Cols; c++ {
			i := r*w.Cols + c
			scores[i] = ws{idx: i, s: math.Abs(w.At(r, c)) * math.Sqrt(math.Abs(h.At(c, c)))}
		}
	}
	kth := int(keepFrac * float64(n))
	mask := make([]bool, n)
	if kth == 0 {
		return mask
	}
	// Threshold via quickselect-free approach: sort a copy of scores.
	sorted := make([]float64, n)
	for i, s := range scores {
		sorted[i] = s.s
	}
	sort.Float64s(sorted)
	thresh := sorted[n-kth]
	kept := 0
	for _, s := range scores {
		if s.s >= thresh && kept < kth {
			mask[s.idx] = true
			kept++
		}
	}
	return mask
}

// FPQ quantizes every layer to the e2m1 FP4 grid with per-group scales —
// the stand-in for LLM-FP4 ("FPQ" in Table 2).
func FPQ(m *model.Model, groupSize int) *Report {
	clone := m.Clone()
	var acct bitAccounting
	for _, ref := range clone.QuantizableLayers() {
		dq, _ := quant.FP4Matrix(ref.Linear.P.W, groupSize)
		ref.Linear.P.W.CopyFrom(dq)
		acct.add(ref.NumWeights(), 4)
	}
	return &Report{Method: "FPQ-4bit", Model: clone, AvgBits: acct.avg()}
}

package baselines

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/eval"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/train"
)

var testModel = sync.OnceValue(func() *model.Model {
	src := data.NewC4Like(32)
	m := model.New(model.Tiny(), 1)
	train.Train(m, src, train.Config{Steps: 250, BatchSize: 2, SeqLen: 16, LR: 3e-3, Warmup: 15, ClipNorm: 1, Seed: 1})
	return m
})

var testStats = sync.OnceValue(func() *core.Stats {
	src := data.NewC4Like(32)
	calib := data.SampleCalibration(rand.New(rand.NewSource(42)), src, 16, 16)
	st, err := core.CollectStats(testModel(), calib, core.CollectOptions{Probes: 2, Seed: 1})
	if err != nil {
		panic(err)
	}
	return st
})

func evalSegs() [][]int {
	src := data.NewC4Like(32)
	rng := rand.New(rand.NewSource(77))
	segs := make([][]int, 25)
	for i := range segs {
		segs[i] = src.Generate(rng, 16)
	}
	return segs
}

func TestRTNPreservesQualityAt8Bit(t *testing.T) {
	m := testModel()
	segs := evalSegs()
	fp := eval.PerplexityOnSegments(m, segs)
	r := RTN(m, 8, 8)
	if r.AvgBits != 8 {
		t.Fatalf("avg bits %v", r.AvgBits)
	}
	q := eval.PerplexityOnSegments(r.Model, segs)
	if math.Abs(q-fp)/fp > 0.02 {
		t.Fatalf("8-bit RTN PPL %v vs FP %v", q, fp)
	}
}

func TestRTNDegradesMonotonically(t *testing.T) {
	m := testModel()
	segs := evalSegs()
	p8 := eval.PerplexityOnSegments(RTN(m, 8, 8).Model, segs)
	p4 := eval.PerplexityOnSegments(RTN(m, 4, 8).Model, segs)
	p2 := eval.PerplexityOnSegments(RTN(m, 2, 8).Model, segs)
	if !(p8 <= p4 && p4 < p2) {
		t.Fatalf("RTN PPL not monotone: 8→%v 4→%v 2→%v", p8, p4, p2)
	}
}

func TestGPTQBeatsRTNAtLowBits(t *testing.T) {
	m := testModel()
	segs := evalSegs()
	g, err := GPTQ(m, testStats(), 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	pg := eval.PerplexityOnSegments(g.Model, segs)
	pr := eval.PerplexityOnSegments(RTN(m, 2, 8).Model, segs)
	if pg >= pr {
		t.Fatalf("GPTQ 2-bit PPL %v not better than RTN %v", pg, pr)
	}
}

func TestSmoothQuantRuns(t *testing.T) {
	m := testModel()
	r, err := SmoothQuant(m, testStats(), 4, 8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if r.AvgBits != 4 {
		t.Fatalf("avg bits %v", r.AvgBits)
	}
	segs := evalSegs()
	fp := eval.PerplexityOnSegments(m, segs)
	q := eval.PerplexityOnSegments(r.Model, segs)
	if q > fp*2 {
		t.Fatalf("SmoothQuant 4-bit PPL %v vs FP %v", q, fp)
	}
	if _, err := SmoothQuant(m, testStats(), 4, 8, 1.5); err == nil {
		t.Fatal("alpha out of range must error")
	}
}

func TestOWQKeepsOutliersExact(t *testing.T) {
	m := testModel()
	r, err := OWQ(m, testStats(), 4, 8, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Average bits must exceed 4 because of the fp16 outlier columns.
	if r.AvgBits <= 4 || r.AvgBits >= 6 {
		t.Fatalf("OWQ avg bits %v", r.AvgBits)
	}
	// Some weights must be bit-exact copies of the originals (the outlier
	// columns).
	orig := m.QuantizableLayers()[0].Linear.P.W
	got := r.Model.QuantizableLayers()[0].Linear.P.W
	exact := 0
	for i := range orig.Data {
		if orig.Data[i] == got.Data[i] {
			exact++
		}
	}
	if exact == 0 {
		t.Fatal("OWQ kept no weights at full precision")
	}
	if exact == len(orig.Data) {
		t.Fatal("OWQ quantized nothing")
	}
	if _, err := OWQ(m, testStats(), 4, 8, 1.0); err == nil {
		t.Fatal("outlier fraction 1.0 must error")
	}
}

func TestPBLLMAccounting(t *testing.T) {
	m := testModel()
	r, err := PBLLM(m, testStats(), 0.3, 8)
	if err != nil {
		t.Fatal(err)
	}
	// 30% at 16 bits + 70% at 1 bit = 5.5 avg.
	if math.Abs(r.AvgBits-5.5) > 0.2 {
		t.Fatalf("PB-LLM-30%% avg bits %v, want ~5.5", r.AvgBits)
	}
	r10, err := PBLLM(m, testStats(), 0.1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r10.AvgBits-2.5) > 0.2 {
		t.Fatalf("PB-LLM-10%% avg bits %v, want ~2.5", r10.AvgBits)
	}
	if _, err := PBLLM(m, testStats(), -0.1, 8); err == nil {
		t.Fatal("negative keep fraction must error")
	}
}

func TestPBLLMDegradesMoreThanGPTQ4(t *testing.T) {
	// The paper's motivating comparison: binarizing most weights hurts more
	// than 4-bit quantization even when the average bit width is higher.
	m := testModel()
	segs := evalSegs()
	pb, err := PBLLM(m, testStats(), 0.1, 8)
	if err != nil {
		t.Fatal(err)
	}
	g, err := GPTQ(m, testStats(), 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	ppb := eval.PerplexityOnSegments(pb.Model, segs)
	pg := eval.PerplexityOnSegments(g.Model, segs)
	if ppb <= pg {
		t.Fatalf("PB-LLM-10%% PPL %v unexpectedly better than GPTQ-4bit %v", ppb, pg)
	}
}

func TestFPQRuns(t *testing.T) {
	m := testModel()
	segs := evalSegs()
	r := FPQ(m, 8)
	if r.AvgBits != 4 {
		t.Fatalf("avg bits %v", r.AvgBits)
	}
	fp := eval.PerplexityOnSegments(m, segs)
	q := eval.PerplexityOnSegments(r.Model, segs)
	if q > fp*2 {
		t.Fatalf("FPQ PPL %v vs FP %v", q, fp)
	}
}

func TestQATImprovesOverPlainRTN(t *testing.T) {
	m := testModel()
	src := data.NewC4Like(32)
	segs := evalSegs()
	cfg := DefaultQATConfig(2)
	cfg.Steps = 40
	cfg.GroupSize = 8
	r, err := QAT(m, src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.AvgBits != 2 {
		t.Fatalf("avg bits %v", r.AvgBits)
	}
	pq := eval.PerplexityOnSegments(r.Model, segs)
	pr := eval.PerplexityOnSegments(RTN(m, 2, 8).Model, segs)
	if pq >= pr {
		t.Fatalf("QAT 2-bit PPL %v not better than RTN 2-bit %v", pq, pr)
	}
}

func TestQATValidation(t *testing.T) {
	if _, err := QAT(testModel(), data.NewC4Like(32), QATConfig{Bits: 0}); err == nil {
		t.Fatal("bits 0 must error")
	}
}

func TestSampleFromModelShape(t *testing.T) {
	m := testModel()
	rng := rand.New(rand.NewSource(5))
	seq := sampleFromModel(m, rng, 12)
	if len(seq) != 12 {
		t.Fatalf("sampled %d tokens", len(seq))
	}
	for _, tok := range seq {
		if tok < 0 || tok >= m.Cfg.Vocab {
			t.Fatalf("token %d out of range", tok)
		}
	}
}

func TestBaselinesDoNotMutateInput(t *testing.T) {
	m := testModel()
	before := nn.AsLinear(m.Blocks[0].Attn.WQ).P.W.Clone()
	RTN(m, 2, 8)
	FPQ(m, 8)
	if _, err := GPTQ(m, testStats(), 4, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := PBLLM(m, testStats(), 0.2, 8); err != nil {
		t.Fatal(err)
	}
	if !nn.AsLinear(m.Blocks[0].Attn.WQ).P.W.Equal(before, 0) {
		t.Fatal("baseline mutated the input model")
	}
}

package baselines

import (
	"testing"

	"repro/internal/eval"
)

func TestSmoothQuantWAForwardOnly(t *testing.T) {
	m := testModel()
	r, err := SmoothQuantWA(m, testStats(), 8, 8, 8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	segs := evalSegs()
	fp := eval.PerplexityOnSegments(m, segs)
	q := eval.PerplexityOnSegments(r.Model, segs)
	// W8A8 must be nearly lossless.
	if q > fp*1.05 {
		t.Fatalf("W8A8 PPL %v vs FP %v", q, fp)
	}
	// The returned model carries runtime transforms.
	l := r.Model.QuantizableLayers()[0].Linear
	if l.InScale == nil || l.ActQuant == nil {
		t.Fatal("W8A8 model missing runtime transforms")
	}
}

func TestSmoothQuantWAActivationBitsMatter(t *testing.T) {
	m := testModel()
	segs := evalSegs()
	ppl := func(aBits int) float64 {
		r, err := SmoothQuantWA(m, testStats(), 8, aBits, 8, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		return eval.PerplexityOnSegments(r.Model, segs)
	}
	p8, p3 := ppl(8), ppl(3)
	if p3 <= p8 {
		t.Fatalf("3-bit activations PPL %v not worse than 8-bit %v", p3, p8)
	}
}

func TestSmoothQuantWAValidation(t *testing.T) {
	m := testModel()
	if _, err := SmoothQuantWA(m, testStats(), 8, 0, 8, 0.5); err == nil {
		t.Fatal("activation bits 0 must error")
	}
	if _, err := SmoothQuantWA(m, testStats(), 8, 8, 8, 2); err == nil {
		t.Fatal("alpha out of range must error")
	}
}

func TestSmoothQuantWABackwardPanics(t *testing.T) {
	m := testModel()
	r, err := SmoothQuantWA(m, testStats(), 8, 8, 8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Backward through deployment transforms must panic")
		}
	}()
	batchIDs := []int{1, 2, 3, 4}
	targets := []int{2, 3, 4, 5}
	r.Model.LossAndBackward(batchIDs, targets)
}

package baselines

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/quant"
)

// SmoothQuantWA is the full weight+activation SmoothQuant system: the
// per-channel smoothing scale s_j = max|X_j|^α / max|W_:,j|^(1−α) is folded
// into the weights (W ← W·diag(s)) before weight quantization, and its
// inverse is applied to the activations at runtime (x ← x/s) followed by
// dynamic per-token activation fake quantization — W8A8 when wBits = aBits
// = 8. This exercises the deployment-time input transforms on nn.Linear.
//
// The returned model carries runtime transforms; it supports Forward-only
// use (perplexity / zero-shot eval, generation), not further training.
func SmoothQuantWA(m *model.Model, st *core.Stats, wBits, aBits, groupSize int, alpha float64) (*Report, error) {
	if alpha < 0 || alpha > 1 {
		return nil, fmt.Errorf("baselines: smoothquant alpha %v outside [0,1]", alpha)
	}
	if aBits < 2 || aBits > 16 {
		return nil, fmt.Errorf("baselines: activation bits %d", aBits)
	}
	clone := m.Clone()
	layers := clone.QuantizableLayers()
	var acct bitAccounting
	for i, ref := range layers {
		w := ref.Linear.P.W
		h := st.Layers[i].GPTQHessian()
		scales := make([]float64, w.Cols)
		for j := range scales {
			actMag := math.Sqrt(math.Abs(h.At(j, j)))
			wMag := 0.0
			for r := 0; r < w.Rows; r++ {
				if a := math.Abs(w.At(r, j)); a > wMag {
					wMag = a
				}
			}
			if actMag == 0 || wMag == 0 {
				scales[j] = 1
				continue
			}
			scales[j] = math.Pow(actMag, alpha) / math.Pow(wMag, 1-alpha)
			if scales[j] < 1e-6 {
				scales[j] = 1e-6
			}
		}
		// Fold the scale into the weights, quantize, keep the folded form:
		// at runtime the layer divides its input by the same scales.
		for r := 0; r < w.Rows; r++ {
			row := w.Row(r)
			for j := range row {
				row[j] *= scales[j]
			}
		}
		q := quant.RTN(w, wBits, groupSize, false)
		w.CopyFrom(q.Dequantize())
		ref.Linear.InScale = scales
		ref.Linear.ActQuant = &quant.ActQuantizer{Bits: aBits, PerToken: true}
		acct.add(ref.NumWeights(), float64(wBits))
	}
	return &Report{
		Method: fmt.Sprintf("SmoothQuant-W%dA%d", wBits, aBits),
		Model:  clone,
		AvgBits: func() float64 {
			return acct.avg()
		}(),
	}, nil
}

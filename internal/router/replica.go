// Per-replica health: a small circuit breaker fed by two signals — passive
// (real requests failing) and active (background /healthz probes) — so the
// router both reacts instantly to a dying replica under load and notices
// recovery without sacrificing live traffic to test it.
//
// State machine:
//
//	Healthy ──(EjectAfter consecutive failures)──▶ Ejected
//	Ejected ──(backoff expires)──▶ HalfOpen          (breaker cracks open)
//	HalfOpen ──(one trial request succeeds, or a probe sees 200)──▶ Healthy
//	HalfOpen ──(trial fails)──▶ Ejected              (backoff doubled)
//	any ──(/healthz says "draining")──▶ Draining     (alive, not admitting)
//
// Ejection backoff grows exponentially between BackoffMin and BackoffMax
// with seeded jitter on the probe cadence, so a crashed replica is probed
// gently instead of hammered, and a fleet of routers doesn't probe in
// lockstep. 429/503 responses never feed the breaker: a saturated or
// draining replica is healthy, just not admitting — that's spill, not
// failure.
package router

import (
	"sync"
	"time"
)

// health is a replica's admission state.
type health int

const (
	stateHealthy health = iota
	stateEjected
	stateHalfOpen
	stateDraining
)

func (h health) String() string {
	switch h {
	case stateHealthy:
		return "healthy"
	case stateEjected:
		return "ejected"
	case stateHalfOpen:
		return "half-open"
	case stateDraining:
		return "draining"
	}
	return "unknown"
}

// replica is one backend server: its identity, breaker state, and
// counters. All mutable state sits under mu; the prober goroutine and
// every request handler share it.
type replica struct {
	id  int
	url string

	mu          sync.Mutex
	state       health
	consecFails int           // consecutive failures (probe or request) since last success
	backoff     time.Duration // current ejection backoff; doubles per re-ejection
	reopenAt    time.Time     // when an Ejected breaker cracks to HalfOpen
	trial       bool          // HalfOpen trial request currently in flight

	// Counters, all under mu, surfaced in /v1/stats.
	requests  int64 // generate attempts routed here
	failures  int64 // attempts that failed (transport error / 5xx / broken stream)
	spills    int64 // attempts diverted away (unadmitted, or 429/503 answers)
	ejections int64 // Healthy/HalfOpen → Ejected transitions
	probes    int64 // active /healthz probes sent
}

// admit decides whether this replica may take a request right now, and is
// where the breaker cracks open: an Ejected replica whose backoff has
// expired admits exactly one trial (HalfOpen); its outcome — reported via
// reportSuccess/reportFailure — closes or re-opens the breaker.
func (rep *replica) admit(now time.Time) bool {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	switch rep.state {
	case stateHealthy:
		return true
	case stateDraining:
		return false
	case stateEjected:
		if now.Before(rep.reopenAt) {
			return false
		}
		rep.state = stateHalfOpen
		rep.trial = true
		return true
	case stateHalfOpen:
		if rep.trial {
			return false // one trial at a time
		}
		rep.trial = true
		return true
	}
	return false
}

// reportSuccess closes the breaker: any successful response (including
// 4xx — the replica answered) resets the failure streak.
func (rep *replica) reportSuccess() {
	rep.mu.Lock()
	rep.consecFails = 0
	rep.backoff = 0
	rep.trial = false
	rep.state = stateHealthy
	rep.mu.Unlock()
}

// reportFailure counts a failed attempt (transport error, 5xx, or a
// stream that died mid-body) and ejects the replica when the streak
// reaches ejectAfter — immediately if the failure was a HalfOpen trial,
// with the backoff doubled for the re-ejection.
func (rep *replica) reportFailure(now time.Time, ejectAfter int, backoffMin, backoffMax time.Duration) {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	rep.failures++
	rep.consecFails++
	switch rep.state {
	case stateHalfOpen:
		rep.trial = false
		rep.ejectLocked(now, backoffMin, backoffMax)
	case stateHealthy, stateDraining:
		if rep.consecFails >= ejectAfter {
			rep.ejectLocked(now, backoffMin, backoffMax)
		}
	case stateEjected:
		// Already out; a probe failure just pushes the reopen further.
		rep.ejectLocked(now, backoffMin, backoffMax)
	}
}

// ejectLocked opens the breaker with exponential backoff. Caller holds mu.
func (rep *replica) ejectLocked(now time.Time, backoffMin, backoffMax time.Duration) {
	if rep.state != stateEjected {
		rep.ejections++
	}
	rep.state = stateEjected
	if rep.backoff == 0 {
		rep.backoff = backoffMin
	} else if rep.backoff < backoffMax {
		rep.backoff *= 2
		if rep.backoff > backoffMax {
			rep.backoff = backoffMax
		}
	}
	rep.reopenAt = now.Add(rep.backoff)
}

// markDraining records a replica that answered 503/"draining": alive and
// honest about shutting down, so it leaves rotation without ejection
// mechanics. The prober flips it back when /healthz recovers.
func (rep *replica) markDraining() {
	rep.mu.Lock()
	if rep.state == stateHealthy || rep.state == stateHalfOpen {
		rep.state = stateDraining
		rep.trial = false
	}
	rep.mu.Unlock()
}

// snapshot returns the state and counters for /v1/stats.
func (rep *replica) snapshot() (st health, consec int, requests, failures, spills, ejections, probes int64) {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	return rep.state, rep.consecFails, rep.requests, rep.failures, rep.spills, rep.ejections, rep.probes
}

func (rep *replica) countRequest() { rep.mu.Lock(); rep.requests++; rep.mu.Unlock() }
func (rep *replica) countSpill()   { rep.mu.Lock(); rep.spills++; rep.mu.Unlock() }
func (rep *replica) countProbe()   { rep.mu.Lock(); rep.probes++; rep.mu.Unlock() }

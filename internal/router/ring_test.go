package router

import (
	"testing"
	"time"

	"repro/internal/prefixkey"
)

func sampleKeys(n int) []uint64 {
	keys := make([]uint64, n)
	h := prefixkey.Offset
	for i := range keys {
		h = mix(h, uint64(i)*2654435761)
		keys[i] = h
	}
	return keys
}

// TestRingOrderCoversAllOnce: for any key, the preference order is a
// permutation of the replica set — every replica appears exactly once, the
// affinity target first.
func TestRingOrderCoversAllOnce(t *testing.T) {
	ids := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	r := newRing(ids)
	for _, key := range sampleKeys(200) {
		order := r.order(key)
		if len(order) != len(ids) {
			t.Fatalf("order(%d) has %d entries, want %d", key, len(order), len(ids))
		}
		seen := map[int]bool{}
		for _, idx := range order {
			if idx < 0 || idx >= len(ids) || seen[idx] {
				t.Fatalf("order(%d) = %v: not a permutation", key, order)
			}
			seen[idx] = true
		}
	}
}

// TestRingDeterministic: the ring is a pure function of the id list — two
// independently built rings agree on every key, which is what lets
// restarted (or multiple) routers keep the same affinity map.
func TestRingDeterministic(t *testing.T) {
	ids := []string{"http://a:1", "http://b:2", "http://c:3"}
	r1, r2 := newRing(ids), newRing(ids)
	for _, key := range sampleKeys(100) {
		o1, o2 := r1.order(key), r2.order(key)
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Fatalf("rings disagree at key %d: %v vs %v", key, o1, o2)
			}
		}
	}
}

// TestRingStabilityUnderRemoval is the consistent-hashing property: drop
// one replica and every key whose affinity target survives keeps it. Only
// the dead replica's keys move (to their next successor), so a crash
// invalidates ~1/N of the fleet's cache warmth, not all of it.
func TestRingStabilityUnderRemoval(t *testing.T) {
	ids := []string{"http://a:1", "http://b:2", "http://c:3"}
	full := newRing(ids)
	const removed = 1
	survivors := []string{ids[0], ids[2]} // indices renumber: 0→0, 2→1
	reduced := newRing(survivors)
	renumber := map[int]int{0: 0, 2: 1}

	moved := 0
	for _, key := range sampleKeys(300) {
		before := full.order(key)[0]
		after := reduced.order(key)[0]
		if before == removed {
			moved++
			// The displaced key must land on its former first successor.
			var successor int
			for _, idx := range full.order(key)[1:] {
				if idx != removed {
					successor = idx
					break
				}
			}
			if after != renumber[successor] {
				t.Fatalf("displaced key %d went to %d, want former successor %d", key, after, renumber[successor])
			}
			continue
		}
		if after != renumber[before] {
			t.Fatalf("key %d moved from surviving replica %d to %d", key, before, after)
		}
	}
	if moved == 0 || moved == 300 {
		t.Fatalf("removal moved %d/300 keys; want a ~1/3 fraction", moved)
	}
}

// TestRouteKeyPageAlignment: prompts sharing a page-aligned prefix share a
// routing key — the alignment the replicas' prefix caches use, so the
// router sends cache-mates to the same replica even when their tails
// differ.
func TestRouteKeyPageAlignment(t *testing.T) {
	const rows = 16
	base := make([]int, 20)
	for i := range base {
		base[i] = i + 1
	}
	other := append(append([]int{}, base[:16]...), 99, 98, 97) // same first page, different tail
	if routeKey(base, rows) != routeKey(other, rows) {
		t.Fatal("prompts sharing a full page must share a routing key")
	}
	diverged := append([]int{}, base...)
	diverged[3] = 42 // differs inside the first page
	if routeKey(base, rows) == routeKey(diverged, rows) {
		t.Fatal("prompts differing inside the first page must not share a routing key")
	}
	// Sub-page prompts hash in full: identical prompts co-locate, different
	// ones (even sharing all but the last token) need not.
	short := []int{1, 2, 3}
	if routeKey(short, rows) != routeKey([]int{1, 2, 3}, rows) {
		t.Fatal("identical short prompts must share a key")
	}
}

// TestBreakerLifecycle drives the circuit breaker through its whole state
// machine with an explicit clock: healthy → ejected after the failure
// streak, closed to traffic during backoff, half-open (single trial) at
// expiry, re-ejected with doubled backoff on a failed trial, healthy again
// on a successful one.
func TestBreakerLifecycle(t *testing.T) {
	const ejectAfter = 3
	min, max := 100*time.Millisecond, 800*time.Millisecond
	now := time.Unix(1000, 0)
	rep := &replica{url: "http://x"}

	if !rep.admit(now) {
		t.Fatal("fresh replica must admit")
	}
	for i := 0; i < ejectAfter-1; i++ {
		rep.reportFailure(now, ejectAfter, min, max)
		if !rep.admit(now) {
			t.Fatalf("replica ejected after only %d failures", i+1)
		}
	}
	rep.reportFailure(now, ejectAfter, min, max)
	if rep.admit(now) {
		t.Fatal("replica must be ejected after the failure streak")
	}
	if _, _, _, _, _, ejections, _ := rep.snapshot(); ejections != 1 {
		t.Fatalf("ejections = %d, want 1", ejections)
	}

	// Backoff holds the breaker open…
	if rep.admit(now.Add(min / 2)) {
		t.Fatal("breaker admitted before backoff expiry")
	}
	// …then cracks to half-open: exactly one trial.
	at := now.Add(min)
	if !rep.admit(at) {
		t.Fatal("breaker must crack open at backoff expiry")
	}
	if rep.admit(at) {
		t.Fatal("half-open breaker must admit exactly one trial")
	}

	// Failed trial: re-ejected, backoff doubled.
	rep.reportFailure(at, ejectAfter, min, max)
	if rep.admit(at.Add(min)) {
		t.Fatal("re-ejected breaker must hold for the doubled backoff")
	}
	at = at.Add(2 * min)
	if !rep.admit(at) {
		t.Fatal("breaker must re-open after the doubled backoff")
	}

	// Successful trial closes it for good.
	rep.reportSuccess()
	if !rep.admit(at) || !rep.admit(at) {
		t.Fatal("closed breaker must admit freely")
	}
}

// TestBreakerDraining: a draining replica leaves rotation without breaker
// mechanics, and a success (the prober seeing 200 again) restores it.
func TestBreakerDraining(t *testing.T) {
	now := time.Unix(1000, 0)
	rep := &replica{url: "http://x"}
	rep.markDraining()
	if rep.admit(now) {
		t.Fatal("draining replica must not admit")
	}
	if st, _, _, _, _, ejections, _ := rep.snapshot(); st != stateDraining || ejections != 0 {
		t.Fatalf("state=%v ejections=%d, want draining/0", st, ejections)
	}
	rep.reportSuccess()
	if !rep.admit(now) {
		t.Fatal("recovered replica must admit again")
	}
}

// End-to-end tests of the routing tier: real serve.Server replicas behind
// httptest listeners, a real Router in front, -race throughout. The two
// headline properties:
//
//   - Fault tolerance: killing a replica mid-load produces zero
//     client-visible errors, and every reply — streamed or not — is
//     bit-identical to the serve.Sequential reference.
//   - Cache affinity: prefix-sharing workloads routed by the ring see a
//     fleet-aggregate prefix-cache hit rate matching a single replica's,
//     while a round-robin control collapses.
package router_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/router"
	"repro/internal/serve"
)

// fleet is a set of in-process replicas plus a router in front.
type fleet struct {
	servers  []*serve.Server
	backends []*httptest.Server
	rt       *router.Router
	front    *httptest.Server
	m        *model.Model // reference copy, identical to every replica's
	opts     serve.Options
}

func (f *fleet) close() {
	f.front.Close()
	f.rt.Close()
	for _, b := range f.backends {
		b.Close()
	}
	for _, s := range f.servers {
		s.Close()
	}
}

// killReplica simulates a crash: in-flight connections are severed, new
// ones refused.
func (f *fleet) killReplica(i int) {
	f.backends[i].CloseClientConnections()
	f.backends[i].Close()
}

func fastRouterOptions(urls []string) router.Options {
	return router.Options{
		Replicas:      urls,
		ProbeInterval: 50 * time.Millisecond,
		ProbeTimeout:  2 * time.Second,
		EjectAfter:    2,
		BackoffMin:    20 * time.Millisecond,
		BackoffMax:    200 * time.Millisecond,
		Seed:          42,
	}
}

// newFleet boots n identical replicas (same model seed — the determinism
// contract's precondition) and a router over them.
func newFleet(t *testing.T, n int, serveOpts serve.Options, tweak func(*router.Options)) *fleet {
	t.Helper()
	f := &fleet{m: model.New(model.Tiny(), 1), opts: serveOpts}
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		srv := serve.NewServer(model.New(model.Tiny(), 1), serveOpts)
		backend := httptest.NewServer(srv.Handler())
		f.servers = append(f.servers, srv)
		f.backends = append(f.backends, backend)
		urls[i] = backend.URL
	}
	ropts := fastRouterOptions(urls)
	if tweak != nil {
		tweak(&ropts)
	}
	rt, err := router.New(ropts)
	if err != nil {
		t.Fatal(err)
	}
	f.rt = rt
	f.front = httptest.NewServer(rt.Handler())
	return f
}

// testRequests builds a varied batch: distinct seeds and temperatures,
// prompts long enough to span KV pages (so routing keys differ and spread
// across the ring).
func testRequests(n int) []serve.GenerateRequest {
	reqs := make([]serve.GenerateRequest, n)
	for i := range reqs {
		prompt := make([]int, 18+(i%8))
		for j := range prompt {
			prompt[j] = (i*7 + j*3) % 32
		}
		reqs[i] = serve.GenerateRequest{
			ID:          fmt.Sprintf("req-%d", i),
			Tokens:      prompt,
			MaxTokens:   6 + i%4,
			Temperature: float64(i%3) * 0.5,
			Seed:        int64(i),
		}
	}
	return reqs
}

// reference computes the oracle reply via serve.Sequential on an
// identical model copy.
func (f *fleet) reference(req serve.GenerateRequest) serve.Result {
	return serve.Sequential(f.m, serve.Request{
		ID:          req.ID,
		Prompt:      req.Tokens,
		MaxTokens:   req.MaxTokens,
		Temperature: req.Temperature,
		Seed:        req.Seed,
		Stop:        req.Stop,
	}, f.opts)
}

// doPlain posts a non-streaming generate; goroutine-safe (no testing.T).
func doPlain(url string, req serve.GenerateRequest) (int, []byte, error) {
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/v1/generate", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, b, nil
}

// doStream posts a streaming generate and assembles it, enforcing SSE
// integrity as it reads: token event indices contiguous from 0 (the
// property resume dedup must preserve), exactly one non-error final
// event. Goroutine-safe.
func doStream(url string, req serve.GenerateRequest) ([]serve.StreamEvent, serve.GenerateResponse, error) {
	req.Stream = true
	var final serve.GenerateResponse
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/v1/generate", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, final, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return nil, final, fmt.Errorf("%s: stream status %d: %s", req.ID, resp.StatusCode, b)
	}
	var events []serve.StreamEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		payload := strings.TrimPrefix(line, "data: ")
		if strings.Contains(payload, "finish_reason") {
			if err := json.Unmarshal([]byte(payload), &final); err != nil {
				return nil, final, fmt.Errorf("%s: final event: %v", req.ID, err)
			}
			if final.Error != "" || final.FinishReason == string(serve.FinishError) {
				return nil, final, fmt.Errorf("%s: stream finished with error %q", req.ID, final.Error)
			}
			return events, final, nil
		}
		var ev serve.StreamEvent
		if err := json.Unmarshal([]byte(payload), &ev); err != nil {
			return nil, final, fmt.Errorf("%s: token event: %v", req.ID, err)
		}
		if ev.Index != len(events) {
			return nil, final, fmt.Errorf("%s: event index %d at position %d — resume dedup broke the sequence", req.ID, ev.Index, len(events))
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, final, fmt.Errorf("%s: stream read: %v", req.ID, err)
	}
	return nil, final, fmt.Errorf("%s: stream ended without a final event", req.ID)
}

// checkAgainstReference verifies a reply (events may be nil for plain
// replies) token-for-token against the Sequential oracle.
func (f *fleet) checkAgainstReference(req serve.GenerateRequest, events []serve.StreamEvent, got serve.GenerateResponse) error {
	want := f.reference(req)
	if fmt.Sprint(got.Tokens) != fmt.Sprint(want.Tokens) {
		return fmt.Errorf("%s: tokens %v, reference %v", req.ID, got.Tokens, want.Tokens)
	}
	if got.FinishReason != string(want.FinishReason) {
		return fmt.Errorf("%s: finish %q, reference %q", req.ID, got.FinishReason, want.FinishReason)
	}
	if events != nil {
		if len(events) != len(want.Tokens) {
			return fmt.Errorf("%s: %d token events, reference has %d tokens", req.ID, len(events), len(want.Tokens))
		}
		for i, ev := range events {
			if ev.Token != want.Tokens[i] {
				return fmt.Errorf("%s: streamed token %d = %d, reference %d", req.ID, i, ev.Token, want.Tokens[i])
			}
		}
	}
	return nil
}

// routerStatsJSON fetches the router's /v1/stats.
func routerStatsJSON(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

func num(m map[string]any, key string) float64 {
	v, _ := m[key].(float64)
	return v
}

// TestRouterMatchesDirectAndSequential: through the router, every reply —
// plain and streamed — is byte-identical to asking a replica directly,
// and token-identical to the Sequential oracle. The router is invisible.
func TestRouterMatchesDirectAndSequential(t *testing.T) {
	f := newFleet(t, 3, serve.DefaultOptions(), nil)
	defer f.close()

	for _, req := range testRequests(9) {
		code, viaRouter, err := doPlain(f.front.URL, req)
		if err != nil || code != http.StatusOK {
			t.Fatalf("%s: status %d, err %v: %s", req.ID, code, err, viaRouter)
		}
		_, direct, err := doPlain(f.backends[0].URL, req)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(viaRouter, direct) {
			t.Fatalf("%s: router reply differs from direct replica reply:\n%s\nvs\n%s", req.ID, viaRouter, direct)
		}
		var got serve.GenerateResponse
		if err := json.Unmarshal(viaRouter, &got); err != nil {
			t.Fatal(err)
		}
		if err := f.checkAgainstReference(req, nil, got); err != nil {
			t.Fatal(err)
		}

		events, final, err := doStream(f.front.URL, req)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.checkAgainstReference(req, events, final); err != nil {
			t.Fatal(err)
		}
	}

	st := routerStatsJSON(t, f.front.URL)
	if got := num(st, "router_requests"); got != 18 {
		t.Fatalf("router_requests = %v, want 18", got)
	}
	if num(st, "router_errors") != 0 {
		t.Fatalf("router_errors = %v, want 0", num(st, "router_errors"))
	}
}

// TestRouterKillReplicaMidLoad is the headline fault-tolerance property:
// a replica killed (connections severed, listener closed) while a
// concurrent mixed stream/non-stream load runs produces ZERO
// client-visible errors, and every reply is bit-identical to the
// Sequential reference — the failover is genuinely transparent.
func TestRouterKillReplicaMidLoad(t *testing.T) {
	f := newFleet(t, 3, serve.DefaultOptions(), nil)
	defer f.close()

	reqs := testRequests(36)
	var wg sync.WaitGroup
	errs := make([]error, len(reqs))
	started := make(chan struct{})
	for i, req := range reqs {
		i, req := i, req
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-started
			if i%2 == 0 {
				code, body, err := doPlain(f.front.URL, req)
				if err != nil {
					errs[i] = err
					return
				}
				if code != http.StatusOK {
					errs[i] = fmt.Errorf("%s: status %d: %s", req.ID, code, body)
					return
				}
				var got serve.GenerateResponse
				if err := json.Unmarshal(body, &got); err != nil {
					errs[i] = err
					return
				}
				errs[i] = f.checkAgainstReference(req, nil, got)
				return
			}
			events, final, err := doStream(f.front.URL, req)
			if err != nil {
				errs[i] = err
				return
			}
			errs[i] = f.checkAgainstReference(req, events, final)
		}()
	}
	close(started)
	// Let the load get going, then kill a replica out from under it.
	time.Sleep(30 * time.Millisecond)
	f.killReplica(1)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// The fleet kept every promise; now confirm the router noticed the
	// death: the dead replica must get ejected (by request failures or
	// probe failures, whichever won the race).
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := routerStatsJSON(t, f.front.URL)
		if num(st, "router_errors") != 0 {
			t.Fatalf("router_errors = %v, want 0", num(st, "router_errors"))
		}
		if num(st, "router_ejections") >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dead replica never ejected: %v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestRouterStreamResumeBitIdentical forces the mid-stream failover path
// deterministically: a transport that cuts every stream from one replica
// after a few token events. Streams that start there must resume on a
// ring successor with no duplicated or missing token — assembled output
// bit-identical to the reference.
func TestRouterStreamResumeBitIdentical(t *testing.T) {
	cut := &cutReplicaTransport{inner: http.DefaultTransport, after: 180}
	f := newFleet(t, 3, serve.DefaultOptions(), func(o *router.Options) {
		o.Transport = cut
		o.EjectAfter = 1000 // isolate resume logic from the breaker
	})
	defer f.close()
	cut.victim.Store(f.backends[0].URL)

	for _, req := range testRequests(12) {
		req.MaxTokens = 10 // long enough to out-run the cut budget
		events, final, err := doStream(f.front.URL, req)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.checkAgainstReference(req, events, final); err != nil {
			t.Fatal(err)
		}
	}
	st := routerStatsJSON(t, f.front.URL)
	if num(st, "router_retries") == 0 {
		t.Fatalf("the cut transport never forced a retry: %v", st)
	}
	if num(st, "router_errors") != 0 {
		t.Fatalf("router_errors = %v, want 0", num(st, "router_errors"))
	}
}

// TestRouterSpillOnDraining: a draining replica (healthz 503, Submit
// rejected) loses its traffic to ring successors — clients see nothing,
// the router counts spills, PR-6 drain semantics hold across the fleet.
func TestRouterSpillOnDraining(t *testing.T) {
	f := newFleet(t, 3, serve.DefaultOptions(), nil)
	defer f.close()

	req := testRequests(1)[0]
	code, body, err := doPlain(f.front.URL, req)
	if err != nil || code != http.StatusOK {
		t.Fatalf("warm request: status %d err %v: %s", code, err, body)
	}
	// Find where it landed and drain that replica.
	target := -1
	for i, s := range f.servers {
		if s.Scheduler().Stats().Submitted == 1 {
			target = i
		}
	}
	if target < 0 {
		t.Fatal("could not locate the affinity target")
	}
	f.servers[target].SetDraining(true)
	f.servers[target].Scheduler().Drain()

	for i := 0; i < 3; i++ {
		code, body, err := doPlain(f.front.URL, req)
		if err != nil || code != http.StatusOK {
			t.Fatalf("post-drain request %d: status %d err %v: %s", i, code, err, body)
		}
	}
	if got := f.servers[target].Scheduler().Stats().Submitted; got != 1 {
		t.Fatalf("draining replica admitted %d requests, want 1 (pre-drain only)", got)
	}
	if st := routerStatsJSON(t, f.front.URL); num(st, "router_spills") == 0 {
		t.Fatalf("router_spills = 0 after draining the affinity target: %v", st)
	}
}

// TestRouterCacheAffinity: the reason the ring exists. A workload of
// prefix groups (shared 16-token page, varying tails) routed by prefix
// affinity keeps the fleet-aggregate hit rate at single-replica levels; a
// round-robin control over identical replicas collapses, because every
// group's pages must be re-warmed on every replica.
func TestRouterCacheAffinity(t *testing.T) {
	serveOpts := serve.DefaultOptions()
	serveOpts.PrefixCacheBytes = 1 << 20

	const groups, perGroup = 6, 6
	makeReq := func(g, r int) serve.GenerateRequest {
		prompt := make([]int, 18)
		for j := 0; j < 16; j++ {
			prompt[j] = (g*5 + j) % 32 // page shared within the group
		}
		prompt[16], prompt[17] = r%32, (g+r)%32 // tail varies per request
		return serve.GenerateRequest{
			ID: fmt.Sprintf("g%dr%d", g, r), Tokens: prompt, MaxTokens: 4, Seed: int64(g*100 + r),
		}
	}

	// Affinity fleet: all traffic through the router.
	f := newFleet(t, 3, serveOpts, nil)
	for g := 0; g < groups; g++ {
		for r := 0; r < perGroup; r++ {
			code, body, err := doPlain(f.front.URL, makeReq(g, r))
			if err != nil || code != http.StatusOK {
				t.Fatalf("affinity g%dr%d: status %d err %v: %s", g, r, code, err, body)
			}
		}
	}
	st := routerStatsJSON(t, f.front.URL)
	affHits, affMisses := num(st, "prefix_cache_hits"), num(st, "prefix_cache_misses")
	f.close()

	// Control fleet: identical workload, round-robin straight at replicas.
	c := newFleet(t, 3, serveOpts, nil)
	i := 0
	for g := 0; g < groups; g++ {
		for r := 0; r < perGroup; r++ {
			code, body, err := doPlain(c.backends[i%3].URL, makeReq(g, r))
			if err != nil || code != http.StatusOK {
				t.Fatalf("control g%dr%d: status %d err %v: %s", g, r, code, err, body)
			}
			i++
		}
	}
	var rrHits, rrMisses float64
	for _, s := range c.servers {
		cst := s.Scheduler().Stats()
		rrHits += float64(cst.PrefixCacheHits)
		rrMisses += float64(cst.PrefixCacheMisses)
	}
	c.close()

	affRate := affHits / (affHits + affMisses)
	rrRate := rrHits / (rrHits + rrMisses)
	t.Logf("affinity hit rate %.3f (%v/%v), round-robin %.3f (%v/%v)",
		affRate, affHits, affHits+affMisses, rrRate, rrHits, rrHits+rrMisses)
	// Single-replica expectation for this workload: 1 miss + (perGroup-1)
	// hits per group ≈ 0.83. Affinity must hold that; round-robin divides
	// each group across replicas and collapses toward 0.5.
	if affRate < 0.8 {
		t.Fatalf("affinity routing hit rate %.3f, want ≥ 0.8 (single-replica level)", affRate)
	}
	if rrRate > affRate-0.2 {
		t.Fatalf("round-robin control rate %.3f not meaningfully below affinity %.3f", rrRate, affRate)
	}
}

// TestRouterDrainRejects: Drain mirrors the replica semantics at the
// routing tier — healthz flips to 503/"draining", new generates get 503.
func TestRouterDrainRejects(t *testing.T) {
	f := newFleet(t, 2, serve.DefaultOptions(), nil)
	defer f.close()

	f.rt.Drain()
	code, body, err := doPlain(f.front.URL, testRequests(1)[0])
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusServiceUnavailable {
		t.Fatalf("draining router answered %d: %s", code, body)
	}
	hresp, err := http.Get(f.front.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var h map[string]any
	_ = json.NewDecoder(hresp.Body).Decode(&h)
	if hresp.StatusCode != http.StatusServiceUnavailable || h["status"] != "draining" {
		t.Fatalf("draining router healthz: %d %v", hresp.StatusCode, h)
	}
	if st := routerStatsJSON(t, f.front.URL); num(st, "router_rejected") == 0 {
		t.Fatal("router_rejected = 0 after a rejected request")
	}
}

// TestRouterHealthIdentity: the router's /healthz carries the replica
// model identity (model, vocab, maxseq) so clients that size their
// requests from it — loadgen does — work unchanged against the router.
func TestRouterHealthIdentity(t *testing.T) {
	f := newFleet(t, 2, serve.DefaultOptions(), nil)
	defer f.close()

	resp, err := http.Get(f.front.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || h["status"] != "ok" {
		t.Fatalf("healthz: %d %v", resp.StatusCode, h)
	}
	if h["model"] != "tiny" || h["vocab"] != float64(32) || h["maxseq"] != float64(32) {
		t.Fatalf("healthz identity: %v", h)
	}
	if h["replicas"] != float64(2) || h["healthy"] != float64(2) {
		t.Fatalf("healthz fleet view: %v", h)
	}
}

// TestRouterTextPrompt: text prompts tokenize through the same vocabulary
// as the replicas, so both request forms work through the router and
// replies stay byte-identical to a direct replica's.
func TestRouterTextPrompt(t *testing.T) {
	f := newFleet(t, 3, serve.DefaultOptions(), nil)
	defer f.close()

	// Build the prompt from real vocabulary words (the replicas and the
	// router construct the same deterministic synthetic vocabulary).
	v := data.NewVocabulary(model.Tiny().Vocab)
	words := []string{v.Word(3), v.Word(7), v.Word(11), v.Word(2), v.Word(29)}
	req := serve.GenerateRequest{ID: "text", Prompt: strings.Join(words, " "), MaxTokens: 4, Seed: 9}
	code, viaRouter, err := doPlain(f.front.URL, req)
	if err != nil || code != http.StatusOK {
		t.Fatalf("status %d err %v: %s", code, err, viaRouter)
	}
	_, direct, err := doPlain(f.backends[0].URL, req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(viaRouter, direct) {
		t.Fatalf("text reply differs through router:\n%s\nvs\n%s", viaRouter, direct)
	}
}

// TestRouterStreamQueryParam: the wire supports two ways to ask for a
// stream — the body flag and ?stream=1 — and the router must honor both.
// The query form is what aptq-loadgen uses, and the router has to request
// SSE from the upstream explicitly (the forwarded body alone says
// nothing about streaming).
func TestRouterStreamQueryParam(t *testing.T) {
	f := newFleet(t, 2, serve.DefaultOptions(), nil)
	defer f.close()

	req := serve.GenerateRequest{ID: "qstream", Tokens: []int{1, 2, 3}, MaxTokens: 5, Seed: 7}
	body, _ := json.Marshal(req) // Stream stays false: only the URL asks
	resp, err := http.Post(f.front.URL+"/v1/generate?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("content type %q, want an SSE stream", ct)
	}
	var events []serve.StreamEvent
	var final serve.GenerateResponse
	gotFinal := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		payload, ok := strings.CutPrefix(sc.Text(), "data: ")
		if !ok {
			continue
		}
		if strings.Contains(payload, "finish_reason") {
			if err := json.Unmarshal([]byte(payload), &final); err != nil {
				t.Fatalf("final event: %v", err)
			}
			gotFinal = true
			break
		}
		var ev serve.StreamEvent
		if err := json.Unmarshal([]byte(payload), &ev); err != nil {
			t.Fatalf("token event: %v", err)
		}
		events = append(events, ev)
	}
	if !gotFinal {
		t.Fatalf("stream ended without a final event (read %d token events, err %v)", len(events), sc.Err())
	}
	if final.Error != "" || final.FinishReason == string(serve.FinishError) {
		t.Fatalf("stream finished with error %q", final.Error)
	}
	if len(events) == 0 {
		t.Fatal("no token events before the final event")
	}
	if err := f.checkAgainstReference(req, events, final); err != nil {
		t.Fatal(err)
	}
}

// cutReplicaTransport severs every generate response from one victim URL
// after `after` body bytes — a deterministic mid-stream hangup aimed at a
// single replica.
type cutReplicaTransport struct {
	inner  http.RoundTripper
	after  int
	victim atomicString
}

func (c *cutReplicaTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := c.inner.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	v := c.victim.Load()
	if v != "" && req.URL.Path == "/v1/generate" && strings.HasPrefix(req.URL.String(), v) {
		resp.Body = &cutBody{inner: resp.Body, remaining: c.after}
	}
	return resp, nil
}

type cutBody struct {
	inner     io.ReadCloser
	remaining int
}

func (b *cutBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if len(p) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.inner.Read(p)
	b.remaining -= n
	return n, err
}

func (b *cutBody) Close() error { return b.inner.Close() }

type atomicString struct {
	mu sync.Mutex
	s  string
}

func (a *atomicString) Store(s string) { a.mu.Lock(); a.s = s; a.mu.Unlock() }
func (a *atomicString) Load() string   { a.mu.Lock(); defer a.mu.Unlock(); return a.s }

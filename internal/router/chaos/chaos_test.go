package chaos

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// faultPattern runs n requests through a seeded Transport against a stub
// backend and records which fault (if any) hit each request.
func faultPattern(t *testing.T, cfg Config, n int) []string {
	t.Helper()
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(strings.Repeat("x", 512)))
	}))
	defer backend.Close()
	tr := New(nil, cfg)
	client := &http.Client{Transport: tr}
	pattern := make([]string, n)
	for i := range pattern {
		resp, err := client.Get(backend.URL)
		if err != nil {
			pattern[i] = "refused"
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch {
		case err != nil || len(body) < 512:
			pattern[i] = "hangup"
		default:
			pattern[i] = "ok"
		}
	}
	return pattern
}

// TestSeededFaultsReproduce: the chaos layer's whole value is that a
// fault sequence can be replayed — same seed, same request order, same
// faults; a different seed, a different pattern.
func TestSeededFaultsReproduce(t *testing.T) {
	cfg := Config{Seed: 7, RefuseProb: 0.3, HangupProb: 0.3, HangupAfter: 100}
	a := faultPattern(t, cfg, 40)
	b := faultPattern(t, cfg, 40)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d: %q vs %q\na=%v\nb=%v", i, a[i], b[i], a, b)
		}
	}
	kinds := map[string]int{}
	for _, k := range a {
		kinds[k]++
	}
	if kinds["refused"] == 0 || kinds["hangup"] == 0 || kinds["ok"] == 0 {
		t.Fatalf("fault mix did not exercise all outcomes: %v", kinds)
	}

	cfg.Seed = 8
	c := faultPattern(t, cfg, 40)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced an identical fault pattern")
	}
}

// TestHangupCutsBody: a hangup response delivers exactly HangupAfter
// bytes, then fails like a dropped connection — never silently truncates
// with a clean EOF (which a client could mistake for a complete reply).
func TestHangupCutsBody(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(strings.Repeat("y", 1000)))
	}))
	defer backend.Close()
	tr := New(nil, Config{Seed: 1, HangupProb: 1, HangupAfter: 64})
	client := &http.Client{Transport: tr}
	resp, err := client.Get(backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatalf("cut body read cleanly (%d bytes); want an error", len(body))
	}
	if len(body) != 64 {
		t.Fatalf("cut body delivered %d bytes, want exactly 64", len(body))
	}
	if st := tr.Stats(); st.Hangups != 1 || st.Requests != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestStatsCounts: counters track what was actually injected.
func TestStatsCounts(t *testing.T) {
	cfg := Config{Seed: 3, RefuseProb: 0.5}
	_ = faultPattern(t, cfg, 20)
	tr := New(nil, cfg)
	client := &http.Client{Transport: tr}
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer backend.Close()
	refused := 0
	for i := 0; i < 20; i++ {
		resp, err := client.Get(backend.URL)
		if err != nil {
			refused++
			continue
		}
		resp.Body.Close()
	}
	st := tr.Stats()
	if int(st.Refusals) != refused || st.Requests != 20 {
		t.Fatalf("stats %+v, observed %d refusals", st, refused)
	}
}

// Package chaos is the fault-injection layer of the routing stack: an
// http.RoundTripper wrapper that makes upstream calls fail in the ways
// real replicas fail — connections refused, responses delayed, streams
// cut mid-body — under an explicitly seeded RNG, so a chaotic run is
// exactly reproducible. The router takes it through Options.Transport
// (cmd/aptq-router wires the -chaos-* flags there), and the -race test
// suite uses it to prove the failover path delivers byte-identical
// replies while faults fire.
//
// Seeding is the point: a chaos test that cannot be replayed is a flake
// generator, not a test. Every probability draw comes from one
// mutex-guarded *rand.Rand constructed from Config.Seed — aptq-vet's
// detlint enforces that no draw touches the global RNG.
package chaos

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// Config sets the fault mix. Probabilities are per-request in [0,1];
// zero values inject nothing of that kind.
type Config struct {
	// Seed drives every probability draw. Same seed + same request
	// sequence = same faults.
	Seed int64
	// RefuseProb is the chance a request fails as a refused connection
	// (the replica looks dead before a byte is exchanged).
	RefuseProb float64
	// DelayProb is the chance a request is held for Delay before being
	// forwarded (a slow replica; exercises timeouts and tail latency).
	DelayProb float64
	Delay     time.Duration
	// HangupProb is the chance a response body is cut after HangupAfter
	// bytes (the replica dies mid-reply — the case that forces the
	// router's buffered retry and mid-stream resume paths).
	HangupProb  float64
	HangupAfter int
}

// Transport injects Config's faults around an inner RoundTripper.
type Transport struct {
	inner http.RoundTripper
	cfg   Config

	mu  sync.Mutex
	rng *rand.Rand

	stats Stats
}

// Stats counts injected faults, so tests can assert chaos actually fired.
type Stats struct {
	Requests int64
	Refusals int64
	Delays   int64
	Hangups  int64
}

// New wraps inner (nil: http.DefaultTransport) with seeded fault
// injection.
func New(inner http.RoundTripper, cfg Config) *Transport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	if cfg.HangupAfter <= 0 {
		cfg.HangupAfter = 256
	}
	return &Transport{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Stats returns a snapshot of the fault counters.
func (t *Transport) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// draw rolls the three fault dice under the lock; the RNG is shared
// state, and a deterministic stream requires serialized draws.
func (t *Transport) draw() (refuse, delay, hangup bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats.Requests++
	refuse = t.cfg.RefuseProb > 0 && t.rng.Float64() < t.cfg.RefuseProb
	delay = t.cfg.DelayProb > 0 && t.rng.Float64() < t.cfg.DelayProb
	hangup = t.cfg.HangupProb > 0 && t.rng.Float64() < t.cfg.HangupProb
	if refuse {
		t.stats.Refusals++
	} else {
		if delay {
			t.stats.Delays++
		}
		if hangup {
			t.stats.Hangups++
		}
	}
	return refuse, delay, hangup
}

// RoundTrip applies the drawn faults: refusal preempts the call entirely;
// delay sleeps before forwarding; hangup wraps the response body to die
// after HangupAfter bytes. Faults never rewrite bytes — a fault either
// blocks, slows, or truncates, so anything that does get through is
// genuine, which is what lets the chaos tests assert bit-identity.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	refuse, delay, hangup := t.draw()
	if refuse {
		return nil, fmt.Errorf("chaos: connection refused (%s %s)", req.Method, req.URL.Path)
	}
	if delay {
		// time.Sleep, not a timer select: the net/http client already
		// watches the request context at its own layer, so a delayed
		// RoundTrip past the caller's deadline just finishes into the void.
		time.Sleep(t.cfg.Delay)
	}
	resp, err := t.inner.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if hangup {
		resp.Body = &hangupBody{inner: resp.Body, remaining: t.cfg.HangupAfter}
	}
	return resp, nil
}

// hangupBody cuts the response after remaining bytes: reads pass through
// until the budget is spent, then fail like a dropped connection.
type hangupBody struct {
	inner     io.ReadCloser
	remaining int
}

func (b *hangupBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if len(p) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.inner.Read(p)
	b.remaining -= n
	if b.remaining <= 0 && err == nil {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *hangupBody) Close() error { return b.inner.Close() }

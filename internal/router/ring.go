// Consistent-hash ring: the data structure that turns a prompt's token
// prefix into a replica preference order. Each replica owns many virtual
// nodes (points on the 64-bit hash circle), a request's routing key is the
// shared prefixkey hash of its page-aligned token prefix, and the replica
// owning the first virtual node clockwise of the key is the affinity
// target — the replica whose prefix/KV cache already holds (or will come
// to hold) that prefix's pages. The ring's two properties carry the whole
// design:
//
//   - Stability: adding or removing one replica only remaps the keys whose
//     nearest virtual node changed (~1/N of traffic), so a replica crash
//     does not reshuffle every prompt's cache home the way modular hashing
//     would.
//   - Spill order: the distinct replicas encountered walking clockwise
//     from the key form a deterministic failover sequence. When the
//     affinity target is down or saturated, traffic spills to the next
//     ring successor — losing cache warmth for that prefix, never
//     availability — and every router instance computes the same order.
package router

import (
	"sort"

	"repro/internal/prefixkey"
)

// vnodesPerReplica is the virtual-node count per replica — enough that
// load and key ownership spread evenly at small replica counts (the
// classic consistent-hashing variance fix).
const vnodesPerReplica = 64

// vnode is one point on the hash circle.
type vnode struct {
	hash    uint64
	replica int
}

// ring is an immutable consistent-hash ring over replica indices.
// Liveness is not the ring's business: Order returns the full preference
// sequence and the caller skips unhealthy replicas, so health flaps never
// rebuild the ring (which would remap keys and dump cache warmth exactly
// when the fleet is least able to re-prefill).
type ring struct {
	vnodes []vnode
	n      int
}

// hashString is FNV-1a over the bytes of s — the replica-identity hash
// that places virtual nodes on the circle. Deliberately the same FNV
// construction as prefixkey, but over bytes, so replica placement and
// routing keys draw from one hash family.
func hashString(s string) uint64 {
	h := prefixkey.Offset
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// newRing places vnodesPerReplica virtual nodes per replica id on the
// circle. ids must be the replicas' stable identities (their URLs): the
// placement — and therefore every key's affinity target — depends only on
// the id set, so routers restart onto the same assignment and independent
// routers agree.
func newRing(ids []string) *ring {
	r := &ring{n: len(ids)}
	r.vnodes = make([]vnode, 0, len(ids)*vnodesPerReplica)
	for i, id := range ids {
		h := hashString(id)
		for v := 0; v < vnodesPerReplica; v++ {
			// Each vnode re-mixes the previous hash: cheap, stable, and
			// well-spread (FNV over the running value's bytes).
			h = mix(h, uint64(v))
			r.vnodes = append(r.vnodes, vnode{hash: h, replica: i})
		}
	}
	sort.Slice(r.vnodes, func(a, b int) bool {
		if r.vnodes[a].hash != r.vnodes[b].hash {
			return r.vnodes[a].hash < r.vnodes[b].hash
		}
		// Hash ties (vanishingly rare) break by replica index so the ring
		// is a deterministic function of the id list.
		return r.vnodes[a].replica < r.vnodes[b].replica
	})
	return r
}

// mix folds v into h with FNV-1a over v's bytes.
func mix(h, v uint64) uint64 {
	for b := 0; b < 8; b++ {
		h ^= v & 0xff
		h *= 1099511628211
		v >>= 8
	}
	return h
}

// Order returns every replica index exactly once, in the deterministic
// preference order for key: the affinity target first (owner of the first
// vnode clockwise of key), then each spill successor in the order the
// clockwise walk first encounters it. len(result) == n always — the last
// resorts stay in the list so a degraded fleet still serves.
func (r *ring) order(key uint64) []int {
	out := make([]int, 0, r.n)
	if r.n == 0 {
		return out
	}
	seen := make([]bool, r.n)
	// First vnode with hash >= key (wrapping).
	start := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= key })
	for i := 0; len(out) < r.n && i < len(r.vnodes); i++ {
		v := r.vnodes[(start+i)%len(r.vnodes)]
		if !seen[v.replica] {
			seen[v.replica] = true
			out = append(out, v.replica)
		}
	}
	return out
}

// routeKey derives the routing key for a token prompt: the prefixkey hash
// of its page-aligned prefix (the very span serve's prefix cache can hold
// pages for — router key and replica cache key agree by construction,
// both sides calling the same internal/prefixkey functions at the same
// PageRows granularity). Prompts too short to have a cacheable page hash
// in full: they gain nothing from page affinity, but identical prompts
// still co-locate, which keeps them byte-identical cheaply and spreads
// distinct short prompts across the fleet.
func routeKey(tokens []int, rows int) uint64 {
	if n := prefixkey.AlignedLen(len(tokens), rows); n > 0 {
		return prefixkey.Hash(tokens[:n])
	}
	return prefixkey.Hash(tokens)
}

// routeKeyString is the routing key for a text prompt the router cannot
// tokenize (no replica vocabulary yet): affinity falls back to the raw
// prompt bytes. Same-prompt traffic still co-locates; only the router-key
// == cache-key alignment for *partial* prefix overlap is lost, costing
// warmth, never correctness.
func routeKeyString(prompt string) uint64 { return hashString(prompt) }

// Retry-After relay tests: when the whole fleet sheds a request, the
// router passes the replicas' back-off hint through to the client — on
// both reply forms — and surfaces the largest observed hint in its stats.
package router_test

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/serve"
)

// overBudgetServeOpts bounds every replica's KV pool to 2 pages of the
// Tiny model, so a 4-prompt/20-output request exceeds each replica's
// whole budget and is shed deterministically with 429 + Retry-After.
func overBudgetServeOpts() serve.Options {
	opts := serve.DefaultOptions()
	opts.KVBudgetBytes = 2 * 2 * 16 * 16 * 8
	return opts
}

const overBudgetBody = `{"tokens":[1,2,3,4],"max_tokens":20,"seed":1}`

func TestRouterRelaysFleetWideRetryAfter(t *testing.T) {
	f := newFleet(t, 3, overBudgetServeOpts(), nil)
	defer f.close()

	for _, form := range []string{"", "?stream=1"} {
		resp, err := http.Post(f.front.URL+"/v1/generate"+form, "application/json",
			strings.NewReader(overBudgetBody))
		if err != nil {
			t.Fatalf("form %q: %v", form, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("form %q: fleet-wide shed answered %d, want 429", form, resp.StatusCode)
		}
		if got := resp.Header.Get("Retry-After"); got != "1" {
			t.Fatalf("form %q: relayed Retry-After = %q, want \"1\"", form, got)
		}
	}

	// A request that fits still serves: shedding is per-request, not
	// per-router.
	ok, err := http.Post(f.front.URL+"/v1/generate", "application/json",
		strings.NewReader(`{"tokens":[1,2],"max_tokens":6,"seed":2}`))
	if err != nil {
		t.Fatalf("in-budget request: %v", err)
	}
	ok.Body.Close()
	if ok.StatusCode != http.StatusOK {
		t.Fatalf("in-budget request answered %d, want 200", ok.StatusCode)
	}

	// The fleet stats surface the hint and the per-replica memory bounds
	// (max across the fleet, not a meaningless sum).
	resp, err := http.Get(f.front.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	defer resp.Body.Close()
	var st map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if hint, _ := st["router_retry_after_hint_s"].(float64); hint != 1 {
		t.Fatalf("router_retry_after_hint_s = %v, want 1", st["router_retry_after_hint_s"])
	}
	budget, _ := st["kv_budget_bytes"].(float64)
	if want := float64(overBudgetServeOpts().KVBudgetBytes); budget != want {
		t.Fatalf("fleet kv_budget_bytes = %v, want per-replica max %v", budget, want)
	}
	if hw, _ := st["kv_high_water_bytes"].(float64); hw <= 0 || hw > budget {
		t.Fatalf("fleet kv_high_water_bytes = %v outside (0, %v]", hw, budget)
	}
}

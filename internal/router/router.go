// Package router is the fault-tolerant, prefix-affinity front-end over a
// fleet of aptq-serve replicas. One Router speaks the exact same HTTP
// surface as a single replica (POST /v1/generate, GET /v1/stats,
// GET /healthz) so clients — including cmd/aptq-loadgen — cannot tell N
// replicas from one, except that the fleet survives any single replica
// dying mid-request.
//
// Three ideas compose:
//
//   - Affinity (ring.go): requests route by consistent hashing on the
//     page-aligned token prefix, using the same internal/prefixkey hash the
//     replicas' prefix caches key on — so prompts sharing a prefix land on
//     the replica already holding that prefix's KV pages, and the fleet's
//     aggregate cache hit rate matches a single replica's instead of
//     collapsing by 1/N.
//   - Health (replica.go): per-replica circuit breakers fed by passive
//     request failures and an active /healthz prober with exponential
//     backoff and seeded jitter.
//   - Determinism makes failover safe (proxy.go): every replica produces
//     byte-identical output for a given request, so a failed attempt can be
//     retried on any ring successor and the client receives the same bytes
//     a single healthy replica would have sent — including mid-stream,
//     where the resumed stream replays and dedups already-delivered tokens
//     by index.
package router

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/data"
	"repro/internal/infer"
)

// Options configures a Router. Zero values take the documented defaults.
type Options struct {
	// Replicas are the backend base URLs (e.g. "http://127.0.0.1:8081").
	// Their strings are the ring identities: keep them stable across router
	// restarts and key affinity stays stable too.
	Replicas []string
	// PageRows is the KV page granularity the routing key aligns prefixes
	// to; it must match the replicas' (default infer.PageRows).
	PageRows int
	// ProbeInterval is the /healthz cadence for healthy replicas (default
	// 1s). Unhealthy replicas are probed on their ejection backoff instead.
	ProbeInterval time.Duration
	// ProbeTimeout bounds each probe and stats fan-out call (default 2s).
	ProbeTimeout time.Duration
	// EjectAfter is the consecutive-failure streak that opens a replica's
	// breaker (default 3).
	EjectAfter int
	// BackoffMin/BackoffMax bound the exponential ejection backoff
	// (defaults 250ms / 8s).
	BackoffMin time.Duration
	BackoffMax time.Duration
	// RequestTimeout bounds each proxied attempt, streaming included
	// (default 60s). A hung replica costs one timeout, then failover.
	RequestTimeout time.Duration
	// Passes is how many times a request may walk the full ring order
	// before the router gives up (default 2). The second pass is what
	// turns a transient fault on every replica — injected chaos, a probe
	// racing an ejection — into a retry instead of a client error.
	Passes int
	// Seed drives the probe jitter (and nothing on any reply path).
	Seed int64
	// Transport overrides the upstream transport — the hook the chaos
	// fault-injection layer wraps (default http.DefaultTransport).
	Transport http.RoundTripper
}

func (o Options) withDefaults() Options {
	if o.PageRows == 0 {
		o.PageRows = infer.PageRows
	}
	if o.ProbeInterval == 0 {
		o.ProbeInterval = time.Second
	}
	if o.ProbeTimeout == 0 {
		o.ProbeTimeout = 2 * time.Second
	}
	if o.EjectAfter == 0 {
		o.EjectAfter = 3
	}
	if o.BackoffMin == 0 {
		o.BackoffMin = 250 * time.Millisecond
	}
	if o.BackoffMax == 0 {
		o.BackoffMax = 8 * time.Second
	}
	if o.RequestTimeout == 0 {
		o.RequestTimeout = 60 * time.Second
	}
	if o.Passes == 0 {
		o.Passes = 2
	}
	if o.Transport == nil {
		o.Transport = http.DefaultTransport
	}
	return o
}

// modelInfo is the replica identity /healthz reports; the router caches
// the first one seen and serves it from its own /healthz so clients that
// read model shape (loadgen does) work unchanged through the router.
type modelInfo struct {
	Model  string `json:"model"`
	Vocab  int    `json:"vocab"`
	MaxSeq int    `json:"maxseq"`
}

// routerStats are the router's own counters, separate from anything the
// replicas report.
type routerStats struct {
	requests      int64 // generate requests accepted
	retries       int64 // failed attempts retried on another replica
	failovers     int64 // requests answered by a non-affinity replica after a failure
	spills        int64 // attempts diverted off a saturated/draining/unadmitted replica
	streamResumes int64 // SSE streams resumed mid-flight on another replica
	errors        int64 // requests that exhausted every replica (client-visible failure)
	rejected      int64 // requests refused because the router itself is draining
	// retryAfterHintS is the largest Retry-After (seconds) any replica
	// attached to a 429/503 — the fleet's current back-off advice, surfaced
	// in stats and relayed to clients on fleet-wide saturation.
	retryAfterHintS int64
}

// Router routes, health-checks and fails over across a replica fleet.
// Construct with New, expose Handler, stop with Close.
type Router struct {
	opts     Options
	ring     *ring
	replicas []*replica
	client   *http.Client

	model    atomic.Pointer[modelInfo]
	vocab    atomic.Pointer[data.Vocabulary]
	draining atomic.Bool
	inflight sync.WaitGroup

	statsMu sync.Mutex
	stats   routerStats

	stopOnce sync.Once
	stopCh   chan struct{}
}

// New builds a Router over the given replica URLs, performs one
// synchronous probe round (so /healthz has a model identity and breaker
// state reflects reality from the first request), and starts the
// background probers.
func New(opts Options) (*Router, error) {
	opts = opts.withDefaults()
	if len(opts.Replicas) == 0 {
		return nil, fmt.Errorf("router: no replicas configured")
	}
	rt := &Router{
		opts:   opts,
		ring:   newRing(opts.Replicas),
		client: &http.Client{Transport: opts.Transport},
		stopCh: make(chan struct{}),
	}
	for i, u := range opts.Replicas {
		rt.replicas = append(rt.replicas, &replica{id: i, url: u})
	}
	for _, rep := range rt.replicas {
		rt.probe(rep)
		rng := rand.New(rand.NewSource(opts.Seed + int64(rep.id)))
		rep := rep
		//aptq:ignore detlint prober goroutine never touches request/reply bytes; joined via stopCh on Close
		go rt.probeLoop(rep, rng)
	}
	return rt, nil
}

// Handler returns the router's HTTP surface — intentionally identical in
// shape to a single replica's.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/generate", rt.handleGenerate)
	mux.HandleFunc("/v1/stats", rt.handleStats)
	mux.HandleFunc("/healthz", rt.handleHealth)
	return mux
}

// Drain mirrors the replica drain semantics at the routing tier: /healthz
// goes unhealthy, new generate requests get 503, and Drain returns once
// every in-flight proxied request has completed. It does not drain the
// replicas — they have their own lifecycle.
func (rt *Router) Drain() {
	rt.draining.Store(true)
	rt.inflight.Wait()
}

// Draining reports whether Drain has begun.
func (rt *Router) Draining() bool { return rt.draining.Load() }

// Close stops the background probers and releases idle connections. It
// does not wait for in-flight requests; call Drain first for that.
func (rt *Router) Close() {
	rt.stopOnce.Do(func() { close(rt.stopCh) })
	rt.client.CloseIdleConnections()
}

// probeLoop probes one replica forever: on the steady ProbeInterval while
// it is healthy, on its (exponentially growing) ejection backoff while it
// is not, always with seeded ±20% jitter so probers never synchronize.
//
//aptq:wallclock
func (rt *Router) probeLoop(rep *replica, rng *rand.Rand) {
	for {
		interval := rt.opts.ProbeInterval
		rep.mu.Lock()
		if (rep.state == stateEjected || rep.state == stateHalfOpen) && rep.backoff > interval {
			interval = rep.backoff
		}
		rep.mu.Unlock()
		jittered := time.Duration(float64(interval) * (0.8 + 0.4*rng.Float64()))
		timer := time.NewTimer(jittered)
		select {
		case <-rt.stopCh:
			timer.Stop()
			return
		case <-timer.C:
		}
		rt.probe(rep)
	}
}

// probe sends one /healthz and feeds the result into the breaker: 200
// closes it outright (recovery), 503/"draining" parks the replica in
// Draining, anything else counts as a failure.
//
//aptq:wallclock
func (rt *Router) probe(rep *replica) {
	rep.countProbe()
	ctx, cancel := context.WithTimeout(context.Background(), rt.opts.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.url+"/healthz", nil)
	if err != nil {
		return
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		rep.reportFailure(time.Now(), rt.opts.EjectAfter, rt.opts.BackoffMin, rt.opts.BackoffMax)
		return
	}
	defer resp.Body.Close()
	var body struct {
		Status string `json:"status"`
		modelInfo
	}
	_ = json.NewDecoder(resp.Body).Decode(&body)
	switch {
	case resp.StatusCode == http.StatusOK:
		if body.Model != "" {
			rt.model.CompareAndSwap(nil, &modelInfo{Model: body.Model, Vocab: body.Vocab, MaxSeq: body.MaxSeq})
		}
		rep.reportSuccess()
	case resp.StatusCode == http.StatusServiceUnavailable && body.Status == "draining":
		rep.markDraining()
	default:
		rep.reportFailure(time.Now(), rt.opts.EjectAfter, rt.opts.BackoffMin, rt.opts.BackoffMax)
	}
}

// handleHealth reports the fleet's health in the same shape as a replica's
// /healthz — plus fleet fields — so anything that health-checks a replica
// can health-check the router.
//
//aptq:wallclock
func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	healthy := 0
	for _, rep := range rt.replicas {
		rep.mu.Lock()
		ok := rep.state == stateHealthy || (rep.state == stateEjected && !now.Before(rep.reopenAt)) || rep.state == stateHalfOpen
		rep.mu.Unlock()
		if ok {
			healthy++
		}
	}
	status, code := "ok", http.StatusOK
	switch {
	case rt.draining.Load():
		status, code = "draining", http.StatusServiceUnavailable
	case healthy == 0:
		status, code = "no healthy replicas", http.StatusServiceUnavailable
	}
	out := map[string]any{
		"status":   status,
		"replicas": len(rt.replicas),
		"healthy":  healthy,
	}
	if info := rt.model.Load(); info != nil {
		out["model"] = info.Model
		out["vocab"] = info.Vocab
		out["maxseq"] = info.MaxSeq
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(out)
}

func (rt *Router) count(f func(*routerStats)) {
	rt.statsMu.Lock()
	f(&rt.stats)
	rt.statsMu.Unlock()
}

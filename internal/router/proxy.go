// Request proxying: the failover core. The router buffers the request
// body once, computes the ring's preference order, and walks it until a
// replica delivers. What makes the walk safe is the serving stack's
// determinism contract — any replica produces byte-identical output for a
// given request body — so a retry is not a "hope it's similar" but a
// literal continuation:
//
//   - Non-streaming attempts buffer the upstream response fully before a
//     byte reaches the client, so a replica dying mid-response is invisible:
//     the next candidate re-answers and the client sees one clean reply.
//   - Streaming attempts forward token events as they arrive; when a
//     stream breaks after k tokens, the next candidate replays the request
//     and the router drops every event with index < k, resuming the
//     client's stream exactly where it stopped. The assembled reply is
//     byte-identical to a single-replica run.
//
// Status-code semantics: 429/503 mean "alive but not admitting" — that is
// spill (try the next ring successor), never a breaker failure. Transport
// errors, 5xx and broken streams feed the breaker and count as failover.
// Other 4xx are deterministic request defects: every replica would answer
// the same, so the first answer is passed through.
package router

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/data"
	"repro/internal/serve"
)

// maxRequestBytes bounds the buffered request body; generate requests are
// a prompt and a handful of scalars.
const maxRequestBytes = 1 << 20

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeUpstream relays a buffered upstream reply to the client.
func writeUpstream(w http.ResponseWriter, code int, contentType string, body []byte) {
	if contentType != "" {
		w.Header().Set("Content-Type", contentType)
	}
	w.WriteHeader(code)
	_, _ = w.Write(body)
}

// noteRetryAfter records a replica's Retry-After back-off hint (seconds)
// and folds it into the fleet-wide max the stats surface reports. Returns
// the header value unchanged so callers can relay it.
func (rt *Router) noteRetryAfter(h string) string {
	if h == "" {
		return ""
	}
	if s, err := strconv.ParseInt(strings.TrimSpace(h), 10, 64); err == nil && s > 0 {
		rt.count(func(st *routerStats) {
			if s > st.retryAfterHintS {
				st.retryAfterHintS = s
			}
		})
	}
	return h
}

func (rt *Router) handleGenerate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	rt.inflight.Add(1)
	defer rt.inflight.Done()
	if rt.draining.Load() {
		rt.count(func(s *routerStats) { s.rejected++ })
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "router draining")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	var req serve.GenerateRequest
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, "bad json: %v", err)
		return
	}
	rt.count(func(s *routerStats) { s.requests++ })
	// The attempt sequence is the ring's preference order, walked Passes
	// times: affinity target, then spill successors, then (if everything
	// failed once) the whole ring again.
	ringOrder := rt.ring.order(rt.routingKey(req))
	order := make([]int, 0, len(ringOrder)*rt.opts.Passes)
	for p := 0; p < rt.opts.Passes; p++ {
		order = append(order, ringOrder...)
	}
	if req.Stream || r.URL.Query().Get("stream") == "1" {
		rt.proxyStream(w, r, body, order)
		return
	}
	rt.proxyBuffered(w, r, body, order)
}

// routingKey computes the request's position on the ring: the prefixkey
// hash of its page-aligned token prefix. Text prompts are tokenized with
// the same synthetic vocabulary the replicas use (its size comes from
// /healthz), so the router's key and the replica's prefix-cache key agree
// for both request forms; if the vocabulary is not known yet (no probe has
// succeeded) the raw prompt bytes still give stable same-prompt affinity.
func (rt *Router) routingKey(req serve.GenerateRequest) uint64 {
	if len(req.Tokens) > 0 {
		return routeKey(req.Tokens, rt.opts.PageRows)
	}
	if v := rt.vocabulary(); v != nil {
		if ids, err := v.Encode(strings.Fields(req.Prompt)); err == nil && len(ids) > 0 {
			return routeKey(ids, rt.opts.PageRows)
		}
	}
	return routeKeyString(req.Prompt)
}

// vocabulary lazily builds (and caches) the replicas' synthetic
// vocabulary from the probed model identity.
func (rt *Router) vocabulary() *data.Vocabulary {
	if v := rt.vocab.Load(); v != nil {
		return v
	}
	info := rt.model.Load()
	if info == nil || info.Vocab <= 0 {
		return nil
	}
	rt.vocab.CompareAndSwap(nil, data.NewVocabulary(info.Vocab))
	return rt.vocab.Load()
}

// proxyBuffered serves a non-streaming generate: walk the ring order,
// buffer the first complete answer, deliver it. No byte reaches the
// client before a full upstream reply is in hand, so every failure mode —
// refused connection, 5xx, a response cut mid-body — is retried
// invisibly.
//
//aptq:wallclock
func (rt *Router) proxyBuffered(w http.ResponseWriter, r *http.Request, body []byte, order []int) {
	var lastCode int
	var lastBody []byte
	var lastRetryAfter string
	failedOver := false
	for _, idx := range order {
		if r.Context().Err() != nil {
			return // client gone; nothing to deliver to
		}
		rep := rt.replicas[idx]
		if !rep.admit(time.Now()) {
			rep.countSpill()
			rt.count(func(s *routerStats) { s.spills++ })
			continue
		}
		rep.countRequest()
		code, contentType, respBody, retryAfter, err := rt.attempt(r.Context(), rep, body)
		if err != nil {
			rep.reportFailure(time.Now(), rt.opts.EjectAfter, rt.opts.BackoffMin, rt.opts.BackoffMax)
			rt.count(func(s *routerStats) { s.retries++ })
			failedOver = true
			continue
		}
		switch {
		case code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable:
			// Saturated or draining: spill to the next ring successor. The
			// replica answered, so its breaker stays closed. Its Retry-After
			// hint is kept: if the whole fleet turns out to be shedding, the
			// client gets the replicas' own back-off advice, not a router guess.
			if code == http.StatusServiceUnavailable {
				rep.markDraining()
			}
			rep.countSpill()
			rt.count(func(s *routerStats) { s.spills++ })
			lastCode, lastBody = code, respBody
			lastRetryAfter = rt.noteRetryAfter(retryAfter)
			continue
		case code >= 500:
			rep.reportFailure(time.Now(), rt.opts.EjectAfter, rt.opts.BackoffMin, rt.opts.BackoffMax)
			rt.count(func(s *routerStats) { s.retries++ })
			failedOver = true
			lastCode, lastBody = code, respBody
			continue
		}
		// 2xx, or a 4xx every replica would answer identically: deliver.
		rep.reportSuccess()
		if failedOver {
			rt.count(func(s *routerStats) { s.failovers++ })
		}
		writeUpstream(w, code, contentType, respBody)
		return
	}
	rt.count(func(s *routerStats) { s.errors++ })
	if lastCode != 0 {
		// Every replica is saturated/draining/broken: relay the most recent
		// upstream verdict (e.g. a fleet-wide 429) rather than inventing one,
		// Retry-After hint included.
		if lastRetryAfter != "" {
			w.Header().Set("Retry-After", lastRetryAfter)
		}
		writeUpstream(w, lastCode, "application/json", lastBody)
		return
	}
	httpError(w, http.StatusBadGateway, "no replica available")
}

// attempt performs one fully-buffered upstream call. A response cut
// mid-body returns an error (not a partial reply), which is what keeps
// mid-response replica death retryable.
func (rt *Router) attempt(parent context.Context, rep *replica, body []byte) (code int, contentType string, respBody []byte, retryAfter string, err error) {
	ctx, cancel := context.WithTimeout(parent, rt.opts.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rep.url+"/v1/generate", bytes.NewReader(body))
	if err != nil {
		return 0, "", nil, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		return 0, "", nil, "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, "", nil, "", err
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), b, resp.Header.Get("Retry-After"), nil
}

// proxyStream serves a streaming generate with mid-stream failover. Token
// events are forwarded verbatim as they arrive; `delivered` counts how
// many the client has. When a stream dies, the next candidate replays the
// whole request and relay drops events with index < delivered — the
// client's stream resumes seamlessly, and because replicas are
// bit-identical the spliced stream equals the one a single healthy
// replica would have sent.
//
//aptq:wallclock
func (rt *Router) proxyStream(w http.ResponseWriter, r *http.Request, body []byte, order []int) {
	flusher, _ := w.(http.Flusher)
	delivered := 0
	headersSent := false
	var lastCode int
	var lastBody []byte
	var lastRetryAfter string
	failedOver := false
	for _, idx := range order {
		if r.Context().Err() != nil {
			return
		}
		rep := rt.replicas[idx]
		if !rep.admit(time.Now()) {
			rep.countSpill()
			rt.count(func(s *routerStats) { s.spills++ })
			continue
		}
		rep.countRequest()
		ctx, cancel := context.WithTimeout(r.Context(), rt.opts.RequestTimeout)
		// ?stream=1 explicitly: the client may have asked for a stream via
		// the query form rather than the body flag, and the forwarded body
		// alone would get a plain JSON reply the relay cannot parse.
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, rep.url+"/v1/generate?stream=1", bytes.NewReader(body))
		if err != nil {
			cancel()
			httpError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := rt.client.Do(req)
		if err != nil {
			cancel()
			rep.reportFailure(time.Now(), rt.opts.EjectAfter, rt.opts.BackoffMin, rt.opts.BackoffMax)
			rt.count(func(s *routerStats) { s.retries++ })
			failedOver = true
			continue
		}
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			cancel()
			switch {
			case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
				if resp.StatusCode == http.StatusServiceUnavailable {
					rep.markDraining()
				}
				rep.countSpill()
				rt.count(func(s *routerStats) { s.spills++ })
				lastCode, lastBody = resp.StatusCode, b
				lastRetryAfter = rt.noteRetryAfter(resp.Header.Get("Retry-After"))
				continue
			case resp.StatusCode >= 500:
				rep.reportFailure(time.Now(), rt.opts.EjectAfter, rt.opts.BackoffMin, rt.opts.BackoffMax)
				rt.count(func(s *routerStats) { s.retries++ })
				failedOver = true
				lastCode, lastBody = resp.StatusCode, b
				continue
			default:
				// Deterministic 4xx: same on every replica, pass through. The
				// stream has not started, so a plain reply is still possible.
				rep.reportSuccess()
				writeUpstream(w, resp.StatusCode, resp.Header.Get("Content-Type"), b)
				return
			}
		}
		if !headersSent {
			w.Header().Set("Content-Type", "text/event-stream")
			w.Header().Set("Cache-Control", "no-cache")
			headersSent = true
		}
		if failedOver && delivered > 0 {
			rt.count(func(s *routerStats) { s.streamResumes++ })
		}
		done, _ := rt.relay(w, flusher, resp.Body, &delivered)
		resp.Body.Close()
		cancel()
		if done {
			rep.reportSuccess()
			if failedOver {
				rt.count(func(s *routerStats) { s.failovers++ })
			}
			return
		}
		// Mid-stream death (hangup, timeout, or an upstream error event —
		// e.g. a replica force-closing on an expired drain): breaker-counted,
		// resume on the next candidate.
		rep.reportFailure(time.Now(), rt.opts.EjectAfter, rt.opts.BackoffMin, rt.opts.BackoffMax)
		rt.count(func(s *routerStats) { s.retries++ })
		failedOver = true
	}
	rt.count(func(s *routerStats) { s.errors++ })
	if headersSent {
		// The stream already started; the SSE channel is the only way left
		// to signal. Emit a terminal error event in the final-event shape.
		b, _ := json.Marshal(serve.GenerateResponse{Tokens: []int{}, FinishReason: "error", Error: "router: all replicas failed mid-stream"})
		fmt.Fprintf(w, "data: %s\n\n", b)
		if flusher != nil {
			flusher.Flush()
		}
		return
	}
	if lastCode != 0 {
		if lastRetryAfter != "" {
			w.Header().Set("Retry-After", lastRetryAfter)
		}
		writeUpstream(w, lastCode, "application/json", lastBody)
		return
	}
	httpError(w, http.StatusBadGateway, "no replica available")
}

// relay forwards one upstream SSE stream to the client, deduplicating by
// token index: events with index < *delivered were already sent by an
// earlier attempt and are dropped; the rest are forwarded verbatim (the
// determinism contract makes the bytes interchangeable across replicas).
// Returns done=true when the final event (the complete-response payload,
// recognizable by its finish_reason field) has been forwarded.
func (rt *Router) relay(w http.ResponseWriter, flusher http.Flusher, upstream io.Reader, delivered *int) (done bool, err error) {
	sc := bufio.NewScanner(upstream)
	sc.Buffer(make([]byte, 0, 64<<10), maxRequestBytes)
	for sc.Scan() {
		line := sc.Bytes()
		payload, ok := bytes.CutPrefix(line, []byte("data: "))
		if !ok {
			continue // blank separators, comments
		}
		var probe struct {
			Index        *int    `json:"index"`
			FinishReason *string `json:"finish_reason"`
			Error        string  `json:"error"`
		}
		if err := json.Unmarshal(payload, &probe); err != nil {
			return false, fmt.Errorf("router: bad stream event: %w", err)
		}
		switch {
		case probe.FinishReason != nil:
			if probe.Error != "" || *probe.FinishReason == string(serve.FinishError) {
				// The replica failed the request (e.g. force-closed by an
				// expired drain). Deterministic replicas make this retryable:
				// don't forward, resume elsewhere.
				return false, fmt.Errorf("router: upstream error event: %s", probe.Error)
			}
			_, _ = w.Write(line)
			_, _ = w.Write([]byte("\n\n"))
			if flusher != nil {
				flusher.Flush()
			}
			return true, nil
		case probe.Index != nil:
			if *probe.Index >= *delivered {
				_, _ = w.Write(line)
				_, _ = w.Write([]byte("\n\n"))
				if flusher != nil {
					flusher.Flush()
				}
				*delivered = *probe.Index + 1
			}
		}
	}
	if err := sc.Err(); err != nil {
		return false, err
	}
	return false, io.ErrUnexpectedEOF // stream ended without a final event
}

// Fleet stats: GET /v1/stats on the router fans out to every replica's
// /v1/stats and aggregates the numeric maps into one fleet view with the
// same flat key set a single replica reports — counters summed, derived
// ratios (prefix_cache_hit_rate, kv_sharing_ratio) recomputed from the
// summed numerators/denominators, and non-additive keys (latency
// percentiles, configuration) taken as the fleet max. Clients that read a
// replica's stats (cmd/aptq-loadgen folds kv_sharing_ratio into its
// latency snapshot) therefore work unchanged against the router.
//
// On top of the fleet view sit the router's own counters (router_*) and a
// "replicas" array carrying each backend's health state, breaker
// counters, and raw stats — the observability surface the chaos tests and
// the smoke script assert on.
package router

import (
	"context"
	"encoding/json"
	"net/http"
	"sort"
	"sync"
)

// nonAdditiveKeys are replica-stat keys where summing across the fleet is
// wrong: percentiles and configuration take the max instead.
var nonAdditiveKeys = map[string]bool{
	"ttft_p50_ms":   true,
	"ttft_p99_ms":   true,
	"itl_p50_ms":    true,
	"itl_p99_ms":    true,
	"prefill_chunk": true,
	"max_queue":     true,
	"draining":      true, // the fleet's draining flag is the router's own
	// Per-replica memory bounds: a fleet "budget" sum would suggest one
	// request could use it all, which no single replica allows — report the
	// largest per-replica figure instead.
	"kv_budget_bytes":     true,
	"kv_high_water_bytes": true,
}

// replicaView is one backend's entry in the "replicas" array.
type replicaView struct {
	URL              string             `json:"url"`
	State            string             `json:"state"`
	ConsecutiveFails int                `json:"consecutive_fails"`
	Requests         int64              `json:"requests"`
	Failures         int64              `json:"failures"`
	Spills           int64              `json:"spills"`
	Ejections        int64              `json:"ejections"`
	Probes           int64              `json:"probes"`
	Stats            map[string]float64 `json:"stats,omitempty"`
}

// sortedKeys returns m's keys in sorted order — the deterministic-iteration
// idiom every map walk in this package goes through.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// fetchReplicaStats pulls one replica's /v1/stats; nil on any failure
// (the replica's health state already tells that story).
func (rt *Router) fetchReplicaStats(rep *replica) map[string]float64 {
	ctx, cancel := context.WithTimeout(context.Background(), rt.opts.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.url+"/v1/stats", nil)
	if err != nil {
		return nil
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var m map[string]float64
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil
	}
	return m
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	// Fan the stats calls out concurrently — a dead replica must cost one
	// timeout, not serialize the whole endpoint. Results land in a slice
	// indexed by replica, so aggregation order is fixed regardless of
	// completion order.
	perReplica := make([]map[string]float64, len(rt.replicas))
	var wg sync.WaitGroup
	for i, rep := range rt.replicas {
		i, rep := i, rep
		wg.Add(1)
		//aptq:ignore detlint stats fan-out goroutines write disjoint slice slots and join before any read
		go func() {
			defer wg.Done()
			perReplica[i] = rt.fetchReplicaStats(rep)
		}()
	}
	wg.Wait()

	fleet := map[string]float64{}
	for _, stats := range perReplica {
		for _, k := range sortedKeys(stats) {
			if nonAdditiveKeys[k] {
				if stats[k] > fleet[k] {
					fleet[k] = stats[k]
				}
				continue
			}
			fleet[k] += stats[k]
		}
	}
	// Ratios cannot be summed: recompute them from the fleet-level sums.
	if hits, misses := fleet["prefix_cache_hits"], fleet["prefix_cache_misses"]; hits+misses > 0 {
		fleet["prefix_cache_hit_rate"] = hits / (hits + misses)
	} else {
		fleet["prefix_cache_hit_rate"] = 0
	}
	if unique := fleet["kv_unique_bytes"]; unique > 0 {
		fleet["kv_sharing_ratio"] = fleet["kv_logical_bytes"] / unique
	} else {
		fleet["kv_sharing_ratio"] = 0
	}
	fleet["draining"] = 0
	if rt.draining.Load() {
		fleet["draining"] = 1
	}

	out := map[string]any{}
	for _, k := range sortedKeys(fleet) {
		out[k] = fleet[k]
	}

	views := make([]replicaView, len(rt.replicas))
	for i, rep := range rt.replicas {
		st, consec, requests, failures, spills, ejections, probes := rep.snapshot()
		views[i] = replicaView{
			URL:              rep.url,
			State:            st.String(),
			ConsecutiveFails: consec,
			Requests:         requests,
			Failures:         failures,
			Spills:           spills,
			Ejections:        ejections,
			Probes:           probes,
			Stats:            perReplica[i],
		}
	}
	rt.statsMu.Lock()
	rs := rt.stats
	rt.statsMu.Unlock()
	out["router_requests"] = rs.requests
	out["router_retries"] = rs.retries
	out["router_failovers"] = rs.failovers
	out["router_spills"] = rs.spills
	out["router_stream_resumes"] = rs.streamResumes
	out["router_errors"] = rs.errors
	out["router_rejected"] = rs.rejected
	out["router_retry_after_hint_s"] = rs.retryAfterHintS
	out["router_ejections"] = sumEjections(views)
	out["replicas"] = views

	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}

func sumEjections(views []replicaView) int64 {
	var n int64
	for _, v := range views {
		n += v.Ejections
	}
	return n
}

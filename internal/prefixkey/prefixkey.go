// Package prefixkey is the one definition of the token-prefix hash the
// serving stack keys caches and routing on. serve's prefix/KV cache keys
// cached KV pages by the hash of the full token prefix they cover, and the
// multi-replica router (internal/router) consistent-hashes the same prefix
// to pick the replica whose cache already holds those pages — the two only
// agree (and prefix-affinity routing only preserves the single-replica
// cache hit rate) because both sides hash identical token spans with this
// package.
//
// The hash is FNV-1a over the token values, 8 bytes per token,
// little-endian. It is incremental: Extend mixes more tokens into a
// running hash, so the k consecutive page-aligned prefix hashes of one
// prompt — prompt[:rows], prompt[:2*rows], ... — cost one pass over the
// prompt, not k. Hashes are only ever hints: every consumer must compare
// the actual tokens before trusting a match (the cache treats a collision
// as a miss, never a wrong prefill), so a 64-bit non-cryptographic hash is
// exactly strong enough.
package prefixkey

// Offset is the FNV-1a 64-bit offset basis — the running-hash seed Extend
// starts from.
const Offset = uint64(14695981039346656037)

// prime is the FNV-1a 64-bit prime.
const prime = uint64(1099511628211)

// Extend mixes tokens into a running FNV-1a hash. Extending h by a, then
// by b, equals extending h by the concatenation of a and b — the property
// that makes consecutive prefix hashes computable in one pass.
func Extend(h uint64, tokens []int) uint64 {
	for _, t := range tokens {
		v := uint64(t)
		for b := 0; b < 8; b++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	return h
}

// Hash is FNV-1a over the token values: Extend from the Offset basis.
func Hash(tokens []int) uint64 { return Extend(Offset, tokens) }

// AlignedLen returns the length of the routable/cacheable prefix of an
// n-token prompt at a rows-token page granularity: the longest
// page-aligned prefix that still leaves at least one token to prefill
// (the final prompt token's logits must always be computed, never
// remembered, so a whole-prompt page run is trimmed by one page). This is
// exactly the span serve's prefix cache can serve from cached pages, which
// is why the router hashes prompt[:AlignedLen] to pick a replica: requests
// that can share cached pages share a routing key. 0 means no page-aligned
// prefix exists (the prompt fits within one page plus the mandatory
// prefill token).
func AlignedLen(n, rows int) int {
	if rows <= 0 || n <= rows {
		return 0
	}
	return (n - 1) / rows * rows
}

package prefixkey

import (
	"math/rand"
	"testing"
)

// TestExtendIsIncremental: extending a hash chunk by chunk — any chunking,
// including odd lengths straddling page boundaries — equals hashing the
// whole prefix at once. This is the property the serve prefix cache and
// the router ring both lean on when they walk a prompt page by page.
func TestExtendIsIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tokens := make([]int, 257) // odd length, > 16 pages of 16
	for i := range tokens {
		tokens[i] = rng.Intn(1 << 20)
	}
	for _, chunk := range []int{1, 3, 7, 16, 17, 64, 256, 257} {
		h := Offset
		for lo := 0; lo < len(tokens); lo += chunk {
			hi := lo + chunk
			if hi > len(tokens) {
				hi = len(tokens)
			}
			h = Extend(h, tokens[lo:hi])
			if want := Hash(tokens[:hi]); h != want {
				t.Fatalf("chunk %d: incremental hash %x at %d != full hash %x", chunk, h, hi, want)
			}
		}
	}
}

// TestHashDiscriminates: the hash must see every token and its position —
// permutations, off-by-one values and truncations all produce different
// keys (probabilistically; these fixed cases must never collide, or the
// cache would rely on its token-equality guard far too often).
func TestHashDiscriminates(t *testing.T) {
	base := []int{5, 9, 2, 14, 7}
	variants := [][]int{
		{9, 5, 2, 14, 7},    // swap
		{5, 9, 2, 14, 8},    // last token off by one
		{5, 9, 2, 14},       // truncated
		{5, 9, 2, 14, 7, 0}, // extended
		{},                  // empty
	}
	h := Hash(base)
	if h == Offset {
		t.Fatal("non-empty hash equals the offset basis")
	}
	if Hash(nil) != Offset || Hash([]int{}) != Offset {
		t.Fatal("empty prefix must hash to the offset basis")
	}
	for _, v := range variants {
		if Hash(v) == h {
			t.Fatalf("collision between %v and %v", base, v)
		}
	}
	// Negative token values (invalid upstream, but the hash must still be
	// total and stable): distinct from their positive counterparts.
	if Hash([]int{-1}) == Hash([]int{1}) {
		t.Fatal("sign-blind hash")
	}
}

// TestHashDeterministic: same tokens, same hash — across fresh slices.
func TestHashDeterministic(t *testing.T) {
	a := []int{1, 2, 3, 4}
	b := append([]int(nil), a...)
	if Hash(a) != Hash(b) {
		t.Fatal("hash depends on slice identity")
	}
}

// TestAlignedLen pins the page-alignment rule shared by the cache and the
// router: the longest page-aligned prefix that leaves at least one token
// to prefill.
func TestAlignedLen(t *testing.T) {
	const rows = 16
	cases := []struct{ n, want int }{
		{0, 0},   // empty prompt
		{1, 0},   // single token: nothing cacheable
		{15, 0},  // shy of one page
		{16, 0},  // exactly one page: the last token must prefill
		{17, 16}, // one page + mandatory tail
		{31, 16},
		{32, 16}, // two exact pages: second page trimmed for the tail
		{33, 32},
		{160, 144}, // ten exact pages: nine routable
		{161, 160},
	}
	for _, c := range cases {
		if got := AlignedLen(c.n, rows); got != c.want {
			t.Errorf("AlignedLen(%d, %d) = %d, want %d", c.n, rows, got, c.want)
		}
	}
	// Degenerate granularities never divide by zero or go negative.
	if AlignedLen(100, 0) != 0 || AlignedLen(100, -3) != 0 {
		t.Error("non-positive rows must yield 0")
	}
	// Odd granularity: alignment follows rows, not a power-of-two guess.
	if got := AlignedLen(22, 7); got != 21 {
		t.Errorf("AlignedLen(22, 7) = %d, want 21", got)
	}
	if got := AlignedLen(21, 7); got != 14 {
		t.Errorf("AlignedLen(21, 7) = %d, want 14", got)
	}
}

package eval

import (
	"math"

	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/nn"
)

// Interval is a point estimate with a ±1.96-sigma (95%) half-width.
type Interval struct {
	Value float64
	// Half is the 95% confidence half-width; [Value-Half, Value+Half].
	Half float64
}

// Contains reports whether v lies inside the interval.
func (i Interval) Contains(v float64) bool {
	return v >= i.Value-i.Half && v <= i.Value+i.Half
}

// Overlaps reports whether two intervals intersect — the quick test for
// "is this method difference resolvable at this evaluation budget?".
func (i Interval) Overlaps(o Interval) bool {
	return i.Value-i.Half <= o.Value+o.Half && o.Value-o.Half <= i.Value+i.Half
}

// TaskAccuracyCI scores a task and returns accuracy with a binomial normal
// approximation interval: half = 1.96·sqrt(p(1−p)/n).
func TaskAccuracyCI(m *model.Model, task data.Task) Interval {
	n := len(task.Items)
	if n == 0 {
		return Interval{}
	}
	p := TaskAccuracy(m, task)
	return Interval{Value: p, Half: 1.96 * math.Sqrt(p*(1-p)/float64(n))}
}

// PerplexityCI evaluates perplexity over fixed segments and derives a 95%
// interval from the across-segment variance of per-token NLL means (the
// delta method maps the NLL interval through exp).
func PerplexityCI(m *model.Model, segments [][]int) Interval {
	if len(segments) == 0 {
		return Interval{Value: math.Inf(1)}
	}
	nlls := make([]float64, 0, len(segments))
	var totalNLL float64
	var totalTok int
	for _, seg := range segments {
		batch := data.NextTokenBatch(seg)
		logits := m.Forward(batch.IDs)
		nll, n := nn.SequenceNLL(logits, batch.Targets)
		if n == 0 {
			continue
		}
		nlls = append(nlls, nll/float64(n))
		totalNLL += nll
		totalTok += n
	}
	if totalTok == 0 {
		return Interval{Value: math.Inf(1)}
	}
	mean := totalNLL / float64(totalTok)
	// Across-segment variance of segment-mean NLL.
	var v float64
	segMean := 0.0
	for _, x := range nlls {
		segMean += x
	}
	segMean /= float64(len(nlls))
	for _, x := range nlls {
		d := x - segMean
		v += d * d
	}
	if len(nlls) > 1 {
		v /= float64(len(nlls) - 1)
	}
	se := math.Sqrt(v / float64(len(nlls)))
	ppl := math.Exp(mean)
	// d/dx exp(x) = exp(x): half-width maps through the derivative.
	return Interval{Value: ppl, Half: 1.96 * se * ppl}
}

package eval

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/train"
)

// trainedTiny trains one shared tiny model for the eval tests.
var trainedTiny = sync.OnceValue(func() *model.Model {
	src := data.NewC4Like(32)
	m := model.New(model.Tiny(), 1)
	train.Train(m, src, train.Config{Steps: 250, BatchSize: 2, SeqLen: 16, LR: 3e-3, Warmup: 15, ClipNorm: 1, Seed: 1})
	return m
})

func TestPerplexityUntrainedNearUniform(t *testing.T) {
	m := model.New(model.Tiny(), 2)
	src := data.NewC4Like(32)
	ppl := Perplexity(m, src, rand.New(rand.NewSource(1)), 20, 16)
	if ppl < 20 || ppl > 50 {
		t.Fatalf("untrained PPL %v, expected near vocab size 32", ppl)
	}
}

func TestPerplexityTrainedBelowUniform(t *testing.T) {
	m := trainedTiny()
	src := data.NewC4Like(32)
	ppl := Perplexity(m, src, rand.New(rand.NewSource(2)), 30, 16)
	floor := math.Exp(src.TransitionEntropy())
	if ppl > 25 {
		t.Fatalf("trained PPL %v did not improve on uniform 32", ppl)
	}
	if ppl < floor*0.9 {
		t.Fatalf("trained PPL %v below the entropy floor %v — scoring bug", ppl, floor)
	}
}

func TestPerplexityOnSegmentsFixedSet(t *testing.T) {
	m := trainedTiny()
	src := data.NewC4Like(32)
	rng := rand.New(rand.NewSource(3))
	segs := make([][]int, 10)
	for i := range segs {
		segs[i] = src.Generate(rng, 16)
	}
	a := PerplexityOnSegments(m, segs)
	b := PerplexityOnSegments(m, segs)
	if a != b {
		t.Fatal("fixed-set perplexity must be deterministic")
	}
	if math.IsInf(a, 1) || a <= 1 {
		t.Fatalf("PPL = %v", a)
	}
}

func TestPerplexityEmptyIsInf(t *testing.T) {
	m := model.New(model.Tiny(), 4)
	if !math.IsInf(PerplexityOnSegments(m, nil), 1) {
		t.Fatal("empty evaluation set must give +Inf perplexity")
	}
}

func TestScoreOptionPrefersLikelyContinuation(t *testing.T) {
	m := trainedTiny()
	src := data.NewC4Like(32)
	rng := rand.New(rand.NewSource(5))
	wins := 0
	const trials = 40
	for i := 0; i < trials; i++ {
		ctx := src.Generate(rng, 12)
		good := src.Continue(rng, ctx, 6)
		bad := make([]int, 6)
		for j := range bad {
			bad[j] = rng.Intn(32)
		}
		if ScoreOption(m, ctx, good) > ScoreOption(m, ctx, bad) {
			wins++
		}
	}
	if wins < trials*3/4 {
		t.Fatalf("true continuation preferred only %d/%d times", wins, trials)
	}
}

func TestTaskAccuracyAboveChance(t *testing.T) {
	m := trainedTiny()
	src := data.NewC4Like(32)
	rng := rand.New(rand.NewSource(6))
	spec := data.TaskSpec{Name: "easy", Options: 4, ContextLen: 12, ContLen: 6, Hardness: 0}
	task := data.GenerateTask(rng, src, spec, 60)
	acc := TaskAccuracy(m, task)
	if acc < 0.45 { // chance = 0.25
		t.Fatalf("accuracy %v barely above chance", acc)
	}
}

func TestUntrainedModelNearChance(t *testing.T) {
	m := model.New(model.Tiny(), 7)
	src := data.NewC4Like(32)
	rng := rand.New(rand.NewSource(7))
	spec := data.TaskSpec{Name: "hard", Options: 2, ContextLen: 12, ContLen: 6, Hardness: 1}
	task := data.GenerateTask(rng, src, spec, 80)
	acc := TaskAccuracy(m, task)
	if acc < 0.25 || acc > 0.75 {
		t.Fatalf("untrained accuracy %v too far from chance 0.5", acc)
	}
}

func TestEvaluateSuiteAndMean(t *testing.T) {
	m := trainedTiny()
	src := data.NewC4Like(32)
	rng := rand.New(rand.NewSource(8))
	var tasks []data.Task
	for _, spec := range data.StandardTasks()[:2] {
		tasks = append(tasks, data.GenerateTask(rng, src, spec, 10))
	}
	r := EvaluateSuite(m, tasks)
	if len(r.Names) != 2 || len(r.Accuracies) != 2 {
		t.Fatalf("suite result %v", r)
	}
	want := (r.Accuracies[0] + r.Accuracies[1]) / 2
	if math.Abs(r.Mean()-want) > 1e-12 {
		t.Fatalf("mean %v, want %v", r.Mean(), want)
	}
}

func TestSuiteResultEmptyMean(t *testing.T) {
	if (SuiteResult{}).Mean() != 0 {
		t.Fatal("empty suite mean must be 0")
	}
}

package eval

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/model"
)

func TestIntervalHelpers(t *testing.T) {
	a := Interval{Value: 10, Half: 1}
	if !a.Contains(9.5) || a.Contains(8.9) {
		t.Fatal("Contains broken")
	}
	b := Interval{Value: 11.5, Half: 1}
	if !a.Overlaps(b) {
		t.Fatal("overlapping intervals reported disjoint")
	}
	c := Interval{Value: 20, Half: 1}
	if a.Overlaps(c) {
		t.Fatal("disjoint intervals reported overlapping")
	}
}

func TestTaskAccuracyCIBinomial(t *testing.T) {
	m := trainedTiny()
	src := data.NewC4Like(32)
	rng := rand.New(rand.NewSource(21))
	task := data.GenerateTask(rng, src, data.TaskSpec{Name: "t", Options: 2, ContextLen: 10, ContLen: 4, Hardness: 0.5}, 100)
	ci := TaskAccuracyCI(m, task)
	if ci.Value != TaskAccuracy(m, task) {
		t.Fatal("CI point estimate must equal TaskAccuracy")
	}
	want := 1.96 * math.Sqrt(ci.Value*(1-ci.Value)/100)
	if math.Abs(ci.Half-want) > 1e-12 {
		t.Fatalf("half-width %v, want %v", ci.Half, want)
	}
	if TaskAccuracyCI(m, data.Task{}).Value != 0 {
		t.Fatal("empty task CI")
	}
}

func TestTaskAccuracyCIShrinksWithItems(t *testing.T) {
	m := trainedTiny()
	src := data.NewC4Like(32)
	rng := rand.New(rand.NewSource(22))
	spec := data.TaskSpec{Name: "t", Options: 2, ContextLen: 10, ContLen: 4, Hardness: 0.5}
	small := TaskAccuracyCI(m, data.GenerateTask(rng, src, spec, 30))
	large := TaskAccuracyCI(m, data.GenerateTask(rng, src, spec, 300))
	if large.Half >= small.Half {
		t.Fatalf("CI did not shrink: %v -> %v", small.Half, large.Half)
	}
}

func TestPerplexityCIConsistent(t *testing.T) {
	m := trainedTiny()
	src := data.NewC4Like(32)
	rng := rand.New(rand.NewSource(23))
	segs := make([][]int, 40)
	for i := range segs {
		segs[i] = src.Generate(rng, 16)
	}
	ci := PerplexityCI(m, segs)
	point := PerplexityOnSegments(m, segs)
	if math.Abs(ci.Value-point) > 1e-9 {
		t.Fatalf("CI point %v != PerplexityOnSegments %v", ci.Value, point)
	}
	if ci.Half <= 0 || ci.Half > point {
		t.Fatalf("implausible half-width %v for ppl %v", ci.Half, point)
	}
	// The true model's eval on its own distribution should cover repeat
	// draws most of the time: re-evaluate on a fresh sample.
	segs2 := make([][]int, 40)
	for i := range segs2 {
		segs2[i] = src.Generate(rng, 16)
	}
	p2 := PerplexityOnSegments(m, segs2)
	wide := Interval{Value: ci.Value, Half: ci.Half * 2}
	if !wide.Contains(p2) {
		t.Fatalf("fresh-sample ppl %v far outside interval %v±%v", p2, ci.Value, ci.Half)
	}
}

func TestPerplexityCIEmpty(t *testing.T) {
	m := model.New(model.Tiny(), 3)
	if !math.IsInf(PerplexityCI(m, nil).Value, 1) {
		t.Fatal("empty segments must give +Inf")
	}
}

// Package eval implements the two metrics the paper reports: perplexity on
// held-out corpora (Table 1, Figure 2, Table 3) and zero-shot
// multiple-choice accuracy via length-normalized log-likelihood scoring
// (Table 2), mirroring lm-evaluation-harness semantics.
package eval

import (
	"math"
	"math/rand"

	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/nn"
)

// Perplexity computes exp(mean NLL) of m over token segments drawn from
// src: `segments` sequences of `seqLen` tokens each, scored with the usual
// shift-by-one next-token protocol.
func Perplexity(m *model.Model, src data.Source, rng *rand.Rand, segments, seqLen int) float64 {
	totalNLL := 0.0
	totalTok := 0
	for s := 0; s < segments; s++ {
		batch := data.NextTokenBatch(src.Generate(rng, seqLen))
		logits := m.Forward(batch.IDs)
		nll, n := nn.SequenceNLL(logits, batch.Targets)
		totalNLL += nll
		totalTok += n
	}
	if totalTok == 0 {
		return math.Inf(1)
	}
	return math.Exp(totalNLL / float64(totalTok))
}

// PerplexityOnSegments scores a fixed, pre-sampled evaluation set, so
// different quantized models are compared on identical text.
func PerplexityOnSegments(m *model.Model, segments [][]int) float64 {
	totalNLL := 0.0
	totalTok := 0
	for _, seg := range segments {
		batch := data.NextTokenBatch(seg)
		logits := m.Forward(batch.IDs)
		nll, n := nn.SequenceNLL(logits, batch.Targets)
		totalNLL += nll
		totalTok += n
	}
	if totalTok == 0 {
		return math.Inf(1)
	}
	return math.Exp(totalNLL / float64(totalTok))
}

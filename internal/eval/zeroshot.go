package eval

import (
	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/nn"
)

// ScoreOption returns the length-normalized log-likelihood of a candidate
// continuation given a context — the acc_norm scoring rule of
// lm-evaluation-harness used for the paper's zero-shot suite.
func ScoreOption(m *model.Model, context, option []int) float64 {
	ids := make([]int, 0, len(context)+len(option))
	ids = append(ids, context...)
	ids = append(ids, option...)
	targets := make([]int, len(ids))
	for t := range targets {
		targets[t] = -1
	}
	// Score only the option tokens: position t predicts token t+1, so the
	// option tokens are predicted by positions len(context)-1 ...
	// len(ids)-2.
	for t := len(context) - 1; t < len(ids)-1; t++ {
		targets[t] = ids[t+1]
	}
	logits := m.Forward(ids)
	nll, n := nn.SequenceNLL(logits, targets)
	if n == 0 {
		return 0
	}
	return -nll / float64(n)
}

// TaskAccuracy scores every item of a task and returns the fraction where
// the correct option receives the highest normalized log-likelihood.
func TaskAccuracy(m *model.Model, task data.Task) float64 {
	if len(task.Items) == 0 {
		return 0
	}
	correct := 0
	for _, item := range task.Items {
		best, bestScore := -1, 0.0
		for o, opt := range item.Options {
			s := ScoreOption(m, item.Context, opt)
			if best == -1 || s > bestScore {
				best, bestScore = o, s
			}
		}
		if best == item.Answer {
			correct++
		}
	}
	return float64(correct) / float64(len(task.Items))
}

// SuiteResult holds per-task accuracies and their mean, in task order.
type SuiteResult struct {
	Names      []string
	Accuracies []float64
}

// Mean returns the average accuracy across tasks (the Acc% column of
// Table 2).
func (r SuiteResult) Mean() float64 {
	if len(r.Accuracies) == 0 {
		return 0
	}
	s := 0.0
	for _, a := range r.Accuracies {
		s += a
	}
	return s / float64(len(r.Accuracies))
}

// EvaluateSuite runs a model over a fixed set of tasks.
func EvaluateSuite(m *model.Model, tasks []data.Task) SuiteResult {
	var r SuiteResult
	for _, task := range tasks {
		r.Names = append(r.Names, task.Name)
		r.Accuracies = append(r.Accuracies, TaskAccuracy(m, task))
	}
	return r
}

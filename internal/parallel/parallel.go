// Package parallel provides the shared fork-join primitives that the
// tensor kernels, the quantization pipeline and the experiment harness use
// to exploit the per-row / per-layer / per-experiment independence of the
// APTQ workload.
//
// The package has two pieces of global state: the default worker count,
// initialized to GOMAXPROCS and adjustable via SetWorkers (the -workers
// flag of the command-line tools), and a process-wide spawn budget of
// Workers()-1 extra goroutines shared by all concurrently active parallel
// regions, so nested parallelism (grid → layers → kernels) cannot multiply
// the worker count. All primitives fall back to running inline on the
// calling goroutine when the work is too small, only one worker is
// configured, or the budget is exhausted, so callers never pay goroutine
// dispatch overhead on tiny inputs and total concurrency stays bounded.
//
// Determinism contract: every primitive partitions the index space into
// disjoint chunks and each chunk is processed in ascending index order by
// exactly one goroutine. As long as the callback writes only to locations
// owned by its chunk (the pattern used throughout this repository), results
// are bit-identical to a serial run regardless of the worker count or of
// which goroutine processes which chunk.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWorkers holds the process-wide worker count; 0 means "use
// runtime.GOMAXPROCS(0) at call time" so the default tracks later
// GOMAXPROCS changes.
var defaultWorkers atomic.Int64

// Workers returns the current default worker count (at least 1).
func Workers() int {
	if n := int(defaultWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers sets the process-wide default worker count used by For, ForEach
// and Do when no explicit count is given. n <= 0 restores the GOMAXPROCS
// default. It returns the effective new value.
func SetWorkers(n int) int {
	if n <= 0 {
		defaultWorkers.Store(0)
	} else {
		defaultWorkers.Store(int64(n))
	}
	return Workers()
}

// For runs fn over the index range [0, n) using the default worker count,
// splitting the range into contiguous [lo, hi) chunks of roughly grain
// indices. See ForWorkers for the scheduling and determinism contract.
func For(n, grain int, fn func(lo, hi int)) {
	ForWorkers(Workers(), n, grain, fn)
}

// spawned counts compute goroutines currently spawned by ForWorkers across
// the whole process. Parallel regions nest freely (experiment grid →
// per-layer loop → tensor kernel), and without a shared budget the worker
// count would multiply at each level; instead every region takes extra
// goroutines from this one budget (capacity Workers()-1, the calling
// goroutine being the implicit extra) and runs inline with whatever it
// could not get. Total busy compute goroutines therefore stay ~Workers()
// no matter how deeply regions nest.
var spawned atomic.Int64

// acquireSpawn takes up to k tokens from the global spawn budget and
// returns how many it got (possibly 0).
func acquireSpawn(k int) int {
	limit := int64(Workers() - 1)
	got := 0
	for got < k {
		cur := spawned.Load()
		if cur >= limit {
			break
		}
		if spawned.CompareAndSwap(cur, cur+1) {
			got++
		}
	}
	return got
}

// ForWorkers runs fn over [0, n) on up to workers goroutines (the caller
// plus extras from the global spawn budget — see spawned). The range is
// split into contiguous chunks of roughly grain indices (grain <= 0 selects
// one chunk per worker) which idle workers claim from an atomic cursor, so
// irregular per-index cost — e.g. the triangular row cost of a Gram update —
// balances automatically. Chunks are disjoint and internally ascending;
// callers writing only chunk-owned locations get bit-identical results to
// fn(0, n) regardless of how many workers actually run.
//
// When n is small, workers == 1, only one chunk would be created, or the
// spawn budget is exhausted by enclosing parallel regions, fn runs inline
// on the calling goroutine and no goroutines are spawned.
func ForWorkers(workers, n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if grain <= 0 {
		grain = (n + workers - 1) / workers
	}
	chunks := (n + grain - 1) / grain
	if workers <= 1 || chunks <= 1 {
		fn(0, n)
		return
	}
	if workers > chunks {
		workers = chunks
	}
	var cursor atomic.Int64
	drain := func() {
		for {
			c := int(cursor.Add(1)) - 1
			if c >= chunks {
				return
			}
			lo := c * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
	}
	extras := acquireSpawn(workers - 1)
	if extras == 0 {
		drain()
		return
	}
	var wg sync.WaitGroup
	wg.Add(extras)
	for w := 0; w < extras; w++ {
		go func() {
			defer wg.Done()
			defer spawned.Add(-1)
			drain()
		}()
	}
	drain()
	wg.Wait()
}

// ForEach runs fn for every index in [0, n) using the default worker count,
// one index per callback. It is For with grain 1 — the right shape for
// coarse units of work such as quantizing one layer or running one
// experiment.
func ForEach(n int, fn func(i int)) {
	ForEachWorkers(Workers(), n, fn)
}

// ForEachWorkers runs fn for every index in [0, n) on up to workers
// goroutines.
func ForEachWorkers(workers, n int, fn func(i int)) {
	ForWorkers(workers, n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// Do runs the given functions concurrently on the default worker count and
// waits for all of them.
func Do(fns ...func()) {
	ForEach(len(fns), func(i int) { fns[i]() })
}

// FirstError collects at most one error from concurrent workers: the one
// with the lowest index, so error reporting is deterministic regardless of
// completion order.
type FirstError struct {
	mu  sync.Mutex
	idx int
	err error
}

// Set records err for index idx; the error with the lowest index wins.
// nil errors are ignored.
func (fe *FirstError) Set(idx int, err error) {
	if err == nil {
		return
	}
	fe.mu.Lock()
	defer fe.mu.Unlock()
	if fe.err == nil || idx < fe.idx {
		fe.idx, fe.err = idx, err
	}
}

// Err returns the recorded error, if any. Call only after the workers have
// been joined.
func (fe *FirstError) Err() error {
	fe.mu.Lock()
	defer fe.mu.Unlock()
	return fe.err
}

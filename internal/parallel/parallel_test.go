package parallel

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersDefault(t *testing.T) {
	SetWorkers(0)
	if got := Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("default Workers() = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := SetWorkers(3); got != 3 {
		t.Fatalf("SetWorkers(3) = %d", got)
	}
	if got := Workers(); got != 3 {
		t.Fatalf("Workers() after SetWorkers(3) = %d", got)
	}
	SetWorkers(0)
}

func TestForCoversRangeExactlyOnce(t *testing.T) {
	// Raise the spawn budget so goroutines really spawn even on small
	// GOMAXPROCS hosts (the budget is Workers()-1).
	SetWorkers(16)
	defer SetWorkers(0)
	for _, workers := range []int{1, 2, 3, 7, 16} {
		for _, n := range []int{0, 1, 2, 7, 64, 101} {
			for _, grain := range []int{0, 1, 3, 100} {
				hits := make([]int32, n)
				ForWorkers(workers, n, grain, func(lo, hi int) {
					if lo < 0 || hi > n || lo >= hi {
						t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, n)
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("workers=%d n=%d grain=%d: index %d hit %d times", workers, n, grain, i, h)
					}
				}
			}
		}
	}
}

func TestForZeroAndNegative(t *testing.T) {
	called := false
	ForWorkers(4, 0, 1, func(lo, hi int) { called = true })
	ForWorkers(4, -3, 1, func(lo, hi int) { called = true })
	if called {
		t.Fatal("fn must not run for empty ranges")
	}
}

func TestForSingleWorkerRunsInline(t *testing.T) {
	var spans [][2]int
	// One worker: a single inline call covering the whole range, so an
	// unsynchronized append is safe and proves no goroutines were used.
	ForWorkers(1, 10, 2, func(lo, hi int) { spans = append(spans, [2]int{lo, hi}) })
	if len(spans) != 1 || spans[0] != [2]int{0, 10} {
		t.Fatalf("single worker spans = %v, want one [0,10) call", spans)
	}
}

// TestNestedRegionsRespectBudget checks that nesting parallel regions does
// not multiply concurrency: with Workers() == 3 the process may run at most
// 3 concurrent callbacks (1 caller + 2 budget goroutines), however deeply
// For calls nest — inner regions just run inline once the budget is taken.
func TestNestedRegionsRespectBudget(t *testing.T) {
	SetWorkers(3)
	defer SetWorkers(0)
	var active, peak atomic.Int64
	enter := func() {
		cur := active.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond) // widen the overlap window
		active.Add(-1)
	}
	ForEachWorkers(3, 6, func(i int) {
		ForEachWorkers(3, 4, func(j int) {
			enter()
		})
	})
	if p := peak.Load(); p > 3 {
		t.Fatalf("peak concurrency %d exceeds the 3-worker budget", p)
	}
	if spawnedNow := spawned.Load(); spawnedNow != 0 {
		t.Fatalf("spawn budget not released: %d outstanding", spawnedNow)
	}
}

func TestForEachSum(t *testing.T) {
	const n = 1000
	var sum atomic.Int64
	ForEachWorkers(8, n, func(i int) { sum.Add(int64(i)) })
	if want := int64(n * (n - 1) / 2); sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
}

func TestDo(t *testing.T) {
	var a, b, c atomic.Bool
	Do(func() { a.Store(true) }, func() { b.Store(true) }, func() { c.Store(true) })
	if !a.Load() || !b.Load() || !c.Load() {
		t.Fatal("Do must run every function")
	}
}

func TestFirstErrorLowestIndexWins(t *testing.T) {
	var fe FirstError
	fe.Set(5, errors.New("five"))
	fe.Set(2, errors.New("two"))
	fe.Set(9, errors.New("nine"))
	fe.Set(3, nil)
	if fe.Err() == nil || fe.Err().Error() != "two" {
		t.Fatalf("FirstError = %v, want two", fe.Err())
	}
	var empty FirstError
	if empty.Err() != nil {
		t.Fatal("empty FirstError must be nil")
	}
}

// Package linalg provides the symmetric-matrix factorizations used by the
// GPTQ/APTQ quantization engines: Cholesky decomposition, triangular solves,
// symmetric positive-definite inversion, and Hutchinson trace estimation.
package linalg

import (
	"errors"
	"math"

	"repro/internal/tensor"
)

// ErrNotPositiveDefinite is returned when a Cholesky factorization encounters
// a non-positive pivot. Callers typically respond by increasing damping.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// Cholesky computes the lower-triangular factor L with a = L·Lᵀ for a
// symmetric positive-definite matrix a. a is not modified.
func Cholesky(a *tensor.Mat) (*tensor.Mat, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("linalg: Cholesky of non-square matrix")
	}
	n := a.Rows
	l := tensor.New(n, n)
	for i := 0; i < n; i++ {
		lrow := l.Row(i)
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			ljrow := l.Row(j)
			for k := 0; k < j; k++ {
				s -= lrow[k] * ljrow[k]
			}
			if i == j {
				if s <= 0 {
					return nil, ErrNotPositiveDefinite
				}
				lrow[j] = math.Sqrt(s)
			} else {
				lrow[j] = s / ljrow[j]
			}
		}
	}
	return l, nil
}

// CholeskyUpper computes the upper-triangular factor U with a = Uᵀ·U.
// It is the transpose of the lower factor and is the form the GPTQ update
// rule consumes.
func CholeskyUpper(a *tensor.Mat) (*tensor.Mat, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	return l.T(), nil
}

// SolveLowerTriangular solves L·x = b for lower-triangular L in place on a
// copy of b and returns x.
func SolveLowerTriangular(l *tensor.Mat, b []float64) []float64 {
	n := l.Rows
	if len(b) != n {
		panic("linalg: SolveLowerTriangular length mismatch")
	}
	x := make([]float64, n)
	copy(x, b)
	for i := 0; i < n; i++ {
		row := l.Row(i)
		s := x[i]
		for k := 0; k < i; k++ {
			s -= row[k] * x[k]
		}
		x[i] = s / row[i]
	}
	return x
}

// SolveUpperTriangular solves U·x = b for upper-triangular U.
func SolveUpperTriangular(u *tensor.Mat, b []float64) []float64 {
	n := u.Rows
	if len(b) != n {
		panic("linalg: SolveUpperTriangular length mismatch")
	}
	x := make([]float64, n)
	copy(x, b)
	for i := n - 1; i >= 0; i-- {
		row := u.Row(i)
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= row[k] * x[k]
		}
		x[i] = s / row[i]
	}
	return x
}

// CholeskySolve solves a·x = b given the lower Cholesky factor L of a,
// via the two triangular solves L·y = b, Lᵀ·x = y.
func CholeskySolve(l *tensor.Mat, b []float64) []float64 {
	y := SolveLowerTriangular(l, b)
	return SolveUpperTriangular(l.T(), y)
}

// SymInverse inverts a symmetric positive-definite matrix via Cholesky.
// a is not modified.
func SymInverse(a *tensor.Mat) (*tensor.Mat, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	inv := tensor.New(n, n)
	e := make([]float64, n)
	lt := l.T()
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		y := SolveLowerTriangular(l, e)
		x := SolveUpperTriangular(lt, y)
		inv.SetCol(j, x)
	}
	// Symmetrize to wash out round-off asymmetry.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := 0.5 * (inv.At(i, j) + inv.At(j, i))
			inv.Set(i, j, v)
			inv.Set(j, i, v)
		}
	}
	return inv, nil
}

// DampedInverseUpper implements the GPTQ preprocessing step: add
// percdamp·mean(diag(h)) to the diagonal of h, invert, and return the upper
// Cholesky factor U of h⁻¹ (so that h⁻¹ = Uᵀ·U... the GPTQ update consumes
// U's rows). Damping is retried with exponentially growing strength until
// the factorization succeeds, mirroring the reference implementation's
// robustness behaviour.
//
// The returned matrix is the upper-triangular Cholesky factor of the damped
// inverse Hessian; its diagonal entries are the [H⁻¹]_qq^(1/2) terms of
// eqs. (2)/(16) after the Cholesky reformulation.
func DampedInverseUpper(h *tensor.Mat, percdamp float64) (*tensor.Mat, error) {
	if h.Rows != h.Cols {
		return nil, errors.New("linalg: DampedInverseUpper of non-square matrix")
	}
	mean := h.MeanDiag()
	if mean <= 0 {
		mean = 1
	}
	damp := percdamp * mean
	for attempt := 0; attempt < 12; attempt++ {
		hd := h.Clone()
		hd.AddDiag(damp)
		inv, err := SymInverse(hd)
		if err == nil {
			if u, err := CholeskyUpper(inv); err == nil {
				return u, nil
			}
		}
		damp *= 10
	}
	return nil, ErrNotPositiveDefinite
}

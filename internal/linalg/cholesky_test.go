package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

// randSPD returns a random symmetric positive-definite matrix XᵀX + εI.
func randSPD(rng *rand.Rand, n int) *tensor.Mat {
	x := tensor.Randn(rng, n+4, n, 1)
	g := tensor.Gram(x)
	g.AddDiag(0.1)
	return g
}

func TestCholeskyReconstructs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := randSPD(rng, n)
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		return tensor.MatMulNT(l, l).Equal(a, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskyLowerTriangular(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randSPD(rng, 5)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			if l.At(i, j) != 0 {
				t.Fatalf("upper part not zero at (%d,%d)", i, j)
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := tensor.FromSlice(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err == nil {
		t.Fatal("expected ErrNotPositiveDefinite")
	}
}

func TestCholeskyUpperReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randSPD(rng, 6)
	u, err := CholeskyUpper(a)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.MatMulTN(u, u).Equal(a, 1e-8) {
		t.Fatal("UᵀU != A")
	}
}

func TestTriangularSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randSPD(rng, 7)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 7)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := SolveLowerTriangular(l, b)
	if got := l.MulVec(x); !vecClose(got, b, 1e-9) {
		t.Fatalf("L·x = %v, want %v", got, b)
	}
	u := l.T()
	y := SolveUpperTriangular(u, b)
	if got := u.MulVec(y); !vecClose(got, b, 1e-9) {
		t.Fatalf("U·y = %v, want %v", got, b)
	}
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randSPD(rng, 6)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 6)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := CholeskySolve(l, b)
	if got := a.MulVec(x); !vecClose(got, b, 1e-8) {
		t.Fatalf("A·x = %v, want %v", got, b)
	}
}

func TestSymInverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := randSPD(rng, n)
		inv, err := SymInverse(a)
		if err != nil {
			return false
		}
		return tensor.MatMul(a, inv).Equal(tensor.Eye(n), 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSymInverseSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	inv, err := SymInverse(randSPD(rng, 9))
	if err != nil {
		t.Fatal(err)
	}
	if !inv.Equal(inv.T(), 1e-12) {
		t.Fatal("inverse not symmetric")
	}
}

func TestDampedInverseUpper(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := randSPD(rng, 8)
	u, err := DampedInverseUpper(h, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// UᵀU must equal the inverse of the damped H.
	hd := h.Clone()
	hd.AddDiag(0.01 * h.MeanDiag())
	inv, err := SymInverse(hd)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.MatMulTN(u, u).Equal(inv, 1e-7) {
		t.Fatal("UᵀU != (H+λI)⁻¹")
	}
}

func TestDampedInverseUpperRecoversFromSingular(t *testing.T) {
	// A rank-deficient Hessian (all-zero row/col) must still factorize after
	// damping escalation.
	h := tensor.New(4, 4)
	h.Set(0, 0, 1)
	h.Set(1, 1, 1)
	u, err := DampedInverseUpper(h, 0.01)
	if err != nil {
		t.Fatalf("expected damping to rescue singular H: %v", err)
	}
	for i := 0; i < 4; i++ {
		if u.At(i, i) <= 0 {
			t.Fatal("factor diagonal must be positive")
		}
	}
}

func TestHutchinsonTraceConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randSPD(rng, 12)
	exact := a.Trace()
	est := HutchinsonTrace(rng, a, 4096)
	if rel := math.Abs(est-exact) / exact; rel > 0.1 {
		t.Fatalf("Hutchinson estimate %v vs exact %v (rel err %v)", est, exact, rel)
	}
}

func TestHutchinsonTraceFnMatchesMatrixForm(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randSPD(rng, 10)
	rngA := rand.New(rand.NewSource(42))
	rngB := rand.New(rand.NewSource(42))
	ea := HutchinsonTrace(rngA, a, 64)
	eb := HutchinsonTraceFn(rngB, 10, 64, a.MulVec)
	if math.Abs(ea-eb) > 1e-9 {
		t.Fatalf("matrix and fn estimators disagree: %v vs %v", ea, eb)
	}
}

func TestPowerIterationMaxEig(t *testing.T) {
	// Diagonal matrix: top eigenvalue is the max diagonal entry.
	a := tensor.New(4, 4)
	for i, v := range []float64{1, 5, 2, 3} {
		a.Set(i, i, v)
	}
	rng := rand.New(rand.NewSource(10))
	got := PowerIterationMaxEig(rng, a, 200)
	if math.Abs(got-5) > 1e-6 {
		t.Fatalf("PowerIterationMaxEig = %v, want 5", got)
	}
}

func vecClose(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

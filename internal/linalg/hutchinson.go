package linalg

import (
	"math/rand"

	"repro/internal/tensor"
)

// HutchinsonTrace estimates trace(a) for a square matrix using the
// Hutchinson estimator tr(A) ≈ (1/P)·Σ_p z_pᵀ A z_p with Rademacher probes
// z_p ∈ {−1,+1}ⁿ. HAWQ-V2 uses this estimator for Hessian traces when the
// matrix is only available through matrix-vector products; we expose it both
// for parity with that baseline and to cross-check the exact traces used by
// APTQ's sensitivity metric.
func HutchinsonTrace(rng *rand.Rand, a *tensor.Mat, probes int) float64 {
	if a.Rows != a.Cols {
		panic("linalg: HutchinsonTrace of non-square matrix")
	}
	if probes <= 0 {
		probes = 16
	}
	n := a.Rows
	z := make([]float64, n)
	sum := 0.0
	for p := 0; p < probes; p++ {
		for i := range z {
			if rng.Intn(2) == 0 {
				z[i] = 1
			} else {
				z[i] = -1
			}
		}
		az := a.MulVec(z)
		sum += tensor.Dot(z, az)
	}
	return sum / float64(probes)
}

// HutchinsonTraceFn estimates the trace of an implicit linear operator
// given only through its matrix-vector product mv. dim is the operator's
// dimension.
func HutchinsonTraceFn(rng *rand.Rand, dim, probes int, mv func(v []float64) []float64) float64 {
	if probes <= 0 {
		probes = 16
	}
	z := make([]float64, dim)
	sum := 0.0
	for p := 0; p < probes; p++ {
		for i := range z {
			if rng.Intn(2) == 0 {
				z[i] = 1
			} else {
				z[i] = -1
			}
		}
		sum += tensor.Dot(z, mv(z))
	}
	return sum / float64(probes)
}

// PowerIterationMaxEig estimates the largest eigenvalue of a symmetric
// matrix by power iteration. Used in tests and in the sensitivity ablation
// (HAWQ-V1 used the top eigenvalue where HAWQ-V2 switched to the trace).
func PowerIterationMaxEig(rng *rand.Rand, a *tensor.Mat, iters int) float64 {
	if a.Rows != a.Cols {
		panic("linalg: PowerIterationMaxEig of non-square matrix")
	}
	n := a.Rows
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	norm := tensor.Norm2(v)
	if norm == 0 {
		v[0] = 1
		norm = 1
	}
	tensor.ScaleVec(v, 1/norm)
	lambda := 0.0
	for it := 0; it < iters; it++ {
		av := a.MulVec(v)
		lambda = tensor.Dot(v, av)
		norm = tensor.Norm2(av)
		if norm == 0 {
			return 0
		}
		tensor.ScaleVec(av, 1/norm)
		v = av
	}
	return lambda
}

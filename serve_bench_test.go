// Lockstep-vs-continuous decoding benchmark pair. Both decode the same
// skewed-length workload (mostly short requests, a few long ones — the
// shape of real serving traffic) over the same model at the same slot
// count; only the scheduling differs. Lockstep (infer.Batch) forces every
// wave of sequences to its longest member's token budget, so short
// sequences burn steps as padding; the continuous scheduler
// (serve.Scheduler) recycles a slot the moment its sequence finishes, so
// throughput tracks useful tokens. Both report useful tok/s.
//
//	go test -run='^$' -bench='DecodeLockstep|DecodeContinuous' -benchtime=1x .
package repro

import (
	"fmt"
	"testing"

	"repro/internal/infer"
	"repro/internal/model"
	"repro/internal/serve"
)

const (
	serveBenchSlots = 4
	serveBenchReqs  = 16
)

// skewedBenchRequests builds the workload: three short requests for every
// long one, interleaved so each lockstep wave of serveBenchSlots contains
// one long straggler — the pattern that idles lockstep slots hardest.
func skewedBenchRequests(m *model.Model) []serve.Request {
	reqs := make([]serve.Request, serveBenchReqs)
	for i := range reqs {
		budget := 4
		if i%serveBenchSlots == 0 {
			budget = 40
		}
		reqs[i] = serve.Request{
			ID:          fmt.Sprintf("r%d", i),
			Prompt:      []int{1 + i%(m.Cfg.Vocab-1), 2},
			MaxTokens:   budget,
			Temperature: 0.8,
			Seed:        int64(i),
		}
	}
	return reqs
}

func usefulTokens(reqs []serve.Request) int {
	n := 0
	for _, r := range reqs {
		n += r.MaxTokens
	}
	return n
}

func BenchmarkDecodeLockstep(b *testing.B) {
	skipUnderShort(b)
	m, _ := floatBenchModel()
	reqs := skewedBenchRequests(m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for lo := 0; lo < len(reqs); lo += serveBenchSlots {
			hi := lo + serveBenchSlots
			if hi > len(reqs) {
				hi = len(reqs)
			}
			wave := reqs[lo:hi]
			steps := 0
			prompts := make([][]int, len(wave))
			for j, r := range wave {
				prompts[j] = r.Prompt
				if r.MaxTokens > steps {
					steps = r.MaxTokens
				}
			}
			_, errs, err := infer.NewBatch(m, len(wave)).Generate(1, prompts, steps, 0.8)
			if err != nil {
				b.Fatal(err)
			}
			for _, e := range errs {
				if e != nil {
					b.Fatal(e)
				}
			}
		}
	}
	b.StopTimer()
	tokens := float64(b.N * usefulTokens(reqs))
	b.ReportMetric(tokens/b.Elapsed().Seconds(), "tok/s")
}

func BenchmarkDecodeContinuous(b *testing.B) {
	skipUnderShort(b)
	m, _ := floatBenchModel()
	reqs := skewedBenchRequests(m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := serve.New(m, serve.Options{Slots: serveBenchSlots, EOS: -1})
		results, err := s.GenerateAll(reqs)
		if err != nil {
			b.Fatal(err)
		}
		s.Close()
		for _, r := range results {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
	b.StopTimer()
	tokens := float64(b.N * usefulTokens(reqs))
	b.ReportMetric(tokens/b.Elapsed().Seconds(), "tok/s")
}

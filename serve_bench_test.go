// Lockstep-vs-continuous decoding benchmark pair. Both decode the same
// skewed-length workload (mostly short requests, a few long ones — the
// shape of real serving traffic) over the same model at the same slot
// count; only the scheduling differs. Lockstep (infer.Batch) forces every
// wave of sequences to its longest member's token budget, so short
// sequences burn steps as padding; the continuous scheduler
// (serve.Scheduler) recycles a slot the moment its sequence finishes, so
// throughput tracks useful tokens. Both report useful tok/s.
//
//	go test -run='^$' -bench='DecodeLockstep|DecodeContinuous' -benchtime=1x .
package repro

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/infer"
	"repro/internal/model"
	"repro/internal/serve"
)

const (
	serveBenchSlots = 4
	serveBenchReqs  = 16
)

// skewedBenchRequests builds the workload: three short requests for every
// long one, interleaved so each lockstep wave of serveBenchSlots contains
// one long straggler — the pattern that idles lockstep slots hardest.
func skewedBenchRequests(m *model.Model) []serve.Request {
	reqs := make([]serve.Request, serveBenchReqs)
	for i := range reqs {
		budget := 4
		if i%serveBenchSlots == 0 {
			budget = 40
		}
		reqs[i] = serve.Request{
			ID:          fmt.Sprintf("r%d", i),
			Prompt:      []int{1 + i%(m.Cfg.Vocab-1), 2},
			MaxTokens:   budget,
			Temperature: 0.8,
			Seed:        int64(i),
		}
	}
	return reqs
}

func usefulTokens(reqs []serve.Request) int {
	n := 0
	for _, r := range reqs {
		n += r.MaxTokens
	}
	return n
}

func BenchmarkDecodeLockstep(b *testing.B) {
	skipUnderShort(b)
	m, _ := floatBenchModel()
	reqs := skewedBenchRequests(m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for lo := 0; lo < len(reqs); lo += serveBenchSlots {
			hi := lo + serveBenchSlots
			if hi > len(reqs) {
				hi = len(reqs)
			}
			wave := reqs[lo:hi]
			steps := 0
			prompts := make([][]int, len(wave))
			for j, r := range wave {
				prompts[j] = r.Prompt
				if r.MaxTokens > steps {
					steps = r.MaxTokens
				}
			}
			_, errs, err := infer.NewBatch(m, len(wave)).Generate(1, prompts, steps, 0.8)
			if err != nil {
				b.Fatal(err)
			}
			for _, e := range errs {
				if e != nil {
					b.Fatal(e)
				}
			}
		}
	}
	b.StopTimer()
	tokens := float64(b.N * usefulTokens(reqs))
	b.ReportMetric(tokens/b.Elapsed().Seconds(), "tok/s")
}

// --- Prefix/KV cache: time-to-first-token on a repeated prompt prefix ---
//
// Both variants push the same long-prompt, one-token request through a
// single-slot scheduler; the Hit variant runs with the prefix cache
// enabled and primed, so all but the final admission chunk of the prompt
// is imported from cached KV snapshots (a memcpy per block) instead of
// recomputed, while the Cold variant prefills every token. ns/op is the
// end-to-end TTFT of one request; replies are bit-identical between the
// two (the prefix-cache contract, test-enforced in internal/serve).
//
//	go test -run='^$' -bench=PrefixCache -benchtime=1x .

// prefixBenchPrompt is long relative to the admission chunk so the cached
// fraction (all full chunks below len-1) dominates the prompt.
const prefixBenchPrompt = 120

func benchPrefixTTFT(b *testing.B, cacheBytes int64) {
	skipUnderShort(b)
	m := model.New(prefillBenchConfig(), 1)
	rng := rand.New(rand.NewSource(6))
	prompt := make([]int, prefixBenchPrompt)
	for i := range prompt {
		prompt[i] = rng.Intn(m.Cfg.Vocab)
	}
	opts := serve.Options{Slots: 1, EOS: -1, PrefillChunk: 8, PrefixCacheBytes: cacheBytes}
	s := serve.New(m, opts)
	defer s.Close()
	req := serve.Request{ID: "ttft", Prompt: prompt, MaxTokens: 1, Seed: 3}
	submit := func() {
		ticket, err := s.Submit(req)
		if err != nil {
			b.Fatal(err)
		}
		if res := ticket.Wait(); res.Err != nil {
			b.Fatal(res.Err)
		}
	}
	submit() // warm arenas; with the cache enabled this also primes it
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		submit()
	}
	b.StopTimer()
	b.ReportMetric(b.Elapsed().Seconds()*1e3/float64(b.N), "ttft-ms")
}

func BenchmarkPrefixCacheHit(b *testing.B)  { benchPrefixTTFT(b, 1<<26) }
func BenchmarkPrefixCacheCold(b *testing.B) { benchPrefixTTFT(b, 0) }

// --- Paged KV: resident bytes under shared-prefix traffic ---
//
// Both variants run the same 8-slot workload — eight requests with an
// identical 120-token prompt, two generated tokens each — after one
// priming request. With the prefix cache on (Shared), every slot adopts
// the full prefix pages by reference, so the pool holds the prefix once
// plus one private tail page per slot; with it off (Private), every slot
// recomputes and privately holds the whole prompt — the pre-paging memcpy
// memory model. kv-unique-bytes is the pool's deduplicated residency
// after the workload (deterministic, so `benchjson -compare` gates it as
// a lower-is-better bytes metric); kv-logical-bytes is what the same
// references would cost without sharing. The acceptance bar is Shared
// holding >= 4x fewer unique bytes than Private at 8 slots.
//
//	go test -run='^$' -bench=PrefixShareResidentBytes -benchtime=1x .

func benchPrefixShareResident(b *testing.B, cacheBytes int64) {
	skipUnderShort(b)
	m := model.New(prefillBenchConfig(), 1)
	rng := rand.New(rand.NewSource(6))
	prompt := make([]int, prefixBenchPrompt)
	for i := range prompt {
		prompt[i] = rng.Intn(m.Cfg.Vocab)
	}
	const slots = 8
	opts := serve.Options{Slots: slots, EOS: -1, PrefillChunk: 8, PrefixCacheBytes: cacheBytes}
	s := serve.New(m, opts)
	defer s.Close()
	// Prime: one request publishes the prefix pages (with the cache on),
	// so the measured batch adopts them instead of racing cold.
	prime, err := s.Submit(serve.Request{ID: "prime", Prompt: prompt, MaxTokens: 1, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	if res := prime.Wait(); res.Err != nil {
		b.Fatal(res.Err)
	}
	reqs := make([]serve.Request, slots)
	for i := range reqs {
		reqs[i] = serve.Request{ID: fmt.Sprintf("share%d", i), Prompt: prompt, MaxTokens: 2, Seed: int64(i)}
	}
	b.ResetTimer()
	var st serve.Stats
	for i := 0; i < b.N; i++ {
		results, err := s.GenerateAll(reqs)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
		st = s.Stats()
	}
	b.StopTimer()
	b.ReportMetric(float64(st.KVUniqueBytes), "kv-unique-bytes")
	b.ReportMetric(float64(st.KVLogicalBytes), "kv-logical-bytes")
}

func BenchmarkPrefixShareResidentBytesShared(b *testing.B)  { benchPrefixShareResident(b, 1<<26) }
func BenchmarkPrefixShareResidentBytesPrivate(b *testing.B) { benchPrefixShareResident(b, 0) }

// TestPrefixShareResidentBytesRatio pins the benchmark pair's acceptance
// bar as a test: at 8 slots sharing a 120-token prefix, the paged cache
// holds at least 4x fewer unique KV bytes than the private memcpy model.
func TestPrefixShareResidentBytesRatio(t *testing.T) {
	if testing.Short() {
		t.Skip("macro workload; skipped under -short")
	}
	m := model.New(prefillBenchConfig(), 1)
	rng := rand.New(rand.NewSource(6))
	prompt := make([]int, prefixBenchPrompt)
	for i := range prompt {
		prompt[i] = rng.Intn(m.Cfg.Vocab)
	}
	const slots = 8
	run := func(cacheBytes int64) int64 {
		s := serve.New(m, serve.Options{Slots: slots, EOS: -1, PrefillChunk: 8, PrefixCacheBytes: cacheBytes})
		defer s.Close()
		prime, err := s.Submit(serve.Request{ID: "prime", Prompt: prompt, MaxTokens: 1, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if res := prime.Wait(); res.Err != nil {
			t.Fatal(res.Err)
		}
		reqs := make([]serve.Request, slots)
		for i := range reqs {
			reqs[i] = serve.Request{ID: fmt.Sprintf("share%d", i), Prompt: prompt, MaxTokens: 2, Seed: int64(i)}
		}
		results, err := s.GenerateAll(reqs)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range results {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
		}
		return s.Stats().KVUniqueBytes
	}
	shared := run(1 << 26)
	private := run(0)
	if shared <= 0 || private <= 0 {
		t.Fatalf("no residency reported: shared=%d private=%d", shared, private)
	}
	if ratio := float64(private) / float64(shared); ratio < 4 {
		t.Fatalf("unique KV bytes only %.2fx lower with sharing (shared=%d private=%d), want >= 4x",
			ratio, shared, private)
	}
}

func BenchmarkDecodeContinuous(b *testing.B) {
	skipUnderShort(b)
	m, _ := floatBenchModel()
	reqs := skewedBenchRequests(m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := serve.New(m, serve.Options{Slots: serveBenchSlots, EOS: -1})
		results, err := s.GenerateAll(reqs)
		if err != nil {
			b.Fatal(err)
		}
		s.Close()
		for _, r := range results {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
	b.StopTimer()
	tokens := float64(b.N * usefulTokens(reqs))
	b.ReportMetric(tokens/b.Elapsed().Seconds(), "tok/s")
}

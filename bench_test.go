// Package repro's root benchmark suite regenerates every evaluation
// artifact of the APTQ paper — one testing.B per table and figure, plus the
// repository's ablations (experiments E1-E5 and A1-A3 of DESIGN.md §5) and
// micro-benchmarks of the underlying kernels.
//
// The macro benchmarks run the full experiment per iteration; use
//
//	go test -bench=. -benchmem
//
// (each settles at b.N == 1) and read the reported ppl/acc metrics. The
// experiment environment (pretrained nano models, fixed eval sets) is built
// once per process and shared.
package repro

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/eval"
	"repro/internal/gptq"
	"repro/internal/harness"
	"repro/internal/model"
	"repro/internal/tensor"
	"repro/internal/train"
)

var benchEnv = sync.OnceValue(func() *harness.Env { return harness.NewEnv(harness.Quick) })

// macroBench gates the experiment-regenerating benchmarks: each one runs a
// full table/figure per iteration, which is far too slow for the CI
// benchmark smoke job (`-bench=. -benchtime=1x -short`). The micro
// benchmarks below and in parallel_bench_test.go still run there.
func macroBench(b *testing.B) *harness.Env {
	b.Helper()
	if testing.Short() {
		b.Skip("macro benchmark regenerates a full experiment; skipped under -short")
	}
	return benchEnv()
}

// BenchmarkTable1 regenerates Table 1: perplexity of nano-7B under FP,
// GPTQ, OWQ, LLM-QAT, PB-LLM and APTQ at 4.0/3.5/3.0 average bits.
func BenchmarkTable1(b *testing.B) {
	e := macroBench(b)
	e.Model(model.Nano7B())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := e.Table1()
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		b.Log("\n" + t.Render())
		b.StartTimer()
	}
}

// BenchmarkFigure2 regenerates Figure 2: the APTQ perplexity-vs-ratio sweep
// with reference lines.
func BenchmarkFigure2(b *testing.B) {
	e := macroBench(b)
	e.Model(model.Nano7B())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, xs, ys, err := e.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		b.Log("\n" + t.Render())
		b.Log("\n" + harness.AsciiChart("Figure 2", xs, ys, 60, 10, "ratio %", "ppl"))
		b.StartTimer()
	}
}

// BenchmarkTable2 regenerates Table 2: zero-shot accuracy of nano-7B and
// nano-13B across the full method roster.
func BenchmarkTable2(b *testing.B) {
	e := macroBench(b)
	e.Model(model.Nano7B())
	e.Model(model.Nano13B())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := e.Table2()
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		b.Log("\n" + t.Render())
		b.StartTimer()
	}
}

// BenchmarkTable3 regenerates Table 3: APTQ vs manual block-wise mixed
// precision.
func BenchmarkTable3(b *testing.B) {
	e := macroBench(b)
	e.Model(model.Nano7B())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := e.Table3()
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		b.Log("\n" + t.Render())
		b.StartTimer()
	}
}

// BenchmarkFigure1Profile regenerates the Figure 1 sensitivity inset
// (per-block Hessian trace profile).
func BenchmarkFigure1Profile(b *testing.B) {
	e := macroBench(b)
	e.Model(model.Nano7B())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := e.Figure1Profile()
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		b.Log("\n" + t.Render())
		b.StartTimer()
	}
}

// BenchmarkAblationProbes regenerates ablation A1 (probe count).
func BenchmarkAblationProbes(b *testing.B) {
	e := macroBench(b)
	e.Model(model.Nano7B())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := e.AblationProbes()
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		b.Log("\n" + t.Render())
		b.StartTimer()
	}
}

// BenchmarkAblationGroupSize regenerates ablation A2 (group size).
func BenchmarkAblationGroupSize(b *testing.B) {
	e := macroBench(b)
	e.Model(model.Nano7B())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := e.AblationGroupSize()
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		b.Log("\n" + t.Render())
		b.StartTimer()
	}
}

// BenchmarkAblationSensitivity regenerates ablation A3 (sensitivity
// metric).
func BenchmarkAblationSensitivity(b *testing.B) {
	e := macroBench(b)
	e.Model(model.Nano7B())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := e.AblationSensitivity()
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		b.Log("\n" + t.Render())
		b.StartTimer()
	}
}

// BenchmarkCrossArch evaluates APTQ on both supported architectures
// (LLaMA-style and GPT-style nano models).
func BenchmarkCrossArch(b *testing.B) {
	e := macroBench(b)
	e.Model(model.Nano7B())
	e.Model(model.NanoGPT())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := e.CrossArch()
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		b.Log("\n" + t.Render())
		b.StartTimer()
	}
}

// --- micro-benchmarks of the underlying kernels ---

func BenchmarkMatMul64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.Randn(rng, 64, 64, 1)
	y := tensor.Randn(rng, 64, 64, 1)
	out := tensor.New(64, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulInto(out, x, y)
	}
}

func BenchmarkGram(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.Randn(rng, 256, 48, 1)
	out := tensor.New(48, 48)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.Zero()
		tensor.AccumGram(out, x)
	}
}

func BenchmarkGPTQQuantizeLayer(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	w := tensor.Randn(rng, 48, 48, 0.1)
	x := tensor.Randn(rng, 256, 48, 1)
	h := tensor.Gram(x)
	cfg := gptq.Config{Bits: 4, GroupSize: 16, BlockSize: 16, PercDamp: 0.01}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gptq.Quantize(w, h, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModelForward(b *testing.B) {
	m := model.New(model.Tiny(), 1)
	src := data.NewC4Like(m.Cfg.Vocab)
	ids := src.Generate(rand.New(rand.NewSource(1)), 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(ids)
	}
}

func BenchmarkModelTrainStep(b *testing.B) {
	m := model.New(model.Tiny(), 1)
	src := data.NewC4Like(m.Cfg.Vocab)
	batch := data.NextTokenBatch(src.Generate(rand.New(rand.NewSource(1)), 32))
	opt := train.NewAdam(m.Params(), 1e-3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ZeroGrad()
		m.LossAndBackward(batch.IDs, batch.Targets)
		opt.Step()
	}
}

func BenchmarkCollectStats(b *testing.B) {
	m := model.New(model.Tiny(), 1)
	src := data.NewC4Like(m.Cfg.Vocab)
	calib := data.SampleCalibration(rand.New(rand.NewSource(42)), src, 4, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.CollectStats(m, calib, core.CollectOptions{Probes: 2, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPerplexityEval(b *testing.B) {
	m := model.New(model.Tiny(), 1)
	src := data.NewC4Like(m.Cfg.Vocab)
	rng := rand.New(rand.NewSource(1))
	segs := make([][]int, 8)
	for i := range segs {
		segs[i] = src.Generate(rng, 24)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval.PerplexityOnSegments(m, segs)
	}
}

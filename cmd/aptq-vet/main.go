// Command aptq-vet runs the repository's custom static analyzers (detlint,
// noalloc, foreachcapture — see internal/analysis) in two modes:
//
//	go vet -vettool=$(pwd)/bin/aptq-vet ./...
//
// speaks cmd/go's unit-checker protocol: one package per invocation,
// configured by a JSON .cfg file, with cross-package facts carried in vetx
// files and the whole run cached by the go build cache (the -V=full
// handshake fingerprints the binary).
//
//	bin/aptq-vet ./...
//
// is the standalone whole-program mode: it loads, type-checks and analyzes
// the matching packages in one process — no go vet orchestration — which is
// handy for one-off runs and is what the analysistest fixtures use.
//
// Exit status: 0 clean, 2 when diagnostics were reported, 1 on errors.
package main

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	args := os.Args[1:]
	// cmd/go handshakes: version fingerprint and flag discovery.
	for _, a := range args {
		if a == "-V=full" || a == "--V=full" {
			analysis.PrintVersion("aptq-vet")
			return
		}
		if a == "-flags" || a == "--flags" {
			analysis.PrintFlags()
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		analysis.RunUnitchecker(args[0]) // terminates the process
	}
	standalone(args)
}

func standalone(patterns []string) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "aptq-vet: %v\n", err)
		os.Exit(1)
	}
	diags, err := analysis.RunStandalone(dir, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "aptq-vet: %v\n", err)
		os.Exit(1)
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}

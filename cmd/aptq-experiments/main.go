// Command aptq-experiments regenerates every table and figure of the
// paper's evaluation section on the nano substrate: Table 1 (perplexity),
// Figure 2 (perplexity vs 4-bit ratio), Table 2 (zero-shot accuracy),
// Table 3 (allocation ablation) and the Figure 1 sensitivity profile.
//
// Usage:
//
//	aptq-experiments                 # run everything at full scale
//	aptq-experiments -quick          # reduced evaluation budgets
//	aptq-experiments -only table1    # a single artifact
//	aptq-experiments -workers 4      # fan the grid across 4 workers
//	aptq-experiments -csv out/       # additionally write CSV files
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/model"
	"repro/internal/parallel"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("aptq-experiments: ")

	var (
		quick     = flag.Bool("quick", false, "reduced evaluation budgets")
		only      = flag.String("only", "", "run a single artifact: table1|table2|table3|figure1|figure2|crossarch")
		ablations = flag.Bool("ablations", false, "also run the repository's ablation studies (A1-A3)")
		csvDir    = flag.String("csv", "", "directory to write CSV copies of each artifact")
		workers   = flag.Int("workers", 0, "worker goroutines for kernels and the experiment grid (<=0: GOMAXPROCS)")
	)
	flag.Parse()

	parallel.SetWorkers(*workers)
	log.Printf("using %d workers", parallel.Workers())

	if *only != "" {
		valid := map[string]bool{"ablations": true, "crossarch": true}
		for _, ex := range harness.Experiments() {
			valid[ex.ID] = true
		}
		if !valid[*only] {
			ids := make([]string, 0, len(valid))
			for id := range valid {
				ids = append(ids, id)
			}
			sort.Strings(ids)
			log.Fatalf("unknown -only artifact %q (valid: %s)", *only, strings.Join(ids, ", "))
		}
	}

	scale := harness.Full
	if *quick {
		scale = harness.Quick
	}
	env := harness.NewEnv(scale)
	env.Workers = parallel.Workers()

	start := time.Now()
	log.Printf("pretraining substrate models (cached per process)...")
	env.Model(model.Nano7B())
	if *only == "" || *only == "table2" {
		env.Model(model.Nano13B())
	}
	if *only == "" || *only == "crossarch" {
		env.Model(model.NanoGPT())
	}
	log.Printf("models ready in %v", time.Since(start).Round(time.Second))

	selected := func(id string) bool {
		return (*only == "" || *only == id) && *only != "ablations"
	}

	// Assemble the grid in paper order (plus the cross-architecture table)
	// and fan it across the worker budget. Each entry logs its own wall
	// clock; figure2 stashes its chart series for rendering after the join.
	var f2xs, f2ys []float64
	var exps []harness.Experiment
	for _, ex := range append(harness.Experiments(),
		harness.Experiment{ID: "crossarch", Run: (*harness.Env).CrossArch}) {
		if !selected(ex.ID) {
			continue
		}
		ex := ex
		run := ex.Run
		if ex.ID == "figure2" {
			run = func(e *harness.Env) (*harness.Table, error) {
				t, xs, ys, err := e.Figure2()
				f2xs, f2ys = xs, ys
				return t, err
			}
		}
		exps = append(exps, harness.Experiment{ID: ex.ID, Run: func(e *harness.Env) (*harness.Table, error) {
			t0 := time.Now()
			t, err := run(e)
			if err == nil {
				log.Printf("%s done in %v", ex.ID, time.Since(t0).Round(time.Second))
			}
			return t, err
		}})
	}
	tables, err := env.RunGrid(exps)
	if err != nil {
		log.Fatal(err)
	}
	if len(f2xs) > 0 {
		fmt.Println(harness.AsciiChart("Figure 2: APTQ C4 perplexity vs 4-bit ratio", f2xs, f2ys, 60, 12, "ratio %", "ppl"))
	}

	if *ablations || *only == "ablations" {
		t0 := time.Now()
		abl, err := env.RunAblations()
		if err != nil {
			log.Fatalf("ablations: %v", err)
		}
		log.Printf("ablations done in %v", time.Since(t0).Round(time.Second))
		tables = append(tables, abl...)
	}

	for _, t := range tables {
		fmt.Println(t.Render())
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			log.Fatal(err)
		}
		for _, t := range tables {
			path := filepath.Join(*csvDir, t.ID+".csv")
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				log.Fatal(err)
			}
			log.Printf("wrote %s", path)
		}
	}
	log.Printf("all experiments finished in %v", time.Since(start).Round(time.Second))
}

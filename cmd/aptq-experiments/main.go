// Command aptq-experiments regenerates every table and figure of the
// paper's evaluation section on the nano substrate: Table 1 (perplexity),
// Figure 2 (perplexity vs 4-bit ratio), Table 2 (zero-shot accuracy),
// Table 3 (allocation ablation) and the Figure 1 sensitivity profile.
//
// Usage:
//
//	aptq-experiments                 # run everything at full scale
//	aptq-experiments -quick          # reduced evaluation budgets
//	aptq-experiments -only table1    # a single artifact
//	aptq-experiments -csv out/       # additionally write CSV files
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/harness"
	"repro/internal/model"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("aptq-experiments: ")

	var (
		quick     = flag.Bool("quick", false, "reduced evaluation budgets")
		only      = flag.String("only", "", "run a single artifact: table1|table2|table3|figure1|figure2")
		ablations = flag.Bool("ablations", false, "also run the repository's ablation studies (A1-A3)")
		csvDir    = flag.String("csv", "", "directory to write CSV copies of each artifact")
	)
	flag.Parse()

	scale := harness.Full
	if *quick {
		scale = harness.Quick
	}
	env := harness.NewEnv(scale)

	start := time.Now()
	log.Printf("pretraining substrate models (cached per process)...")
	env.Model(model.Nano7B())
	if *only == "" || *only == "table2" {
		env.Model(model.Nano13B())
	}
	log.Printf("models ready in %v", time.Since(start).Round(time.Second))

	var tables []*harness.Table
	run := func(id string, f func() (*harness.Table, error)) {
		if *only != "" && *only != id {
			return
		}
		if *only == "ablations" {
			return
		}
		t0 := time.Now()
		t, err := f()
		if err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		log.Printf("%s done in %v", id, time.Since(t0).Round(time.Second))
		tables = append(tables, t)
	}

	run("table1", env.Table1)
	if (*only == "" || *only == "figure2") && *only != "ablations" {
		t0 := time.Now()
		t, xs, ys, err := env.Figure2()
		if err != nil {
			log.Fatalf("figure2: %v", err)
		}
		log.Printf("figure2 done in %v", time.Since(t0).Round(time.Second))
		tables = append(tables, t)
		fmt.Println(harness.AsciiChart("Figure 2: APTQ C4 perplexity vs 4-bit ratio", xs, ys, 60, 12, "ratio %", "ppl"))
	}
	run("table2", env.Table2)
	run("table3", env.Table3)
	run("figure1", env.Figure1Profile)
	run("crossarch", env.CrossArch)

	if *ablations || *only == "ablations" {
		t0 := time.Now()
		abl, err := env.RunAblations()
		if err != nil {
			log.Fatalf("ablations: %v", err)
		}
		log.Printf("ablations done in %v", time.Since(t0).Round(time.Second))
		tables = append(tables, abl...)
	}

	for _, t := range tables {
		fmt.Println(t.Render())
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			log.Fatal(err)
		}
		for _, t := range tables {
			path := filepath.Join(*csvDir, t.ID+".csv")
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				log.Fatal(err)
			}
			log.Printf("wrote %s", path)
		}
	}
	log.Printf("all experiments finished in %v", time.Since(start).Round(time.Second))
}

// Command aptq-train pretrains one of the nano LLaMA stand-ins on the
// synthetic corpus mixture and writes a gob checkpoint, so the other tools
// (aptq-quantize, aptq-eval) can operate on a fixed model.
//
// Usage:
//
//	aptq-train -model nano-7B -out nano7b.ckpt [-steps 700] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/train"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("aptq-train: ")

	var (
		modelName = flag.String("model", "nano-7B", "model config: nano-7B, nano-13B or tiny")
		out       = flag.String("out", "model.ckpt", "checkpoint output path")
		steps     = flag.Int("steps", 0, "training steps (0 = recipe default)")
		seed      = flag.Int64("seed", 1, "training seed")
		quiet     = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	cfg, err := configByName(*modelName)
	if err != nil {
		log.Fatal(err)
	}

	vocab := cfg.Vocab
	mix := data.NewMixture(48, data.NewC4Like(vocab), data.NewWikiLike(vocab))

	tc := train.DefaultConfig()
	tc.Seed = *seed
	tc.SeqLen = cfg.MaxSeq * 3 / 4
	if *steps > 0 {
		tc.Steps = *steps
	}
	if !*quiet {
		tc.LogEvery = 50
		tc.Logf = func(format string, args ...any) { log.Printf(format, args...) }
	}

	m := model.New(cfg, *seed)
	log.Printf("training %s (%d params) for %d steps", cfg.Name, m.NumParams(), tc.Steps)
	hist := train.Train(m, mix, tc)
	log.Printf("final training loss %.4f", hist.Final)

	if err := m.SaveFile(*out); err != nil {
		log.Fatalf("save: %v", err)
	}
	fi, _ := os.Stat(*out)
	log.Printf("wrote %s (%d bytes)", *out, fi.Size())
}

func configByName(name string) (model.Config, error) {
	switch name {
	case "nano-7B":
		return model.Nano7B(), nil
	case "nano-13B":
		return model.Nano13B(), nil
	case "tiny":
		return model.Tiny(), nil
	default:
		return model.Config{}, fmt.Errorf("unknown model %q (want nano-7B, nano-13B or tiny)", name)
	}
}

// Command aptq-inspect prints per-layer quantization diagnostics for a
// checkpoint: attention-aware and GPTQ Hessian traces, top Hessian
// eigenvalue, Fisher sensitivity scores, low-bit perturbation energy,
// compensated proxy losses, and the resulting 2/4-bit allocation at a
// chosen ratio — the numbers behind Figure 1 and Algorithm 1's Step 2.
//
// Usage:
//
//	aptq-inspect -in nano7b.ckpt [-ratio 0.5] [-calib 32]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/gptq"
	"repro/internal/linalg"
	"repro/internal/model"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("aptq-inspect: ")

	var (
		in       = flag.String("in", "", "checkpoint to inspect")
		ratio    = flag.Float64("ratio", 0.5, "4-bit ratio for the allocation preview")
		calibN   = flag.Int("calib", 32, "calibration segments")
		calibLen = flag.Int("caliblen", 48, "calibration segment length")
		group    = flag.Int("group", 16, "group size for perturbation estimates")
		probes   = flag.Int("probes", 4, "Q/K Jacobian probes per segment")
	)
	flag.Parse()

	if *in == "" {
		log.Fatal("missing -in checkpoint")
	}
	m, err := model.LoadFile(*in)
	if err != nil {
		if m, err = core.ReadCompressedFile(*in); err != nil {
			log.Fatalf("load: %v", err)
		}
	}
	fmt.Printf("model %s: %d params, %d quantizable weights in %d layers\n\n",
		m.Cfg.Name, m.NumParams(), m.QuantizableWeightCount(), len(m.QuantizableLayers()))

	src := data.NewC4Like(m.Cfg.Vocab)
	calib := data.SampleCalibration(rand.New(rand.NewSource(42)), src, *calibN, *calibLen)
	st, err := core.CollectStats(m, calib, core.CollectOptions{Probes: *probes, Seed: 1})
	if err != nil {
		log.Fatalf("collect: %v", err)
	}

	sens := st.Sensitivities(core.MetricFisherDelta, 2, *group, 1)
	alloc, err := core.Allocate(sens, *ratio, 4, 2)
	if err != nil {
		log.Fatalf("allocate: %v", err)
	}

	fmt.Printf("%-30s %10s %10s %10s %12s %12s %5s\n",
		"layer", "attn_tr", "gptq_tr", "top_eig", "fisher", "proxy2bit", "bits")
	rng := rand.New(rand.NewSource(7))
	for i := range st.Layers {
		ls := &st.Layers[i]
		h := ls.Hessian()
		topEig := linalg.PowerIterationMaxEig(rng, h, 50)
		cfg := gptq.Config{Bits: 2, GroupSize: *group, BlockSize: *group, PercDamp: 0.01}
		q, err := gptq.Quantize(ls.Ref.Linear.P.W, h, cfg)
		proxy := 0.0
		if err == nil {
			proxy = gptq.ProxyLoss(ls.Ref.Linear.P.W, q.Dequantize(), h)
		}
		fmt.Printf("%-30s %10.4g %10.4g %10.4g %12.4g %12.4g %5d\n",
			ls.Ref.Name(), h.MeanDiag(), ls.XtX.MeanDiag(), topEig,
			sens[i].Score, proxy, alloc.Bits[ls.Ref.Name()])
	}
	fmt.Printf("\nallocation at R=%.0f%%: achieved %.0f%% (avg %.2f bits by eq. 18)\n",
		*ratio*100, alloc.Ratio()*100, alloc.AverageBits())
}

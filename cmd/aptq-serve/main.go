// Command aptq-serve is the HTTP serving front-end over the
// continuous-batching scheduler (internal/serve): a pool of KV-cached
// decoding slots on one shared model copy — float or packed — with
// per-request seeds, stop tokens and token budgets, so mixed-length
// traffic keeps every slot busy instead of decoding in lockstep. The
// handler itself lives in internal/serve (serve.Server); this command
// binds it to flags, a listener and signal handling.
//
// Usage:
//
//	aptq-serve -ckpt nano7b-q.packed.ckpt -packed -slots 8
//	aptq-serve -prefix-cache 67108864   # 64 MiB shared prefix/KV cache
//	aptq-serve -max-queue 256           # shed load with 429 past 256 queued
//	aptq-serve -kv-budget-mb 64         # hard KV memory bound; preempt, never grow
//	aptq-serve -addr :0                 # kernel-assigned port (see below)
//	aptq-serve                      # built-in deterministic demo model
//
// The first line on stdout is always "ADDR=<host:port>" with the
// *actually bound* listen address — with -addr :0 the kernel picks a free
// port, so multi-process harnesses (the router smoke test boots three
// replicas at once) parse that line instead of racing each other for
// hardcoded ports. Logs go to stderr; stdout carries only the address
// line.
//
// Endpoints:
//
//	POST /v1/generate  {"prompt":"...", "tokens":[...], "max_tokens":16,
//	                    "temperature":0.8, "seed":7, "stop":[...],
//	                    "priority":5, "deadline_ms":2000, "stream":true}
//	                   With ?stream=1 (or "stream":true) the reply is a
//	                   Server-Sent-Events stream: one `data:` event per
//	                   generated token, then a final event carrying the
//	                   complete non-streaming response body.
//	GET  /v1/stats     scheduler counters (slots, queue, tokens, KV bytes,
//	                   prefill chunk, TTFT + inter-token latency p50/p99,
//	                   cancellations, rejections, prefix-cache hits)
//	GET  /healthz      liveness + model identity; 503 while draining
//
// With -kv-budget-mb the KV page pool is hard-bounded: slots and the
// prefix cache share the budget, the cache is the sacrificial tier, and
// under exhaustion the scheduler defers admissions and deterministically
// preempts the weakest slot (lowest priority, then youngest) rather than
// allocating past the bound. Preempted requests resume bit-identically;
// load shed with 429/503 carries a Retry-After header. The /v1/stats
// counters preemptions, admission_deferred, panics, kv_budget_bytes and
// kv_high_water_bytes expose the pressure behavior.
//
// On SIGINT/SIGTERM the server drains: /healthz goes unhealthy, new
// requests get 503, in-flight requests finish. The drain is bounded by
// -drain-timeout (default 30s): past it, remaining requests are
// force-closed with an error instead of hanging the shutdown forever, and
// the scheduler reports it in drain_timeouts.
//
// Determinism: the same request body always yields the same reply — output
// depends only on the model and the request (prompt, seed, temperature,
// stop set), never on slot assignment, worker count, streaming, priority,
// or concurrent traffic (including co-scheduled cancellations). The CI
// smoke test asserts this end to end, for both reply forms; the
// multi-replica router (cmd/aptq-router) leans on the same contract to
// retry and fail over between replicas transparently.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/parallel"
	"repro/internal/serve"
	"repro/internal/train"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("aptq-serve: ")

	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address (:0 picks a free port; the bound address is printed as ADDR=... on stdout)")
		ckpt       = flag.String("ckpt", "", "checkpoint to serve (empty: built-in demo model)")
		packed     = flag.Bool("packed", false, "serve straight from the packed low-bit representation (compressed checkpoints only)")
		slots      = flag.Int("slots", 4, "concurrent decoding slots")
		workers    = flag.Int("workers", 0, "worker goroutines for the per-step fan-out (0 = GOMAXPROCS)")
		eos        = flag.Int("eos", -1, "end-of-sequence token id (negative: disabled)")
		kvBits     = flag.Int("kvbits", 0, "KV-cache quantization bit width (0 = float)")
		prefill    = flag.Int("prefill-chunk", 0, "prompt tokens admitted per decode tick (0 = default chunking)")
		prefixCach = flag.Int64("prefix-cache", 0, "shared prefix/KV cache byte budget (0 = disabled); repeat prompt prefixes skip prefill")
		maxQueue   = flag.Int("max-queue", 0, "admission queue depth bound; overflow is rejected with 429 (0 = unbounded)")
		kvBudget   = flag.Int("kv-budget-mb", 0, "hard KV page-pool budget in MiB shared by slots and the prefix cache (0 = unbounded); under pressure the server degrades via cache eviction, admission deferral and slot preemption instead of growing")
		drainTO    = flag.Duration("drain-timeout", 30*time.Second, "graceful-drain bound on SIGTERM; expired drains force-close remaining requests (0 = wait forever)")
		trainSteps = flag.Int("train-steps", 0, "pretraining steps for the demo model (0 = raw seeded init, instant startup)")
	)
	flag.Parse()
	parallel.SetWorkers(*workers)

	m, err := loadModel(*ckpt, *packed, *trainSteps)
	if err != nil {
		log.Fatal(err)
	}
	opts := serve.DefaultOptions()
	opts.Slots = *slots
	opts.EOS = *eos
	opts.KVQuantBits = *kvBits
	opts.PrefillChunk = *prefill
	opts.PrefixCacheBytes = *prefixCach
	opts.MaxQueue = *maxQueue
	opts.KVBudgetBytes = int64(*kvBudget) << 20
	srv := serve.NewServer(m, opts)
	defer srv.Close()

	// Bind before announcing: with -addr :0 the kernel assigns the port, so
	// the flag value and the bound address differ — everything downstream
	// (the printed ADDR line, the log) reports the listener's truth, never
	// the flag's assumption.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	bound := ln.Addr().String()
	// The machine-parseable contract: first stdout line is ADDR=<host:port>.
	fmt.Printf("ADDR=%s\n", bound)
	log.Printf("model %s (vocab %d, maxseq %d), %d slots, listening on %s",
		m.Cfg.Name, m.Cfg.Vocab, m.Cfg.MaxSeq, *slots, bound)

	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		// Graceful redeploy order: flip /healthz unhealthy so load
		// balancers stop routing here, drain the scheduler (new Submits
		// rejected, queued + in-flight requests run to completion, bounded
		// by -drain-timeout), then shut the HTTP listener down.
		log.Printf("signal received, draining (timeout %s)", *drainTO)
		srv.SetDraining(true)
		if !srv.Scheduler().DrainFor(*drainTO) {
			log.Printf("drain timeout expired; remaining requests force-closed")
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
	}()
	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
}

// loadModel resolves the served model: a float checkpoint, a compressed
// (optionally packed-execution) checkpoint, or the built-in demo model —
// a fixed-seed nano config whose replies are deterministic, which the CI
// smoke test relies on.
func loadModel(ckpt string, packed bool, trainSteps int) (*model.Model, error) {
	if ckpt == "" {
		cfg := model.Config{Name: "serve-demo", Vocab: 64, Dim: 32, Heads: 4, Layers: 3, FF: 64, MaxSeq: 64, RopeBase: 10000}
		m := model.New(cfg, 1)
		if trainSteps > 0 {
			src := data.NewC4Like(cfg.Vocab)
			train.Train(m, src, train.Config{Steps: trainSteps, BatchSize: 4, SeqLen: 32, LR: 3e-3, Warmup: 20, ClipNorm: 1, Seed: 1})
		}
		return m, nil
	}
	m, _, err := core.LoadModelFile(ckpt, packed)
	return m, err
}

// Command aptq-serve is the HTTP serving front-end over the
// continuous-batching scheduler (internal/serve): a pool of KV-cached
// decoding slots on one shared model copy — float or packed — with
// per-request seeds, stop tokens and token budgets, so mixed-length
// traffic keeps every slot busy instead of decoding in lockstep.
//
// Usage:
//
//	aptq-serve -ckpt nano7b-q.packed.ckpt -packed -slots 8
//	aptq-serve -prefix-cache 67108864   # 64 MiB shared prefix/KV cache
//	aptq-serve -max-queue 256           # shed load with 429 past 256 queued
//	aptq-serve                      # built-in deterministic demo model
//
// Endpoints:
//
//	POST /v1/generate  {"prompt":"...", "tokens":[...], "max_tokens":16,
//	                    "temperature":0.8, "seed":7, "stop":[...],
//	                    "priority":5, "deadline_ms":2000, "stream":true}
//	                   With ?stream=1 (or "stream":true) the reply is a
//	                   Server-Sent-Events stream: one `data:` event per
//	                   generated token as it decodes, then a final event
//	                   carrying the complete non-streaming response body.
//	GET  /v1/stats     scheduler counters (slots, queue, tokens, KV bytes,
//	                   prefill chunk, TTFT + inter-token latency p50/p99,
//	                   cancellations, rejections, prefix-cache hits)
//	GET  /healthz      liveness + model identity; 503 while draining
//
// Interactive-latency contract: a client disconnect or an exceeded
// "deadline_ms" cancels the request's context, and the scheduler frees
// its slot at the next decode tick — an abandoned request never decodes
// to its full token budget. "priority" orders admission when slots are
// contended; -max-queue bounds the admission queue, returning 429 under
// overload. On SIGINT/SIGTERM the server drains: /healthz goes unhealthy,
// new requests get 503, in-flight requests finish (graceful redeploys).
//
// With -prefix-cache N, completed prefill chunks are snapshotted into a
// shared N-byte KV cache and requests whose prompts repeat a cached
// prefix (system prompts, few-shot headers) skip that part of the
// prefill entirely — near-zero time-to-first-token on repeats, with
// replies bit-identical to the uncached path.
//
// Determinism: the same request body always yields the same reply — output
// depends only on the model and the request (prompt, seed, temperature,
// stop set), never on slot assignment, worker count, streaming, priority,
// or concurrent traffic (including co-scheduled cancellations). The CI
// smoke test asserts this end to end, for both reply forms.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/parallel"
	"repro/internal/serve"
	"repro/internal/train"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("aptq-serve: ")

	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address")
		ckpt       = flag.String("ckpt", "", "checkpoint to serve (empty: built-in demo model)")
		packed     = flag.Bool("packed", false, "serve straight from the packed low-bit representation (compressed checkpoints only)")
		slots      = flag.Int("slots", 4, "concurrent decoding slots")
		workers    = flag.Int("workers", 0, "worker goroutines for the per-step fan-out (0 = GOMAXPROCS)")
		eos        = flag.Int("eos", -1, "end-of-sequence token id (negative: disabled)")
		kvBits     = flag.Int("kvbits", 0, "KV-cache quantization bit width (0 = float)")
		prefill    = flag.Int("prefill-chunk", 0, "prompt tokens admitted per decode tick (0 = default chunking)")
		prefixCach = flag.Int64("prefix-cache", 0, "shared prefix/KV cache byte budget (0 = disabled); repeat prompt prefixes skip prefill")
		maxQueue   = flag.Int("max-queue", 0, "admission queue depth bound; overflow is rejected with 429 (0 = unbounded)")
		trainSteps = flag.Int("train-steps", 0, "pretraining steps for the demo model (0 = raw seeded init, instant startup)")
	)
	flag.Parse()
	parallel.SetWorkers(*workers)

	m, err := loadModel(*ckpt, *packed, *trainSteps)
	if err != nil {
		log.Fatal(err)
	}
	opts := serve.DefaultOptions()
	opts.Slots = *slots
	opts.EOS = *eos
	opts.KVQuantBits = *kvBits
	opts.PrefillChunk = *prefill
	opts.PrefixCacheBytes = *prefixCach
	opts.MaxQueue = *maxQueue
	srv := newServer(m, opts)
	defer srv.sched.Close()
	log.Printf("model %s (vocab %d, maxseq %d), %d slots, listening on %s",
		m.Cfg.Name, m.Cfg.Vocab, m.Cfg.MaxSeq, *slots, *addr)

	httpSrv := &http.Server{Addr: *addr, Handler: srv.mux()}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		// Graceful redeploy order: flip /healthz unhealthy so load
		// balancers stop routing here, drain the scheduler (new Submits
		// rejected, queued + in-flight requests run to completion), then
		// shut the HTTP listener down.
		log.Printf("signal received, draining")
		srv.draining.Store(true)
		srv.sched.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
	}()
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
}

// loadModel resolves the served model: a float checkpoint, a compressed
// (optionally packed-execution) checkpoint, or the built-in demo model —
// a fixed-seed nano config whose replies are deterministic, which the CI
// smoke test relies on.
func loadModel(ckpt string, packed bool, trainSteps int) (*model.Model, error) {
	if ckpt == "" {
		cfg := model.Config{Name: "serve-demo", Vocab: 64, Dim: 32, Heads: 4, Layers: 3, FF: 64, MaxSeq: 64, RopeBase: 10000}
		m := model.New(cfg, 1)
		if trainSteps > 0 {
			src := data.NewC4Like(cfg.Vocab)
			train.Train(m, src, train.Config{Steps: trainSteps, BatchSize: 4, SeqLen: 32, LR: 3e-3, Warmup: 20, ClipNorm: 1, Seed: 1})
		}
		return m, nil
	}
	m, _, err := core.LoadModelFile(ckpt, packed)
	return m, err
}

// server binds the scheduler to the HTTP surface.
type server struct {
	m        *model.Model
	vocab    *data.Vocabulary
	sched    *serve.Scheduler
	draining atomic.Bool // set before Drain; /healthz reports 503
}

func newServer(m *model.Model, opts serve.Options) *server {
	return &server{m: m, vocab: data.NewVocabulary(m.Cfg.Vocab), sched: serve.New(m, opts)}
}

func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/generate", s.handleGenerate)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealth)
	return mux
}

// generateRequest is the JSON body of POST /v1/generate. Exactly one of
// Prompt (whitespace-tokenized words of the synthetic vocabulary) or
// Tokens (raw ids) supplies the prompt.
type generateRequest struct {
	ID          string  `json:"id,omitempty"`
	Prompt      string  `json:"prompt,omitempty"`
	Tokens      []int   `json:"tokens,omitempty"`
	MaxTokens   int     `json:"max_tokens"`
	Temperature float64 `json:"temperature"`
	Seed        int64   `json:"seed"`
	Stop        []int   `json:"stop,omitempty"`
	// Stream switches the reply to Server-Sent Events (same as ?stream=1):
	// one event per generated token, then a final event with the complete
	// response. Streaming never changes the generated tokens.
	Stream bool `json:"stream,omitempty"`
	// Priority orders admission under contention (higher first); it never
	// affects the reply's content.
	Priority int `json:"priority,omitempty"`
	// DeadlineMs bounds the request's total latency: past the deadline the
	// scheduler stops decoding, frees the slot, and the reply carries
	// finish_reason "deadline_exceeded" with the tokens generated so far.
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
}

// generateResponse is the JSON reply of POST /v1/generate.
type generateResponse struct {
	ID           string `json:"id,omitempty"`
	Tokens       []int  `json:"tokens"`
	Text         string `json:"text"`
	FinishReason string `json:"finish_reason"`
	Error        string `json:"error,omitempty"`
}

// streamEvent is one per-token SSE event of a streaming generate.
type streamEvent struct {
	Token int    `json:"token"`
	Text  string `json:"text"`
	Index int    `json:"index"`
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req generateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad json: %v", err)
		return
	}
	prompt := req.Tokens
	if req.Prompt != "" {
		if len(prompt) != 0 {
			httpError(w, http.StatusBadRequest, "give either prompt or tokens, not both")
			return
		}
		ids, err := s.vocab.Encode(strings.Fields(req.Prompt))
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		prompt = ids
	}
	if len(prompt) == 0 {
		httpError(w, http.StatusBadRequest, "empty prompt")
		return
	}
	for _, tok := range append(append([]int{}, prompt...), req.Stop...) {
		if tok < 0 || tok >= s.m.Cfg.Vocab {
			httpError(w, http.StatusBadRequest, "token %d outside vocabulary [0,%d)", tok, s.m.Cfg.Vocab)
			return
		}
	}
	if len(prompt) > s.m.Cfg.MaxSeq {
		httpError(w, http.StatusBadRequest, "prompt of %d tokens exceeds context %d", len(prompt), s.m.Cfg.MaxSeq)
		return
	}
	maxTokens := req.MaxTokens
	if maxTokens <= 0 {
		maxTokens = 16
	}
	// The request context carries both cancellation signals: the client
	// disconnecting (r.Context) and the optional per-request deadline.
	// Either one cancels decoding at the next scheduler tick, freeing the
	// slot instead of decoding the abandoned request to its budget.
	ctx := r.Context()
	if req.DeadlineMs > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineMs)*time.Millisecond)
		defer cancel()
	}
	ticket, err := s.sched.Submit(serve.Request{
		ID:          req.ID,
		Prompt:      prompt,
		MaxTokens:   maxTokens,
		Temperature: req.Temperature,
		Seed:        req.Seed,
		Stop:        req.Stop,
		Ctx:         ctx,
		Priority:    req.Priority,
	})
	switch {
	case errors.Is(err, serve.ErrQueueFull):
		httpError(w, http.StatusTooManyRequests, "%v", err)
		return
	case err != nil:
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	if req.Stream || r.URL.Query().Get("stream") == "1" {
		s.streamGenerate(w, ticket)
		return
	}
	// The ticket always resolves — on completion, or within one tick of the
	// context dying — so a plain wait cannot leak the handler.
	res := ticket.Wait()
	if res.Err != nil {
		httpError(w, http.StatusInternalServerError, "%v", res.Err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.response(res))
}

// response renders a scheduler result as the generate reply body.
func (s *server) response(res serve.Result) generateResponse {
	tokens := res.Tokens
	if tokens == nil {
		tokens = []int{}
	}
	out := generateResponse{
		ID:           res.ID,
		Tokens:       tokens,
		Text:         s.vocab.Decode(tokens),
		FinishReason: string(res.FinishReason),
	}
	if res.Err != nil {
		out.Error = res.Err.Error()
	}
	return out
}

// streamGenerate writes the SSE form of a generate reply: one `data:`
// event per token as the scheduler decodes it, then a final `data:` event
// whose payload is byte-identical to the non-streaming response body —
// so a client (or the CI smoke test) can assemble the stream and check it
// against the plain reply.
func (s *server) streamGenerate(w http.ResponseWriter, ticket *serve.Ticket) {
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	flusher, _ := w.(http.Flusher)
	i := 0
	for tok := range ticket.Tokens() {
		b, _ := json.Marshal(streamEvent{Token: tok, Text: s.vocab.Word(tok), Index: i})
		fmt.Fprintf(w, "data: %s\n\n", b)
		if flusher != nil {
			flusher.Flush()
		}
		i++
	}
	res := ticket.Wait()
	b, _ := json.Marshal(s.response(res))
	fmt.Fprintf(w, "data: %s\n\n", b)
	if flusher != nil {
		flusher.Flush()
	}
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.sched.Stats()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"slots":            st.Slots,
		"active":           st.Active,
		"queued":           st.Queued,
		"submitted":        st.Submitted,
		"completed":        st.Completed,
		"prompt_tokens":    st.PromptTokens,
		"generated_tokens": st.GeneratedTokens,
		"kv_cache_bytes":   st.KVCacheBytes,
		// Paged-KV accounting: unique bytes count every in-use page once
		// however many slots and cache entries share it; logical bytes are
		// what the same references would cost without sharing (the memcpy
		// memory model); sharing_ratio = logical/unique; pages the unique
		// in-use page count.
		"kv_unique_bytes":  st.KVUniqueBytes,
		"kv_logical_bytes": st.KVLogicalBytes,
		"kv_pages":         st.KVPages,
		"kv_sharing_ratio": st.KVSharingRatio(),
		"prefill_chunk":    st.PrefillChunk,
		"ttft_count":       st.TTFTSamples,
		"ttft_p50_ms":      float64(st.TTFTp50) / float64(time.Millisecond),
		"ttft_p99_ms":      float64(st.TTFTp99) / float64(time.Millisecond),
		// Inter-token latency: the gap between consecutively streamed
		// tokens of a request — the cadence an interactive client sees.
		"itl_count":  st.ITLSamples,
		"itl_p50_ms": float64(st.ITLp50) / float64(time.Millisecond),
		"itl_p99_ms": float64(st.ITLp99) / float64(time.Millisecond),
		// Admission-control counters: requests finished by context
		// cancellation / deadline expiry, Submits shed with 429 under the
		// -max-queue bound, and whether the scheduler is draining (1/0).
		"cancelled":         st.Cancelled,
		"deadline_exceeded": st.DeadlineExceeded,
		"rejected":          st.Rejected,
		"max_queue":         st.MaxQueue,
		"draining":          boolToInt(st.Draining),
		// Prefix/KV cache counters (all zero unless -prefix-cache is set):
		// hits/misses count admissions whose prompt did/did not start with a
		// cached chunk, hit_rate their ratio, hit_tokens the prompt tokens
		// whose prefill was skipped, bytes/entries the current residency and
		// evictions the entries dropped under byte pressure.
		"prefix_cache_hits":       st.PrefixCacheHits,
		"prefix_cache_misses":     st.PrefixCacheMisses,
		"prefix_cache_hit_rate":   st.PrefixCacheHitRate(),
		"prefix_cache_hit_tokens": st.PrefixCacheHitTokens,
		"prefix_cache_bytes":      st.PrefixCacheBytes,
		"prefix_cache_entries":    st.PrefixCacheEntries,
		"prefix_cache_evictions":  st.PrefixCacheEvictions,
	})
}

// boolToInt renders a flag as 0/1 so /v1/stats stays a flat numeric map
// (clients decode it into map[string]float64).
func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	status, code := "ok", http.StatusOK
	if s.draining.Load() {
		// Unhealthy while draining, so load balancers stop routing here
		// during a graceful redeploy.
		status, code = "draining", http.StatusServiceUnavailable
	}
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status": status,
		"model":  s.m.Cfg.Name,
		"vocab":  s.m.Cfg.Vocab,
		"maxseq": s.m.Cfg.MaxSeq,
	})
}

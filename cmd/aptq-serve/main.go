// Command aptq-serve is the HTTP serving front-end over the
// continuous-batching scheduler (internal/serve): a pool of KV-cached
// decoding slots on one shared model copy — float or packed — with
// per-request seeds, stop tokens and token budgets, so mixed-length
// traffic keeps every slot busy instead of decoding in lockstep.
//
// Usage:
//
//	aptq-serve -ckpt nano7b-q.packed.ckpt -packed -slots 8
//	aptq-serve -prefix-cache 67108864   # 64 MiB shared prefix/KV cache
//	aptq-serve                      # built-in deterministic demo model
//
// Endpoints:
//
//	POST /v1/generate  {"prompt":"...", "tokens":[...], "max_tokens":16,
//	                    "temperature":0.8, "seed":7, "stop":[...]}
//	GET  /v1/stats     scheduler counters (slots, queue, tokens, KV bytes,
//	                   prefill chunk, time-to-first-token p50/p99,
//	                   prefix-cache hits/bytes/hit-rate)
//	GET  /healthz      liveness + model identity
//
// With -prefix-cache N, completed prefill chunks are snapshotted into a
// shared N-byte KV cache and requests whose prompts repeat a cached
// prefix (system prompts, few-shot headers) skip that part of the
// prefill entirely — near-zero time-to-first-token on repeats, with
// replies bit-identical to the uncached path.
//
// Determinism: the same request body always yields the same reply — output
// depends only on the model and the request (prompt, seed, temperature,
// stop set), never on slot assignment, worker count, or concurrent
// traffic. The CI smoke test asserts this end to end.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/parallel"
	"repro/internal/serve"
	"repro/internal/train"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("aptq-serve: ")

	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address")
		ckpt       = flag.String("ckpt", "", "checkpoint to serve (empty: built-in demo model)")
		packed     = flag.Bool("packed", false, "serve straight from the packed low-bit representation (compressed checkpoints only)")
		slots      = flag.Int("slots", 4, "concurrent decoding slots")
		workers    = flag.Int("workers", 0, "worker goroutines for the per-step fan-out (0 = GOMAXPROCS)")
		eos        = flag.Int("eos", -1, "end-of-sequence token id (negative: disabled)")
		kvBits     = flag.Int("kvbits", 0, "KV-cache quantization bit width (0 = float)")
		prefill    = flag.Int("prefill-chunk", 0, "prompt tokens admitted per decode tick (0 = default chunking)")
		prefixCach = flag.Int64("prefix-cache", 0, "shared prefix/KV cache byte budget (0 = disabled); repeat prompt prefixes skip prefill")
		trainSteps = flag.Int("train-steps", 0, "pretraining steps for the demo model (0 = raw seeded init, instant startup)")
	)
	flag.Parse()
	parallel.SetWorkers(*workers)

	m, err := loadModel(*ckpt, *packed, *trainSteps)
	if err != nil {
		log.Fatal(err)
	}
	opts := serve.DefaultOptions()
	opts.Slots = *slots
	opts.EOS = *eos
	opts.KVQuantBits = *kvBits
	opts.PrefillChunk = *prefill
	opts.PrefixCacheBytes = *prefixCach
	srv := newServer(m, opts)
	defer srv.sched.Close()
	log.Printf("model %s (vocab %d, maxseq %d), %d slots, listening on %s",
		m.Cfg.Name, m.Cfg.Vocab, m.Cfg.MaxSeq, *slots, *addr)

	httpSrv := &http.Server{Addr: *addr, Handler: srv.mux()}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
	}()
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
}

// loadModel resolves the served model: a float checkpoint, a compressed
// (optionally packed-execution) checkpoint, or the built-in demo model —
// a fixed-seed nano config whose replies are deterministic, which the CI
// smoke test relies on.
func loadModel(ckpt string, packed bool, trainSteps int) (*model.Model, error) {
	if ckpt == "" {
		cfg := model.Config{Name: "serve-demo", Vocab: 64, Dim: 32, Heads: 4, Layers: 3, FF: 64, MaxSeq: 64, RopeBase: 10000}
		m := model.New(cfg, 1)
		if trainSteps > 0 {
			src := data.NewC4Like(cfg.Vocab)
			train.Train(m, src, train.Config{Steps: trainSteps, BatchSize: 4, SeqLen: 32, LR: 3e-3, Warmup: 20, ClipNorm: 1, Seed: 1})
		}
		return m, nil
	}
	m, _, err := core.LoadModelFile(ckpt, packed)
	return m, err
}

// server binds the scheduler to the HTTP surface.
type server struct {
	m     *model.Model
	vocab *data.Vocabulary
	sched *serve.Scheduler
}

func newServer(m *model.Model, opts serve.Options) *server {
	return &server{m: m, vocab: data.NewVocabulary(m.Cfg.Vocab), sched: serve.New(m, opts)}
}

func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/generate", s.handleGenerate)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealth)
	return mux
}

// generateRequest is the JSON body of POST /v1/generate. Exactly one of
// Prompt (whitespace-tokenized words of the synthetic vocabulary) or
// Tokens (raw ids) supplies the prompt.
type generateRequest struct {
	ID          string  `json:"id,omitempty"`
	Prompt      string  `json:"prompt,omitempty"`
	Tokens      []int   `json:"tokens,omitempty"`
	MaxTokens   int     `json:"max_tokens"`
	Temperature float64 `json:"temperature"`
	Seed        int64   `json:"seed"`
	Stop        []int   `json:"stop,omitempty"`
}

// generateResponse is the JSON reply of POST /v1/generate.
type generateResponse struct {
	ID           string `json:"id,omitempty"`
	Tokens       []int  `json:"tokens"`
	Text         string `json:"text"`
	FinishReason string `json:"finish_reason"`
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req generateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad json: %v", err)
		return
	}
	prompt := req.Tokens
	if req.Prompt != "" {
		if len(prompt) != 0 {
			httpError(w, http.StatusBadRequest, "give either prompt or tokens, not both")
			return
		}
		ids, err := s.vocab.Encode(strings.Fields(req.Prompt))
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		prompt = ids
	}
	if len(prompt) == 0 {
		httpError(w, http.StatusBadRequest, "empty prompt")
		return
	}
	for _, tok := range append(append([]int{}, prompt...), req.Stop...) {
		if tok < 0 || tok >= s.m.Cfg.Vocab {
			httpError(w, http.StatusBadRequest, "token %d outside vocabulary [0,%d)", tok, s.m.Cfg.Vocab)
			return
		}
	}
	if len(prompt) > s.m.Cfg.MaxSeq {
		httpError(w, http.StatusBadRequest, "prompt of %d tokens exceeds context %d", len(prompt), s.m.Cfg.MaxSeq)
		return
	}
	maxTokens := req.MaxTokens
	if maxTokens <= 0 {
		maxTokens = 16
	}
	ticket, err := s.sched.Submit(serve.Request{
		ID:          req.ID,
		Prompt:      prompt,
		MaxTokens:   maxTokens,
		Temperature: req.Temperature,
		Seed:        req.Seed,
		Stop:        req.Stop,
	})
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	select {
	case res := <-ticket.Done():
		if res.Err != nil {
			httpError(w, http.StatusInternalServerError, "%v", res.Err)
			return
		}
		tokens := res.Tokens
		if tokens == nil {
			tokens = []int{}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(generateResponse{
			ID:           res.ID,
			Tokens:       tokens,
			Text:         s.vocab.Decode(tokens),
			FinishReason: string(res.FinishReason),
		})
	case <-r.Context().Done():
		// Client went away; the slot still finishes the request (the
		// scheduler has no cancellation), we just stop waiting.
		httpError(w, http.StatusServiceUnavailable, "client cancelled")
	}
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.sched.Stats()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"slots":            st.Slots,
		"active":           st.Active,
		"queued":           st.Queued,
		"submitted":        st.Submitted,
		"completed":        st.Completed,
		"prompt_tokens":    st.PromptTokens,
		"generated_tokens": st.GeneratedTokens,
		"kv_cache_bytes":   st.KVCacheBytes,
		"prefill_chunk":    st.PrefillChunk,
		"ttft_count":       st.TTFTSamples,
		"ttft_p50_ms":      float64(st.TTFTp50) / float64(time.Millisecond),
		"ttft_p99_ms":      float64(st.TTFTp99) / float64(time.Millisecond),
		// Prefix/KV cache counters (all zero unless -prefix-cache is set):
		// hits/misses count admissions whose prompt did/did not start with a
		// cached chunk, hit_rate their ratio, hit_tokens the prompt tokens
		// whose prefill was skipped, bytes/entries the current residency and
		// evictions the entries dropped under byte pressure.
		"prefix_cache_hits":       st.PrefixCacheHits,
		"prefix_cache_misses":     st.PrefixCacheMisses,
		"prefix_cache_hit_rate":   st.PrefixCacheHitRate(),
		"prefix_cache_hit_tokens": st.PrefixCacheHitTokens,
		"prefix_cache_bytes":      st.PrefixCacheBytes,
		"prefix_cache_entries":    st.PrefixCacheEntries,
		"prefix_cache_evictions":  st.PrefixCacheEvictions,
	})
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status": "ok",
		"model":  s.m.Cfg.Name,
		"vocab":  s.m.Cfg.Vocab,
		"maxseq": s.m.Cfg.MaxSeq,
	})
}

package main

import "testing"

// The HTTP handler's end-to-end tests live with the handler in
// internal/serve (http_test.go); this file covers only what remains in the
// command: model resolution.

func TestLoadModelDemo(t *testing.T) {
	m, err := loadModel("", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Cfg.Name != "serve-demo" || m.Cfg.Vocab != 64 || m.Cfg.MaxSeq != 64 {
		t.Fatalf("demo model config: %+v", m.Cfg)
	}
	// Same seed, same model: the demo config is deterministic, which the
	// serving smoke tests (and the router's bit-identity contract across
	// replica processes) depend on.
	n, err := loadModel("", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n.Cfg != m.Cfg {
		t.Fatalf("demo model config not reproducible: %+v vs %+v", n.Cfg, m.Cfg)
	}
}

func TestLoadModelMissingCheckpoint(t *testing.T) {
	if _, err := loadModel("/nonexistent/path.ckpt", false, 0); err == nil {
		t.Fatal("missing checkpoint must error")
	}
}

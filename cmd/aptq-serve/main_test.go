package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/serve"
)

func testServer(t *testing.T) (*server, *httptest.Server) {
	return testServerOpts(t, func(*serve.Options) {})
}

func testServerOpts(t *testing.T, mod func(*serve.Options)) (*server, *httptest.Server) {
	t.Helper()
	m, err := loadModel("", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	opts := serve.DefaultOptions()
	opts.Slots = 2
	mod(&opts)
	srv := newServer(m, opts)
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(func() {
		ts.Close()
		srv.sched.Close()
	})
	return srv, ts
}

func post(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestGenerateEndToEndDeterministic is the serving determinism contract at
// the HTTP boundary: the same request body yields byte-identical replies,
// also under concurrent traffic.
func TestGenerateEndToEndDeterministic(t *testing.T) {
	_, ts := testServer(t)
	body := `{"tokens":[1,2,3],"max_tokens":8,"temperature":0.8,"seed":7}`
	code, first := post(t, ts.URL+"/v1/generate", body)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, first)
	}
	var reply generateResponse
	if err := json.Unmarshal(first, &reply); err != nil {
		t.Fatal(err)
	}
	if len(reply.Tokens) != 8 || reply.FinishReason != "length" || reply.Text == "" {
		t.Fatalf("unexpected reply: %s", first)
	}
	// Co-scheduled noise traffic with different seeds must not perturb the
	// repeat of the original request.
	for i := 0; i < 3; i++ {
		if code, b := post(t, ts.URL+"/v1/generate", `{"tokens":[5],"max_tokens":4,"temperature":1.0,"seed":99}`); code != http.StatusOK {
			t.Fatalf("noise status %d: %s", code, b)
		}
	}
	if _, again := post(t, ts.URL+"/v1/generate", body); !bytes.Equal(first, again) {
		t.Fatalf("same request, different replies:\n%s\n%s", first, again)
	}
}

// TestGenerateTextPrompt exercises the word-level prompt path and the
// stop-token plumbing.
func TestGenerateTextPrompt(t *testing.T) {
	srv, ts := testServer(t)
	prompt := srv.vocab.Word(3) + " " + srv.vocab.Word(9)
	body, _ := json.Marshal(map[string]any{"prompt": prompt, "max_tokens": 5, "seed": 1})
	code, b := post(t, ts.URL+"/v1/generate", string(body))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, b)
	}
	var reply generateResponse
	if err := json.Unmarshal(b, &reply); err != nil {
		t.Fatal(err)
	}
	if len(reply.Tokens) != 5 {
		t.Fatalf("generated %d tokens: %s", len(reply.Tokens), b)
	}
	// Repeating the request with the first generated token as a stop token
	// must end generation immediately.
	body, _ = json.Marshal(map[string]any{"prompt": prompt, "max_tokens": 5, "seed": 1, "stop": []int{reply.Tokens[0]}})
	code, b = post(t, ts.URL+"/v1/generate", string(body))
	if code != http.StatusOK {
		t.Fatalf("stop status %d: %s", code, b)
	}
	if err := json.Unmarshal(b, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.FinishReason != "stop" || len(reply.Tokens) != 0 {
		t.Fatalf("stop run: %s", b)
	}
}

func TestGenerateRejectsBadRequests(t *testing.T) {
	_, ts := testServer(t)
	for _, tc := range []struct {
		name, body string
	}{
		{"empty", `{}`},
		{"bad json", `{"tokens":`},
		{"both prompt and tokens", `{"prompt":"a","tokens":[1]}`},
		{"unknown word", `{"prompt":"notaword!"}`},
		{"token out of vocab", `{"tokens":[99999]}`},
		{"stop out of vocab", `{"tokens":[1],"stop":[-2]}`},
	} {
		if code, b := post(t, ts.URL+"/v1/generate", tc.body); code != http.StatusBadRequest {
			t.Fatalf("%s: status %d (%s), want 400", tc.name, code, b)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/generate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET generate: status %d, want 405", resp.StatusCode)
	}
}

func TestHealthAndStats(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["status"] != "ok" || health["model"] != "serve-demo" {
		t.Fatalf("health: %v", health)
	}
	if code, b := post(t, ts.URL+"/v1/generate", `{"tokens":[1],"max_tokens":3,"seed":2}`); code != http.StatusOK {
		t.Fatalf("generate status %d: %s", code, b)
	}
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]float64
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats["completed"] < 1 || stats["generated_tokens"] < 3 || stats["slots"] != 2 {
		t.Fatalf("stats: %v", stats)
	}
	// The prefill-latency surface: one completed request means one TTFT
	// sample and non-negative percentiles.
	if stats["ttft_count"] < 1 || stats["ttft_p50_ms"] <= 0 || stats["ttft_p99_ms"] < stats["ttft_p50_ms"] {
		t.Fatalf("ttft stats: %v", stats)
	}
	if stats["prefill_chunk"] <= 0 {
		t.Fatalf("prefill_chunk missing: %v", stats)
	}
}

// TestPrefixCacheEndToEnd: with -prefix-cache enabled, a repeated prompt
// prefix yields byte-identical replies (the bit-identity contract across
// cold and cached prefills) and the stats surface reports the hits.
func TestPrefixCacheEndToEnd(t *testing.T) {
	_, ts := testServerOpts(t, func(o *serve.Options) {
		o.PrefillChunk = 4
		o.PrefixCacheBytes = 1 << 20
	})
	// A 9-token prompt spans two full cache chunks at chunk 4.
	body := `{"tokens":[1,2,3,4,5,6,7,8,9],"max_tokens":6,"temperature":0.7,"seed":11}`
	code, first := post(t, ts.URL+"/v1/generate", body)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, first)
	}
	_, again := post(t, ts.URL+"/v1/generate", body)
	if !bytes.Equal(first, again) {
		t.Fatalf("cached prefill changed the reply:\n%s\n%s", first, again)
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]float64
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats["prefix_cache_hits"] < 1 || stats["prefix_cache_hit_tokens"] < 8 {
		t.Fatalf("prefix cache saw no hits: %v", stats)
	}
	if stats["prefix_cache_bytes"] <= 0 || stats["prefix_cache_entries"] <= 0 {
		t.Fatalf("prefix cache reports no residency: %v", stats)
	}
	if hr := stats["prefix_cache_hit_rate"]; hr <= 0 || hr > 1 {
		t.Fatalf("prefix_cache_hit_rate = %v", hr)
	}
}

// Command aptq-quantize quantizes a trained checkpoint with APTQ or one of
// the baseline methods and writes the quantized checkpoint plus a per-layer
// report.
//
// Usage:
//
//	aptq-quantize -in nano7b.ckpt -out nano7b-q.ckpt -method aptq -ratio 0.75
//	aptq-quantize -in nano7b.ckpt -method gptq -bits 4
//	aptq-quantize -in nano7b.ckpt -method rtn -bits 2
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/parallel"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("aptq-quantize: ")

	var (
		in        = flag.String("in", "", "input checkpoint (from aptq-train)")
		out       = flag.String("out", "", "output checkpoint (optional, dequantized float64)")
		packed    = flag.String("packed", "", "output compressed checkpoint with bit-packed codes (APTQ/manual only)")
		method    = flag.String("method", "aptq", "aptq | manual | gptq | rtn | smoothquant | owq | pbllm | fpq | qat")
		ratio     = flag.Float64("ratio", 1.0, "APTQ 4-bit ratio R")
		bits      = flag.Int("bits", 4, "bit width for single-precision methods")
		groupSize = flag.Int("group", 16, "quantization group size")
		calibN    = flag.Int("calib", 32, "calibration segments")
		calibLen  = flag.Int("caliblen", 48, "calibration segment length")
		keepFrac  = flag.Float64("keep", 0.3, "PB-LLM salient fraction / OWQ outlier fraction")
		probes    = flag.Int("probes", 4, "Q/K Jacobian probes per segment")
		seq       = flag.Bool("sequential", false, "recollect statistics per block")
		workers   = flag.Int("workers", 0, "worker goroutines for kernels and per-layer quantization (<=0: GOMAXPROCS)")
		verbose   = flag.Bool("v", false, "print per-layer report")
	)
	flag.Parse()

	parallel.SetWorkers(*workers)
	log.Printf("using %d workers", parallel.Workers())

	if *in == "" {
		log.Fatal("missing -in checkpoint; run aptq-train first")
	}
	m, err := model.LoadFile(*in)
	if err != nil {
		log.Fatalf("load: %v", err)
	}
	src := data.NewC4Like(m.Cfg.Vocab)
	calib := data.SampleCalibration(rand.New(rand.NewSource(42)), src, *calibN, *calibLen)

	var quantized *model.Model
	switch *method {
	case "aptq", "manual":
		opts := core.DefaultOptions(*ratio)
		opts.GroupSize = *groupSize
		opts.BlockSize = *groupSize
		opts.Probes = *probes
		opts.Sequential = *seq
		if *method == "manual" {
			opts.Allocator = core.ManualBlockwise
		}
		res, err := core.Quantize(m, calib, opts)
		if err != nil {
			log.Fatalf("quantize: %v", err)
		}
		quantized = res.Model
		log.Printf("method=%s ratio=%.2f avg_bits=%.2f (with metadata %.2f)", *method, res.Allocation.Ratio(), res.AvgBits, res.AvgBitsWithOverhead)
		if *packed != "" {
			if err := res.WriteCompressedFile(*packed); err != nil {
				log.Fatalf("write packed: %v", err)
			}
			fi, _ := os.Stat(*packed)
			log.Printf("wrote packed checkpoint %s (%d bytes)", *packed, fi.Size())
		}
		if *verbose {
			fmt.Printf("%-30s %4s %12s %12s\n", "layer", "bits", "avg_trace", "proxy_loss")
			for _, lr := range res.Layers {
				fmt.Printf("%-30s %4d %12.4g %12.4g\n", lr.Name, lr.Bits, lr.AvgTrace, lr.ProxyLoss)
			}
		}
	default:
		rep, err := runBaseline(m, calib, *method, *bits, *groupSize, *keepFrac, *probes)
		if err != nil {
			log.Fatalf("quantize: %v", err)
		}
		quantized = rep.Model
		log.Printf("method=%s avg_bits=%.2f", rep.Method, rep.AvgBits)
	}

	if *out != "" {
		if err := quantized.SaveFile(*out); err != nil {
			log.Fatalf("save: %v", err)
		}
		fi, _ := os.Stat(*out)
		log.Printf("wrote %s (%d bytes)", *out, fi.Size())
	}
}

func runBaseline(m *model.Model, calib *data.CalibrationSet, method string, bits, groupSize int, keepFrac float64, probes int) (*baselines.Report, error) {
	needStats := func() (*core.Stats, error) {
		return core.CollectStats(m, calib, core.CollectOptions{Probes: probes, Seed: 1})
	}
	switch method {
	case "rtn":
		return baselines.RTN(m, bits, groupSize), nil
	case "fpq":
		return baselines.FPQ(m, groupSize), nil
	case "gptq":
		st, err := needStats()
		if err != nil {
			return nil, err
		}
		return baselines.GPTQ(m, st, bits, groupSize)
	case "smoothquant":
		st, err := needStats()
		if err != nil {
			return nil, err
		}
		return baselines.SmoothQuant(m, st, bits, groupSize, 0.5)
	case "owq":
		st, err := needStats()
		if err != nil {
			return nil, err
		}
		return baselines.OWQ(m, st, bits, groupSize, keepFrac)
	case "pbllm":
		st, err := needStats()
		if err != nil {
			return nil, err
		}
		return baselines.PBLLM(m, st, keepFrac, groupSize)
	case "qat":
		cfg := baselines.DefaultQATConfig(bits)
		cfg.GroupSize = groupSize
		return baselines.QAT(m, data.NewC4Like(m.Cfg.Vocab), cfg)
	default:
		return nil, fmt.Errorf("unknown method %q", method)
	}
}

// Command aptq-eval evaluates a checkpoint (full-precision or quantized) on
// the two held-out synthetic corpora and the five-task zero-shot suite —
// the metrics of the paper's Tables 1 and 2.
//
// Usage:
//
//	aptq-eval -in nano7b-q.ckpt [-segments 200] [-items 120]
//	aptq-eval -in nano7b-q.packed.ckpt -packed   # serve-from-compressed evaluation
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/eval"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("aptq-eval: ")

	var (
		in       = flag.String("in", "", "checkpoint to evaluate")
		segments = flag.Int("segments", 200, "perplexity eval segments per corpus")
		items    = flag.Int("items", 120, "zero-shot items per task")
		skipZS   = flag.Bool("nozeroshot", false, "skip the zero-shot suite")
		packed   = flag.Bool("packed", false, "evaluate directly from the packed low-bit representation (compressed checkpoints only); quantized weights stay bit-packed and dequantize on the fly")
	)
	flag.Parse()

	if *in == "" {
		log.Fatal("missing -in checkpoint")
	}
	m, qm, err := core.LoadModelFile(*in, *packed)
	if err != nil {
		log.Fatal(err)
	}
	if qm != nil {
		fmt.Printf("packed weights: %d bytes resident (float64 equivalent %d bytes, %.1fx smaller)\n",
			qm.PackedWeightBytes(), qm.FloatWeightBytes(), qm.CompressionRatio())
		fmt.Printf("model: %s (%d fp params + %d packed layers)\n", qm.Cfg.Name, qm.NumParams(), len(qm.Layers))
	} else {
		fmt.Printf("model: %s (%d params)\n", m.Cfg.Name, m.NumParams())
	}

	c4 := data.NewC4Like(m.Cfg.Vocab)
	wiki := data.NewWikiLike(m.Cfg.Vocab)
	for _, src := range []data.Source{c4, wiki} {
		ppl := eval.Perplexity(m, src, rand.New(rand.NewSource(4242)), *segments, m.Cfg.MaxSeq)
		fmt.Printf("perplexity %-10s %8.3f\n", src.Name(), ppl)
	}

	if *skipZS {
		return
	}
	rng := rand.New(rand.NewSource(777))
	var tasks []data.Task
	for _, spec := range data.StandardTasks() {
		tasks = append(tasks, data.GenerateTask(rng, c4, spec, *items))
	}
	r := eval.EvaluateSuite(m, tasks)
	for i, name := range r.Names {
		fmt.Printf("zero-shot  %-12s %6.1f%%\n", name, r.Accuracies[i]*100)
	}
	fmt.Printf("zero-shot  %-12s %6.2f%%\n", "mean", r.Mean()*100)
}

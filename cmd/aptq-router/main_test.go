package main

import "testing"

func TestSplitReplicas(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{
		{"", 0},
		{"http://a:1", 1},
		{"http://a:1,http://b:2", 2},
		{" http://a:1 , http://b:2/ ,", 2},
	}
	for _, c := range cases {
		got := splitReplicas(c.in)
		if len(got) != c.want {
			t.Fatalf("splitReplicas(%q) = %v, want %d entries", c.in, got, c.want)
		}
		for _, u := range got {
			if u[len(u)-1] == '/' || u[0] == ' ' {
				t.Fatalf("splitReplicas(%q) left an uncanonical URL %q", c.in, u)
			}
		}
	}
}

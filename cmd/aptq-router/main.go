// Command aptq-router is the fault-tolerant multi-replica front-end over
// a fleet of aptq-serve processes (internal/router): consistent-hash
// routing on token-prefix affinity, per-replica health-checked circuit
// breakers, and transparent retry/failover — safe because every replica
// is bit-identical for a given request, so a retried or resumed request
// yields the same bytes a single healthy replica would have sent.
//
// Usage:
//
//	aptq-router -replicas http://127.0.0.1:8081,http://127.0.0.1:8082
//	aptq-router -replicas ... -probe-interval 500ms -eject-after 3
//	aptq-router -replicas ... -chaos-refuse 0.05 -chaos-seed 7   # fault drill
//
// The HTTP surface is identical to a single replica's (POST /v1/generate,
// GET /v1/stats, GET /healthz), so clients — including aptq-loadgen —
// point at the router unchanged. /v1/stats additionally carries the fleet
// aggregate, router_* counters (retries, failovers, spills, ejections)
// and a per-replica health array.
//
// Like aptq-serve, the first stdout line is "ADDR=<host:port>" with the
// actually bound address (-addr :0 asks the kernel for a free port), and
// SIGINT/SIGTERM drains: /healthz goes 503, new requests are rejected,
// in-flight proxied requests finish.
//
// The -chaos-* flags wrap the upstream transport with seeded fault
// injection (internal/router/chaos): refused connections, delayed
// forwards, responses cut mid-stream. They exist to drill the failover
// machinery — the router-smoke CI job runs with them on and still
// requires zero client-visible errors and bit-identical replies.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/router"
	"repro/internal/router/chaos"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("aptq-router: ")

	var (
		addr          = flag.String("addr", "127.0.0.1:8090", "listen address (:0 picks a free port; the bound address is printed as ADDR=... on stdout)")
		replicas      = flag.String("replicas", "", "comma-separated replica base URLs (required)")
		probeInterval = flag.Duration("probe-interval", time.Second, "healthz probe cadence for healthy replicas")
		probeTimeout  = flag.Duration("probe-timeout", 2*time.Second, "per-probe (and per-stats-fanout) timeout")
		ejectAfter    = flag.Int("eject-after", 3, "consecutive failures that open a replica's circuit breaker")
		backoffMin    = flag.Duration("backoff-min", 250*time.Millisecond, "initial ejection backoff")
		backoffMax    = flag.Duration("backoff-max", 8*time.Second, "ejection backoff ceiling")
		reqTimeout    = flag.Duration("request-timeout", 60*time.Second, "per-attempt bound on proxied requests")
		passes        = flag.Int("passes", 2, "full ring walks per request before giving up")
		seed          = flag.Int64("seed", 1, "seed for probe jitter")

		chaosSeed        = flag.Int64("chaos-seed", 1, "seed for injected faults (reproducible chaos)")
		chaosRefuse      = flag.Float64("chaos-refuse", 0, "probability an upstream call fails as connection-refused")
		chaosDelay       = flag.Float64("chaos-delay", 0, "probability an upstream call is delayed")
		chaosDelayDur    = flag.Duration("chaos-delay-dur", 50*time.Millisecond, "injected delay duration")
		chaosHangup      = flag.Float64("chaos-hangup", 0, "probability an upstream response is cut mid-body")
		chaosHangupAfter = flag.Int("chaos-hangup-after", 256, "bytes delivered before an injected hangup")
	)
	flag.Parse()

	urls := splitReplicas(*replicas)
	if len(urls) == 0 {
		log.Fatal("-replicas is required (comma-separated base URLs)")
	}

	opts := router.Options{
		Replicas:       urls,
		ProbeInterval:  *probeInterval,
		ProbeTimeout:   *probeTimeout,
		EjectAfter:     *ejectAfter,
		BackoffMin:     *backoffMin,
		BackoffMax:     *backoffMax,
		RequestTimeout: *reqTimeout,
		Passes:         *passes,
		Seed:           *seed,
	}
	if *chaosRefuse > 0 || *chaosDelay > 0 || *chaosHangup > 0 {
		opts.Transport = chaos.New(nil, chaos.Config{
			Seed:        *chaosSeed,
			RefuseProb:  *chaosRefuse,
			DelayProb:   *chaosDelay,
			Delay:       *chaosDelayDur,
			HangupProb:  *chaosHangup,
			HangupAfter: *chaosHangupAfter,
		})
		log.Printf("chaos enabled: refuse=%.2f delay=%.2f hangup=%.2f seed=%d",
			*chaosRefuse, *chaosDelay, *chaosHangup, *chaosSeed)
	}

	rt, err := router.New(opts)
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	bound := ln.Addr().String()
	// Same machine-parseable contract as aptq-serve: first stdout line.
	fmt.Printf("ADDR=%s\n", bound)
	log.Printf("routing %d replicas, listening on %s", len(urls), bound)

	httpSrv := &http.Server{Handler: rt.Handler()}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		// Mirror the replica drain order at the routing tier: healthz goes
		// unhealthy, new requests get 503, in-flight proxied requests
		// finish, then the listener closes.
		log.Printf("signal received, draining")
		rt.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
	}()
	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
}

// splitReplicas parses the -replicas flag: comma-separated URLs, blanks
// dropped, trailing slashes trimmed so ring identities are canonical.
func splitReplicas(s string) []string {
	var urls []string
	for _, part := range strings.Split(s, ",") {
		u := strings.TrimRight(strings.TrimSpace(part), "/")
		if u != "" {
			urls = append(urls, u)
		}
	}
	return urls
}
